package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"vcdl/internal/boinc"
	"vcdl/internal/core"
	"vcdl/internal/data"
	"vcdl/internal/live"
)

// startTinyServer boots a small live server for client tests.
func startTinyServer(t *testing.T, epochs int, target float64) *live.Server {
	t.Helper()
	dc := data.DefaultSynthConfig()
	dc.NTrain, dc.NVal, dc.NTest = 300, 120, 120
	dc.Seed = 5
	corpus, err := data.GenerateSynth(dc)
	if err != nil {
		t.Fatal(err)
	}
	spec := core.SmallCNNSpec(dc.C, dc.H, dc.W, dc.Classes)
	builder, err := spec.Builder()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultJobConfig(builder)
	cfg.Subtasks = 6
	cfg.MaxEpochs = epochs
	cfg.TargetAccuracy = target
	cfg.LocalPasses = 2
	cfg.LearningRate = 0.01
	cfg.ValSubset = 100
	cfg.Seed = 5
	srv, err := live.StartServer("127.0.0.1:0", live.ServerConfig{
		Job: cfg, Spec: spec, Corpus: corpus, PServers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestRunClientHandshakeAndWork pins the extracted runClient(): it
// fetches job.json from the project, trains real subtasks over HTTP and
// reports its counters on exit.
func TestRunClientHandshakeAndWork(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second real-HTTP training run")
	}
	srv := startTinyServer(t, 1, 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-srv.D.Done() // training finished: the daemon may retire
		cancel()
	}()
	var out strings.Builder
	err := runClient(ctx, clientOptions{
		server: srv.URL(),
		id:     "c-test",
		slots:  2,
		poll:   10 * time.Millisecond,
		runFor: 60 * time.Second,
	}, &out)
	if err != nil {
		t.Fatalf("runClient: %v", err)
	}
	if !strings.Contains(out.String(), "client c-test exiting") {
		t.Fatalf("missing exit report: %q", out.String())
	}
	completions := 0
	srv.D.Server().Scheduler(func(s *boinc.Scheduler) { completions = s.Completions })
	if completions == 0 {
		t.Fatal("client completed no subtasks")
	}
}

// TestRunClientRejoinAfterKill kills a client daemon mid-run and lets a
// rejoining one finish the epoch: the server recovers the lost results
// at their deadline and the run still completes.
func TestRunClientRejoinAfterKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second real-HTTP training run")
	}
	srv := startTinyServer(t, 2, 0)

	ctx, kill := context.WithCancel(context.Background())
	killed := make(chan error, 1)
	go func() {
		killed <- runClient(ctx, clientOptions{
			server: srv.URL(), id: "doomed", slots: 2, poll: 10 * time.Millisecond,
		}, &strings.Builder{})
	}()
	time.Sleep(1200 * time.Millisecond)
	kill()
	if err := <-killed; err != nil {
		t.Fatalf("killed client should report clean cancellation, got %v", err)
	}

	var out strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- runClient(context.Background(), clientOptions{
			server: srv.URL(), id: "rejoin", slots: 2, poll: 10 * time.Millisecond,
			runFor: 60 * time.Second,
		}, &out)
	}()
	select {
	case <-srv.D.Done():
	case err := <-done:
		t.Fatalf("client exited before training finished: %v\n%s", err, out.String())
	case <-time.After(60 * time.Second):
		t.Fatal("training did not finish after rejoin")
	}
	res, err := srv.D.Result()
	if err != nil {
		t.Fatalf("job failed: %v", err)
	}
	if len(res.Curve.Points) != 2 {
		t.Fatalf("epochs = %d, want 2", len(res.Curve.Points))
	}
}
