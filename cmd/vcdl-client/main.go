// Command vcdl-client runs a volunteer client daemon against a
// vcdl-server: it polls the scheduler for training subtasks, downloads
// model/parameter/data files (with a sticky cache), trains locally and
// uploads updated parameters. The training hyperparameters come from
// the project itself (the published job.json), so client and server can
// never disagree on them. Several clients may run concurrently; each
// corresponds to one computing instance in the paper's fleet.
//
//	vcdl-client -server http://localhost:8080 -id c1 -slots 2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vcdl/internal/boinc"
	"vcdl/internal/live"
)

// clientOptions collects the flags so tests can drive runClient directly.
type clientOptions struct {
	server string
	id     string
	slots  int
	poll   time.Duration
	runFor time.Duration
	// blobs fetches digest-published inputs from /blob/{digest}
	// (resumable, digest-verified); blobDir backs the cache with a
	// directory that survives restarts (warm cache on rejoin).
	blobs   bool
	blobDir string
}

func main() {
	var opts clientOptions
	flag.StringVar(&opts.server, "server", "http://localhost:8080", "vcdl-server base URL")
	flag.StringVar(&opts.id, "id", "client-1", "client identifier")
	flag.IntVar(&opts.slots, "slots", 2, "simultaneous subtasks (the paper's Tn)")
	flag.DurationVar(&opts.poll, "poll", 250*time.Millisecond, "idle poll interval")
	flag.DurationVar(&opts.runFor, "run-for", 0, "exit after this duration (0 = until interrupted)")
	flag.BoolVar(&opts.blobs, "blobs", false, "fetch digest-published inputs via /blob/{digest} (resumable transfers)")
	flag.StringVar(&opts.blobDir, "blob-dir", "", "disk-backed blob cache directory, kept across restarts (implies -blobs)")
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()
	log.Printf("vcdl-client %s polling %s with %d slots", opts.id, opts.server, opts.slots)
	if err := runClient(ctx, opts, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// runClient is the extracted daemon loop the binary and its tests
// share: live.RunClient with the context bounded by -run-for, plus the
// closing counter report. Detach and deliberate shutdown are success.
func runClient(ctx context.Context, opts clientOptions, out io.Writer) error {
	if opts.runFor > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.runFor)
		defer cancel()
	}
	cl, err := live.RunClient(ctx, live.ClientConfig{
		ID:           opts.id,
		ServerURL:    opts.server,
		Slots:        opts.slots,
		Poll:         opts.poll,
		Blobs:        opts.blobs,
		BlobCacheDir: opts.blobDir,
	})
	fmt.Fprintf(out, "client %s exiting (%v): %d subtasks completed, %d failed, %d preempted, %d downloads, %d cache hits\n",
		opts.id, err, cl.Completed, cl.Failed, cl.Preempted, cl.Downloads, cl.CacheHits)
	if opts.blobs || opts.blobDir != "" {
		bs := cl.BlobStats()
		fmt.Fprintf(out, "client %s blob stats: %d fetched (%d bytes), %d resumes, %d cache hits (%d bytes), %d misses\n",
			opts.id, bs.Fetched, bs.BytesFetched, bs.Resumes, bs.CacheHits, bs.CacheHitBytes, bs.CacheMisses)
	}
	if errors.Is(err, boinc.ErrDetached) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return nil
	}
	return err
}
