// Command vcdl-client runs a volunteer client daemon against a
// vcdl-server: it polls the scheduler for training subtasks, downloads
// model/parameter/data files (with a sticky cache), trains locally and
// uploads updated parameters. Several clients may run concurrently; each
// corresponds to one computing instance in the paper's fleet.
//
//	vcdl-client -server http://localhost:8080 -id c1 -slots 2
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os/signal"
	"syscall"
	"time"

	"vcdl/internal/boinc"
	"vcdl/internal/core"
	"vcdl/internal/data"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "vcdl-server base URL")
	id := flag.String("id", "client-1", "client identifier")
	slots := flag.Int("slots", 2, "simultaneous subtasks (the paper's Tn)")
	poll := flag.Duration("poll", 250*time.Millisecond, "idle poll interval")
	runFor := flag.Duration("run-for", 0, "exit after this duration (0 = until interrupted)")
	flag.Parse()

	// The client-side job config must match the server's training
	// hyperparameters; the architecture itself ships in model.json.
	dc := data.DefaultSynthConfig()
	spec := core.SmallCNNSpec(dc.C, dc.H, dc.W, dc.Classes)
	builder, err := spec.Builder()
	if err != nil {
		log.Fatalf("model spec: %v", err)
	}
	cfg := core.DefaultJobConfig(builder)
	cfg.LocalPasses = 3
	cfg.LearningRate = 0.01

	cl := boinc.NewClient(*id, *server, *slots, core.NewTrainingApp(cfg))
	cl.Poll = *poll

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()
	if *runFor > 0 {
		ctx2, cancel2 := context.WithTimeout(ctx, *runFor)
		defer cancel2()
		ctx = ctx2
	}

	log.Printf("vcdl-client %s polling %s with %d slots", *id, *server, *slots)
	err = cl.Loop(ctx)
	fmt.Printf("client %s exiting (%v): %d subtasks completed, %d failed, %d downloads, %d cache hits\n",
		*id, err, cl.Completed, cl.Failed, cl.Downloads, cl.CacheHits)
}
