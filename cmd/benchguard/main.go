// Command benchguard is the allocation-regression gate for the compute
// hot path. It runs the pinned benchmark set (tensor kernels, wire
// round-trip, the 100k-backlog scheduler request, the executor subtask)
// with -benchmem at fixed iteration counts, then compares allocs/op
// against the baselines committed in BENCH_kernels.json:
//
//   - entries marked pinned_zero_alloc must report exactly 0 allocs/op —
//     any allocation on those kernels is a regression, full stop;
//   - every other entry may not exceed its committed allocs/op by more
//     than max(2, 25%) — slack for map-growth amortization jitter, tight
//     enough to catch a reintroduced per-call copy.
//
// ns/op and throughput metrics are recorded in the same file but never
// gated: CI hosts are too noisy for wall-clock thresholds, while
// allocation counts are deterministic.
//
// Usage:
//
//	go run ./cmd/benchguard           check against BENCH_kernels.json
//	go run ./cmd/benchguard -update   re-measure and rewrite the baseline
//
// With -sched FILE it instead gates the committed scheduler scale grid
// (BENCH_sched_scale.json, produced by `vcdl-scenario bench`): striping
// must beat the single-mutex baseline by the recorded margins and no
// cell may have shed load. That gate is structural — it validates the
// committed record, it does not re-measure (wall-clock numbers are too
// host-dependent to reproduce in CI).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// target is one `go test -bench` invocation. Fixed iteration counts
// (-benchtime Nx) keep amortized allocs/op comparable between the
// committed baseline and the CI check.
type target struct {
	pkg       string
	bench     string
	benchtime string
	// pinnedZero marks every benchmark this target emits as
	// zero-allocation-pinned.
	pinnedZero bool
}

var targets = []target{
	{pkg: "./internal/tensor", bench: "^(BenchmarkMatMulInto|BenchmarkMatMulTransAInto|BenchmarkMatMulTransBInto|BenchmarkIm2ColInto)$", benchtime: "20x", pinnedZero: true},
	{pkg: "./internal/wire", bench: "^(BenchmarkParamsRoundTrip|BenchmarkEncodeCheckpoint)$", benchtime: "50x"},
	{pkg: "./internal/boinc", bench: "^BenchmarkRequestWork$/^paper$", benchtime: "300x"},
	{pkg: ".", bench: "^BenchmarkExecutorSubtask$", benchtime: "20x"},
}

// Entry is one benchmark measurement in BENCH_kernels.json.
type Entry struct {
	Pkg         string             `json:"pkg"`
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	PinnedZero  bool               `json:"pinned_zero_alloc,omitempty"`
}

// File is the BENCH_kernels.json schema.
type File struct {
	Note       string  `json:"note"`
	Benchmarks []Entry `json:"benchmarks"`
}

const baselineNote = "Compute hot-path benchmark baselines (cmd/benchguard -update). " +
	"allocs_per_op is the gated column: pinned_zero_alloc entries must stay at 0, " +
	"the rest within max(2, 25%) of baseline. ns_per_op and metrics are informational."

// benchLine matches one benchmark result row; the trailing -N is the
// GOMAXPROCS suffix, not part of the benchmark's identity.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func main() {
	os.Exit(run())
}

func run() int {
	update := flag.Bool("update", false, "re-measure and rewrite the baseline file")
	baseline := flag.String("baseline", "BENCH_kernels.json", "baseline file to check or update")
	sched := flag.String("sched", "", "gate the committed scheduler scale grid in FILE instead of the allocation baselines")
	flag.Parse()

	if *sched != "" {
		return checkSched(*sched)
	}

	var measured []Entry
	for _, t := range targets {
		entries, err := runTarget(t)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", t.pkg, err)
			return 1
		}
		if len(entries) == 0 {
			fmt.Fprintf(os.Stderr, "benchguard: %s: no benchmarks matched %q\n", t.pkg, t.bench)
			return 1
		}
		measured = append(measured, entries...)
	}
	sort.Slice(measured, func(i, j int) bool {
		if measured[i].Pkg != measured[j].Pkg {
			return measured[i].Pkg < measured[j].Pkg
		}
		return measured[i].Name < measured[j].Name
	})

	if *update {
		blob, err := json.MarshalIndent(File{Note: baselineNote, Benchmarks: measured}, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*baseline, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			return 1
		}
		fmt.Printf("benchguard: wrote %d baselines to %s\n", len(measured), *baseline)
		return 0
	}

	blob, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v (run with -update to create the baseline)\n", err)
		return 1
	}
	var base File
	if err := json.Unmarshal(blob, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: parse %s: %v\n", *baseline, err)
		return 1
	}

	got := make(map[string]Entry, len(measured))
	for _, e := range measured {
		got[e.Pkg+":"+e.Name] = e
	}
	failures := 0
	for _, want := range base.Benchmarks {
		key := want.Pkg + ":" + want.Name
		e, ok := got[key]
		if !ok {
			fmt.Fprintf(os.Stderr, "FAIL %s: baseline benchmark did not run\n", key)
			failures++
			continue
		}
		limit := allocLimit(want)
		switch {
		case want.PinnedZero && e.AllocsPerOp != 0:
			fmt.Fprintf(os.Stderr, "FAIL %s: %d allocs/op on a pinned-zero kernel\n", key, e.AllocsPerOp)
			failures++
		case e.AllocsPerOp > limit:
			fmt.Fprintf(os.Stderr, "FAIL %s: %d allocs/op, baseline %d (limit %d)\n", key, e.AllocsPerOp, want.AllocsPerOp, limit)
			failures++
		default:
			fmt.Printf("ok   %s: %d allocs/op (baseline %d), %.0f ns/op\n", key, e.AllocsPerOp, want.AllocsPerOp, e.NsPerOp)
		}
	}
	for key := range got {
		if !hasBaseline(base.Benchmarks, key) {
			fmt.Printf("note %s: measured but not in baseline (run -update to track it)\n", key)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d allocation regression(s)\n", failures)
		return 1
	}
	fmt.Printf("benchguard: %d baselines hold\n", len(base.Benchmarks))
	return 0
}

// SchedCell mirrors one cell of BENCH_sched_scale.json's grid (the
// fields the gate reads; extra fields pass through unchecked).
type SchedCell struct {
	Clients    int     `json:"clients"`
	Shards     int     `json:"shards"`
	AssignP99s float64 `json:"assign_wait_p99_s"`
	Throughput float64 `json:"workunits_per_second"`
	Shed       int64   `json:"shed"`
}

// SchedFile is the BENCH_sched_scale.json schema.
type SchedFile struct {
	Grid []SchedCell `json:"grid"`
}

// checkSched gates the committed scheduler scale grid (DESIGN.md §14):
//
//   - no cell may have shed requests — the record must capture an
//     un-backpressured drain, otherwise latency numbers are polluted;
//   - at every client count >= 256 present at both 1 shard and the
//     grid's maximum shard count, striping must deliver >= 2x the
//     single-mutex throughput;
//   - the striped assign-wait p99 at the largest fleet must not exceed
//     the single-mutex p99 at 256 clients (scale 4x, pay nothing).
func checkSched(path string) int {
	blob, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v (run `vcdl-scenario bench -o %s` to create it)\n", err, path)
		return 1
	}
	var f SchedFile
	if err := json.Unmarshal(blob, &f); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: parse %s: %v\n", path, err)
		return 1
	}
	if len(f.Grid) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s: empty grid\n", path)
		return 1
	}
	maxShards := 0
	for _, c := range f.Grid {
		if c.Shards > maxShards {
			maxShards = c.Shards
		}
	}
	cell := func(clients, shards int) *SchedCell {
		for i := range f.Grid {
			if f.Grid[i].Clients == clients && f.Grid[i].Shards == shards {
				return &f.Grid[i]
			}
		}
		return nil
	}

	failures := 0
	for _, c := range f.Grid {
		if c.Shed != 0 {
			fmt.Fprintf(os.Stderr, "FAIL sched C=%d S=%d: %d shed requests in the committed record\n", c.Clients, c.Shards, c.Shed)
			failures++
		}
	}
	if maxShards < 2 {
		fmt.Fprintf(os.Stderr, "FAIL sched: grid has no striped (shards > 1) cells\n")
		return 1
	}
	compared := 0
	maxClients := 0
	for _, c := range f.Grid {
		if c.Shards != 1 || c.Clients < 256 {
			continue
		}
		striped := cell(c.Clients, maxShards)
		if striped == nil {
			continue
		}
		compared++
		if c.Clients > maxClients {
			maxClients = c.Clients
		}
		if striped.Throughput < 2*c.Throughput {
			fmt.Fprintf(os.Stderr, "FAIL sched C=%d: %d-shard throughput %.0f wu/s < 2x single-mutex %.0f wu/s\n",
				c.Clients, maxShards, striped.Throughput, c.Throughput)
			failures++
		} else {
			fmt.Printf("ok   sched C=%d: %d-shard throughput %.0f wu/s >= 2x single-mutex %.0f wu/s\n",
				c.Clients, maxShards, striped.Throughput, c.Throughput)
		}
	}
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "FAIL sched: no client count >= 256 measured at both 1 and %d shards\n", maxShards)
		failures++
	}
	if base := cell(256, 1); base != nil && maxClients > 0 {
		striped := cell(maxClients, maxShards)
		if striped.AssignP99s > base.AssignP99s {
			fmt.Fprintf(os.Stderr, "FAIL sched: assign p99 %.3fs at C=%d S=%d exceeds single-mutex p99 %.3fs at C=256\n",
				striped.AssignP99s, maxClients, maxShards, base.AssignP99s)
			failures++
		} else {
			fmt.Printf("ok   sched: assign p99 %.3fs at C=%d S=%d <= single-mutex p99 %.3fs at C=256\n",
				striped.AssignP99s, maxClients, maxShards, base.AssignP99s)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d scheduler-scale regression(s)\n", failures)
		return 1
	}
	fmt.Printf("benchguard: scheduler scale grid holds (%d cells)\n", len(f.Grid))
	return 0
}

func hasBaseline(entries []Entry, key string) bool {
	for _, e := range entries {
		if e.Pkg+":"+e.Name == key {
			return true
		}
	}
	return false
}

// allocLimit is the per-entry ceiling: exact zero for pinned kernels,
// baseline + max(2, 25%) for the rest.
func allocLimit(want Entry) int64 {
	if want.PinnedZero {
		return 0
	}
	slack := want.AllocsPerOp / 4
	if slack < 2 {
		slack = 2
	}
	return want.AllocsPerOp + slack
}

// runTarget shells out to `go test -bench` and parses the result rows.
func runTarget(t target) ([]Entry, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", t.bench, "-benchtime", t.benchtime, "-benchmem", t.pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go test: %v\n%s", err, out)
	}
	var entries []Entry
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		e := Entry{Pkg: t.pkg, Name: m[1], PinnedZero: t.pinnedZero}
		e.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		if err := parseMeasurements(&e, m[3]); err != nil {
			return nil, fmt.Errorf("parse %q: %w", line, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// parseMeasurements reads the value/unit pairs of one result row
// (ns/op, B/op, allocs/op, plus any ReportMetric extras like GFLOPS).
func parseMeasurements(e *Entry, rest string) error {
	fields := strings.Fields(rest)
	if len(fields)%2 != 0 {
		return fmt.Errorf("odd measurement fields %v", fields)
	}
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return err
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			e.BytesPerOp = int64(v)
		case "allocs/op":
			e.AllocsPerOp = int64(v)
		default:
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = v
		}
	}
	return nil
}
