// Command vcdl-server runs the server half of a real distributed VCDL
// training job: the BOINC-style project server (scheduler, file
// distribution, upload handler), the VC-ASGD parameter servers and the
// work generator — the same internal/live stack the scenario engine's
// real mode drives. Point one or more vcdl-client processes at it:
//
//	vcdl-server -addr :8080 -subtasks 20 -epochs 5 -pservers 2
//	vcdl-client -server http://localhost:8080 -id c1 -slots 2
//
// The server prints the per-epoch validation accuracy as results arrive
// and exits when the stopping criterion fires.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"vcdl/internal/boinc"
	"vcdl/internal/core"
	"vcdl/internal/data"
	"vcdl/internal/live"
	"vcdl/internal/obs"
	"vcdl/internal/store"
)

// serveOptions collects the flags so tests can drive serve directly.
type serveOptions struct {
	addr       string
	subtasks   int
	epochs     int
	pservers   int
	target     float64
	strong     bool
	seed       int64
	checkpoint string
	// timeout is the BOINC result deadline (0 = scheduler default,
	// 300s); work stranded on a vanished client is reissued after it.
	timeout time.Duration
	// train/val shrink the synthetic corpus (0 = full default sizes);
	// tests use them to finish in milliseconds.
	train, val int
	// metrics instruments the server: GET /metrics (Prometheus text),
	// GET /debug/vars (JSON snapshot) and /debug/pprof on the same port.
	metrics bool
	// ready, when non-nil, receives the server's base URL once it is
	// accepting requests.
	ready chan<- string
}

func main() {
	var opts serveOptions
	flag.StringVar(&opts.addr, "addr", ":8080", "listen address")
	flag.IntVar(&opts.subtasks, "subtasks", 20, "training subtasks per epoch")
	flag.IntVar(&opts.epochs, "epochs", 5, "maximum training epochs")
	flag.IntVar(&opts.pservers, "pservers", 2, "parameter servers sharing the store")
	flag.Float64Var(&opts.target, "target", 0, "stop when epoch validation accuracy reaches this (0 = run all epochs)")
	flag.BoolVar(&opts.strong, "strong-store", false, "use the strong-consistency store instead of eventual")
	flag.Int64Var(&opts.seed, "seed", 1, "seed for data generation and initialization")
	flag.StringVar(&opts.checkpoint, "checkpoint", "", "write the final parameter vector to this file")
	flag.DurationVar(&opts.timeout, "timeout", 0, "BOINC result deadline (0 = default 5m)")
	flag.IntVar(&opts.train, "train", 0, "training-set size override (0 = default corpus)")
	flag.IntVar(&opts.val, "val", 0, "validation-set size override (0 = default corpus)")
	flag.BoolVar(&opts.metrics, "metrics", false, "expose /metrics, /debug/vars and /debug/pprof on the listen address")
	flag.Parse()

	if _, err := serve(opts, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// serve builds the training job, runs the live server until training
// completes and reports per-epoch progress to out. It returns the final
// run result — the extracted run loop the binary and its tests share.
func serve(opts serveOptions, out io.Writer) (core.RunResult, error) {
	dc := data.DefaultSynthConfig()
	dc.Seed = opts.seed
	if opts.train > 0 {
		dc.NTrain = opts.train
	}
	if opts.val > 0 {
		dc.NVal, dc.NTest = opts.val, opts.val
	}
	corpus, err := data.GenerateSynth(dc)
	if err != nil {
		return core.RunResult{}, fmt.Errorf("generate corpus: %w", err)
	}

	spec := core.SmallCNNSpec(dc.C, dc.H, dc.W, dc.Classes)
	builder, err := spec.Builder()
	if err != nil {
		return core.RunResult{}, fmt.Errorf("model spec: %w", err)
	}
	cfg := core.DefaultJobConfig(builder)
	cfg.Subtasks = opts.subtasks
	cfg.MaxEpochs = opts.epochs
	cfg.TargetAccuracy = opts.target
	cfg.LocalPasses = 3
	cfg.LearningRate = 0.01
	cfg.ValSubset = 200
	cfg.Seed = opts.seed

	var st store.Store = store.NewEventual(3, 4, opts.seed)
	if opts.strong {
		st = store.NewStrong()
	}
	scfg := live.ServerConfig{
		Job:      cfg,
		Spec:     spec,
		Corpus:   corpus,
		PServers: opts.pservers,
		Store:    st,
	}
	if opts.timeout > 0 {
		sched := boinc.DefaultSchedulerConfig()
		sched.DefaultTimeout = opts.timeout.Seconds()
		sched.Seed = opts.seed
		scfg.Scheduler = &sched
	}
	if opts.metrics {
		scfg.Metrics = obs.NewRegistry()
	}
	srv, err := live.StartServer(opts.addr, scfg)
	if err != nil {
		return core.RunResult{}, fmt.Errorf("create job: %w", err)
	}
	defer srv.Close()
	fmt.Fprintf(out, "vcdl-server listening on %s (%d subtasks/epoch, %d epochs, %d parameter servers, %s store)\n",
		srv.URL(), opts.subtasks, opts.epochs, opts.pservers, st.Name())
	if opts.metrics {
		fmt.Fprintf(out, "observability: %s/metrics (Prometheus), %s/debug/vars (JSON), %s/debug/pprof\n",
			srv.URL(), srv.URL(), srv.URL())
	}
	if opts.ready != nil {
		opts.ready <- srv.URL()
	}

	// Report progress until training completes.
	job := srv.D
	seen := 0
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-job.Done():
			res, err := job.Result()
			if err != nil {
				return core.RunResult{}, fmt.Errorf("job failed: %w", err)
			}
			reportNew(out, &seen, res)
			fmt.Fprintf(out, "training finished: %d epochs, final accuracy %.3f (stopped early: %v)\n",
				len(res.Curve.Points), res.Curve.FinalValue(), res.Stopped)
			if opts.checkpoint != "" && len(res.FinalParams) > 0 {
				if err := core.SaveParams(opts.checkpoint, res.FinalParams); err != nil {
					fmt.Fprintf(out, "checkpoint: %v\n", err)
				} else {
					fmt.Fprintf(out, "checkpoint written to %s\n", opts.checkpoint)
				}
			}
			return res, nil
		case <-tick.C:
			res, err := job.Result()
			if err == nil {
				reportNew(out, &seen, res)
			}
		}
	}
}

func reportNew(out io.Writer, seen *int, res core.RunResult) {
	for _, p := range res.Curve.Points[*seen:] {
		fmt.Fprintf(out, "epoch %2d  validation accuracy %.3f  [%.3f, %.3f]\n", p.Epoch, p.Value, p.Lo, p.Hi)
		*seen++
	}
}
