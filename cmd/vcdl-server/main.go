// Command vcdl-server runs the server half of a real distributed VCDL
// training job: the BOINC-style project server (scheduler, file
// distribution, upload handler), the VC-ASGD parameter servers and the
// work generator — the same internal/live stack the scenario engine's
// real mode drives. Point one or more vcdl-client processes at it:
//
//	vcdl-server -addr :8080 -subtasks 20 -epochs 5 -pservers 2
//	vcdl-client -server http://localhost:8080 -id c1 -slots 2
//
// The server prints the per-epoch validation accuracy as results arrive
// and exits when the stopping criterion fires.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vcdl/internal/boinc"
	"vcdl/internal/core"
	"vcdl/internal/data"
	"vcdl/internal/live"
	"vcdl/internal/obs"
	"vcdl/internal/store"
)

// serveOptions collects the flags so tests can drive serve directly.
type serveOptions struct {
	addr     string
	subtasks int
	epochs   int
	pservers int
	target   float64
	// storeKind selects the parameter store backend ("eventual" or
	// "strong"); strong is the deprecated -strong-store alias.
	storeKind string
	strong    bool
	seed      int64
	// checkpoint is an epoch-stamped checkpoint file: written on SIGTERM
	// and on completion, loaded (if present) on startup so a restarted
	// server resumes training instead of starting over.
	checkpoint string
	// blobs serves every published input at /blob/{digest} (resumable,
	// digest-verified transfers) alongside the classic /download path.
	blobs bool
	// ckptStore persists epoch checkpoints through the parameter store
	// so PS failover restores instead of restarting the epoch.
	ckptStore bool
	// stop, when non-nil, triggers the graceful-shutdown path (main
	// wires SIGINT/SIGTERM to it; tests send on it directly).
	stop <-chan os.Signal
	// timeout is the BOINC result deadline (0 = scheduler default,
	// 300s); work stranded on a vanished client is reissued after it.
	timeout time.Duration
	// train/val shrink the synthetic corpus (0 = full default sizes);
	// tests use them to finish in milliseconds.
	train, val int
	// metrics instruments the server: GET /metrics (Prometheus text),
	// GET /debug/vars (JSON snapshot) and /debug/pprof on the same port.
	metrics bool
	// ready, when non-nil, receives the server's base URL once it is
	// accepting requests.
	ready chan<- string
}

func main() {
	var opts serveOptions
	flag.StringVar(&opts.addr, "addr", ":8080", "listen address")
	flag.IntVar(&opts.subtasks, "subtasks", 20, "training subtasks per epoch")
	flag.IntVar(&opts.epochs, "epochs", 5, "maximum training epochs")
	flag.IntVar(&opts.pservers, "pservers", 2, "parameter servers sharing the store")
	flag.Float64Var(&opts.target, "target", 0, "stop when epoch validation accuracy reaches this (0 = run all epochs)")
	flag.StringVar(&opts.storeKind, "store", "eventual", "parameter store backend: eventual or strong")
	flag.BoolVar(&opts.strong, "strong-store", false, "deprecated alias for -store strong")
	flag.Int64Var(&opts.seed, "seed", 1, "seed for data generation and initialization")
	flag.StringVar(&opts.checkpoint, "checkpoint", "", "epoch-stamped checkpoint file: saved on SIGTERM and completion, resumed from on restart")
	flag.BoolVar(&opts.blobs, "blobs", false, "serve inputs at /blob/{digest} (content-addressed, resumable transfers)")
	flag.BoolVar(&opts.ckptStore, "checkpoints", false, "persist epoch checkpoints through the parameter store (PS failover restores instead of restarting)")
	flag.DurationVar(&opts.timeout, "timeout", 0, "BOINC result deadline (0 = default 5m)")
	flag.IntVar(&opts.train, "train", 0, "training-set size override (0 = default corpus)")
	flag.IntVar(&opts.val, "val", 0, "validation-set size override (0 = default corpus)")
	flag.BoolVar(&opts.metrics, "metrics", false, "expose /metrics, /debug/vars and /debug/pprof on the listen address")
	flag.Parse()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	opts.stop = sig
	if _, err := serve(opts, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// serve builds the training job, runs the live server until training
// completes and reports per-epoch progress to out. It returns the final
// run result — the extracted run loop the binary and its tests share.
func serve(opts serveOptions, out io.Writer) (core.RunResult, error) {
	dc := data.DefaultSynthConfig()
	dc.Seed = opts.seed
	if opts.train > 0 {
		dc.NTrain = opts.train
	}
	if opts.val > 0 {
		dc.NVal, dc.NTest = opts.val, opts.val
	}
	corpus, err := data.GenerateSynth(dc)
	if err != nil {
		return core.RunResult{}, fmt.Errorf("generate corpus: %w", err)
	}

	spec := core.SmallCNNSpec(dc.C, dc.H, dc.W, dc.Classes)
	builder, err := spec.Builder()
	if err != nil {
		return core.RunResult{}, fmt.Errorf("model spec: %w", err)
	}
	cfg := core.DefaultJobConfig(builder)
	cfg.Subtasks = opts.subtasks
	cfg.MaxEpochs = opts.epochs
	cfg.TargetAccuracy = opts.target
	cfg.LocalPasses = 3
	cfg.LearningRate = 0.01
	cfg.ValSubset = 200
	cfg.Seed = opts.seed

	kind := opts.storeKind
	if opts.strong {
		kind = "strong"
	}
	var st store.Store
	switch kind {
	case "", "eventual":
		st = store.NewEventual(3, 4, opts.seed)
	case "strong":
		st = store.NewStrong()
	default:
		return core.RunResult{}, fmt.Errorf("unknown -store %q (want eventual or strong)", kind)
	}
	scfg := live.ServerConfig{
		Job:        cfg,
		Spec:       spec,
		Corpus:     corpus,
		PServers:   opts.pservers,
		Store:      st,
		Blobs:      opts.blobs,
		Checkpoint: opts.ckptStore,
	}
	// A checkpoint file from a previous (interrupted or finished) run
	// resumes training at the epoch after the one it captured; the epoch
	// budget is absolute, so a resumed job still stops at -epochs.
	if opts.checkpoint != "" {
		epoch, params, err := core.LoadCheckpoint(opts.checkpoint)
		switch {
		case err == nil && epoch > 0:
			scfg.ResumeEpoch = epoch
			scfg.ResumeParams = params
			fmt.Fprintf(out, "resuming from checkpoint %s (epoch %d)\n", opts.checkpoint, epoch)
		case errors.Is(err, os.ErrNotExist):
			// Fresh start; the file appears on the first save.
		case err != nil:
			fmt.Fprintf(out, "checkpoint %s unreadable (%v), starting fresh\n", opts.checkpoint, err)
		}
	}
	if opts.timeout > 0 {
		sched := boinc.DefaultSchedulerConfig()
		sched.DefaultTimeout = opts.timeout.Seconds()
		sched.Seed = opts.seed
		scfg.Scheduler = &sched
	}
	if opts.metrics {
		scfg.Metrics = obs.NewRegistry()
	}
	srv, err := live.StartServer(opts.addr, scfg)
	if err != nil {
		return core.RunResult{}, fmt.Errorf("create job: %w", err)
	}
	defer srv.Close()
	// The standalone admin plane: /healthz for liveness and /ops for the
	// scheduler-scoped actions (cordon, drain, tune, ps, policy, list).
	srv.EnableOps()
	fmt.Fprintf(out, "vcdl-server listening on %s (%d subtasks/epoch, %d epochs, %d parameter servers, %s store)\n",
		srv.URL(), opts.subtasks, opts.epochs, opts.pservers, st.Name())
	fmt.Fprintf(out, "admin plane: %s/healthz (liveness), %s/ops/clients (docs/ops-api.md; vcdl-scenario ops -server %s)\n",
		srv.URL(), srv.URL(), srv.URL())
	if opts.blobs {
		fmt.Fprintf(out, "data plane: inputs published at %s/blob/{digest} (resumable, digest-verified)\n", srv.URL())
	}
	if opts.metrics {
		fmt.Fprintf(out, "observability: %s/metrics (Prometheus), %s/debug/vars (JSON), %s/debug/pprof\n",
			srv.URL(), srv.URL(), srv.URL())
	}
	if opts.ready != nil {
		opts.ready <- srv.URL()
	}

	// Report progress until training completes.
	job := srv.D
	seen := 0
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-job.Done():
			res, err := job.Result()
			if err != nil {
				return core.RunResult{}, fmt.Errorf("job failed: %w", err)
			}
			reportNew(out, &seen, res)
			fmt.Fprintf(out, "training finished: %d epochs, final accuracy %.3f (stopped early: %v)\n",
				len(res.Curve.Points), res.Curve.FinalValue(), res.Stopped)
			if opts.checkpoint != "" && len(res.FinalParams) > 0 {
				epoch := scfg.ResumeEpoch + len(res.Curve.Points)
				if n := len(res.Curve.Points); n > 0 {
					epoch = res.Curve.Points[n-1].Epoch
				}
				if err := core.SaveCheckpoint(opts.checkpoint, epoch, res.FinalParams); err != nil {
					fmt.Fprintf(out, "checkpoint: %v\n", err)
				} else {
					fmt.Fprintf(out, "checkpoint written to %s (epoch %d)\n", opts.checkpoint, epoch)
				}
			}
			return res, nil
		case <-opts.stop:
			// Graceful shutdown: snapshot the live parameter copy so a
			// restart with the same -checkpoint resumes mid-run instead of
			// retraining the finished epochs.
			res, _ := job.Result()
			reportNew(out, &seen, res)
			if opts.checkpoint != "" {
				epoch, params, err := job.Snapshot()
				if err != nil {
					fmt.Fprintf(out, "shutdown: snapshot failed: %v\n", err)
				} else if err := core.SaveCheckpoint(opts.checkpoint, epoch, params); err != nil {
					fmt.Fprintf(out, "shutdown: %v\n", err)
				} else {
					fmt.Fprintf(out, "interrupted: checkpoint written to %s (epoch %d); restart with the same -checkpoint to resume\n",
						opts.checkpoint, epoch)
				}
			} else {
				fmt.Fprintln(out, "interrupted (no -checkpoint file; progress not saved)")
			}
			return res, nil
		case <-tick.C:
			res, err := job.Result()
			if err == nil {
				reportNew(out, &seen, res)
			}
		}
	}
}

func reportNew(out io.Writer, seen *int, res core.RunResult) {
	for _, p := range res.Curve.Points[*seen:] {
		fmt.Fprintf(out, "epoch %2d  validation accuracy %.3f  [%.3f, %.3f]\n", p.Epoch, p.Value, p.Lo, p.Hi)
		*seen++
	}
}
