// Command vcdl-server runs the server half of a real distributed VCDL
// training job: the BOINC-style project server (scheduler, file
// distribution, upload handler), the VC-ASGD parameter servers and the
// work generator. Point one or more vcdl-client processes at it:
//
//	vcdl-server -addr :8080 -subtasks 20 -epochs 5 -pservers 2
//	vcdl-client -server http://localhost:8080 -id c1 -slots 2
//
// The server prints the per-epoch validation accuracy as results arrive
// and exits when the stopping criterion fires.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"vcdl/internal/core"
	"vcdl/internal/data"
	"vcdl/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	subtasks := flag.Int("subtasks", 20, "training subtasks per epoch")
	epochs := flag.Int("epochs", 5, "maximum training epochs")
	pservers := flag.Int("pservers", 2, "parameter servers sharing the store")
	target := flag.Float64("target", 0, "stop when epoch validation accuracy reaches this (0 = run all epochs)")
	strong := flag.Bool("strong-store", false, "use the strong-consistency store instead of eventual")
	seed := flag.Int64("seed", 1, "seed for data generation and initialization")
	checkpoint := flag.String("checkpoint", "", "write the final parameter vector to this file")
	flag.Parse()

	dc := data.DefaultSynthConfig()
	dc.Seed = *seed
	corpus, err := data.GenerateSynth(dc)
	if err != nil {
		log.Fatalf("generate corpus: %v", err)
	}

	spec := core.SmallCNNSpec(dc.C, dc.H, dc.W, dc.Classes)
	builder, err := spec.Builder()
	if err != nil {
		log.Fatalf("model spec: %v", err)
	}
	cfg := core.DefaultJobConfig(builder)
	cfg.Subtasks = *subtasks
	cfg.MaxEpochs = *epochs
	cfg.TargetAccuracy = *target
	cfg.LocalPasses = 3
	cfg.LearningRate = 0.01
	cfg.ValSubset = 200
	cfg.Seed = *seed

	var st store.Store = store.NewEventual(3, 4, *seed)
	if *strong {
		st = store.NewStrong()
	}
	job, err := core.NewDistributed(cfg, spec, corpus, *pservers, st)
	if err != nil {
		log.Fatalf("create job: %v", err)
	}

	srv := &http.Server{Addr: *addr, Handler: job.Server()}
	go func() {
		log.Printf("vcdl-server listening on %s (%d subtasks/epoch, %d epochs, %d parameter servers, %s store)",
			*addr, *subtasks, *epochs, *pservers, st.Name())
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("listen: %v", err)
		}
	}()

	// Report progress until training completes.
	seen := 0
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-job.Done():
			res, err := job.Result()
			if err != nil {
				log.Fatalf("job failed: %v", err)
			}
			reportNew(&seen, res)
			fmt.Printf("training finished: %d epochs, final accuracy %.3f (stopped early: %v)\n",
				len(res.Curve.Points), res.Curve.FinalValue(), res.Stopped)
			if *checkpoint != "" && len(res.FinalParams) > 0 {
				if err := core.SaveParams(*checkpoint, res.FinalParams); err != nil {
					log.Printf("checkpoint: %v", err)
				} else {
					log.Printf("checkpoint written to %s", *checkpoint)
				}
			}
			srv.Close()
			return
		case <-tick.C:
			res, err := job.Result()
			if err == nil {
				reportNew(&seen, res)
			}
		}
	}
}

func reportNew(seen *int, res core.RunResult) {
	for _, p := range res.Curve.Points[*seen:] {
		fmt.Printf("epoch %2d  validation accuracy %.3f  [%.3f, %.3f]\n", p.Epoch, p.Value, p.Lo, p.Hi)
		*seen++
	}
}
