package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"vcdl/internal/core"
	"vcdl/internal/live"
)

// lockedWriter collects serve output across goroutines.
type lockedWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *lockedWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// tinyOpts is a serve configuration that finishes in seconds: a small
// corpus, few subtasks, and a free port.
func tinyOpts() serveOptions {
	return serveOptions{
		addr:     "127.0.0.1:0",
		subtasks: 6,
		epochs:   2,
		pservers: 2,
		seed:     7,
		train:    300,
		val:      120,
	}
}

// startServe runs serve on a goroutine and returns the URL it listens
// on plus a channel with its outcome.
func startServe(t *testing.T, opts serveOptions, out *lockedWriter) (string, <-chan error) {
	t.Helper()
	ready := make(chan string, 1)
	opts.ready = ready
	errc := make(chan error, 1)
	go func() {
		_, err := serve(opts, out)
		errc <- err
	}()
	select {
	case url := <-ready:
		return url, errc
	case err := <-errc:
		t.Fatalf("serve exited before listening: %v", err)
		return "", nil
	}
}

// TestServeRunsToCompletion drives the extracted serve() with live
// clients until the epoch budget is exhausted: the handshake (job.json
// + model.json) and the full run loop over real HTTP.
func TestServeRunsToCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second real-HTTP training run")
	}
	var out lockedWriter
	url, errc := startServe(t, tinyOpts(), &out)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, id := range []string{"c0", "c1"} {
		cfg := live.ClientConfig{ID: id, ServerURL: url, Slots: 2, Poll: 10 * time.Millisecond}
		go live.RunClient(ctx, cfg)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-ctx.Done():
		t.Fatal("training did not finish in time")
	}
	output := out.String()
	if !strings.Contains(output, "training finished: 2 epochs") {
		t.Fatalf("missing completion line in output:\n%s", output)
	}
	if !strings.Contains(output, "epoch  1") || !strings.Contains(output, "epoch  2") {
		t.Fatalf("missing per-epoch progress in output:\n%s", output)
	}
}

// TestServeSigtermCheckpointResume pins the graceful-shutdown contract:
// an interrupted server writes an epoch-stamped checkpoint, and a
// restart with the same -checkpoint resumes mid-run instead of
// retraining the finished epochs.
func TestServeSigtermCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second real-HTTP training run")
	}
	ckpt := filepath.Join(t.TempDir(), "server.ckpt")
	opts := tinyOpts()
	opts.epochs = 4
	opts.subtasks = 10 // long enough epochs that the SIGTERM lands mid-run
	opts.checkpoint = ckpt
	stop := make(chan os.Signal, 1)
	opts.stop = stop
	var out lockedWriter
	url, errc := startServe(t, opts, &out)

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	clientCtx, stopClients := context.WithCancel(ctx)
	for _, id := range []string{"c0", "c1"} {
		cfg := live.ClientConfig{ID: id, ServerURL: url, Slots: 2, Poll: 10 * time.Millisecond}
		go live.RunClient(clientCtx, cfg)
	}

	// Interrupt once the first epoch has closed, so the checkpoint has
	// progress worth resuming.
	deadline := time.After(60 * time.Second)
	for !strings.Contains(out.String(), "epoch  1") {
		select {
		case <-deadline:
			t.Fatalf("epoch 1 never closed:\n%s", out.String())
		case <-time.After(50 * time.Millisecond):
		}
	}
	stop <- syscall.SIGTERM
	if err := <-errc; err != nil {
		t.Fatalf("interrupted serve: %v", err)
	}
	stopClients()
	if !strings.Contains(out.String(), "interrupted: checkpoint written to") {
		t.Fatalf("no shutdown checkpoint reported:\n%s", out.String())
	}
	epoch, params, err := core.LoadCheckpoint(ckpt)
	if err != nil || epoch < 1 || len(params) == 0 {
		t.Fatalf("checkpoint unreadable: epoch %d, %d params, err %v", epoch, len(params), err)
	}

	// Restart with the same checkpoint file: the run resumes at epoch+1
	// and still stops at the absolute 4-epoch budget.
	var out2 lockedWriter
	url2, errc2 := startServe(t, opts, &out2)
	for _, id := range []string{"c2", "c3"} {
		cfg := live.ClientConfig{ID: id, ServerURL: url2, Slots: 2, Poll: 10 * time.Millisecond}
		go live.RunClient(ctx, cfg)
	}
	select {
	case err := <-errc2:
		if err != nil {
			t.Fatalf("resumed serve: %v", err)
		}
	case <-ctx.Done():
		t.Fatal("resumed run did not finish in time")
	}
	output := out2.String()
	if !strings.Contains(output, fmt.Sprintf("resuming from checkpoint %s (epoch %d)", ckpt, epoch)) {
		t.Fatalf("restart did not resume from the checkpoint:\n%s", output)
	}
	if !strings.Contains(output, "epoch  4") {
		t.Fatalf("resumed run never reached epoch 4:\n%s", output)
	}
	if want := fmt.Sprintf("epoch %2d", epoch); strings.Contains(output, want) {
		t.Fatalf("resumed run retrained epoch %d it should have skipped:\n%s", epoch, output)
	}
	if finalEpoch, _, err := core.LoadCheckpoint(ckpt); err != nil || finalEpoch != 4 {
		t.Fatalf("final checkpoint epoch = %d (err %v), want 4", finalEpoch, err)
	}
}

// TestServeTargetReachedAndClientRejoin kills the only client mid-run,
// rejoins a replacement, and requires the run to stop early at the
// target accuracy anyway — the §III-B fault-tolerance story on the real
// HTTP stack.
func TestServeTargetReachedAndClientRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second real-HTTP training run")
	}
	opts := tinyOpts()
	opts.epochs = 30
	opts.target = 0.2              // reachable within a few epochs on the tiny corpus
	opts.timeout = 3 * time.Second // stranded work from the kill reissues quickly
	var out lockedWriter
	url, errc := startServe(t, opts, &out)

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	// First client dies abruptly after a burst of work.
	ctx1, kill := context.WithCancel(ctx)
	first := make(chan error, 1)
	go func() {
		_, err := live.RunClient(ctx1, live.ClientConfig{ID: "doomed", ServerURL: url, Slots: 2, Poll: 10 * time.Millisecond})
		first <- err
	}()
	time.Sleep(1500 * time.Millisecond)
	kill()
	if err := <-first; err == nil {
		t.Fatal("killed client returned nil error")
	}

	// A replacement joins and carries the run to the target.
	go live.RunClient(ctx, live.ClientConfig{ID: "replacement", ServerURL: url, Slots: 2, Poll: 10 * time.Millisecond})
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-ctx.Done():
		t.Fatal("training did not reach the target in time")
	}
	if output := out.String(); !strings.Contains(output, "stopped early: true") {
		t.Fatalf("run did not stop at target:\n%s", output)
	}
}
