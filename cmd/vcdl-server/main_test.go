package main

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"vcdl/internal/live"
)

// lockedWriter collects serve output across goroutines.
type lockedWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *lockedWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// tinyOpts is a serve configuration that finishes in seconds: a small
// corpus, few subtasks, and a free port.
func tinyOpts() serveOptions {
	return serveOptions{
		addr:     "127.0.0.1:0",
		subtasks: 6,
		epochs:   2,
		pservers: 2,
		seed:     7,
		train:    300,
		val:      120,
	}
}

// startServe runs serve on a goroutine and returns the URL it listens
// on plus a channel with its outcome.
func startServe(t *testing.T, opts serveOptions, out *lockedWriter) (string, <-chan error) {
	t.Helper()
	ready := make(chan string, 1)
	opts.ready = ready
	errc := make(chan error, 1)
	go func() {
		_, err := serve(opts, out)
		errc <- err
	}()
	select {
	case url := <-ready:
		return url, errc
	case err := <-errc:
		t.Fatalf("serve exited before listening: %v", err)
		return "", nil
	}
}

// TestServeRunsToCompletion drives the extracted serve() with live
// clients until the epoch budget is exhausted: the handshake (job.json
// + model.json) and the full run loop over real HTTP.
func TestServeRunsToCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second real-HTTP training run")
	}
	var out lockedWriter
	url, errc := startServe(t, tinyOpts(), &out)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, id := range []string{"c0", "c1"} {
		cfg := live.ClientConfig{ID: id, ServerURL: url, Slots: 2, Poll: 10 * time.Millisecond}
		go live.RunClient(ctx, cfg)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-ctx.Done():
		t.Fatal("training did not finish in time")
	}
	output := out.String()
	if !strings.Contains(output, "training finished: 2 epochs") {
		t.Fatalf("missing completion line in output:\n%s", output)
	}
	if !strings.Contains(output, "epoch  1") || !strings.Contains(output, "epoch  2") {
		t.Fatalf("missing per-epoch progress in output:\n%s", output)
	}
}

// TestServeTargetReachedAndClientRejoin kills the only client mid-run,
// rejoins a replacement, and requires the run to stop early at the
// target accuracy anyway — the §III-B fault-tolerance story on the real
// HTTP stack.
func TestServeTargetReachedAndClientRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second real-HTTP training run")
	}
	opts := tinyOpts()
	opts.epochs = 30
	opts.target = 0.2              // reachable within a few epochs on the tiny corpus
	opts.timeout = 3 * time.Second // stranded work from the kill reissues quickly
	var out lockedWriter
	url, errc := startServe(t, opts, &out)

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	// First client dies abruptly after a burst of work.
	ctx1, kill := context.WithCancel(ctx)
	first := make(chan error, 1)
	go func() {
		_, err := live.RunClient(ctx1, live.ClientConfig{ID: "doomed", ServerURL: url, Slots: 2, Poll: 10 * time.Millisecond})
		first <- err
	}()
	time.Sleep(1500 * time.Millisecond)
	kill()
	if err := <-first; err == nil {
		t.Fatal("killed client returned nil error")
	}

	// A replacement joins and carries the run to the target.
	go live.RunClient(ctx, live.ClientConfig{ID: "replacement", ServerURL: url, Slots: 2, Poll: 10 * time.Millisecond})
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-ctx.Done():
		t.Fatal("training did not reach the target in time")
	}
	if output := out.String(); !strings.Contains(output, "stopped early: true") {
		t.Fatalf("run did not stop at target:\n%s", output)
	}
}
