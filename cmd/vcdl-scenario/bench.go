package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"vcdl/internal/boinc"
	"vcdl/internal/metrics"
	"vcdl/internal/obs"
)

// benchCell is one measured cell of the scheduler scale grid,
// serialized into BENCH_sched_scale.json. It extends the older
// BENCH_sched_latency.json schema with the shard count and shed total
// so cmd/benchguard can gate striping wins and backpressure health.
type benchCell struct {
	Clients   int `json:"clients"`
	Workunits int `json:"workunits"`
	// Shards is the scheduler state stripe count the cell ran with
	// (1 = the single-mutex baseline).
	Shards int `json:"shards"`
	// Requests counts scheduler RPCs issued (drain + the empty replies
	// that end each worker).
	Requests int64 `json:"requests"`
	// RPC latencies are the server-side wall clock of the /scheduler
	// handler, from vcdl_rpc_seconds{handler="scheduler"}.
	RPCp50Ms float64 `json:"rpc_p50_ms"`
	RPCp99Ms float64 `json:"rpc_p99_ms"`
	// Assignment waits are how long workunits sat queued before issue,
	// from vcdl_sched_assign_wait_seconds (wall seconds).
	AssignP50s float64 `json:"assign_wait_p50_s"`
	AssignP99s float64 `json:"assign_wait_p99_s"`
	// DrainSeconds is the wall clock to assign and complete the whole
	// backlog; Throughput is workunits completed per second.
	DrainSeconds float64 `json:"drain_seconds"`
	Throughput   float64 `json:"workunits_per_second"`
	// Shed counts requests rejected (429) by admission control; 0 when
	// the gate is off or never tripped.
	Shed int64 `json:"shed"`
}

// cmdBench hammers an instrumented live boinc.Server from N concurrent
// HTTP client daemons per cell of a (clients × shards) grid, draining a
// synthetic backlog, and records scheduler RPC latency, assignment-wait
// percentiles and throughput — the load generator behind
// BENCH_sched_scale.json (DESIGN.md §14). The backlog is the same total
// for every cell, so cells compare capacity: constant offered work, a
// growing fleet contending for it. Cells run serially so each measures
// one configuration alone.
func cmdBench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	clientsFlag := fs.String("clients", "64,256,1024", "comma-separated concurrent client counts")
	backlog := fs.Int("backlog", 24576, "total workunits seeded per cell (fixed across cells so offered work is constant while the fleet grows)")
	shardsFlag := fs.String("shards", "1,8", "comma-separated scheduler stripe counts")
	admit := fs.Int("admit", 0, "admission MaxConcurrent (0 = no admission gate)")
	queue := fs.Int("queue", 0, "admission MaxQueue (with -admit)")
	out := fs.String("o", "", "write the grid as JSON (e.g. BENCH_sched_scale.json)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	sizes, err := parseIntList(*clientsFlag)
	if err != nil {
		fmt.Fprintf(stderr, "vcdl-scenario bench: bad -clients: %v\n", err)
		return 2
	}
	shardCounts, err := parseIntList(*shardsFlag)
	if err != nil {
		fmt.Fprintf(stderr, "vcdl-scenario bench: bad -shards: %v\n", err)
		return 2
	}
	if *backlog < 1 {
		fmt.Fprintf(stderr, "vcdl-scenario bench: bad -backlog %d (want >= 1)\n", *backlog)
		return 2
	}

	fmt.Fprintf(stdout, "scheduler scale bench — clients ∈ %v × shards ∈ %v, %d-workunit backlog per cell\n",
		sizes, shardCounts, *backlog)
	var cells []benchCell
	var rows [][]string
	for _, shards := range shardCounts {
		for _, n := range sizes {
			cell, err := benchCellRun(n, *backlog, shards, *admit, *queue)
			if err != nil {
				fmt.Fprintf(stderr, "vcdl-scenario bench: %v\n", err)
				return 1
			}
			cells = append(cells, *cell)
			rows = append(rows, []string{
				strconv.Itoa(cell.Shards),
				strconv.Itoa(cell.Clients),
				strconv.Itoa(cell.Workunits),
				fmt.Sprintf("%.2f", cell.RPCp50Ms),
				fmt.Sprintf("%.2f", cell.RPCp99Ms),
				fmt.Sprintf("%.3f", cell.AssignP50s),
				fmt.Sprintf("%.3f", cell.AssignP99s),
				fmt.Sprintf("%.2f s", cell.DrainSeconds),
				fmt.Sprintf("%.0f", cell.Throughput),
				strconv.FormatInt(cell.Shed, 10),
			})
		}
	}
	fmt.Fprint(stdout, metrics.Table(
		[]string{"shards", "clients", "workunits", "rpc p50(ms)", "rpc p99(ms)", "assign p50(s)", "assign p99(s)", "drain", "wu/s", "shed"}, rows))
	if *out != "" {
		blob, err := json.MarshalIndent(map[string]any{"grid": cells}, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "vcdl-scenario bench: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "vcdl-scenario bench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s (%d cells)\n", *out, len(cells))
	}
	return 0
}

// benchCellRun measures one (clients, shards) configuration: an
// instrumented server is seeded with a workunit backlog, then n HTTP
// client daemons race to drain it, each looping request→upload until
// the scheduler replies empty. Workers that get shed (429) honour the
// Retry-After advisory and retry, so a gated cell still drains fully.
func benchCellRun(n, wus, shards, admitMax, admitQueue int) (*benchCell, error) {
	reg := obs.NewRegistry()
	cfg := boinc.DefaultSchedulerConfig()
	cfg.DefaultTimeout = 3600 // wall seconds; nothing should expire mid-bench
	cfg.Shards = shards
	srv := boinc.NewServer(cfg, nil, nil)
	if admitMax > 0 {
		srv.EnableAdmission(boinc.AdmissionConfig{
			MaxConcurrent: admitMax,
			MaxQueue:      admitQueue,
			RetryAfter:    50 * time.Millisecond,
		})
	}
	srv.EnableMetrics(reg)
	for i := 0; i < wus; i++ {
		srv.AddWorkunit(boinc.Workunit{
			Name:       fmt.Sprintf("bench-%d", i),
			InputFiles: []string{"model", fmt.Sprintf("shard-%d", i%64)},
		})
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var requests int64
	var mu sync.Mutex
	var firstErr error
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := boinc.NewClient(fmt.Sprintf("load-%03d", id), ts.URL, 1, nil)
			for {
				asns, err := cl.RequestWork(1)
				mu.Lock()
				requests++
				mu.Unlock()
				if err != nil {
					var ra *boinc.RetryAfterError
					if errors.As(err, &ra) {
						time.Sleep(ra.After)
						continue
					}
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if len(asns) == 0 {
					return
				}
				if err := cl.Upload(asns[0].ResultID, []byte("ok"), nil); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(c)
	}
	wg.Wait()
	drain := time.Since(start).Seconds()
	if firstErr != nil {
		return nil, fmt.Errorf("bench C=%d S=%d: %w", n, shards, firstErr)
	}

	cell := &benchCell{Clients: n, Workunits: wus, Shards: shards, Requests: requests, DrainSeconds: drain, Shed: srv.ShedCount()}
	if drain > 0 {
		cell.Throughput = float64(wus) / drain
	}
	if h := reg.FindHistogram(boinc.MetricRPCSeconds, "scheduler"); h != nil && h.Count() > 0 {
		cell.RPCp50Ms = h.Quantile(0.5) * 1000
		cell.RPCp99Ms = h.Quantile(0.99) * 1000
	}
	if h := reg.FindHistogram(boinc.MetricAssignWait); h != nil && h.Count() > 0 {
		cell.AssignP50s = h.Quantile(0.5)
		cell.AssignP99s = h.Quantile(0.99)
	}
	if done := reg.CounterValue("vcdl_sched_workunits_done_total"); done != int64(wus) {
		return nil, fmt.Errorf("bench C=%d S=%d: drained %d of %d workunits", n, shards, done, wus)
	}
	return cell, nil
}

// parseIntList parses "64,256,1024" into positive ints.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad value %q (want integers >= 1)", part)
		}
		out = append(out, n)
	}
	return out, nil
}
