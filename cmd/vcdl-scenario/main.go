// Command vcdl-scenario runs, compares and validates declarative
// fault/churn scenarios (DESIGN.md §5, §9; grammar in
// docs/scenario-dsl.md):
//
//	vcdl-scenario run [-mode sim|real] [-seed N] [-trace] [-procs] [-speedup X] <scenario.txt>...
//	vcdl-scenario compare [-seed N] [-speedup X] [-csv out.csv] <scenario.txt>...
//	vcdl-scenario validate <scenario.txt>...
//	vcdl-scenario gen [-model M] [-seed N] [-o out.txt]
//	vcdl-scenario ops [-server URL | -url-file FILE] [command...]
//
// run executes each scenario — on the virtual-time simulator (-mode
// sim, the default) or against a live fleet of real HTTP clients
// (-mode real; -procs isolates each client in its own OS process) —
// and prints its assertion results; the exit code is 0 when every
// assertion of every scenario passes, 1 otherwise. compare runs sim
// and real back-to-back and emits a fidelity CSV so sim↔real
// divergence becomes a reported quantity. validate parses and checks
// the files without running anything (exit 2 on any malformed
// scenario) and reports which mode(s) each file supports. gen emits a
// seeded scenario from an operational model (churn, diurnal,
// flash-crowd, byzantine) — same model+seed, byte-identical file. ops
// is the admin console for a live fleet (docs/ops-api.md): one-shot or
// interactive, driving the same /ops endpoints scenario events and
// curl use. The bundled scenario library lives in examples/scenarios/.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"vcdl/internal/live"
	"vcdl/internal/metrics"
	"vcdl/internal/obs"
	"vcdl/internal/scenario"
)

func main() {
	// Hidden client mode: -procs re-execs this binary as the volunteer
	// client daemons, so process-isolated fleets need no second binary.
	if len(os.Args) > 1 && os.Args[1] == "_client" {
		os.Exit(clientMain(os.Args[2:], os.Stderr))
	}
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: vcdl-scenario <command> [flags] <scenario-file>...

commands:
  run       execute scenarios and check their assertions
            flags: -mode sim|real (engine), -seed N (override scenario seed),
                   -trace (print event trace), -procs (real mode: clients as
                   OS processes), -store eventual|strong (real mode: override
                   the parameter store backend), -speedup X (real mode: X
                   virtual seconds per wall second, default 60), -wall-limit D
                   (real-mode wall-clock budget per scenario, default 2m),
                   -metrics FILE (write per-run metric snapshots as JSON),
                   -v (real mode: structured fleet/client logging to stderr)
  compare   run each scenario in sim and real mode back-to-back and emit
            a sim<->real fidelity CSV (-csv FILE writes it, default stdout;
            -seed/-speedup/-wall-limit as for run)
  validate  parse and validate scenario files without running them, and
            report which mode(s) each supports
  gen       emit a seeded scenario file from an operational model
            flags: -model churn|diurnal|flash-crowd|byzantine, -seed N,
                   -clients N, -behavior B (byzantine), -o FILE (default
                   stdout); same model+seed => byte-identical output
  ops       drive a live fleet's /ops admin API (one-shot command, or an
            interactive console when no command is given)
            flags: -server URL or -url-file FILE (from 'run -url-file'),
                   -timeout D; try 'ops -server URL help'
  bench     hammer a live scheduler with concurrent HTTP clients over a
            (clients x shards) grid and record latency/throughput
            flags: -clients "64,256,1024", -backlog N (total workunits
                   per cell), -shards "1,8", -admit N -queue N (admission
                   gate), -o FILE (write BENCH_sched_scale.json)
`)
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:], stdout, stderr)
	case "compare":
		return cmdCompare(args[1:], stdout, stderr)
	case "validate":
		return cmdValidate(args[1:], stdout, stderr)
	case "gen":
		return cmdGen(args[1:], stdout, stderr)
	case "ops":
		return cmdOps(args[1:], stdout, stderr)
	case "bench":
		return cmdBench(args[1:], stdout, stderr)
	case "help", "-h", "--help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "vcdl-scenario: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
}

// realFlags are the knobs shared by run -mode real and compare.
type realFlags struct {
	speedup   *float64
	wallLimit *time.Duration
	procs     *bool
	storeKind *string
}

func addRealFlags(fs *flag.FlagSet) realFlags {
	return realFlags{
		speedup:   fs.Float64("speedup", 60, "real mode: virtual seconds that elapse per wall second"),
		wallLimit: fs.Duration("wall-limit", 2*time.Minute, "real mode: wall-clock budget per scenario"),
		procs:     fs.Bool("procs", false, "real mode: run clients as separate OS processes"),
		storeKind: fs.String("store", "", "real mode: parameter store backend, eventual or strong (empty = scenario's 'store' key, default eventual)"),
	}
}

// options lowers the shared flags into scenario run options.
func (rf realFlags) options(mode scenario.Mode, seed int64, trace bool, stdout io.Writer) (scenario.Options, error) {
	opts := scenario.Options{Mode: mode}
	if seed != 0 {
		opts.Seed = &seed
	}
	if trace {
		opts.Progress = stdout
	}
	if *rf.speedup <= 0 {
		return opts, fmt.Errorf("-speedup %v: must be > 0", *rf.speedup)
	}
	opts.TimeScale = 1 / *rf.speedup
	opts.WallLimit = *rf.wallLimit
	switch *rf.storeKind {
	case "", "eventual", "strong":
		opts.Store = *rf.storeKind
	default:
		return opts, fmt.Errorf("-store %q: want eventual or strong", *rf.storeKind)
	}
	if *rf.procs {
		spawn, err := selfSpawner()
		if err != nil {
			return opts, fmt.Errorf("-procs: %w", err)
		}
		opts.Spawn = spawn
	}
	return opts, nil
}

// forScenario specializes the run options for one file: a scenario
// declaring `procs on` gets the process spawner even without -procs.
func (rf realFlags) forScenario(opts scenario.Options, sc *scenario.Scenario) (scenario.Options, error) {
	if sc.Fleet.Procs && opts.Spawn == nil {
		spawn, err := selfSpawner()
		if err != nil {
			return opts, fmt.Errorf("%s declares 'procs on': %w", sc.Name, err)
		}
		opts.Spawn = spawn
	}
	return opts, nil
}

func cmdRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 0, "override the scenario's seed (0 = use the file's)")
	trace := fs.Bool("trace", false, "print the event trace while running")
	modeFlag := fs.String("mode", "sim", "execution engine: sim (virtual time) or real (live fleet)")
	metricsPath := fs.String("metrics", "", "write each run's metric snapshot to this file as JSON")
	urlFile := fs.String("url-file", "", "real mode: write the live server's base URL to this file as soon as the fleet is up (lets 'ops -url-file' and curl attach)")
	verbose := fs.Bool("v", false, "structured key=value logging to stderr (real-mode fleet and client daemons)")
	rf := addRealFlags(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	files := fs.Args()
	if len(files) == 0 {
		fmt.Fprintln(stderr, "vcdl-scenario run: no scenario files given")
		usage(stderr)
		return 2
	}
	mode, err := scenario.ParseMode(*modeFlag)
	if err != nil {
		fmt.Fprintf(stderr, "vcdl-scenario run: %v\n", err)
		return 2
	}
	opts, err := rf.options(mode, *seed, *trace, stdout)
	if err != nil {
		fmt.Fprintf(stderr, "vcdl-scenario run: %v\n", err)
		return 2
	}
	if *verbose {
		opts.Log = obs.NewLogger(stderr, obs.LevelDebug)
	}
	opts.ServerURLFile = *urlFile
	exit := 0
	// snapshots collects one {scenario, mode, metrics} object per run for
	// -metrics; each run records into its own fresh registry so families
	// never bleed between scenario files.
	type runSnapshot struct {
		Scenario string               `json:"scenario"`
		Mode     string               `json:"mode"`
		Metrics  []obs.MetricSnapshot `json:"metrics"`
	}
	var snapshots []runSnapshot
	for _, file := range files {
		sc, err := scenario.Load(file)
		if err != nil {
			fmt.Fprintf(stderr, "vcdl-scenario: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "== %s", sc.Name)
		if sc.Description != "" {
			fmt.Fprintf(stdout, " — %s", sc.Description)
		}
		fmt.Fprintln(stdout)
		fileOpts, err := rf.forScenario(opts, sc)
		if err != nil {
			fmt.Fprintf(stderr, "vcdl-scenario: %s: %v\n", file, err)
			return 2
		}
		fileOpts.Metrics = obs.NewRegistry()
		rep, err := scenario.RunScenario(sc, fileOpts)
		if err != nil {
			fmt.Fprintf(stderr, "vcdl-scenario: %s: %v\n", file, err)
			return 1
		}
		fmt.Fprint(stdout, rep.Summary())
		fmt.Fprint(stdout, metricsSummary(rep.Stats))
		if !rep.Passed {
			exit = 1
		}
		snapshots = append(snapshots, runSnapshot{
			Scenario: sc.Name, Mode: string(rep.Mode), Metrics: rep.Metrics.Snapshot()})
	}
	if *metricsPath != "" {
		blob, err := json.MarshalIndent(snapshots, "", "  ")
		if err == nil {
			err = os.WriteFile(*metricsPath, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "vcdl-scenario run: write %s: %v\n", *metricsPath, err)
			return 1
		}
		fmt.Fprintf(stdout, "metric snapshots written to %s (%d runs)\n", *metricsPath, len(snapshots))
	}
	return exit
}

// metricsSummary renders the post-run observability table: the
// scheduler quantities the fidelity CSV folds in, in virtual seconds
// for both engines.
func metricsSummary(st metrics.RunStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  assign wait p50/p95/p99  %8.2f / %8.2f / %8.2f  virtual s\n",
		st.AssignP50, st.AssignP95, st.AssignP99)
	fmt.Fprintf(&b, "  cache hit ratio          %8.3f\n", st.CacheHitRatio)
	fmt.Fprintf(&b, "  issued / reissued / timeouts  %d / %d / %d\n",
		st.Issued, st.Reissued, st.Timeouts)
	return b.String()
}

func cmdCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 0, "override the scenario's seed (0 = use the file's)")
	csvPath := fs.String("csv", "", "write the fidelity CSV to this file (default stdout)")
	rf := addRealFlags(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	files := fs.Args()
	if len(files) == 0 {
		fmt.Fprintln(stderr, "vcdl-scenario compare: no scenario files given")
		usage(stderr)
		return 2
	}
	exit := 0
	var rows []metrics.RunStats
	for _, file := range files {
		sc, err := scenario.Load(file)
		if err != nil {
			fmt.Fprintf(stderr, "vcdl-scenario: %v\n", err)
			return 2
		}
		for _, mode := range []scenario.Mode{scenario.ModeSim, scenario.ModeReal} {
			if err := sc.SupportsMode(mode); err != nil {
				fmt.Fprintf(stderr, "vcdl-scenario compare: skipping: %v\n", err)
				continue
			}
			opts, err := rf.options(mode, *seed, false, stdout)
			if err != nil {
				fmt.Fprintf(stderr, "vcdl-scenario compare: %v\n", err)
				return 2
			}
			if mode == scenario.ModeReal {
				if opts, err = rf.forScenario(opts, sc); err != nil {
					fmt.Fprintf(stderr, "vcdl-scenario compare: %s: %v\n", file, err)
					return 2
				}
			}
			rep, err := scenario.RunScenario(sc, opts)
			if err != nil {
				fmt.Fprintf(stderr, "vcdl-scenario: %s (%s): %v\n", file, mode, err)
				return 1
			}
			fmt.Fprint(stdout, rep.Summary())
			if !rep.Passed {
				exit = 1
			}
			rows = append(rows, rep.Stats)
		}
	}
	csv := metrics.FidelityCSV(rows)
	if *csvPath == "" {
		fmt.Fprint(stdout, csv)
	} else if err := os.WriteFile(*csvPath, []byte(csv), 0o644); err != nil {
		fmt.Fprintf(stderr, "vcdl-scenario compare: write %s: %v\n", *csvPath, err)
		return 1
	} else {
		fmt.Fprintf(stdout, "fidelity CSV written to %s (%d runs)\n", *csvPath, len(rows))
	}
	return exit
}

func cmdValidate(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "vcdl-scenario validate: no scenario files given")
		usage(stderr)
		return 2
	}
	exit := 0
	for _, file := range args {
		sc, err := scenario.Load(file)
		if err != nil {
			fmt.Fprintf(stderr, "INVALID  %s\n%v\n", file, err)
			exit = 2
			continue
		}
		modes, reasons := sc.Modes()
		if len(modes) == 0 {
			fmt.Fprintf(stderr, "INVALID  %s\nscenario %s: no engine can run it: sim-blocking %v; real-blocking %v\n",
				file, sc.Name, reasons[scenario.ModeSim], reasons[scenario.ModeReal])
			exit = 2
			continue
		}
		names := make([]string, len(modes))
		for i, m := range modes {
			names[i] = string(m)
		}
		fmt.Fprintf(stdout, "OK       %s  (%s: %d events, %d assertions) [modes: %s]\n",
			file, sc.Name, len(sc.Events), len(sc.Asserts), strings.Join(names, " "))
	}
	return exit
}

// selfSpawner launches clients by re-exec'ing this binary in its hidden
// _client mode, killed abruptly when the harness cancels their context.
func selfSpawner() (live.SpawnFunc, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("cannot resolve own binary: %w", err)
	}
	return func(ctx context.Context, cfg live.ClientConfig) (<-chan error, error) {
		return live.SpawnProcess(ctx, exe, cfg)
	}, nil
}

// clientMain is the hidden `vcdl-scenario _client` entry point.
func clientMain(args []string, stderr io.Writer) int {
	if err := live.ClientProcMain(args); err != nil {
		fmt.Fprintf(stderr, "vcdl-scenario _client: %v\n", err)
		return 1
	}
	return 0
}
