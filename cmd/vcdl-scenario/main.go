// Command vcdl-scenario runs and validates declarative fault/churn
// scenarios against the VCDL simulator (DESIGN.md §5):
//
//	vcdl-scenario run [-seed N] [-trace] <scenario.txt>...
//	vcdl-scenario validate <scenario.txt>...
//
// run executes each scenario and prints its assertion results; the exit
// code is 0 when every assertion of every scenario passes, 1 otherwise.
// validate parses and checks the files without running anything (exit 2
// on any malformed scenario). The bundled scenario library lives in
// examples/scenarios/.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"vcdl/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: vcdl-scenario <command> [flags] <scenario-file>...

commands:
  run       execute scenarios and check their assertions
            flags: -seed N (override scenario seed), -trace (print event trace)
  validate  parse and validate scenario files without running them
`)
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:], stdout, stderr)
	case "validate":
		return cmdValidate(args[1:], stdout, stderr)
	case "help", "-h", "--help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "vcdl-scenario: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
}

func cmdRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 0, "override the scenario's seed (0 = use the file's)")
	trace := fs.Bool("trace", false, "print the event trace while running")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	files := fs.Args()
	if len(files) == 0 {
		fmt.Fprintln(stderr, "vcdl-scenario run: no scenario files given")
		usage(stderr)
		return 2
	}
	exit := 0
	for _, file := range files {
		sc, err := scenario.Load(file)
		if err != nil {
			fmt.Fprintf(stderr, "vcdl-scenario: %v\n", err)
			return 2
		}
		opts := scenario.Options{}
		if *seed != 0 {
			opts.Seed = seed
		}
		if *trace {
			opts.Progress = stdout
		}
		fmt.Fprintf(stdout, "== %s", sc.Name)
		if sc.Description != "" {
			fmt.Fprintf(stdout, " — %s", sc.Description)
		}
		fmt.Fprintln(stdout)
		rep, err := scenario.RunScenario(sc, opts)
		if err != nil {
			fmt.Fprintf(stderr, "vcdl-scenario: %s: %v\n", file, err)
			return 1
		}
		fmt.Fprint(stdout, rep.Summary())
		if !rep.Passed {
			exit = 1
		}
	}
	return exit
}

func cmdValidate(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "vcdl-scenario validate: no scenario files given")
		usage(stderr)
		return 2
	}
	exit := 0
	for _, file := range args {
		sc, err := scenario.Load(file)
		if err != nil {
			fmt.Fprintf(stderr, "INVALID  %s\n%v\n", file, err)
			exit = 2
			continue
		}
		fmt.Fprintf(stdout, "OK       %s  (%s: %d events, %d assertions)\n",
			file, sc.Name, len(sc.Events), len(sc.Asserts))
	}
	return exit
}
