package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeScenario(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const tinyScenario = `
scenario tiny
fleet:
  clients 2
  epochs 2
  seed 4
events:
  at 2m preempt 0.2
  at 6m preempt 0
assert:
  epochs == 2
`

func TestNoArgsPrintsUsage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "usage: vcdl-scenario") {
		t.Fatalf("no usage on stderr: %q", errOut.String())
	}
}

func TestUnknownCommandRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"explode"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), `unknown command "explode"`) ||
		!strings.Contains(errOut.String(), "usage:") {
		t.Fatalf("stderr = %q", errOut.String())
	}
}

func TestUnknownScenarioFileRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"run", "no-such-scenario.txt"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "no-such-scenario.txt") {
		t.Fatalf("stderr = %q", errOut.String())
	}
}

func TestValidateGoodAndBad(t *testing.T) {
	good := writeScenario(t, "good.txt", tinyScenario)
	var out, errOut strings.Builder
	if code := run([]string{"validate", good}, &out, &errOut); code != 0 {
		t.Fatalf("validate good: exit %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Fatalf("stdout = %q", out.String())
	}

	bad := writeScenario(t, "bad.txt", "scenario broken\nevents:\n  at 5m explode\n")
	out.Reset()
	errOut.Reset()
	if code := run([]string{"validate", bad}, &out, &errOut); code != 2 {
		t.Fatalf("validate bad: exit %d", code)
	}
	if !strings.Contains(errOut.String(), "INVALID") || !strings.Contains(errOut.String(), `unknown event "explode"`) {
		t.Fatalf("stderr = %q", errOut.String())
	}
}

func TestRunTinyScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	path := writeScenario(t, "tiny.txt", tinyScenario)
	var out, errOut strings.Builder
	if code := run([]string{"run", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "PASS  epochs == 2") {
		t.Fatalf("stdout = %q", out.String())
	}

	// A failing assertion makes the run exit 1.
	failing := writeScenario(t, "fail.txt", strings.Replace(tinyScenario, "epochs == 2", "epochs == 99", 1))
	out.Reset()
	errOut.Reset()
	if code := run([]string{"run", failing}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("stdout = %q", out.String())
	}
}

const tinyTwoModeScenario = `
scenario tiny-real
fleet:
  clients 2
  tasks 1
  epochs 1
  subtasks 4
  seed 6
assert:
  epochs == 1
`

func TestValidateReportsModes(t *testing.T) {
	both := writeScenario(t, "both.txt", tinyTwoModeScenario)
	simOnly := writeScenario(t, "sim-only.txt", "scenario s\nfleet:\n  compute cached\n")
	realOnly := writeScenario(t, "real-only.txt", "scenario r\nfleet:\n  procs on\n")
	var out, errOut strings.Builder
	if code := run([]string{"validate", both, simOnly, realOnly}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr %q", code, errOut.String())
	}
	for _, want := range []string{"[modes: sim real]", "[modes: sim]", "[modes: real]"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("stdout missing %q:\n%s", want, out.String())
		}
	}

	// A file no engine can run is invalid.
	neither := writeScenario(t, "neither.txt", "scenario n\nfleet:\n  procs on\n  compute cached\n")
	out.Reset()
	errOut.Reset()
	if code := run([]string{"validate", neither}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2 (stderr %q)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "no engine can run it") {
		t.Fatalf("stderr = %q", errOut.String())
	}
}

func TestRunRejectsWrongMode(t *testing.T) {
	simOnly := writeScenario(t, "sim-only.txt", "scenario s\nfleet:\n  compute cached\nassert:\n  epochs == 1\n")
	var out, errOut strings.Builder
	if code := run([]string{"run", "-mode", "real", simOnly}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "does not support -mode real") {
		t.Fatalf("stderr = %q", errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"run", "-mode", "bogus", simOnly}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestRunRealMode(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a live fleet")
	}
	path := writeScenario(t, "tiny-real.txt", tinyTwoModeScenario)
	var out, errOut strings.Builder
	if code := run([]string{"run", "-mode", "real", "-speedup", "600", "-trace", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr %q stdout %q", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "PASS  epochs == 1") || !strings.Contains(out.String(), "real mode") {
		t.Fatalf("stdout = %q", out.String())
	}
}

func TestCompareEmitsFidelityCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a live fleet")
	}
	path := writeScenario(t, "tiny-real.txt", tinyTwoModeScenario)
	csvPath := filepath.Join(t.TempDir(), "fidelity.csv")
	var out, errOut strings.Builder
	if code := run([]string{"compare", "-speedup", "600", "-csv", csvPath, path}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr %q stdout %q", code, errOut.String(), out.String())
	}
	blob, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(blob)), "\n")
	if len(lines) != 3 {
		t.Fatalf("fidelity CSV lines = %d:\n%s", len(lines), blob)
	}
	if !strings.HasPrefix(lines[1], "tiny-real,sim,") || !strings.HasPrefix(lines[2], "tiny-real,real,") {
		t.Fatalf("unexpected rows:\n%s", blob)
	}
}
