package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeScenario(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const tinyScenario = `
scenario tiny
fleet:
  clients 2
  epochs 2
  seed 4
events:
  at 2m preempt 0.2
  at 6m preempt 0
assert:
  epochs == 2
`

func TestNoArgsPrintsUsage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "usage: vcdl-scenario") {
		t.Fatalf("no usage on stderr: %q", errOut.String())
	}
}

func TestUnknownCommandRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"explode"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), `unknown command "explode"`) ||
		!strings.Contains(errOut.String(), "usage:") {
		t.Fatalf("stderr = %q", errOut.String())
	}
}

func TestUnknownScenarioFileRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"run", "no-such-scenario.txt"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "no-such-scenario.txt") {
		t.Fatalf("stderr = %q", errOut.String())
	}
}

func TestValidateGoodAndBad(t *testing.T) {
	good := writeScenario(t, "good.txt", tinyScenario)
	var out, errOut strings.Builder
	if code := run([]string{"validate", good}, &out, &errOut); code != 0 {
		t.Fatalf("validate good: exit %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Fatalf("stdout = %q", out.String())
	}

	bad := writeScenario(t, "bad.txt", "scenario broken\nevents:\n  at 5m explode\n")
	out.Reset()
	errOut.Reset()
	if code := run([]string{"validate", bad}, &out, &errOut); code != 2 {
		t.Fatalf("validate bad: exit %d", code)
	}
	if !strings.Contains(errOut.String(), "INVALID") || !strings.Contains(errOut.String(), `unknown event "explode"`) {
		t.Fatalf("stderr = %q", errOut.String())
	}
}

func TestRunTinyScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	path := writeScenario(t, "tiny.txt", tinyScenario)
	var out, errOut strings.Builder
	if code := run([]string{"run", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "PASS  epochs == 2") {
		t.Fatalf("stdout = %q", out.String())
	}

	// A failing assertion makes the run exit 1.
	failing := writeScenario(t, "fail.txt", strings.Replace(tinyScenario, "epochs == 2", "epochs == 99", 1))
	out.Reset()
	errOut.Reset()
	if code := run([]string{"run", failing}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("stdout = %q", out.String())
	}
}
