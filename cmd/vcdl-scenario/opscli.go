package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"vcdl/internal/ops"
	"vcdl/internal/scenario"
)

// cmdGen emits a seeded scenario file: the same model and seed always
// produce byte-identical output, so generated scenarios are as
// reproducible as hand-written ones.
func cmdGen(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "churn", "operational model: "+strings.Join(scenario.GenModels, ", "))
	seed := fs.Int64("seed", 1, "generator seed (same model+seed = byte-identical file)")
	clients := fs.Int("clients", 0, "initial fleet size (0 = model default)")
	behavior := fs.String("behavior", "", "byzantine model: pin the behavior (default: seeded pick)")
	out := fs.String("o", "", "write to this file (default stdout)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "vcdl-scenario gen: unexpected arguments %v\n", fs.Args())
		return 2
	}
	data, err := scenario.Generate(scenario.GenSpec{
		Model: *model, Seed: *seed, Clients: *clients, Behavior: *behavior,
	})
	if err != nil {
		fmt.Fprintf(stderr, "vcdl-scenario gen: %v\n", err)
		return 2
	}
	if *out == "" {
		stdout.Write(data)
		return 0
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(stderr, "vcdl-scenario gen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s (%d bytes, model %s, seed %d)\n", *out, len(data), *model, *seed)
	return 0
}

// cmdOps is the admin API's command-line face: one-shot
// (`vcdl-scenario ops -server URL cordon <id>`) or interactive (no
// command = a REPL reading the same verbs from stdin). Every verb maps
// onto one /ops endpoint of the shared core — the same actions scenario
// events inject and curl drives.
func cmdOps(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ops", flag.ContinueOnError)
	fs.SetOutput(stderr)
	server := fs.String("server", "", "live server base URL (e.g. http://127.0.0.1:43210)")
	urlFile := fs.String("url-file", "", "read the base URL from this file (as written by 'run -url-file')")
	timeout := fs.Duration("timeout", 5*time.Second, "HTTP timeout per request")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	base := strings.TrimRight(*server, "/")
	if base == "" && *urlFile != "" {
		blob, err := os.ReadFile(*urlFile)
		if err != nil {
			fmt.Fprintf(stderr, "vcdl-scenario ops: %v\n", err)
			return 2
		}
		base = strings.TrimRight(strings.TrimSpace(string(blob)), "/")
	}
	if base == "" {
		fmt.Fprintln(stderr, "vcdl-scenario ops: no server (want -server URL or -url-file FILE)")
		return 2
	}
	cl := &opsClient{base: base, http: &http.Client{Timeout: *timeout}, stdout: stdout, stderr: stderr}
	if fs.NArg() > 0 {
		return cl.exec(fs.Args())
	}
	// Interactive: one ops verb per line against the live fleet.
	fmt.Fprintf(stdout, "vcdl ops console — %s (type 'help' for commands, 'quit' to leave)\n", base)
	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Fprint(stdout, "ops> ")
		if !in.Scan() {
			fmt.Fprintln(stdout)
			return 0
		}
		fields := strings.Fields(in.Text())
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "quit" || fields[0] == "exit" {
			return 0
		}
		cl.exec(fields) // errors are printed; the console keeps going
	}
}

// opsClient drives the /ops admin API over HTTP.
type opsClient struct {
	base   string
	http   *http.Client
	stdout io.Writer
	stderr io.Writer
}

const opsHelp = `commands:
  health                          GET /healthz
  clients                         list clients (table; 'clients -json' for raw)
  snapshot                        whole-deployment JSON dump
  cordon <id> | uncordon <id>     quarantine / release a client
  drain <id> | kill <id>          graceful / abrupt departure
  rejoin <id>                     revive a departed client
  slow <id> <factor>              straggler injection (factor 1 restores)
  byzantine <id> <behavior|off>   adversarial toggle
  join [type] [region]            add a client (default clientB)
  policy <name> [args...]         hot-swap the scheduling policy
  ps <n>                          resize the parameter-server pool
  tune key=value ...              timeout=<s> floor=<0..1> preempt=<0..1>
`

// exec runs one ops verb and returns its exit status (0 ok, 1 the
// server refused, 2 usage).
func (c *opsClient) exec(fields []string) int {
	verb, args := fields[0], fields[1:]
	usage := func(u string) int {
		fmt.Fprintf(c.stderr, "usage: %s\n", u)
		return 2
	}
	switch verb {
	case "help":
		fmt.Fprint(c.stdout, opsHelp)
		return 0
	case "health":
		return c.get("/healthz")
	case "clients":
		if len(args) == 1 && args[0] == "-json" {
			return c.get("/ops/clients")
		}
		return c.clientsTable()
	case "snapshot":
		return c.get("/ops/snapshot")
	case "cordon", "uncordon", "drain", "kill", "rejoin":
		if len(args) != 1 {
			return usage(verb + " <client-id>")
		}
		return c.post("/ops/clients/"+url.PathEscape(args[0])+"/"+verb, nil)
	case "slow":
		if len(args) != 2 {
			return usage("slow <client-id> <factor>")
		}
		return c.post("/ops/clients/"+url.PathEscape(args[0])+"/slow", url.Values{"factor": {args[1]}})
	case "byzantine":
		if len(args) != 2 {
			return usage("byzantine <client-id> <behavior|off>")
		}
		return c.post("/ops/clients/"+url.PathEscape(args[0])+"/byzantine", url.Values{"behavior": {args[1]}})
	case "join":
		v := url.Values{}
		switch len(args) {
		case 0:
		case 2:
			v.Set("region", args[1])
			fallthrough
		case 1:
			v.Set("inst", args[0])
		default:
			return usage("join [type] [region]")
		}
		return c.post("/ops/join", v)
	case "policy":
		if len(args) < 1 {
			return usage("policy <name> [args...]")
		}
		v := url.Values{"name": {args[0]}}
		for _, a := range args[1:] {
			v.Add("arg", a)
		}
		return c.post("/ops/policy", v)
	case "ps":
		if len(args) != 1 {
			return usage("ps <n>")
		}
		return c.post("/ops/ps", url.Values{"n": {args[0]}})
	case "tune":
		if len(args) == 0 {
			return usage("tune key=value ... (timeout, floor, preempt)")
		}
		v := url.Values{}
		for _, a := range args {
			k, val, ok := strings.Cut(a, "=")
			if !ok {
				return usage("tune key=value ... (timeout, floor, preempt)")
			}
			v.Set(k, val)
		}
		return c.post("/ops/tune", v)
	default:
		fmt.Fprintf(c.stderr, "vcdl-scenario ops: unknown command %q (try 'help')\n", verb)
		return 2
	}
}

// clientsTable renders GET /ops/clients as a fixed-width console table.
func (c *opsClient) clientsTable() int {
	resp, err := c.http.Get(c.base + "/ops/clients")
	if err != nil {
		fmt.Fprintf(c.stderr, "vcdl-scenario ops: %v\n", err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return c.report(resp)
	}
	var clients []ops.ClientStatus
	if err := json.NewDecoder(resp.Body).Decode(&clients); err != nil {
		fmt.Fprintf(c.stderr, "vcdl-scenario ops: bad /ops/clients payload: %v\n", err)
		return 1
	}
	fmt.Fprintf(c.stdout, "%-28s %-14s %-10s %-6s %-9s %-13s %5s %6s %5s\n",
		"ID", "INSTANCE", "REGION", "STATE", "CORDONED", "BYZANTINE", "SLOW", "RELIAB", "BUSY")
	for _, cs := range clients {
		state := "active"
		switch {
		case cs.Detached:
			state = "drain"
		case !cs.Active:
			state = "gone"
		}
		byz := cs.Byzantine
		if byz == "" {
			byz = "-"
		}
		fmt.Fprintf(c.stdout, "%-28s %-14s %-10s %-6s %-9v %-13s %5.1f %6.2f %5d\n",
			cs.ID, cs.Instance, cs.Region, state, cs.Cordoned, byz, cs.SlowFactor, cs.Reliability, cs.InFlight)
	}
	fmt.Fprintf(c.stdout, "%d clients\n", len(clients))
	return 0
}

func (c *opsClient) get(path string) int {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		fmt.Fprintf(c.stderr, "vcdl-scenario ops: %v\n", err)
		return 1
	}
	defer resp.Body.Close()
	return c.report(resp)
}

func (c *opsClient) post(path string, v url.Values) int {
	u := c.base + path
	if len(v) > 0 {
		u += "?" + v.Encode()
	}
	resp, err := c.http.Post(u, "application/x-www-form-urlencoded", nil)
	if err != nil {
		fmt.Fprintf(c.stderr, "vcdl-scenario ops: %v\n", err)
		return 1
	}
	defer resp.Body.Close()
	return c.report(resp)
}

// report copies the server's JSON reply through, to stdout on success
// and stderr (with the status line) on refusal.
func (c *opsClient) report(resp *http.Response) int {
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		io.Copy(c.stdout, resp.Body)
		return 0
	}
	fmt.Fprintf(c.stderr, "vcdl-scenario ops: %s: ", resp.Status)
	io.Copy(c.stderr, resp.Body)
	return 1
}
