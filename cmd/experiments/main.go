// Command experiments regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §3 for the experiment index):
//
//	experiments -exp table1          Table I   instance catalog
//	experiments -exp fig2            Figure 2  distributed configs, α=0.95
//	experiments -exp fig3            Figure 3  training time vs Tn
//	experiments -exp fig4            Figure 4  VC-ASGD α sweep on P3C3T4
//	experiments -exp fig5            Figure 5  zoomed Fig. 4 windows
//	experiments -exp fig6            Figure 6  distributed vs single instance
//	experiments -exp storedb         §IV-D     eventual vs strong store
//	experiments -exp preempt         §IV-E     preemptible-instance model
//	experiments -exp ablation        A1/A2     update rules & sticky files
//	experiments -exp schedpolicy     §III-B    scheduling-policy ablation
//	experiments -exp scale           S1        compute-backend scale grid
//	experiments -exp schedlatency    §10       scheduler latency under load
//	experiments -exp all             everything
//
// -epochs scales run length (default 40, the paper's setting; use a small
// value for a quick pass). -csv DIR additionally writes each curve as
// CSV. -jobs N runs the multi-run grids (fig2, fig3, fig4, preempt,
// ablation, schedpolicy) on N parallel workers; results are identical at
// any N (the internal/exp sweep determinism contract). -policy narrows
// the schedpolicy grid to a comma-separated subset of the registered
// policies (default all). -clients narrows the scale grid's fleet sizes
// (default 100,1000,10000); scale always runs its cells serially so each
// cell's wall-clock measurement is honest, and with -csv it also emits
// BENCH_compute.json, the backend × workers wall-clock record the CI
// perf trajectory tracks.
//
// -cpuprofile FILE and -memprofile FILE capture pprof profiles of the
// selected experiments (CPU for the whole run; heap after a final GC),
// for digging into the compute hot path with `go tool pprof`.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"vcdl/internal/boinc"
	"vcdl/internal/cloud"
	"vcdl/internal/exp"
	"vcdl/internal/metrics"
)

// experiment is one registry entry: the single source of truth for the
// experiment's name, its run order within -exp all, and its dispatch
// target — usage text, validation and dispatch cannot drift.
type experiment struct {
	name string
	run  func(*runner) error
}

// registry lists the experiments in -exp all run order.
var registry = []experiment{
	{"table1", (*runner).table1},
	{"fig2", (*runner).fig2},
	{"fig3", (*runner).fig3},
	{"fig4", (*runner).fig4},
	{"fig5", (*runner).fig5},
	{"fig6", (*runner).fig6},
	{"storedb", (*runner).storedb},
	{"preempt", (*runner).preempt},
	{"ablation", (*runner).ablation},
	{"schedpolicy", (*runner).schedpolicy},
	{"scale", (*runner).scale},
	{"schedlatency", (*runner).schedlatency},
}

// experimentNames returns the registry names in run order.
func experimentNames() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.name
	}
	return names
}

// lookup finds a registry entry by name.
func lookup(name string) (experiment, bool) {
	for _, e := range registry {
		if e.name == name {
			return e, true
		}
	}
	return experiment{}, false
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	expFlag := fs.String("exp", "all", "experiment to run ("+strings.Join(experimentNames(), "|")+"|all)")
	epochs := fs.Int("epochs", 40, "training epochs per run (paper: 40)")
	seed := fs.Int64("seed", 1, "experiment seed")
	csvDir := fs.String("csv", "", "directory to write CSV curves into (optional)")
	jobs := fs.Int("jobs", 1, "parallel workers for multi-run experiments (0 = all cores)")
	policyFlag := fs.String("policy", "all", "scheduling policies for -exp schedpolicy (comma-separated names, or all)")
	clientsFlag := fs.String("clients", "100,1000,10000", "fleet sizes for -exp scale (comma-separated client counts)")
	loadFlag := fs.String("loadclients", "4,16,64,256", "concurrent HTTP clients for -exp schedlatency (comma-separated)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile (after GC) to this file on exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "memprofile: %v\n", err)
			}
		}()
	}

	runner := &runner{epochs: *epochs, seed: *seed, csvDir: *csvDir, jobs: *jobs, policies: *policyFlag, clients: *clientsFlag, loadClients: *loadFlag, out: stdout, errOut: stderr}
	var toRun []experiment
	if *expFlag == "all" {
		toRun = registry
	} else {
		for _, name := range strings.Split(*expFlag, ",") {
			e, ok := lookup(name)
			if !ok {
				fmt.Fprintf(stderr, "unknown experiment %q\nusage: experiments -exp %s|all [-epochs N] [-seed N] [-jobs N] [-csv DIR] [-policy LIST] [-clients LIST]\n",
					name, strings.Join(experimentNames(), "|"))
				return 2
			}
			toRun = append(toRun, e)
		}
	}
	for _, e := range toRun {
		fmt.Fprintf(stdout, "\n================ %s ================\n", e.name)
		if err := e.run(runner); err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", e.name, err)
			return 1
		}
	}
	return 0
}

type runner struct {
	epochs      int
	seed        int64
	csvDir      string
	jobs        int
	policies    string
	clients     string
	loadClients string
	out         io.Writer
	errOut      io.Writer

	setupCache *exp.PaperSetup
	fig4Cache  []*exp.Result
}

func (r *runner) setup() (*exp.PaperSetup, error) {
	if r.setupCache == nil {
		s, err := exp.NewPaperSetup(r.seed, r.epochs)
		if err != nil {
			return nil, err
		}
		r.setupCache = s
	}
	return r.setupCache, nil
}

// sweep runs the specs on the -jobs worker pool.
func (r *runner) sweep(specs []*exp.Spec) ([]*exp.Result, error) {
	return exp.Sweep(context.Background(), specs, exp.Workers(r.jobs))
}

// selectedPolicies resolves -policy into registered policy names.
func (r *runner) selectedPolicies() ([]string, error) {
	if r.policies == "" || r.policies == "all" {
		return boinc.PolicyNames(), nil
	}
	var names []string
	for _, name := range strings.Split(r.policies, ",") {
		name = strings.TrimSpace(name)
		if _, err := boinc.NewPolicy(name); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	return names, nil
}

// writeFile writes content under the -csv directory (a no-op without
// -csv); like writeCSV, a failure fails the experiment.
func (r *runner) writeFile(filename, content string) error {
	if r.csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(r.csvDir, 0o755); err != nil {
		return fmt.Errorf("csv dir: %w", err)
	}
	path := filepath.Join(r.csvDir, filename)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", filename, err)
	}
	return nil
}

// writeRawCSV writes pre-rendered CSV content to DIR/name.csv.
func (r *runner) writeRawCSV(name, content string) error {
	return r.writeFile(name+".csv", content)
}

// writeCSV writes the series to DIR/name.csv; a failure fails the
// experiment (and the command exits non-zero).
func (r *runner) writeCSV(name string, series ...metrics.Series) error {
	var b strings.Builder
	for _, s := range series {
		b.WriteString(s.CSV())
		b.WriteByte('\n')
	}
	return r.writeRawCSV(name, b.String())
}

func printCurve(w io.Writer, res *exp.Result) {
	fmt.Fprintf(w, "-- %s  (%.2f h total, %d issued, %d reissued, %d timeouts)\n",
		res.Name, res.Hours, res.Issued, res.Reissued, res.Timeouts)
	for _, p := range res.Curve.Points {
		fmt.Fprintf(w, "   epoch %2d  %6.2f h  acc %.3f  [%.3f, %.3f]\n",
			p.Epoch, p.Hours, p.Value, p.Lo, p.Hi)
	}
}

func (r *runner) table1() error {
	fmt.Fprintln(r.out, "Table I: server and client instance configurations")
	rows := [][]string{}
	for _, it := range cloud.TableI() {
		rows = append(rows, []string{
			it.Name,
			fmt.Sprintf("%d", it.VCPU),
			fmt.Sprintf("%.1f", it.ClockGHz),
			fmt.Sprintf("%.0f", it.RAMGB),
			fmt.Sprintf("up to %.0f", it.BandwidthGbps),
			fmt.Sprintf("$%.3f", it.HourlyUSD),
			fmt.Sprintf("$%.3f", it.PreemptibleUSD),
		})
	}
	fmt.Fprint(r.out, metrics.Table(
		[]string{"instance", "vCPU", "GHz", "RAM(GB)", "net(Gbps)", "std/h", "spot/h"}, rows))
	fleet := append([]cloud.InstanceType{cloud.ServerInstance}, cloud.DefaultFleet(4)...)
	fmt.Fprintf(r.out, "P5C5T2 fleet: $%.2f/h standard, $%.2f/h preemptible (%.0f%% savings)\n",
		cloud.FleetCost(fleet, false), cloud.FleetCost(fleet, true), 100*cloud.Savings(fleet))
	return nil
}

func (r *runner) fig2() error {
	s, err := r.setup()
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Figure 2: validation accuracy vs training time, alpha=0.95")
	results, err := exp.Fig2(context.Background(), s, exp.Workers(r.jobs))
	if err != nil {
		return err
	}
	for _, res := range results {
		printCurve(r.out, res)
		if err := r.writeCSV("fig2_"+res.Name, res.Curve); err != nil {
			return err
		}
	}
	fmt.Fprintln(r.out, "expected shape: all configs converge to similar accuracy; P5C5T2 fastest.")
	return nil
}

func (r *runner) fig3() error {
	s, err := r.setup()
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Figure 3: training time (hours) vs simultaneous subtasks per client, alpha=0.95")
	rows, err := exp.Fig3(context.Background(), s, exp.Workers(r.jobs))
	if err != nil {
		return err
	}
	var table [][]string
	for _, row := range rows {
		cells := []string{row.Label}
		for _, h := range row.Hours {
			cells = append(cells, fmt.Sprintf("%.2f", h))
		}
		table = append(table, cells)
	}
	fmt.Fprint(r.out, metrics.Table([]string{"config", "T2", "T4", "T8"}, table))
	fmt.Fprintln(r.out, "expected shape: P1C3 dips at T4 and rises at T8; P3C3T8 beats P1C3T8 by ~3h;")
	fmt.Fprintln(r.out, "P5C5 fastest overall with the imbalance growing toward T8.")
	return nil
}

// fig4Results runs (or reuses) the Figure 4 sweep, which Figure 5 zooms.
func (r *runner) fig4Results() ([]*exp.Result, error) {
	if r.fig4Cache != nil {
		return r.fig4Cache, nil
	}
	s, err := r.setup()
	if err != nil {
		return nil, err
	}
	results, err := exp.Fig4(context.Background(), s, exp.Workers(r.jobs))
	if err != nil {
		return nil, err
	}
	r.fig4Cache = results
	return results, nil
}

func (r *runner) fig4() error {
	fmt.Fprintln(r.out, "Figure 4: effect of VC-ASGD hyperparameter alpha on P3C3T4")
	results, err := r.fig4Results()
	if err != nil {
		return err
	}
	for _, res := range results {
		printCurve(r.out, res)
		if err := r.writeCSV("fig4_"+res.Name, res.Curve); err != nil {
			return err
		}
	}
	fmt.Fprintln(r.out, "expected shape: alpha=0.7 fastest early; alpha=0.95 better late;")
	fmt.Fprintln(r.out, "alpha=0.999 far behind; Var (e/(e+1)) best overall with smallest spread.")
	return nil
}

func (r *runner) fig5() error {
	fmt.Fprintln(r.out, "Figure 5: zoomed views of Figure 4 (mid-training and late-training windows)")
	results, err := r.fig4Results()
	if err != nil {
		return err
	}
	// Scale the paper's 6-10h and 10-14h windows to the run length.
	total := 0.0
	for _, res := range results {
		if res.Hours > total {
			total = res.Hours
		}
	}
	windows := [][2]float64{{0.45 * total, 0.72 * total}, {0.72 * total, total}}
	for wi, w := range windows {
		fmt.Fprintf(r.out, "-- window %d: %.2f–%.2f h\n", wi+1, w[0], w[1])
		for _, res := range results {
			z := exp.ZoomWindow(res.Curve, w[0], w[1])
			for _, p := range z.Points {
				fmt.Fprintf(r.out, "   %-12s epoch %2d  %6.2f h  acc %.3f [%.3f, %.3f]\n",
					res.Name, p.Epoch, p.Hours, p.Value, p.Lo, p.Hi)
			}
		}
	}
	return nil
}

func (r *runner) fig6() error {
	s, err := r.setup()
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Figure 6: distributed (P5C5T2, Var alpha) vs single-instance serial training")
	serialEpochs := r.epochs / 4
	if serialEpochs < 2 {
		serialEpochs = 2
	}
	res, err := exp.Fig6(s, serialEpochs)
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "-- validation")
	printSeriesPair(r.out, res.DistVal, res.SerialVal)
	fmt.Fprintln(r.out, "-- test")
	printSeriesPair(r.out, res.DistTest, res.SerialTest)
	if err := r.writeCSV("fig6_val", res.DistVal, res.SerialVal); err != nil {
		return err
	}
	if err := r.writeCSV("fig6_test", res.DistTest, res.SerialTest); err != nil {
		return err
	}
	fmt.Fprintln(r.out, "expected shape: single-instance above distributed with a shrinking gap;")
	fmt.Fprintln(r.out, "distributed curve smoother; test tracks validation.")
	return nil
}

func printSeriesPair(w io.Writer, dist, serial metrics.Series) {
	fmt.Fprintf(w, "   %-24s final %.3f at %.2f h\n", dist.Name, dist.FinalValue(), lastHours(dist))
	fmt.Fprintf(w, "   %-24s final %.3f at %.2f h\n", serial.Name, serial.FinalValue(), lastHours(serial))
	for _, p := range serial.Points {
		fmt.Fprintf(w, "   serial epoch %2d  %6.2f h  acc %.3f\n", p.Epoch, p.Hours, p.Value)
	}
	for _, p := range dist.Points {
		fmt.Fprintf(w, "   dist   epoch %2d  %6.2f h  acc %.3f\n", p.Epoch, p.Hours, p.Value)
	}
}

func lastHours(s metrics.Series) float64 {
	p, ok := s.Last()
	if !ok {
		return 0
	}
	return p.Hours
}

func (r *runner) storedb() error {
	fmt.Fprintln(r.out, "§IV-D: eventual-consistency (Redis-like) vs strong-consistency (MySQL-like) store")
	c := exp.CompareStores()
	fmt.Fprintf(r.out, "   per-update latency:   eventual %.2f s   strong %.2f s   ratio %.2fx\n",
		c.EventualUpdateSec, c.StrongUpdateSec, c.Ratio)
	fmt.Fprintf(r.out, "   CIFAR10-scale (2,000 updates):     +%.0f min with the strong store\n", c.CIFAR10OverheadMin)
	fmt.Fprintf(r.out, "   ImageNet-scale (1,600,000 updates): +%.0f h with the strong store\n", c.ImageNetOverheadH)
	fmt.Fprintln(r.out, "   paper: 0.87 s vs 1.29 s (1.5x), +14 min CIFAR10, +187 h ImageNet")
	return nil
}

// preemptProbs is the §IV-E grid; index 0 is the clean baseline.
var preemptProbs = []float64{0, 0.05, 0.10, 0.15, 0.20}

func (r *runner) preempt() error {
	fmt.Fprintln(r.out, "§IV-E: preemptible instances — binomial delay model and simulated grid")
	m := cloud.PreemptModel{TaskExecSeconds: 2.4 * 60, TimeoutSeconds: 5 * 60}
	var rows [][]string
	for _, p := range preemptProbs[1:] {
		m.P = p
		inc := m.ExpectedIncreaseSeconds(2000, 5, 2) / 60
		total := m.ExpectedTrainingSeconds(2000, 5, 2) / 3600
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", p*100),
			fmt.Sprintf("%.0f min", inc),
			fmt.Sprintf("%.1f h", total),
		})
	}
	fmt.Fprint(r.out, metrics.Table([]string{"p", "expected increase", "expected total"}, rows))
	fmt.Fprintln(r.out, "   paper: +50 min at p=0.05, +200 min at p=0.20 for P5C5T2 (ns=2000, to=5 min)")

	// End-to-end simulated grid, parallelized across -jobs workers.
	epochs := r.epochs / 4
	if epochs < 2 {
		epochs = 2
	}
	short, err := exp.NewPaperSetup(r.seed, epochs)
	if err != nil {
		return err
	}
	specs, err := exp.PreemptGridSpecs(short, preemptProbs)
	if err != nil {
		return err
	}
	results, err := r.sweep(specs)
	if err != nil {
		return err
	}
	base := results[0]
	fmt.Fprintf(r.out, "   simulated grid (%d epochs, clean baseline %.2f h):\n", epochs, base.Hours)
	var grid [][]string
	for i, res := range results[1:] {
		grid = append(grid, []string{
			fmt.Sprintf("%.0f%%", preemptProbs[i+1]*100),
			fmt.Sprintf("%.2f h", res.Hours),
			fmt.Sprintf("+%.0f min", (res.Hours-base.Hours)*60),
			fmt.Sprintf("%d", res.Timeouts),
			fmt.Sprintf("$%.2f", res.CostPreemptibleUSD),
		})
	}
	fmt.Fprint(r.out, metrics.Table([]string{"p", "total", "increase", "timeouts", "spot cost"}, grid))
	rough := results[1]
	fmt.Fprintf(r.out, "   cost at p=5%%: $%.2f standard vs $%.2f preemptible (%.0f%% saved)\n",
		rough.CostStandardUSD, rough.CostPreemptibleUSD,
		100*(1-rough.CostPreemptibleUSD/rough.CostStandardUSD))
	return nil
}

func (r *runner) ablation() error {
	epochs := r.epochs / 4
	if epochs < 3 {
		epochs = 3
	}
	s, err := exp.NewPaperSetup(r.seed, epochs)
	if err != nil {
		return err
	}
	fmt.Fprintf(r.out, "A1: update-rule ablation on P3C3T4 with 5%% preemption (%d epochs)\n", epochs)
	specs, err := exp.AblationSpecs(s)
	if err != nil {
		return err
	}
	results, err := r.sweep(specs)
	if err != nil {
		return err
	}
	var rows [][]string
	for _, res := range results {
		rows = append(rows, []string{
			res.Name,
			fmt.Sprintf("%.3f", res.Curve.FinalValue()),
			fmt.Sprintf("%.2f h", res.Hours),
			fmt.Sprintf("%d", res.Timeouts),
		})
	}
	fmt.Fprint(r.out, metrics.Table([]string{"rule", "final acc", "time", "timeouts"}, rows))

	fmt.Fprintln(r.out, "A2: sticky files / compression ablation (bytes downloaded)")
	stickyOn, err := exp.New(s.Job, s.Corpus, exp.Topology(3, 3, 4))
	if err != nil {
		return err
	}
	stickyOff, err := exp.New(s.Job, s.Corpus, exp.Topology(3, 3, 4), exp.NoSticky())
	if err != nil {
		return err
	}
	pair, err := r.sweep([]*exp.Spec{stickyOn, stickyOff})
	if err != nil {
		return err
	}
	on, off := pair[0], pair[1]
	fmt.Fprintf(r.out, "   sticky on:  %8.1f MB downloaded\n", float64(on.BytesDownloaded)/1e6)
	fmt.Fprintf(r.out, "   sticky off: %8.1f MB downloaded (%.1fx more)\n",
		float64(off.BytesDownloaded)/1e6, float64(off.BytesDownloaded)/float64(on.BytesDownloaded))
	return nil
}

// schedpolicy sweeps every scheduling policy over the §IV-E preemption
// grid on P5C5T2 and emits a per-policy comparison (table plus CSV with
// -csv): the policy-ablation view the hard-coded scheduler could never
// produce.
func (r *runner) schedpolicy() error {
	policies, err := r.selectedPolicies()
	if err != nil {
		return err
	}
	epochs := r.epochs / 4
	if epochs < 2 {
		epochs = 2
	}
	fmt.Fprintf(r.out, "§III-B: scheduling-policy ablation on P5C5T2 across the §IV-E preemption grid (%d epochs)\n", epochs)
	s, err := exp.NewPaperSetup(r.seed, epochs)
	if err != nil {
		return err
	}
	specs, points, err := exp.SchedPolicySpecs(s, policies, preemptProbs)
	if err != nil {
		return err
	}
	results, err := r.sweep(specs)
	if err != nil {
		return err
	}

	// Table: one row per policy, training hours per preemption level,
	// plus the final accuracy under the heaviest storm.
	header := []string{"policy"}
	for _, p := range preemptProbs {
		header = append(header, fmt.Sprintf("p=%.0f%%", p*100))
	}
	maxP := preemptProbs[len(preemptProbs)-1]
	header = append(header, fmt.Sprintf("acc@p=%.0f%%", maxP*100))
	var rows [][]string
	var csv strings.Builder
	csv.WriteString("policy,preempt,hours,final_acc,issued,reissued,timeouts,cost_spot_usd\n")
	for pi, name := range policies {
		row := []string{name}
		for qi := range preemptProbs {
			res := results[pi*len(preemptProbs)+qi]
			pt := points[pi*len(preemptProbs)+qi]
			row = append(row, fmt.Sprintf("%.2f h", res.Hours))
			fmt.Fprintf(&csv, "%s,%.2f,%.4f,%.4f,%d,%d,%d,%.2f\n",
				pt.Policy, pt.Preempt, res.Hours, res.Curve.FinalValue(),
				res.Issued, res.Reissued, res.Timeouts, res.CostPreemptibleUSD)
		}
		row = append(row, fmt.Sprintf("%.3f", results[pi*len(preemptProbs)+len(preemptProbs)-1].Curve.FinalValue()))
		rows = append(rows, row)
	}
	fmt.Fprint(r.out, metrics.Table(header, rows))
	fmt.Fprintln(r.out, "expected shape: paper == locality-first here (with sticky caching on their")
	fmt.Fprintln(r.out, "assignment preference is identical) and fifo == deadline-aware (this grid's")
	fmt.Fprintln(r.out, "deadlines are uniform, so EDF degenerates to FIFO) — coinciding rows are the")
	fmt.Fprintln(r.out, "ablation's finding, not noise; random pays extra download traffic scattering")
	fmt.Fprintln(r.out, "shards; reliability-weighted steers storm retries toward reliable hosts.")
	return r.writeRawCSV("schedpolicy", csv.String())
}

// selectedClients resolves -clients into the scale grid's fleet sizes.
func (r *runner) selectedClients() ([]int, error) {
	var sizes []int
	for _, s := range strings.Split(r.clients, ",") {
		s = strings.TrimSpace(s)
		n, err := strconv.Atoi(s)
		if err != nil || n < exp.ScaleReplication {
			return nil, fmt.Errorf("bad -clients value %q (want integers >= %d)", s, exp.ScaleReplication)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

// scaleCell is one measured run of the scale grid, serialized into both
// the scale CSV and BENCH_compute.json.
type scaleCell struct {
	Clients          int     `json:"clients"`
	Backend          string  `json:"backend"`
	Workers          int     `json:"workers"`
	Replication      int     `json:"replication"`
	Epochs           int     `json:"epochs"`
	WallclockSeconds float64 `json:"wallclock_seconds"`
	VirtualHours     float64 `json:"virtual_hours"`
	FinalAccuracy    float64 `json:"final_acc"`
	// FidelityVsReal is |final_acc − real backend's final_acc| at the
	// same fleet size: 0 for the byte-identical backends, the surrogate's
	// accuracy distortion otherwise.
	FidelityVsReal float64 `json:"fidelity_vs_real"`
	// SpeedupVsReal is the real backend's wall clock over this cell's.
	SpeedupVsReal float64 `json:"speedup_vs_real"`
	Launched      int     `json:"launched"`
	Computed      int     `json:"computed"`
	CacheHits     int     `json:"cache_hits"`
}

// scale sweeps fleet size × compute backend into a wall-clock/fidelity
// grid (experiment S1): the figure behind the compute-backend layer.
// Every subtask is issued exp.ScaleReplication times and per-client work
// is constant, so the grid shows (a) the inline event loop's wall clock
// growing linearly with fleet size and replication, (b) cached refunding
// the redundancy, (c) parallel overlapping the rest with event
// processing, and (d) the surrogate's speed/fidelity trade. Cells run
// serially — never on the -jobs pool — so each wall-clock number
// measures one backend alone.
func (r *runner) scale() error {
	clients, err := r.selectedClients()
	if err != nil {
		return err
	}
	epochs := r.epochs / 10
	if epochs < 2 {
		epochs = 2
	}
	if epochs > 4 {
		epochs = 4
	}
	backends := exp.ScaleBackends()
	fmt.Fprintf(r.out, "S1: compute-backend scale grid — C ∈ %v × %d backends, replication %d, %d epochs\n",
		clients, len(backends), exp.ScaleReplication, epochs)

	var cells []scaleCell
	var csv strings.Builder
	csv.WriteString("clients,backend,workers,replication,epochs,wallclock_seconds,virtual_hours,final_acc,fidelity_vs_real,speedup_vs_real,launched,computed,cache_hits\n")
	for _, cn := range clients {
		job, corpus, err := exp.ScaleWorkload(r.seed, cn, epochs)
		if err != nil {
			return err
		}
		var rows [][]string
		var realCell *scaleCell
		for _, pt := range backends {
			pt.Clients = cn
			spec, err := exp.ScaleSpec(job, corpus, pt)
			if err != nil {
				return err
			}
			start := time.Now()
			res, err := exp.Run(spec)
			if err != nil {
				return fmt.Errorf("scale %s: %w", spec.Name(), err)
			}
			cell := scaleCell{
				Clients:          cn,
				Backend:          res.Compute.Backend,
				Workers:          res.Compute.Workers,
				Replication:      exp.ScaleReplication,
				Epochs:           epochs,
				WallclockSeconds: time.Since(start).Seconds(),
				VirtualHours:     res.Hours,
				FinalAccuracy:    res.Curve.FinalValue(),
				Launched:         res.Compute.Launched,
				Computed:         res.Compute.Computed,
				CacheHits:        res.Compute.CacheHits,
			}
			if realCell == nil {
				// ScaleBackends puts the real baseline first.
				realCell = &cell
				cell.SpeedupVsReal = 1
			} else {
				cell.FidelityVsReal = math.Abs(cell.FinalAccuracy - realCell.FinalAccuracy)
				cell.SpeedupVsReal = realCell.WallclockSeconds / cell.WallclockSeconds
			}
			cells = append(cells, cell)
			rows = append(rows, []string{
				cell.Backend,
				fmt.Sprintf("%d", cell.Workers),
				fmt.Sprintf("%.2f s", cell.WallclockSeconds),
				fmt.Sprintf("%.2fx", cell.SpeedupVsReal),
				fmt.Sprintf("%.3f", cell.FinalAccuracy),
				fmt.Sprintf("%.3f", cell.FidelityVsReal),
				fmt.Sprintf("%d/%d", cell.Computed, cell.Launched),
				fmt.Sprintf("%d", cell.CacheHits),
			})
			fmt.Fprintf(&csv, "%d,%s,%d,%d,%d,%.3f,%.4f,%.4f,%.4f,%.2f,%d,%d,%d\n",
				cell.Clients, cell.Backend, cell.Workers, cell.Replication, cell.Epochs,
				cell.WallclockSeconds, cell.VirtualHours, cell.FinalAccuracy,
				cell.FidelityVsReal, cell.SpeedupVsReal, cell.Launched, cell.Computed, cell.CacheHits)
		}
		fmt.Fprintf(r.out, "-- C=%d (%d subtasks x %d copies per epoch)\n", cn, cn, exp.ScaleReplication)
		fmt.Fprint(r.out, metrics.Table(
			[]string{"backend", "workers", "wall", "speedup", "final acc", "|Δacc|", "computed", "cache hits"}, rows))
	}
	fmt.Fprintln(r.out, "expected shape: cached ~halves-or-better real's wall clock (replication refunded,")
	fmt.Fprintln(r.out, "Δacc exactly 0); parallel+cached adds overlap on multi-core hosts; surrogate is")
	fmt.Fprintln(r.out, "fastest with a nonzero but bounded Δacc; real's wall clock grows with C.")

	if err := r.writeRawCSV("scale", csv.String()); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(map[string]any{"grid": cells}, "", "  ")
	if err != nil {
		return err
	}
	return r.writeFile("BENCH_compute.json", string(blob)+"\n")
}
