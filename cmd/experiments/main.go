// Command experiments regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §3 for the experiment index):
//
//	experiments -exp table1          Table I   instance catalog
//	experiments -exp fig2            Figure 2  distributed configs, α=0.95
//	experiments -exp fig3            Figure 3  training time vs Tn
//	experiments -exp fig4            Figure 4  VC-ASGD α sweep on P3C3T4
//	experiments -exp fig5            Figure 5  zoomed Fig. 4 windows
//	experiments -exp fig6            Figure 6  distributed vs single instance
//	experiments -exp storedb         §IV-D     eventual vs strong store
//	experiments -exp preempt         §IV-E     preemptible-instance model
//	experiments -exp ablation        A1/A2     update rules & sticky files
//	experiments -exp all             everything
//
// -epochs scales run length (default 40, the paper's setting; use a small
// value for a quick pass). -csv DIR additionally writes each curve as CSV.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"vcdl/internal/cloud"
	"vcdl/internal/metrics"
	"vcdl/internal/opt"
	"vcdl/internal/vcsim"
)

// experimentOrder lists the valid experiment names in run order.
var experimentOrder = []string{"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "storedb", "preempt", "ablation"}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment to run (table1|fig2|fig3|fig4|fig5|fig6|storedb|preempt|ablation|all)")
	epochs := fs.Int("epochs", 40, "training epochs per run (paper: 40)")
	seed := fs.Int64("seed", 1, "experiment seed")
	csvDir := fs.String("csv", "", "directory to write CSV curves into (optional)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	runner := &runner{epochs: *epochs, seed: *seed, csvDir: *csvDir, out: stdout, errOut: stderr}
	known := map[string]func() error{
		"table1":   runner.table1,
		"fig2":     runner.fig2,
		"fig3":     runner.fig3,
		"fig4":     runner.fig4,
		"fig5":     runner.fig5,
		"fig6":     runner.fig6,
		"storedb":  runner.storedb,
		"preempt":  runner.preempt,
		"ablation": runner.ablation,
	}

	var toRun []string
	if *exp == "all" {
		toRun = experimentOrder
	} else {
		for _, name := range strings.Split(*exp, ",") {
			if _, ok := known[name]; !ok {
				fmt.Fprintf(stderr, "unknown experiment %q\nusage: experiments -exp %s|all [-epochs N] [-seed N] [-csv DIR]\n",
					name, strings.Join(experimentOrder, "|"))
				return 2
			}
			toRun = append(toRun, name)
		}
	}
	for _, name := range toRun {
		fmt.Fprintf(stdout, "\n================ %s ================\n", name)
		if err := known[name](); err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", name, err)
			return 1
		}
	}
	return 0
}

type runner struct {
	epochs int
	seed   int64
	csvDir string
	out    io.Writer
	errOut io.Writer

	setupCache *vcsim.PaperSetup
	fig4Cache  []*vcsim.Result
}

func (r *runner) setup() (*vcsim.PaperSetup, error) {
	if r.setupCache == nil {
		s, err := vcsim.NewPaperSetup(r.seed, r.epochs)
		if err != nil {
			return nil, err
		}
		r.setupCache = s
	}
	return r.setupCache, nil
}

func (r *runner) writeCSV(name string, series ...metrics.Series) {
	if r.csvDir == "" {
		return
	}
	if err := os.MkdirAll(r.csvDir, 0o755); err != nil {
		fmt.Fprintf(r.errOut, "csv dir: %v\n", err)
		return
	}
	var b strings.Builder
	for _, s := range series {
		b.WriteString(s.CSV())
		b.WriteByte('\n')
	}
	path := filepath.Join(r.csvDir, name+".csv")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintf(r.errOut, "write %s: %v\n", path, err)
	}
}

func printCurve(w io.Writer, res *vcsim.Result) {
	fmt.Fprintf(w, "-- %s  (%.2f h total, %d issued, %d reissued, %d timeouts)\n",
		res.Name, res.Hours, res.Issued, res.Reissued, res.Timeouts)
	for _, p := range res.Curve.Points {
		fmt.Fprintf(w, "   epoch %2d  %6.2f h  acc %.3f  [%.3f, %.3f]\n",
			p.Epoch, p.Hours, p.Value, p.Lo, p.Hi)
	}
}

func (r *runner) table1() error {
	fmt.Fprintln(r.out, "Table I: server and client instance configurations")
	rows := [][]string{}
	for _, it := range cloud.TableI() {
		rows = append(rows, []string{
			it.Name,
			fmt.Sprintf("%d", it.VCPU),
			fmt.Sprintf("%.1f", it.ClockGHz),
			fmt.Sprintf("%.0f", it.RAMGB),
			fmt.Sprintf("up to %.0f", it.BandwidthGbps),
			fmt.Sprintf("$%.3f", it.HourlyUSD),
			fmt.Sprintf("$%.3f", it.PreemptibleUSD),
		})
	}
	fmt.Fprint(r.out, metrics.Table(
		[]string{"instance", "vCPU", "GHz", "RAM(GB)", "net(Gbps)", "std/h", "spot/h"}, rows))
	fleet := append([]cloud.InstanceType{cloud.ServerInstance}, cloud.DefaultFleet(4)...)
	fmt.Fprintf(r.out, "P5C5T2 fleet: $%.2f/h standard, $%.2f/h preemptible (%.0f%% savings)\n",
		cloud.FleetCost(fleet, false), cloud.FleetCost(fleet, true), 100*cloud.Savings(fleet))
	return nil
}

func (r *runner) fig2() error {
	s, err := r.setup()
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Figure 2: validation accuracy vs training time, alpha=0.95")
	results, err := vcsim.Fig2(s)
	if err != nil {
		return err
	}
	for _, res := range results {
		printCurve(r.out, res)
		r.writeCSV("fig2_"+res.Name, res.Curve)
	}
	fmt.Fprintln(r.out, "expected shape: all configs converge to similar accuracy; P5C5T2 fastest.")
	return nil
}

func (r *runner) fig3() error {
	s, err := r.setup()
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Figure 3: training time (hours) vs simultaneous subtasks per client, alpha=0.95")
	rows, err := vcsim.Fig3(s)
	if err != nil {
		return err
	}
	var table [][]string
	for _, row := range rows {
		cells := []string{row.Label}
		for _, h := range row.Hours {
			cells = append(cells, fmt.Sprintf("%.2f", h))
		}
		table = append(table, cells)
	}
	fmt.Fprint(r.out, metrics.Table([]string{"config", "T2", "T4", "T8"}, table))
	fmt.Fprintln(r.out, "expected shape: P1C3 dips at T4 and rises at T8; P3C3T8 beats P1C3T8 by ~3h;")
	fmt.Fprintln(r.out, "P5C5 fastest overall with the imbalance growing toward T8.")
	return nil
}

// fig4Results runs (or reuses) the Figure 4 sweep, which Figure 5 zooms.
func (r *runner) fig4Results() ([]*vcsim.Result, error) {
	if r.fig4Cache != nil {
		return r.fig4Cache, nil
	}
	s, err := r.setup()
	if err != nil {
		return nil, err
	}
	results, err := vcsim.Fig4(s)
	if err != nil {
		return nil, err
	}
	r.fig4Cache = results
	return results, nil
}

func (r *runner) fig4() error {
	fmt.Fprintln(r.out, "Figure 4: effect of VC-ASGD hyperparameter alpha on P3C3T4")
	results, err := r.fig4Results()
	if err != nil {
		return err
	}
	for _, res := range results {
		printCurve(r.out, res)
		r.writeCSV("fig4_"+res.Name, res.Curve)
	}
	fmt.Fprintln(r.out, "expected shape: alpha=0.7 fastest early; alpha=0.95 better late;")
	fmt.Fprintln(r.out, "alpha=0.999 far behind; Var (e/(e+1)) best overall with smallest spread.")
	return nil
}

func (r *runner) fig5() error {
	fmt.Fprintln(r.out, "Figure 5: zoomed views of Figure 4 (mid-training and late-training windows)")
	results, err := r.fig4Results()
	if err != nil {
		return err
	}
	// Scale the paper's 6-10h and 10-14h windows to the run length.
	total := 0.0
	for _, res := range results {
		if res.Hours > total {
			total = res.Hours
		}
	}
	windows := [][2]float64{{0.45 * total, 0.72 * total}, {0.72 * total, total}}
	for wi, w := range windows {
		fmt.Fprintf(r.out, "-- window %d: %.2f–%.2f h\n", wi+1, w[0], w[1])
		for _, res := range results {
			z := vcsim.ZoomWindow(res.Curve, w[0], w[1])
			for _, p := range z.Points {
				fmt.Fprintf(r.out, "   %-12s epoch %2d  %6.2f h  acc %.3f [%.3f, %.3f]\n",
					res.Name, p.Epoch, p.Hours, p.Value, p.Lo, p.Hi)
			}
		}
	}
	return nil
}

func (r *runner) fig6() error {
	s, err := r.setup()
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Figure 6: distributed (P5C5T2, Var alpha) vs single-instance serial training")
	serialEpochs := r.epochs / 4
	if serialEpochs < 2 {
		serialEpochs = 2
	}
	res, err := vcsim.Fig6(s, serialEpochs)
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "-- validation")
	printSeriesPair(r.out, res.DistVal, res.SerialVal)
	fmt.Fprintln(r.out, "-- test")
	printSeriesPair(r.out, res.DistTest, res.SerialTest)
	r.writeCSV("fig6_val", res.DistVal, res.SerialVal)
	r.writeCSV("fig6_test", res.DistTest, res.SerialTest)
	fmt.Fprintln(r.out, "expected shape: single-instance above distributed with a shrinking gap;")
	fmt.Fprintln(r.out, "distributed curve smoother; test tracks validation.")
	return nil
}

func printSeriesPair(w io.Writer, dist, serial metrics.Series) {
	fmt.Fprintf(w, "   %-24s final %.3f at %.2f h\n", dist.Name, dist.FinalValue(), lastHours(dist))
	fmt.Fprintf(w, "   %-24s final %.3f at %.2f h\n", serial.Name, serial.FinalValue(), lastHours(serial))
	for _, p := range serial.Points {
		fmt.Fprintf(w, "   serial epoch %2d  %6.2f h  acc %.3f\n", p.Epoch, p.Hours, p.Value)
	}
	for _, p := range dist.Points {
		fmt.Fprintf(w, "   dist   epoch %2d  %6.2f h  acc %.3f\n", p.Epoch, p.Hours, p.Value)
	}
}

func lastHours(s metrics.Series) float64 {
	p, ok := s.Last()
	if !ok {
		return 0
	}
	return p.Hours
}

func (r *runner) storedb() error {
	fmt.Fprintln(r.out, "§IV-D: eventual-consistency (Redis-like) vs strong-consistency (MySQL-like) store")
	c := vcsim.CompareStores()
	fmt.Fprintf(r.out, "   per-update latency:   eventual %.2f s   strong %.2f s   ratio %.2fx\n",
		c.EventualUpdateSec, c.StrongUpdateSec, c.Ratio)
	fmt.Fprintf(r.out, "   CIFAR10-scale (2,000 updates):     +%.0f min with the strong store\n", c.CIFAR10OverheadMin)
	fmt.Fprintf(r.out, "   ImageNet-scale (1,600,000 updates): +%.0f h with the strong store\n", c.ImageNetOverheadH)
	fmt.Fprintln(r.out, "   paper: 0.87 s vs 1.29 s (1.5x), +14 min CIFAR10, +187 h ImageNet")
	return nil
}

func (r *runner) preempt() error {
	fmt.Fprintln(r.out, "§IV-E: preemptible instances — binomial delay model and simulation")
	m := cloud.PreemptModel{TaskExecSeconds: 2.4 * 60, TimeoutSeconds: 5 * 60}
	var rows [][]string
	for _, p := range []float64{0.05, 0.10, 0.15, 0.20} {
		m.P = p
		inc := m.ExpectedIncreaseSeconds(2000, 5, 2) / 60
		total := m.ExpectedTrainingSeconds(2000, 5, 2) / 3600
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", p*100),
			fmt.Sprintf("%.0f min", inc),
			fmt.Sprintf("%.1f h", total),
		})
	}
	fmt.Fprint(r.out, metrics.Table([]string{"p", "expected increase", "expected total"}, rows))
	fmt.Fprintln(r.out, "   paper: +50 min at p=0.05, +200 min at p=0.20 for P5C5T2 (ns=2000, to=5 min)")

	// End-to-end simulation with preemptions enabled.
	s, err := r.setup()
	if err != nil {
		return err
	}
	epochs := r.epochs / 4
	if epochs < 2 {
		epochs = 2
	}
	short, err := vcsim.NewPaperSetup(r.seed, epochs)
	if err != nil {
		return err
	}
	_ = s
	clean := short.Config(5, 5, 2, opt.Constant{V: 0.95})
	clean.TimeoutSeconds = 300
	base, err := vcsim.Run(clean)
	if err != nil {
		return err
	}
	pre := clean
	pre.PreemptProb = 0.05
	rough, err := vcsim.Run(pre)
	if err != nil {
		return err
	}
	fmt.Fprintf(r.out, "   simulated %d epochs: clean %.2f h, p=5%% %.2f h (+%.0f min, %d timeouts)\n",
		epochs, base.Hours, rough.Hours, (rough.Hours-base.Hours)*60, rough.Timeouts)
	fmt.Fprintf(r.out, "   cost for the run: $%.2f standard vs $%.2f preemptible (%.0f%% saved)\n",
		rough.CostStandardUSD, rough.CostPreemptibleUSD,
		100*(1-rough.CostPreemptibleUSD/rough.CostStandardUSD))
	return nil
}

func (r *runner) ablation() error {
	epochs := r.epochs / 4
	if epochs < 3 {
		epochs = 3
	}
	s, err := vcsim.NewPaperSetup(r.seed, epochs)
	if err != nil {
		return err
	}
	fmt.Fprintf(r.out, "A1: update-rule ablation on P3C3T4 with 5%% preemption (%d epochs)\n", epochs)
	var rows [][]string
	for _, rule := range vcsim.AblationRules(s.Job.Subtasks) {
		cfg := s.Config(3, 3, 4, s.Job.Alpha)
		cfg.Rule = rule
		cfg.PreemptProb = 0.05
		cfg.TimeoutSeconds = 600
		res, err := vcsim.Run(cfg)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			rule.Name(),
			fmt.Sprintf("%.3f", res.Curve.FinalValue()),
			fmt.Sprintf("%.2f h", res.Hours),
			fmt.Sprintf("%d", res.Timeouts),
		})
	}
	fmt.Fprint(r.out, metrics.Table([]string{"rule", "final acc", "time", "timeouts"}, rows))

	fmt.Fprintln(r.out, "A2: sticky files / compression ablation (bytes downloaded)")
	cfgOn := s.Config(3, 3, 4, s.Job.Alpha)
	on, err := vcsim.Run(cfgOn)
	if err != nil {
		return err
	}
	cfgOff := cfgOn
	cfgOff.DisableSticky = true
	off, err := vcsim.Run(cfgOff)
	if err != nil {
		return err
	}
	fmt.Fprintf(r.out, "   sticky on:  %8.1f MB downloaded\n", float64(on.BytesDownloaded)/1e6)
	fmt.Fprintf(r.out, "   sticky off: %8.1f MB downloaded (%.1fx more)\n",
		float64(off.BytesDownloaded)/1e6, float64(off.BytesDownloaded)/float64(on.BytesDownloaded))
	return nil
}
