package main

import (
	"strings"
	"testing"
)

func TestUnknownExperimentRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "fig99"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	msg := errOut.String()
	if !strings.Contains(msg, `unknown experiment "fig99"`) || !strings.Contains(msg, "usage: experiments") {
		t.Fatalf("stderr = %q", msg)
	}
}

func TestBadFlagRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestTable1Runs(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "table1"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Table I") || !strings.Contains(out.String(), "client-16x2.8") {
		t.Fatalf("stdout = %q", out.String())
	}
}
