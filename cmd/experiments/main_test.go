package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vcdl/internal/exp"
	"vcdl/internal/metrics"
)

func TestUnknownExperimentRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "fig99"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	msg := errOut.String()
	if !strings.Contains(msg, `unknown experiment "fig99"`) || !strings.Contains(msg, "usage: experiments") {
		t.Fatalf("stderr = %q", msg)
	}
}

func TestBadFlagRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestTable1Runs(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "table1"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Table I") || !strings.Contains(out.String(), "client-16x2.8") {
		t.Fatalf("stdout = %q", out.String())
	}
}

// TestRegistryIsSingleSourceOfTruth pins the satellite fix: usage text,
// validation and dispatch all derive from one ordered table.
func TestRegistryIsSingleSourceOfTruth(t *testing.T) {
	want := []string{"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "storedb", "preempt", "ablation", "schedpolicy", "scale", "schedlatency"}
	names := experimentNames()
	if len(names) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(names), len(want))
	}
	seen := map[string]bool{}
	for i, name := range names {
		if name != want[i] {
			t.Errorf("registry[%d] = %q, want %q", i, name, want[i])
		}
		if seen[name] {
			t.Errorf("duplicate registry entry %q", name)
		}
		seen[name] = true
		e, ok := lookup(name)
		if !ok || e.run == nil {
			t.Errorf("lookup(%q) = %v, %v", name, e, ok)
		}
	}
	// The usage string in the error path lists every registry name.
	var out, errOut strings.Builder
	run([]string{"-exp", "nope"}, &out, &errOut)
	for _, name := range names {
		if !strings.Contains(errOut.String(), name) {
			t.Errorf("usage text missing %q: %s", name, errOut.String())
		}
	}
}

// TestBadPolicyFlagRejected: -policy names are validated against the
// boinc policy registry before any simulation runs.
func TestBadPolicyFlagRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "schedpolicy", "-policy", "warp-speed"}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "unknown policy") {
		t.Fatalf("stderr = %q", errOut.String())
	}
}

// TestSelectedPolicies resolves the -policy flag forms.
func TestSelectedPolicies(t *testing.T) {
	r := &runner{policies: "all"}
	if names, err := r.selectedPolicies(); err != nil || len(names) < 6 {
		t.Fatalf("all = %v, %v", names, err)
	}
	r.policies = "paper, fifo"
	names, err := r.selectedPolicies()
	if err != nil || len(names) != 2 || names[0] != "paper" || names[1] != "fifo" {
		t.Fatalf("subset = %v, %v", names, err)
	}
}

// TestScaleGridSmoke runs the compute-backend scale grid on a tiny fleet
// and checks both artifacts land: the per-cell CSV and the
// BENCH_compute.json perf record with real first and every backend
// present.
func TestScaleGridSmoke(t *testing.T) {
	dir := t.TempDir()
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "scale", "-clients", "24", "-epochs", "2", "-csv", dir}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr %q", code, errOut.String())
	}
	csv, err := os.ReadFile(filepath.Join(dir, "scale.csv"))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, "BENCH_compute.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Grid []struct {
			Backend       string  `json:"backend"`
			Wall          float64 `json:"wallclock_seconds"`
			Speedup       float64 `json:"speedup_vs_real"`
			Fidelity      float64 `json:"fidelity_vs_real"`
			FinalAccuracy float64 `json:"final_acc"`
		} `json:"grid"`
	}
	if err := json.Unmarshal(blob, &rec); err != nil {
		t.Fatalf("BENCH_compute.json: %v", err)
	}
	seen := map[string]bool{}
	for i, c := range rec.Grid {
		seen[c.Backend] = true
		if c.Wall <= 0 || c.Speedup <= 0 {
			t.Errorf("cell %d (%s): wall %v speedup %v", i, c.Backend, c.Wall, c.Speedup)
		}
		// cached/parallel cells must be byte-identical to real.
		if c.Backend != "surrogate" && c.Fidelity != 0 {
			t.Errorf("%s: fidelity delta %v, want 0", c.Backend, c.Fidelity)
		}
	}
	for _, want := range []string{"real", "cached", "parallel", "parallel+cached", "surrogate"} {
		if !seen[want] {
			t.Errorf("BENCH_compute.json missing backend %q", want)
		}
	}
	if rec.Grid[0].Backend != "real" {
		t.Errorf("grid[0] = %q, want the real baseline first", rec.Grid[0].Backend)
	}
	if !strings.Contains(string(csv), "parallel+cached") {
		t.Errorf("scale.csv missing backend rows:\n%s", csv)
	}
}

// TestBadClientsFlagRejected: -clients is validated before any run.
func TestBadClientsFlagRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "scale", "-clients", "2"}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "-clients") {
		t.Fatalf("stderr = %q", errOut.String())
	}
}

// TestCSVWriteFailurePropagates pins the satellite fix: a failing -csv
// DIR fails the experiment (exit 1) instead of logging and exiting 0.
func TestCSVWriteFailurePropagates(t *testing.T) {
	series := metrics.Series{Name: "x", Points: nil}
	r := &runner{csvDir: "/dev/null/not-a-dir"}
	if err := r.writeCSV("curve", series); err == nil {
		t.Fatal("writeCSV on an uncreatable directory returned nil")
	}
	// The experiment function surfaces the CSV error: fig4 with a
	// pre-populated cache exercises the path without running simulations.
	r = &runner{
		csvDir:    "/dev/null/not-a-dir",
		out:       &strings.Builder{},
		fig4Cache: []*exp.Result{{Name: "alpha=0.70"}},
	}
	if err := r.fig4(); err == nil {
		t.Fatal("fig4 with failing -csv returned nil error")
	}
}
