package main

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"time"

	"vcdl/internal/boinc"
	"vcdl/internal/metrics"
	"vcdl/internal/obs"
)

// schedCell is one measured cell of the scheduler-latency grid,
// serialized into BENCH_sched_latency.json.
type schedCell struct {
	Clients   int `json:"clients"`
	Workunits int `json:"workunits"`
	// Requests counts scheduler RPCs the cell issued (drain + the empty
	// replies that end each worker).
	Requests int64 `json:"requests"`
	// RPC latencies are the server-side wall clock of the /scheduler
	// handler, from vcdl_rpc_seconds{handler="scheduler"}.
	RPCp50Ms float64 `json:"rpc_p50_ms"`
	RPCp99Ms float64 `json:"rpc_p99_ms"`
	// Assignment waits are how long workunits sat queued before issue,
	// from vcdl_sched_assign_wait_seconds (wall seconds: this is the
	// live server, there is no virtual clock).
	AssignP50s float64 `json:"assign_wait_p50_s"`
	AssignP99s float64 `json:"assign_wait_p99_s"`
	// DrainSeconds is the wall clock to assign and complete the whole
	// backlog; Throughput is workunits completed per second.
	DrainSeconds float64 `json:"drain_seconds"`
	Throughput   float64 `json:"workunits_per_second"`
}

// schedlatency drives an instrumented live boinc.Server with a grid of
// concurrent HTTP client daemons draining a synthetic backlog, and
// reports scheduler RPC latency and assignment-wait percentiles per
// fleet size — the observability layer measuring the paper's central
// server under §IV-A-style load. Cells run serially so each measures
// one fleet alone; with -csv it also emits BENCH_sched_latency.json.
func (r *runner) schedlatency() error {
	sizes, err := r.selectedLoadClients()
	if err != nil {
		return err
	}
	const perClientWUs = 24
	fmt.Fprintf(r.out, "scheduler latency under load — concurrent clients ∈ %v, %d workunits per client\n",
		sizes, perClientWUs)

	var cells []schedCell
	var rows [][]string
	for _, n := range sizes {
		cell, err := schedLatencyCell(n, n*perClientWUs)
		if err != nil {
			return err
		}
		cells = append(cells, *cell)
		rows = append(rows, []string{
			fmt.Sprintf("%d", cell.Clients),
			fmt.Sprintf("%d", cell.Workunits),
			fmt.Sprintf("%.2f", cell.RPCp50Ms),
			fmt.Sprintf("%.2f", cell.RPCp99Ms),
			fmt.Sprintf("%.3f", cell.AssignP50s),
			fmt.Sprintf("%.3f", cell.AssignP99s),
			fmt.Sprintf("%.2f s", cell.DrainSeconds),
			fmt.Sprintf("%.0f", cell.Throughput),
		})
	}
	fmt.Fprint(r.out, metrics.Table(
		[]string{"clients", "workunits", "rpc p50(ms)", "rpc p99(ms)", "assign p50(s)", "assign p99(s)", "drain", "wu/s"}, rows))
	fmt.Fprintln(r.out, "expected shape: rpc p50 stays sub-millisecond-ish while the fleet grows; assign")
	fmt.Fprintln(r.out, "waits track backlog depth (more clients drain the queue faster per workunit).")

	blob, err := json.MarshalIndent(map[string]any{"grid": cells}, "", "  ")
	if err != nil {
		return err
	}
	return r.writeFile("BENCH_sched_latency.json", string(blob)+"\n")
}

// schedLatencyCell measures one fleet size: an instrumented server is
// seeded with a workunit backlog, then n HTTP clients race to drain it,
// each looping request→upload until the scheduler replies empty.
func schedLatencyCell(n, wus int) (*schedCell, error) {
	reg := obs.NewRegistry()
	cfg := boinc.DefaultSchedulerConfig()
	cfg.DefaultTimeout = 3600 // wall seconds; nothing should expire mid-bench
	srv := boinc.NewServer(cfg, nil, nil)
	srv.EnableMetrics(reg)
	for i := 0; i < wus; i++ {
		srv.AddWorkunit(boinc.Workunit{
			Name:       fmt.Sprintf("bench-%d", i),
			InputFiles: []string{"model", fmt.Sprintf("shard-%d", i%64)},
		})
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var requests int64
	var mu sync.Mutex
	var firstErr error
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := boinc.NewClient(fmt.Sprintf("load-%03d", id), ts.URL, 1, nil)
			for {
				asns, err := cl.RequestWork(1)
				mu.Lock()
				requests++
				if err != nil && firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				if err != nil || len(asns) == 0 {
					return
				}
				if err := cl.Upload(asns[0].ResultID, []byte("ok"), nil); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(c)
	}
	wg.Wait()
	drain := time.Since(start).Seconds()
	if firstErr != nil {
		return nil, fmt.Errorf("schedlatency C=%d: %w", n, firstErr)
	}

	cell := &schedCell{Clients: n, Workunits: wus, Requests: requests, DrainSeconds: drain}
	if drain > 0 {
		cell.Throughput = float64(wus) / drain
	}
	if h := reg.FindHistogram(boinc.MetricRPCSeconds, "scheduler"); h != nil && h.Count() > 0 {
		cell.RPCp50Ms = h.Quantile(0.5) * 1000
		cell.RPCp99Ms = h.Quantile(0.99) * 1000
	}
	if h := reg.FindHistogram(boinc.MetricAssignWait); h != nil && h.Count() > 0 {
		cell.AssignP50s = h.Quantile(0.5)
		cell.AssignP99s = h.Quantile(0.99)
	}
	if done := reg.CounterValue("vcdl_sched_workunits_done_total"); done != int64(wus) {
		return nil, fmt.Errorf("schedlatency C=%d: drained %d of %d workunits", n, done, wus)
	}
	return cell, nil
}

// selectedLoadClients resolves -loadclients into fleet sizes.
func (r *runner) selectedLoadClients() ([]int, error) {
	var sizes []int
	for _, s := range strings.Split(r.loadClients, ",") {
		s = strings.TrimSpace(s)
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -loadclients value %q (want integers >= 1)", s)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}
