// Real cluster on localhost: the networked deployment path.
//
// Unlike the simulator examples, everything here is real: an HTTP BOINC-
// style server with scheduler/download/upload endpoints, three client
// daemons polling it over TCP, compressed parameter and shard files on the
// wire, a flaky client whose failures exercise timeout-based reissue, and
// VC-ASGD assimilation on the server.
//
//	go run ./examples/realcluster
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http/httptest"
	"sync"
	"time"

	"vcdl/internal/boinc"
	"vcdl/internal/core"
	"vcdl/internal/data"
	"vcdl/internal/store"
)

func main() {
	// Workload and model: the architecture ships to clients as model.json.
	dc := data.DefaultSynthConfig()
	dc.NTrain, dc.NVal, dc.NTest = 800, 250, 250
	dc.NoiseStd = 0.5
	corpus, err := data.GenerateSynth(dc)
	if err != nil {
		log.Fatal(err)
	}
	spec := core.SmallCNNSpec(dc.C, dc.H, dc.W, dc.Classes)
	builder, err := spec.Builder()
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultJobConfig(builder)
	cfg.Subtasks = 8
	cfg.MaxEpochs = 3
	cfg.LocalPasses = 3
	cfg.LearningRate = 0.01
	cfg.ValSubset = 150

	// Server side: work generator + scheduler + VC-ASGD parameter servers
	// over an eventual-consistency store.
	job, err := core.NewDistributed(cfg, spec, corpus, 2, store.NewEventual(2, 2, 1))
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(job.Server())
	defer ts.Close()
	fmt.Printf("BOINC-style server listening at %s\n", ts.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Client side: two healthy daemons plus one that fails its first two
	// subtasks (a "preempted" volunteer) — the scheduler reissues its work.
	var failures sync.Mutex
	remaining := 2
	healthy := core.NewTrainingApp(cfg)
	flaky := boinc.AppFunc(func(asn boinc.Assignment, inputs map[string][]byte) ([]byte, error) {
		failures.Lock()
		if remaining > 0 {
			remaining--
			failures.Unlock()
			return nil, errors.New("instance reclaimed")
		}
		failures.Unlock()
		return healthy.Run(asn, inputs)
	})

	var wg sync.WaitGroup
	clients := []*boinc.Client{
		boinc.NewClient("steady-1", ts.URL, 2, healthy),
		boinc.NewClient("steady-2", ts.URL, 2, healthy),
		boinc.NewClient("flaky-1", ts.URL, 1, flaky),
	}
	for _, cl := range clients {
		cl.Poll = 10 * time.Millisecond
		wg.Add(1)
		go func(cl *boinc.Client) {
			defer wg.Done()
			cl.Loop(ctx)
		}(cl)
	}

	<-job.Done()
	cancel()
	wg.Wait()

	res, err := job.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nepoch  val-accuracy")
	for _, p := range res.Curve.Points {
		fmt.Printf("%4d      %.3f\n", p.Epoch, p.Value)
	}
	job.Server().Scheduler(func(s *boinc.Scheduler) {
		fmt.Printf("\nscheduler: %d issued, %d reissued after failures, %d completions\n",
			s.Issued, s.Reissued, s.Completions)
	})
	for _, cl := range clients {
		fmt.Printf("client %-9s completed=%d failed=%d downloads=%d cache-hits=%d\n",
			cl.ID, cl.Completed, cl.Failed, cl.Downloads, cl.CacheHits)
	}
}
