// Heterogeneous fleet under preemption: the volunteer-computing scenario.
//
// This example simulates the paper's core setting: a fleet of heterogeneous
// preemptible cloud instances (Table I) training over a WAN, with subtasks
// that time out and get reissued when instances are reclaimed. Virtual
// time makes an hours-long run finish in seconds while the gradient math
// runs for real.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"vcdl/internal/cloud"
	"vcdl/internal/vcsim"
)

func main() {
	setup, err := vcsim.NewPaperSetup(1, 6)
	if err != nil {
		log.Fatal(err)
	}

	// A deliberately uneven fleet: two slow 2.2 GHz clients, one 2.8 GHz
	// client with little RAM, and the big 16-vCPU box.
	cfg := setup.Config(2, 4, 2, setup.Job.Alpha)
	cfg.ClientInstances = []cloud.InstanceType{
		cloud.ClientA, cloud.ClientA, cloud.ClientC, cloud.ClientD,
	}
	cfg.PreemptProb = 0.08 // aggressive spot reclamation
	cfg.TimeoutSeconds = 300

	res, err := vcsim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("fleet:")
	fmt.Printf("  %s (parameter servers, BOINC server, store)\n", cloud.ServerInstance)
	for _, it := range cfg.ClientInstances {
		fmt.Printf("  %s\n", it)
	}
	fmt.Println("\nepoch  hours  val-accuracy")
	for _, p := range res.Curve.Points {
		fmt.Printf("%4d   %5.2f    %.3f [%.3f, %.3f]\n", p.Epoch, p.Hours, p.Value, p.Lo, p.Hi)
	}
	fmt.Printf("\nfault tolerance: %d subtasks issued, %d timed out, %d reissued — training still completed every epoch\n",
		res.Issued, res.Timeouts, res.Reissued)
	fmt.Printf("traffic: %.1f MB down, %.1f MB up (sticky files cache shards across epochs)\n",
		float64(res.BytesDownloaded)/1e6, float64(res.BytesUploaded)/1e6)
	fmt.Printf("cost:    $%.2f standard vs $%.2f preemptible (%.0f%% saved)\n",
		res.CostStandardUSD, res.CostPreemptibleUSD,
		100*(1-res.CostPreemptibleUSD/res.CostStandardUSD))
}
