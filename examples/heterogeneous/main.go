// Heterogeneous fleet under preemption: the volunteer-computing scenario.
//
// This example simulates the paper's core setting: a fleet of heterogeneous
// preemptible cloud instances (Table I) training over a WAN, with subtasks
// that time out and get reissued when instances are reclaimed. Virtual
// time makes an hours-long run finish in seconds while the gradient math
// runs for real. The run is built with the composable experiment options
// and instrumented with an exp.Observer that narrates preemptions,
// timeout sweeps and epoch closes as they happen in virtual time.
//
//	go run ./examples/heterogeneous [-epochs N]
package main

import (
	"flag"
	"fmt"
	"log"

	"vcdl/internal/cloud"
	"vcdl/internal/exp"
)

func main() {
	epochs := flag.Int("epochs", 6, "training epochs")
	flag.Parse()

	setup, err := exp.NewPaperSetup(1, *epochs)
	if err != nil {
		log.Fatal(err)
	}

	// A deliberately uneven fleet: two slow 2.2 GHz clients, one 2.8 GHz
	// client with little RAM, and the big 16-vCPU box — under aggressive
	// spot reclamation with a tight 5-minute deadline.
	fleet := []cloud.InstanceType{cloud.ClientA, cloud.ClientA, cloud.ClientC, cloud.ClientD}
	narrate := exp.ObserverFuncs{
		Preempt: func(e exp.PreemptEvent) {
			fmt.Printf("  [%5.2fh] %s reclaimed mid-subtask (epoch %d shard %d)\n", e.Hours, e.Client, e.Epoch, e.Shard)
		},
		Timeout: func(e exp.TimeoutEvent) {
			fmt.Printf("  [%5.2fh] deadline sweep: %d result(s) expired, reissuing\n", e.Hours, e.Expired)
		},
		Epoch: func(e exp.EpochEvent) {
			fmt.Printf("  [%5.2fh] epoch %d done: accuracy %.3f\n", e.Hours, e.Summary.Epoch, e.Summary.Mean)
		},
	}
	spec, err := exp.New(setup.Job, setup.Corpus,
		exp.Topology(2, 4, 2),
		exp.Fleet(fleet...),
		exp.Preempt(0.08),
		exp.Timeout(300),
		exp.Observe(narrate))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("fleet:")
	fmt.Printf("  %s (parameter servers, BOINC server, store)\n", cloud.ServerInstance)
	for _, it := range fleet {
		fmt.Printf("  %s\n", it)
	}
	fmt.Println("\nlive run events:")
	res, err := exp.Run(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nepoch  hours  val-accuracy")
	for _, p := range res.Curve.Points {
		fmt.Printf("%4d   %5.2f    %.3f [%.3f, %.3f]\n", p.Epoch, p.Hours, p.Value, p.Lo, p.Hi)
	}
	fmt.Printf("\nfault tolerance: %d subtasks issued, %d timed out, %d reissued — training still completed every epoch\n",
		res.Issued, res.Timeouts, res.Reissued)
	fmt.Printf("traffic: %.1f MB down, %.1f MB up (sticky files cache shards across epochs)\n",
		float64(res.BytesDownloaded)/1e6, float64(res.BytesUploaded)/1e6)
	fmt.Printf("cost:    $%.2f standard vs $%.2f preemptible (%.0f%% saved)\n",
		res.CostStandardUSD, res.CostPreemptibleUSD,
		100*(1-res.CostPreemptibleUSD/res.CostStandardUSD))
}
