// Time-series forecasting: the paper's §V extension scenario.
//
// The paper notes that time-series forecasting differs from image
// classification: the training data is small, so the data-parallel split
// yields tiny shards and the problem "requires more vertical scaling"
// (more simultaneous subtasks per client) rather than horizontal scaling
// (more clients). This example demonstrates exactly that trade-off: the
// same forecasting job run with a horizontal fleet and a vertical fleet,
// plus the work-generator's automatic split planning.
//
//	go run ./examples/timeseries
package main

import (
	"fmt"
	"log"

	"vcdl/internal/core"
	"vcdl/internal/data"
	"vcdl/internal/nn"
)

func main() {
	cfg := data.DefaultTimeSeriesConfig()
	cfg.NTrain = 1600
	corpus, err := data.GenerateTimeSeries(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The work generator plans the split automatically (§III-A): small
	// dataset, so it chooses few, small shards.
	plan, err := core.PlanSplit(corpus.Train.N(), 2, 4, 50, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("split plan: %d subtasks of ~%d windows (%d waves over the fleet)\n",
		plan.Subtasks, plan.ShardSize, plan.Waves)

	job := core.DefaultJobConfig(nn.MLPBuilder(cfg.Window, []int{32, 32}, cfg.Buckets))
	job.Subtasks = plan.Subtasks
	job.MaxEpochs = 10
	job.BatchSize = 25
	job.LocalPasses = 2
	job.LearningRate = 0.01

	run := func(label string, clients, tasks int) float64 {
		res, err := core.RunLocal(job, corpus, core.LocalConfig{
			Clients:        clients,
			TasksPerClient: tasks,
			PServers:       core.RecommendPServers(clients, tasks, 10, 1, 8),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (C%d × T%d):\n", label, clients, tasks)
		for _, p := range res.Curve.Points {
			fmt.Printf("  epoch %2d  val-accuracy %.3f\n", p.Epoch, p.Value)
		}
		eval := core.NewEvaluator(job.Builder, corpus.Test, 0, 100)
		acc := eval.Accuracy(res.FinalParams)
		fmt.Printf("  test accuracy %.3f\n", acc)
		return acc
	}

	// Horizontal scaling: many clients, one subtask each.
	run("horizontal fleet", 8, 1)
	// Vertical scaling: few clients, many simultaneous subtasks — the
	// paper's recommendation for small time-series workloads.
	run("vertical fleet", 2, 4)

	fmt.Println("\nboth fleets train the same 5-bucket next-step forecaster; with small")
	fmt.Println("shards the vertical fleet needs fewer machines for the same throughput.")
}
