// Quickstart: distributed VC-ASGD training in one process.
//
// This example runs the full VCDL pipeline — work generator, data-parallel
// subtasks, goroutine clients, VC-ASGD parameter servers over a shared
// store — on a small synthetic image-classification task, in a few
// seconds of wall-clock time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vcdl/internal/core"
	"vcdl/internal/data"
	"vcdl/internal/nn"
)

func main() {
	// 1. A workload: 10-class synthetic images, split 80/10/10.
	dc := data.DefaultSynthConfig()
	dc.NTrain, dc.NVal, dc.NTest = 1000, 300, 300
	dc.NoiseStd = 0.5
	corpus, err := data.GenerateSynth(dc)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A training job: small CNN, 10 subtasks per epoch, VC-ASGD with
	//    the paper's default α = 0.95.
	cfg := core.DefaultJobConfig(nn.SmallCNNBuilder(dc.C, dc.H, dc.W, dc.Classes))
	cfg.Subtasks = 10
	cfg.MaxEpochs = 8
	cfg.LocalPasses = 3
	cfg.LearningRate = 0.01
	cfg.TargetAccuracy = 0.90

	// 3. Run it distributed: 3 clients × 2 simultaneous subtasks, 2
	//    parameter servers sharing one store (P2C3T2 in the paper's
	//    notation).
	res, err := core.RunLocal(cfg, corpus, core.LocalConfig{
		Clients:        3,
		TasksPerClient: 2,
		PServers:       2,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("epoch  val-accuracy   [min, max] across subtasks")
	for _, p := range res.Curve.Points {
		fmt.Printf("%4d      %.3f        [%.3f, %.3f]\n", p.Epoch, p.Value, p.Lo, p.Hi)
	}
	fmt.Printf("\nfinal accuracy %.3f after %d epochs (early stop: %v)\n",
		res.Curve.FinalValue(), len(res.Curve.Points), res.Stopped)

	// 4. The trained parameters are a flat vector — evaluate them on the
	//    held-out test set with a fresh network.
	eval := core.NewEvaluator(cfg.Builder, corpus.Test, 0, 100)
	fmt.Printf("test accuracy %.3f\n", eval.Accuracy(res.FinalParams))
}
