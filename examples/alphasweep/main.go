// Alpha sweep: the paper's Figure 4 in miniature.
//
// VC-ASGD's single hyperparameter α controls how strongly the server
// parameter copy absorbs each client update (Ws ← α·Ws + (1−α)·Wc). This
// example sweeps the paper's four settings on a short P3C3T4 run through
// the composable experiment API: one exp.Spec per α, executed on a
// parallel worker pool (exp.Sweep), results in input order.
//
//	go run ./examples/alphasweep [-epochs N] [-jobs N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"vcdl/internal/exp"
	"vcdl/internal/vcsim"
)

func main() {
	epochs := flag.Int("epochs", 8, "training epochs per run")
	jobs := flag.Int("jobs", 0, "parallel workers (0 = all cores)")
	flag.Parse()

	setup, err := exp.NewPaperSetup(1, *epochs)
	if err != nil {
		log.Fatal(err)
	}

	// One spec per α variant; the sweep runs them concurrently and the
	// per-run determinism contract keeps the curves identical to serial
	// execution.
	var specs []*exp.Spec
	variants := vcsim.Fig4Variants()
	for _, v := range variants {
		spec, err := exp.New(setup.Job, setup.Corpus,
			exp.Topology(3, 3, 4),
			exp.Alpha(v.Schedule),
			exp.Name("alpha="+v.Label))
		if err != nil {
			log.Fatal(err)
		}
		specs = append(specs, spec)
	}
	results, err := exp.Sweep(context.Background(), specs, exp.Workers(*jobs))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print("epoch ")
	for _, v := range variants {
		fmt.Printf("  α=%-6s", v.Label)
	}
	fmt.Println()
	for i := 0; i < len(results[0].Curve.Points); i++ {
		fmt.Printf("%4d  ", i+1)
		for _, res := range results {
			fmt.Printf("  %.3f   ", res.Curve.Points[i].Value)
		}
		fmt.Println()
	}
	fmt.Println("\nreading the sweep (cf. paper §IV-C):")
	fmt.Println("  - small α (0.70) learns fastest in the first epochs (server absorbs 30% per update)")
	fmt.Println("  - α = 0.95 overtakes later as client over-fitting to shards is damped")
	fmt.Println("  - α = 0.999 barely moves: 0.1% absorption is too slow for a VC setting")
	fmt.Println("  - Var (αe = e/(e+1)) starts absorbent and anneals, the paper's best setting")
}
