// Alpha sweep: the paper's Figure 4 in miniature.
//
// VC-ASGD's single hyperparameter α controls how strongly the server
// parameter copy absorbs each client update (Ws ← α·Ws + (1−α)·Wc). This
// example sweeps the paper's four settings on a short P3C3T4 run and
// prints the resulting accuracy trajectories side by side.
//
//	go run ./examples/alphasweep
package main

import (
	"fmt"
	"log"

	"vcdl/internal/metrics"
	"vcdl/internal/vcsim"
)

func main() {
	setup, err := vcsim.NewPaperSetup(1, 8)
	if err != nil {
		log.Fatal(err)
	}

	type outcome struct {
		label string
		curve metrics.Series
	}
	var outs []outcome
	for _, v := range vcsim.Fig4Variants() {
		res, err := vcsim.Run(setup.Config(3, 3, 4, v.Schedule))
		if err != nil {
			log.Fatal(err)
		}
		outs = append(outs, outcome{label: v.Label, curve: res.Curve})
	}

	fmt.Print("epoch ")
	for _, o := range outs {
		fmt.Printf("  α=%-6s", o.label)
	}
	fmt.Println()
	for i := 0; i < len(outs[0].curve.Points); i++ {
		fmt.Printf("%4d  ", i+1)
		for _, o := range outs {
			fmt.Printf("  %.3f   ", o.curve.Points[i].Value)
		}
		fmt.Println()
	}
	fmt.Println("\nreading the sweep (cf. paper §IV-C):")
	fmt.Println("  - small α (0.70) learns fastest in the first epochs (server absorbs 30% per update)")
	fmt.Println("  - α = 0.95 overtakes later as client over-fitting to shards is damped")
	fmt.Println("  - α = 0.999 barely moves: 0.1% absorption is too slow for a VC setting")
	fmt.Println("  - Var (αe = e/(e+1)) starts absorbent and anneals, the paper's best setting")
}
