package bench

import (
	"math"
	"testing"

	"vcdl/internal/cloud"
	"vcdl/internal/exp"
)

// TestPaperHeadlineClaims asserts the paper's quantitative headline
// numbers end to end through the public experiment APIs. These are the
// claims the abstract makes: 70–90% cost reduction from preemptible
// instances, a 1.5× strong-consistency penalty per parameter update, and
// the §IV-E preemption arithmetic.
func TestPaperHeadlineClaims(t *testing.T) {
	// "we lower cost by 70-90%" — fleet pricing.
	fleet := append([]cloud.InstanceType{cloud.ServerInstance}, cloud.DefaultFleet(4)...)
	if s := cloud.Savings(fleet); s < 0.69 || s > 0.91 {
		t.Fatalf("fleet savings %.2f outside the abstract's 70–90%%", s)
	}
	// "a strong consistency database like MySQL takes 1.5 times longer".
	c := exp.CompareStores()
	if c.Ratio < 1.4 || c.Ratio > 1.6 {
		t.Fatalf("store ratio %.2f, want ≈1.5", c.Ratio)
	}
	// "the expected increase in training time is 50 min [p=0.05] ...
	// 200 min [p=0.20]".
	m := cloud.PreemptModel{P: 0.05, TaskExecSeconds: 144, TimeoutSeconds: 300}
	if inc := m.ExpectedIncreaseSeconds(2000, 5, 2) / 60; math.Abs(inc-50) > 1e-9 {
		t.Fatalf("p=0.05 increase %.1f min, want 50", inc)
	}
	m.P = 0.20
	if inc := m.ExpectedIncreaseSeconds(2000, 5, 2) / 60; math.Abs(inc-200) > 1e-9 {
		t.Fatalf("p=0.20 increase %.1f min, want 200", inc)
	}
	// "we can reduce the training time by 50%" — the paper's summary
	// compares the slowest and fastest distributed configurations; our
	// Figure 3 table shows P5C5T4 ≈ 8.8 h vs P1C3T2 ≈ 15.0 h ≈ 41% (the
	// fastest-to-slowest ratio is validated at scale by
	// BenchmarkFig3ServerImbalance and the vcsim Fig3 probe).
}
