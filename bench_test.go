// Package bench holds the benchmark harness that regenerates every table
// and figure of the paper's evaluation (DESIGN.md §3 maps each benchmark
// to its experiment ID). Figure benchmarks run reduced-epoch versions of
// the full experiments; `go run ./cmd/experiments -epochs 40` reproduces
// the paper-length curves.
package bench

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"vcdl/internal/baseline"
	"vcdl/internal/cloud"
	"vcdl/internal/core"
	"vcdl/internal/data"
	"vcdl/internal/exp"
	"vcdl/internal/nn"
	"vcdl/internal/opt"
	"vcdl/internal/ps"
	"vcdl/internal/store"
	"vcdl/internal/tensor"
	"vcdl/internal/wire"
)

// benchEpochs keeps the figure benchmarks tractable; shapes are preserved
// because simulated time scales linearly in epochs.
const benchEpochs = 3

var (
	setupOnce sync.Once
	setupVal  *exp.PaperSetup
	setupErr  error
)

func paperSetup(b *testing.B) *exp.PaperSetup {
	b.Helper()
	setupOnce.Do(func() {
		setupVal, setupErr = exp.NewPaperSetup(1, benchEpochs)
	})
	if setupErr != nil {
		b.Fatal(setupErr)
	}
	return setupVal
}

// sweep runs specs through the exp worker pool (all cores — the figure
// benchmarks measure the batched-evaluation harness end to end).
func sweep(b *testing.B, specs []*exp.Spec, err error) []*exp.Result {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	results, err := exp.Sweep(context.Background(), specs)
	if err != nil {
		b.Fatal(err)
	}
	return results
}

// BenchmarkTable1InstanceCatalog regenerates Table I and the §IV-E fleet
// cost summary (experiment T1).
func BenchmarkTable1InstanceCatalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := cloud.TableI()
		if len(rows) != 5 {
			b.Fatal("catalog incomplete")
		}
		fleet := append([]cloud.InstanceType{cloud.ServerInstance}, cloud.DefaultFleet(4)...)
		std := cloud.FleetCost(fleet, false)
		spot := cloud.FleetCost(fleet, true)
		if i == 0 {
			b.ReportMetric(std, "USD/h-standard")
			b.ReportMetric(spot, "USD/h-preemptible")
			b.ReportMetric(100*cloud.Savings(fleet), "%savings")
		}
	}
}

// BenchmarkFig2DistributedConfigs regenerates Figure 2 (experiment F2):
// the four PnCnTn configurations at α = 0.95.
func BenchmarkFig2DistributedConfigs(b *testing.B) {
	s := paperSetup(b)
	for i := 0; i < b.N; i++ {
		results, err := exp.Fig2(context.Background(), s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, res := range results {
				b.Logf("%s: %.2fh final acc %.3f", res.Name, res.Hours, res.Curve.FinalValue())
			}
			b.ReportMetric(results[3].Hours, "hours-P5C5T2")
		}
	}
}

// BenchmarkFig3ServerImbalance regenerates Figure 3 (experiment F3):
// training time vs simultaneous subtasks for P1C3, P3C3 and P5C5.
func BenchmarkFig3ServerImbalance(b *testing.B) {
	s := paperSetup(b)
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig3(context.Background(), s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range rows {
				b.Logf("%s: T2=%.2fh T4=%.2fh T8=%.2fh", row.Label, row.Hours[0], row.Hours[1], row.Hours[2])
			}
			// The paper's headline inversion: P1C3 dips at T4, rises at T8.
			p1 := rows[0]
			if !(p1.Hours[1] < p1.Hours[0] && p1.Hours[2] > p1.Hours[1]) {
				b.Fatalf("P1C3 shape broken: %v", p1.Hours)
			}
		}
	}
}

// BenchmarkFig4AlphaSweep regenerates Figure 4 (experiment F4): the
// VC-ASGD α sweep on P3C3T4, error bars included.
func BenchmarkFig4AlphaSweep(b *testing.B) {
	s := paperSetup(b)
	for i := 0; i < b.N; i++ {
		results, err := exp.Fig4(context.Background(), s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, res := range results {
				last, _ := res.Curve.Last()
				b.Logf("%s: final acc %.3f spread [%.3f,%.3f]", res.Name, last.Value, last.Lo, last.Hi)
			}
		}
	}
}

// BenchmarkFig5ZoomWindows regenerates Figure 5 (experiment F5) by
// re-slicing the Figure 4 curves into the two zoom windows.
func BenchmarkFig5ZoomWindows(b *testing.B) {
	s := paperSetup(b)
	results, err := exp.Fig4(context.Background(), s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, res := range results {
			lo := exp.ZoomWindow(res.Curve, 0.45*res.Hours, 0.72*res.Hours)
			hi := exp.ZoomWindow(res.Curve, 0.72*res.Hours, res.Hours)
			if len(lo.Points)+len(hi.Points) == 0 {
				b.Fatal("zoom windows empty")
			}
		}
	}
}

// BenchmarkFig6DistributedVsSingle regenerates Figure 6 (experiment F6):
// distributed P5C5T2 with Var α against serial single-instance training.
func BenchmarkFig6DistributedVsSingle(b *testing.B) {
	s := paperSetup(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig6(s, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("distributed val %.3f / test %.3f; serial val %.3f / test %.3f",
				res.DistVal.FinalValue(), res.DistTest.FinalValue(),
				res.SerialVal.FinalValue(), res.SerialTest.FinalValue())
			// The paper's shape: serial synchronous training is ahead of
			// distributed at equal virtual time.
			if res.SerialVal.FinalValue() <= res.DistVal.FinalValue() {
				b.Fatal("serial baseline should lead the distributed curve")
			}
		}
	}
}

// BenchmarkStoreEventualVsStrong regenerates the §IV-D comparison
// (experiment D1): per-update cost of the two consistency models, both
// measured live on this machine and modeled at the paper's 21.2 MB blob.
func BenchmarkStoreEventualVsStrong(b *testing.B) {
	blob := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(blob)
	b.Run("eventual", func(b *testing.B) {
		st := store.NewEventual(3, 4, 1)
		st.Set("k", blob)
		b.SetBytes(int64(len(blob)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.Update("k", func(old []byte) []byte { return old }); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("strong", func(b *testing.B) {
		st := store.NewStrong()
		st.Set("k", blob)
		b.SetBytes(int64(len(blob)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.Update("k", func(old []byte) []byte { return old }); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("modeled-paper-scale", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := exp.CompareStores()
			if i == 0 {
				b.ReportMetric(c.EventualUpdateSec, "s/update-eventual")
				b.ReportMetric(c.StrongUpdateSec, "s/update-strong")
				b.ReportMetric(c.Ratio, "ratio")
				b.ReportMetric(c.CIFAR10OverheadMin, "min-cifar10-overhead")
				b.ReportMetric(c.ImageNetOverheadH, "h-imagenet-overhead")
			}
		}
	})
}

// BenchmarkPreemptibleCostModel regenerates the §IV-E analysis
// (experiment E1): the binomial expected-delay model at the paper's
// parameters plus a Monte Carlo check.
func BenchmarkPreemptibleCostModel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		m := cloud.PreemptModel{P: 0.05, TaskExecSeconds: 144, TimeoutSeconds: 300}
		inc5 := m.ExpectedIncreaseSeconds(2000, 5, 2)
		m.P = 0.20
		inc20 := m.ExpectedIncreaseSeconds(2000, 5, 2)
		mc := m.SampleIncreaseSeconds(2000, 5, 2, rng)
		_ = mc
		if i == 0 {
			b.ReportMetric(inc5/60, "min-increase-p5%")
			b.ReportMetric(inc20/60, "min-increase-p20%")
		}
	}
}

// BenchmarkPreemptionEndToEnd runs the simulator with preemption enabled
// (experiment E1, simulated half): same fleet with and without reclaims.
func BenchmarkPreemptionEndToEnd(b *testing.B) {
	s := paperSetup(b)
	for i := 0; i < b.N; i++ {
		specs, err := exp.PreemptGridSpecs(s, []float64{0, 0.05})
		results := sweep(b, specs, err)
		base, pre := results[0], results[1]
		if i == 0 {
			b.Logf("clean %.2fh, preempted %.2fh (+%.0f min, %d timeouts)",
				base.Hours, pre.Hours, (pre.Hours-base.Hours)*60, pre.Timeouts)
			if pre.Hours <= base.Hours {
				b.Fatal("preemption should cost time")
			}
		}
	}
}

// BenchmarkAblationUpdateSchemes compares VC-ASGD against Downpour-style
// and EASGD-style server updates under preemption (experiment A1).
func BenchmarkAblationUpdateSchemes(b *testing.B) {
	s := paperSetup(b)
	for i := 0; i < b.N; i++ {
		specs, err := exp.AblationSpecs(s)
		results := sweep(b, specs, err)
		if i == 0 {
			for _, res := range results {
				b.Logf("%s: final acc %.3f in %.2fh (%d timeouts)",
					res.Name, res.Curve.FinalValue(), res.Hours, res.Timeouts)
			}
		}
	}
}

// BenchmarkAblationStickyFiles measures the bytes saved by BOINC's
// sticky-file caching (experiment A2).
func BenchmarkAblationStickyFiles(b *testing.B) {
	s := paperSetup(b)
	for i := 0; i < b.N; i++ {
		on, errOn := exp.New(s.Job, s.Corpus, exp.Topology(3, 3, 4))
		if errOn != nil {
			b.Fatal(errOn)
		}
		off, errOff := exp.New(s.Job, s.Corpus, exp.Topology(3, 3, 4), exp.NoSticky())
		results := sweep(b, []*exp.Spec{on, off}, errOff)
		resOn, resOff := results[0], results[1]
		if i == 0 {
			ratio := float64(resOff.BytesDownloaded) / float64(resOn.BytesDownloaded)
			b.Logf("sticky on %.1f MB, off %.1f MB (%.1fx)",
				float64(resOn.BytesDownloaded)/1e6, float64(resOff.BytesDownloaded)/1e6, ratio)
			b.ReportMetric(ratio, "download-inflation")
			if ratio <= 1 {
				b.Fatal("sticky files should reduce downloads")
			}
		}
	}
}

// BenchmarkAblationWarmstart compares cold-started VC-ASGD against the
// Downpour-style serial warmstart (§II-B) at equal virtual time budgets.
func BenchmarkAblationWarmstart(b *testing.B) {
	s := paperSetup(b)
	for i := 0; i < b.N; i++ {
		cold, errCold := exp.New(s.Job, s.Corpus, exp.Topology(3, 3, 4))
		if errCold != nil {
			b.Fatal(errCold)
		}
		warm, errWarm := exp.New(s.Job, s.Corpus, exp.Topology(3, 3, 4), exp.Warmstart(1))
		results := sweep(b, []*exp.Spec{cold, warm}, errWarm)
		rCold, rWarm := results[0], results[1]
		if i == 0 {
			b.Logf("cold: epoch1 %.3f final %.3f in %.2fh; warm: epoch1 %.3f final %.3f in %.2fh",
				rCold.Curve.Points[0].Value, rCold.Curve.FinalValue(), rCold.Hours,
				rWarm.Curve.Points[0].Value, rWarm.Curve.FinalValue(), rWarm.Hours)
			if rWarm.Curve.Points[0].Value <= rCold.Curve.Points[0].Value {
				b.Fatal("warmstart should lift early accuracy")
			}
		}
	}
}

// BenchmarkExtensionAutoscalePS measures the §III-D dynamic PS pool
// (experiment X1): fixed P1 vs autoscaled under a T8 flood.
func BenchmarkExtensionAutoscalePS(b *testing.B) {
	s := paperSetup(b)
	for i := 0; i < b.N; i++ {
		fixed, errFixed := exp.New(s.Job, s.Corpus, exp.Topology(1, 3, 8))
		if errFixed != nil {
			b.Fatal(errFixed)
		}
		auto, errAuto := exp.New(s.Job, s.Corpus, exp.Topology(1, 3, 8), exp.AutoScalePS(8))
		results := sweep(b, []*exp.Spec{fixed, auto}, errAuto)
		rFixed, rAuto := results[0], results[1]
		if i == 0 {
			b.Logf("fixed P1: %.2fh; autoscaled: %.2fh (peak %d PS, %d scale-ups)",
				rFixed.Hours, rAuto.Hours, rAuto.MaxPSUsed, rAuto.PSScaleUps)
			b.ReportMetric(rFixed.Hours-rAuto.Hours, "hours-saved")
		}
	}
}

// BenchmarkSubtaskCompute measures the compute-backend layer itself
// (experiment S1's kernel): Launch+Wait of one subtask per backend,
// including the cache-hit path that replicated/reissued copies take.
func BenchmarkSubtaskCompute(b *testing.B) {
	dc := data.DefaultSynthConfig()
	dc.NTrain, dc.NVal, dc.NTest = 100, 10, 10
	corpus, err := data.GenerateSynth(dc)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultJobConfig(nn.SmallCNNBuilder(dc.C, dc.H, dc.W, dc.Classes))
	cfg.BatchSize = 25
	net := nn.NewNetwork(cfg.Builder)
	net.Init(rand.New(rand.NewSource(5)))
	params := net.Parameters()

	for _, spec := range []string{"real", "cached", "parallel", "parallel+cached", "surrogate"} {
		spec := spec
		b.Run(spec, func(b *testing.B) {
			backend, err := core.NewBackend(spec, cfg, 8)
			if err != nil {
				b.Fatal(err)
			}
			defer backend.Close()
			for i := 0; i < b.N; i++ {
				// A fresh epoch per iteration: every launch is a miss.
				backend.Launch(core.Subtask{Epoch: i, Shard: 0, Seed: int64(i), Params: params, Data: corpus.Train}).Wait()
				backend.Retire(i)
			}
			b.ReportMetric(float64(backend.Stats().Computed)/float64(b.N), "computed/op")
		})
		if spec == "cached" || spec == "parallel+cached" {
			b.Run(spec+"-hit", func(b *testing.B) {
				backend, err := core.NewBackend(spec, cfg, 8)
				if err != nil {
					b.Fatal(err)
				}
				defer backend.Close()
				task := core.Subtask{Epoch: 1, Shard: 0, Seed: 9, Params: params, Data: corpus.Train}
				backend.Launch(task).Wait()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					backend.Launch(task).Wait()
				}
				if s := backend.Stats(); s.Computed != 1 {
					b.Fatalf("hit path recomputed: %+v", s)
				}
			})
		}
	}
}

// BenchmarkComputeBackendsFleet runs the replicated scale-grid fleet end
// to end per backend (experiment S1) and pins the tentpole speedup: with
// every subtask issued 4 times, the memoized backends must beat the
// inline real path even on a single-core host (parallel adds overlap on
// multi-core ones).
func BenchmarkComputeBackendsFleet(b *testing.B) {
	const fleet = 60
	job, corpus, err := exp.ScaleWorkload(1, fleet, 2)
	if err != nil {
		b.Fatal(err)
	}
	walls := map[string]float64{}
	for _, pt := range exp.ScaleBackends() {
		pt := pt
		pt.Clients = fleet
		name := pt.Backend
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec, err := exp.ScaleSpec(job, corpus, pt)
				if err != nil {
					b.Fatal(err)
				}
				start := time.Now()
				res, err := exp.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					walls[name] = time.Since(start).Seconds()
					b.Logf("%s: %.2fs wall, computed %d of %d launches, %d cache hits",
						name, walls[name], res.Compute.Computed, res.Compute.Launched, res.Compute.CacheHits)
				}
			}
		})
	}
	// The gate lives in its own sub-benchmark so its log and metric are
	// actually emitted (output on a parent of sub-benchmarks is
	// dropped) and so filtered runs (-bench=...Fleet/real$) skip it
	// cleanly instead of failing on missing measurements.
	b.Run("speedup-gate", func(b *testing.B) {
		real, combo := walls["real"], walls["parallel+cached"]
		if real == 0 || combo == 0 {
			b.Skip("real or parallel+cached not measured this run")
		}
		speedup := real / combo
		b.ReportMetric(speedup, "x-speedup-parallel+cached")
		b.ReportMetric(0, "ns/op")
		b.Logf("parallel+cached speedup over real: %.2fx (full-grid record: BENCH_compute.json, >= 2x at 1k clients)", speedup)
		// The cache alone refunds ~3/4 of the replicated math, so the
		// true ratio sits near 3x even on one core; the floor is set
		// well below that so only broken memoization — not a loaded CI
		// runner — trips it.
		if speedup < 1.3 {
			b.Fatalf("parallel+cached speedup %.2fx < 1.3x on the replicated fleet — memoization regressed", speedup)
		}
	})
}

// --- Microbenchmarks for the numeric substrate ---

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(128, 128)
	y := tensor.New(128, 128)
	x.RandNormal(0, 1, rng)
	y.RandNormal(0, 1, rng)
	b.SetBytes(3 * 128 * 128 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}

func BenchmarkTrainBatchSmallCNN(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	net := nn.NewNetwork(nn.SmallCNNBuilder(3, 8, 8, 10))
	net.Init(rng)
	x := tensor.New(25, 3, 8, 8)
	x.RandNormal(0, 1, rng)
	labels := make([]int, 25)
	for i := range labels {
		labels[i] = rng.Intn(10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrads()
		net.TrainBatch(x, labels)
	}
}

func BenchmarkTrainBatchMiniResNet(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	net := nn.NewNetwork(nn.MiniResNetV2Builder(3, 8, 8, 8, 1, 10))
	net.Init(rng)
	x := tensor.New(25, 3, 8, 8)
	x.RandNormal(0, 1, rng)
	labels := make([]int, 25)
	for i := range labels {
		labels[i] = rng.Intn(10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrads()
		net.TrainBatch(x, labels)
	}
}

func BenchmarkVCASGDAssimilate(b *testing.B) {
	srv := ps.NewServer(0, store.NewStrong(), opt.Constant{V: 0.95})
	params := make([]float64, 100_000)
	srv.Publish(params)
	client := make([]float64, 100_000)
	b.SetBytes(8 * 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := srv.Assimilate(client, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParamCodecCompressed(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	params := make([]float64, 100_000)
	for i := range params {
		params[i] = rng.NormFloat64()
	}
	b.SetBytes(int64(wire.RawSize(len(params))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := wire.EncodeParams(params)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.DecodeParams(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardEncodeDecode(b *testing.B) {
	dc := data.DefaultSynthConfig()
	dc.NTrain, dc.NVal, dc.NTest = 100, 10, 10
	corpus, err := data.GenerateSynth(dc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := corpus.Train.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := data.Decode(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecutorSubtask(b *testing.B) {
	dc := data.DefaultSynthConfig()
	dc.NTrain, dc.NVal, dc.NTest = 100, 10, 10
	corpus, err := data.GenerateSynth(dc)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultJobConfig(nn.MiniResNetV2Builder(3, 8, 8, 8, 1, 10))
	cfg.BatchSize = 25
	exec := core.NewExecutor(cfg)
	net := nn.NewNetwork(cfg.Builder)
	net.Init(rand.New(rand.NewSource(5)))
	params := net.Parameters()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec.Run(params, corpus.Train, int64(i))
	}
}

// BenchmarkSerialBaselineEpoch measures the single-instance trainer's
// per-epoch cost (experiment F6's baseline).
func BenchmarkSerialBaselineEpoch(b *testing.B) {
	dc := data.DefaultSynthConfig()
	dc.NTrain, dc.NVal, dc.NTest = 500, 100, 100
	corpus, err := data.GenerateSynth(dc)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultJobConfig(nn.SmallCNNBuilder(3, 8, 8, 10))
	cfg.BatchSize = 25
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.TrainSerial(cfg, corpus, 1); err != nil {
			b.Fatal(err)
		}
	}
}
