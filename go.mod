module vcdl

go 1.24.0
