package data

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func smallConfig() SynthConfig {
	cfg := DefaultSynthConfig()
	cfg.NTrain, cfg.NVal, cfg.NTest = 200, 50, 50
	return cfg
}

func TestGenerateSynthShapes(t *testing.T) {
	c, err := GenerateSynth(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.Train.N() != 200 || c.Val.N() != 50 || c.Test.N() != 50 {
		t.Fatalf("split sizes %d/%d/%d", c.Train.N(), c.Val.N(), c.Test.N())
	}
	want := []int{200, 3, 8, 8}
	got := c.Train.X.Shape()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("train shape %v, want %v", got, want)
		}
	}
	if c.Train.Classes() != 10 {
		t.Fatalf("classes = %d", c.Train.Classes())
	}
}

func TestGenerateSynthDeterministic(t *testing.T) {
	a, err := GenerateSynth(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSynth(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Train.X.Data {
		if a.Train.X.Data[i] != b.Train.X.Data[i] {
			t.Fatal("same seed must give identical data")
		}
	}
	cfg := smallConfig()
	cfg.Seed = 2
	c, err := GenerateSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Train.X.Data {
		if a.Train.X.Data[i] != c.Train.X.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateSynthBalancedClasses(t *testing.T) {
	c, err := GenerateSynth(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 10)
	for _, l := range c.Train.Labels {
		counts[l]++
	}
	for k, n := range counts {
		if n != 20 {
			t.Fatalf("class %d has %d samples, want 20", k, n)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []SynthConfig{
		{Classes: 1, C: 3, H: 8, W: 8, NTrain: 100},
		{Classes: 10, C: 0, H: 8, W: 8, NTrain: 100},
		{Classes: 10, C: 3, H: 8, W: 8, NTrain: 5},
		{Classes: 10, C: 3, H: 8, W: 8, NTrain: 100, NoiseStd: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d should be invalid", i)
		}
	}
}

func TestSplitSizesAndContent(t *testing.T) {
	c, err := GenerateSynth(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	shards := c.Train.Split(7)
	if len(shards) != 7 {
		t.Fatalf("got %d shards", len(shards))
	}
	total := 0
	for i, s := range shards {
		total += s.N()
		// 200 = 7*28 + 4, so shards 0..3 get 29, rest 28.
		want := 28
		if i < 4 {
			want = 29
		}
		if s.N() != want {
			t.Fatalf("shard %d size %d, want %d", i, s.N(), want)
		}
	}
	if total != 200 {
		t.Fatalf("shards cover %d samples, want 200", total)
	}
	// First shard content must equal the first samples of the dataset.
	x0, l0 := c.Train.Batch(0, shards[0].N())
	for i := range shards[0].X.Data {
		if shards[0].X.Data[i] != x0.Data[i] {
			t.Fatal("shard 0 images differ from dataset prefix")
		}
	}
	for i := range l0 {
		if shards[0].Labels[i] != l0[i] {
			t.Fatal("shard 0 labels differ from dataset prefix")
		}
	}
}

func TestSplitIsDeepCopy(t *testing.T) {
	c, err := GenerateSynth(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	shards := c.Train.Split(2)
	orig := c.Train.X.Data[0]
	shards[0].X.Data[0] = orig + 42
	if c.Train.X.Data[0] != orig {
		t.Fatal("shard mutation leaked into parent dataset")
	}
}

func TestFiftyShardTopologyMatchesPaper(t *testing.T) {
	// The paper splits 50,000 training images into 50 shards of 1,000; our
	// default (5,000) must split into 50 shards of 100.
	cfg := DefaultSynthConfig()
	cfg.NVal, cfg.NTest = 10, 10 // keep generation fast
	c, err := GenerateSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shards := c.Train.Split(50)
	for _, s := range shards {
		if s.N() != 100 {
			t.Fatalf("shard size %d, want 100", s.N())
		}
	}
}

func TestShuffleKeepsPairing(t *testing.T) {
	c, err := GenerateSynth(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Record a fingerprint per label before shuffling: sum of pixels of
	// each sample keyed by its first pixel.
	type pair struct {
		first float64
		label int
	}
	pairs := map[float64]int{}
	sample := c.Train.X.Size() / c.Train.N()
	for i := 0; i < c.Train.N(); i++ {
		pairs[c.Train.X.Data[i*sample]] = c.Train.Labels[i]
	}
	c.Train.Shuffle(rand.New(rand.NewSource(7)))
	for i := 0; i < c.Train.N(); i++ {
		if want, ok := pairs[c.Train.X.Data[i*sample]]; ok {
			if c.Train.Labels[i] != want {
				t.Fatal("shuffle broke image/label pairing")
			}
		}
	}
	_ = pair{}
}

func TestBatchViewAliases(t *testing.T) {
	c, err := GenerateSynth(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	x, _ := c.Train.Batch(0, 10)
	x.Data[0] = 123
	if c.Train.X.Data[0] != 123 {
		t.Fatal("Batch should return a view, not a copy")
	}
}

func TestBatchOutOfRangePanics(t *testing.T) {
	c, err := GenerateSynth(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Batch did not panic")
		}
	}()
	c.Train.Batch(0, c.Train.N()+1)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c, err := GenerateSynth(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	shard := c.Train.Split(4)[1]
	blob, err := shard.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != shard.N() {
		t.Fatalf("N = %d, want %d", back.N(), shard.N())
	}
	for i := range shard.X.Data {
		if shard.X.Data[i] != back.X.Data[i] {
			t.Fatal("image data mismatch")
		}
	}
	for i := range shard.Labels {
		if shard.Labels[i] != back.Labels[i] {
			t.Fatal("label mismatch")
		}
	}
}

func TestDecodeGarbageFails(t *testing.T) {
	if _, err := Decode([]byte("not a gzip stream")); err == nil {
		t.Fatal("garbage should not decode")
	}
}

func TestDecodeTruncatedFails(t *testing.T) {
	c, err := GenerateSynth(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := c.Val.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(blob[:len(blob)/3]); err == nil {
		t.Fatal("truncated blob should not decode")
	}
}

func TestEncodeCompresses(t *testing.T) {
	// Synthetic images are noisy so compression is modest, but the encoded
	// blob must at least not balloon beyond the raw float64 size.
	c, err := GenerateSynth(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := c.Train.Encode()
	if err != nil {
		t.Fatal(err)
	}
	raw := 8 * c.Train.X.Size()
	if len(blob) > raw {
		t.Fatalf("encoded %d bytes > raw %d bytes", len(blob), raw)
	}
}

// Property: Split(k) always covers the dataset exactly, for any k in range.
func TestSplitCoversProperty(t *testing.T) {
	c, err := GenerateSynth(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := func(kRaw uint8) bool {
		k := int(kRaw)%c.Train.N() + 1
		shards := c.Train.Split(k)
		total := 0
		for _, s := range shards {
			total += s.N()
		}
		if total != c.Train.N() || len(shards) != k {
			return false
		}
		// Sizes differ by at most 1.
		min, max := shards[0].N(), shards[0].N()
		for _, s := range shards {
			if s.N() < min {
				min = s.N()
			}
			if s.N() > max {
				max = s.N()
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The noise knob must actually change task difficulty: with zero noise,
// same-class samples are far more similar than cross-class samples.
func TestNoiseControlsSeparability(t *testing.T) {
	cfg := smallConfig()
	cfg.NoiseStd = 0
	cfg.ShiftPixels = 0
	cfg.AmpJitter = 0
	c, err := GenerateSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sample := c.Train.X.Size() / c.Train.N()
	// With no jitter at all, two samples of the same class are identical.
	var i0, i1 = -1, -1
	for i, l := range c.Train.Labels {
		if l == 0 {
			if i0 == -1 {
				i0 = i
			} else {
				i1 = i
				break
			}
		}
	}
	d := 0.0
	for j := 0; j < sample; j++ {
		d += math.Abs(c.Train.X.Data[i0*sample+j] - c.Train.X.Data[i1*sample+j])
	}
	if d > 1e-9 {
		t.Fatalf("zero-noise same-class distance %v, want 0", d)
	}
}
