package data

import (
	"math/rand"
	"reflect"
	"testing"
)

func viewTestDataset(t *testing.T, n int) *Dataset {
	t.Helper()
	dc := DefaultSynthConfig()
	dc.NTrain, dc.NVal, dc.NTest = n, 4, 4
	corpus, err := GenerateSynth(dc)
	if err != nil {
		t.Fatal(err)
	}
	return corpus.Train
}

// TestViewMatchesCopyShuffle pins the determinism contract the compute
// backends rely on: iterating a View after k shuffles yields exactly the
// batches the historical Subset-copy-then-Shuffle path produced, for the
// same rng seed, across multiple passes.
func TestViewMatchesCopyShuffle(t *testing.T) {
	ds := viewTestDataset(t, 37)
	const batch = 10

	copyRNG := rand.New(rand.NewSource(42))
	viewRNG := rand.New(rand.NewSource(42))
	local := ds.Subset(0, ds.N())
	view := NewView(ds)

	for pass := 0; pass < 3; pass++ {
		local.Shuffle(copyRNG)
		view.Shuffle(viewRNG)
		for start := 0; start < local.N(); start += batch {
			end := start + batch
			if end > local.N() {
				end = local.N()
			}
			wantX, wantL := local.Batch(start, end)
			gotX, gotL := view.Batch(start, end)
			if !reflect.DeepEqual(wantX.Shape(), gotX.Shape()) {
				t.Fatalf("pass %d batch [%d,%d): shape %v != %v", pass, start, end, gotX.Shape(), wantX.Shape())
			}
			if !reflect.DeepEqual(wantX.Data, gotX.Data) {
				t.Fatalf("pass %d batch [%d,%d): data diverged", pass, start, end)
			}
			if !reflect.DeepEqual(wantL, gotL) {
				t.Fatalf("pass %d batch [%d,%d): labels %v != %v", pass, start, end, gotL, wantL)
			}
		}
	}
}

// TestViewLeavesBaseUntouched verifies shuffling and batching a view
// never mutates the shared base dataset.
func TestViewLeavesBaseUntouched(t *testing.T) {
	ds := viewTestDataset(t, 16)
	origX := append([]float64(nil), ds.X.Data...)
	origL := append([]int(nil), ds.Labels...)

	rng := rand.New(rand.NewSource(7))
	v := NewView(ds)
	for i := 0; i < 5; i++ {
		v.Shuffle(rng)
		v.Batch(0, v.N())
	}
	if !reflect.DeepEqual(ds.X.Data, origX) || !reflect.DeepEqual(ds.Labels, origL) {
		t.Fatal("view mutated the base dataset")
	}
}

// TestViewBatchReusesBuffer documents the buffer-reuse contract: a Batch
// call invalidates the previous call's returned slices.
func TestViewBatchReusesBuffer(t *testing.T) {
	ds := viewTestDataset(t, 12)
	v := NewView(ds)
	x1, _ := v.Batch(0, 6)
	first := x1.Data[0]
	x2, _ := v.Batch(6, 12)
	if &x1.Data[0] != &x2.Data[0] {
		t.Fatal("expected Batch to reuse its gather buffer")
	}
	_ = first
}

func TestViewBatchBounds(t *testing.T) {
	ds := viewTestDataset(t, 12)
	v := NewView(ds)
	for _, tc := range [][2]int{{-1, 4}, {0, 13}, {5, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Batch(%d,%d) did not panic", tc[0], tc[1])
				}
			}()
			v.Batch(tc[0], tc[1])
		}()
	}
}
