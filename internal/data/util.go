package data

import (
	"sort"

	"vcdl/internal/tensor"
)

// newMatrix wraps flat data as a rank-2 [n, w] tensor.
func newMatrix(flat []float64, n, w int) *tensor.Tensor {
	return tensor.FromSlice(flat, n, w)
}

// sortSlice sorts float64s ascending.
func sortSlice(xs []float64) { sort.Float64s(xs) }
