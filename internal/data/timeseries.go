package data

import (
	"fmt"
	"math"
	"math/rand"
)

// Time-series forecasting workload (§V of the paper): the authors plan to
// evaluate problems like time-series forecasting, noting that the training
// data is small and the problem is "less amenable to data parallel
// training ... and hence requires more vertical scaling". This generator
// produces such a workload: windows of a noisy multi-seasonal signal,
// labelled with the quantile bucket of the next step, so forecasting
// becomes classification and plugs into the same training pipeline.

// TimeSeriesConfig controls the forecasting workload generator.
type TimeSeriesConfig struct {
	// Window is the input length (model input dimension).
	Window int
	// Buckets is the number of quantile classes to predict.
	Buckets int
	// NTrain, NVal, NTest are the split sizes.
	NTrain, NVal, NTest int
	// Periods are the seasonal component periods of the signal.
	Periods []int
	// NoiseStd is the observation noise.
	NoiseStd float64
	Seed     int64
}

// DefaultTimeSeriesConfig returns a small forecasting task: 24-step
// windows of a signal with daily/weekly style seasonality, 5 buckets.
func DefaultTimeSeriesConfig() TimeSeriesConfig {
	return TimeSeriesConfig{
		Window:   24,
		Buckets:  5,
		NTrain:   2000,
		NVal:     400,
		NTest:    400,
		Periods:  []int{24, 168},
		NoiseStd: 0.3,
		Seed:     1,
	}
}

// Validate reports configuration errors.
func (c TimeSeriesConfig) Validate() error {
	switch {
	case c.Window < 2:
		return fmt.Errorf("data: window %d < 2", c.Window)
	case c.Buckets < 2:
		return fmt.Errorf("data: buckets %d < 2", c.Buckets)
	case c.NTrain < c.Buckets:
		return fmt.Errorf("data: NTrain %d < buckets %d", c.NTrain, c.Buckets)
	case len(c.Periods) == 0:
		return fmt.Errorf("data: no seasonal periods")
	case c.NoiseStd < 0:
		return fmt.Errorf("data: negative NoiseStd")
	}
	return nil
}

// GenerateTimeSeries builds a forecasting Corpus: inputs are [N, Window]
// windows (rank-2, suited to MLP models), labels are the quantile bucket
// of the step following each window. The quantile boundaries are fitted on
// the training portion only.
func GenerateTimeSeries(cfg TimeSeriesConfig) (*Corpus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := cfg.NTrain + cfg.NVal + cfg.NTest
	series := synthSignal(cfg, total+cfg.Window+1, rng)

	// Bucket boundaries from the training next-step values.
	trainNext := make([]float64, cfg.NTrain)
	for i := range trainNext {
		trainNext[i] = series[i+cfg.Window]
	}
	bounds := quantileBounds(trainNext, cfg.Buckets)

	makeSplit := func(start, n int) *Dataset {
		ds := &Dataset{Labels: make([]int, n)}
		flat := make([]float64, n*cfg.Window)
		for i := 0; i < n; i++ {
			copy(flat[i*cfg.Window:], series[start+i:start+i+cfg.Window])
			ds.Labels[i] = bucketOf(series[start+i+cfg.Window], bounds)
		}
		ds.X = newMatrix(flat, n, cfg.Window)
		return ds
	}
	c := &Corpus{}
	c.Train = makeSplit(0, cfg.NTrain)
	c.Val = makeSplit(cfg.NTrain, cfg.NVal)
	c.Test = makeSplit(cfg.NTrain+cfg.NVal, cfg.NTest)
	c.Train.Shuffle(rng)
	return c, nil
}

// synthSignal produces a sum of seasonal sinusoids with a slow trend and
// AR(1)-correlated noise, a standard synthetic forecasting benchmark
// shape.
func synthSignal(cfg TimeSeriesConfig, n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	phases := make([]float64, len(cfg.Periods))
	amps := make([]float64, len(cfg.Periods))
	for i := range cfg.Periods {
		phases[i] = rng.Float64() * 2 * math.Pi
		amps[i] = 0.5 + rng.Float64()
	}
	ar := 0.0
	for t := 0; t < n; t++ {
		v := 0.0
		for i, p := range cfg.Periods {
			v += amps[i] * math.Sin(2*math.Pi*float64(t)/float64(p)+phases[i])
		}
		v += 0.0005 * float64(t) // slow trend
		ar = 0.7*ar + rng.NormFloat64()*cfg.NoiseStd
		out[t] = v + ar
	}
	return out
}

// quantileBounds returns k−1 boundaries splitting xs into k near-equal
// buckets.
func quantileBounds(xs []float64, k int) []float64 {
	sorted := append([]float64(nil), xs...)
	sortFloat64s(sorted)
	bounds := make([]float64, k-1)
	for i := 1; i < k; i++ {
		bounds[i-1] = sorted[i*len(sorted)/k]
	}
	return bounds
}

func bucketOf(v float64, bounds []float64) int {
	for i, b := range bounds {
		if v < b {
			return i
		}
	}
	return len(bounds)
}

// sortFloat64s is insertion-free: simple heap-less quicksort via the
// standard library.
func sortFloat64s(xs []float64) {
	// small wrapper so timeseries.go controls its sort import surface
	sortSlice(xs)
}
