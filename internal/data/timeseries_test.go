package data

import (
	"math"
	"testing"
)

func TestGenerateTimeSeriesShapes(t *testing.T) {
	cfg := DefaultTimeSeriesConfig()
	cfg.NTrain, cfg.NVal, cfg.NTest = 300, 60, 60
	c, err := GenerateTimeSeries(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Train.N() != 300 || c.Val.N() != 60 || c.Test.N() != 60 {
		t.Fatalf("split sizes %d/%d/%d", c.Train.N(), c.Val.N(), c.Test.N())
	}
	if c.Train.X.Rank() != 2 || c.Train.X.Dim(1) != cfg.Window {
		t.Fatalf("train shape %v", c.Train.X.Shape())
	}
	for _, l := range c.Train.Labels {
		if l < 0 || l >= cfg.Buckets {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestGenerateTimeSeriesDeterministic(t *testing.T) {
	cfg := DefaultTimeSeriesConfig()
	cfg.NTrain, cfg.NVal, cfg.NTest = 200, 40, 40
	a, err := GenerateTimeSeries(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTimeSeries(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Train.X.Data {
		if a.Train.X.Data[i] != b.Train.X.Data[i] {
			t.Fatal("same seed must reproduce")
		}
	}
}

func TestTimeSeriesBucketsBalanced(t *testing.T) {
	cfg := DefaultTimeSeriesConfig()
	cfg.NTrain, cfg.NVal, cfg.NTest = 1000, 100, 100
	c, err := GenerateTimeSeries(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, cfg.Buckets)
	for _, l := range c.Train.Labels {
		counts[l]++
	}
	// Quantile bucketing on the training next-steps must give near-equal
	// class frequencies (within 50% of the ideal share).
	ideal := float64(cfg.NTrain) / float64(cfg.Buckets)
	for k, n := range counts {
		if math.Abs(float64(n)-ideal) > ideal*0.5 {
			t.Fatalf("bucket %d has %d samples, ideal %v", k, n, ideal)
		}
	}
}

func TestTimeSeriesValidateErrors(t *testing.T) {
	bad := []TimeSeriesConfig{
		{Window: 1, Buckets: 5, NTrain: 100, Periods: []int{24}},
		{Window: 24, Buckets: 1, NTrain: 100, Periods: []int{24}},
		{Window: 24, Buckets: 5, NTrain: 2, Periods: []int{24}},
		{Window: 24, Buckets: 5, NTrain: 100, Periods: nil},
		{Window: 24, Buckets: 5, NTrain: 100, Periods: []int{24}, NoiseStd: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d should be invalid", i)
		}
	}
}

func TestTimeSeriesSplitsIntoShards(t *testing.T) {
	// The paper's point: time-series training data is small, so the data
	// parallel split yields tiny shards. The pipeline must still work.
	cfg := DefaultTimeSeriesConfig()
	cfg.NTrain, cfg.NVal, cfg.NTest = 200, 40, 40
	c, err := GenerateTimeSeries(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shards := c.Train.Split(50)
	if len(shards) != 50 {
		t.Fatalf("%d shards", len(shards))
	}
	if shards[0].N() != 4 {
		t.Fatalf("shard size %d, want 4", shards[0].N())
	}
}

func TestQuantileBounds(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3, 0, 9, 8, 7, 6}
	b := quantileBounds(xs, 5)
	if len(b) != 4 {
		t.Fatalf("bounds %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not increasing: %v", b)
		}
	}
	if bucketOf(-1, b) != 0 || bucketOf(100, b) != 4 {
		t.Fatal("extreme values must map to edge buckets")
	}
}

func TestTimeSeriesEncodeDecode(t *testing.T) {
	cfg := DefaultTimeSeriesConfig()
	cfg.NTrain, cfg.NVal, cfg.NTest = 100, 20, 20
	c, err := GenerateTimeSeries(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := c.Train.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != c.Train.N() || back.X.Dim(1) != cfg.Window {
		t.Fatalf("round trip shape %v", back.X.Shape())
	}
}
