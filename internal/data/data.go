// Package data provides the image-classification workload for VCDL
// experiments: a seeded synthetic dataset ("SynthCIFAR") standing in for
// CIFAR-10 (see DESIGN.md §1) with tunable class signal, jitter and
// label noise, dataset splitting into the per-subtask shards the paper's
// work generator produces (50 shards for CIFAR-10), compressed shard
// serialization analogous to the paper's 3.9 MB .npz shard files — the
// bytes real clients actually download — and View, the immutable
// index-permutation view executors iterate so concurrent subtasks can
// share one shard without copying (DESIGN.md §8).
package data

import (
	"fmt"
	"math/rand"

	"vcdl/internal/tensor"
)

// Dataset is a labelled image set with images in NCHW layout.
type Dataset struct {
	X      *tensor.Tensor // [N, C, H, W]
	Labels []int
}

// N returns the number of samples.
func (d *Dataset) N() int { return len(d.Labels) }

// Classes returns 1 + the maximum label (0 for an empty dataset).
func (d *Dataset) Classes() int {
	m := -1
	for _, l := range d.Labels {
		if l > m {
			m = l
		}
	}
	return m + 1
}

// Batch returns samples [start, end) as a view tensor plus their labels.
func (d *Dataset) Batch(start, end int) (*tensor.Tensor, []int) {
	if start < 0 || end > d.N() || start > end {
		panic(fmt.Sprintf("data: batch [%d,%d) out of range [0,%d)", start, end, d.N()))
	}
	sample := d.X.Size() / d.N()
	shape := append([]int{end - start}, d.X.Shape()[1:]...)
	return tensor.FromSlice(d.X.Data[start*sample:end*sample], shape...), d.Labels[start:end]
}

// Shuffle permutes samples in place using rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	n := d.N()
	if n < 2 {
		return
	}
	sample := d.X.Size() / n
	tmp := make([]float64, sample)
	rng.Shuffle(n, func(i, j int) {
		d.Labels[i], d.Labels[j] = d.Labels[j], d.Labels[i]
		a := d.X.Data[i*sample : (i+1)*sample]
		b := d.X.Data[j*sample : (j+1)*sample]
		copy(tmp, a)
		copy(a, b)
		copy(b, tmp)
	})
}

// Subset returns a deep copy of samples [start, end).
func (d *Dataset) Subset(start, end int) *Dataset {
	x, labels := d.Batch(start, end)
	return &Dataset{X: x.Clone(), Labels: append([]int(nil), labels...)}
}

// Split partitions the dataset into k shards of near-equal size (the first
// N mod k shards receive one extra sample). This is the work generator's
// data-parallel split: the paper splits CIFAR-10's 50,000 training images
// into 50 subsets of 1,000.
func (d *Dataset) Split(k int) []*Dataset {
	if k < 1 {
		panic("data: Split needs k >= 1")
	}
	n := d.N()
	shards := make([]*Dataset, 0, k)
	base, extra := n/k, n%k
	start := 0
	for i := 0; i < k; i++ {
		sz := base
		if i < extra {
			sz++
		}
		shards = append(shards, d.Subset(start, start+sz))
		start += sz
	}
	return shards
}

// Corpus bundles the train/validation/test splits of one problem.
type Corpus struct {
	Train, Val, Test *Dataset
	Config           SynthConfig
}
