package data

import (
	"math/rand"

	"vcdl/internal/tensor"
)

// View is a shuffleable index-permutation view over a Dataset. It lets a
// training loop iterate the samples in a per-pass random order without
// ever copying or mutating the underlying dataset: Shuffle permutes an
// index array, and Batch gathers the selected samples into a reused
// buffer. Compared with Subset (a deep copy) plus Dataset.Shuffle (an
// in-place byte swap of the copy), a View turns the per-subtask cost
// from O(shard bytes) of copying into O(batch bytes) of gathering — and,
// because the base dataset stays immutable, many goroutines may hold
// Views over the same dataset at once (the compute-backend layer relies
// on this to run subtasks in parallel over shared shards).
//
// Determinism contract: View.Shuffle calls rng.Shuffle over the same
// element count as Dataset.Shuffle would, so for equal seeds a View
// yields byte-identical batches to the historical copy-and-shuffle path;
// vcsim's golden traces pin this equivalence.
//
// A View is not safe for concurrent use — share the base Dataset and
// give each goroutine its own View.
type View struct {
	base *Dataset
	idx  []int
	// buf and labels are the reused gather targets; Batch returns slices
	// of them, valid until the next Batch call.
	buf    []float64
	labels []int
}

// NewView creates an identity-ordered view over d.
func NewView(d *Dataset) *View {
	idx := make([]int, d.N())
	for i := range idx {
		idx[i] = i
	}
	return &View{base: d, idx: idx}
}

// Reset rebinds the view to d in identity order, reusing the index and
// gather storage. A Reset view is indistinguishable from NewView(d) —
// in particular the index permutation restarts from identity, so a
// subsequent Shuffle with a given seed yields the same order whether
// the view is fresh or recycled. This is what lets the executor's
// scratch arena reuse one view across subtasks.
func (v *View) Reset(d *Dataset) {
	if cap(v.idx) < d.N() {
		v.idx = make([]int, d.N())
	}
	v.idx = v.idx[:d.N()]
	for i := range v.idx {
		v.idx[i] = i
	}
	v.base = d
}

// N returns the number of samples in the view.
func (v *View) N() int { return len(v.idx) }

// Shuffle permutes the view's sample order in place using rng. Repeated
// shuffles compose, exactly like repeatedly shuffling a materialized
// copy.
func (v *View) Shuffle(rng *rand.Rand) {
	if len(v.idx) < 2 {
		return
	}
	rng.Shuffle(len(v.idx), func(i, j int) {
		v.idx[i], v.idx[j] = v.idx[j], v.idx[i]
	})
}

// Batch gathers samples [start, end) in view order into an internal
// reused buffer and returns them as a tensor plus their labels. The
// returned tensor and label slice are only valid until the next Batch
// call.
func (v *View) Batch(start, end int) (*tensor.Tensor, []int) {
	if start < 0 || end > v.N() || start > end {
		panic("data: view batch out of range")
	}
	n := end - start
	sample := 0
	if v.base.N() > 0 {
		sample = v.base.X.Size() / v.base.N()
	}
	if cap(v.buf) < n*sample {
		v.buf = make([]float64, n*sample)
	}
	v.buf = v.buf[:n*sample]
	if cap(v.labels) < n {
		v.labels = make([]int, n)
	}
	v.labels = v.labels[:n]
	for i := 0; i < n; i++ {
		src := v.idx[start+i]
		copy(v.buf[i*sample:(i+1)*sample], v.base.X.Data[src*sample:(src+1)*sample])
		v.labels[i] = v.base.Labels[src]
	}
	shape := append([]int{n}, v.base.X.Shape()[1:]...)
	return tensor.FromSlice(v.buf, shape...), v.labels
}
