package data

import (
	"fmt"
	"math/rand"

	"vcdl/internal/tensor"
)

// SynthConfig controls the synthetic image-classification generator.
//
// Each class has a smooth random prototype image; a sample is
// amp·prototype + spatial jitter + pixel noise. NoiseStd sets the Bayes
// difficulty: ~0.8 yields a task where a small CNN plateaus near the
// paper's 0.73–0.82 accuracy band, 0 makes the task trivially separable.
type SynthConfig struct {
	Classes     int
	C, H, W     int
	NTrain      int
	NVal        int
	NTest       int
	NoiseStd    float64
	AmpJitter   float64 // amplitude multiplier drawn from [1-AmpJitter, 1+AmpJitter]
	ShiftPixels int     // max circular shift in each spatial dimension
	// LabelNoise is the probability that a sample's label is replaced by a
	// uniformly random class. It caps achievable accuracy at roughly
	// 1 − LabelNoise·(Classes−1)/Classes, giving the task a controllable
	// Bayes ceiling like CIFAR-10's (where the paper's curves plateau
	// around 0.73–0.82).
	LabelNoise float64
	Seed       int64
}

// DefaultSynthConfig mirrors the CIFAR-10 topology at laptop scale:
// 10 classes, small RGB images, a train split that divides evenly into 50
// shards, plus validation and test splits.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{
		Classes:     10,
		C:           3,
		H:           8,
		W:           8,
		NTrain:      5000,
		NVal:        1000,
		NTest:       1000,
		NoiseStd:    0.8,
		AmpJitter:   0.3,
		ShiftPixels: 1,
		Seed:        1,
	}
}

// Validate reports configuration errors.
func (c SynthConfig) Validate() error {
	switch {
	case c.Classes < 2:
		return fmt.Errorf("data: need >= 2 classes, got %d", c.Classes)
	case c.C < 1 || c.H < 1 || c.W < 1:
		return fmt.Errorf("data: bad image dims %dx%dx%d", c.C, c.H, c.W)
	case c.NTrain < c.Classes:
		return fmt.Errorf("data: NTrain %d < classes %d", c.NTrain, c.Classes)
	case c.NoiseStd < 0:
		return fmt.Errorf("data: negative NoiseStd")
	case c.LabelNoise < 0 || c.LabelNoise >= 1:
		return fmt.Errorf("data: LabelNoise %v outside [0,1)", c.LabelNoise)
	}
	return nil
}

// GenerateSynth builds a Corpus from cfg. Generation is fully determined by
// cfg.Seed.
func GenerateSynth(cfg SynthConfig) (*Corpus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	protos := makePrototypes(cfg, rng)
	c := &Corpus{Config: cfg}
	c.Train = sampleSet(cfg, protos, cfg.NTrain, rng)
	c.Val = sampleSet(cfg, protos, cfg.NVal, rng)
	c.Test = sampleSet(cfg, protos, cfg.NTest, rng)
	return c, nil
}

// makePrototypes creates one smooth random image per class. Smoothing (a
// 3x3 box blur applied twice) gives prototypes spatial structure so that
// convolutions are genuinely useful, unlike iid-noise prototypes.
func makePrototypes(cfg SynthConfig, rng *rand.Rand) []*tensor.Tensor {
	protos := make([]*tensor.Tensor, cfg.Classes)
	for k := range protos {
		p := tensor.New(cfg.C, cfg.H, cfg.W)
		p.RandNormal(0, 1, rng)
		blur3x3(p, cfg)
		blur3x3(p, cfg)
		// Renormalize each prototype to unit RMS so classes are equally "loud".
		rms := p.Norm2() / sqrtF(float64(p.Size()))
		if rms > 0 {
			p.Scale(1 / rms)
		}
		protos[k] = p
	}
	return protos
}

func sqrtF(v float64) float64 {
	// tiny wrapper to avoid importing math for one call site
	x := v
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 30; i++ {
		z = 0.5 * (z + x/z)
	}
	return z
}

func blur3x3(p *tensor.Tensor, cfg SynthConfig) {
	out := tensor.New(cfg.C, cfg.H, cfg.W)
	for c := 0; c < cfg.C; c++ {
		for y := 0; y < cfg.H; y++ {
			for x := 0; x < cfg.W; x++ {
				var s float64
				var n float64
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						yy, xx := y+dy, x+dx
						if yy < 0 || yy >= cfg.H || xx < 0 || xx >= cfg.W {
							continue
						}
						s += p.At(c, yy, xx)
						n++
					}
				}
				out.Set(s/n, c, y, x)
			}
		}
	}
	copy(p.Data, out.Data)
}

func sampleSet(cfg SynthConfig, protos []*tensor.Tensor, n int, rng *rand.Rand) *Dataset {
	ds := &Dataset{
		X:      tensor.New(n, cfg.C, cfg.H, cfg.W),
		Labels: make([]int, n),
	}
	sample := cfg.C * cfg.H * cfg.W
	for i := 0; i < n; i++ {
		label := i % cfg.Classes // balanced classes, like CIFAR-10's 6,000/class
		ds.Labels[i] = label
		if cfg.LabelNoise > 0 && rng.Float64() < cfg.LabelNoise {
			ds.Labels[i] = rng.Intn(cfg.Classes)
		}
		amp := 1 + (rng.Float64()*2-1)*cfg.AmpJitter
		sy := 0
		sx := 0
		if cfg.ShiftPixels > 0 {
			sy = rng.Intn(2*cfg.ShiftPixels+1) - cfg.ShiftPixels
			sx = rng.Intn(2*cfg.ShiftPixels+1) - cfg.ShiftPixels
		}
		dst := ds.X.Data[i*sample : (i+1)*sample]
		proto := protos[label]
		for c := 0; c < cfg.C; c++ {
			for y := 0; y < cfg.H; y++ {
				for x := 0; x < cfg.W; x++ {
					yy := mod(y+sy, cfg.H)
					xx := mod(x+sx, cfg.W)
					v := amp*proto.At(c, yy, xx) + rng.NormFloat64()*cfg.NoiseStd
					dst[(c*cfg.H+y)*cfg.W+x] = v
				}
			}
		}
	}
	// Shuffle so shards are class-balanced on average rather than striped.
	ds.Shuffle(rng)
	return ds
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}
