package data

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"

	"vcdl/internal/tensor"
)

// Shard serialization: a gzip-compressed stream holding the image tensor
// followed by the labels. This models the paper's compressed .npz shard
// files (3.9 MB per CIFAR-10 shard) that BOINC ships to clients.

const shardMagic = 0x56534831 // "VSH1"

// Encode serializes the dataset into a compressed byte blob.
func (d *Dataset) Encode() ([]byte, error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], shardMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(d.Labels)))
	if _, err := zw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("data: encode header: %w", err)
	}
	if _, err := d.X.WriteTo(zw); err != nil {
		return nil, fmt.Errorf("data: encode images: %w", err)
	}
	lb := make([]byte, 4*len(d.Labels))
	for i, l := range d.Labels {
		binary.LittleEndian.PutUint32(lb[4*i:], uint32(l))
	}
	if _, err := zw.Write(lb); err != nil {
		return nil, fmt.Errorf("data: encode labels: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("data: close gzip: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode deserializes a blob produced by Encode.
func Decode(blob []byte) (*Dataset, error) {
	zr, err := gzip.NewReader(bytes.NewReader(blob))
	if err != nil {
		return nil, fmt.Errorf("data: open gzip: %w", err)
	}
	defer zr.Close()
	var hdr [8]byte
	if _, err := io.ReadFull(zr, hdr[:]); err != nil {
		return nil, fmt.Errorf("data: decode header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != shardMagic {
		return nil, fmt.Errorf("data: bad shard magic %#x", m)
	}
	n := int(binary.LittleEndian.Uint32(hdr[4:]))
	var x tensor.Tensor
	if _, err := x.ReadFrom(zr); err != nil {
		return nil, fmt.Errorf("data: decode images: %w", err)
	}
	lb := make([]byte, 4*n)
	if _, err := io.ReadFull(zr, lb); err != nil {
		return nil, fmt.Errorf("data: decode labels: %w", err)
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = int(binary.LittleEndian.Uint32(lb[4*i:]))
	}
	if x.Rank() < 1 || x.Dim(0) != n {
		return nil, fmt.Errorf("data: image count %d does not match %d labels", x.Dim(0), n)
	}
	return &Dataset{X: &x, Labels: labels}, nil
}
