package core

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"vcdl/internal/blob"
	"vcdl/internal/boinc"
	"vcdl/internal/data"
	"vcdl/internal/metrics"
	"vcdl/internal/nn"
	"vcdl/internal/obs"
	"vcdl/internal/ps"
	"vcdl/internal/store"
	"vcdl/internal/wire"
)

// Checkpoint metric families (DESIGN.md §11): the epoch of the last
// durable snapshot and how many times a failover rolled the live copy
// back to one.
const (
	MetricCkptEpoch    = "vcdl_ckpt_epoch"
	MetricCkptSaves    = "vcdl_ckpt_saves_total"
	MetricCkptRestores = "vcdl_ckpt_restores_total"
)

// SubtaskPayload is the opaque payload attached to each training workunit:
// which epoch and shard it covers and which files carry the inputs.
type SubtaskPayload struct {
	Epoch      int    `json:"epoch"`
	Shard      int    `json:"shard"`
	ModelFile  string `json:"model_file"`
	ParamsFile string `json:"params_file"`
	ShardFile  string `json:"shard_file"`
}

// NewTrainingApp returns the client-side application (the TensorFlow
// stand-in) for a boinc.Client: it decodes the model spec, parameter copy
// and data shard from the downloaded files, trains, and returns the
// compressed updated parameters.
func NewTrainingApp(cfg JobConfig) boinc.App {
	return boinc.AppFunc(func(asn boinc.Assignment, inputs map[string][]byte) ([]byte, error) {
		var p SubtaskPayload
		if err := json.Unmarshal(asn.Payload, &p); err != nil {
			return nil, fmt.Errorf("core: bad payload: %w", err)
		}
		spec, err := DecodeSpec(inputs[p.ModelFile])
		if err != nil {
			return nil, err
		}
		builder, err := spec.Builder()
		if err != nil {
			return nil, err
		}
		params, err := wire.DecodeParams(inputs[p.ParamsFile])
		if err != nil {
			return nil, fmt.Errorf("core: decode params: %w", err)
		}
		shard, err := data.Decode(inputs[p.ShardFile])
		if err != nil {
			return nil, fmt.Errorf("core: decode shard: %w", err)
		}
		execCfg := cfg
		execCfg.Builder = builder
		exec := NewExecutor(execCfg)
		updated, _ := exec.Run(params, shard, cfg.Seed^int64(p.Epoch)<<20^int64(p.Shard))
		return wire.EncodeParams(updated)
	})
}

// Distributed wires a complete training job onto a BOINC-style server: the
// work generator publishes shard/model/parameter files and one workunit
// per subtask; the assimilator runs VC-ASGD, validation and epoch
// tracking, and generates the next epoch until the stopping criterion
// fires. Clients are external boinc.Client daemons pointed at the server.
type Distributed struct {
	cfg         JobConfig
	spec        ModelSpec
	server      *boinc.Server
	group       *ps.Group
	eval        *Evaluator
	replication int
	start       time.Time

	mu      sync.Mutex
	tracker *ps.EpochTracker
	stop    ps.StopCriterion
	shards  []*data.Dataset
	result  RunResult
	done    chan struct{}
	failed  error

	// blobs, when non-nil, is the data plane: shard/model/parameter
	// files are also published content-addressed, and workunits carry
	// the digests (blobMu guards the name→digest map).
	blobs   *blob.Service
	blobMu  sync.Mutex
	digests map[string]string

	// checkpoint enables durable per-epoch snapshots through the PS
	// store; ckptEpoch/restores (under mu) track the recovery state.
	checkpoint bool
	ckptEpoch  int
	restores   int
	obsCkptEp  *obs.Gauge
	obsSaves   *obs.Counter
	obsRest    *obs.Counter
}

// DistOptions tunes the server-side half of a distributed job beyond
// NewDistributed's defaults. The zero value keeps historical behaviour.
type DistOptions struct {
	// Scheduler overrides the BOINC scheduler mechanics (nil keeps
	// boinc.DefaultSchedulerConfig; real-mode scenario runs use it to
	// scale the result deadline onto wall clock).
	Scheduler *boinc.SchedulerConfig
	// Policy selects the scheduler's assignment policy (nil keeps the
	// default paper policy).
	Policy boinc.Policy
	// Replication issues this many concurrent copies of every workunit
	// (0/1 = single copy).
	Replication int
	// Blobs, when non-nil, publishes every distributable file on the
	// content-addressed data plane as well as /download, and stamps
	// workunits with the digests (mount it with Server.EnableBlobs).
	Blobs *blob.Service
	// Checkpoint persists an epoch-stamped parameter snapshot through
	// the PS store at every epoch close, and makes SetPServers restore
	// from it on failover. If the store already holds a checkpoint at
	// construction, the job resumes after it instead of starting fresh.
	Checkpoint bool
	// ResumeEpoch/ResumeParams, when ResumeParams is non-nil, seed the
	// job from an external checkpoint (e.g. a file saved at SIGTERM):
	// ResumeParams is published and training continues at ResumeEpoch+1.
	ResumeEpoch  int
	ResumeParams []float64
	// Metrics, when set with Checkpoint, registers the vcdl_ckpt_*
	// families.
	Metrics *obs.Registry
}

// NewDistributed creates the server-side half of a distributed training
// job. spec must describe the same architecture cfg.Builder builds (use
// spec.Builder() for cfg.Builder to guarantee it).
func NewDistributed(cfg JobConfig, spec ModelSpec, corpus *data.Corpus, pn int, st store.Store) (*Distributed, error) {
	return NewDistributedJob(cfg, spec, corpus, pn, st, DistOptions{})
}

// NewDistributedJob is NewDistributed with explicit DistOptions.
func NewDistributedJob(cfg JobConfig, spec ModelSpec, corpus *data.Corpus, pn int, st store.Store, opts DistOptions) (*Distributed, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if st == nil {
		st = store.NewStrong()
	}
	if pn < 1 {
		pn = 1
	}
	d := &Distributed{
		cfg:         cfg,
		spec:        spec,
		group:       ps.NewGroup(pn, st, cfg.Alpha),
		eval:        NewEvaluator(cfg.Builder, corpus.Val, cfg.ValSubset, cfg.BatchSize*4),
		replication: opts.Replication,
		start:       time.Now(),
		stop:        ps.StopCriterion{TargetAccuracy: cfg.TargetAccuracy, MaxEpochs: cfg.MaxEpochs},
		shards:      cfg.SplitShards(corpus),
		done:        make(chan struct{}),
		blobs:       opts.Blobs,
		digests:     make(map[string]string),
		checkpoint:  opts.Checkpoint,
	}
	if opts.Metrics != nil && opts.Checkpoint {
		d.obsCkptEp = opts.Metrics.Gauge(MetricCkptEpoch, "epoch of the last durable parameter checkpoint")
		d.obsSaves = opts.Metrics.Counter(MetricCkptSaves, "durable parameter checkpoints written")
		d.obsRest = opts.Metrics.Counter(MetricCkptRestores, "failovers restored from the checkpoint store")
	}
	d.result.Curve.Name = fmt.Sprintf("distributed-P%d", pn)
	sched := boinc.DefaultSchedulerConfig()
	if opts.Scheduler != nil {
		sched = *opts.Scheduler
	}
	d.server = boinc.NewServer(sched, d.validate, d.assimilate)
	if opts.Policy != nil {
		d.server.Scheduler(func(s *boinc.Scheduler) { s.SetPolicy(opts.Policy) })
	}

	// Seed the live parameter copy: resume from an external checkpoint
	// (a file a SIGTERMed server saved), resume from a checkpoint already
	// in the PS store, or initialize fresh.
	startEpoch := 1
	switch {
	case opts.ResumeParams != nil:
		if err := d.group.Publish(opts.ResumeParams); err != nil {
			return nil, err
		}
		startEpoch = opts.ResumeEpoch + 1
		d.ckptEpoch = opts.ResumeEpoch
	default:
		resumed := false
		if opts.Checkpoint {
			if e, params, err := d.group.LatestCheckpoint(); err == nil && e > 0 {
				if err := d.group.Publish(params); err != nil {
					return nil, err
				}
				startEpoch = e + 1
				d.ckptEpoch = e
				resumed = true
			}
		}
		if !resumed {
			net := nn.NewNetwork(cfg.Builder)
			net.Init(rand.New(rand.NewSource(cfg.Seed)))
			if err := d.group.Publish(net.Parameters()); err != nil {
				return nil, err
			}
		}
	}
	d.tracker = ps.NewEpochTrackerAt(cfg.Subtasks, startEpoch)
	if d.obsCkptEp != nil && d.ckptEpoch > 0 {
		d.obsCkptEp.Set(float64(d.ckptEpoch))
	}

	specBlob, err := EncodeSpec(spec)
	if err != nil {
		return nil, err
	}
	if err := d.publishFile("model.json", specBlob); err != nil {
		return nil, err
	}
	jobBlob, err := EncodeTrainParams(TrainParamsOf(cfg))
	if err != nil {
		return nil, err
	}
	if err := d.publishFile(TrainParamsFile, jobBlob); err != nil {
		return nil, err
	}
	for i, s := range d.shards {
		enc, err := s.Encode()
		if err != nil {
			return nil, err
		}
		if err := d.publishFile(shardFileName(i), enc); err != nil {
			return nil, err
		}
	}
	if err := d.generateEpoch(startEpoch); err != nil {
		return nil, err
	}
	return d, nil
}

// publishFile stores a downloadable file and, with the data plane on,
// also publishes it content-addressed, remembering its digest for
// workunit references.
func (d *Distributed) publishFile(name string, data []byte) error {
	d.server.PutFile(name, data)
	if d.blobs == nil {
		return nil
	}
	dg, err := d.blobs.Store().Put(data)
	if err != nil {
		return fmt.Errorf("core: publish blob %s: %w", name, err)
	}
	d.blobMu.Lock()
	d.digests[name] = dg
	d.blobMu.Unlock()
	return nil
}

// blobRefs returns the name→digest map for the given published files,
// or nil when the data plane is off.
func (d *Distributed) blobRefs(names ...string) map[string]string {
	if d.blobs == nil {
		return nil
	}
	d.blobMu.Lock()
	defer d.blobMu.Unlock()
	refs := make(map[string]string, len(names))
	for _, n := range names {
		if dg, ok := d.digests[n]; ok {
			refs[n] = dg
		}
	}
	return refs
}

func shardFileName(i int) string { return fmt.Sprintf("shard_%03d.npz", i) }

func paramsFileName(epoch int) string { return fmt.Sprintf("params_e%03d.h5", epoch) }

// Server exposes the underlying BOINC server (an http.Handler).
func (d *Distributed) Server() *boinc.Server { return d.server }

// PServers returns the current parameter-server pool size.
func (d *Distributed) PServers() int { return d.group.Size() }

// SetPServers resizes the parameter-server pool (failover when PS
// processes die, recovery when standbys join); assimilations in flight
// drain through whatever servers remain, sharing one store. With
// checkpointing on, a shrink restores the live parameter copy from the
// last durable snapshot — the dead servers may have left it torn or
// (on an eventual store) mid-merge — so the epoch resumes instead of
// restarting.
func (d *Distributed) SetPServers(n int) {
	old := d.group.Size()
	d.group.Resize(n)
	if !d.checkpoint || n >= old {
		return
	}
	if e, err := d.group.RestoreCheckpoint(); err == nil && e > 0 {
		d.mu.Lock()
		d.restores++
		d.mu.Unlock()
		if d.obsRest != nil {
			d.obsRest.Inc()
		}
		if d.obsCkptEp != nil {
			d.obsCkptEp.Set(float64(e))
		}
	}
}

// CheckpointEpoch returns the epoch of the last durable snapshot (0 =
// none yet).
func (d *Distributed) CheckpointEpoch() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ckptEpoch
}

// CheckpointRestores returns how many failovers rolled the live copy
// back to a durable snapshot.
func (d *Distributed) CheckpointRestores() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.restores
}

// Snapshot returns the live parameter copy and the last closed epoch —
// what an external checkpointer (the vcdl-server SIGTERM handler)
// persists so a restarted server resumes instead of retraining.
func (d *Distributed) Snapshot() (epoch int, params []float64, err error) {
	params, err = d.group.Current()
	d.mu.Lock()
	epoch = d.tracker.Epoch() - 1
	d.mu.Unlock()
	return epoch, params, err
}

// Done is closed when training finishes (target met, epoch budget
// exhausted, or unrecoverable failure).
func (d *Distributed) Done() <-chan struct{} { return d.done }

// Result returns the training outcome; valid after Done is closed.
func (d *Distributed) Result() (RunResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.result, d.failed
}

// generateEpoch publishes the epoch's parameter snapshot and queues one
// workunit per shard. Callers must not hold d.mu.
func (d *Distributed) generateEpoch(epoch int) error {
	snapshot, err := d.group.Current()
	if err != nil {
		return err
	}
	enc, err := wire.EncodeParams(snapshot)
	if err != nil {
		return err
	}
	pf := paramsFileName(epoch)
	if err := d.publishFile(pf, enc); err != nil {
		return err
	}
	for i := range d.shards {
		payload, err := json.Marshal(SubtaskPayload{
			Epoch:      epoch,
			Shard:      i,
			ModelFile:  "model.json",
			ParamsFile: pf,
			ShardFile:  shardFileName(i),
		})
		if err != nil {
			return err
		}
		d.server.AddWorkunit(boinc.Workunit{
			Name:        fmt.Sprintf("train_e%03d_s%03d", epoch, i),
			InputFiles:  []string{"model.json", pf, shardFileName(i)},
			BlobFiles:   d.blobRefs("model.json", pf, shardFileName(i)),
			Payload:     payload,
			Replication: d.replication,
		})
	}
	return nil
}

// validate is the BOINC validator hook: an upload is acceptable if it
// decodes to a parameter vector of the right length with finite values.
func (d *Distributed) validate(wu *boinc.Workunit, output []byte) bool {
	params, err := wire.DecodeParams(output)
	if err != nil {
		return false
	}
	want := nn.NewNetwork(d.cfg.Builder).ParamCount()
	return len(params) == want
}

// assimilate is the BOINC assimilator hook: VC-ASGD update, validation
// accuracy, epoch bookkeeping and next-epoch generation.
func (d *Distributed) assimilate(wu *boinc.Workunit, output []byte) {
	var p SubtaskPayload
	if err := json.Unmarshal(wu.Payload, &p); err != nil {
		d.fail(fmt.Errorf("core: assimilate payload: %w", err))
		return
	}
	params, err := wire.DecodeParams(output)
	if err != nil {
		d.fail(fmt.Errorf("core: assimilate decode: %w", err))
		return
	}
	srv := d.group.Pick()
	if err := srv.Assimilate(params, p.Epoch); err != nil {
		d.fail(err)
		return
	}
	cur, err := srv.Current()
	if err != nil {
		d.fail(err)
		return
	}
	acc := d.eval.Accuracy(cur)

	d.mu.Lock()
	summary, closed := d.tracker.Record(acc)
	if !closed {
		d.mu.Unlock()
		return
	}
	d.result.Epochs = append(d.result.Epochs, summary)
	d.result.Curve.Add(metrics.Point{
		Epoch: summary.Epoch, Hours: time.Since(d.start).Hours(),
		Value: summary.Mean, Lo: summary.Lo, Hi: summary.Hi,
	})
	stopNow := d.stop.ShouldStop(summary)
	if stopNow {
		d.result.Stopped = d.cfg.TargetAccuracy > 0 && summary.Mean >= d.cfg.TargetAccuracy
		if final, err := d.group.Current(); err == nil {
			d.result.FinalParams = final
		}
	}
	next := summary.Epoch + 1
	d.mu.Unlock()

	// Durable snapshot at every epoch close: the coherent (epoch,
	// params) pair failover and restart recovery roll back to.
	if d.checkpoint {
		if err := d.group.SaveCheckpoint(summary.Epoch, cur); err == nil {
			d.mu.Lock()
			if summary.Epoch > d.ckptEpoch {
				d.ckptEpoch = summary.Epoch
			}
			d.mu.Unlock()
			if d.obsSaves != nil {
				d.obsSaves.Inc()
			}
			if d.obsCkptEp != nil {
				d.obsCkptEp.Set(float64(summary.Epoch))
			}
		}
	}

	if stopNow {
		close(d.done)
		return
	}
	if err := d.generateEpoch(next); err != nil {
		d.fail(err)
	}
}

// fail records the first unrecoverable error and releases waiters.
func (d *Distributed) fail(err error) {
	d.mu.Lock()
	already := d.failed != nil
	if !already {
		d.failed = err
	}
	d.mu.Unlock()
	if !already {
		close(d.done)
	}
}
