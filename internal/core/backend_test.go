package core

import (
	"math/rand"
	"reflect"
	"testing"

	"vcdl/internal/data"
	"vcdl/internal/nn"
)

func backendFixture(t testing.TB) (JobConfig, *data.Dataset, []float64) {
	t.Helper()
	dc := data.DefaultSynthConfig()
	dc.NTrain, dc.NVal, dc.NTest = 60, 10, 10
	corpus, err := data.GenerateSynth(dc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultJobConfig(nn.SmallCNNBuilder(dc.C, dc.H, dc.W, dc.Classes))
	cfg.BatchSize = 10
	cfg.LocalPasses = 2
	net := nn.NewNetwork(cfg.Builder)
	net.Init(rand.New(rand.NewSource(3)))
	return cfg, corpus.Train, net.Parameters()
}

func TestBackendSpecParsing(t *testing.T) {
	valid := map[string]string{
		"":                "real",
		"real":            "real",
		"cached":          "cached",
		"real+cached":     "cached",
		"cached+real":     "cached",
		"parallel":        "parallel",
		"parallel+cached": "parallel+cached",
		"cached+parallel": "parallel+cached",
		"surrogate":       "surrogate",
	}
	cfg, _, _ := backendFixture(t)
	for spec, want := range valid {
		if err := ValidateBackendSpec(spec); err != nil {
			t.Errorf("ValidateBackendSpec(%q): %v", spec, err)
			continue
		}
		if got := BackendSpecName(spec); got != want {
			t.Errorf("BackendSpecName(%q) = %q, want %q", spec, got, want)
		}
		b, err := NewBackend(spec, cfg, 2)
		if err != nil {
			t.Errorf("NewBackend(%q): %v", spec, err)
			continue
		}
		if b.Name() != want {
			t.Errorf("NewBackend(%q).Name() = %q, want %q", spec, b.Name(), want)
		}
		b.Close()
	}
	for _, spec := range []string{"bogus", "real+parallel", "cached+cached", "parallel+bogus"} {
		if err := ValidateBackendSpec(spec); err == nil {
			t.Errorf("ValidateBackendSpec(%q) accepted an invalid spec", spec)
		}
		if _, err := NewBackend(spec, cfg, 0); err == nil {
			t.Errorf("NewBackend(%q) accepted an invalid spec", spec)
		}
	}
}

// TestBackendsComputeIdenticalUpdates pins the purity argument: real,
// cached and parallel (at several pool sizes) return byte-identical
// parameter updates for the same (params, shard, seed).
func TestBackendsComputeIdenticalUpdates(t *testing.T) {
	cfg, shard, params := backendFixture(t)
	ref, refStats := NewExecutor(cfg).Run(params, shard, 99)

	for _, spec := range []string{"real", "cached", "parallel", "parallel+cached"} {
		for _, workers := range []int{1, 2, 8} {
			b, err := NewBackend(spec, cfg, workers)
			if err != nil {
				t.Fatal(err)
			}
			task := Subtask{Epoch: 1, Shard: 0, Seed: 99, Params: params, Data: shard}
			got, gotStats := b.Launch(task).Wait()
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("%s workers=%d: params diverged from the executor", spec, workers)
			}
			if gotStats != refStats {
				t.Errorf("%s workers=%d: stats %+v != %+v", spec, workers, gotStats, refStats)
			}
			b.Close()
		}
	}
}

// TestCachedBackendMemoizes checks replica launches share one execution
// and that Retire evicts old epochs.
func TestCachedBackendMemoizes(t *testing.T) {
	cfg, shard, params := backendFixture(t)
	b, err := NewBackend("cached", cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	task := Subtask{Epoch: 1, Shard: 3, Seed: 7, Params: params, Data: shard}
	f1 := b.Launch(task)
	f2 := b.Launch(task)
	p1, _ := f1.Wait()
	p2, _ := f2.Wait()
	if &p1[0] != &p2[0] {
		t.Error("replica launches did not share the memoized result")
	}
	s := b.Stats()
	if s.Launched != 2 || s.CacheHits != 1 || s.CacheMisses != 1 || s.Computed != 1 {
		t.Errorf("stats after replica pair: %+v", s)
	}

	// A different shard misses; after Retire the epoch recomputes.
	b.Launch(Subtask{Epoch: 1, Shard: 4, Seed: 8, Params: params, Data: shard}).Wait()
	b.Retire(2)
	b.Launch(task).Wait()
	s = b.Stats()
	if s.CacheMisses != 3 || s.Computed != 3 {
		t.Errorf("stats after retire: %+v", s)
	}
}

// TestParallelBackendOverlap checks Launch returns before the result is
// awaited and that Close drains never-awaited futures.
func TestParallelBackendOverlap(t *testing.T) {
	cfg, shard, params := backendFixture(t)
	b, err := NewBackend("parallel", cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	futs := make([]Future, 5)
	for i := range futs {
		futs[i] = b.Launch(Subtask{Epoch: 1, Shard: i, Seed: int64(i), Params: params, Data: shard})
	}
	s := b.Stats()
	if s.MaxInFlight != 5 || s.Launched != 5 {
		t.Errorf("in-flight telemetry before await: %+v", s)
	}
	// Await only some; Close must still drain the rest.
	futs[0].Wait()
	futs[3].Wait()
	b.Close()
	s = b.Stats()
	if s.Computed != 5 || s.Workers != 2 {
		t.Errorf("stats after close: %+v", s)
	}
}

// TestSurrogateCheaper checks the surrogate kernel does meaningfully
// fewer minibatch steps than the real kernel while still training.
func TestSurrogateCheaper(t *testing.T) {
	cfg, shard, params := backendFixture(t)
	_, realStats := NewExecutor(cfg).Run(params, shard, 5)
	b, err := NewBackend("surrogate", cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	upd, surStats := b.Launch(Subtask{Epoch: 1, Shard: 0, Seed: 5, Params: params, Data: shard}).Wait()
	if surStats.Samples >= realStats.Samples {
		t.Errorf("surrogate processed %d samples, real %d — no saving", surStats.Samples, realStats.Samples)
	}
	if surStats.Batches < 1 {
		t.Error("surrogate took no training step")
	}
	if reflect.DeepEqual(upd, params) {
		t.Error("surrogate returned the input parameters unchanged")
	}
}

func TestRegisterBackendGuards(t *testing.T) {
	for name, f := range map[string]BackendFactory{
		"":       func(JobConfig, int) Backend { return nil },
		"cached": func(JobConfig, int) Backend { return nil },
		"real":   func(JobConfig, int) Backend { return nil },
		"ok":     nil,
	} {
		name, f := name, f
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RegisterBackend(%q) did not panic", name)
				}
			}()
			RegisterBackend(name, f)
		}()
	}
}
