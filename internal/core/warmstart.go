package core

import (
	"math/rand"

	"vcdl/internal/data"
	"vcdl/internal/nn"
	"vcdl/internal/opt"
)

// Warmstart trains net serially and synchronously on the full training
// set for cfg.WarmstartEpochs epochs, in place. Downpour SGD used this to
// start distributed training from a partially converged model and soften
// the delayed-gradient problem (§II-B of the paper); the runners invoke
// it automatically when cfg.WarmstartEpochs > 0.
func Warmstart(net *nn.Network, cfg JobConfig, train *data.Dataset) {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x57a7))
	optimizer := opt.NewAdam(cfg.LearningRate)
	local := data.NewView(train)
	for e := 0; e < cfg.WarmstartEpochs; e++ {
		local.Shuffle(rng)
		for start := 0; start < local.N(); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > local.N() {
				end = local.N()
			}
			x, labels := local.Batch(start, end)
			net.ZeroGrads()
			net.TrainBatch(x, labels)
			optimizer.Step(net.ParamTensors(), net.GradTensors())
		}
	}
}
