package core

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"vcdl/internal/boinc"
	"vcdl/internal/store"
)

// distTestSetup builds a small distributed job and returns it with its
// HTTP test server.
func distTestSetup(t *testing.T, epochs int) (*Distributed, *httptest.Server, JobConfig) {
	t.Helper()
	corpus := testCorpus(t)
	spec := SmallCNNSpec(3, 8, 8, 10)
	builder, err := spec.Builder()
	if err != nil {
		t.Fatal(err)
	}
	cfg := testJobConfig()
	cfg.Builder = builder
	cfg.Subtasks = 5
	cfg.MaxEpochs = epochs
	cfg.ValSubset = 60
	d, err := NewDistributed(cfg, spec, corpus, 2, store.NewStrong())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.Server())
	t.Cleanup(ts.Close)
	return d, ts, cfg
}

// TestDistributedEndToEnd drives the full networked pipeline: HTTP
// scheduler, file downloads with sticky caching, client-side training,
// uploads, validation, VC-ASGD assimilation, multi-epoch generation and
// the stopping criterion.
func TestDistributedEndToEnd(t *testing.T) {
	d, ts, cfg := distTestSetup(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	clients := []*boinc.Client{
		boinc.NewClient("c1", ts.URL, 2, NewTrainingApp(cfg)),
		boinc.NewClient("c2", ts.URL, 2, NewTrainingApp(cfg)),
	}
	for _, cl := range clients {
		cl.Poll = 2 * time.Millisecond
		wg.Add(1)
		go func(cl *boinc.Client) {
			defer wg.Done()
			cl.Loop(ctx)
		}(cl)
	}
	select {
	case <-d.Done():
	case <-ctx.Done():
		t.Fatal("distributed job did not finish in time")
	}
	cancel()
	wg.Wait()
	res, err := d.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve.Points) != cfg.MaxEpochs {
		t.Fatalf("curve has %d points, want %d", len(res.Curve.Points), cfg.MaxEpochs)
	}
	if len(res.FinalParams) == 0 {
		t.Fatal("no final parameters recorded")
	}
	// The sticky cache must have avoided re-downloading model and shards:
	// epoch 2+ only needs the new parameter file.
	totalHits := clients[0].CacheHits + clients[1].CacheHits
	if totalHits == 0 {
		t.Fatal("sticky-file cache never hit across epochs")
	}
}

func TestDistributedSurvivesFlakyClient(t *testing.T) {
	d, ts, cfg := distTestSetup(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// A client whose app fails the first few executions, then recovers —
	// the scheduler must reissue and training must still complete.
	var mu sync.Mutex
	failures := 3
	inner := NewTrainingApp(cfg)
	flakyApp := boinc.AppFunc(func(asn boinc.Assignment, inputs map[string][]byte) ([]byte, error) {
		mu.Lock()
		if failures > 0 {
			failures--
			mu.Unlock()
			return nil, errors.New("simulated preemption")
		}
		mu.Unlock()
		return inner.Run(asn, inputs)
	})
	var wg sync.WaitGroup
	for i, app := range []boinc.App{flakyApp, NewTrainingApp(cfg)} {
		cl := boinc.NewClient([]string{"flaky", "steady"}[i], ts.URL, 2, app)
		cl.Poll = 2 * time.Millisecond
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl.Loop(ctx)
		}()
	}
	select {
	case <-d.Done():
	case <-ctx.Done():
		t.Fatal("job did not survive flaky client")
	}
	cancel()
	wg.Wait()
	res, err := d.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve.Points) != 2 {
		t.Fatalf("epochs completed = %d, want 2", len(res.Curve.Points))
	}
	d.Server().Scheduler(func(s *boinc.Scheduler) {
		if s.Reissued < 3 {
			t.Fatalf("Reissued = %d, want >= 3", s.Reissued)
		}
	})
}

func TestDistributedValidatorRejectsGarbage(t *testing.T) {
	d, ts, cfg := distTestSetup(t, 1)
	_ = cfg
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// One malicious client uploads garbage bytes; one honest client.
	garbageApp := boinc.AppFunc(func(boinc.Assignment, map[string][]byte) ([]byte, error) {
		return []byte("not parameters"), nil
	})
	var wg sync.WaitGroup
	for i, app := range []boinc.App{garbageApp, NewTrainingApp(cfg)} {
		cl := boinc.NewClient([]string{"evil", "honest"}[i], ts.URL, 1, app)
		cl.Poll = 2 * time.Millisecond
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl.Loop(ctx)
		}()
	}
	select {
	case <-d.Done():
	case <-ctx.Done():
		t.Fatal("job did not complete despite honest client")
	}
	cancel()
	wg.Wait()
	if _, err := d.Result(); err != nil {
		t.Fatal(err)
	}
}

func TestDistributedInvalidConfig(t *testing.T) {
	corpus := testCorpus(t)
	spec := SmallCNNSpec(3, 8, 8, 10)
	cfg := testJobConfig()
	cfg.MaxEpochs = 0
	if _, err := NewDistributed(cfg, spec, corpus, 1, nil); err == nil {
		t.Fatal("invalid config must error")
	}
}
