package core

import (
	"testing"
	"testing/quick"
)

func TestPlanSplitPaperShape(t *testing.T) {
	// CIFAR-10 at the paper's scale: 50,000 samples, 5 clients × 2 slots,
	// shard between 500 and 1,000 samples → 50 subtasks of 1,000.
	p, err := PlanSplit(50000, 5, 2, 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Subtasks != 50 {
		t.Fatalf("Subtasks = %d, want 50", p.Subtasks)
	}
	if p.ShardSize != 1000 {
		t.Fatalf("ShardSize = %d, want 1000", p.ShardSize)
	}
	if p.Waves != 5 {
		t.Fatalf("Waves = %d, want 5", p.Waves)
	}
}

func TestPlanSplitPrefersSlotMultiples(t *testing.T) {
	p, err := PlanSplit(1200, 3, 4, 10, 200)
	if err != nil {
		t.Fatal(err)
	}
	if p.Subtasks%12 != 0 {
		t.Fatalf("Subtasks = %d, want a multiple of 12 slots", p.Subtasks)
	}
}

func TestPlanSplitRespectsShardBounds(t *testing.T) {
	p, err := PlanSplit(1000, 2, 2, 100, 250)
	if err != nil {
		t.Fatal(err)
	}
	if p.ShardSize < 100 || p.ShardSize > 250 {
		t.Fatalf("ShardSize = %d outside [100,250]", p.ShardSize)
	}
}

func TestPlanSplitInfeasible(t *testing.T) {
	if _, err := PlanSplit(10, 1, 1, 8, 9); err == nil {
		// 10 samples cannot split into shards of 8..9 evenly? 10/9=1.11 →
		// loSub=2 → shard 5 < 8 → infeasible.
		t.Fatal("expected infeasible split to error")
	}
	if _, err := PlanSplit(0, 1, 1, 1, 0); err == nil {
		t.Fatal("empty dataset must error")
	}
	if _, err := PlanSplit(100, 1, 1, 50, 10); err == nil {
		t.Fatal("min > max must error")
	}
}

func TestPlanSplitDegenerateInputsClamped(t *testing.T) {
	p, err := PlanSplit(100, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Subtasks < 1 {
		t.Fatalf("Subtasks = %d", p.Subtasks)
	}
}

// Property: any successful plan keeps the shard size within bounds and the
// subtask count feasible for the dataset.
func TestPlanSplitInvariantsProperty(t *testing.T) {
	f := func(nRaw uint16, cRaw, tRaw, minRaw uint8) bool {
		n := int(nRaw)%5000 + 100
		clients := int(cRaw)%8 + 1
		tasks := int(tRaw)%8 + 1
		minShard := int(minRaw)%20 + 1
		maxShard := minShard * 4
		p, err := PlanSplit(n, clients, tasks, minShard, maxShard)
		if err != nil {
			return true // infeasible is a legal outcome
		}
		if p.Subtasks < 1 || p.Subtasks > n {
			return false
		}
		size := n / p.Subtasks
		return size >= minShard && size <= maxShard+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRecommendPServers(t *testing.T) {
	// 10 slots finishing a subtask every 144s → 0.069 results/s; at
	// 19.2 s per assimilation the pool needs ⌈1.33⌉ = 2 servers.
	if got := RecommendPServers(5, 2, 144, 19.2, 8); got != 2 {
		t.Fatalf("RecommendPServers = %d, want 2", got)
	}
	// 24 slots at T8 with slower subtasks (389 s) → ⌈24/389×19.2⌉ = 2.
	if got := RecommendPServers(3, 8, 389, 19.2, 8); got != 2 {
		t.Fatalf("T8 recommendation = %d, want 2", got)
	}
	// Heavy assimilation saturates the server instance cap.
	if got := RecommendPServers(10, 8, 60, 30, 8); got != 8 {
		t.Fatalf("capped recommendation = %d, want 8", got)
	}
	if got := RecommendPServers(0, 0, 0, 0, 8); got != 1 {
		t.Fatalf("degenerate recommendation = %d, want 1", got)
	}
}
