package core

import (
	"sync"

	"vcdl/internal/data"
	"vcdl/internal/nn"
)

// Evaluator computes validation/test accuracy of a parameter vector. The
// parameter servers call it after each assimilation (§III-A). It keeps one
// private network per call path, protected by a mutex: assimilations are
// already serialized per store update, so contention is negligible.
type Evaluator struct {
	mu     sync.Mutex
	net    *nn.Network
	ds     *data.Dataset
	batch  int
	subset int
}

// NewEvaluator creates an evaluator over ds. subset > 0 evaluates only the
// first subset samples (a deterministic sample for simulation speed);
// batch controls evaluation minibatch size.
func NewEvaluator(builder func() []nn.Layer, ds *data.Dataset, subset, batch int) *Evaluator {
	if batch <= 0 {
		batch = 100
	}
	use := ds
	if subset > 0 && subset < ds.N() {
		use = ds.Subset(0, subset)
	}
	return &Evaluator{net: nn.NewNetwork(builder), ds: use, batch: batch}
}

// N returns the number of samples the evaluator scores.
func (e *Evaluator) N() int { return e.ds.N() }

// Accuracy returns classification accuracy of params on the dataset.
func (e *Evaluator) Accuracy(params []float64) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.net.SetParameters(params)
	_, acc := e.net.Evaluate(e.ds.X, e.ds.Labels, e.batch)
	return acc
}

// LossAndAccuracy returns mean loss and accuracy of params on the dataset.
func (e *Evaluator) LossAndAccuracy(params []float64) (float64, float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.net.SetParameters(params)
	return e.net.Evaluate(e.ds.X, e.ds.Labels, e.batch)
}
