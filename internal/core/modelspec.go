package core

import (
	"encoding/json"
	"fmt"

	"vcdl/internal/nn"
)

// ModelSpec is a serializable architecture description — the counterpart
// of the paper's 269 KB model .json file that ships to clients with each
// subtask. A spec is a flat list of layer specs; residual blocks nest.
type ModelSpec struct {
	Name   string      `json:"name"`
	Layers []LayerSpec `json:"layers"`
}

// LayerSpec describes one layer. Kind selects which fields apply.
type LayerSpec struct {
	Kind string `json:"kind"`
	// Dense: In, Out. Conv2D: In (channels), Out (channels), K, Stride,
	// Pad. MaxPool2D: K. BatchNorm: F. Residual: Body, Proj.
	In     int         `json:"in,omitempty"`
	Out    int         `json:"out,omitempty"`
	K      int         `json:"k,omitempty"`
	Stride int         `json:"stride,omitempty"`
	Pad    int         `json:"pad,omitempty"`
	F      int         `json:"f,omitempty"`
	Body   []LayerSpec `json:"body,omitempty"`
	Proj   []LayerSpec `json:"proj,omitempty"`
}

// buildLayer instantiates one layer from its spec.
func buildLayer(s LayerSpec) (nn.Layer, error) {
	switch s.Kind {
	case "dense":
		if s.In < 1 || s.Out < 1 {
			return nil, fmt.Errorf("core: dense needs in/out, got %+v", s)
		}
		return nn.NewDense(s.In, s.Out), nil
	case "relu":
		return nn.NewReLU(), nil
	case "flatten":
		return nn.NewFlatten(), nil
	case "conv2d":
		if s.In < 1 || s.Out < 1 || s.K < 1 {
			return nil, fmt.Errorf("core: conv2d needs in/out/k, got %+v", s)
		}
		stride := s.Stride
		if stride == 0 {
			stride = 1
		}
		return nn.NewConv2D(s.In, s.Out, s.K, stride, s.Pad), nil
	case "maxpool2d":
		if s.K < 1 {
			return nil, fmt.Errorf("core: maxpool2d needs k, got %+v", s)
		}
		return nn.NewMaxPool2D(s.K), nil
	case "gap2d":
		return nn.NewGlobalAvgPool2D(), nil
	case "batchnorm":
		if s.F < 1 {
			return nil, fmt.Errorf("core: batchnorm needs f, got %+v", s)
		}
		return nn.NewBatchNorm(s.F), nil
	case "residual":
		body, err := buildLayers(s.Body)
		if err != nil {
			return nil, err
		}
		proj, err := buildLayers(s.Proj)
		if err != nil {
			return nil, err
		}
		return nn.NewResidualProj(proj, body...), nil
	default:
		return nil, fmt.Errorf("core: unknown layer kind %q", s.Kind)
	}
}

func buildLayers(specs []LayerSpec) ([]nn.Layer, error) {
	var out []nn.Layer
	for _, s := range specs {
		l, err := buildLayer(s)
		if err != nil {
			return nil, err
		}
		out = append(out, l)
	}
	return out, nil
}

// Builder compiles the spec into an nn builder. It returns an error for
// malformed specs; the returned builder never fails.
func (m ModelSpec) Builder() (func() []nn.Layer, error) {
	// Validate once up front.
	if _, err := buildLayers(m.Layers); err != nil {
		return nil, err
	}
	return func() []nn.Layer {
		ls, err := buildLayers(m.Layers)
		if err != nil {
			panic("core: validated spec failed to build: " + err.Error())
		}
		return ls
	}, nil
}

// MarshalJSON encoding is the ModelSpec's wire form; EncodeSpec and
// DecodeSpec are convenience wrappers.

// EncodeSpec serializes the spec to its JSON wire form.
func EncodeSpec(m ModelSpec) ([]byte, error) { return json.Marshal(m) }

// DecodeSpec parses a JSON model spec.
func DecodeSpec(blob []byte) (ModelSpec, error) {
	var m ModelSpec
	if err := json.Unmarshal(blob, &m); err != nil {
		return ModelSpec{}, fmt.Errorf("core: decode model spec: %w", err)
	}
	return m, nil
}

// MiniResNetSpec builds the spec for the scaled-down ResNetV2 the
// experiments train (see nn.MiniResNetV2Builder).
func MiniResNetSpec(c, width, blocks, classes int) ModelSpec {
	block := func() LayerSpec {
		return LayerSpec{Kind: "residual", Body: []LayerSpec{
			{Kind: "batchnorm", F: width},
			{Kind: "relu"},
			{Kind: "conv2d", In: width, Out: width, K: 3, Stride: 1, Pad: 1},
			{Kind: "batchnorm", F: width},
			{Kind: "relu"},
			{Kind: "conv2d", In: width, Out: width, K: 3, Stride: 1, Pad: 1},
		}}
	}
	spec := ModelSpec{Name: fmt.Sprintf("mini-resnetv2-w%d-b%d", width, blocks)}
	spec.Layers = append(spec.Layers, LayerSpec{Kind: "conv2d", In: c, Out: width, K: 3, Stride: 1, Pad: 1})
	for i := 0; i < blocks; i++ {
		spec.Layers = append(spec.Layers, block())
	}
	spec.Layers = append(spec.Layers,
		LayerSpec{Kind: "batchnorm", F: width},
		LayerSpec{Kind: "relu"},
		LayerSpec{Kind: "gap2d"},
		LayerSpec{Kind: "dense", In: width, Out: classes},
	)
	return spec
}

// SmallCNNSpec builds the spec equivalent of nn.SmallCNNBuilder.
func SmallCNNSpec(c, h, w, classes int) ModelSpec {
	return ModelSpec{
		Name: "small-cnn",
		Layers: []LayerSpec{
			{Kind: "conv2d", In: c, Out: 8, K: 3, Stride: 1, Pad: 1},
			{Kind: "batchnorm", F: 8},
			{Kind: "relu"},
			{Kind: "maxpool2d", K: 2},
			{Kind: "conv2d", In: 8, Out: 16, K: 3, Stride: 1, Pad: 1},
			{Kind: "batchnorm", F: 16},
			{Kind: "relu"},
			{Kind: "maxpool2d", K: 2},
			{Kind: "flatten"},
			{Kind: "dense", In: 16 * (h / 4) * (w / 4), Out: classes},
		},
	}
}

// MLPSpec builds the spec equivalent of nn.MLPBuilder.
func MLPSpec(in int, hidden []int, classes int) ModelSpec {
	spec := ModelSpec{Name: "mlp"}
	prev := in
	for _, h := range hidden {
		spec.Layers = append(spec.Layers,
			LayerSpec{Kind: "dense", In: prev, Out: h},
			LayerSpec{Kind: "relu"},
		)
		prev = h
	}
	spec.Layers = append(spec.Layers, LayerSpec{Kind: "dense", In: prev, Out: classes})
	return spec
}
