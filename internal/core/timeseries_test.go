package core

import (
	"testing"

	"vcdl/internal/data"
	"vcdl/internal/nn"
)

// TestRunLocalTimeSeries exercises the §V extension end to end: the
// distributed pipeline trains a next-step forecaster (rank-2 inputs, MLP
// model) with a vertical fleet, exactly as the paper prescribes for small
// time-series workloads.
func TestRunLocalTimeSeries(t *testing.T) {
	cfg := data.DefaultTimeSeriesConfig()
	cfg.NTrain, cfg.NVal, cfg.NTest = 800, 160, 160
	corpus, err := data.GenerateTimeSeries(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanSplit(corpus.Train.N(), 2, 4, 50, 200)
	if err != nil {
		t.Fatal(err)
	}
	job := DefaultJobConfig(nn.MLPBuilder(cfg.Window, []int{24}, cfg.Buckets))
	job.Subtasks = plan.Subtasks
	job.MaxEpochs = 6
	job.BatchSize = 25
	job.LocalPasses = 2
	job.LearningRate = 0.01

	res, err := RunLocal(job, corpus, LocalConfig{Clients: 2, TasksPerClient: 4, PServers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 5 buckets → chance is 0.2; the forecaster must beat it clearly.
	if res.Curve.FinalValue() < 0.3 {
		t.Fatalf("forecaster failed to learn: %v", res.Curve.FinalValue())
	}
	eval := NewEvaluator(job.Builder, corpus.Test, 0, 80)
	if acc := eval.Accuracy(res.FinalParams); acc < 0.3 {
		t.Fatalf("test accuracy %v below threshold", acc)
	}
}
