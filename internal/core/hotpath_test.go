package core

import (
	"math"
	"math/rand"
	"testing"

	"vcdl/internal/data"
	"vcdl/internal/nn"
	"vcdl/internal/tensor"
)

// TestExecutorScratchReuseBitIdentical pins the scratch-arena contract:
// a recycled network/optimizer/view must produce byte-identical output
// to a freshly built one, across interleaved shards and seeds.
func TestExecutorScratchReuseBitIdentical(t *testing.T) {
	cfg, shard, params := backendFixture(t)

	dc := data.DefaultSynthConfig()
	dc.Seed += 7
	dc.NTrain, dc.NVal, dc.NTest = 40, 5, 5
	corpus2, err := data.GenerateSynth(dc)
	if err != nil {
		t.Fatal(err)
	}
	shard2 := corpus2.Train

	reused := NewExecutor(cfg)
	if !reused.reusable {
		t.Fatal("SmallCNN stack should be scratch-safe")
	}
	jobs := []struct {
		shard *data.Dataset
		seed  int64
	}{{shard, 11}, {shard2, 22}, {shard, 11}, {shard, 33}, {shard2, 22}}
	for i, j := range jobs {
		// A fresh executor per job is the old no-reuse behaviour; the
		// long-lived executor hits its recycled arena from job 1 on.
		wantP, wantS := NewExecutor(cfg).Run(params, j.shard, j.seed)
		gotP, gotS := reused.Run(params, j.shard, j.seed)
		if gotS != wantS {
			t.Fatalf("job %d: stats %+v, want %+v", i, gotS, wantS)
		}
		for k := range wantP {
			if math.Float64bits(gotP[k]) != math.Float64bits(wantP[k]) {
				t.Fatalf("job %d: param %d = %v, want %v", i, k, gotP[k], wantP[k])
			}
		}
	}
}

// TestExecutorDropoutDisablesReuse pins the gate: stacks carrying
// Dropout (whose mask RNG a reset cannot restore) must not recycle.
func TestExecutorDropoutDisablesReuse(t *testing.T) {
	cfg, _, _ := backendFixture(t)
	cfg.Builder = func() []nn.Layer {
		return []nn.Layer{nn.NewDense(4, 8), nn.NewDropout(0.5), nn.NewDense(8, 2)}
	}
	if NewExecutor(cfg).reusable {
		t.Fatal("Dropout stack must not be scratch-reusable")
	}
	cfg.Builder = func() []nn.Layer {
		return []nn.Layer{nn.NewResidual(nn.NewDropout(0.1))}
	}
	if NewExecutor(cfg).reusable {
		t.Fatal("Dropout nested in Residual must not be scratch-reusable")
	}
}

// TestLaunchBatchEquivalence pins that the batched seam returns futures
// that resolve identically to per-subtask Launch, for every backend
// (parallel and cached implement BatchLauncher; real/surrogate go
// through the shim).
func TestLaunchBatchEquivalence(t *testing.T) {
	cfg, shard, params := backendFixture(t)
	ts := []Subtask{
		{Epoch: 0, Shard: 0, Seed: 5, Params: params, Data: shard},
		{Epoch: 0, Shard: 1, Seed: 6, Params: params, Data: shard},
		{Epoch: 0, Shard: 0, Seed: 5, Params: params, Data: shard}, // dup key: cache hit in-batch
	}
	for _, spec := range []string{"real", "cached", "parallel", "parallel+cached", "surrogate"} {
		seq, err := NewBackend(spec, cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		bat, err := NewBackend(spec, cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		// Launch all, then wait all — the same call pattern the batched
		// path produces, so MaxInFlight telemetry matches too.
		var want [][]float64
		var seqFuts []Future
		for _, task := range ts {
			seqFuts = append(seqFuts, seq.Launch(task))
		}
		for _, f := range seqFuts {
			p, _ := f.Wait()
			want = append(want, p)
		}
		futs := LaunchBatch(bat, ts)
		if len(futs) != len(ts) {
			t.Fatalf("%s: %d futures for %d subtasks", spec, len(futs), len(ts))
		}
		for i, f := range futs {
			got, _ := f.Wait()
			for k := range want[i] {
				if math.Float64bits(got[k]) != math.Float64bits(want[i][k]) {
					t.Fatalf("%s: batch future %d param %d = %v, want %v", spec, i, k, got[k], want[i][k])
				}
			}
		}
		seqStats, batStats := seq.Stats(), bat.Stats()
		if seqStats != batStats {
			t.Fatalf("%s: batch stats %+v, want %+v", spec, batStats, seqStats)
		}
		seq.Close()
		bat.Close()
	}
}

// TestParallelPoolSerializesKernels is the backend half of the
// nested-parallelism regression test: while a pool is alive, kernels
// run serially process-wide (the pool holds the tensor serial
// reservation), subtasks computed by pool workers never fan out, and
// the reservation is dropped at Close.
func TestParallelPoolSerializesKernels(t *testing.T) {
	prev := tensor.SetMaxThreads(4) // the host may be single-core; force a cap that would fan out
	defer tensor.SetMaxThreads(prev)

	// A wide MLP whose dense products are far above the kernel's
	// parallel threshold, so fan-out WOULD trigger without the pool's
	// reservation.
	dc := data.DefaultSynthConfig()
	dc.NTrain, dc.NVal, dc.NTest = 64, 8, 8
	corpus, err := data.GenerateSynth(dc)
	if err != nil {
		t.Fatal(err)
	}
	in := corpus.Train.X.Size() / corpus.Train.N()
	mlp := nn.MLPBuilder(in, []int{256, 256}, dc.Classes)
	cfg := DefaultJobConfig(func() []nn.Layer {
		return append([]nn.Layer{nn.NewFlatten()}, mlp()...)
	})
	cfg.BatchSize = 32
	net := nn.NewNetwork(cfg.Builder)
	net.Init(rand.New(rand.NewSource(1)))
	params := net.Parameters()

	b := newParallelBackend(cfg, 2)
	if got := tensor.MaxThreads(); got != 1 {
		t.Fatalf("MaxThreads with live pool = %d, want 1", got)
	}
	before := tensor.KernelFanouts()
	var futs []Future
	for i := 0; i < 4; i++ {
		futs = append(futs, b.Launch(Subtask{Epoch: 0, Shard: i, Seed: int64(i), Params: params, Data: corpus.Train}))
	}
	for _, f := range futs {
		f.Wait()
	}
	if got := tensor.KernelFanouts(); got != before {
		t.Fatalf("pool workers fanned out %d times; parallelism must live in the pool only", got-before)
	}
	b.Close()
	if got := tensor.MaxThreads(); got != 4 {
		t.Fatalf("MaxThreads after Close = %d, want 4 (reservation not released)", got)
	}

	// Sanity: the same kernel shape does fan out once no pool holds the
	// reservation.
	before = tensor.KernelFanouts()
	x := tensor.New(64, 256)
	w := tensor.New(256, 256)
	tensor.MatMul(x, w)
	if tensor.KernelFanouts() == before {
		t.Fatal("expected kernel fan-out after pool closed")
	}
}

// TestParallelPoolDrainsUnawaitedFutures pins Close's work-conserving
// drain: enqueued subtasks nobody awaited still compute.
func TestParallelPoolDrainsUnawaitedFutures(t *testing.T) {
	cfg, shard, params := backendFixture(t)
	b := newParallelBackend(cfg, 2)
	for i := 0; i < 3; i++ {
		b.Launch(Subtask{Epoch: 0, Shard: i, Seed: int64(i), Params: params, Data: shard})
	}
	b.Close()
	if got := b.Stats().Computed; got != 3 {
		t.Fatalf("Computed after Close = %d, want 3", got)
	}
	b.Close() // idempotent
}
