package core

import (
	"fmt"
	"os"

	"vcdl/internal/wire"
)

// Checkpointing. The paper's system snapshots the central parameter copy
// as a compressed .h5 file per epoch; these helpers give library users the
// same durability for the flat parameter vector (resume a job, archive a
// trained model, seed a new job from an old one).

// SaveParams writes a parameter vector to path in the compressed,
// checksummed wire format. The write is atomic (temp file + rename).
func SaveParams(path string, params []float64) error {
	blob, err := wire.EncodeParams(params)
	if err != nil {
		return fmt.Errorf("core: encode checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: commit checkpoint: %w", err)
	}
	return nil
}

// LoadParams reads a checkpoint written by SaveParams, verifying its
// checksum.
func LoadParams(path string) ([]float64, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: read checkpoint: %w", err)
	}
	params, err := wire.DecodeParams(blob)
	if err != nil {
		return nil, fmt.Errorf("core: decode checkpoint %s: %w", path, err)
	}
	return params, nil
}

// SaveCheckpoint writes an epoch-stamped checkpoint to path, atomically
// (temp file + rename). Unlike SaveParams it records which epoch the
// snapshot closed, so a restarted server resumes at epoch+1 instead of
// retraining from scratch.
func SaveCheckpoint(path string, epoch int, params []float64) error {
	blob, err := wire.EncodeCheckpoint(epoch, params)
	if err != nil {
		return fmt.Errorf("core: encode checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: commit checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint.
func LoadCheckpoint(path string) (epoch int, params []float64, err error) {
	blob, rerr := os.ReadFile(path)
	if rerr != nil {
		return 0, nil, fmt.Errorf("core: read checkpoint: %w", rerr)
	}
	epoch, params, err = wire.DecodeCheckpoint(blob)
	if err != nil {
		return 0, nil, fmt.Errorf("core: decode checkpoint %s: %w", path, err)
	}
	return epoch, params, nil
}
