package core

import "fmt"

// Split planning. The paper's work generator "automatically handles the
// details of converting a training job into a data parallel training job.
// This entails deciding the best possible split for the training dataset"
// (§III-A). SplitPlan implements that decision: given the fleet shape and
// dataset size, it chooses a subtask count that (a) keeps every execution
// slot busy an integral number of waves, (b) keeps shards large enough for
// stable gradients, and (c) keeps shards small enough that a subtask fits
// comfortably inside the scheduler timeout.
type SplitPlan struct {
	// Subtasks is the chosen number of shards per epoch.
	Subtasks int
	// ShardSize is the resulting samples per shard (last shard may be one
	// smaller or larger after remainder distribution).
	ShardSize int
	// Waves is Subtasks / total slots, the per-epoch occupancy.
	Waves int
}

// PlanSplit chooses a data-parallel split.
//
//	datasetN    training-set size
//	clients     number of client instances (Cn)
//	tasksPer    simultaneous subtasks per client (Tn)
//	minShard    smallest acceptable shard (gradient quality floor)
//	maxShard    largest acceptable shard (timeout ceiling); 0 = datasetN
func PlanSplit(datasetN, clients, tasksPer, minShard, maxShard int) (SplitPlan, error) {
	if datasetN < 1 {
		return SplitPlan{}, fmt.Errorf("core: empty dataset")
	}
	if clients < 1 {
		clients = 1
	}
	if tasksPer < 1 {
		tasksPer = 1
	}
	if minShard < 1 {
		minShard = 1
	}
	if maxShard <= 0 || maxShard > datasetN {
		maxShard = datasetN
	}
	if minShard > maxShard {
		return SplitPlan{}, fmt.Errorf("core: minShard %d > maxShard %d", minShard, maxShard)
	}
	slots := clients * tasksPer

	// Feasible subtask counts keep shard sizes within [minShard, maxShard].
	loSub := (datasetN + maxShard - 1) / maxShard // smallest count
	hiSub := datasetN / minShard                  // largest count
	if loSub < 1 {
		loSub = 1
	}
	if hiSub < loSub {
		return SplitPlan{}, fmt.Errorf("core: no feasible split for n=%d shard∈[%d,%d]", datasetN, minShard, maxShard)
	}

	// Prefer exact multiples of the slot count (no idle slots in the last
	// wave), the smallest such multiple ≥ loSub; otherwise fall back to
	// the feasible count closest to a multiple.
	best := -1
	for s := loSub; s <= hiSub; s++ {
		if s%slots == 0 {
			best = s
			break
		}
	}
	if best == -1 {
		// No exact multiple is feasible; minimize last-wave idleness.
		bestIdle := slots + 1
		for s := loSub; s <= hiSub; s++ {
			idle := (slots - s%slots) % slots
			if idle < bestIdle {
				bestIdle, best = idle, s
			}
		}
	}
	waves := best / slots
	if best%slots != 0 {
		waves++
	}
	return SplitPlan{
		Subtasks:  best,
		ShardSize: datasetN / best,
		Waves:     waves,
	}, nil
}

// RecommendPServers applies the paper's §III-D observation ("users find it
// difficult to determine the ratio of the number of parameter servers to
// the number of clients"): it sizes the PS pool so aggregate assimilation
// throughput matches the fleet's subtask completion rate, capped by the
// server instance's vCPUs.
//
//	subtaskSeconds  average client-side execution time per subtask
//	assimSeconds    server-side processing time per result
func RecommendPServers(clients, tasksPer int, subtaskSeconds, assimSeconds float64, serverVCPU int) int {
	if clients < 1 || tasksPer < 1 || subtaskSeconds <= 0 || assimSeconds <= 0 {
		return 1
	}
	arrivalRate := float64(clients*tasksPer) / subtaskSeconds
	need := int(arrivalRate*assimSeconds + 0.999)
	if need < 1 {
		need = 1
	}
	if serverVCPU > 0 && need > serverVCPU {
		need = serverVCPU
	}
	return need
}
