package core

import (
	"math/rand"
	"sync"

	"vcdl/internal/data"
	"vcdl/internal/nn"
	"vcdl/internal/opt"
)

// ExecStats summarizes one subtask execution on a client.
type ExecStats struct {
	// Batches is the number of minibatch steps taken.
	Batches int
	// MeanLoss is the average training loss across steps.
	MeanLoss float64
	// TrainAccuracy is the fraction of training samples classified
	// correctly during the pass.
	TrainAccuracy float64
	// Samples is the number of training samples processed (passes ×
	// shard size).
	Samples int
}

// Executor runs training subtasks: it is the client-side compute kernel
// (the paper's per-client TensorFlow training step). An Executor is
// semantically stateless between subtasks — each Run behaves exactly as
// a volunteer client that just downloaded the model, parameters and
// data would — but physically it recycles per-worker scratch arenas
// (network, optimizer, shard view) through a sync.Pool, because
// SetParameters + Adam.Reset + View.Reset restore every observable bit
// of that state. The steady state therefore allocates almost nothing
// per subtask. Reuse is disabled when the model carries layers whose
// hidden state a reset cannot restore (Dropout's mask RNG).
type Executor struct {
	cfg JobConfig
	// reusable reports whether the builder's stack is scratch-safe.
	reusable bool
	scratch  sync.Pool
}

// execScratch is one worker's arena: a private model clone, optimizer
// and shard view, recycled across subtasks.
type execScratch struct {
	net       *nn.Network
	optimizer *opt.Adam
	view      *data.View
}

// NewExecutor creates an executor for the job.
func NewExecutor(cfg JobConfig) *Executor {
	e := &Executor{cfg: cfg}
	if cfg.Builder != nil {
		e.reusable = stackReusable(cfg.Builder())
	}
	return e
}

// stackReusable reports whether every layer's training-visible state is
// restored by SetParameters + ZeroGrads. Dropout is the one offender:
// its mask RNG advances per batch, so a recycled instance would draw
// different masks than a fresh one.
func stackReusable(layers []nn.Layer) bool {
	for _, l := range layers {
		switch v := l.(type) {
		case *nn.Dropout:
			return false
		case *nn.Residual:
			if !stackReusable(v.Body) || !stackReusable(v.Proj) {
				return false
			}
		}
	}
	return true
}

// Run trains a private copy of the model initialized from params on the
// shard and returns the updated parameter vector. seed makes the shard
// shuffling deterministic per (subtask, epoch).
func (e *Executor) Run(params []float64, shard *data.Dataset, seed int64) ([]float64, ExecStats) {
	return e.run(params, shard, seed, e.cfg.LocalPasses, shard.N())
}

// surrogateDivisor sets the surrogate backend's subsample: one pass over
// 1/8 of the shard (at least one full batch). See Executor.RunSurrogate.
const surrogateDivisor = 8

// RunSurrogate is the surrogate compute backend's kernel: the same model,
// optimizer and seeded shuffling as Run, but a single pass over a 1/8
// subsample of the shard (clamped to at least one batch). The update is
// statistically representative — genuine gradients from the run's real
// model on real shard samples — at a fraction of the cost, but the
// accuracy trajectory is only approximate: use it for capacity and
// scenario runs where timing/traffic matter and genuine curves don't
// (DESIGN.md §8).
func (e *Executor) RunSurrogate(params []float64, shard *data.Dataset, seed int64) ([]float64, ExecStats) {
	n := shard.N() / surrogateDivisor
	if batch := e.cfg.BatchSize; n < batch {
		n = batch
	}
	if n > shard.N() {
		n = shard.N()
	}
	return e.run(params, shard, seed, 1, n)
}

// run trains passes × samples-per-pass over a seeded permutation view of
// the shard. The view never mutates the shard, so shards may be shared
// read-only across concurrent executions (the parallel backend's
// requirement), and each pass costs O(batch) gathers instead of the
// historical O(shard-bytes) Subset copy.
func (e *Executor) run(params []float64, shard *data.Dataset, seed int64, passes, perPass int) ([]float64, ExecStats) {
	var net *nn.Network
	var optimizer *opt.Adam
	var local *data.View
	if e.reusable {
		sc, _ := e.scratch.Get().(*execScratch)
		if sc == nil {
			sc = &execScratch{
				net:       nn.NewNetwork(e.cfg.Builder),
				optimizer: opt.NewAdam(e.cfg.LearningRate),
				view:      &data.View{},
			}
		}
		defer e.scratch.Put(sc)
		net, optimizer, local = sc.net, sc.optimizer, sc.view
		optimizer.Reset()
		local.Reset(shard)
	} else {
		net = nn.NewNetwork(e.cfg.Builder)
		optimizer = opt.NewAdam(e.cfg.LearningRate)
		local = data.NewView(shard)
	}
	net.SetParameters(params)
	rng := rand.New(rand.NewSource(seed))

	var stats ExecStats
	lossSum := 0.0
	correct := 0
	for pass := 0; pass < passes; pass++ {
		local.Shuffle(rng)
		for start := 0; start < perPass; start += e.cfg.BatchSize {
			end := start + e.cfg.BatchSize
			if end > perPass {
				end = perPass
			}
			x, labels := local.Batch(start, end)
			net.ZeroGrads()
			loss, c := net.TrainBatch(x, labels)
			optimizer.Step(net.ParamTensors(), net.GradTensors())
			lossSum += loss
			correct += c
			stats.Batches++
		}
		stats.Samples += perPass
	}
	if stats.Batches > 0 {
		stats.MeanLoss = lossSum / float64(stats.Batches)
	}
	if stats.Samples > 0 {
		stats.TrainAccuracy = float64(correct) / float64(stats.Samples)
	}
	return net.Parameters(), stats
}

// WorkCost estimates the computational weight of one subtask in abstract
// work units (forward+backward sample-passes). The cluster simulator
// divides it by instance speed to get virtual execution time.
func (e *Executor) WorkCost(shardSize int) float64 {
	return float64(e.cfg.LocalPasses) * float64(shardSize) * 3 // fwd + bwd ≈ 3× fwd
}
