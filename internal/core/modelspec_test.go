package core

import (
	"math/rand"
	"testing"

	"vcdl/internal/nn"
	"vcdl/internal/tensor"
)

func randSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestModelSpecRoundTrip(t *testing.T) {
	spec := MiniResNetSpec(3, 8, 2, 10)
	blob, err := EncodeSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSpec(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != spec.Name || len(back.Layers) != len(spec.Layers) {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestSpecBuilderMatchesNativeBuilder(t *testing.T) {
	spec := MiniResNetSpec(3, 8, 2, 10)
	specBuilder, err := spec.Builder()
	if err != nil {
		t.Fatal(err)
	}
	fromSpec := nn.NewNetwork(specBuilder)
	native := nn.NewNetwork(nn.MiniResNetV2Builder(3, 8, 8, 8, 2, 10))
	if fromSpec.ParamCount() != native.ParamCount() {
		t.Fatalf("spec network has %d params, native %d", fromSpec.ParamCount(), native.ParamCount())
	}
	// Same parameters → same logits.
	native.Init(randSource(5))
	fromSpec.SetParameters(native.Parameters())
	x := tensor.New(2, 3, 8, 8)
	x.RandNormal(0, 1, randSource(6))
	a := native.Forward(x, false)
	b := fromSpec.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("spec-built network disagrees with native builder")
		}
	}
}

func TestSmallCNNSpecMatches(t *testing.T) {
	spec := SmallCNNSpec(3, 8, 8, 10)
	b, err := spec.Builder()
	if err != nil {
		t.Fatal(err)
	}
	if nn.NewNetwork(b).ParamCount() != nn.NewNetwork(nn.SmallCNNBuilder(3, 8, 8, 10)).ParamCount() {
		t.Fatal("small CNN spec param count mismatch")
	}
}

func TestMLPSpecMatches(t *testing.T) {
	spec := MLPSpec(10, []int{20, 20}, 4)
	b, err := spec.Builder()
	if err != nil {
		t.Fatal(err)
	}
	if nn.NewNetwork(b).ParamCount() != nn.NewNetwork(nn.MLPBuilder(10, []int{20, 20}, 4)).ParamCount() {
		t.Fatal("MLP spec param count mismatch")
	}
}

func TestSpecErrors(t *testing.T) {
	bad := []ModelSpec{
		{Layers: []LayerSpec{{Kind: "warp-drive"}}},
		{Layers: []LayerSpec{{Kind: "dense"}}},
		{Layers: []LayerSpec{{Kind: "conv2d", In: 3}}},
		{Layers: []LayerSpec{{Kind: "maxpool2d"}}},
		{Layers: []LayerSpec{{Kind: "batchnorm"}}},
		{Layers: []LayerSpec{{Kind: "residual", Body: []LayerSpec{{Kind: "nope"}}}}},
	}
	for i, spec := range bad {
		if _, err := spec.Builder(); err == nil {
			t.Fatalf("spec %d should fail to build", i)
		}
	}
}

func TestDecodeSpecGarbage(t *testing.T) {
	if _, err := DecodeSpec([]byte("{nope")); err == nil {
		t.Fatal("garbage JSON must fail")
	}
}

func TestConvDefaultStride(t *testing.T) {
	spec := ModelSpec{Layers: []LayerSpec{
		{Kind: "conv2d", In: 1, Out: 1, K: 3, Pad: 1},
		{Kind: "flatten"},
		{Kind: "dense", In: 16, Out: 2},
	}}
	b, err := spec.Builder()
	if err != nil {
		t.Fatal(err)
	}
	net := nn.NewNetwork(b)
	net.Init(randSource(7))
	x := tensor.New(1, 1, 4, 4)
	out := net.Forward(x, false)
	if out.Dim(1) != 2 {
		t.Fatalf("output shape %v", out.Shape())
	}
}
