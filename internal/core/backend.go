package core

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"vcdl/internal/data"
	"vcdl/internal/tensor"
)

// defaultComputeWorkers sizes a pool when the caller passes <= 0.
func defaultComputeWorkers() int { return runtime.GOMAXPROCS(0) }

// This file is the compute-backend layer (DESIGN.md §8): the seam between
// the discrete-event simulator and the subtask mathematics. A subtask's
// output is a pure function of (epoch parameter snapshot, shard, seed) —
// the simulator derives the seed as cfg.Seed ^ epoch<<20 ^ shard and the
// math never touches the engine RNG — so the *when* and *where* of the
// computation are free choices: inline in the event loop (real), memoized
// across the scheduler's replicated/reissued copies (cached), overlapped
// with event processing on a worker pool (parallel), or approximated by a
// subsampled kernel (surrogate). Virtual time and Results are identical
// across real, cached and parallel by construction; only wall clock and
// the BackendStats telemetry differ.

// Subtask identifies one unit of client compute: train from the epoch's
// parameter snapshot on one shard with the derived deterministic seed.
// Params and Data are read-only — backends and their workers must not
// mutate them.
type Subtask struct {
	Epoch int
	Shard int
	Seed  int64
	// Params is the epoch parameter snapshot the subtask trains from.
	Params []float64
	// Data is the subtask's training shard.
	Data *data.Dataset
}

// Future resolves one launched subtask computation. Wait is idempotent
// and must be called from the goroutine that drives the simulation (the
// event loop); only the parallel backend's internal workers run off that
// goroutine.
type Future interface {
	Wait() ([]float64, ExecStats)
}

// Backend computes subtask math for the simulator. Launch is called when
// the subtask's execution is *scheduled* (virtual start), Wait when it
// *completes* (virtual end) — the gap is what the parallel backend
// overlaps with event processing. Launch, Wait, Retire, Stats and Close
// are event-loop-thread-only.
type Backend interface {
	// Name returns the backend's canonical spec string.
	Name() string
	// Launch begins computing the subtask and returns its future.
	Launch(t Subtask) Future
	// Retire tells the backend no further launches will reference epochs
	// below epoch, so memoized state for them may be dropped.
	Retire(epoch int)
	// Stats returns the backend's compute telemetry.
	Stats() BackendStats
	// Close releases backend resources (worker pools drain).
	Close()
}

// BatchLauncher is the optional epoch-batching extension of Backend.
// The simulator hands every subtask scheduled inside one event callback
// to LaunchBatch in a single call, which lets pooled backends enqueue
// the whole batch without per-launch dispatch churn and lets caches
// split hits from misses before touching the inner backend. Futures are
// returned in input order; semantics are identical to calling Launch on
// each subtask in order.
type BatchLauncher interface {
	LaunchBatch(ts []Subtask) []Future
}

// LaunchBatch launches ts on b, through the batched path when b
// implements BatchLauncher and through per-subtask Launch otherwise —
// the shim that keeps the Backend seam compatible for third-party
// backends registered via RegisterBackend.
func LaunchBatch(b Backend, ts []Subtask) []Future {
	if bl, ok := b.(BatchLauncher); ok {
		return bl.LaunchBatch(ts)
	}
	futs := make([]Future, len(ts))
	for i, t := range ts {
		futs[i] = b.Launch(t)
	}
	return futs
}

// BackendStats is the compute telemetry a run's Result carries. All
// fields are updated on the event-loop thread, so for a fixed config and
// backend they are deterministic; across *different* backends (or worker
// counts) they legitimately differ — equivalence comparisons zero this
// struct (DESIGN.md §8).
type BackendStats struct {
	// Backend is the canonical spec string ("real", "parallel+cached", …).
	Backend string
	// Launched counts subtasks handed to the backend.
	Launched int
	// Computed counts executions that actually ran the (real or
	// surrogate) math; with a cache, Launched − Computed is the work
	// replication/reissue would have duplicated.
	Computed int
	// CacheHits/CacheMisses are the memoization counters (cached only).
	CacheHits   int
	CacheMisses int
	// Workers is the parallel pool size (0 for inline backends) and
	// MaxInFlight the peak number of launched-but-not-yet-awaited
	// subtasks — the overlap a pool of that size could exploit.
	Workers     int
	MaxInFlight int
}

// BackendFactory builds one base backend for a job. workers is only
// meaningful for pooled backends (<= 0 selects the default pool size).
type BackendFactory func(cfg JobConfig, workers int) Backend

var backendRegistry = map[string]BackendFactory{
	"real":      func(cfg JobConfig, _ int) Backend { return &realBackend{exec: NewExecutor(cfg)} },
	"surrogate": func(cfg JobConfig, _ int) Backend { return &surrogateBackend{exec: NewExecutor(cfg)} },
	"parallel":  func(cfg JobConfig, workers int) Backend { return newParallelBackend(cfg, workers) },
}

// RegisterBackend adds a custom base backend under name. Like the
// scheduling-policy registry, duplicate names panic: backend names key
// scenario files, experiment CSVs and BENCH_compute.json.
func RegisterBackend(name string, f BackendFactory) {
	if name == "" || f == nil {
		panic("core: RegisterBackend with empty name or nil factory")
	}
	if name == "cached" {
		panic("core: \"cached\" is the memoization modifier, not a base backend")
	}
	if _, dup := backendRegistry[name]; dup {
		panic("core: backend " + name + " already registered")
	}
	backendRegistry[name] = f
}

// BackendNames lists the base backends plus the cached modifier forms,
// sorted, for usage text and validation messages.
func BackendNames() []string {
	var names []string
	for name := range backendRegistry {
		names = append(names, name)
		if name == "real" {
			names = append(names, "cached") // "cached" == "real+cached"
		} else {
			names = append(names, name+"+cached")
		}
	}
	sort.Strings(names)
	return names
}

// parseBackendSpec splits a spec into its base backend name and whether
// the cached modifier wraps it. The grammar is "+"-separated parts: at
// most one registered base name (default "real") and optionally
// "cached", in either order — so "cached", "parallel+cached" and
// "cached+parallel" are all valid. "" means "real".
func parseBackendSpec(spec string) (base string, cached bool, err error) {
	base = "real"
	if spec == "" {
		return base, false, nil
	}
	baseSet := false
	for _, part := range strings.Split(spec, "+") {
		part = strings.TrimSpace(part)
		switch {
		case part == "cached":
			if cached {
				return "", false, fmt.Errorf("core: backend spec %q repeats cached", spec)
			}
			cached = true
		default:
			if _, ok := backendRegistry[part]; !ok {
				return "", false, fmt.Errorf("core: unknown backend %q in spec %q (want one of %s)",
					part, spec, strings.Join(BackendNames(), ", "))
			}
			if baseSet {
				return "", false, fmt.Errorf("core: backend spec %q names two base backends", spec)
			}
			base, baseSet = part, true
		}
	}
	return base, cached, nil
}

// ValidateBackendSpec reports whether spec names a constructible
// backend; option layers (exp, scenario) call it at parse time so bad
// specs fail before any run starts.
func ValidateBackendSpec(spec string) error {
	_, _, err := parseBackendSpec(spec)
	return err
}

// BackendSpecName canonicalizes a valid spec ("cached+parallel" →
// "parallel+cached", "" → "real"); it is what the backend's Name and
// Stats report. Invalid specs return the input unchanged.
func BackendSpecName(spec string) string {
	base, cached, err := parseBackendSpec(spec)
	if err != nil {
		return spec
	}
	switch {
	case !cached:
		return base
	case base == "real":
		return "cached"
	default:
		return base + "+cached"
	}
}

// NewBackend instantiates the backend named by spec for one run. Backends
// are stateful (caches, pools) and must never be shared between runs —
// the simulator builds one per Start, which is what keeps sweep workers
// independent.
func NewBackend(spec string, cfg JobConfig, workers int) (Backend, error) {
	base, cached, err := parseBackendSpec(spec)
	if err != nil {
		return nil, err
	}
	b := backendRegistry[base](cfg, workers)
	if cached {
		b = &cachedBackend{inner: b, cells: make(map[[2]int]*cacheCell)}
	}
	return b, nil
}

// lazyFuture computes on first Wait — the "inline in the event loop at
// virtual completion time" behaviour of the historical code path, which
// also means executions whose completion never fires (departed clients)
// never compute.
type lazyFuture struct {
	f      func() ([]float64, ExecStats)
	done   bool
	params []float64
	stats  ExecStats
}

func (l *lazyFuture) Wait() ([]float64, ExecStats) {
	if !l.done {
		l.params, l.stats = l.f()
		l.done, l.f = true, nil
	}
	return l.params, l.stats
}

// inlineStats carries the telemetry shared by the inline (non-pooled)
// backends, including the launched-minus-awaited peak.
type inlineStats struct {
	stats       BackendStats
	outstanding int
}

func (s *inlineStats) launch() {
	s.stats.Launched++
	s.outstanding++
	if s.outstanding > s.stats.MaxInFlight {
		s.stats.MaxInFlight = s.outstanding
	}
}

func (s *inlineStats) await() { s.outstanding-- }

// realBackend is today's path: the full Executor kernel, inline in the
// event loop at virtual completion time.
type realBackend struct {
	exec *Executor
	s    inlineStats
}

func (b *realBackend) Name() string { return "real" }

func (b *realBackend) Launch(t Subtask) Future {
	b.s.launch()
	return &lazyFuture{f: func() ([]float64, ExecStats) {
		b.s.await()
		b.s.stats.Computed++
		return b.exec.Run(t.Params, t.Data, t.Seed)
	}}
}

func (b *realBackend) Retire(int) {}
func (b *realBackend) Stats() BackendStats {
	s := b.s.stats
	s.Backend = b.Name()
	return s
}
func (b *realBackend) Close() {}

// surrogateBackend swaps the kernel for Executor.RunSurrogate.
type surrogateBackend struct {
	exec *Executor
	s    inlineStats
}

func (b *surrogateBackend) Name() string { return "surrogate" }

func (b *surrogateBackend) Launch(t Subtask) Future {
	b.s.launch()
	return &lazyFuture{f: func() ([]float64, ExecStats) {
		b.s.await()
		b.s.stats.Computed++
		return b.exec.RunSurrogate(t.Params, t.Data, t.Seed)
	}}
}

func (b *surrogateBackend) Retire(int) {}
func (b *surrogateBackend) Stats() BackendStats {
	s := b.s.stats
	s.Backend = b.Name()
	return s
}
func (b *surrogateBackend) Close() {}

// parallelBackend feeds launches to a persistent pool of worker
// goroutines over a bounded queue, so the math runs between a subtask's
// virtual start and virtual end while the event loop keeps processing.
// Because each computation is pure and the event loop's Launch/Wait
// order is fixed by virtual time, results are byte-identical at any
// pool size.
//
// Two granularity rules, both learned from the goroutine-per-launch
// version this replaced: (1) workers are started once at construction —
// a launch is one pointer send on a channel, not a goroutine spawn plus
// semaphore dance; (2) parallelism lives in exactly one place — the
// pool holds a tensor.ReserveSerial reservation for its whole lifetime,
// so kernels inside workers never fan out into nested goroutines
// (8 workers × GOMAXPROCS kernel goroutines was the old worst case).
type parallelBackend struct {
	exec    *Executor
	workers int
	queue   chan *poolFuture
	wg      sync.WaitGroup
	// releaseSerial drops the pool's kernel-serialization reservation
	// at Close.
	releaseSerial func()
	// computed is incremented by workers; everything else in s is
	// event-loop-only, so Launched/MaxInFlight stay deterministic.
	computed atomic.Int64
	closed   bool
	s        inlineStats
}

// poolQueueBound sizes the launch queue per worker. Deep enough that an
// epoch batch rarely blocks the event loop, bounded so a pathological
// backlog applies backpressure instead of growing without limit
// (blocking Launch is safe: workers never depend on the event loop).
const poolQueueBound = 8

func newParallelBackend(cfg JobConfig, workers int) *parallelBackend {
	if workers < 1 {
		workers = defaultComputeWorkers()
	}
	b := &parallelBackend{
		exec:          NewExecutor(cfg),
		workers:       workers,
		queue:         make(chan *poolFuture, workers*poolQueueBound),
		releaseSerial: tensor.ReserveSerial(),
	}
	for i := 0; i < workers; i++ {
		b.wg.Add(1)
		go b.worker()
	}
	return b
}

func (b *parallelBackend) worker() {
	defer b.wg.Done()
	for f := range b.queue {
		f.params, f.stats = b.exec.Run(f.t.Params, f.t.Data, f.t.Seed)
		f.t = Subtask{} // drop the params/shard references promptly
		b.computed.Add(1)
		close(f.done)
	}
}

// poolFuture is one queued launch. The worker's close(done) publishes
// params/stats to the event-loop thread's Wait.
type poolFuture struct {
	b      *parallelBackend
	t      Subtask
	done   chan struct{}
	waited bool
	params []float64
	stats  ExecStats
}

func (f *poolFuture) Wait() ([]float64, ExecStats) {
	if !f.waited {
		<-f.done
		f.waited = true
		f.b.s.await()
	}
	return f.params, f.stats
}

func (b *parallelBackend) Launch(t Subtask) Future {
	b.s.launch()
	f := &poolFuture{b: b, t: t, done: make(chan struct{})}
	b.queue <- f
	return f
}

// LaunchBatch enqueues a whole event callback's subtasks back to back.
func (b *parallelBackend) LaunchBatch(ts []Subtask) []Future {
	futs := make([]Future, len(ts))
	for i, t := range ts {
		futs[i] = b.Launch(t)
	}
	return futs
}

func (b *parallelBackend) Name() string { return "parallel" }
func (b *parallelBackend) Retire(int)   {}

func (b *parallelBackend) Stats() BackendStats {
	s := b.s.stats
	s.Backend = b.Name()
	s.Workers = b.workers
	s.Computed = int(b.computed.Load())
	return s
}

// Close stops the pool: the queue is closed, workers drain what is
// already enqueued (futures nobody awaited, e.g. for departed clients,
// still compute — the pool is work-conserving like its predecessor) and
// exit, and the kernel-serialization reservation is released.
func (b *parallelBackend) Close() {
	if b.closed {
		return
	}
	b.closed = true
	close(b.queue)
	b.wg.Wait()
	b.releaseSerial()
}

// cacheCell memoizes one (epoch, shard) computation. Every launch of the
// same key shares the cell, so replicated and reissued copies resolve to
// a single underlying execution, whichever copy awaits first.
type cacheCell struct {
	fut    Future
	done   bool
	params []float64
	stats  ExecStats
}

func (c *cacheCell) Wait() ([]float64, ExecStats) {
	if !c.done {
		c.params, c.stats = c.fut.Wait()
		c.done, c.fut = true, nil
	}
	return c.params, c.stats
}

// cachedBackend memoizes any inner backend per (epoch, shard). Soundness
// is the purity argument: for a fixed run, (epoch, shard) determines
// (params snapshot, shard data, seed), so every copy the scheduler
// issues is a byte-identical recomputation — computing once changes
// nothing but wall clock.
type cachedBackend struct {
	inner        Backend
	cells        map[[2]int]*cacheCell
	hits, misses int
}

func (b *cachedBackend) Name() string {
	if b.inner.Name() == "real" {
		return "cached"
	}
	return b.inner.Name() + "+cached"
}

func (b *cachedBackend) Launch(t Subtask) Future {
	key := [2]int{t.Epoch, t.Shard}
	if cell, ok := b.cells[key]; ok {
		b.hits++
		return cell
	}
	b.misses++
	cell := &cacheCell{fut: b.inner.Launch(t)}
	b.cells[key] = cell
	return cell
}

// LaunchBatch resolves cache hits without touching the inner backend
// and forwards the misses as one smaller batch, preserving input order
// in the returned futures. Counter updates happen in input order, so
// stats match the sequential Launch path exactly.
func (b *cachedBackend) LaunchBatch(ts []Subtask) []Future {
	futs := make([]Future, len(ts))
	var misses []Subtask
	var missIdx []int
	for i, t := range ts {
		key := [2]int{t.Epoch, t.Shard}
		if cell, ok := b.cells[key]; ok {
			b.hits++
			futs[i] = cell
			continue
		}
		b.misses++
		cell := &cacheCell{}
		b.cells[key] = cell
		futs[i] = cell
		misses = append(misses, t)
		missIdx = append(missIdx, i)
	}
	if len(misses) == 0 {
		return futs
	}
	inner := LaunchBatch(b.inner, misses)
	for j, i := range missIdx {
		futs[i].(*cacheCell).fut = inner[j]
	}
	return futs
}

// Retire evicts cells below epoch. In-flight futures keep their cell
// alive through the future they were handed, so eviction never races a
// pending Wait.
func (b *cachedBackend) Retire(epoch int) {
	for key := range b.cells {
		if key[0] < epoch {
			delete(b.cells, key)
		}
	}
	b.inner.Retire(epoch)
}

func (b *cachedBackend) Stats() BackendStats {
	s := b.inner.Stats()
	s.Backend = b.Name()
	// The inner backend only saw the misses; the cached layer's launch
	// count is every subtask handed to it.
	s.Launched = b.hits + b.misses
	s.CacheHits = b.hits
	s.CacheMisses = b.misses
	return s
}

func (b *cachedBackend) Close() { b.inner.Close() }
