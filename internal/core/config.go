// Package core orchestrates VCDL training jobs: it turns one deep-learning
// training job into data-parallel training subtasks (the paper's work
// generator, §III-A), executes subtasks on clients (the TensorFlow
// stand-in), assimilates results through VC-ASGD parameter servers, tracks
// epochs and applies the stopping criterion. Two runners are provided: a
// LocalRunner that executes the whole pipeline in-process with goroutine
// clients, and a Distributed runner that drives the real BOINC-style HTTP
// server and client daemons.
package core

import (
	"fmt"

	"vcdl/internal/data"
	"vcdl/internal/nn"
	"vcdl/internal/opt"
)

// JobConfig describes one training job. The defaults mirror the paper's
// CIFAR-10 experiment topology at laptop scale: 50 subtasks per epoch, an
// Adam client optimizer with lr=0.001, and VC-ASGD assimilation.
type JobConfig struct {
	// Builder constructs the model architecture (shared by clients and
	// the validation evaluator).
	Builder func() []nn.Layer
	// Subtasks is the number of data shards / training subtasks per epoch
	// (the paper uses 50).
	Subtasks int
	// MaxEpochs bounds training length.
	MaxEpochs int
	// TargetAccuracy stops training early when the epoch-average
	// validation accuracy reaches it (0 disables).
	TargetAccuracy float64
	// BatchSize is the client-side minibatch size.
	BatchSize int
	// LocalPasses is how many passes a client makes over its shard per
	// subtask.
	LocalPasses int
	// LearningRate is the client Adam learning rate (paper: 0.001).
	LearningRate float64
	// Alpha is the VC-ASGD hyperparameter schedule.
	Alpha opt.Schedule
	// ValSubset caps how many validation samples the parameter server
	// evaluates after each assimilation (0 = full validation set). The
	// paper evaluates the full set; the subset keeps simulations fast.
	ValSubset int
	// WarmstartEpochs runs this many serial synchronous epochs on the
	// full training set before distributing — Downpour SGD's mitigation
	// for the delayed-gradient problem (§II-B), offered here as an
	// option for VC-ASGD jobs.
	WarmstartEpochs int
	// Seed drives model initialization and all client-side shuffling.
	Seed int64
}

// DefaultJobConfig returns the paper-shaped configuration for the given
// architecture builder.
func DefaultJobConfig(builder func() []nn.Layer) JobConfig {
	return JobConfig{
		Builder:        builder,
		Subtasks:       50,
		MaxEpochs:      40,
		TargetAccuracy: 0,
		BatchSize:      25,
		LocalPasses:    1,
		LearningRate:   0.001,
		Alpha:          opt.Constant{V: 0.95},
		ValSubset:      0,
		Seed:           1,
	}
}

// Validate reports configuration errors.
func (c JobConfig) Validate() error {
	switch {
	case c.Builder == nil:
		return fmt.Errorf("core: nil Builder")
	case c.Subtasks < 1:
		return fmt.Errorf("core: Subtasks %d < 1", c.Subtasks)
	case c.MaxEpochs < 1:
		return fmt.Errorf("core: MaxEpochs %d < 1", c.MaxEpochs)
	case c.BatchSize < 1:
		return fmt.Errorf("core: BatchSize %d < 1", c.BatchSize)
	case c.LocalPasses < 1:
		return fmt.Errorf("core: LocalPasses %d < 1", c.LocalPasses)
	case c.LearningRate <= 0:
		return fmt.Errorf("core: LearningRate %v <= 0", c.LearningRate)
	case c.Alpha == nil:
		return fmt.Errorf("core: nil Alpha schedule")
	}
	return nil
}

// SplitShards partitions the corpus training set into the job's subtask
// shards.
func (c JobConfig) SplitShards(corpus *data.Corpus) []*data.Dataset {
	return corpus.Train.Split(c.Subtasks)
}
