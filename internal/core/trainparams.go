package core

import (
	"encoding/json"
	"fmt"
)

// TrainParams is the wire-able subset of JobConfig a client needs to
// execute training subtasks. The server publishes it as "job.json"
// alongside "model.json", so client daemons configure themselves from
// the project instead of hard-coding hyperparameters that silently
// drift from the server's (the architecture itself still ships in
// model.json and is decoded per assignment).
type TrainParams struct {
	LocalPasses  int     `json:"local_passes"`
	BatchSize    int     `json:"batch_size"`
	LearningRate float64 `json:"learning_rate"`
	Seed         int64   `json:"seed"`
}

// TrainParamsFile is the published file name clients fetch.
const TrainParamsFile = "job.json"

// TrainParamsOf extracts the client-side hyperparameters of a job.
func TrainParamsOf(cfg JobConfig) TrainParams {
	return TrainParams{
		LocalPasses:  cfg.LocalPasses,
		BatchSize:    cfg.BatchSize,
		LearningRate: cfg.LearningRate,
		Seed:         cfg.Seed,
	}
}

// JobConfig expands the params back into a client-side job config. The
// Builder stays nil: NewTrainingApp decodes the architecture from each
// assignment's model file.
func (p TrainParams) JobConfig() JobConfig {
	cfg := DefaultJobConfig(nil)
	cfg.LocalPasses = p.LocalPasses
	cfg.BatchSize = p.BatchSize
	cfg.LearningRate = p.LearningRate
	cfg.Seed = p.Seed
	return cfg
}

// EncodeTrainParams serializes the params for publication.
func EncodeTrainParams(p TrainParams) ([]byte, error) { return json.Marshal(p) }

// DecodeTrainParams parses a published job.json blob.
func DecodeTrainParams(blob []byte) (TrainParams, error) {
	var p TrainParams
	if err := json.Unmarshal(blob, &p); err != nil {
		return TrainParams{}, fmt.Errorf("core: decode train params: %w", err)
	}
	if p.LocalPasses < 1 || p.BatchSize < 1 || p.LearningRate <= 0 {
		return TrainParams{}, fmt.Errorf("core: train params out of range: %+v", p)
	}
	return p, nil
}
