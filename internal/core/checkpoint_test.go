package core

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	params := make([]float64, 5000)
	for i := range params {
		params[i] = rng.NormFloat64()
	}
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := SaveParams(path, params); err != nil {
		t.Fatal(err)
	}
	back, err := LoadParams(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(params) {
		t.Fatalf("len %d, want %d", len(back), len(params))
	}
	for i := range params {
		if params[i] != back[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestCheckpointAtomicNoTempLeft(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	if err := SaveParams(path, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d files, want just the checkpoint", len(entries))
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := SaveParams(path, make([]float64, 4096)); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xff
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadParams(path); err == nil {
		t.Fatal("corrupted checkpoint must fail to load")
	}
}

func TestCheckpointMissingFile(t *testing.T) {
	if _, err := LoadParams(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Fatal("missing checkpoint must error")
	}
}

// TestCheckpointResumesTraining verifies the end-to-end use: train, save,
// reload into a fresh network, and confirm identical evaluation.
func TestCheckpointResumesTraining(t *testing.T) {
	corpus := testCorpus(t)
	cfg := testJobConfig()
	cfg.MaxEpochs = 2
	res, err := RunLocal(cfg, corpus, LocalConfig{Clients: 2, TasksPerClient: 1, PServers: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "resume.ckpt")
	if err := SaveParams(path, res.FinalParams); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadParams(path)
	if err != nil {
		t.Fatal(err)
	}
	eval := NewEvaluator(cfg.Builder, corpus.Val, 0, 50)
	if eval.Accuracy(res.FinalParams) != eval.Accuracy(loaded) {
		t.Fatal("checkpointed parameters evaluate differently")
	}
}
