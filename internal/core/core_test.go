package core

import (
	"math"
	"testing"

	"vcdl/internal/data"
	"vcdl/internal/nn"
	"vcdl/internal/opt"
)

// testCorpus returns a small, easy corpus for fast end-to-end tests.
func testCorpus(t *testing.T) *data.Corpus {
	t.Helper()
	cfg := data.DefaultSynthConfig()
	cfg.NTrain, cfg.NVal, cfg.NTest = 500, 200, 200
	cfg.NoiseStd = 0.4
	c, err := data.GenerateSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// testJobConfig returns a fast job over the small corpus.
func testJobConfig() JobConfig {
	cfg := DefaultJobConfig(nn.SmallCNNBuilder(3, 8, 8, 10))
	cfg.Subtasks = 10
	cfg.MaxEpochs = 6
	cfg.BatchSize = 25
	cfg.LocalPasses = 3
	cfg.LearningRate = 0.01
	cfg.ValSubset = 100
	return cfg
}

func TestJobConfigValidate(t *testing.T) {
	good := testJobConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*JobConfig){
		func(c *JobConfig) { c.Builder = nil },
		func(c *JobConfig) { c.Subtasks = 0 },
		func(c *JobConfig) { c.MaxEpochs = 0 },
		func(c *JobConfig) { c.BatchSize = 0 },
		func(c *JobConfig) { c.LocalPasses = 0 },
		func(c *JobConfig) { c.LearningRate = 0 },
		func(c *JobConfig) { c.Alpha = nil },
	}
	for i, mutate := range bad {
		c := testJobConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("mutation %d should invalidate config", i)
		}
	}
}

func TestExecutorImprovesOnShard(t *testing.T) {
	corpus := testCorpus(t)
	cfg := testJobConfig()
	cfg.LocalPasses = 5
	cfg.LearningRate = 0.01
	exec := NewExecutor(cfg)
	net := nn.NewNetwork(cfg.Builder)
	net.Init(randSource(1))
	shard := corpus.Train.Split(10)[0]
	before := net.Parameters()
	eval := NewEvaluator(cfg.Builder, shard, 0, 25)
	accBefore := eval.Accuracy(before)
	after, stats := exec.Run(before, shard, 7)
	accAfter := eval.Accuracy(after)
	if stats.Batches != 5*2 { // 50 samples / 25 batch × 5 passes
		t.Fatalf("Batches = %d, want 10", stats.Batches)
	}
	if stats.Samples != 5*shard.N() {
		t.Fatalf("Samples = %d", stats.Samples)
	}
	if accAfter <= accBefore {
		t.Fatalf("training on shard did not improve shard accuracy: %v -> %v", accBefore, accAfter)
	}
}

func TestExecutorDoesNotMutateInputs(t *testing.T) {
	corpus := testCorpus(t)
	cfg := testJobConfig()
	exec := NewExecutor(cfg)
	net := nn.NewNetwork(cfg.Builder)
	net.Init(randSource(2))
	params := net.Parameters()
	paramsCopy := append([]float64(nil), params...)
	shard := corpus.Train.Split(10)[0]
	shardCopy := append([]float64(nil), shard.X.Data...)
	labelsCopy := append([]int(nil), shard.Labels...)
	exec.Run(params, shard, 3)
	for i := range params {
		if params[i] != paramsCopy[i] {
			t.Fatal("executor mutated the input parameter vector")
		}
	}
	for i := range shardCopy {
		if shard.X.Data[i] != shardCopy[i] {
			t.Fatal("executor mutated the shared shard images")
		}
	}
	for i := range labelsCopy {
		if shard.Labels[i] != labelsCopy[i] {
			t.Fatal("executor mutated the shared shard labels")
		}
	}
}

func TestExecutorDeterministicForSeed(t *testing.T) {
	corpus := testCorpus(t)
	cfg := testJobConfig()
	exec := NewExecutor(cfg)
	net := nn.NewNetwork(cfg.Builder)
	net.Init(randSource(3))
	shard := corpus.Train.Split(10)[1]
	a, _ := exec.Run(net.Parameters(), shard, 42)
	b, _ := exec.Run(net.Parameters(), shard, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical results")
		}
	}
	c, _ := exec.Run(net.Parameters(), shard, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical results")
	}
}

func TestWorkCostScalesWithPasses(t *testing.T) {
	cfg := testJobConfig()
	cfg.LocalPasses = 1
	e1 := NewExecutor(cfg)
	cfg2 := cfg
	cfg2.LocalPasses = 4
	e4 := NewExecutor(cfg2)
	if e4.WorkCost(100) != 4*e1.WorkCost(100) {
		t.Fatal("WorkCost must scale with LocalPasses")
	}
}

func TestEvaluatorSubset(t *testing.T) {
	corpus := testCorpus(t)
	cfg := testJobConfig()
	full := NewEvaluator(cfg.Builder, corpus.Val, 0, 50)
	sub := NewEvaluator(cfg.Builder, corpus.Val, 40, 50)
	if full.N() != corpus.Val.N() {
		t.Fatalf("full N = %d", full.N())
	}
	if sub.N() != 40 {
		t.Fatalf("subset N = %d", sub.N())
	}
	net := nn.NewNetwork(cfg.Builder)
	net.Init(randSource(4))
	acc := full.Accuracy(net.Parameters())
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v out of range", acc)
	}
}

// TestRunLocalEndToEnd is the headline integration test: a distributed
// in-process run must learn well above chance and record one curve point
// per epoch with sane spread bounds.
func TestRunLocalEndToEnd(t *testing.T) {
	corpus := testCorpus(t)
	cfg := testJobConfig()
	res, err := RunLocal(cfg, corpus, LocalConfig{Clients: 3, TasksPerClient: 2, PServers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve.Points) != cfg.MaxEpochs {
		t.Fatalf("curve has %d points, want %d", len(res.Curve.Points), cfg.MaxEpochs)
	}
	final := res.Curve.FinalValue()
	if final < 0.3 {
		t.Fatalf("final accuracy %v; distributed training failed to learn (chance = 0.1)", final)
	}
	for _, p := range res.Curve.Points {
		if p.Lo > p.Value || p.Value > p.Hi {
			t.Fatalf("epoch %d: mean %v outside [%v,%v]", p.Epoch, p.Value, p.Lo, p.Hi)
		}
	}
	if len(res.FinalParams) == 0 {
		t.Fatal("missing final parameters")
	}
	for _, v := range res.FinalParams {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite final parameters")
		}
	}
}

func TestRunLocalTargetAccuracyStops(t *testing.T) {
	corpus := testCorpus(t)
	cfg := testJobConfig()
	cfg.TargetAccuracy = 0.15 // trivially reachable
	res, err := RunLocal(cfg, corpus, LocalConfig{Clients: 2, TasksPerClient: 1, PServers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("run did not report early stop")
	}
	if len(res.Curve.Points) >= cfg.MaxEpochs {
		t.Fatalf("ran %d epochs despite trivial target", len(res.Curve.Points))
	}
}

func TestRunLocalInvalidConfig(t *testing.T) {
	corpus := testCorpus(t)
	cfg := testJobConfig()
	cfg.Subtasks = 0
	if _, err := RunLocal(cfg, corpus, LocalConfig{}); err == nil {
		t.Fatal("invalid config must error")
	}
}

func TestRunLocalDeterministicCurve(t *testing.T) {
	corpus := testCorpus(t)
	cfg := testJobConfig()
	cfg.MaxEpochs = 2
	// Single worker slot: fully deterministic order of assimilation.
	lc := LocalConfig{Clients: 1, TasksPerClient: 1, PServers: 1}
	r1, err := RunLocal(cfg, corpus, lc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunLocal(cfg, corpus, lc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Curve.Points {
		if r1.Curve.Points[i].Value != r2.Curve.Points[i].Value {
			t.Fatal("single-slot runs must be deterministic")
		}
	}
}

// TestAlphaOrderingEarlyEpochs reproduces the paper's Figure 4 claim in
// miniature: in early epochs, smaller alpha (faster learning from clients)
// beats alpha close to 1. alpha=0.999 must barely move.
func TestAlphaOrderingEarlyEpochs(t *testing.T) {
	corpus := testCorpus(t)
	run := func(alpha float64) float64 {
		cfg := testJobConfig()
		cfg.MaxEpochs = 3
		cfg.Alpha = opt.Constant{V: alpha}
		res, err := RunLocal(cfg, corpus, LocalConfig{Clients: 2, TasksPerClient: 2, PServers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res.Curve.FinalValue()
	}
	a70 := run(0.70)
	a999 := run(0.999)
	if a70 <= a999 {
		t.Fatalf("alpha=0.7 (%v) should beat alpha=0.999 (%v) in early epochs", a70, a999)
	}
	if a999 > 0.3 {
		t.Fatalf("alpha=0.999 learned implausibly fast: %v", a999)
	}
}
