package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"vcdl/internal/data"
	"vcdl/internal/metrics"
	"vcdl/internal/nn"
	"vcdl/internal/ps"
	"vcdl/internal/store"
)

// LocalConfig sizes an in-process distributed run: the paper's Pn
// (parameter servers), Cn (clients) and Tn (simultaneous subtasks per
// client), with clients realized as goroutine pools.
type LocalConfig struct {
	Clients        int
	TasksPerClient int
	PServers       int
	// Store backs the shared parameter copy; nil defaults to a strong
	// store.
	Store store.Store
}

// RunResult is the outcome of a training run.
type RunResult struct {
	// Curve holds one point per epoch: mean validation accuracy with the
	// per-epoch subtask range, against cumulative hours.
	Curve metrics.Series
	// Epochs are the per-epoch aggregates.
	Epochs []ps.EpochSummary
	// FinalParams is the server parameter copy at the end of training.
	FinalParams []float64
	// Stopped reports whether the accuracy target fired before the epoch
	// budget ran out.
	Stopped bool
}

// RunLocal executes a full data-parallel training job in-process: Cn×Tn
// worker slots pull subtasks, train on their shards, and assimilate into a
// VC-ASGD parameter-server group backed by the configured store. Time on
// the curve is real wall-clock (use the vcsim package for paper-scale
// virtual-hours experiments).
func RunLocal(cfg JobConfig, corpus *data.Corpus, lc LocalConfig) (*RunResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if lc.Clients < 1 {
		lc.Clients = 1
	}
	if lc.TasksPerClient < 1 {
		lc.TasksPerClient = 1
	}
	if lc.PServers < 1 {
		lc.PServers = 1
	}
	st := lc.Store
	if st == nil {
		st = store.NewStrong()
	}

	// Initialize the model, optionally warmstart it serially, and publish
	// the server copy.
	net := nn.NewNetwork(cfg.Builder)
	net.Init(rand.New(rand.NewSource(cfg.Seed)))
	if cfg.WarmstartEpochs > 0 {
		Warmstart(net, cfg, corpus.Train)
	}
	group := ps.NewGroup(lc.PServers, st, cfg.Alpha)
	if err := group.Publish(net.Parameters()); err != nil {
		return nil, err
	}

	shards := cfg.SplitShards(corpus)
	exec := NewExecutor(cfg)
	eval := NewEvaluator(cfg.Builder, corpus.Val, cfg.ValSubset, cfg.BatchSize*4)
	tracker := ps.NewEpochTracker(cfg.Subtasks)
	stop := ps.StopCriterion{TargetAccuracy: cfg.TargetAccuracy, MaxEpochs: cfg.MaxEpochs}

	res := &RunResult{Curve: metrics.Series{Name: fmt.Sprintf("P%dC%dT%d", lc.PServers, lc.Clients, lc.TasksPerClient)}}
	start := time.Now()

	for epoch := 1; epoch <= cfg.MaxEpochs; epoch++ {
		snapshot, err := group.Current()
		if err != nil {
			return nil, err
		}
		// Dispatch this epoch's subtasks over Cn×Tn worker slots.
		type job struct{ shard int }
		jobs := make(chan job)
		errs := make(chan error, lc.Clients*lc.TasksPerClient)
		var wg sync.WaitGroup
		for c := 0; c < lc.Clients; c++ {
			for tSlot := 0; tSlot < lc.TasksPerClient; tSlot++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := range jobs {
						seed := cfg.Seed ^ int64(epoch)<<20 ^ int64(j.shard)
						updated, _ := exec.Run(snapshot, shards[j.shard], seed)
						srv := group.Pick()
						if err := srv.Assimilate(updated, epoch); err != nil {
							errs <- err
							return
						}
						cur, err := srv.Current()
						if err != nil {
							errs <- err
							return
						}
						tracker.Record(eval.Accuracy(cur))
					}
				}()
			}
		}
		for sIdx := range shards {
			jobs <- job{shard: sIdx}
		}
		close(jobs)
		wg.Wait()
		select {
		case err := <-errs:
			return nil, err
		default:
		}
		sums := tracker.Completed()
		if len(sums) == 0 {
			return nil, fmt.Errorf("core: epoch %d closed no summary", epoch)
		}
		latest := sums[len(sums)-1]
		res.Epochs = sums
		res.Curve.Add(metrics.Point{
			Epoch: latest.Epoch,
			Hours: time.Since(start).Hours(),
			Value: latest.Mean,
			Lo:    latest.Lo,
			Hi:    latest.Hi,
		})
		if stop.ShouldStop(latest) {
			res.Stopped = latest.Mean >= cfg.TargetAccuracy && cfg.TargetAccuracy > 0
			break
		}
	}
	final, err := group.Current()
	if err != nil {
		return nil, err
	}
	res.FinalParams = final
	return res, nil
}
