package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level is a log severity.
type Level int

// Severities, lowest first.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
)

// String renders the level for log lines.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	default:
		return "warn"
	}
}

// Logger writes leveled key=value lines for the live path. A nil
// *Logger discards everything, so components take a *Logger field and
// log unconditionally. Lines are stamped with seconds since the logger
// was created (wall clock — loggers exist only on the real-mode side;
// sim-mode code must not hold one).
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	min   Level
	start time.Time
}

// NewLogger creates a logger writing to w, dropping entries below min.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{w: w, min: min, start: time.Now()}
}

// Enabled reports whether entries at the given level are written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && l.w != nil && level >= l.min
}

// Debug logs at debug level. kv are alternating keys and values.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "t=%.3f level=%s msg=%s", time.Since(l.start).Seconds(), level, quote(msg))
	for i := 0; i+1 < len(kv); i += 2 {
		fmt.Fprintf(&b, " %v=%s", kv[i], quote(fmt.Sprint(kv[i+1])))
	}
	if len(kv)%2 == 1 {
		fmt.Fprintf(&b, " EXTRA=%s", quote(fmt.Sprint(kv[len(kv)-1])))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// quote renders a value, quoting only when it contains whitespace,
// quotes or equals signs, so common values stay grep-friendly.
func quote(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return fmt.Sprintf("%q", s)
	}
	return s
}
