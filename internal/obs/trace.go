package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Span event kinds, in rough lifecycle order. A workunit's span is the
// sequence created → assigned → compute_start → compute_end → uploaded
// → validated → assimilated → done, with invalid/timeout/reissued/failed
// edges where the lifecycle branched. Scheduler-side kinds (created,
// assigned, validated, invalid, timeout, reissued, done, failed) exist
// in both sim and real mode; client-side kinds (compute_start,
// compute_end, uploaded, assimilated) are emitted by the simulator,
// which sees the whole lifecycle from one event loop.
const (
	KindCreated      = "created"
	KindAssigned     = "assigned"
	KindComputeStart = "compute_start"
	KindComputeEnd   = "compute_end"
	KindUploaded     = "uploaded"
	KindValidated    = "validated"
	KindInvalid      = "invalid"
	KindAssimilated  = "assimilated"
	KindTimeout      = "timeout"
	KindReissued     = "reissued"
	KindDone         = "done"
	KindFailed       = "failed"
)

// SpanEvent is one observation in a workunit's lifecycle.
type SpanEvent struct {
	// WU identifies the workunit the event belongs to.
	WU int64 `json:"wu"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// T is the event time in the run's time base: virtual seconds under
	// the simulator, wall seconds since server start in real mode.
	T float64 `json:"t"`
	// Client is the client involved, when one is.
	Client string `json:"client,omitempty"`
	// Result is the result (issued copy) involved, when one is.
	Result int64 `json:"result,omitempty"`
	// Name is the workunit's name, carried on the created event.
	Name string `json:"name,omitempty"`
}

// Span is the recorded lifecycle of one workunit.
type Span struct {
	WU     int64       `json:"wu"`
	Name   string      `json:"name,omitempty"`
	Events []SpanEvent `json:"events"`
}

// At returns the time of the first event of the given kind.
func (s *Span) At(kind string) (float64, bool) {
	for _, e := range s.Events {
		if e.Kind == kind {
			return e.T, true
		}
	}
	return 0, false
}

// Count returns how many events of the given kind the span holds.
func (s *Span) Count(kind string) int {
	n := 0
	for _, e := range s.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// Tracer records workunit lifecycle spans into a queryable in-memory
// store and, when constructed with a writer, streams each event as one
// JSON line (JSONL). It is safe for concurrent use; a nil *Tracer
// ignores all records, so call sites need no guards.
type Tracer struct {
	mu    sync.Mutex
	spans map[int64]*Span
	order []int64
	enc   *json.Encoder
	err   error
}

// NewTracer creates a tracer. w may be nil for an in-memory-only store;
// otherwise every event is appended to w as a JSON line as it arrives.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{spans: make(map[int64]*Span)}
	if w != nil {
		t.enc = json.NewEncoder(w)
	}
	return t
}

// Record appends one event to its workunit's span.
func (t *Tracer) Record(ev SpanEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := t.spans[ev.WU]
	if sp == nil {
		sp = &Span{WU: ev.WU}
		t.spans[ev.WU] = sp
		t.order = append(t.order, ev.WU)
	}
	if sp.Name == "" && ev.Name != "" {
		sp.Name = ev.Name
	}
	sp.Events = append(sp.Events, ev)
	if t.enc != nil && t.err == nil {
		t.err = t.enc.Encode(ev)
	}
}

// Span returns a copy of one workunit's span.
func (t *Tracer) Span(wu int64) (Span, bool) {
	if t == nil {
		return Span{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := t.spans[wu]
	if sp == nil {
		return Span{}, false
	}
	return copySpan(sp), true
}

// Spans returns copies of all spans in creation order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.order))
	for _, wu := range t.order {
		out = append(out, copySpan(t.spans[wu]))
	}
	return out
}

// Len returns the number of workunits with at least one recorded event.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.order)
}

// Err returns the first JSONL write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

func copySpan(sp *Span) Span {
	return Span{WU: sp.WU, Name: sp.Name, Events: append([]SpanEvent(nil), sp.Events...)}
}
