// Package obs is the dependency-free observability core shared by the
// simulator and the live deployment (DESIGN.md §10): a metrics registry
// (atomic counters, gauges, fixed-bucket latency histograms with
// quantile estimates, labeled families) with Prometheus-text and JSON
// renderings, a per-workunit lifecycle tracer, and a leveled key=value
// logger for the live path.
//
// The package never reads a clock and never generates randomness: every
// recorded value is supplied by the caller in the caller's own time
// base. That is what lets the same registry observe a discrete-event
// simulation (virtual seconds) without perturbing it — attaching or
// detaching instrumentation cannot change a run's event order, RNG
// stream or Result.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// LatencyBuckets are the default histogram bounds, in seconds. They span
// sub-millisecond RPC handling up to multi-hour virtual-time waits so
// one bucket layout serves both time bases (wall-clock in real mode,
// virtual seconds in sim mode).
var LatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000,
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the metric to stay monotone;
// this is not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d atomically.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution metric. Bounds are upper
// bucket edges in ascending order; observations above the last bound
// land in an implicit overflow bucket.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, last = overflow
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation inside the containing bucket, the standard
// Prometheus-style estimate. It returns 0 when the histogram is empty;
// observations in the overflow bucket resolve to the highest finite
// bound (the estimate saturates rather than extrapolating).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if float64(cum+c) >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			if c == 0 {
				return hi
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// metricKind tags what a family holds.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric with zero or more label dimensions.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string
	bounds []float64 // histograms only

	mu       sync.Mutex
	children map[string]any // label-value key -> *Counter | *Gauge | *Histogram
	order    []string
}

// labelKey joins label values; label values must not contain '\x1f'.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

func (f *family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s has %d labels, got %d values", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	var c any
	switch f.kind {
	case kindCounter:
		c = &Counter{}
	case kindGauge:
		c = &Gauge{}
	default:
		c = newHistogram(f.bounds)
	}
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// CounterVec is a counter family with label dimensions.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).(*Counter) }

// GaugeVec is a gauge family with label dimensions.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).(*Gauge) }

// HistogramVec is a histogram family with label dimensions.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).(*Histogram) }

// Registry holds named metric families. Registration is get-or-create:
// asking for an existing name returns the existing instrument, so
// independent components can share one registry without coordination.
// Re-registering a name with a different type or label set panics — a
// programming error, caught loudly. All methods are safe for concurrent
// use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind metricKind, bounds []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s with %d labels (was %s with %d)",
				name, kind, len(labels), f.kind, len(f.labels)))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		bounds:   bounds,
		children: make(map[string]any),
	}
	r.families[name] = f
	return f
}

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, nil, nil).child(nil).(*Counter)
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, nil, nil).child(nil).(*Gauge)
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds if new (nil bounds = LatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.family(name, help, kindHistogram, bounds, nil).child(nil).(*Histogram)
}

// CounterVec returns the labeled counter family under name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, nil, labels)}
}

// GaugeVec returns the labeled gauge family under name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, nil, labels)}
}

// HistogramVec returns the labeled histogram family under name.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, bounds, labels)}
}

// FindHistogram returns the histogram under name with the given label
// values, or nil when it was never registered or observed. It is the
// post-run query path (fidelity stats) and never creates anything.
func (r *Registry) FindHistogram(name string, values ...string) *Histogram {
	if c := r.find(name, values); c != nil {
		if h, ok := c.(*Histogram); ok {
			return h
		}
	}
	return nil
}

// CounterValue returns the value of the counter under name with the
// given label values, or 0 when absent. Pure query; never creates.
func (r *Registry) CounterValue(name string, values ...string) int64 {
	if c := r.find(name, values); c != nil {
		if ctr, ok := c.(*Counter); ok {
			return ctr.Value()
		}
	}
	return 0
}

// GaugeValue returns the value of the gauge under name with the given
// label values, or 0 when absent. Pure query; never creates.
func (r *Registry) GaugeValue(name string, values ...string) float64 {
	if c := r.find(name, values); c != nil {
		if g, ok := c.(*Gauge); ok {
			return g.Value()
		}
	}
	return 0
}

func (r *Registry) find(name string, values []string) any {
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok || len(values) != len(f.labels) {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.children[labelKey(values)]
}

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	// LE is the bucket's inclusive upper bound in the metric's unit.
	LE float64 `json:"le"`
	// Count is the cumulative observation count at or below LE.
	Count int64 `json:"count"`
}

// MetricSnapshot is one metric child frozen at snapshot time.
type MetricSnapshot struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value carries counters and gauges.
	Value float64 `json:"value,omitempty"`
	// Count/Sum/P50/P95/P99/Buckets carry histograms. The implicit
	// overflow bucket is Count minus the last bucket's cumulative count
	// (JSON cannot encode +Inf).
	Count   int64         `json:"count,omitempty"`
	Sum     float64       `json:"sum,omitempty"`
	P50     float64       `json:"p50,omitempty"`
	P95     float64       `json:"p95,omitempty"`
	P99     float64       `json:"p99,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot freezes every registered metric, sorted by name then label
// values, so renderings are deterministic.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var out []MetricSnapshot
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		if len(f.labels) > 0 {
			sort.Strings(keys)
		}
		for _, key := range keys {
			c := f.children[key]
			snap := MetricSnapshot{Name: f.name, Type: f.kind.String(), Help: f.help}
			if len(f.labels) > 0 {
				snap.Labels = make(map[string]string, len(f.labels))
				for i, v := range strings.Split(key, "\x1f") {
					if i < len(f.labels) {
						snap.Labels[f.labels[i]] = v
					}
				}
			}
			switch m := c.(type) {
			case *Counter:
				snap.Value = float64(m.Value())
			case *Gauge:
				snap.Value = m.Value()
			case *Histogram:
				snap.Count = m.Count()
				snap.Sum = m.Sum()
				snap.P50 = m.Quantile(0.50)
				snap.P95 = m.Quantile(0.95)
				snap.P99 = m.Quantile(0.99)
				cum := int64(0)
				for i, b := range m.bounds {
					cum += m.buckets[i].Load()
					snap.Buckets = append(snap.Buckets, BucketCount{LE: b, Count: cum})
				}
			}
			out = append(out, snap)
		}
		f.mu.Unlock()
	}
	return out
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snaps := r.Snapshot()
	var b strings.Builder
	last := ""
	for _, s := range snaps {
		if s.Name != last {
			if s.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.Name, s.Help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.Name, s.Type)
			last = s.Name
		}
		switch s.Type {
		case "histogram":
			for _, bkt := range s.Buckets {
				fmt.Fprintf(&b, "%s_bucket%s %d\n", s.Name, promLabels(s.Labels, "le", formatFloat(bkt.LE)), bkt.Count)
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", s.Name, promLabels(s.Labels, "le", "+Inf"), s.Count)
			fmt.Fprintf(&b, "%s_sum%s %s\n", s.Name, promLabels(s.Labels), formatFloat(s.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", s.Name, promLabels(s.Labels), s.Count)
		default:
			fmt.Fprintf(&b, "%s%s %s\n", s.Name, promLabels(s.Labels), formatFloat(s.Value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promLabels renders a label set (plus optional extra pair) as
// {k="v",...}, sorted, or "" when empty.
func promLabels(labels map[string]string, extra ...string) string {
	n := len(labels) + len(extra)/2
	if n == 0 {
		return ""
	}
	pairs := make([][2]string, 0, n)
	for k, v := range labels {
		pairs = append(pairs, [2]string{k, v})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
	for i := 0; i+1 < len(extra); i += 2 {
		pairs = append(pairs, [2]string{extra[i], extra[i+1]})
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p[0], p[1])
	}
	b.WriteByte('}')
	return b.String()
}
