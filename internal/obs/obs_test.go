package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "a counter"); again != c {
		t.Fatal("re-registration must return the same counter")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
	if got := r.CounterValue("c_total"); got != 5 {
		t.Fatalf("CounterValue = %d, want 5", got)
	}
	if got := r.GaugeValue("g"); got != 1.5 {
		t.Fatalf("GaugeValue = %g, want 1.5", got)
	}
	if got := r.CounterValue("missing"); got != 0 {
		t.Fatalf("missing counter = %d, want 0", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{1, 2, 4, 8})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %g, want 0", got)
	}
	// 100 observations uniform in (0,1]: every one lands in the first
	// bucket, so quantiles interpolate inside [0,1].
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if p50 := h.Quantile(0.5); math.Abs(p50-0.5) > 1e-9 {
		t.Fatalf("p50 = %g, want 0.5", p50)
	}
	if p99 := h.Quantile(0.99); math.Abs(p99-0.99) > 1e-9 {
		t.Fatalf("p99 = %g, want 0.99", p99)
	}
	// Overflow saturates at the top bound.
	h.Observe(1e9)
	if top := h.Quantile(1); top != 8 {
		t.Fatalf("overflow quantile = %g, want 8 (top bound)", top)
	}
	if h.Count() != 101 {
		t.Fatalf("count = %d, want 101", h.Count())
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // exactly on a bound: upper-inclusive
	h.Observe(1.5)
	h.Observe(99)
	if got := h.buckets[0].Load(); got != 1 {
		t.Fatalf("bucket le=1 = %d, want 1", got)
	}
	if got := h.buckets[1].Load(); got != 1 {
		t.Fatalf("bucket le=2 = %d, want 1", got)
	}
	if got := h.buckets[2].Load(); got != 1 {
		t.Fatalf("overflow bucket = %d, want 1", got)
	}
}

func TestVecFamilies(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("rpc_total", "rpcs", "handler")
	v.With("scheduler").Add(3)
	v.With("upload").Inc()
	v.With("scheduler").Inc()
	if got := r.CounterValue("rpc_total", "scheduler"); got != 4 {
		t.Fatalf("scheduler count = %d, want 4", got)
	}
	hv := r.HistogramVec("rpc_seconds", "rpc latency", []float64{1, 10}, "handler")
	hv.With("scheduler").Observe(0.5)
	if h := r.FindHistogram("rpc_seconds", "scheduler"); h == nil || h.Count() != 1 {
		t.Fatalf("FindHistogram = %v", h)
	}
	if h := r.FindHistogram("rpc_seconds", "nope"); h != nil {
		t.Fatal("FindHistogram must not create children")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("type-mismatched re-registration must panic")
		}
	}()
	r.Gauge("rpc_total", "oops")
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "counts a").Add(7)
	r.CounterVec("b_total", "counts b", "k").With(`va"l`).Inc()
	r.Histogram("h_seconds", "h", []float64{1, 2}).Observe(1.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP a_total counts a\n# TYPE a_total counter\na_total 7\n",
		"b_total{k=\"va\\\"l\"} 1\n",
		"# TYPE h_seconds histogram\n",
		`h_seconds_bucket{le="1"} 0`,
		`h_seconds_bucket{le="2"} 1`,
		`h_seconds_bucket{le="+Inf"} 1`,
		"h_seconds_sum 1.5\nh_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Deterministic: two renderings are identical.
	var buf2 bytes.Buffer
	r.WritePrometheus(&buf2)
	if buf.String() != buf2.String() {
		t.Fatal("prometheus rendering is not deterministic")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(2)
	r.Histogram("h_seconds", "", []float64{1}).Observe(0.5)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("snapshot must be JSON-encodable (no Inf/NaN): %v", err)
	}
	var back []MetricSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("snapshot entries = %d, want 2", len(back))
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total", "").Inc()
				r.HistogramVec("h_seconds", "", nil, "k").With("x").Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.CounterValue("c_total"); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.FindHistogram("h_seconds", "x").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestTracer(t *testing.T) {
	var jsonl bytes.Buffer
	tr := NewTracer(&jsonl)
	tr.Record(SpanEvent{WU: 1, Kind: KindCreated, T: 0, Name: "e0s0"})
	tr.Record(SpanEvent{WU: 1, Kind: KindAssigned, T: 2.5, Client: "c1", Result: 10})
	tr.Record(SpanEvent{WU: 2, Kind: KindCreated, T: 0, Name: "e0s1"})
	tr.Record(SpanEvent{WU: 1, Kind: KindValidated, T: 9, Client: "c1", Result: 10})

	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	sp, ok := tr.Span(1)
	if !ok || sp.Name != "e0s0" || len(sp.Events) != 3 {
		t.Fatalf("Span(1) = %+v, %v", sp, ok)
	}
	if at, ok := sp.At(KindAssigned); !ok || at != 2.5 {
		t.Fatalf("At(assigned) = %g, %v", at, ok)
	}
	if n := sp.Count(KindValidated); n != 1 {
		t.Fatalf("Count(validated) = %d", n)
	}
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].WU != 1 || spans[1].WU != 2 {
		t.Fatalf("Spans order wrong: %+v", spans)
	}

	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("JSONL lines = %d, want 4", len(lines))
	}
	var ev SpanEvent
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.WU != 1 || ev.Kind != KindAssigned || ev.Client != "c1" {
		t.Fatalf("JSONL event = %+v", ev)
	}
	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}

	// A nil tracer ignores everything.
	var nilT *Tracer
	nilT.Record(SpanEvent{WU: 1, Kind: KindCreated})
	if nilT.Len() != 0 || nilT.Err() != nil {
		t.Fatal("nil tracer must be inert")
	}
}

func TestLogger(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Debug("hidden")
	l.Info("client joined", "client", "c1", "slots", 2)
	l.Warn("upload failed", "err", "connection refused: retry 3")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("debug line leaked below min level:\n%s", out)
	}
	if !strings.Contains(out, "level=info msg=\"client joined\" client=c1 slots=2") {
		t.Fatalf("info line malformed:\n%s", out)
	}
	if !strings.Contains(out, `err="connection refused: retry 3"`) {
		t.Fatalf("values with spaces must be quoted:\n%s", out)
	}
	var nilL *Logger
	nilL.Warn("must not panic")
	if nilL.Enabled(LevelWarn) {
		t.Fatal("nil logger must report disabled")
	}
}
