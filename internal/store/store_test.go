package store

import (
	"encoding/binary"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestEventualBasicSetGet(t *testing.T) {
	e := NewEventual(3, 0, 1)
	if _, _, err := e.Get("k"); err != ErrNotFound {
		t.Fatalf("Get missing = %v, want ErrNotFound", err)
	}
	if err := e.Set("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ver, err := e.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "v1" || ver != 1 {
		t.Fatalf("Get = %q v%d", v, ver)
	}
}

func TestEventualGetReturnsCopy(t *testing.T) {
	e := NewEventual(1, 0, 1)
	e.Set("k", []byte("abc"))
	v, _, _ := e.Get("k")
	v[0] = 'X'
	v2, _, _ := e.Get("k")
	if string(v2) != "abc" {
		t.Fatal("Get must return a private copy")
	}
}

func TestEventualStaleReads(t *testing.T) {
	// With a big replication lag and several replicas, reads right after a
	// burst of writes should sometimes observe old versions.
	e := NewEventual(4, 12, 42)
	for i := 0; i < 3; i++ {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(i))
		e.Set("k", b[:])
	}
	stale := 0
	for i := 0; i < 200; i++ {
		_, ver, err := e.Get("k")
		if err != nil {
			t.Fatal(err)
		}
		if ver < 3 {
			stale++
		}
	}
	if stale == 0 {
		t.Fatal("expected some stale reads with lagging replicas")
	}
	if e.Stats().StaleReads == 0 {
		t.Fatal("StaleReads counter not incremented")
	}
}

func TestEventualLostUpdatesUnderConcurrency(t *testing.T) {
	// 8 goroutines × 50 increments with optimistic RMW on a counter: the
	// final value must be below 400 (lost updates) and the counter must
	// record them. This is the §III-D behaviour the paper trades for
	// scalability.
	e := NewEventual(1, 0, 7)
	e.Set("n", make([]byte, 8))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				e.Update("n", func(old []byte) []byte {
					v := binary.LittleEndian.Uint64(old)
					nb := make([]byte, 8)
					binary.LittleEndian.PutUint64(nb, v+1)
					return nb
				})
			}
		}()
	}
	wg.Wait()
	v, _, _ := e.Get("n")
	got := binary.LittleEndian.Uint64(v)
	st := e.Stats()
	if got+st.LostUpdates != 400 {
		t.Fatalf("increments %d + lost %d != 400", got, st.LostUpdates)
	}
	if st.LostUpdates == 0 {
		t.Log("no lost updates this run (timing-dependent); counters still consistent")
	}
}

func TestStrongNoLostUpdatesUnderConcurrency(t *testing.T) {
	s := NewStrong()
	s.Set("n", make([]byte, 8))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Update("n", func(old []byte) []byte {
					v := binary.LittleEndian.Uint64(old)
					nb := make([]byte, 8)
					binary.LittleEndian.PutUint64(nb, v+1)
					return nb
				})
			}
		}()
	}
	wg.Wait()
	v, _, _ := s.Get("n")
	if got := binary.LittleEndian.Uint64(v); got != 400 {
		t.Fatalf("strong store lost updates: %d != 400", got)
	}
	if !s.VerifyWAL() {
		t.Fatal("WAL not serializable")
	}
	// 1 initial Set + 400 updates
	if s.WALLen() != 401 {
		t.Fatalf("WALLen = %d, want 401", s.WALLen())
	}
}

func TestStrongGetMissing(t *testing.T) {
	s := NewStrong()
	if _, _, err := s.Get("missing"); err != ErrNotFound {
		t.Fatalf("err = %v", err)
	}
}

func TestStrongVersionsMonotonic(t *testing.T) {
	s := NewStrong()
	var prev uint64
	for i := 0; i < 10; i++ {
		s.Set("k", []byte{byte(i)})
		_, ver, err := s.Get("k")
		if err != nil {
			t.Fatal(err)
		}
		if ver <= prev {
			t.Fatalf("version not monotonic: %d after %d", ver, prev)
		}
		prev = ver
	}
}

// TestLatencyCalibrationMatchesPaper verifies the modeled per-update cost
// of a 21.2 MB blob is ≈0.87 s for the eventual store and ≈1.29 s for the
// strong store, the paper's measured numbers, with the strong/eventual
// ratio ≈1.5×.
func TestLatencyCalibrationMatchesPaper(t *testing.T) {
	const blob = 21_200_000 // 21.2 MB compressed parameter file
	// An update is Get + Set of the blob.
	ev := 2 * EventualProfile.Cost(blob)
	st := 2 * StrongProfile.Cost(blob)
	if ev < 800*time.Millisecond || ev > 940*time.Millisecond {
		t.Fatalf("eventual update cost %v, want ≈870 ms", ev)
	}
	if st < 1200*time.Millisecond || st > 1380*time.Millisecond {
		t.Fatalf("strong update cost %v, want ≈1290 ms", st)
	}
	ratio := float64(st) / float64(ev)
	if ratio < 1.35 || ratio > 1.65 {
		t.Fatalf("strong/eventual ratio %.2f, want ≈1.5", ratio)
	}
}

func TestModeledTimeAccumulates(t *testing.T) {
	e := NewEventual(1, 0, 1)
	e.Set("k", make([]byte, 1000))
	e.Get("k")
	if e.Stats().ModeledTime <= 0 {
		t.Fatal("ModeledTime not accumulated")
	}
	s := NewStrong()
	s.Update("k", func([]byte) []byte { return make([]byte, 10) })
	if s.Stats().ModeledTime <= 0 {
		t.Fatal("strong ModeledTime not accumulated")
	}
}

func TestStatsCounting(t *testing.T) {
	e := NewEventual(2, 0, 3)
	e.Set("a", []byte("xy"))
	e.Get("a")
	e.Update("a", func(old []byte) []byte { return append(old, 'z') })
	st := e.Stats()
	if st.Sets != 2 { // Set + the write half of Update
		t.Fatalf("Sets = %d, want 2", st.Sets)
	}
	if st.Gets != 2 { // Get + the read half of Update
		t.Fatalf("Gets = %d, want 2", st.Gets)
	}
	if st.Updates != 1 {
		t.Fatalf("Updates = %d, want 1", st.Updates)
	}
	if st.BytesWritten != 2+3 {
		t.Fatalf("BytesWritten = %d, want 5", st.BytesWritten)
	}
}

// Property: for any single-goroutine sequence of Set/Update operations the
// two backends converge to identical final values (consistency models only
// diverge under concurrency or replica lag).
func TestBackendsAgreeSequentiallyProperty(t *testing.T) {
	f := func(ops []byte) bool {
		e := NewEventual(1, 0, 5)
		s := NewStrong()
		apply := func(st Store, op byte) {
			switch op % 3 {
			case 0:
				st.Set("k", []byte{op})
			case 1:
				st.Update("k", func(old []byte) []byte { return append(old, op) })
			case 2:
				st.Get("k")
			}
		}
		for _, op := range ops {
			apply(e, op)
			apply(s, op)
		}
		ev, _, eerr := e.Get("k")
		sv, _, serr := s.Get("k")
		if (eerr == ErrNotFound) != (serr == ErrNotFound) {
			return false
		}
		if eerr == ErrNotFound {
			return true
		}
		if len(ev) != len(sv) {
			return false
		}
		for i := range ev {
			if ev[i] != sv[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
