package store

import (
	"encoding/binary"
	"hash/crc32"
	"sync"
)

// Strong is the MySQL stand-in: a strongly consistent store in which every
// write is a serializable transaction. A single global commit lock orders
// all read-modify-write cycles (no lost updates, ever) and each commit
// appends a checksummed record to an in-memory write-ahead log, modelling
// the durability work a relational engine performs per transaction.
type Strong struct {
	Profile LatencyProfile

	mu   sync.Mutex
	data map[string]entry
	wal  []walRecord

	counter counter
}

// walRecord is one committed transaction in the write-ahead log.
type walRecord struct {
	seq uint64
	key string
	crc uint32
	n   int
}

// NewStrong creates a strongly consistent store.
func NewStrong() *Strong {
	return &Strong{
		Profile: StrongProfile,
		data:    make(map[string]entry),
	}
}

// Name implements Store.
func (s *Strong) Name() string { return "strong" }

// Get implements Store: reads are always current.
func (s *Strong) Get(key string) ([]byte, uint64, error) {
	s.mu.Lock()
	ent, ok := s.data[key]
	s.mu.Unlock()
	if !ok {
		return nil, 0, ErrNotFound
	}
	s.counter.add(func(st *Stats) {
		st.Gets++
		st.BytesRead += uint64(len(ent.value))
		st.ModeledTime += s.Profile.Cost(len(ent.value))
	})
	return append([]byte(nil), ent.value...), ent.version, nil
}

// Set implements Store as a single-key transaction.
func (s *Strong) Set(key string, value []byte) error {
	v := append([]byte(nil), value...)
	s.mu.Lock()
	s.commitLocked(key, v)
	s.mu.Unlock()
	s.counter.add(func(st *Stats) {
		st.Sets++
		st.BytesWritten += uint64(len(v))
		st.ModeledTime += s.Profile.Cost(len(v))
	})
	return nil
}

// commitLocked applies a write and appends the WAL record. Callers hold mu.
func (s *Strong) commitLocked(key string, v []byte) {
	ver := s.data[key].version + 1
	s.data[key] = entry{value: v, version: ver}
	var seqb [8]byte
	binary.LittleEndian.PutUint64(seqb[:], ver)
	crc := crc32.NewIEEE()
	crc.Write(seqb[:])
	crc.Write([]byte(key))
	crc.Write(v)
	s.wal = append(s.wal, walRecord{seq: ver, key: key, crc: crc.Sum32(), n: len(v)})
}

// Update implements Store as a serializable read-modify-write transaction:
// the global lock is held across the whole cycle, so concurrent updates
// apply in a serial order and no update is lost.
func (s *Strong) Update(key string, f func(old []byte) []byte) error {
	s.mu.Lock()
	old := s.data[key].value
	nv := f(append([]byte(nil), old...))
	s.commitLocked(key, append([]byte(nil), nv...))
	s.mu.Unlock()
	s.counter.add(func(st *Stats) {
		st.Updates++
		st.Sets++
		st.Gets++
		st.BytesRead += uint64(len(old))
		st.BytesWritten += uint64(len(nv))
		st.ModeledTime += s.Profile.Cost(len(old)) + s.Profile.Cost(len(nv))
	})
	return nil
}

// WALLen returns the number of committed transactions (for tests and
// reports).
func (s *Strong) WALLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.wal)
}

// VerifyWAL recomputes nothing (values are not retained per record) but
// checks the log is strictly ordered per key — the serializability witness.
func (s *Strong) VerifyWAL() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	last := make(map[string]uint64)
	for _, r := range s.wal {
		if r.seq != last[r.key]+1 {
			return false
		}
		last[r.key] = r.seq
	}
	return true
}

// Stats implements Store.
func (s *Strong) Stats() Stats { return s.counter.snapshot() }
