package store

import (
	"math/rand"
	"sync"
)

// Eventual is the Redis stand-in: a main-memory key-value store with a
// primary and ReplicaCount asynchronously updated replicas. A read is
// served by a randomly chosen replica; replica i trails the primary by
// i·ReplicaLagOps/ReplicaCount committed writes, so reads may observe
// stale versions. Update performs an optimistic, lock-free
// read-modify-write: under concurrency, two updates may read the same base
// version and the second write silently discards the first (a lost
// update), which is exactly the behaviour the paper accepts in exchange
// for scalability (§III-D).
type Eventual struct {
	Profile       LatencyProfile
	ReplicaCount  int
	ReplicaLagOps int

	mu      sync.RWMutex
	history map[string][]entry // most recent last; trimmed to max lag+1
	rng     *rand.Rand
	rngMu   sync.Mutex

	counter counter
}

// NewEventual creates an eventual-consistency store with the given replica
// topology. lagOps is how many committed writes the slowest replica may
// trail by; 0 keeps all replicas synchronous (useful in tests).
func NewEventual(replicas, lagOps int, seed int64) *Eventual {
	if replicas < 1 {
		replicas = 1
	}
	if lagOps < 0 {
		lagOps = 0
	}
	return &Eventual{
		Profile:       EventualProfile,
		ReplicaCount:  replicas,
		ReplicaLagOps: lagOps,
		history:       make(map[string][]entry),
		rng:           rand.New(rand.NewSource(seed)),
	}
}

// Name implements Store.
func (e *Eventual) Name() string { return "eventual" }

// replicaLag returns the write-lag of replica i.
func (e *Eventual) replicaLag(i int) int {
	return i * e.ReplicaLagOps / e.ReplicaCount
}

// Get implements Store: it reads from a random replica, which may serve a
// version up to its lag behind the primary.
func (e *Eventual) Get(key string) ([]byte, uint64, error) {
	e.rngMu.Lock()
	lag := e.replicaLag(e.rng.Intn(e.ReplicaCount))
	e.rngMu.Unlock()

	e.mu.RLock()
	hist := e.history[key]
	var ent entry
	var ok, stale bool
	if len(hist) > 0 {
		idx := len(hist) - 1 - lag
		if idx < 0 {
			idx = 0
		}
		ent, ok = hist[idx], true
		stale = idx != len(hist)-1
	}
	e.mu.RUnlock()
	if !ok {
		return nil, 0, ErrNotFound
	}
	e.counter.add(func(s *Stats) {
		s.Gets++
		if stale {
			s.StaleReads++
		}
		s.BytesRead += uint64(len(ent.value))
		s.ModeledTime += e.Profile.Cost(len(ent.value))
	})
	return append([]byte(nil), ent.value...), ent.version, nil
}

// Set implements Store. The write commits on the primary immediately;
// replicas observe it later through the retained version history.
func (e *Eventual) Set(key string, value []byte) error {
	e.commit(key, value, nil)
	return nil
}

// commit appends a new version. If base is non-nil it is the version the
// caller's read observed; a mismatch with the current head means a
// concurrent commit slipped in between and is being clobbered — a lost
// update.
func (e *Eventual) commit(key string, value []byte, base *uint64) {
	v := append([]byte(nil), value...)
	var lost bool
	e.mu.Lock()
	hist := e.history[key]
	var cur uint64
	if len(hist) > 0 {
		cur = hist[len(hist)-1].version
	}
	if base != nil && cur != *base {
		lost = true
	}
	hist = append(hist, entry{value: v, version: cur + 1})
	if max := e.ReplicaLagOps + 1; len(hist) > max {
		hist = hist[len(hist)-max:]
	}
	e.history[key] = hist
	e.mu.Unlock()
	e.counter.add(func(s *Stats) {
		s.Sets++
		s.BytesWritten += uint64(len(v))
		if lost {
			s.LostUpdates++
		}
		s.ModeledTime += e.Profile.Cost(len(v))
	})
}

// Update implements Store with optimistic, lossy read-modify-write.
func (e *Eventual) Update(key string, f func(old []byte) []byte) error {
	old, base, err := e.Get(key)
	if err != nil && err != ErrNotFound {
		return err
	}
	e.commit(key, f(old), &base)
	e.counter.add(func(s *Stats) { s.Updates++ })
	return nil
}

// Stats implements Store.
func (e *Eventual) Stats() Stats { return e.counter.snapshot() }
