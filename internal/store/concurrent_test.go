package store

import (
	"encoding/binary"
	"sync"
	"testing"
)

// Concurrency contracts under the race detector: Strong serializes
// read-modify-write cycles (no lost updates, WAL strictly ordered);
// Eventual stays memory-safe but is allowed — expected, even — to lose
// updates in optimistic RMW races.

func encCounter(n uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], n)
	return b[:]
}

func decCounter(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func TestStrongSerializableUnderConcurrency(t *testing.T) {
	const writers, perWriter = 8, 200
	s := NewStrong()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := s.Update("counter", func(old []byte) []byte {
					return encCounter(decCounter(old) + 1)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	val, ver, err := s.Get("counter")
	if err != nil {
		t.Fatal(err)
	}
	if got := decCounter(val); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d (lost updates in a strong store)", got, writers*perWriter)
	}
	if ver != writers*perWriter {
		t.Fatalf("version = %d, want %d", ver, writers*perWriter)
	}
	if s.WALLen() != writers*perWriter {
		t.Fatalf("WAL has %d records, want %d", s.WALLen(), writers*perWriter)
	}
	if !s.VerifyWAL() {
		t.Fatal("WAL is not strictly ordered per key")
	}
	if st := s.Stats(); st.LostUpdates != 0 {
		t.Fatalf("strong store reported %d lost updates", st.LostUpdates)
	}
}

func TestStrongConcurrentMultiKey(t *testing.T) {
	const writers, perWriter = 6, 100
	s := NewStrong()
	keys := []string{"model/params", "model/checkpoint", "aux"}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := keys[w%len(keys)]
			for i := 0; i < perWriter; i++ {
				s.Update(key, func(old []byte) []byte {
					return encCounter(decCounter(old) + 1)
				})
			}
		}(w)
	}
	wg.Wait()
	if !s.VerifyWAL() {
		t.Fatal("multi-key WAL not strictly ordered per key")
	}
	total := uint64(0)
	for _, k := range keys {
		v, _, err := s.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		total += decCounter(v)
	}
	if total != writers*perWriter {
		t.Fatalf("sum over keys = %d, want %d", total, writers*perWriter)
	}
}

func TestEventualLastWriteWinsRace(t *testing.T) {
	const writers, perWriter = 8, 200
	e := NewEventual(3, 4, 42)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := e.Update("counter", func(old []byte) []byte {
					return encCounter(decCounter(old) + 1)
				}); err != nil && err != ErrNotFound {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	val, ver, err := e.Get("counter")
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	got := decCounter(val)
	// Optimistic lossy RMW: the observable count plus detected lost
	// updates can never exceed the attempted total, and the version
	// counter must record every commit (nothing vanishes silently —
	// clobbered writes are *detected*, which is what LostUpdates means).
	if got > writers*perWriter {
		t.Fatalf("counter = %d, above attempted total %d", got, writers*perWriter)
	}
	if ver == 0 || ver > writers*perWriter {
		t.Fatalf("version = %d out of range (stale replica read is fine, future is not)", ver)
	}
	if st.Updates != writers*perWriter {
		t.Fatalf("Updates = %d, want %d", st.Updates, writers*perWriter)
	}
	t.Logf("eventual race: final=%d lost=%d stale=%d (attempted %d)",
		got, st.LostUpdates, st.StaleReads, writers*perWriter)
}

func TestEventualConcurrentReadersAndWriters(t *testing.T) {
	e := NewEventual(4, 8, 7)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if v, _, err := e.Get("k"); err == nil && len(v) != 8 {
					t.Errorf("torn read: %d bytes", len(v))
					return
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				e.Set("k", encCounter(uint64(w*1000+i)))
			}
		}(w)
	}
	// Writers finish first; then release the readers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for i := 0; i < 4*300; i++ {
		// Spin until writer goroutines drain (bounded by the loop above).
		select {
		case <-done:
			i = 4 * 300
		default:
		}
	}
	close(stop)
	<-done
}
