// Package store provides the shared parameter storage used by the
// parameter servers. The paper stores the central model parameters as a
// single value and compares two backends: Redis, a main-memory eventual
// consistency key-value store, and MySQL, a strong consistency relational
// database (§III-D, §IV-D). This package implements both semantics:
//
//   - Eventual: asynchronously replicated last-write-wins store. Reads may
//     observe stale replicas and unsynchronized read-modify-write cycles
//     can lose updates — which the paper argues distributed training
//     tolerates.
//   - Strong: a serializable store with a global commit lock and a
//     write-ahead log, so concurrent read-modify-write transactions apply
//     in a serial order and nothing is lost — at a higher per-update cost.
//
// Both implement Store, so parameter servers are backend-agnostic. A
// LatencyProfile attaches a calibrated virtual cost to each operation; the
// experiment harness uses those costs to reproduce the paper's
// 0.87 s (Redis) vs 1.29 s (MySQL) per-update comparison without a real
// database server.
package store

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrNotFound is returned by Get for missing keys.
var ErrNotFound = errors.New("store: key not found")

// Store is a key-value parameter store. Values are opaque blobs; the
// parameter server stores all model parameters under one key, exactly as
// the paper stores the whole model as a single Redis value / MySQL
// LONGBLOB.
type Store interface {
	// Name identifies the backend ("eventual" or "strong").
	Name() string
	// Get returns the current value of key (possibly stale for eventual
	// stores) and its version.
	Get(key string) (value []byte, version uint64, err error)
	// Set unconditionally writes value (last write wins).
	Set(key string, value []byte) error
	// Update performs a read-modify-write cycle using the backend's
	// native concurrency semantics: serializable for Strong (no lost
	// updates), optimistic and lossy for Eventual.
	Update(key string, f func(old []byte) []byte) error
	// Stats returns operation counters accumulated so far.
	Stats() Stats
}

// Stats counts store activity and the modeled (virtual) time spent.
type Stats struct {
	Gets, Sets, Updates uint64
	BytesRead           uint64
	BytesWritten        uint64
	LostUpdates         uint64 // RMW cycles whose write clobbered a concurrent write
	StaleReads          uint64 // reads served from a lagging replica
	ModeledTime         time.Duration
}

// LatencyProfile is the virtual cost model of one backend, calibrated so a
// 21.2 MB parameter blob costs what the paper measured per update
// transaction.
type LatencyProfile struct {
	PerOp   time.Duration // fixed cost per operation (parse, lock, log)
	PerByte time.Duration // marginal cost per payload byte
}

// Cost returns the modeled duration of one operation moving n bytes.
func (p LatencyProfile) Cost(n int) time.Duration {
	return p.PerOp + time.Duration(n)*p.PerByte
}

// Calibrated latency profiles. The paper's measured per-update transaction
// times are 0.87 s (Redis) and 1.29 s (MySQL) for a 21.2 MB compressed
// blob; an update is one read-modify-write (Get + Set), so each operation
// is budgeted at half the measured transaction, split between a fixed
// overhead and a per-byte component. MySQL's higher fixed share models the
// commit/locking path of a strongly consistent engine.
var (
	// EventualProfile calibrates to ≈0.87 s per 21.2 MB update.
	EventualProfile = LatencyProfile{PerOp: 50 * time.Millisecond, PerByte: 18 * time.Nanosecond}
	// StrongProfile calibrates to ≈1.29 s per 21.2 MB update (≈1.5×).
	StrongProfile = LatencyProfile{PerOp: 145 * time.Millisecond, PerByte: 24 * time.Nanosecond}
)

// entry is a versioned value.
type entry struct {
	value   []byte
	version uint64
}

// counter is a small mutex-protected Stats accumulator shared by backends.
type counter struct {
	mu sync.Mutex
	s  Stats
}

func (c *counter) add(f func(*Stats)) {
	c.mu.Lock()
	f(&c.s)
	c.mu.Unlock()
}

func (c *counter) snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s
}

// ByName constructs a backend by its Name: "eventual" (the default when
// name is empty — one replica, no lag, like the paper's single Redis
// node) or "strong". seed feeds the eventual store's replica-routing
// RNG and is ignored by the strong store.
func ByName(name string, seed int64) (Store, error) {
	switch name {
	case "", "eventual":
		return NewEventual(1, 0, seed), nil
	case "strong":
		return NewStrong(), nil
	}
	return nil, fmt.Errorf("store: unknown backend %q (want eventual or strong)", name)
}
