package scenario

import (
	"strings"
	"testing"
)

// churnScenario exercises every event type in one short run.
const churnScenario = `
scenario churn-test
description Joins, leaves, storm, outage, straggler, failover, hot config.

fleet:
  pservers 2
  clients 3
  tasks 2
  epochs 3
  seed 5
  timeout 8m
  regions us-east us-west

events:
  at 2m  join 2 clientB us-west
  at 3m  slow 0 3.0
  at 4m  preempt 0.3
  at 5m  outage us-west 5s
  at 6m  ps-fail 1
  at 8m  set timeout 6m
  at 8m  set floor 0.7
  at 12m ps-recover 1
  at 14m recover us-west
  at 16m preempt 0
  at 20m leave 2

assert:
  epochs == 3
  final_accuracy >= 0.05
  timeouts >= 1
  hours <= 24
  wallclock_seconds <= 300
`

func loadChurn(t *testing.T) *Scenario {
	t.Helper()
	sc, err := Parse(strings.NewReader(churnScenario), "churn.txt")
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestRunScenarioEndToEnd(t *testing.T) {
	rep, err := RunScenario(loadChurn(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("assertions failed:\n%s", rep.Summary())
	}
	if len(rep.Checks) != 5 {
		t.Fatalf("checked %d assertions, want 5", len(rep.Checks))
	}
	// Every event plus the header and the closing summary must be traced.
	if len(rep.Trace) != len(rep.Scenario.Events)+2 {
		t.Fatalf("trace has %d lines, want %d:\n%s",
			len(rep.Trace), len(rep.Scenario.Events)+2, strings.Join(rep.Trace, "\n"))
	}
	for _, want := range []string{"join 2 clients", "preemption storm p=0.3", "outage", "failover", "timeout -> 6m", "leave 2 clients"} {
		if !strings.Contains(strings.Join(rep.Trace, "\n"), want) {
			t.Errorf("trace missing %q:\n%s", want, strings.Join(rep.Trace, "\n"))
		}
	}
}

// TestScenarioDeterminism is the subsystem's core contract: the same
// scenario and seed produce an identical event trace and metrics.
func TestScenarioDeterminism(t *testing.T) {
	a, err := RunScenario(loadChurn(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(loadChurn(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("trace line %d differs:\n%s\n%s", i, a.Trace[i], b.Trace[i])
		}
	}
	ra, rb := a.Result, b.Result
	if ra.Hours != rb.Hours || ra.Issued != rb.Issued || ra.Reissued != rb.Reissued ||
		ra.Timeouts != rb.Timeouts || ra.BytesDownloaded != rb.BytesDownloaded {
		t.Fatalf("metrics differ: %+v vs %+v", ra, rb)
	}
	for i := range ra.Curve.Points {
		if ra.Curve.Points[i] != rb.Curve.Points[i] {
			t.Fatalf("curve point %d differs", i)
		}
	}

	// A different seed must still run, and (for this workload) produce a
	// different event interleaving somewhere in virtual time.
	seed := int64(99)
	c, err := RunScenario(loadChurn(t), Options{Seed: &seed})
	if err != nil {
		t.Fatal(err)
	}
	if c.Result.Hours == a.Result.Hours {
		t.Logf("note: seeds 5 and 99 coincide on Hours=%v (unlikely but not fatal)", c.Result.Hours)
	}
}

func TestRunScenarioFailingAssertions(t *testing.T) {
	sc, err := Parse(strings.NewReader(`
scenario impossible
fleet:
  clients 2
  epochs 2
assert:
  final_accuracy >= 0.999
  hours <= 0.001
`), "impossible.txt")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("impossible assertions passed")
	}
	sum := rep.Summary()
	if !strings.Contains(sum, "FAIL") || !strings.Contains(sum, "0/2 assertions passed") {
		t.Fatalf("summary does not report failures:\n%s", sum)
	}
}
