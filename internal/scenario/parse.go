package scenario

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"vcdl/internal/boinc"
	"vcdl/internal/cloud"
	"vcdl/internal/core"
)

// The scenario file format is a small line-oriented language designed to
// be written by hand (no external parser dependencies):
//
//	# comment                       (blank lines ignored; '#' to EOL)
//	scenario preemption-storm
//	description What this scenario tests.
//
//	fleet:
//	  workload quick                # quick (default) | paper
//	  pservers 2
//	  clients 4                     # round-robin Table-I client types
//	  clients 4 clientB             # ... or all one type
//	  tasks 2                       # simultaneous subtasks per client
//	  epochs 4
//	  subtasks 10
//	  seed 7
//	  timeout 20m
//	  regions us-east us-west
//	  sticky off
//	  procs on                      # real mode: clients as OS processes
//	  blobs on                      # real mode: content-addressed data plane
//	  checkpoints on                # real mode: durable PS checkpoints
//	  store strong                  # real mode: eventual (default) | strong
//	  autoscale on 8
//	  target-accuracy 0.8
//	  policy fifo                   # scheduling policy (boinc.PolicyNames)
//	  policy random 7               # ... with arguments
//	  compute cached                # compute backend (core.BackendNames)
//	  compute parallel+cached 8     # ... with a worker-pool size
//	  replicate 2                   # issue 2 copies of every subtask
//	  byzantine 2 wrong-result      # first 2 clients are adversarial
//	                                # (wrong-result | spoof | deadline-game)
//
//	events:
//	  at 10m  preempt 0.35          # storm start (p per subtask)
//	  at 50m  preempt 0             # storm end
//	  at 5m   join 2 clientB us-west
//	  at 40m  leave 2               # most recent joiners depart first
//	  at 42m  detach 1              # graceful departure (real mode only)
//	  at 50m  rejoin 1              # revive departed client, warm blob cache
//	  at 12m  blob-kill 8000        # sever blob transfers after 8000 bytes
//	  at 25m  blob-kill off         # ... and disarm (both real mode only)
//	  at 20m  outage us-west 5s     # region RTT spikes to 5 s
//	  at 45m  recover us-west
//	  at 5m   slow 0 4.0            # straggler: client #0 runs 4x slower
//	  at 15m  ps-fail 1             # parameter-server failover
//	  at 30m  ps-recover 1
//	  at 15m  set timeout 10m       # scheduler hot reconfiguration
//	  at 15m  set floor 0.8
//	  at 20m  policy deadline-aware # hot-swap the scheduling policy
//	  at 10m  cordon client-01-client-8x2.5    # quarantine: no new work
//	  at 30m  uncordon client-01-client-8x2.5  # release the quarantine
//	  at 12m  byzantine client-00-client-8x2.2 spoof  # turn adversarial
//	  at 24m  byzantine client-00-client-8x2.2 off    # honest again
//
//	assert:
//	  final_accuracy >= 0.35
//	  accuracy@1h >= 0.1
//	  epochs == 4
//	  hours <= 12
//	  reissued <= 400
//	  wallclock_seconds <= 120
//	  blob_resumes > 0              # real-mode data-plane/checkpoint metrics
//	  blob_cache_hits > 0
//	  blob_mb <= 64
//	  ckpt_epoch >= 2
//	  ckpt_restores >= 1
//	  invalid_results > 0           # Byzantine damage (both modes)
//	  quorum_retries > 0
//
// Durations accept s/m/h suffixes (bare numbers are seconds). Events
// must be listed in time order.

// parser accumulates state and errors across lines.
type parser struct {
	src     string
	sc      *Scenario
	section string
	errs    []string
}

func (p *parser) errorf(line int, format string, args ...any) {
	p.errs = append(p.errs, fmt.Sprintf("%s:%d: %s", p.src, line, fmt.Sprintf(format, args...)))
}

// Parse reads a scenario from r; src names the source (for error
// messages). All syntax errors in the file are reported at once.
func Parse(r io.Reader, src string) (*Scenario, error) {
	p := &parser{src: src, sc: &Scenario{}}
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		raw := strings.TrimSpace(scanner.Text())
		line := raw
		if i := strings.Index(line, "#"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		// description lines keep their raw text ('#' is not a comment
		// marker there, so "clients #0 and #1" survives).
		if p.section == "" {
			if first := strings.Fields(raw); len(first) > 0 &&
				strings.ToLower(strings.TrimSuffix(first[0], ":")) == "description" {
				p.sc.Description = strings.TrimSpace(raw[len(first[0]):])
				continue
			}
		}
		p.line(lineNo, line)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", src, err)
	}
	if len(p.errs) > 0 {
		return nil, fmt.Errorf("%s", strings.Join(p.errs, "\n"))
	}
	return p.sc, nil
}

// ParseFile loads and parses one scenario file.
func ParseFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f, path)
}

// Load parses and validates a scenario file.
func Load(path string) (*Scenario, error) {
	sc, err := ParseFile(path)
	if err != nil {
		return nil, err
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

func (p *parser) line(n int, line string) {
	fields := strings.Fields(line)
	head := strings.ToLower(strings.TrimSuffix(fields[0], ":"))
	switch head {
	case "fleet", "events", "assert":
		if len(fields) > 1 {
			p.errorf(n, "section header %q takes no arguments", head)
		}
		p.section = head
		return
	}
	switch p.section {
	case "":
		p.header(n, head, fields)
	case "fleet":
		p.fleetLine(n, head, fields)
	case "events":
		p.eventLine(n, fields)
	case "assert":
		p.assertLine(n, line, fields)
	}
}

func (p *parser) header(n int, head string, fields []string) {
	switch head {
	case "scenario":
		if len(fields) != 2 {
			p.errorf(n, "want 'scenario <name>'")
			return
		}
		p.sc.Name = fields[1]
	default:
		p.errorf(n, "unknown directive %q before any section (want scenario/description/fleet/events/assert)", fields[0])
	}
}

func (p *parser) fleetLine(n int, key string, fields []string) {
	args := fields[1:]
	f := &p.sc.Fleet
	switch key {
	case "workload":
		if len(args) != 1 {
			p.errorf(n, "want 'workload quick|paper'")
			return
		}
		f.Workload = strings.ToLower(args[0])
	case "pservers":
		f.PServers = p.intArg(n, key, args)
	case "clients":
		if len(args) < 1 || len(args) > 2 {
			p.errorf(n, "want 'clients <n> [type]'")
			return
		}
		f.Clients = p.intArg(n, key, args[:1])
		if len(args) == 2 {
			if _, ok := instanceByName(args[1]); !ok {
				p.errorf(n, "unknown client type %q", args[1])
			}
			f.ClientType = args[1]
		}
	case "tasks":
		f.Tasks = p.intArg(n, key, args)
	case "epochs":
		f.Epochs = p.intArg(n, key, args)
	case "subtasks":
		f.Subtasks = p.intArg(n, key, args)
	case "seed":
		f.Seed = int64(p.intArg(n, key, args))
	case "timeout":
		f.TimeoutSeconds = p.durArg(n, key, args)
	case "regions":
		if len(args) == 0 {
			p.errorf(n, "want 'regions <region>...'")
			return
		}
		for _, a := range args {
			r, ok := regionByName(a)
			if !ok {
				p.errorf(n, "unknown region %q (want one of %v)", a, cloud.Regions())
				continue
			}
			f.Regions = append(f.Regions, r)
		}
	case "sticky":
		v, ok := p.onOff(n, key, args)
		if ok {
			f.StickyOff = !v
		}
	case "procs":
		v, ok := p.onOff(n, key, args)
		if ok {
			f.Procs = v
		}
	case "blobs":
		v, ok := p.onOff(n, key, args)
		if ok {
			f.Blobs = v
		}
	case "checkpoints":
		v, ok := p.onOff(n, key, args)
		if ok {
			f.Checkpoint = v
		}
	case "store":
		if len(args) != 1 {
			p.errorf(n, "want 'store eventual|strong'")
			return
		}
		switch strings.ToLower(args[0]) {
		case "eventual", "strong":
			f.StoreKind = strings.ToLower(args[0])
		default:
			p.errorf(n, "unknown store %q (want eventual or strong)", args[0])
		}
	case "autoscale":
		if len(args) < 1 || len(args) > 2 {
			p.errorf(n, "want 'autoscale on|off [max]'")
			return
		}
		v, ok := p.onOff(n, key, args[:1])
		if ok {
			f.AutoScale = v
		}
		if len(args) == 2 {
			f.MaxPServers = p.intArg(n, key, args[1:])
		}
	case "target-accuracy":
		f.TargetAccuracy = p.floatArg(n, key, args)
	case "policy":
		if len(args) < 1 {
			p.errorf(n, "want 'policy <name> [args...]'")
			return
		}
		if _, err := boinc.NewPolicy(args[0], args[1:]...); err != nil {
			p.errorf(n, "%v", err)
			return
		}
		f.Policy = args
	case "compute":
		if len(args) < 1 || len(args) > 2 {
			p.errorf(n, "want 'compute <backend> [workers]'")
			return
		}
		if err := core.ValidateBackendSpec(args[0]); err != nil {
			p.errorf(n, "%v", err)
			return
		}
		f.Compute = args[0]
		if len(args) == 2 {
			f.ComputeWorkers = p.intArg(n, key, args[1:])
		}
	case "replicate":
		before := len(p.errs)
		v := p.intArg(n, key, args)
		if len(p.errs) > before {
			return // intArg already reported
		}
		if v < 1 {
			p.errorf(n, "bad replicate value %d (want >= 1)", v)
			return
		}
		f.Replication = v
	case "shards":
		before := len(p.errs)
		v := p.intArg(n, key, args)
		if len(p.errs) > before {
			return
		}
		if v < 1 {
			p.errorf(n, "bad shards value %d (want >= 1)", v)
			return
		}
		f.Shards = v
	case "admission":
		if len(args) != 2 {
			p.errorf(n, "want 'admission <max-concurrent> <max-queue>'")
			return
		}
		mc, err1 := strconv.Atoi(args[0])
		mq, err2 := strconv.Atoi(args[1])
		if err1 != nil || mc < 1 {
			p.errorf(n, "bad admission max-concurrent %q (want >= 1)", args[0])
			return
		}
		if err2 != nil || mq < 0 {
			p.errorf(n, "bad admission max-queue %q (want >= 0)", args[1])
			return
		}
		f.AdmitMax, f.AdmitQueue = mc, mq
	case "byzantine":
		if len(args) != 2 {
			p.errorf(n, "want 'byzantine <n> <behavior>' (behaviors: %v)", boinc.ByzantineBehaviors)
			return
		}
		cnt, err := strconv.Atoi(args[0])
		if err != nil || cnt < 1 {
			p.errorf(n, "bad byzantine count %q", args[0])
			return
		}
		behavior := strings.ToLower(args[1])
		if !boinc.ValidByzantine(behavior) {
			p.errorf(n, "unknown byzantine behavior %q (want one of %v)", args[1], boinc.ByzantineBehaviors)
			return
		}
		f.ByzantineCount = cnt
		f.Byzantine = behavior
	default:
		p.errorf(n, "unknown fleet key %q", key)
	}
}

func (p *parser) eventLine(n int, fields []string) {
	if strings.ToLower(fields[0]) != "at" || len(fields) < 3 {
		p.errorf(n, "want 'at <time> <event> ...'")
		return
	}
	at, err := parseDuration(fields[1])
	if err != nil {
		p.errorf(n, "bad event time %q: %v", fields[1], err)
		return
	}
	verb := strings.ToLower(fields[2])
	args := fields[3:]
	bad := func(usage string) {
		p.errorf(n, "want 'at <time> %s'", usage)
	}
	switch verb {
	case "join":
		// join <n> <type|mixed> [region]
		if len(args) < 2 || len(args) > 3 {
			bad("join <n> <type|mixed> [region]")
			return
		}
		cnt, err := strconv.Atoi(args[0])
		if err != nil || cnt < 1 {
			p.errorf(n, "bad join count %q", args[0])
			return
		}
		ev := joinEvent{at: at, n: cnt, region: cloud.USEast}
		if strings.EqualFold(args[1], "mixed") {
			ev.mixed = true
		} else {
			it, ok := instanceByName(args[1])
			if !ok {
				p.errorf(n, "unknown client type %q", args[1])
				return
			}
			ev.inst = it
		}
		if len(args) == 3 {
			r, ok := regionByName(args[2])
			if !ok {
				p.errorf(n, "unknown region %q", args[2])
				return
			}
			ev.region = r
		}
		p.sc.Events = append(p.sc.Events, ev)
	case "leave":
		if len(args) != 1 {
			bad("leave <n|client-id>")
			return
		}
		if cnt, err := strconv.Atoi(args[0]); err == nil {
			if cnt < 1 {
				p.errorf(n, "bad leave count %q", args[0])
				return
			}
			p.sc.Events = append(p.sc.Events, leaveEvent{at: at, n: cnt})
			return
		}
		p.sc.Events = append(p.sc.Events, leaveEvent{at: at, id: args[0]})
	case "detach":
		if len(args) != 1 {
			bad("detach <n|client-id>")
			return
		}
		if cnt, err := strconv.Atoi(args[0]); err == nil {
			if cnt < 1 {
				p.errorf(n, "bad detach count %q", args[0])
				return
			}
			p.sc.Events = append(p.sc.Events, detachEvent{at: at, n: cnt})
			return
		}
		p.sc.Events = append(p.sc.Events, detachEvent{at: at, id: args[0]})
	case "rejoin":
		if len(args) != 1 {
			bad("rejoin <n|client-id>")
			return
		}
		if cnt, err := strconv.Atoi(args[0]); err == nil {
			if cnt < 1 {
				p.errorf(n, "bad rejoin count %q", args[0])
				return
			}
			p.sc.Events = append(p.sc.Events, rejoinEvent{at: at, n: cnt})
			return
		}
		p.sc.Events = append(p.sc.Events, rejoinEvent{at: at, id: args[0]})
	case "blob-kill":
		if len(args) != 1 {
			bad("blob-kill <bytes|off>")
			return
		}
		if strings.EqualFold(args[0], "off") {
			p.sc.Events = append(p.sc.Events, blobKillEvent{at: at})
			return
		}
		bytes, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil || bytes < 1 {
			p.errorf(n, "bad blob-kill byte count %q (want a positive count or off)", args[0])
			return
		}
		p.sc.Events = append(p.sc.Events, blobKillEvent{at: at, bytes: bytes})
	case "preempt":
		if len(args) != 1 {
			bad("preempt <p>")
			return
		}
		pr, err := strconv.ParseFloat(args[0], 64)
		if strings.EqualFold(args[0], "off") {
			pr, err = 0, nil
		}
		if err != nil || pr < 0 || pr > 1 {
			p.errorf(n, "bad preempt probability %q (want 0..1)", args[0])
			return
		}
		p.sc.Events = append(p.sc.Events, preemptEvent{at: at, p: pr})
	case "outage":
		if len(args) < 1 || len(args) > 2 {
			bad("outage <region> [rtt]")
			return
		}
		r, ok := regionByName(args[0])
		if !ok {
			p.errorf(n, "unknown region %q", args[0])
			return
		}
		rtt := 5.0
		if len(args) == 2 {
			rtt, err = parseDuration(args[1])
			if err != nil || rtt <= 0 {
				p.errorf(n, "bad outage RTT %q", args[1])
				return
			}
		}
		p.sc.Events = append(p.sc.Events, outageEvent{at: at, region: r, rtt: rtt})
	case "recover":
		if len(args) != 1 {
			bad("recover <region>")
			return
		}
		r, ok := regionByName(args[0])
		if !ok {
			p.errorf(n, "unknown region %q", args[0])
			return
		}
		p.sc.Events = append(p.sc.Events, recoverEvent{at: at, region: r})
	case "slow":
		if len(args) != 2 {
			bad("slow <client#|client-id> <factor>")
			return
		}
		factor, err := strconv.ParseFloat(args[1], 64)
		if err != nil || factor <= 0 {
			p.errorf(n, "bad slowdown factor %q", args[1])
			return
		}
		if idx, err := strconv.Atoi(args[0]); err == nil {
			if idx < 0 {
				p.errorf(n, "bad slow client index %q", args[0])
				return
			}
			p.sc.Events = append(p.sc.Events, slowEvent{at: at, index: idx, factor: factor})
			return
		}
		p.sc.Events = append(p.sc.Events, slowEvent{at: at, id: args[0], factor: factor})
	case "ps-fail", "ps-recover":
		cnt := 1
		if len(args) > 1 {
			bad(verb + " [n]")
			return
		}
		if len(args) == 1 {
			var err error
			cnt, err = strconv.Atoi(args[0])
			if err != nil || cnt < 1 {
				p.errorf(n, "bad %s count %q", verb, args[0])
				return
			}
		}
		if verb == "ps-fail" {
			cnt = -cnt
		}
		p.sc.Events = append(p.sc.Events, psEvent{at: at, delta: cnt})
	case "policy":
		if len(args) < 1 {
			bad("policy <name> [args...]")
			return
		}
		if _, err := boinc.NewPolicy(args[0], args[1:]...); err != nil {
			p.errorf(n, "%v", err)
			return
		}
		p.sc.Events = append(p.sc.Events, policyEvent{at: at, name: args[0], args: args[1:]})
	case "set":
		if len(args) != 2 {
			bad("set timeout|floor <value>")
			return
		}
		key := strings.ToLower(args[0])
		switch key {
		case "timeout":
			v, err := parseDuration(args[1])
			if err != nil || v <= 0 {
				p.errorf(n, "bad timeout %q", args[1])
				return
			}
			p.sc.Events = append(p.sc.Events, setEvent{at: at, key: key, value: v})
		case "floor":
			v, err := strconv.ParseFloat(args[1], 64)
			if err != nil || v < 0 || v > 1 {
				p.errorf(n, "bad reliability floor %q (want 0..1)", args[1])
				return
			}
			p.sc.Events = append(p.sc.Events, setEvent{at: at, key: key, value: v})
		default:
			p.errorf(n, "unknown set key %q (want timeout or floor)", args[0])
		}
	case "cordon", "uncordon":
		if len(args) != 1 {
			bad(verb + " <client-id>")
			return
		}
		p.sc.Events = append(p.sc.Events, cordonEvent{at: at, id: args[0], on: verb == "cordon"})
	case "byzantine":
		if len(args) != 2 {
			bad("byzantine <client-id> <behavior|off>")
			return
		}
		behavior := strings.ToLower(args[1])
		if behavior != "off" && !boinc.ValidByzantine(behavior) {
			p.errorf(n, "unknown byzantine behavior %q (want one of %v, or off)", args[1], boinc.ByzantineBehaviors)
			return
		}
		p.sc.Events = append(p.sc.Events, byzantineEvent{at: at, id: args[0], behavior: behavior})
	default:
		p.errorf(n, "unknown event %q (want join/leave/detach/rejoin/cordon/uncordon/byzantine/preempt/outage/recover/slow/ps-fail/ps-recover/blob-kill/policy/set)", fields[2])
	}
}

func (p *parser) assertLine(n int, line string, fields []string) {
	if len(fields) != 3 {
		p.errorf(n, "want '<metric> <op> <value>', got %q", line)
		return
	}
	a := Assertion{Op: fields[1], Raw: line}
	val, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		p.errorf(n, "bad assertion value %q", fields[2])
		return
	}
	a.Value = val
	metric := strings.ToLower(fields[0])
	if arg, ok := strings.CutPrefix(metric, "accuracy@"); ok {
		t, err := parseDuration(arg)
		if err != nil {
			p.errorf(n, "bad accuracy@ time %q: %v", arg, err)
			return
		}
		a.Metric, a.Arg = "accuracy_at", t
	} else if arg, ok := strings.CutPrefix(metric, "hours_to_acc@"); ok {
		v, err := strconv.ParseFloat(arg, 64)
		if err != nil {
			p.errorf(n, "bad hours_to_acc@ value %q", arg)
			return
		}
		a.Metric, a.Arg = "hours_to_acc", v
	} else {
		a.Metric = metric
	}
	if err := a.check(); err != nil {
		p.errorf(n, "%v", err)
		return
	}
	p.sc.Asserts = append(p.sc.Asserts, a)
}

// intArg parses a single positive integer argument.
func (p *parser) intArg(n int, key string, args []string) int {
	if len(args) != 1 {
		p.errorf(n, "want '%s <n>'", key)
		return 0
	}
	v, err := strconv.Atoi(args[0])
	if err != nil || v < 0 {
		p.errorf(n, "bad %s value %q", key, args[0])
		return 0
	}
	return v
}

func (p *parser) floatArg(n int, key string, args []string) float64 {
	if len(args) != 1 {
		p.errorf(n, "want '%s <value>'", key)
		return 0
	}
	v, err := strconv.ParseFloat(args[0], 64)
	if err != nil || v < 0 {
		p.errorf(n, "bad %s value %q", key, args[0])
		return 0
	}
	return v
}

func (p *parser) durArg(n int, key string, args []string) float64 {
	if len(args) != 1 {
		p.errorf(n, "want '%s <duration>'", key)
		return 0
	}
	v, err := parseDuration(args[0])
	if err != nil {
		p.errorf(n, "bad %s duration %q: %v", key, args[0], err)
		return 0
	}
	return v
}

func (p *parser) onOff(n int, key string, args []string) (value, ok bool) {
	if len(args) != 1 {
		p.errorf(n, "want '%s on|off'", key)
		return false, false
	}
	switch strings.ToLower(args[0]) {
	case "on", "true", "yes":
		return true, true
	case "off", "false", "no":
		return false, true
	}
	p.errorf(n, "bad %s value %q (want on or off)", key, args[0])
	return false, false
}

// parseDuration converts "90s", "15m", "1.5h" or a bare number of
// seconds into seconds.
func parseDuration(s string) (float64, error) {
	mult := 1.0
	num := s
	switch {
	case strings.HasSuffix(s, "h"):
		mult, num = 3600, strings.TrimSuffix(s, "h")
	case strings.HasSuffix(s, "m"):
		mult, num = 60, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "s"):
		num = strings.TrimSuffix(s, "s")
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("not a duration (want e.g. 90s, 15m, 1.5h)")
	}
	if v < 0 {
		return 0, fmt.Errorf("negative duration")
	}
	return v * mult, nil
}
