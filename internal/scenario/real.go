package scenario

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"vcdl/internal/boinc"
	"vcdl/internal/cloud"
	"vcdl/internal/live"
	"vcdl/internal/store"
)

// DefaultWallLimit caps a real-mode run's wall clock when Options does
// not: a live fleet that wedges (every workunit burned through its
// error budget, a client deadlock) must fail the scenario, not hang CI.
const DefaultWallLimit = 120 * time.Second

// runReal compiles the scenario onto a live fleet: an in-process BOINC
// server plus real client daemons, with every `at <t>` event fired on
// the wall clock at t × TimeScale and applied through the same Injector
// interface the simulator implements. All reported times are mapped
// back into virtual hours so the scenario's assertions (and the
// fidelity CSV) compare like with like (DESIGN.md §9).
func runReal(sc *Scenario, opts Options) (*Report, error) {
	if sc.Fleet.Procs && opts.Spawn == nil {
		// The harness cannot invent a client binary; only a caller that
		// owns one (the vcdl-scenario CLI and its hidden _client mode)
		// can honour process isolation.
		return nil, fmt.Errorf("scenario %s: 'procs on' requires a process spawner (vcdl-scenario provides one automatically; library callers must set Options.Spawn)", sc.Name)
	}
	cfg, spec, err := sc.BuildReal()
	if err != nil {
		return nil, err
	}
	scale := opts.TimeScale
	if scale <= 0 {
		scale = live.DefaultTimeScale
	}
	// The CLI's -store flag wins over the scenario's `store` key; both
	// default to the eventual store (the paper's Redis-style backend).
	storeKind := opts.Store
	if storeKind == "" {
		storeKind = sc.Fleet.StoreKind
	}
	st, err := store.ByName(storeKind, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	reg := runRegistry(opts)
	// Heavy-traffic knobs (DESIGN.md §14): stripe the scheduler state
	// and/or bound concurrent request handling when the scenario asks.
	var schedCfg *boinc.SchedulerConfig
	if sc.Fleet.Shards > 1 {
		c := boinc.DefaultSchedulerConfig()
		c.Shards = sc.Fleet.Shards
		schedCfg = &c
	}
	var admit *boinc.AdmissionConfig
	if sc.Fleet.AdmitMax > 0 {
		admit = &boinc.AdmissionConfig{MaxConcurrent: sc.Fleet.AdmitMax, MaxQueue: sc.Fleet.AdmitQueue}
	}
	fleet, err := live.StartFleet(live.FleetConfig{
		Server: live.ServerConfig{
			Job:         cfg.Job,
			Spec:        spec,
			Corpus:      cfg.Corpus,
			PServers:    cfg.PServers,
			Store:       st,
			Scheduler:   schedCfg,
			Policy:      cfg.Policy,
			Replication: cfg.Replication,
			Admission:   admit,
		},
		Blobs:              sc.Fleet.Blobs,
		Checkpoint:         sc.Fleet.Checkpoint,
		Byzantine:          cfg.Byzantine,
		ByzantineClients:   cfg.ByzantineClients,
		Name:               sc.Name,
		Fleet:              cloud.Place(cfg.ClientInstances, cfg.Regions),
		TasksPerClient:     cfg.TasksPerClient,
		BaseSubtaskSeconds: cfg.BaseSubtaskSeconds,
		ThreadsPerTask:     cfg.ThreadsPerTask,
		ContentionExp:      cfg.ContentionExp,
		TimeoutVirtual:     cfg.TimeoutSeconds,
		TimeScale:          scale,
		Preempt:            cfg.PreemptProb,
		Spawn:              opts.Spawn,
		Metrics:            reg,
		Trace:              opts.Trace,
		Log:                opts.Log,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	defer fleet.Close()
	if opts.ServerURLFile != "" {
		if werr := os.WriteFile(opts.ServerURLFile, []byte(fleet.URL()+"\n"), 0o644); werr != nil {
			return nil, fmt.Errorf("scenario %s: write server URL file: %w", sc.Name, werr)
		}
	}

	rep := &Report{Scenario: sc, Mode: ModeReal, Metrics: reg}
	var traceMu sync.Mutex
	trace := func(line string) {
		traceMu.Lock()
		rep.traceTo(opts.Progress, line)
		traceMu.Unlock()
	}
	workload := sc.Fleet.Workload
	if workload == "" {
		workload = "quick"
	}
	clients := "goroutine clients"
	if opts.Spawn != nil {
		clients = "process clients"
	}
	extras := st.Name() + " store"
	if sc.Fleet.Blobs {
		extras += ", blob data plane"
	}
	if sc.Fleet.Checkpoint {
		extras += ", durable checkpoints"
	}
	trace(fmt.Sprintf("scenario %s: P%dC%dT%d %s workload, seed %d, %d events, %d assertions (real mode, %s, %s, 1 virtual min = %.3gs wall)",
		sc.Name, cfg.PServers, len(cfg.ClientInstances), cfg.TasksPerClient,
		workload, cfg.Seed, len(sc.Events), len(sc.Asserts), clients, extras, scale*60))

	// Fire the events on the wall clock. The goroutine dies with the
	// run context, so events scheduled past training completion simply
	// never fire (exactly like the simulator draining its event queue
	// only while training is live).
	limit := opts.WallLimit
	if limit <= 0 {
		limit = DefaultWallLimit
	}
	ctx, cancel := context.WithTimeout(context.Background(), limit)
	defer cancel()
	start := time.Now()
	eventsDone := make(chan struct{})
	// Events flow through the fleet's shared ops core — the same object
	// the /ops admin API serves — so scenario actions and curl'd actions
	// land in the same vcdl_ops_actions_total counters.
	ctrl := fleet.Ops()
	var evErrMu sync.Mutex
	var evErr error
	go func() {
		defer close(eventsDone)
		for _, ev := range sc.Events {
			wait := time.Duration(ev.At()*scale*float64(time.Second)) - time.Since(start)
			if wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-ctx.Done():
					t.Stop()
					return
				case <-t.C:
				}
			}
			if ctx.Err() != nil {
				return
			}
			if id := targetOf(ev); id != "" && !ctrl.KnownClient(id) {
				msg := fmt.Sprintf("event %q targets client %q, which never existed in this run", ev.Desc(), id)
				trace(fmt.Sprintf("[%7.3fh] ERROR: %s", fleet.VirtualHours(), msg))
				evErrMu.Lock()
				if evErr == nil {
					evErr = fmt.Errorf("scenario %s: %s", sc.Name, msg)
				}
				evErrMu.Unlock()
				continue
			}
			trace(fmt.Sprintf("[%7.3fh] %s", fleet.VirtualHours(), ev.Apply(ctrl)))
		}
	}()

	res, err := fleet.Wait(ctx)
	cancel()
	<-eventsDone // join: no trace writes after the report is assembled
	if err != nil {
		return nil, fmt.Errorf("scenario %s (real mode): %w", sc.Name, err)
	}
	evErrMu.Lock()
	defer evErrMu.Unlock()
	if evErr != nil {
		return nil, evErr
	}
	rep.WallclockSeconds = time.Since(start).Seconds()
	rep.finish(sc, opts, res, scale)
	return rep, nil
}
