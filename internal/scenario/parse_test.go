package scenario

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vcdl/internal/cloud"
)

var update = flag.Bool("update", false, "rewrite golden files")

const goodScenario = `
# A scenario exercising every construct.
scenario kitchen-sink
description Every fleet key, event and assertion form.

fleet:
  workload quick
  pservers 2
  clients 4 clientB
  tasks 2
  epochs 3
  subtasks 8
  seed 11
  timeout 20m
  regions us-east us-west
  sticky off
  autoscale on 6
  target-accuracy 0.9
  compute parallel+cached 4
  replicate 2

events:
  at 60s join 2 mixed us-west
  at 2m  slow 0 4.0
  at 3m  preempt 0.25
  at 4m  outage us-west 5s
  at 5m  set timeout 10m
  at 5m  set floor 0.8
  at 6m  ps-fail 1
  at 8m  ps-recover 1
  at 9m  recover us-west
  at 10m preempt 0
  at 12m leave 2

assert:
  final_accuracy >= 0.1
  accuracy@1h <= 1.0
  hours_to_acc@0.05 <= 100
  epochs == 3
  reissued <= 1000
  wallclock_seconds <= 600
`

func TestParseGoodScenario(t *testing.T) {
	sc, err := Parse(strings.NewReader(goodScenario), "good.txt")
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if sc.Name != "kitchen-sink" {
		t.Fatalf("name = %q", sc.Name)
	}
	f := sc.Fleet
	if f.PServers != 2 || f.Clients != 4 || f.Tasks != 2 || f.ClientType != "clientB" {
		t.Fatalf("fleet = %+v", f)
	}
	if f.Epochs != 3 || f.Subtasks != 8 || f.Seed != 11 || f.TimeoutSeconds != 1200 {
		t.Fatalf("fleet = %+v", f)
	}
	if len(f.Regions) != 2 || f.Regions[1] != cloud.USWest {
		t.Fatalf("regions = %v", f.Regions)
	}
	if !f.StickyOff || !f.AutoScale || f.MaxPServers != 6 || f.TargetAccuracy != 0.9 {
		t.Fatalf("fleet = %+v", f)
	}
	if f.Compute != "parallel+cached" || f.ComputeWorkers != 4 || f.Replication != 2 {
		t.Fatalf("compute fleet keys = %+v", f)
	}
	if len(sc.Events) != 11 {
		t.Fatalf("parsed %d events, want 11", len(sc.Events))
	}
	if sc.Events[0].At() != 60 || sc.Events[10].At() != 720 {
		t.Fatalf("event times wrong: %v .. %v", sc.Events[0].At(), sc.Events[10].At())
	}
	if len(sc.Asserts) != 6 {
		t.Fatalf("parsed %d assertions, want 6", len(sc.Asserts))
	}
	if a := sc.Asserts[1]; a.Metric != "accuracy_at" || a.Arg != 3600 {
		t.Fatalf("accuracy@ assertion = %+v", a)
	}
	if a := sc.Asserts[2]; a.Metric != "hours_to_acc" || a.Arg != 0.05 {
		t.Fatalf("hours_to_acc@ assertion = %+v", a)
	}
}

func TestParseDescriptionForms(t *testing.T) {
	cases := map[string]string{
		"scenario s\ndescription Clients #0 and #1 slow down\n": "Clients #0 and #1 slow down",
		"scenario s\ndescription: colon style works too\n":      "colon style works too",
		"scenario s\ndescription\n":                             "",
	}
	for in, want := range cases {
		sc, err := Parse(strings.NewReader(in), "d.txt")
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if sc.Description != want {
			t.Errorf("%q: description = %q, want %q", in, sc.Description, want)
		}
	}
	// A typo'd directive must error, not be absorbed as a description.
	if _, err := Parse(strings.NewReader("scenario s\ndescriptionX oops\n"), "d.txt"); err == nil {
		t.Fatal("descriptionX accepted")
	}
}

func TestParseDurations(t *testing.T) {
	cases := map[string]float64{"90s": 90, "15m": 900, "1.5h": 5400, "42": 42, "0.5m": 30}
	for in, want := range cases {
		got, err := parseDuration(in)
		if err != nil || got != want {
			t.Fatalf("parseDuration(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "h", "-5s", "5d", "fast"} {
		if _, err := parseDuration(in); err == nil {
			t.Fatalf("parseDuration(%q) accepted", in)
		}
	}
}

// TestParseComputeDirective pins the compute/replicate fleet grammar.
func TestParseComputeDirective(t *testing.T) {
	for _, bad := range []string{
		"scenario s\nfleet:\n  compute bogus\n",
		"scenario s\nfleet:\n  compute\n",
		"scenario s\nfleet:\n  compute parallel 8 extra\n",
		"scenario s\nfleet:\n  replicate 0\n",
		"scenario s\nfleet:\n  replicate two\n",
	} {
		if _, err := Parse(strings.NewReader(bad), "c.txt"); err == nil {
			t.Errorf("accepted malformed input %q", bad)
		}
	}
	sc, err := Parse(strings.NewReader("scenario s\nfleet:\n  compute surrogate\n"), "c.txt")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Fleet.Compute != "surrogate" || sc.Fleet.ComputeWorkers != 0 {
		t.Fatalf("fleet = %+v", sc.Fleet)
	}
}

// TestParseDataPlaneDirectives pins the blob/checkpoint/store grammar:
// fleet switches, the blob-kill and rejoin events, and the real-only
// assertion metrics.
func TestParseDataPlaneDirectives(t *testing.T) {
	sc, err := Parse(strings.NewReader(`
scenario data-plane
fleet:
  clients 3
  blobs on
  checkpoints on
  store strong
events:
  at 1m  blob-kill 8000
  at 2m  leave 1
  at 3m  rejoin 1
  at 4m  rejoin client-02-t2.small
  at 5m  blob-kill off
assert:
  blob_resumes > 0
  blob_cache_hits >= 1
  blob_mb <= 64
  ckpt_epoch >= 2
  ckpt_restores >= 0
`), "dp.txt")
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	f := sc.Fleet
	if !f.Blobs || !f.Checkpoint || f.StoreKind != "strong" {
		t.Fatalf("fleet = %+v", f)
	}
	if len(sc.Events) != 5 {
		t.Fatalf("parsed %d events, want 5", len(sc.Events))
	}
	if e, ok := sc.Events[0].(blobKillEvent); !ok || e.bytes != 8000 {
		t.Fatalf("event 0 = %#v, want blob-kill 8000", sc.Events[0])
	}
	if e, ok := sc.Events[2].(rejoinEvent); !ok || e.n != 1 || e.id != "" {
		t.Fatalf("event 2 = %#v, want rejoin 1", sc.Events[2])
	}
	if e, ok := sc.Events[3].(rejoinEvent); !ok || e.id != "client-02-t2.small" {
		t.Fatalf("event 3 = %#v, want rejoin by id", sc.Events[3])
	}
	if e, ok := sc.Events[4].(blobKillEvent); !ok || e.bytes != 0 {
		t.Fatalf("event 4 = %#v, want blob-kill off", sc.Events[4])
	}
	if len(sc.Asserts) != 5 || sc.Asserts[0].Metric != "blob_resumes" || sc.Asserts[3].Metric != "ckpt_epoch" {
		t.Fatalf("asserts = %+v", sc.Asserts)
	}

	for _, bad := range []string{
		"scenario s\nfleet:\n  store bogus\n",
		"scenario s\nfleet:\n  blobs maybe\n",
		"scenario s\nfleet:\n  checkpoints\n",
		"scenario s\nevents:\n  at 1m blob-kill 0\n",
		"scenario s\nevents:\n  at 1m blob-kill -5\n",
		"scenario s\nevents:\n  at 1m rejoin 0\n",
		"scenario s\nassert:\n  blob_bogus > 0\n",
	} {
		if _, err := Parse(strings.NewReader(bad), "bad.txt"); err == nil {
			t.Errorf("accepted malformed input %q", bad)
		}
	}
}

// TestMalformedScenariosGolden asserts that every malformed scenario
// under testdata/bad is rejected with exactly the error text recorded in
// the sibling .err golden file. Regenerate with: go test -run Golden -update
func TestMalformedScenariosGolden(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "bad", "*.txt"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no bad testdata scenarios found: %v", err)
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			_, err := Load(file)
			if err == nil {
				t.Fatalf("%s: malformed scenario was accepted", file)
			}
			golden := strings.TrimSuffix(file, ".txt") + ".err"
			if *update {
				if werr := os.WriteFile(golden, []byte(err.Error()+"\n"), 0o644); werr != nil {
					t.Fatal(werr)
				}
				return
			}
			want, rerr := os.ReadFile(golden)
			if rerr != nil {
				t.Fatalf("missing golden file (run with -update): %v", rerr)
			}
			if got := err.Error() + "\n"; got != string(want) {
				t.Errorf("%s: error mismatch\n--- got ---\n%s--- want ---\n%s", file, got, want)
			}
		})
	}
}
