package scenario

import (
	"fmt"
	"strings"

	"vcdl/internal/boinc"
	"vcdl/internal/cloud"
)

// fmtT renders an event's virtual firing time for descriptions.
func fmtT(sec float64) string {
	switch {
	case sec >= 3600:
		return fmt.Sprintf("%gh", sec/3600)
	case sec >= 60:
		return fmt.Sprintf("%gm", sec/60)
	default:
		return fmt.Sprintf("%gs", sec)
	}
}

// joinEvent adds n clients to the pool (volunteer churn / flash crowd).
type joinEvent struct {
	at     float64
	n      int
	inst   cloud.InstanceType
	mixed  bool // round-robin over Table I client types
	region cloud.Region
}

func (e joinEvent) At() float64 { return e.at }
func (e joinEvent) Desc() string {
	name := e.inst.Name
	if e.mixed {
		name = "mixed"
	}
	return fmt.Sprintf("at %s join %d %s @%s", fmtT(e.at), e.n, name, e.region)
}
func (e joinEvent) Apply(s Injector) string {
	types := []cloud.InstanceType{e.inst}
	if e.mixed {
		types = cloud.ClientTypes()
	}
	var first, last string
	for i := 0; i < e.n; i++ {
		id := s.AddClient(types[i%len(types)], e.region)
		if i == 0 {
			first = id
		}
		last = id
	}
	if e.n == 1 {
		return fmt.Sprintf("join %s @%s", first, e.region)
	}
	return fmt.Sprintf("join %d clients (%s..%s) @%s", e.n, first, last, e.region)
}

// leaveEvent departs n clients (most recent joiners first) or one
// specific client by ID.
type leaveEvent struct {
	at float64
	n  int
	id string // non-empty: depart this client instead of a count
}

func (e leaveEvent) At() float64 { return e.at }
func (e leaveEvent) Desc() string {
	if e.id != "" {
		return fmt.Sprintf("at %s leave %s", fmtT(e.at), e.id)
	}
	return fmt.Sprintf("at %s leave %d", fmtT(e.at), e.n)
}
func (e leaveEvent) TargetID() string { return e.id }
func (e leaveEvent) Apply(s Injector) string {
	if e.id != "" {
		if s.RemoveClient(e.id) {
			return "leave " + e.id
		}
		return fmt.Sprintf("leave %s (no such active client)", e.id)
	}
	gone := s.RemoveClients(e.n)
	return fmt.Sprintf("leave %d clients %v (%d active remain)", len(gone), gone, len(s.ActiveClients()))
}

// preemptEvent hot-changes the preemption probability; p > 0 starts a
// storm, p = 0 ends it. The trace reports the §IV-E binomial prediction
// for the storm's expected training-time increase.
type preemptEvent struct {
	at float64
	p  float64
}

func (e preemptEvent) At() float64 { return e.at }
func (e preemptEvent) Desc() string {
	return fmt.Sprintf("at %s preempt %g", fmtT(e.at), e.p)
}
func (e preemptEvent) Apply(s Injector) string {
	s.SetPreemptProb(e.p)
	if e.p == 0 {
		return "preemption storm ends (p=0)"
	}
	m := s.PreemptModel(e.p)
	ns, tn := s.FleetShape()
	nc := len(s.ActiveClients())
	inc := m.ExpectedIncreaseSeconds(ns, nc, tn)
	return fmt.Sprintf("preemption storm p=%g (binomial model: +%.1f min/epoch expected)", e.p, inc/60)
}

// outageEvent spikes a region's round-trip latency; recoverEvent
// restores the static latency.
type outageEvent struct {
	at     float64
	region cloud.Region
	rtt    float64
}

func (e outageEvent) At() float64 { return e.at }
func (e outageEvent) Desc() string {
	return fmt.Sprintf("at %s outage %s rtt=%gs", fmtT(e.at), e.region, e.rtt)
}
func (e outageEvent) Apply(s Injector) string {
	s.SetRegionRTT(e.region, e.rtt)
	return fmt.Sprintf("region %s outage: RTT %.0f ms -> %.0f ms", e.region, e.region.RTT()*1000, e.rtt*1000)
}

type recoverEvent struct {
	at     float64
	region cloud.Region
}

func (e recoverEvent) At() float64 { return e.at }
func (e recoverEvent) Desc() string {
	return fmt.Sprintf("at %s recover %s", fmtT(e.at), e.region)
}
func (e recoverEvent) Apply(s Injector) string {
	s.ClearRegionRTT(e.region)
	return fmt.Sprintf("region %s recovered (RTT back to %.0f ms)", e.region, e.region.RTT()*1000)
}

// slowEvent turns a client into a straggler (factor > 1) or restores it
// (factor 1). The client is addressed by active-list index or by ID.
type slowEvent struct {
	at     float64
	index  int
	id     string // non-empty: address by ID
	factor float64
}

func (e slowEvent) At() float64 { return e.at }
func (e slowEvent) Desc() string {
	who := e.id
	if who == "" {
		who = fmt.Sprintf("#%d", e.index)
	}
	return fmt.Sprintf("at %s slow %s x%g", fmtT(e.at), who, e.factor)
}
func (e slowEvent) TargetID() string { return e.id }
func (e slowEvent) Apply(s Injector) string {
	if e.id != "" {
		if s.SlowClient(e.id, e.factor) {
			return fmt.Sprintf("slow %s x%g", e.id, e.factor)
		}
		return fmt.Sprintf("slow %s (no such active client)", e.id)
	}
	id, ok := s.SlowClientAt(e.index, e.factor)
	if !ok {
		return fmt.Sprintf("slow #%d (no such active client)", e.index)
	}
	return fmt.Sprintf("slow %s x%g", id, e.factor)
}

// psEvent resizes the parameter-server pool (failover and recovery).
type psEvent struct {
	at    float64
	delta int // negative: fail |delta| processes; positive: recover
}

func (e psEvent) At() float64 { return e.at }
func (e psEvent) Desc() string {
	if e.delta < 0 {
		return fmt.Sprintf("at %s ps-fail %d", fmtT(e.at), -e.delta)
	}
	return fmt.Sprintf("at %s ps-recover %d", fmtT(e.at), e.delta)
}
func (e psEvent) Apply(s Injector) string {
	before := s.PServers()
	s.SetPServers(before + e.delta)
	if e.delta < 0 {
		return fmt.Sprintf("parameter-server failover: %d -> %d PS", before, s.PServers())
	}
	return fmt.Sprintf("parameter-server recovery: %d -> %d PS", before, s.PServers())
}

// policyEvent hot-swaps the scheduler's assignment policy. The name and
// arguments are validated at parse time; Apply re-instantiates so each
// run (and each seed override) gets a fresh policy.
type policyEvent struct {
	at   float64
	name string
	args []string
}

func (e policyEvent) At() float64 { return e.at }
func (e policyEvent) Desc() string {
	return strings.TrimSpace(fmt.Sprintf("at %s policy %s %s", fmtT(e.at), e.name, strings.Join(e.args, " ")))
}
func (e policyEvent) Apply(s Injector) string {
	p, err := boinc.NewPolicy(e.name, e.args...)
	if err != nil {
		return fmt.Sprintf("policy %s not swapped: %v", e.name, err)
	}
	before := s.PolicyName()
	s.SetPolicy(p)
	return fmt.Sprintf("scheduler policy %s -> %s", before, p.Name())
}

// setEvent hot-changes a scheduler parameter.
type setEvent struct {
	at    float64
	key   string // "timeout" | "floor"
	value float64
}

func (e setEvent) At() float64 { return e.at }
func (e setEvent) Desc() string {
	return fmt.Sprintf("at %s set %s %g", fmtT(e.at), e.key, e.value)
}
func (e setEvent) Apply(s Injector) string {
	switch e.key {
	case "timeout":
		s.SetTimeout(e.value)
		return fmt.Sprintf("scheduler timeout -> %s", fmtT(e.value))
	case "floor":
		s.SetReliabilityFloor(e.value)
		return fmt.Sprintf("scheduler reliability floor -> %g", e.value)
	}
	return "set " + e.key + " (unknown key)"
}

// detachEvent gracefully departs clients: they finish their in-flight
// assignments before leaving (the server's detach control). Real-mode
// only — the simulator's departures are always abrupt, so Modes marks
// scenarios using it as real-only.
type detachEvent struct {
	at float64
	n  int
	id string // non-empty: detach this client instead of a count
}

func (e detachEvent) At() float64 { return e.at }
func (e detachEvent) Desc() string {
	if e.id != "" {
		return fmt.Sprintf("at %s detach %s", fmtT(e.at), e.id)
	}
	return fmt.Sprintf("at %s detach %d", fmtT(e.at), e.n)
}
func (e detachEvent) TargetID() string { return e.id }
func (e detachEvent) Apply(s Injector) string {
	d, ok := s.(Detacher)
	if !ok {
		return "detach skipped (engine cannot express graceful departure)"
	}
	if e.id != "" {
		if d.DetachClient(e.id) {
			return "detach " + e.id
		}
		return fmt.Sprintf("detach %s (no such active client)", e.id)
	}
	gone := d.DetachClients(e.n)
	return fmt.Sprintf("detach %d clients %v (%d active remain)", len(gone), gone, len(s.ActiveClients()))
}

// rejoinEvent revives departed clients under their original identity —
// with the data plane on, they return holding a warm blob cache, so the
// re-transfer cost of churn is what the scenario measures. Real-mode
// only: the simulator has no notion of a volunteer coming back.
type rejoinEvent struct {
	at float64
	n  int
	id string // non-empty: rejoin this client instead of a count
}

func (e rejoinEvent) At() float64 { return e.at }
func (e rejoinEvent) Desc() string {
	if e.id != "" {
		return fmt.Sprintf("at %s rejoin %s", fmtT(e.at), e.id)
	}
	return fmt.Sprintf("at %s rejoin %d", fmtT(e.at), e.n)
}
func (e rejoinEvent) TargetID() string { return e.id }
func (e rejoinEvent) Apply(s Injector) string {
	r, ok := s.(Rejoiner)
	if !ok {
		return "rejoin skipped (engine cannot revive departed clients)"
	}
	if e.id != "" {
		if r.RejoinClient(e.id) {
			return "rejoin " + e.id
		}
		return fmt.Sprintf("rejoin %s (no such departed client)", e.id)
	}
	back := r.RejoinClients(e.n)
	return fmt.Sprintf("rejoin %d clients %v (%d active now)", len(back), back, len(s.ActiveClients()))
}

// cordonEvent quarantines a client (no new work while in-flight results
// complete or expire) or releases it. Both engines support it: the
// quarantine lives in the scheduler, which both stacks share.
type cordonEvent struct {
	at float64
	id string
	on bool // true = cordon, false = uncordon
}

func (e cordonEvent) At() float64      { return e.at }
func (e cordonEvent) TargetID() string { return e.id }
func (e cordonEvent) Desc() string {
	verb := "cordon"
	if !e.on {
		verb = "uncordon"
	}
	return fmt.Sprintf("at %s %s %s", fmtT(e.at), verb, e.id)
}
func (e cordonEvent) Apply(s Injector) string {
	verb := "cordon"
	if !e.on {
		verb = "uncordon"
	}
	c, ok := s.(Cordoner)
	if !ok {
		return verb + " skipped (engine cannot quarantine clients)"
	}
	if !c.Cordon(e.id, e.on) {
		return fmt.Sprintf("%s %s (no such active client)", verb, e.id)
	}
	if e.on {
		return fmt.Sprintf("cordon %s (quarantined: no new work)", e.id)
	}
	return fmt.Sprintf("uncordon %s (back in the pool)", e.id)
}

// byzantineEvent switches a client's adversarial behavior mid-run
// ("off" restores honesty). Both engines support it: the simulator
// flips the client's behavior flag, the real engine ships the behavior
// to the live daemon through ClientControl.
type byzantineEvent struct {
	at       float64
	id       string
	behavior string // boinc.ByzantineBehaviors, or "off"
}

func (e byzantineEvent) At() float64      { return e.at }
func (e byzantineEvent) TargetID() string { return e.id }
func (e byzantineEvent) Desc() string {
	return fmt.Sprintf("at %s byzantine %s %s", fmtT(e.at), e.id, e.behavior)
}
func (e byzantineEvent) Apply(s Injector) string {
	b, ok := s.(Byzantiner)
	if !ok {
		return "byzantine skipped (engine has no adversarial clients)"
	}
	if !b.SetByzantine(e.id, e.behavior) {
		return fmt.Sprintf("byzantine %s (no such active client)", e.id)
	}
	if e.behavior == "off" {
		return fmt.Sprintf("byzantine %s off (honest again)", e.id)
	}
	return fmt.Sprintf("byzantine %s now %s", e.id, e.behavior)
}

// blobKillEvent arms (bytes > 0) or disarms (bytes 0) data-plane fault
// injection: the server severs every blob transfer after that many
// bytes, forcing clients through the Range-resume path. Real-mode only.
type blobKillEvent struct {
	at    float64
	bytes int64 // 0 disarms
}

func (e blobKillEvent) At() float64 { return e.at }
func (e blobKillEvent) Desc() string {
	if e.bytes == 0 {
		return fmt.Sprintf("at %s blob-kill off", fmtT(e.at))
	}
	return fmt.Sprintf("at %s blob-kill %d", fmtT(e.at), e.bytes)
}
func (e blobKillEvent) Apply(s Injector) string {
	k, ok := s.(BlobKiller)
	if !ok {
		return "blob-kill skipped (engine has no data plane)"
	}
	if !k.SetBlobKill(e.bytes) {
		return "blob-kill skipped (data plane is off — add 'blobs on' to the fleet)"
	}
	if e.bytes == 0 {
		return "blob transfer kills disarmed"
	}
	return fmt.Sprintf("blob transfers now severed after %d bytes (clients resume via Range)", e.bytes)
}
