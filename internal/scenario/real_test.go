package scenario

import (
	"strings"
	"testing"
	"time"
)

// loadString parses+validates a scenario from source text.
func loadString(t *testing.T, src string) *Scenario {
	t.Helper()
	sc, err := Parse(strings.NewReader(src), "test")
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestRealModeTinyRun drives a minimal scenario through the live fleet:
// server + 3 goroutine clients over real HTTP, checking the report maps
// everything back into virtual units.
func TestRealModeTinyRun(t *testing.T) {
	sc := loadString(t, `
scenario real-tiny
fleet:
  pservers 2
  clients 3
  tasks 2
  epochs 2
  subtasks 6
  seed 3
assert:
  epochs == 2
  final_accuracy >= 0.05
  issued >= 12
`)
	rep, err := RunScenario(sc, Options{Mode: ModeReal, TimeScale: 1.0 / 600, WallLimit: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("assertions failed:\n%s", rep.Summary())
	}
	if rep.Mode != ModeReal || rep.Stats.Mode != "real" {
		t.Fatalf("mode = %q / stats %q, want real", rep.Mode, rep.Stats.Mode)
	}
	if rep.Stats.Epochs != 2 || rep.Stats.Issued < 12 {
		t.Fatalf("stats = %+v", rep.Stats)
	}
	if len(rep.Result.AssignMix) == 0 {
		t.Fatalf("no assignment mix recorded")
	}
	if rep.Result.BytesDownloaded == 0 || rep.Result.BytesUploaded == 0 {
		t.Fatalf("no traffic recorded: %d down %d up", rep.Result.BytesDownloaded, rep.Result.BytesUploaded)
	}
}

// TestRealModeEvents exercises the wall-clock event mapping: churn,
// straggler shaping, a PS failover and a policy swap, all against the
// live fleet.
func TestRealModeEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second real-mode run")
	}
	sc := loadString(t, `
scenario real-events
fleet:
  pservers 2
  clients 3
  tasks 2
  epochs 3
  subtasks 6
  seed 5
events:
  at 2m  join 1 clientB
  at 3m  slow 0 3.0
  at 4m  ps-fail 1
  at 6m  ps-recover 1
  at 7m  policy fifo
  at 8m  leave 1
assert:
  epochs == 3
  max_ps >= 2
`)
	rep, err := RunScenario(sc, Options{Mode: ModeReal, TimeScale: 1.0 / 300, WallLimit: 90 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("assertions failed:\n%s\ntrace:\n%s", rep.Summary(), strings.Join(rep.Trace, "\n"))
	}
	trace := strings.Join(rep.Trace, "\n")
	for _, want := range []string{"join client-03", "slow client-00", "parameter-server failover: 2 -> 1 PS", "parameter-server recovery: 1 -> 2 PS", "scheduler policy paper -> fifo", "leave 1 clients"} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %q:\n%s", want, trace)
		}
	}
}

// TestRealModeDetach pins the real-only graceful departure: the
// detached client finishes in-flight work, so its scenario is marked
// real-only by Modes.
func TestRealModeDetach(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second real-mode run")
	}
	sc := loadString(t, `
scenario real-detach
fleet:
  pservers 1
  clients 3
  tasks 1
  epochs 2
  subtasks 6
  seed 9
events:
  at 2m detach 1
assert:
  epochs == 2
`)
	modes, reasons := sc.Modes()
	if len(modes) != 1 || modes[0] != ModeReal {
		t.Fatalf("modes = %v (reasons %v), want [real]", modes, reasons)
	}
	if err := sc.SupportsMode(ModeSim); err == nil {
		t.Fatal("detach scenario unexpectedly supports sim mode")
	}
	rep, err := RunScenario(sc, Options{Mode: ModeReal, TimeScale: 1.0 / 300, WallLimit: 90 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("assertions failed:\n%s\ntrace:\n%s", rep.Summary(), strings.Join(rep.Trace, "\n"))
	}
	if !strings.Contains(strings.Join(rep.Trace, "\n"), "detach 1 clients") {
		t.Fatalf("trace missing detach:\n%s", strings.Join(rep.Trace, "\n"))
	}
}

// TestRealModeBlobRecovery drives the full data-plane story end to end:
// digest-published inputs, mid-transfer kills recovered via Range
// resume, churn with a warm-cache rejoin, and durable checkpoints on
// the strong store.
func TestRealModeBlobRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second real-mode run")
	}
	sc := loadString(t, `
scenario real-blob-recovery
fleet:
  pservers 2
  clients 3
  tasks 2
  epochs 2
  subtasks 6
  seed 7
  blobs on
  checkpoints on
  store strong
events:
  at 10s blob-kill 2000
  at 2m  leave 1
  at 4m  rejoin 1
assert:
  epochs == 2
  blob_mb > 0
  blob_resumes > 0
  blob_cache_hits > 0
  ckpt_epoch == 2
`)
	if err := sc.SupportsMode(ModeSim); err == nil {
		t.Fatal("data-plane scenario unexpectedly supports sim mode")
	}
	rep, err := RunScenario(sc, Options{Mode: ModeReal, TimeScale: 1.0 / 300, WallLimit: 90 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("assertions failed:\n%s\ntrace:\n%s", rep.Summary(), strings.Join(rep.Trace, "\n"))
	}
	trace := strings.Join(rep.Trace, "\n")
	for _, want := range []string{"blob transfers now severed after 2000 bytes", "rejoin 1 clients"} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %q:\n%s", want, trace)
		}
	}
	if rep.Result.BlobBytes == 0 || rep.Result.BlobResumes == 0 {
		t.Fatalf("blob telemetry empty: %+v", rep.Result)
	}
}

// TestRealModeStoreOverride pins the -store plumbing: Options.Store
// wins over the scenario's store key.
func TestRealModeStoreOverride(t *testing.T) {
	sc := loadString(t, `
scenario store-override
fleet:
  clients 2
  tasks 1
  epochs 1
  subtasks 4
  seed 2
  store eventual
`)
	rep, err := RunScenario(sc, Options{Mode: ModeReal, Store: "strong", TimeScale: 1.0 / 600, WallLimit: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(rep.Trace, "\n"), "strong store") {
		t.Fatalf("trace does not report the strong store:\n%s", strings.Join(rep.Trace, "\n"))
	}
	if _, err := RunScenario(sc, Options{Mode: ModeReal, Store: "bogus", TimeScale: 1.0 / 600}); err == nil {
		t.Fatal("bogus -store value accepted")
	}
}

// TestModesRules pins the mode-support matrix for sim-only constructs.
func TestModesRules(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []Mode
	}{
		{"plain", "scenario s\nfleet:\n  clients 2\n", []Mode{ModeSim, ModeReal}},
		{"paper", "scenario s\nfleet:\n  workload paper\n", []Mode{ModeSim}},
		{"compute", "scenario s\nfleet:\n  compute cached\n", []Mode{ModeSim}},
		{"compute-real", "scenario s\nfleet:\n  compute real\n", []Mode{ModeSim, ModeReal}},
		{"autoscale", "scenario s\nfleet:\n  autoscale on 4\n", []Mode{ModeSim}},
		{"cost", "scenario s\nassert:\n  cost_standard_usd <= 10\n", []Mode{ModeSim}},
		{"procs", "scenario s\nfleet:\n  procs on\n", []Mode{ModeReal}},
		{"detach", "scenario s\nevents:\n  at 1m detach 1\n", []Mode{ModeReal}},
		{"blobs", "scenario s\nfleet:\n  blobs on\n", []Mode{ModeReal}},
		{"checkpoints", "scenario s\nfleet:\n  checkpoints on\n", []Mode{ModeReal}},
		{"store", "scenario s\nfleet:\n  store strong\n", []Mode{ModeReal}},
		{"rejoin", "scenario s\nevents:\n  at 1m leave 1\n  at 2m rejoin 1\n", []Mode{ModeReal}},
		{"blob-kill", "scenario s\nevents:\n  at 1m blob-kill 4096\n", []Mode{ModeReal}},
		{"blob-assert", "scenario s\nassert:\n  blob_resumes > 0\n", []Mode{ModeReal}},
		{"ckpt-assert", "scenario s\nassert:\n  ckpt_epoch >= 1\n", []Mode{ModeReal}},
		{"procs-and-paper", "scenario s\nfleet:\n  workload paper\n  procs on\n", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := loadString(t, tc.src)
			modes, reasons := sc.Modes()
			if len(modes) != len(tc.want) {
				t.Fatalf("modes = %v, want %v (reasons %v)", modes, tc.want, reasons)
			}
			for i := range modes {
				if modes[i] != tc.want[i] {
					t.Fatalf("modes = %v, want %v", modes, tc.want)
				}
			}
		})
	}
}

// TestProcsDirectiveNeedsSpawner pins the 'procs on' contract: the
// library refuses to silently downgrade to goroutine clients.
func TestProcsDirectiveNeedsSpawner(t *testing.T) {
	sc := loadString(t, "scenario p\nfleet:\n  clients 2\n  procs on\n")
	_, err := RunScenario(sc, Options{Mode: ModeReal, TimeScale: 1.0 / 600})
	if err == nil || !strings.Contains(err.Error(), "procs on") {
		t.Fatalf("err = %v, want 'procs on' spawner error", err)
	}
}
