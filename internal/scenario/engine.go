package scenario

import (
	"fmt"
	"io"
	"time"

	"vcdl/internal/boinc"
	"vcdl/internal/live"
	"vcdl/internal/metrics"
	"vcdl/internal/obs"
	"vcdl/internal/ops"
	"vcdl/internal/vcsim"
)

// Report is the outcome of one scenario run.
type Report struct {
	Scenario *Scenario
	// Mode is the engine that executed the run.
	Mode   Mode
	Result *vcsim.Result
	// Trace records every applied event with its virtual time, plus the
	// run's closing summary. In sim mode the determinism contract is
	// that the same scenario and seed always produce an identical
	// trace; real-mode traces are wall-clock honest and only
	// approximately reproducible.
	Trace []string
	// WallclockSeconds is real elapsed time (excluded from Trace so the
	// sim trace stays deterministic).
	WallclockSeconds float64
	// Stats is the engine-independent summary the fidelity report
	// compares across modes.
	Stats  metrics.RunStats
	Checks []Check
	Passed bool
	// Metrics is the registry the run recorded into — Options.Metrics
	// when supplied, otherwise the engine's private one.
	Metrics *obs.Registry
}

// Options tunes a scenario run.
type Options struct {
	// Seed overrides the scenario's fleet seed when non-nil.
	Seed *int64
	// Progress, when non-nil, receives trace lines as they happen.
	Progress io.Writer
	// Mode selects the engine ("" = ModeSim).
	Mode Mode
	// TimeScale is the real-mode virtual→wall mapping in wall seconds
	// per virtual second (0 = live.DefaultTimeScale, one virtual minute
	// per wall second). Ignored in sim mode.
	TimeScale float64
	// WallLimit aborts a real-mode run that exceeds this wall-clock
	// budget (0 = 120s). Ignored in sim mode.
	WallLimit time.Duration
	// Spawn overrides how real-mode clients are launched (nil =
	// in-process goroutines; cmd/vcdl-scenario's -procs mode passes a
	// process spawner). Ignored in sim mode.
	Spawn live.SpawnFunc
	// Store overrides the real-mode parameter store backend ("eventual"
	// or "strong"; "" keeps the scenario's `store` key, which itself
	// defaults to eventual). Ignored in sim mode.
	Store string
	// Metrics receives the run's metric families (DESIGN.md §10). When
	// nil the engine still instruments itself with a private registry so
	// the RunStats percentile columns always fill; supply one to keep
	// the snapshot (Report.Metrics exposes whichever was used).
	Metrics *obs.Registry
	// Trace, when non-nil, records workunit lifecycle spans — virtual
	// seconds in sim mode, wall seconds in real mode.
	Trace *obs.Tracer
	// Log receives structured fleet/client events in real mode (nil =
	// silent). Ignored in sim mode, which has no daemons to narrate.
	Log *obs.Logger
	// ServerURLFile, when non-empty, receives the live server's base URL
	// as soon as the fleet is up (real mode only). CI smoke tests poll
	// the file, then curl /healthz and /ops against the running fleet.
	ServerURLFile string
}

// RunScenario validates, compiles and runs a scenario to completion on
// the engine opts.Mode selects.
func RunScenario(sc *Scenario, opts Options) (*Report, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	mode, err := ParseMode(string(opts.Mode))
	if err != nil {
		return nil, err
	}
	if err := sc.SupportsMode(mode); err != nil {
		return nil, err
	}
	if opts.Seed != nil {
		sc = &Scenario{
			Name:        sc.Name,
			Description: sc.Description,
			Fleet:       sc.Fleet,
			Events:      sc.Events,
			Asserts:     sc.Asserts,
		}
		sc.Fleet.Seed = *opts.Seed
	}
	if mode == ModeReal {
		return runReal(sc, opts)
	}
	return runSim(sc, opts)
}

// traceTo appends a line to the report's trace, echoing to Progress.
func (rep *Report) traceTo(progress io.Writer, line string) {
	rep.Trace = append(rep.Trace, line)
	if progress != nil {
		fmt.Fprintln(progress, line)
	}
}

// finishReport assembles the post-run bookkeeping shared by both
// engines: the closing trace line, the fidelity stats and the
// assertion checks. wallPerVirtual converts the registry's histogram
// values back into virtual seconds (1 in sim mode, where histograms
// are already virtual; the time scale in real mode, where they are
// wall-clock).
func (rep *Report) finish(sc *Scenario, opts Options, res *vcsim.Result, wallPerVirtual float64) {
	rep.Result = res
	rep.traceTo(opts.Progress, fmt.Sprintf("[%7.3fh] done: %d epochs, final accuracy %.4f, issued %d, reissued %d, timeouts %d",
		res.Hours, len(res.Curve.Points), res.Curve.FinalValue(), res.Issued, res.Reissued, res.Timeouts))
	rep.Stats = buildStats(sc, rep.Mode, res, rep.WallclockSeconds, rep.Metrics, wallPerVirtual)
	rep.Checks, rep.Passed = evaluate(sc.Asserts, res, rep.WallclockSeconds)
}

// runRegistry picks the registry a run records into: the caller's, or a
// private one so the fidelity stats always have percentiles to read.
func runRegistry(opts Options) *obs.Registry {
	if opts.Metrics != nil {
		return opts.Metrics
	}
	return obs.NewRegistry()
}

// buildStats extracts the engine-independent fidelity summary.
func buildStats(sc *Scenario, mode Mode, res *vcsim.Result, wallSec float64, reg *obs.Registry, wallPerVirtual float64) metrics.RunStats {
	seed := sc.Fleet.Seed
	if seed == 0 {
		seed = 1
	}
	toTarget := 0
	if target := sc.Fleet.TargetAccuracy; target > 0 {
		toTarget = -1
		for _, p := range res.Curve.Points {
			if p.Value >= target {
				toTarget = p.Epoch
				break
			}
		}
	}
	st := metrics.RunStats{
		Scenario:       sc.Name,
		Mode:           string(mode),
		Seed:           seed,
		Epochs:         len(res.Curve.Points),
		FinalAccuracy:  res.Curve.FinalValue(),
		EpochsToTarget: toTarget,
		Hours:          res.Hours,
		Issued:         res.Issued,
		Reissued:       res.Reissued,
		Timeouts:       res.Timeouts,
		AssignMix:      res.AssignMix,
		WallSeconds:    wallSec,
	}
	if reg != nil {
		if wallPerVirtual <= 0 {
			wallPerVirtual = 1
		}
		if h := reg.FindHistogram(boinc.MetricAssignWait); h != nil && h.Count() > 0 {
			st.AssignP50 = h.Quantile(0.5) / wallPerVirtual
			st.AssignP95 = h.Quantile(0.95) / wallPerVirtual
			st.AssignP99 = h.Quantile(0.99) / wallPerVirtual
		}
		hits := reg.CounterValue(boinc.MetricCacheHitFiles)
		if total := hits + reg.CounterValue(boinc.MetricCacheMissFiles); total > 0 {
			st.CacheHitRatio = float64(hits) / float64(total)
		}
	}
	return st
}

// runSim compiles the scenario onto the virtual-time simulator.
func runSim(sc *Scenario, opts Options) (*Report, error) {
	cfg, err := sc.BuildConfig()
	if err != nil {
		return nil, err
	}
	// Instrumentation is passive (DESIGN.md §10): the registry and tracer
	// observe the run without perturbing it, so the determinism contract
	// — identical trace with or without them — holds.
	reg := runRegistry(opts)
	cfg.Metrics = reg
	cfg.Trace = opts.Trace
	if opts.Progress != nil {
		// Narrate the run live through the simulator's observer hooks.
		// These lines go only to Progress, not into Trace: the trace
		// records injected events and stays the determinism contract's
		// compact fingerprint.
		cfg.Observer = vcsim.ObserverFuncs{
			Epoch: func(e vcsim.EpochEvent) {
				fmt.Fprintf(opts.Progress, "[%7.3fh] epoch %d closed: accuracy %.4f [%.4f, %.4f]\n",
					e.Hours, e.Summary.Epoch, e.Summary.Mean, e.Summary.Lo, e.Summary.Hi)
			},
			Timeout: func(e vcsim.TimeoutEvent) {
				fmt.Fprintf(opts.Progress, "[%7.3fh] deadline sweep expired %d result(s)\n", e.Hours, e.Expired)
			},
		}
	}
	s, err := vcsim.Start(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}

	rep := &Report{Scenario: sc, Mode: ModeSim, Metrics: reg}
	workload := sc.Fleet.Workload
	if workload == "" {
		workload = "quick"
	}
	lc := s.Config()
	rep.traceTo(opts.Progress, fmt.Sprintf("scenario %s: P%dC%dT%d %s workload, seed %d, %d events, %d assertions",
		sc.Name, lc.PServers, len(lc.ClientInstances), lc.TasksPerClient,
		workload, lc.Seed, len(sc.Events), len(sc.Asserts)))

	// Events flow through the shared ops core (DESIGN.md §12): the same
	// delegation the /ops admin API and the CLI drive, so every scenario
	// action lands in vcdl_ops_actions_total. The wrapping is passive —
	// pure delegation plus counter increments — so golden traces are
	// byte-identical with or without it.
	ctrl := ops.NewCore(s, reg)
	eng := s.Engine()
	var evErr error
	for _, ev := range sc.Events {
		ev := ev
		eng.ScheduleAt(ev.At(), func() {
			if id := targetOf(ev); id != "" && !ctrl.KnownClient(id) {
				msg := fmt.Sprintf("event %q targets client %q, which never existed in this run", ev.Desc(), id)
				rep.traceTo(opts.Progress, fmt.Sprintf("[%7.3fh] ERROR: %s", eng.NowHours(), msg))
				if evErr == nil {
					evErr = fmt.Errorf("scenario %s: %s", sc.Name, msg)
				}
				return
			}
			rep.traceTo(opts.Progress, fmt.Sprintf("[%7.3fh] %s", eng.NowHours(), ev.Apply(ctrl)))
		})
	}

	start := time.Now()
	res, err := s.Run()
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	if evErr != nil {
		return nil, evErr
	}
	rep.WallclockSeconds = time.Since(start).Seconds()
	rep.finish(sc, opts, res, 1)
	return rep, nil
}

// Summary renders the post-run report (trace is printed separately, via
// Options.Progress or Report.Trace).
func (rep *Report) Summary() string {
	res := rep.Result
	s := fmt.Sprintf("scenario %-24s %2d epochs  %7.2f h virtual  acc %.4f  (%.2fs wall, %s)\n",
		rep.Scenario.Name, len(res.Curve.Points), res.Hours, res.Curve.FinalValue(), rep.WallclockSeconds, rep.Mode)
	for _, c := range rep.Checks {
		s += "  " + c.String() + "\n"
	}
	if len(rep.Checks) == 0 {
		s += "  (no assertions)\n"
	} else if rep.Passed {
		s += fmt.Sprintf("  %d/%d assertions passed\n", len(rep.Checks), len(rep.Checks))
	} else {
		n := 0
		for _, c := range rep.Checks {
			if c.Pass {
				n++
			}
		}
		s += fmt.Sprintf("  %d/%d assertions passed\n", n, len(rep.Checks))
	}
	return s
}
