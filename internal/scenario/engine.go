package scenario

import (
	"fmt"
	"io"
	"time"

	"vcdl/internal/vcsim"
)

// Report is the outcome of one scenario run.
type Report struct {
	Scenario *Scenario
	Result   *vcsim.Result
	// Trace records every applied event with its virtual time, plus the
	// run's closing summary — the determinism contract is that the same
	// scenario and seed always produce an identical trace.
	Trace []string
	// WallclockSeconds is real elapsed time (excluded from Trace so the
	// trace stays deterministic).
	WallclockSeconds float64
	Checks           []Check
	Passed           bool
}

// Options tunes a scenario run.
type Options struct {
	// Seed overrides the scenario's fleet seed when non-nil.
	Seed *int64
	// Progress, when non-nil, receives trace lines as they happen.
	Progress io.Writer
}

// RunScenario validates, compiles and runs a scenario to completion.
func RunScenario(sc *Scenario, opts Options) (*Report, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if opts.Seed != nil {
		sc = &Scenario{
			Name:        sc.Name,
			Description: sc.Description,
			Fleet:       sc.Fleet,
			Events:      sc.Events,
			Asserts:     sc.Asserts,
		}
		sc.Fleet.Seed = *opts.Seed
	}
	cfg, err := sc.BuildConfig()
	if err != nil {
		return nil, err
	}
	if opts.Progress != nil {
		// Narrate the run live through the simulator's observer hooks.
		// These lines go only to Progress, not into Trace: the trace
		// records injected events and stays the determinism contract's
		// compact fingerprint.
		cfg.Observer = vcsim.ObserverFuncs{
			Epoch: func(e vcsim.EpochEvent) {
				fmt.Fprintf(opts.Progress, "[%7.3fh] epoch %d closed: accuracy %.4f [%.4f, %.4f]\n",
					e.Hours, e.Summary.Epoch, e.Summary.Mean, e.Summary.Lo, e.Summary.Hi)
			},
			Timeout: func(e vcsim.TimeoutEvent) {
				fmt.Fprintf(opts.Progress, "[%7.3fh] deadline sweep expired %d result(s)\n", e.Hours, e.Expired)
			},
		}
	}
	s, err := vcsim.Start(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}

	rep := &Report{Scenario: sc}
	trace := func(line string) {
		rep.Trace = append(rep.Trace, line)
		if opts.Progress != nil {
			fmt.Fprintln(opts.Progress, line)
		}
	}
	workload := sc.Fleet.Workload
	if workload == "" {
		workload = "quick"
	}
	live := s.Config()
	trace(fmt.Sprintf("scenario %s: P%dC%dT%d %s workload, seed %d, %d events, %d assertions",
		sc.Name, live.PServers, len(live.ClientInstances), live.TasksPerClient,
		workload, live.Seed, len(sc.Events), len(sc.Asserts)))

	eng := s.Engine()
	for _, ev := range sc.Events {
		ev := ev
		eng.ScheduleAt(ev.At(), func() {
			trace(fmt.Sprintf("[%7.3fh] %s", eng.NowHours(), ev.Apply(s)))
		})
	}

	start := time.Now()
	res, err := s.Run()
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	rep.WallclockSeconds = time.Since(start).Seconds()
	rep.Result = res
	trace(fmt.Sprintf("[%7.3fh] done: %d epochs, final accuracy %.4f, issued %d, reissued %d, timeouts %d",
		res.Hours, len(res.Curve.Points), res.Curve.FinalValue(), res.Issued, res.Reissued, res.Timeouts))
	rep.Checks, rep.Passed = evaluate(sc.Asserts, res, rep.WallclockSeconds)
	return rep, nil
}

// Summary renders the post-run report (trace is printed separately, via
// Options.Progress or Report.Trace).
func (rep *Report) Summary() string {
	res := rep.Result
	s := fmt.Sprintf("scenario %-24s %2d epochs  %7.2f h virtual  acc %.4f  (%.2fs wall)\n",
		rep.Scenario.Name, len(res.Curve.Points), res.Hours, res.Curve.FinalValue(), rep.WallclockSeconds)
	for _, c := range rep.Checks {
		s += "  " + c.String() + "\n"
	}
	if len(rep.Checks) == 0 {
		s += "  (no assertions)\n"
	} else if rep.Passed {
		s += fmt.Sprintf("  %d/%d assertions passed\n", len(rep.Checks), len(rep.Checks))
	} else {
		n := 0
		for _, c := range rep.Checks {
			if c.Pass {
				n++
			}
		}
		s += fmt.Sprintf("  %d/%d assertions passed\n", n, len(rep.Checks))
	}
	return s
}
