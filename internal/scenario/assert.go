package scenario

import (
	"fmt"
	"math"

	"vcdl/internal/vcsim"
)

// Assertion is one metric bound checked after a scenario run, e.g.
// "final_accuracy >= 0.35" or "accuracy@1.5h >= 0.2". Accuracy bands are
// two assertions (>= lo, <= hi).
type Assertion struct {
	// Metric is the canonical metric name; parameterized metrics
	// (accuracy@<time>, hours_to_acc@<value>) carry their parameter in Arg.
	Metric string
	Arg    float64
	Op     string // <= >= < > == !=
	Value  float64
	Raw    string // source text for reporting
}

// knownMetrics maps plain metric names to their extractors.
var knownMetrics = map[string]func(res *vcsim.Result, wallSec float64) float64{
	"final_accuracy":       func(r *vcsim.Result, _ float64) float64 { return r.Curve.FinalValue() },
	"epochs":               func(r *vcsim.Result, _ float64) float64 { return float64(len(r.Curve.Points)) },
	"hours":                func(r *vcsim.Result, _ float64) float64 { return r.Hours },
	"issued":               func(r *vcsim.Result, _ float64) float64 { return float64(r.Issued) },
	"reissued":             func(r *vcsim.Result, _ float64) float64 { return float64(r.Reissued) },
	"timeouts":             func(r *vcsim.Result, _ float64) float64 { return float64(r.Timeouts) },
	"mb_downloaded":        func(r *vcsim.Result, _ float64) float64 { return float64(r.BytesDownloaded) / 1e6 },
	"mb_uploaded":          func(r *vcsim.Result, _ float64) float64 { return float64(r.BytesUploaded) / 1e6 },
	"cost_standard_usd":    func(r *vcsim.Result, _ float64) float64 { return r.CostStandardUSD },
	"cost_preemptible_usd": func(r *vcsim.Result, _ float64) float64 { return r.CostPreemptibleUSD },
	"max_ps":               func(r *vcsim.Result, _ float64) float64 { return float64(r.MaxPSUsed) },
	// Quorum/validation metrics (both modes): results the validator
	// rejected, and replacement issues (reissues + quorum replenishment).
	"invalid_results":   func(r *vcsim.Result, _ float64) float64 { return float64(r.InvalidResults) },
	"quorum_retries":    func(r *vcsim.Result, _ float64) float64 { return float64(r.QuorumRetries) },
	"wallclock_seconds": func(_ *vcsim.Result, w float64) float64 { return w },
	// Data-plane and checkpoint metrics (real mode only; Modes marks
	// scenarios asserting on them real-only).
	"blob_mb":         func(r *vcsim.Result, _ float64) float64 { return float64(r.BlobBytes) / 1e6 },
	"blob_resumes":    func(r *vcsim.Result, _ float64) float64 { return float64(r.BlobResumes) },
	"blob_cache_hits": func(r *vcsim.Result, _ float64) float64 { return float64(r.BlobCacheHits) },
	"ckpt_epoch":      func(r *vcsim.Result, _ float64) float64 { return float64(r.CkptEpoch) },
	"ckpt_restores":   func(r *vcsim.Result, _ float64) float64 { return float64(r.CkptRestores) },
}

// check validates the assertion's shape (used by Scenario.Validate).
func (a Assertion) check() error {
	switch a.Op {
	case "<=", ">=", "<", ">", "==", "!=":
	default:
		return fmt.Errorf("assertion %q: unknown operator %q", a.Raw, a.Op)
	}
	switch a.Metric {
	case "accuracy_at", "hours_to_acc":
		return nil
	}
	if _, ok := knownMetrics[a.Metric]; !ok {
		return fmt.Errorf("assertion %q: unknown metric %q", a.Raw, a.Metric)
	}
	return nil
}

// Actual extracts the metric value from a finished run. The second
// return is false when the metric is undefined for the run (e.g.
// hours_to_acc on a run that never reached the accuracy).
func (a Assertion) Actual(res *vcsim.Result, wallSec float64) (float64, bool) {
	switch a.Metric {
	case "accuracy_at":
		// Value of the last epoch completed at or before the given
		// virtual time (0 if no epoch completed by then); undefined only
		// when the run produced no epochs at all.
		v := 0.0
		for _, p := range res.Curve.Points {
			if p.Hours*3600 <= a.Arg {
				v = p.Value
			}
		}
		return v, len(res.Curve.Points) > 0
	case "hours_to_acc":
		return res.Curve.TimeToReach(a.Arg)
	}
	fn, ok := knownMetrics[a.Metric]
	if !ok {
		return 0, false
	}
	return fn(res, wallSec), true
}

// holds applies the comparison.
func (a Assertion) holds(actual float64) bool {
	const tol = 1e-9
	switch a.Op {
	case "<=":
		return actual <= a.Value+tol
	case ">=":
		return actual >= a.Value-tol
	case "<":
		return actual < a.Value
	case ">":
		return actual > a.Value
	case "==":
		return math.Abs(actual-a.Value) <= tol
	case "!=":
		return math.Abs(actual-a.Value) > tol
	}
	return false
}

// Check is the outcome of one assertion.
type Check struct {
	Assertion Assertion
	Actual    float64
	// Defined is false when the metric had no value (treated as fail).
	Defined bool
	Pass    bool
}

// String renders a pass/fail line.
func (c Check) String() string {
	status := "PASS"
	if !c.Pass {
		status = "FAIL"
	}
	if !c.Defined {
		return fmt.Sprintf("%s  %-40s (metric undefined for this run)", status, c.Assertion.Raw)
	}
	return fmt.Sprintf("%s  %-40s actual %.4g", status, c.Assertion.Raw, c.Actual)
}

// evaluate runs every assertion against the finished run.
func evaluate(asserts []Assertion, res *vcsim.Result, wallSec float64) (checks []Check, passed bool) {
	passed = true
	for _, a := range asserts {
		actual, defined := a.Actual(res, wallSec)
		c := Check{Assertion: a, Actual: actual, Defined: defined, Pass: defined && a.holds(actual)}
		if !c.Pass {
			passed = false
		}
		checks = append(checks, c)
	}
	return checks, passed
}
