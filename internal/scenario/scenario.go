// Package scenario adds a declarative fault/churn scenario layer over
// both execution stacks: a scenario file names a fleet, a list of timed
// events (volunteer churn, preemption storms, region outages, straggler
// slowdowns, parameter-server failover, live scheduler reconfiguration)
// and a list of assertions over the run's metrics — opening the whole
// class of operational workloads the paper's fixed PnCnTn evaluation
// never exercises (DESIGN.md §5). The full grammar reference is
// docs/scenario-dsl.md.
//
// The same file compiles onto two engines through one Injector
// interface: ModeSim schedules the events on the deterministic
// simulator's virtual clock (vcsim.Sim hooks; identical trace per
// seed), and ModeReal maps them onto the wall clock against a live
// fleet — an in-process BOINC server plus real HTTP client daemons
// (internal/live) — with all reported times mapped back into virtual
// hours. Scenario.Modes classifies which engines a file supports, and
// both engines fill metrics.RunStats, the rows of the sim↔real
// fidelity CSV (DESIGN.md §9).
package scenario

import (
	"fmt"
	"strings"

	"vcdl/internal/boinc"
	"vcdl/internal/cloud"
	"vcdl/internal/core"
	"vcdl/internal/data"
	"vcdl/internal/nn"
	"vcdl/internal/vcsim"
)

// Scenario is one parsed scenario file.
type Scenario struct {
	Name        string
	Description string
	Fleet       FleetSpec
	Events      []Event
	Asserts     []Assertion
}

// FleetSpec declares the simulated deployment a scenario starts from.
// Zero values take the workload's defaults.
type FleetSpec struct {
	// Workload selects the training job: "quick" (default; the test
	// suite's small CNN on a 500-sample synthetic corpus, seconds per
	// run) or "paper" (the paper-calibrated MiniResNetV2 setup).
	Workload string
	// PServers, Clients, Tasks are the paper's Pn/Cn/Tn.
	PServers int
	Clients  int
	Tasks    int
	// ClientType pins the fleet to one Table-I type ("" = round-robin
	// over all four client types).
	ClientType string
	// Epochs bounds the run; Subtasks overrides shards per epoch.
	Epochs   int
	Subtasks int
	Seed     int64
	// TimeoutSeconds is the initial BOINC result deadline.
	TimeoutSeconds float64
	// Regions spreads the fleet round-robin across regions.
	Regions []cloud.Region
	// StickyOff disables client-side input caching.
	StickyOff bool
	// AutoScale enables the §III-D dynamic PS pool, capped at MaxPServers.
	AutoScale   bool
	MaxPServers int
	// TargetAccuracy stops the run early when reached (0 = disabled).
	TargetAccuracy float64
	// Policy selects the scheduler's assignment policy by registry name
	// plus optional arguments, e.g. ["random", "7"]. Empty keeps the
	// default paper policy. Scenarios can also hot-swap mid-run with an
	// `at <time> policy <name>` event.
	Policy []string
	// Compute selects the compute backend by spec (core.BackendNames;
	// "" = real). cached/parallel change only wall clock, so traces and
	// assertions are backend-independent; surrogate trades curve
	// fidelity for capacity-run speed.
	Compute string
	// ComputeWorkers sizes the parallel backend's pool (0 = GOMAXPROCS).
	ComputeWorkers int
	// Replication issues this many copies of every subtask (0/1 = one).
	Replication int
	// Byzantine/ByzantineCount make the first ByzantineCount clients of
	// the fleet adversarial with the named behavior
	// (boinc.ByzantineBehaviors). Both engines support it; pair it with
	// `replicate` so quorum validation has honest copies to agree on.
	Byzantine      string
	ByzantineCount int
	// Procs asks the real-mode driver to run clients as separate OS
	// processes instead of in-process goroutines (real mode only; the
	// CLI's -procs flag is the same switch).
	Procs bool
	// Blobs enables the content-addressed data plane: inputs travel by
	// digest over /blob/{digest} with resumable verified transfers and
	// per-client caches that survive rejoin (real mode only — the
	// simulator has no byte-level data plane; DESIGN.md §11).
	Blobs bool
	// Checkpoint persists epoch checkpoints through the PS group's store
	// so ps-fail restores parameters instead of restarting the epoch
	// (real mode only).
	Checkpoint bool
	// StoreKind selects the parameter store backend: "eventual"
	// (default) or "strong" (real mode only; the CLI's -store flag
	// overrides it).
	StoreKind string
	// Shards stripes the live server's scheduler state so concurrent
	// requests on different stripes never contend (0/1 = single stripe;
	// real mode only — the simulator is single-threaded; DESIGN.md §14).
	Shards int
	// AdmitMax/AdmitQueue bound concurrent scheduler+upload handling:
	// beyond AdmitMax running and AdmitQueue waiting, requests are shed
	// with 429 + Retry-After (0 = unlimited; real mode only).
	AdmitMax   int
	AdmitQueue int
}

// Event is one timed injection against a running engine (simulated or
// real — the same event applies to either through Injector).
type Event interface {
	// At is the virtual time (seconds) the event fires. The sim engine
	// fires it on the virtual clock; the real engine maps it onto the
	// wall clock through the run's time scale.
	At() float64
	// Desc renders the event for listings and validation output.
	Desc() string
	// Apply mutates the running engine and returns a trace line
	// fragment describing what happened.
	Apply(s Injector) string
}

// instanceByName resolves a fleet/client type name: the clientA..D
// aliases or the Table I instance names.
func instanceByName(name string) (cloud.InstanceType, bool) {
	return cloud.InstanceByName(name)
}

// regionByName resolves a region name.
func regionByName(name string) (cloud.Region, bool) {
	for _, r := range cloud.Regions() {
		if string(r) == name {
			return r, true
		}
	}
	return "", false
}

// Validate performs the semantic checks that the line parser cannot.
func (sc *Scenario) Validate() error {
	var errs []string
	if sc.Name == "" {
		errs = append(errs, "missing 'scenario <name>' header")
	}
	f := sc.Fleet
	switch f.Workload {
	case "", "quick", "paper":
	default:
		errs = append(errs, fmt.Sprintf("unknown workload %q (want quick or paper)", f.Workload))
	}
	if f.ClientType != "" {
		if _, ok := instanceByName(f.ClientType); !ok {
			errs = append(errs, fmt.Sprintf("unknown client type %q", f.ClientType))
		}
	}
	if len(f.Policy) > 0 {
		if _, err := boinc.NewPolicy(f.Policy[0], f.Policy[1:]...); err != nil {
			errs = append(errs, err.Error())
		}
	}
	if f.ByzantineCount > 0 && !boinc.ValidByzantine(f.Byzantine) {
		errs = append(errs, fmt.Sprintf("unknown byzantine behavior %q (want one of %v)", f.Byzantine, boinc.ByzantineBehaviors))
	}
	if err := core.ValidateBackendSpec(f.Compute); err != nil {
		errs = append(errs, err.Error())
	}
	prev := 0.0
	for _, ev := range sc.Events {
		if ev.At() < 0 {
			errs = append(errs, fmt.Sprintf("event %q fires at negative time", ev.Desc()))
		}
		if ev.At() < prev {
			errs = append(errs, fmt.Sprintf("event %q fires before the preceding event (events must be time-ordered)", ev.Desc()))
		}
		prev = ev.At()
	}
	for _, a := range sc.Asserts {
		if err := a.check(); err != nil {
			errs = append(errs, err.Error())
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("scenario %s: %s", sc.Name, strings.Join(errs, "; "))
	}
	return nil
}

// BuildReal lowers the fleet spec for the real-mode driver: the same
// simulation config BuildConfig produces (the real engine reads the
// workload, fleet, timeout and policy from it) plus the serializable
// model spec the live server publishes as model.json. Only the quick
// workload has a wire-able spec; paper-workload scenarios are sim-only.
func (sc *Scenario) BuildReal() (vcsim.Config, core.ModelSpec, error) {
	if w := sc.Fleet.Workload; w != "" && w != "quick" {
		return vcsim.Config{}, core.ModelSpec{}, fmt.Errorf("scenario %s: workload %q has no real-mode lowering", sc.Name, w)
	}
	cfg, err := sc.BuildConfig()
	if err != nil {
		return vcsim.Config{}, core.ModelSpec{}, err
	}
	dc := data.DefaultSynthConfig()
	spec := core.SmallCNNSpec(dc.C, dc.H, dc.W, dc.Classes)
	builder, err := spec.Builder()
	if err != nil {
		return vcsim.Config{}, core.ModelSpec{}, err
	}
	// Server, evaluator and clients all build the architecture from the
	// published spec, so they cannot drift from one another.
	cfg.Job.Builder = builder
	return cfg, spec, nil
}

// BuildConfig turns the fleet spec into a runnable simulation config.
func (sc *Scenario) BuildConfig() (vcsim.Config, error) {
	f := sc.Fleet
	pn, cn, tn := f.PServers, f.Clients, f.Tasks
	if pn < 1 {
		pn = 1
	}
	if cn < 1 {
		cn = 3
	}
	if tn < 1 {
		tn = 2
	}
	seed := f.Seed
	if seed == 0 {
		seed = 1
	}

	var job core.JobConfig
	var corpus *data.Corpus
	switch f.Workload {
	case "", "quick":
		epochs := f.Epochs
		if epochs < 1 {
			epochs = 4
		}
		dc := data.DefaultSynthConfig()
		dc.NTrain, dc.NVal, dc.NTest = 500, 200, 200
		dc.NoiseStd = 0.4
		dc.Seed = seed
		var err error
		corpus, err = data.GenerateSynth(dc)
		if err != nil {
			return vcsim.Config{}, err
		}
		job = core.DefaultJobConfig(nn.SmallCNNBuilder(dc.C, dc.H, dc.W, dc.Classes))
		job.Subtasks = 10
		job.MaxEpochs = epochs
		job.BatchSize = 25
		job.LocalPasses = 2
		job.LearningRate = 0.01
		job.ValSubset = 100
		job.Seed = seed
	case "paper":
		epochs := f.Epochs
		if epochs < 1 {
			epochs = 40
		}
		setup, err := vcsim.NewPaperSetup(seed, epochs)
		if err != nil {
			return vcsim.Config{}, err
		}
		job, corpus = setup.Job, setup.Corpus
	default:
		return vcsim.Config{}, fmt.Errorf("scenario %s: unknown workload %q", sc.Name, f.Workload)
	}
	if f.Subtasks > 0 {
		job.Subtasks = f.Subtasks
	}
	if f.TargetAccuracy > 0 {
		job.TargetAccuracy = f.TargetAccuracy
	}

	cfg := vcsim.DefaultConfig(job, corpus, pn, cn, tn)
	if f.ClientType != "" {
		it, ok := instanceByName(f.ClientType)
		if !ok {
			return vcsim.Config{}, fmt.Errorf("scenario %s: unknown client type %q", sc.Name, f.ClientType)
		}
		fleet := make([]cloud.InstanceType, cn)
		for i := range fleet {
			fleet[i] = it
		}
		cfg.ClientInstances = fleet
	}
	cfg.Regions = append([]cloud.Region(nil), f.Regions...)
	if f.TimeoutSeconds > 0 {
		cfg.TimeoutSeconds = f.TimeoutSeconds
	}
	cfg.DisableSticky = f.StickyOff
	cfg.AutoScalePS = f.AutoScale
	cfg.MaxPServers = f.MaxPServers
	cfg.Backend = f.Compute
	cfg.ComputeWorkers = f.ComputeWorkers
	cfg.Replication = f.Replication
	cfg.Byzantine = f.Byzantine
	cfg.ByzantineClients = f.ByzantineCount
	cfg.Seed = seed
	if len(f.Policy) > 0 {
		p, err := boinc.NewPolicy(f.Policy[0], f.Policy[1:]...)
		if err != nil {
			return vcsim.Config{}, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		cfg.Policy = p
	}
	return cfg, nil
}
