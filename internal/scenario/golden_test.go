package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// supportsSim reports whether a bundled scenario can run on the
// simulator at all — the real-only recovery scenarios (data plane,
// durable checkpoints; DESIGN.md §11) have no sim goldens.
func supportsSim(sc *Scenario) bool {
	modes, _ := sc.Modes()
	for _, m := range modes {
		if m == ModeSim {
			return true
		}
	}
	return false
}

// TestBundledScenarioGolden pins the end-to-end output of every bundled
// scenario against golden trace files: the same scenario file and seed
// must keep producing the identical event trace and closing metrics
// across refactors (in particular, the scheduler's default `paper`
// policy must stay byte-identical to the pre-policy-API behaviour).
// Regenerate with `go test ./internal/scenario -run Golden -update`.
func TestBundledScenarioGolden(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.txt"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no bundled scenarios found: %v", err)
	}
	for _, file := range files {
		file := file
		name := strings.TrimSuffix(filepath.Base(file), ".txt")
		t.Run(name, func(t *testing.T) {
			sc, err := Load(file)
			if err != nil {
				t.Fatal(err)
			}
			if !supportsSim(sc) {
				t.Skipf("real-only scenario (no sim golden); covered by the real-mode tests")
			}
			rep, err := RunScenario(sc, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := strings.Join(rep.Trace, "\n") + "\n"
			golden := filepath.Join("testdata", "golden", name+".trace")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("trace drifted from golden %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestBundledScenarioBackendEquivalence runs every bundled scenario
// under the cached and parallel compute backends and asserts the event
// trace matches the real-backend golden byte for byte — the scenario
// half of the compute-backend equivalence contract (DESIGN.md §8).
func TestBundledScenarioBackendEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("backend × scenario sweep skipped in -short (covered per-config by vcsim's TestBackendEquivalence)")
	}
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.txt"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no bundled scenarios found: %v", err)
	}
	for _, file := range files {
		file := file
		name := strings.TrimSuffix(filepath.Base(file), ".txt")
		for _, backend := range []string{"cached", "parallel+cached"} {
			backend := backend
			t.Run(name+"/"+backend, func(t *testing.T) {
				sc, err := Load(file)
				if err != nil {
					t.Fatal(err)
				}
				if !supportsSim(sc) {
					t.Skipf("real-only scenario (no sim golden); covered by the real-mode tests")
				}
				if sc.Fleet.Compute != "" {
					t.Skipf("scenario pins its own backend %q", sc.Fleet.Compute)
				}
				sc.Fleet.Compute = backend
				sc.Fleet.ComputeWorkers = 2
				rep, err := RunScenario(sc, Options{})
				if err != nil {
					t.Fatal(err)
				}
				got := strings.Join(rep.Trace, "\n") + "\n"
				want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".trace"))
				if err != nil {
					t.Fatalf("missing golden file (run with -update): %v", err)
				}
				if got != string(want) {
					t.Errorf("%s backend drifted from the real-backend golden:\n--- got ---\n%s--- want ---\n%s",
						backend, got, want)
				}
			})
		}
	}
}
