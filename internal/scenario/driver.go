package scenario

import (
	"fmt"

	"vcdl/internal/boinc"
	"vcdl/internal/cloud"
)

// Mode names a scenario execution engine.
type Mode string

const (
	// ModeSim compiles the scenario onto the deterministic virtual-time
	// simulator (vcsim) — the default.
	ModeSim Mode = "sim"
	// ModeReal compiles the same scenario onto a live fleet: an
	// in-process BOINC server plus real client daemons (goroutines or
	// OS processes) speaking the HTTP protocol, with virtual event
	// times mapped onto the wall clock (internal/live, DESIGN.md §9).
	ModeReal Mode = "real"
)

// ParseMode validates a -mode flag value.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case "", ModeSim:
		return ModeSim, nil
	case ModeReal:
		return ModeReal, nil
	}
	return "", fmt.Errorf("unknown mode %q (want sim or real)", s)
}

// Injector is the engine-side injection surface scenario events drive.
// Both engines implement it: *vcsim.Sim natively (its hooks were built
// for this) and *live.Fleet by translating each call into client
// controls, process kills or scheduler reconfiguration on the live
// deployment. Events that only one engine can express (graceful
// detach) type-assert for the extra capability instead.
type Injector interface {
	ActiveClients() []string
	AddClient(inst cloud.InstanceType, region cloud.Region) string
	RemoveClients(n int) []string
	RemoveClient(id string) bool
	SlowClient(id string, factor float64) bool
	SlowClientAt(i int, factor float64) (string, bool)
	SetPreemptProb(p float64)
	PreemptModel(p float64) cloud.PreemptModel
	FleetShape() (subtasks, tasksPerClient int)
	SetRegionRTT(region cloud.Region, rtt float64)
	ClearRegionRTT(region cloud.Region)
	PServers() int
	SetPServers(n int)
	SetTimeout(seconds float64)
	SetReliabilityFloor(floor float64)
	SetPolicy(p boinc.Policy)
	PolicyName() string
}

// Detacher is the graceful-departure capability only the real engine
// has: the client finishes its in-flight assignments before leaving.
type Detacher interface {
	DetachClient(id string) bool
	DetachClients(n int) []string
}

// Rejoiner is the churn-recovery capability only the real engine has:
// a departed client is revived under its original ID, keeping its blob
// cache warm (DESIGN.md §11).
type Rejoiner interface {
	RejoinClient(id string) bool
	RejoinClients(n int) []string
}

// BlobKiller is the data-plane fault-injection capability only the real
// engine has: sever every blob transfer after n bytes (0 disarms).
type BlobKiller interface {
	SetBlobKill(n int64) bool
}

// Cordoner quarantines a client (the scheduler answers its work requests
// with nothing) and releases it again. Both engines have it.
type Cordoner interface {
	Cordon(id string, on bool) bool
}

// Byzantiner switches a client's adversarial behavior mid-run
// (boinc.ByzantineBehaviors; "" or "off" restores honesty). Both
// engines have it: the simulator flips the client's behavior flag, the
// real engine ships it to the daemon through ClientControl.
type Byzantiner interface {
	SetByzantine(id, behavior string) bool
}

// targeted is implemented by events that address one client by id. The
// engines check the id against the run's full membership history before
// applying: an event targeting an id that never existed fails the run
// (a typo'd scenario should not pass silently), while an id that
// existed but departed still applies normally and traces its outcome.
type targeted interface {
	TargetID() string
}

// targetOf returns the event's target client id, or "" when the event
// is not id-addressed (counts, indexes, fleet-wide knobs).
func targetOf(ev Event) string {
	if t, ok := ev.(targeted); ok {
		return t.TargetID()
	}
	return ""
}

// Modes reports which engines can execute the scenario, and for each
// unsupported engine the constructs that rule it out.
func (sc *Scenario) Modes() (modes []Mode, reasons map[Mode][]string) {
	reasons = map[Mode][]string{}
	f := sc.Fleet

	// Simulator-only constructs: the real engine trains for real, so it
	// has no compute backends to swap, runs only the quick workload at
	// scenario time scales, has no §III-D autoscaler model and no cloud
	// billing model.
	var noReal []string
	if f.Workload == "paper" {
		noReal = append(noReal, "workload paper (real mode runs the quick workload)")
	}
	if f.Compute != "" && f.Compute != "real" {
		noReal = append(noReal, fmt.Sprintf("compute %s (compute backends are a simulator concept)", f.Compute))
	}
	if f.AutoScale {
		noReal = append(noReal, "autoscale (the PS autoscaler is modelled only in the simulator)")
	}
	for _, a := range sc.Asserts {
		switch a.Metric {
		case "cost_standard_usd", "cost_preemptible_usd":
			noReal = append(noReal, fmt.Sprintf("assertion %q (cloud billing is modelled only in the simulator)", a.Raw))
		}
	}

	// Real-only constructs: process isolation, graceful detach and the
	// whole data-plane/checkpoint surface have no simulator equivalent —
	// the simulator's golden traces must stay byte-identical, so nothing
	// here may leak into sim runs.
	var noSim []string
	if f.Procs {
		noSim = append(noSim, "procs on (process-isolated clients need the real engine)")
	}
	if f.Blobs {
		noSim = append(noSim, "blobs on (the content-addressed data plane needs the real engine)")
	}
	if f.Checkpoint {
		noSim = append(noSim, "checkpoints on (durable PS checkpoints need the real engine)")
	}
	if f.StoreKind != "" {
		noSim = append(noSim, fmt.Sprintf("store %s (store selection is a real-engine concern)", f.StoreKind))
	}
	if f.Shards > 1 {
		noSim = append(noSim, fmt.Sprintf("shards %d (scheduler state striping only matters under real concurrency)", f.Shards))
	}
	if f.AdmitMax > 0 {
		noSim = append(noSim, fmt.Sprintf("admission %d %d (load shedding needs the real HTTP server)", f.AdmitMax, f.AdmitQueue))
	}
	for _, ev := range sc.Events {
		switch ev.(type) {
		case detachEvent:
			noSim = append(noSim, fmt.Sprintf("event %q (graceful detach needs the real engine; sim departures are abrupt)", ev.Desc()))
		case rejoinEvent:
			noSim = append(noSim, fmt.Sprintf("event %q (reviving departed clients needs the real engine)", ev.Desc()))
		case blobKillEvent:
			noSim = append(noSim, fmt.Sprintf("event %q (blob fault injection needs the real engine)", ev.Desc()))
		}
	}
	for _, a := range sc.Asserts {
		switch a.Metric {
		case "blob_mb", "blob_resumes", "blob_cache_hits", "ckpt_epoch", "ckpt_restores":
			noSim = append(noSim, fmt.Sprintf("assertion %q (data-plane/checkpoint metrics exist only in the real engine)", a.Raw))
		}
	}

	if len(noSim) == 0 {
		modes = append(modes, ModeSim)
	} else {
		reasons[ModeSim] = noSim
	}
	if len(noReal) == 0 {
		modes = append(modes, ModeReal)
	} else {
		reasons[ModeReal] = noReal
	}
	return modes, reasons
}

// SupportsMode reports whether the scenario can run under m, with the
// blocking constructs in the error when it cannot.
func (sc *Scenario) SupportsMode(m Mode) error {
	modes, reasons := sc.Modes()
	for _, got := range modes {
		if got == m {
			return nil
		}
	}
	list := reasons[m]
	return fmt.Errorf("scenario %s does not support -mode %s: %v", sc.Name, m, list)
}
