package scenario

import (
	"strings"
	"testing"
)

const policyScenario = `
scenario policy-hotswap
description FIFO start, deadline-aware mid-run.

fleet:
  clients 2
  epochs 2
  seed 4
  policy fifo

events:
  at 2m policy deadline-aware
  at 4m policy random 7

assert:
  epochs == 2
`

func TestPolicyDirectiveParsesAndBuilds(t *testing.T) {
	sc, err := Parse(strings.NewReader(policyScenario), "policy.txt")
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Fleet.Policy; len(got) != 1 || got[0] != "fifo" {
		t.Fatalf("fleet policy = %v", got)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg, err := sc.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Policy == nil || cfg.Policy.Name() != "fifo" {
		t.Fatalf("built policy = %v", cfg.Policy)
	}
	if len(sc.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(sc.Events))
	}
	if desc := sc.Events[0].Desc(); desc != "at 2m policy deadline-aware" {
		t.Fatalf("event desc = %q", desc)
	}
	if desc := sc.Events[1].Desc(); desc != "at 4m policy random 7" {
		t.Fatalf("event desc = %q", desc)
	}
}

func TestPolicyDirectiveRejectsUnknownNames(t *testing.T) {
	bad := strings.ReplaceAll(policyScenario, "policy fifo", "policy warp-speed")
	if _, err := Parse(strings.NewReader(bad), "policy.txt"); err == nil ||
		!strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("fleet error = %v", err)
	}
	bad = strings.ReplaceAll(policyScenario, "policy deadline-aware", "policy warp-speed")
	if _, err := Parse(strings.NewReader(bad), "policy.txt"); err == nil ||
		!strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("event error = %v", err)
	}
	bad = strings.ReplaceAll(policyScenario, "policy random 7", "policy random x")
	if _, err := Parse(strings.NewReader(bad), "policy.txt"); err == nil ||
		!strings.Contains(err.Error(), "bad seed") {
		t.Fatalf("argument error = %v", err)
	}
}

func TestPolicyHotSwapRuns(t *testing.T) {
	sc, err := Parse(strings.NewReader(policyScenario), "policy.txt")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("assertions failed:\n%s", rep.Summary())
	}
	trace := strings.Join(rep.Trace, "\n")
	for _, want := range []string{"scheduler policy fifo -> deadline-aware", "scheduler policy deadline-aware -> random"} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %q:\n%s", want, trace)
		}
	}
}
