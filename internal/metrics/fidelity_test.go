package metrics

import (
	"strings"
	"testing"
)

func TestMixString(t *testing.T) {
	s := RunStats{AssignMix: map[string]int{"fifo": 3, "paper": 12, "deadline-aware": 1}}
	if got := s.MixString(); got != "deadline-aware:1|fifo:3|paper:12" {
		t.Fatalf("MixString = %q", got)
	}
	if got := (RunStats{}).MixString(); got != "" {
		t.Fatalf("empty MixString = %q", got)
	}
}

func TestFidelityCSV(t *testing.T) {
	rows := []RunStats{
		{Scenario: "s", Mode: "sim", Seed: 7, Epochs: 4, EpochsToTarget: 3, FinalAccuracy: 0.61,
			Hours: 0.4028, Issued: 40, Reissued: 2, Timeouts: 1,
			AssignMix: map[string]int{"paper": 40},
			AssignP50: 12.5, AssignP95: 90, AssignP99: 240.25, CacheHitRatio: 0.5,
			WallSeconds: 0.88},
		{Scenario: "s", Mode: "real", Seed: 7, Epochs: 4, EpochsToTarget: -1, FinalAccuracy: 0.6,
			Hours: 0.3, Issued: 41, Reissued: 3, Timeouts: 2,
			AssignMix: map[string]int{"paper": 41}, WallSeconds: 18.1},
	}
	csv := FidelityCSV(rows)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), csv)
	}
	if lines[0] != FidelityHeader {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "s,sim,7,4,3,0.6100,0.4028,40,2,1,paper:40,12.50,90.00,240.25,0.500,0.88" {
		t.Fatalf("sim row = %q", lines[1])
	}
	if lines[2] != "s,real,7,4,-1,0.6000,0.3000,41,3,2,paper:41,0.00,0.00,0.00,0.000,18.10" {
		t.Fatalf("real row = %q", lines[2])
	}
	// Header and rows carry the same column count.
	want := len(strings.Split(FidelityHeader, ","))
	for _, l := range lines[1:] {
		if got := len(strings.Split(l, ",")); got != want {
			t.Fatalf("row %q has %d columns, want %d", l, got, want)
		}
	}
}

// TestFidelityCSVEmpty pins the degenerate reports: no runs at all, and
// a run that never completed an epoch (zero-value stats).
func TestFidelityCSVEmpty(t *testing.T) {
	if got := FidelityCSV(nil); got != FidelityHeader+"\n" {
		t.Fatalf("empty CSV = %q", got)
	}
	csv := FidelityCSV([]RunStats{{Scenario: "dead", Mode: "sim", Seed: 3}})
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), csv)
	}
	if lines[1] != "dead,sim,3,0,0,0.0000,0.0000,0,0,0,,0.00,0.00,0.00,0.000,0.00" {
		t.Fatalf("zero row = %q", lines[1])
	}
	if got, want := len(strings.Split(lines[1], ",")), len(strings.Split(FidelityHeader, ",")); got != want {
		t.Fatalf("zero row has %d columns, want %d", got, want)
	}
}

// TestFidelityCSVSingleEpoch covers a one-epoch run where the target
// was hit immediately (EpochsToTarget = first epoch).
func TestFidelityCSVSingleEpoch(t *testing.T) {
	row := RunStats{Scenario: "one", Mode: "real", Seed: 1, Epochs: 1, EpochsToTarget: 1,
		FinalAccuracy: 0.9999, Hours: 0.01, Issued: 6,
		AssignMix: map[string]int{"paper": 6}, CacheHitRatio: 1, WallSeconds: 2}
	if got := FidelityRow(row); got != "one,real,1,1,1,0.9999,0.0100,6,0,0,paper:6,0.00,0.00,0.00,1.000,2.00" {
		t.Fatalf("single-epoch row = %q", got)
	}
}

// TestFidelityCSVMismatchedPolicies checks rows whose runs used
// different policy sets still line up column-for-column: the mix stays
// one CSV cell no matter how many policies it mentions.
func TestFidelityCSVMismatchedPolicies(t *testing.T) {
	rows := []RunStats{
		{Scenario: "m", Mode: "sim", Seed: 2, AssignMix: map[string]int{"paper": 10}},
		{Scenario: "m", Mode: "real", Seed: 2, AssignMix: map[string]int{"fifo": 4, "paper": 5, "random": 1}},
		{Scenario: "m", Mode: "sim", Seed: 3},
	}
	lines := strings.Split(strings.TrimSpace(FidelityCSV(rows)), "\n")
	want := len(strings.Split(FidelityHeader, ","))
	for _, l := range lines {
		if got := len(strings.Split(l, ",")); got != want {
			t.Fatalf("row %q has %d columns, want %d", l, got, want)
		}
	}
	if !strings.Contains(lines[2], "fifo:4|paper:5|random:1") {
		t.Fatalf("multi-policy mix cell wrong: %q", lines[2])
	}
}
