package metrics

import (
	"strings"
	"testing"
)

func TestMixString(t *testing.T) {
	s := RunStats{AssignMix: map[string]int{"fifo": 3, "paper": 12, "deadline-aware": 1}}
	if got := s.MixString(); got != "deadline-aware:1|fifo:3|paper:12" {
		t.Fatalf("MixString = %q", got)
	}
	if got := (RunStats{}).MixString(); got != "" {
		t.Fatalf("empty MixString = %q", got)
	}
}

func TestFidelityCSV(t *testing.T) {
	rows := []RunStats{
		{Scenario: "s", Mode: "sim", Seed: 7, Epochs: 4, EpochsToTarget: 3, FinalAccuracy: 0.61,
			Hours: 0.4028, Issued: 40, Reissued: 2, Timeouts: 1,
			AssignMix: map[string]int{"paper": 40}, WallSeconds: 0.88},
		{Scenario: "s", Mode: "real", Seed: 7, Epochs: 4, EpochsToTarget: -1, FinalAccuracy: 0.6,
			Hours: 0.3, Issued: 41, Reissued: 3, Timeouts: 2,
			AssignMix: map[string]int{"paper": 41}, WallSeconds: 18.1},
	}
	csv := FidelityCSV(rows)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), csv)
	}
	if lines[0] != FidelityHeader {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "s,sim,7,4,3,0.6100,0.4028,40,2,1,paper:40,0.88" {
		t.Fatalf("sim row = %q", lines[1])
	}
	if lines[2] != "s,real,7,4,-1,0.6000,0.3000,41,3,2,paper:41,18.10" {
		t.Fatalf("real row = %q", lines[2])
	}
	// Header and rows carry the same column count.
	want := len(strings.Split(FidelityHeader, ","))
	for _, l := range lines[1:] {
		if got := len(strings.Split(l, ",")); got != want {
			t.Fatalf("row %q has %d columns, want %d", l, got, want)
		}
	}
}
