// Package metrics provides the reporting substrate every harness shares:
// time-series recording and summary statistics for the paper's figures
// — accuracy-vs-time curves with per-epoch spread (Figures 2, 4, 5, 6)
// — text tables, and the engine-independent run summary (RunStats) both
// scenario engines report into, rendered by FidelityCSV as the sim↔real
// fidelity report (DESIGN.md §9).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one epoch marker on a training curve.
type Point struct {
	Epoch int
	// Hours is cumulative virtual training time, the x-axis of the
	// paper's figures.
	Hours float64
	// Value is the curve value (e.g. average validation accuracy).
	Value float64
	// Lo and Hi bound the per-epoch spread across subtasks — the paper's
	// error bars in Figure 4.
	Lo, Hi float64
}

// Series is one labelled curve.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(p Point) { s.Points = append(s.Points, p) }

// Last returns the final point; ok is false for an empty series.
func (s *Series) Last() (Point, bool) {
	if len(s.Points) == 0 {
		return Point{}, false
	}
	return s.Points[len(s.Points)-1], true
}

// FinalValue returns the last point's value or 0.
func (s *Series) FinalValue() float64 {
	p, ok := s.Last()
	if !ok {
		return 0
	}
	return p.Value
}

// TimeToReach returns the earliest Hours at which the series reaches v,
// with ok=false if it never does.
func (s *Series) TimeToReach(v float64) (float64, bool) {
	for _, p := range s.Points {
		if p.Value >= v {
			return p.Hours, true
		}
	}
	return 0, false
}

// CSV renders the series as "epoch,hours,value,lo,hi" lines with a header.
func (s *Series) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\nepoch,hours,value,lo,hi\n", s.Name)
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%d,%.4f,%.4f,%.4f,%.4f\n", p.Epoch, p.Hours, p.Value, p.Lo, p.Hi)
	}
	return b.String()
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return math.Sqrt(v / float64(len(xs)))
}

// MinMax returns the extremes of xs (0,0 for empty input).
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Table renders an aligned text table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
