package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestMeanStdMinMax(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Std(xs) != 2 {
		t.Fatalf("Std = %v", Std(xs))
	}
	lo, hi := MinMax(xs)
	if lo != 2 || hi != 9 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
}

func TestEmptyStats(t *testing.T) {
	if Mean(nil) != 0 || Std(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty stats should be 0")
	}
	lo, hi := MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Fatal("empty MinMax should be 0,0")
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 3, 2}) != 2.5 {
		t.Fatal("even median")
	}
	// Median must not mutate its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Fatal("Median sorted the caller's slice")
	}
}

func TestSeriesBasics(t *testing.T) {
	var s Series
	s.Name = "P3C3T4"
	if _, ok := s.Last(); ok {
		t.Fatal("empty series has no last point")
	}
	if s.FinalValue() != 0 {
		t.Fatal("empty FinalValue should be 0")
	}
	s.Add(Point{Epoch: 1, Hours: 0.5, Value: 0.2})
	s.Add(Point{Epoch: 2, Hours: 1.0, Value: 0.5})
	p, ok := s.Last()
	if !ok || p.Epoch != 2 {
		t.Fatalf("Last = %+v", p)
	}
	if s.FinalValue() != 0.5 {
		t.Fatalf("FinalValue = %v", s.FinalValue())
	}
}

func TestTimeToReach(t *testing.T) {
	s := Series{Points: []Point{
		{Hours: 1, Value: 0.3},
		{Hours: 2, Value: 0.6},
		{Hours: 3, Value: 0.7},
	}}
	h, ok := s.TimeToReach(0.6)
	if !ok || h != 2 {
		t.Fatalf("TimeToReach = %v,%v", h, ok)
	}
	if _, ok := s.TimeToReach(0.9); ok {
		t.Fatal("unreachable value reported reached")
	}
}

func TestCSV(t *testing.T) {
	s := Series{Name: "x", Points: []Point{{Epoch: 1, Hours: 1.5, Value: 0.25, Lo: 0.2, Hi: 0.3}}}
	got := s.CSV()
	if !strings.Contains(got, "# x\n") || !strings.Contains(got, "1,1.5000,0.2500,0.2000,0.3000") {
		t.Fatalf("CSV = %q", got)
	}
}

func TestTableAlignment(t *testing.T) {
	got := Table([]string{"name", "v"}, [][]string{{"aa", "1"}, {"b", "22"}})
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d: %q", len(lines), got)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("separator = %q", lines[1])
	}
	// All rows equal width.
	if len(lines[2]) != len(lines[3]) {
		t.Fatalf("rows not aligned: %q vs %q", lines[2], lines[3])
	}
}

func TestStdSingleValue(t *testing.T) {
	if Std([]float64{5}) != 0 {
		t.Fatal("Std of single value should be 0")
	}
}

func TestStdNonNegativeAndScale(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	s1 := Std(xs)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 10 * x
	}
	s2 := Std(ys)
	if math.Abs(s2-10*s1) > 1e-12 {
		t.Fatalf("Std not scale-equivariant: %v vs %v", s2, 10*s1)
	}
}
