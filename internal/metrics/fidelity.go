package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// RunStats is the engine-independent summary both scenario engines (the
// virtual-time simulator and the real-mode live fleet) report into: the
// quantities the sim↔real fidelity comparison is made of. All times are
// in the scenario's virtual hours — the real engine maps wall time back
// through its time scale — except WallSeconds, which is honest wall
// clock for both.
type RunStats struct {
	Scenario string
	Mode     string
	Seed     int64
	// Epochs completed and the final validation accuracy.
	Epochs        int
	FinalAccuracy float64
	// EpochsToTarget is the first epoch whose accuracy reached the
	// scenario's target-accuracy (0 when no target was set, -1 when the
	// target was never reached).
	EpochsToTarget int
	// Hours is total training time in virtual hours.
	Hours float64
	// Scheduler fault-tolerance counters.
	Issued, Reissued, Timeouts int
	// AssignMix counts issued assignments per scheduling policy.
	AssignMix map[string]int
	// AssignP50/P95/P99 are scheduler assignment-wait percentiles in
	// virtual seconds (how long a workunit sat queued before issue),
	// pulled from the run's metrics registry (DESIGN.md §10). Zero when
	// the run recorded no assignments.
	AssignP50, AssignP95, AssignP99 float64
	// CacheHitRatio is sticky-cache input-file hits over total input
	// files assigned (0 when nothing was assigned).
	CacheHitRatio float64
	// WallSeconds is real elapsed time.
	WallSeconds float64
}

// MixString renders the assignment mix as "policy:count|policy:count"
// in policy-name order ("" for an empty mix), CSV-cell safe.
func (s RunStats) MixString() string {
	names := make([]string, 0, len(s.AssignMix))
	for name := range s.AssignMix {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s:%d", name, s.AssignMix[name])
	}
	return strings.Join(parts, "|")
}

// FidelityHeader is the column row of a fidelity CSV.
const FidelityHeader = "scenario,mode,seed,epochs,epochs_to_target,final_accuracy,hours,issued,reissued,timeouts,assign_mix,assign_p50,assign_p95,assign_p99,cache_hit_ratio,wall_seconds"

// FidelityRow renders one RunStats as a fidelity CSV line.
func FidelityRow(s RunStats) string {
	return fmt.Sprintf("%s,%s,%d,%d,%d,%.4f,%.4f,%d,%d,%d,%s,%.2f,%.2f,%.2f,%.3f,%.2f",
		s.Scenario, s.Mode, s.Seed, s.Epochs, s.EpochsToTarget, s.FinalAccuracy,
		s.Hours, s.Issued, s.Reissued, s.Timeouts, s.MixString(),
		s.AssignP50, s.AssignP95, s.AssignP99, s.CacheHitRatio, s.WallSeconds)
}

// FidelityCSV renders a full fidelity report: a header plus one row per
// run, in input order (the scenario driver emits sim/real pairs
// back-to-back so divergence reads line over line).
func FidelityCSV(rows []RunStats) string {
	var b strings.Builder
	b.WriteString(FidelityHeader)
	b.WriteByte('\n')
	for _, r := range rows {
		b.WriteString(FidelityRow(r))
		b.WriteByte('\n')
	}
	return b.String()
}
