package cloud

import "math/rand"

// Preemption modelling (§IV-E of the paper).
//
// The paper models compute-instance usage as independent Bernoulli trials:
// each subtask execution is terminated with probability p, in which case
// the subtask is rescheduled after its timeout, stretching its effective
// execution time from te to te+to. With ns total subtasks spread over nc
// clients running ntc simultaneous subtasks each, the number of subtasks
// that can serially accrue a timeout per execution slot is
// n = ns/(nc·ntc), giving expected training time n·te + n·p·to.

// PreemptModel carries the parameters of the binomial analysis.
type PreemptModel struct {
	// P is the per-subtask termination probability.
	P float64
	// TaskExecSeconds is te, the average subtask execution time.
	TaskExecSeconds float64
	// TimeoutSeconds is to, the scheduler's reissue timeout.
	TimeoutSeconds float64
}

// SlotSubtasks returns n = ns/(nc·ntc), the serial subtask chain length
// per execution slot.
func SlotSubtasks(ns, nc, ntc int) float64 {
	if nc < 1 || ntc < 1 {
		return float64(ns)
	}
	return float64(ns) / float64(nc*ntc)
}

// ExpectedTrainingSeconds returns n·te + n·p·to for a job of ns subtasks
// over nc clients with ntc simultaneous subtasks each.
func (m PreemptModel) ExpectedTrainingSeconds(ns, nc, ntc int) float64 {
	n := SlotSubtasks(ns, nc, ntc)
	return n*m.TaskExecSeconds + n*m.P*m.TimeoutSeconds
}

// ExpectedIncreaseSeconds returns the n·p·to term alone — the expected
// training-time increase attributable to preemptions. For the paper's
// P5C5T2 example (ns=2000, nc=5, ntc=2, te≤2.4 min, to=5 min) this is
// 50 min at p=0.05 and 200 min at p=0.20.
func (m PreemptModel) ExpectedIncreaseSeconds(ns, nc, ntc int) float64 {
	return SlotSubtasks(ns, nc, ntc) * m.P * m.TimeoutSeconds
}

// SampleIncreaseSeconds draws one realization of the total timeout delay by
// simulating the n Bernoulli trials of a single execution slot.
func (m PreemptModel) SampleIncreaseSeconds(ns, nc, ntc int, rng *rand.Rand) float64 {
	n := int(SlotSubtasks(ns, nc, ntc) + 0.5)
	inc := 0.0
	for i := 0; i < n; i++ {
		if rng.Float64() < m.P {
			inc += m.TimeoutSeconds
		}
	}
	return inc
}

// PreemptionProcess drives instance terminations inside the simulator: at
// each subtask start the process decides (seeded, per-instance) whether the
// instance is reclaimed during that execution.
type PreemptionProcess struct {
	rng *rand.Rand
}

// NewPreemptionProcess returns a seeded preemption source.
func NewPreemptionProcess(seed int64) *PreemptionProcess {
	return &PreemptionProcess{rng: rand.New(rand.NewSource(seed))}
}

// Strikes reports whether an instance of the given type is reclaimed while
// executing one subtask.
func (p *PreemptionProcess) Strikes(it InstanceType) bool {
	return p.rng.Float64() < it.InterruptProb
}
