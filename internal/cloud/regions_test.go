package cloud

import (
	"math/rand"
	"testing"
)

func TestRegionRTTOrdering(t *testing.T) {
	if !(USEast.RTT() < USWest.RTT() && USWest.RTT() < Europe.RTT() && Europe.RTT() < APac.RTT()) {
		t.Fatal("region RTTs must grow with distance from the server region")
	}
	if Region("mars").RTT() != USWest.RTT() {
		t.Fatal("unknown region should use the default RTT")
	}
}

func TestPlaceRoundRobin(t *testing.T) {
	fleet := DefaultFleet(5)
	placed := Place(fleet, []Region{USEast, Europe})
	if len(placed) != 5 {
		t.Fatalf("placed %d", len(placed))
	}
	if placed[0].Region != USEast || placed[1].Region != Europe || placed[2].Region != USEast {
		t.Fatalf("placement not round-robin: %v %v %v", placed[0].Region, placed[1].Region, placed[2].Region)
	}
	if placed[0].Name != fleet[0].Name {
		t.Fatal("instance identity lost in placement")
	}
}

func TestPlaceEmptyRegionsIsLocal(t *testing.T) {
	placed := Place(DefaultFleet(2), nil)
	for _, p := range placed {
		if p.Region != USEast {
			t.Fatalf("expected server-local placement, got %v", p.Region)
		}
	}
}

func TestTransferTimeFromAddsRTT(t *testing.T) {
	nw := Network{BaseLatency: 0.01, Efficiency: 0.5}
	rng := rand.New(rand.NewSource(1))
	local := Place([]InstanceType{ClientA}, []Region{USEast})[0]
	remote := Place([]InstanceType{ClientA}, []Region{APac})[0]
	tl := nw.TransferTimeFrom(1000, local, rng)
	tr := nw.TransferTimeFrom(1000, remote, rng)
	wantDiff := APac.RTT() - USEast.RTT()
	if diff := tr - tl; diff < wantDiff*0.99 || diff > wantDiff*1.01 {
		t.Fatalf("regional latency difference %v, want %v", diff, wantDiff)
	}
}

func TestRegionsListing(t *testing.T) {
	rs := Regions()
	if len(rs) != 4 || rs[0] != USEast {
		t.Fatalf("Regions() = %v", rs)
	}
	if Place(DefaultFleet(1), rs)[0].String() == "" {
		t.Fatal("empty placement string")
	}
}
