// Package cloud models the commercial-cloud substrate of the paper's
// experiments: the AWS instance fleet of Table I (vCPU count, clock speed,
// RAM, network bandwidth), standard vs. preemptible pricing (§IV-E,
// preemptible instances cost 70–90% less but can be reclaimed at any
// time), geographic regions with a WAN round-trip latency model
// (PlacedInstance, Region.RTT), and the paper's binomial analysis of the
// expected training-time increase caused by preemptions (PreemptModel).
//
// The catalog is shared by every harness: the simulator derives subtask
// durations and billing from it, and the real-mode driver paces live
// clients to the same per-instance speed model so both engines agree on
// what a "clientB" is (DESIGN.md §9).
package cloud

import (
	"fmt"
	"math/rand"
	"strings"
)

// InstanceType describes one computing-instance configuration.
type InstanceType struct {
	Name          string
	VCPU          int
	ClockGHz      float64
	RAMGB         float64
	BandwidthGbps float64
	// HourlyUSD is the standard on-demand price; PreemptibleUSD the spot
	// price (70–90% lower per the paper).
	HourlyUSD      float64
	PreemptibleUSD float64
	// InterruptProb is the per-subtask probability of the instance being
	// reclaimed while running one subtask ("frequency of interruption",
	// <5% for every type used in the paper).
	InterruptProb float64
}

// Speed returns the relative compute throughput of the instance in
// vCPU·GHz, the unit the simulator's cost model divides work by.
func (it InstanceType) Speed() float64 { return float64(it.VCPU) * it.ClockGHz }

// String renders a Table-I-style row.
func (it InstanceType) String() string {
	return fmt.Sprintf("%-14s %2d vCPU  %.1f GHz  %5.1f GB  up to %.0f Gbps  $%.3f/h ($%.3f/h spot)",
		it.Name, it.VCPU, it.ClockGHz, it.RAMGB, it.BandwidthGbps, it.HourlyUSD, it.PreemptibleUSD)
}

// Table I of the paper: one server configuration and four client
// configurations. Prices are derived from the paper's §IV-E fleet numbers:
// the P5C5T2 fleet (server + 4 clients + 1 duplicate ≈ 40 vCPU / 160 GB)
// costs $1.67/h standard and $0.50/h preemptible, i.e. 70% savings; prices
// below are distributed per instance in proportion to vCPU·GHz.
var (
	// ServerInstance is the single standard instance hosting the parameter
	// servers, Redis, the BOINC web server and the BOINC database.
	ServerInstance = InstanceType{
		Name: "server-8x2.3", VCPU: 8, ClockGHz: 2.3, RAMGB: 61, BandwidthGbps: 10,
		HourlyUSD: 0.40, PreemptibleUSD: 0.12, InterruptProb: 0,
	}
	// ClientA is the 8 vCPU / 2.2 GHz / 32 GB / 5 Gbps client row.
	ClientA = InstanceType{
		Name: "client-8x2.2", VCPU: 8, ClockGHz: 2.2, RAMGB: 32, BandwidthGbps: 5,
		HourlyUSD: 0.33, PreemptibleUSD: 0.10, InterruptProb: 0.03,
	}
	// ClientB is the 8 vCPU / 2.5 GHz / 32 GB / 5 Gbps client row.
	ClientB = InstanceType{
		Name: "client-8x2.5", VCPU: 8, ClockGHz: 2.5, RAMGB: 32, BandwidthGbps: 5,
		HourlyUSD: 0.35, PreemptibleUSD: 0.105, InterruptProb: 0.04,
	}
	// ClientC is the 8 vCPU / 2.8 GHz / 15 GB / 2 Gbps client row.
	ClientC = InstanceType{
		Name: "client-8x2.8", VCPU: 8, ClockGHz: 2.8, RAMGB: 15, BandwidthGbps: 2,
		HourlyUSD: 0.28, PreemptibleUSD: 0.084, InterruptProb: 0.045,
	}
	// ClientD is the 16 vCPU / 2.8 GHz / 30 GB / 2 Gbps client row.
	ClientD = InstanceType{
		Name: "client-16x2.8", VCPU: 16, ClockGHz: 2.8, RAMGB: 30, BandwidthGbps: 2,
		HourlyUSD: 0.31, PreemptibleUSD: 0.093, InterruptProb: 0.045,
	}
)

// TableI returns the paper's full instance catalog, server first.
func TableI() []InstanceType {
	return []InstanceType{ServerInstance, ClientA, ClientB, ClientC, ClientD}
}

// ClientTypes returns the four client configurations of Table I.
func ClientTypes() []InstanceType {
	return []InstanceType{ClientA, ClientB, ClientC, ClientD}
}

// DefaultFleet returns n client instances drawn round-robin from the Table
// I client types, matching the paper's "fleet of computing instances of
// different types" with one client per instance.
func DefaultFleet(n int) []InstanceType {
	types := ClientTypes()
	fleet := make([]InstanceType, n)
	for i := range fleet {
		fleet[i] = types[i%len(types)]
	}
	return fleet
}

// InstanceByName resolves an instance type from its Table I name or the
// clientA..clientD aliases (case-insensitive for the aliases).
func InstanceByName(name string) (InstanceType, bool) {
	switch strings.ToLower(name) {
	case "clienta":
		return ClientA, true
	case "clientb":
		return ClientB, true
	case "clientc":
		return ClientC, true
	case "clientd":
		return ClientD, true
	}
	for _, it := range TableI() {
		if it.Name == name {
			return it, true
		}
	}
	return InstanceType{}, false
}

// FleetCost sums the hourly price of a fleet (preemptible or standard).
func FleetCost(fleet []InstanceType, preemptible bool) float64 {
	c := 0.0
	for _, it := range fleet {
		if preemptible {
			c += it.PreemptibleUSD
		} else {
			c += it.HourlyUSD
		}
	}
	return c
}

// Savings returns the fractional cost reduction of running the fleet on
// preemptible instances (the paper reports 70–90%).
func Savings(fleet []InstanceType) float64 {
	std := FleetCost(fleet, false)
	if std == 0 {
		return 0
	}
	return 1 - FleetCost(fleet, true)/std
}

// Network models WAN communication between clients and the server:
// per-transfer base latency with jitter plus bandwidth-limited throughput.
// The paper's clients "can be in different geographical regions" and
// communicate over variable-latency links rather than a cluster LAN.
type Network struct {
	// BaseLatency is the one-way latency floor in seconds.
	BaseLatency float64
	// JitterStd is the standard deviation of additional latency.
	JitterStd float64
	// Efficiency derates nominal bandwidth (protocol overhead, congestion).
	Efficiency float64
}

// DefaultWAN returns a wide-area profile: 40 ms ± 20 ms latency, 30% of
// nominal bandwidth achieved.
func DefaultWAN() Network {
	return Network{BaseLatency: 0.040, JitterStd: 0.020, Efficiency: 0.3}
}

// TransferTimeRTT is TransferTime plus an explicit round-trip latency.
// Callers that override a region's static RTT (outage injection, scenario
// replay) compute the effective round trip themselves and pass it here.
func (nw Network) TransferTimeRTT(n int, rtt float64, inst InstanceType, rng *rand.Rand) float64 {
	if rtt < 0 {
		rtt = 0
	}
	return rtt + nw.TransferTime(n, inst, rng)
}

// TransferTime returns the virtual seconds needed to move n bytes to or
// from an instance with the given nominal bandwidth.
func (nw Network) TransferTime(n int, inst InstanceType, rng *rand.Rand) float64 {
	lat := nw.BaseLatency
	if nw.JitterStd > 0 && rng != nil {
		j := rng.NormFloat64() * nw.JitterStd
		if j < 0 {
			j = -j
		}
		lat += j
	}
	bps := inst.BandwidthGbps * nw.Efficiency * 1e9 / 8
	if bps <= 0 {
		return lat
	}
	return lat + float64(n)/bps
}
