package cloud

import (
	"math"
	"math/rand"
	"testing"
)

func TestTableIMatchesPaper(t *testing.T) {
	rows := TableI()
	if len(rows) != 5 {
		t.Fatalf("Table I has %d rows, want 5", len(rows))
	}
	srv := rows[0]
	if srv.VCPU != 8 || srv.ClockGHz != 2.3 || srv.RAMGB != 61 || srv.BandwidthGbps != 10 {
		t.Fatalf("server row = %+v", srv)
	}
	wantClients := []struct {
		vcpu int
		ghz  float64
		ram  float64
		bw   float64
	}{
		{8, 2.2, 32, 5},
		{8, 2.5, 32, 5},
		{8, 2.8, 15, 2},
		{16, 2.8, 30, 2},
	}
	for i, w := range wantClients {
		c := rows[i+1]
		if c.VCPU != w.vcpu || c.ClockGHz != w.ghz || c.RAMGB != w.ram || c.BandwidthGbps != w.bw {
			t.Fatalf("client row %d = %+v, want %+v", i, c, w)
		}
	}
}

func TestAllClientsLowInterrupt(t *testing.T) {
	// "All the instances we use for training have a frequency of
	// interruption < 5%."
	for _, c := range ClientTypes() {
		if c.InterruptProb >= 0.05 {
			t.Fatalf("%s interrupt prob %v >= 5%%", c.Name, c.InterruptProb)
		}
	}
}

func TestSpeedOrdering(t *testing.T) {
	// ClientD (16×2.8) must be the fastest; ClientA (8×2.2) the slowest.
	cs := ClientTypes()
	for _, c := range cs {
		if c.Speed() < ClientA.Speed() && c.Name != ClientA.Name {
			t.Fatalf("%s slower than ClientA", c.Name)
		}
	}
	if ClientD.Speed() != 16*2.8 {
		t.Fatalf("ClientD speed = %v", ClientD.Speed())
	}
}

// TestFleetCostMatchesPaper reproduces §IV-E: the 5-instance fleet costs
// ≈$1.67/h standard, ≈$0.50/h preemptible (≈70% savings), so an 8-hour
// P5C5T2 run costs ≈$13.4 standard vs ≈$4 preemptible.
func TestFleetCostMatchesPaper(t *testing.T) {
	fleet := append([]InstanceType{ServerInstance}, DefaultFleet(4)...)
	std := FleetCost(fleet, false)
	spot := FleetCost(fleet, true)
	if math.Abs(std-1.67) > 0.05 {
		t.Fatalf("standard fleet $%.3f/h, want ≈$1.67/h", std)
	}
	if math.Abs(spot-0.50) > 0.03 {
		t.Fatalf("preemptible fleet $%.3f/h, want ≈$0.50/h", spot)
	}
	s := Savings(fleet)
	if s < 0.65 || s > 0.75 {
		t.Fatalf("savings %.2f, want ≈0.70", s)
	}
	if run8 := std * 8; math.Abs(run8-13.4) > 0.5 {
		t.Fatalf("8h standard run $%.2f, want ≈$13.4", run8)
	}
	if run8 := spot * 8; math.Abs(run8-4.0) > 0.3 {
		t.Fatalf("8h preemptible run $%.2f, want ≈$4", run8)
	}
}

func TestSavingsInPaperBand(t *testing.T) {
	// Preemptible discount must be 70–90% for every instance type.
	for _, it := range TableI() {
		s := 1 - it.PreemptibleUSD/it.HourlyUSD
		if s < 0.69 || s > 0.91 {
			t.Fatalf("%s savings %.2f outside 70–90%%", it.Name, s)
		}
	}
}

func TestSavingsEmptyFleet(t *testing.T) {
	if Savings(nil) != 0 {
		t.Fatal("empty fleet savings should be 0")
	}
}

func TestDefaultFleetRoundRobin(t *testing.T) {
	fleet := DefaultFleet(6)
	if len(fleet) != 6 {
		t.Fatalf("fleet size %d", len(fleet))
	}
	if fleet[0].Name != ClientA.Name || fleet[4].Name != ClientA.Name {
		t.Fatal("fleet not round-robin")
	}
}

// TestExpectedIncreaseMatchesPaper verifies the §IV-E arithmetic: P5C5T2,
// ns=2000, to=5 min gives +50 min at p=0.05 and +200 min at p=0.20.
func TestExpectedIncreaseMatchesPaper(t *testing.T) {
	m := PreemptModel{P: 0.05, TaskExecSeconds: 2.4 * 60, TimeoutSeconds: 5 * 60}
	inc := m.ExpectedIncreaseSeconds(2000, 5, 2)
	if math.Abs(inc-50*60) > 1e-9 {
		t.Fatalf("p=0.05 increase = %v min, want 50", inc/60)
	}
	m.P = 0.20
	inc = m.ExpectedIncreaseSeconds(2000, 5, 2)
	if math.Abs(inc-200*60) > 1e-9 {
		t.Fatalf("p=0.20 increase = %v min, want 200", inc/60)
	}
}

func TestExpectedTrainingTime(t *testing.T) {
	m := PreemptModel{P: 0.05, TaskExecSeconds: 2.4 * 60, TimeoutSeconds: 5 * 60}
	total := m.ExpectedTrainingSeconds(2000, 5, 2)
	// n=200 subtasks per slot: 200·2.4min + 200·0.05·5min = 480+50 min.
	if math.Abs(total-(480+50)*60) > 1e-9 {
		t.Fatalf("total = %v min, want 530", total/60)
	}
}

func TestSlotSubtasksDegenerate(t *testing.T) {
	if SlotSubtasks(100, 0, 2) != 100 {
		t.Fatal("nc=0 should fall back to ns")
	}
	if SlotSubtasks(100, 5, 0) != 100 {
		t.Fatal("ntc=0 should fall back to ns")
	}
}

// TestSampleIncreaseConcentratesOnMean: the Monte Carlo draw must agree
// with the analytic expectation within sampling error.
func TestSampleIncreaseConcentratesOnMean(t *testing.T) {
	m := PreemptModel{P: 0.05, TaskExecSeconds: 144, TimeoutSeconds: 300}
	rng := rand.New(rand.NewSource(1))
	const trials = 2000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += m.SampleIncreaseSeconds(2000, 5, 2, rng)
	}
	got := sum / trials
	want := m.ExpectedIncreaseSeconds(2000, 5, 2)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("MC mean %v vs analytic %v", got, want)
	}
}

func TestPreemptionProcessRate(t *testing.T) {
	p := NewPreemptionProcess(7)
	it := InstanceType{InterruptProb: 0.10}
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if p.Strikes(it) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.10) > 0.01 {
		t.Fatalf("strike rate %v, want ≈0.10", rate)
	}
}

func TestPreemptionProcessZeroProb(t *testing.T) {
	p := NewPreemptionProcess(7)
	for i := 0; i < 100; i++ {
		if p.Strikes(ServerInstance) {
			t.Fatal("server (p=0) must never be preempted")
		}
	}
}

func TestTransferTime(t *testing.T) {
	nw := Network{BaseLatency: 0.040, JitterStd: 0, Efficiency: 0.5}
	// 1 GB at 2 Gbps nominal → 1 Gbps effective = 125 MB/s → 8 s + latency.
	got := nw.TransferTime(1_000_000_000, ClientC, nil)
	if math.Abs(got-8.04) > 1e-9 {
		t.Fatalf("TransferTime = %v, want 8.04", got)
	}
}

func TestTransferTimeFasterLinkIsFaster(t *testing.T) {
	nw := Network{BaseLatency: 0.01, Efficiency: 0.3}
	slow := nw.TransferTime(10_000_000, ClientC, nil) // 2 Gbps
	fast := nw.TransferTime(10_000_000, ClientA, nil) // 5 Gbps
	if fast >= slow {
		t.Fatalf("5 Gbps (%v) not faster than 2 Gbps (%v)", fast, slow)
	}
}

func TestTransferTimeJitterNonNegative(t *testing.T) {
	nw := DefaultWAN()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		if got := nw.TransferTime(0, ClientA, rng); got < nw.BaseLatency {
			t.Fatalf("transfer time %v below base latency", got)
		}
	}
}

func TestInstanceString(t *testing.T) {
	s := ServerInstance.String()
	if len(s) == 0 {
		t.Fatal("empty String()")
	}
}
