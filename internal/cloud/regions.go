package cloud

import (
	"fmt"
	"math/rand"
)

// Geographic regions (§III-E: the system "can lower the cost further by
// using different types of instances as well as instances running in
// different data centers and geographical regions"). A Region adds a
// round-trip latency floor between a client and the server's region, on
// top of the per-instance bandwidth model.
type Region string

// The modelled regions, with the server hosted in USEast.
const (
	USEast Region = "us-east"
	USWest Region = "us-west"
	Europe Region = "eu"
	APac   Region = "apac"
)

// interRegionRTT holds round-trip latencies (seconds) to the server's
// region (USEast), representative of public-cloud inter-region numbers.
var interRegionRTT = map[Region]float64{
	USEast: 0.002,
	USWest: 0.065,
	Europe: 0.080,
	APac:   0.160,
}

// RTT returns the round-trip latency from a region to the server region,
// defaulting to the WAN-typical US-West figure for unknown regions.
func (r Region) RTT() float64 {
	if v, ok := interRegionRTT[r]; ok {
		return v
	}
	return interRegionRTT[USWest]
}

// Regions lists the modelled regions, server-local first.
func Regions() []Region { return []Region{USEast, USWest, Europe, APac} }

// PlacedInstance is an instance pinned to a region.
type PlacedInstance struct {
	InstanceType
	Region Region
}

// Place assigns fleet instances round-robin across the given regions,
// modelling the paper's geographically spread fleet. An empty region list
// keeps everything server-local.
func Place(fleet []InstanceType, regions []Region) []PlacedInstance {
	if len(regions) == 0 {
		regions = []Region{USEast}
	}
	out := make([]PlacedInstance, len(fleet))
	for i, it := range fleet {
		out[i] = PlacedInstance{InstanceType: it, Region: regions[i%len(regions)]}
	}
	return out
}

// TransferTimeFrom extends Network.TransferTime with the instance's
// regional round trip: every transfer pays the region RTT in addition to
// the WAN base latency and bandwidth time.
func (nw Network) TransferTimeFrom(n int, pi PlacedInstance, rng *rand.Rand) float64 {
	return nw.TransferTimeRTT(n, pi.Region.RTT(), pi.InstanceType, rng)
}

// String renders the placement for fleet listings.
func (pi PlacedInstance) String() string {
	return fmt.Sprintf("%s @ %s (+%.0f ms RTT)", pi.InstanceType.String(), pi.Region, pi.Region.RTT()*1000)
}
