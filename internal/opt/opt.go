// Package opt provides the stochastic optimizers used by training clients:
// plain SGD, SGD with momentum, and Adam (the paper's client-side optimizer,
// used with a constant learning rate of 0.001 and no momentum tweaks), plus
// learning-rate schedules.
package opt

import (
	"fmt"
	"math"

	"vcdl/internal/tensor"
)

// Optimizer updates parameter tensors in place from aligned gradient
// tensors. Implementations keep per-slot state (momenta) keyed by position,
// so an optimizer instance must always be stepped with the same tensor
// lists.
type Optimizer interface {
	// Step applies one update. params[i] is updated using grads[i].
	Step(params, grads []*tensor.Tensor)
	// LR returns the current base learning rate.
	LR() float64
	// SetLR replaces the base learning rate (used by schedules).
	SetLR(lr float64)
	// Name identifies the optimizer for logs and reports.
	Name() string
}

// SGD is plain stochastic gradient descent: p -= lr * g.
type SGD struct {
	Rate float64
}

// NewSGD returns plain SGD with the given learning rate.
func NewSGD(lr float64) *SGD { return &SGD{Rate: lr} }

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.Rate }

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.Rate = lr }

// Step implements Optimizer.
func (s *SGD) Step(params, grads []*tensor.Tensor) {
	checkAligned(params, grads)
	for i, p := range params {
		p.Axpy(-s.Rate, grads[i])
	}
}

// Momentum is SGD with classical momentum: v = mu*v + g ; p -= lr*v.
type Momentum struct {
	Rate, Mu float64
	vel      [][]float64
}

// NewMomentum returns SGD with momentum mu.
func NewMomentum(lr, mu float64) *Momentum { return &Momentum{Rate: lr, Mu: mu} }

// Name implements Optimizer.
func (m *Momentum) Name() string { return "momentum" }

// LR implements Optimizer.
func (m *Momentum) LR() float64 { return m.Rate }

// SetLR implements Optimizer.
func (m *Momentum) SetLR(lr float64) { m.Rate = lr }

// Step implements Optimizer.
func (m *Momentum) Step(params, grads []*tensor.Tensor) {
	checkAligned(params, grads)
	if m.vel == nil {
		m.vel = make([][]float64, len(params))
		for i, p := range params {
			m.vel[i] = make([]float64, p.Size())
		}
	}
	for i, p := range params {
		v := m.vel[i]
		g := grads[i].Data
		for j := range v {
			v[j] = m.Mu*v[j] + g[j]
			p.Data[j] -= m.Rate * v[j]
		}
	}
}

// Adam implements Kingma & Ba's Adam with bias correction.
type Adam struct {
	Rate, Beta1, Beta2, Eps float64

	t    int
	m, v [][]float64
}

// NewAdam returns Adam with the standard defaults (β1=0.9, β2=0.999,
// ε=1e-8) and the given learning rate. The paper uses lr=0.001.
func NewAdam(lr float64) *Adam {
	return &Adam{Rate: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// LR implements Optimizer.
func (a *Adam) LR() float64 { return a.Rate }

// SetLR implements Optimizer.
func (a *Adam) SetLR(lr float64) { a.Rate = lr }

// Step implements Optimizer.
func (a *Adam) Step(params, grads []*tensor.Tensor) {
	checkAligned(params, grads)
	if a.m == nil {
		a.m = make([][]float64, len(params))
		a.v = make([][]float64, len(params))
		for i, p := range params {
			a.m[i] = make([]float64, p.Size())
			a.v[i] = make([]float64, p.Size())
		}
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		m, v, g := a.m[i], a.v[i], grads[i].Data
		for j := range g {
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g[j]
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g[j]*g[j]
			mHat := m[j] / c1
			vHat := v[j] / c2
			p.Data[j] -= a.Rate * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}

// Reset returns the optimizer to its freshly-constructed state — step
// count zero, momenta cleared — while keeping the allocated moment
// storage for reuse. A Reset Adam stepped with the same tensor lists is
// bit-identical to a NewAdam, which is what lets the executor's scratch
// arena reuse one optimizer across subtasks.
func (a *Adam) Reset() {
	a.t = 0
	for _, m := range a.m {
		for j := range m {
			m[j] = 0
		}
	}
	for _, v := range a.v {
		for j := range v {
			v[j] = 0
		}
	}
}

func checkAligned(params, grads []*tensor.Tensor) {
	if len(params) != len(grads) {
		panic(fmt.Sprintf("opt: %d params but %d grads", len(params), len(grads)))
	}
	for i := range params {
		if params[i].Size() != grads[i].Size() {
			panic(fmt.Sprintf("opt: param %d size %d != grad size %d", i, params[i].Size(), grads[i].Size()))
		}
	}
}
