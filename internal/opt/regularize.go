package opt

import (
	"math"

	"vcdl/internal/tensor"
)

// Regularization utilities. The paper's experiments deliberately avoid
// regularization (§IV-A), but the library offers the standard tools for
// downstream models: decoupled weight decay and global-norm gradient
// clipping.

// WeightDecay wraps an optimizer with decoupled weight decay (AdamW
// style): parameters shrink by rate·decay before the inner update. The
// inner optimizer's learning rate is used as the decay step scale.
type WeightDecay struct {
	Inner Optimizer
	Decay float64
}

// NewWeightDecay wraps inner with decay coefficient d.
func NewWeightDecay(inner Optimizer, d float64) *WeightDecay {
	return &WeightDecay{Inner: inner, Decay: d}
}

// Name implements Optimizer.
func (w *WeightDecay) Name() string { return w.Inner.Name() + "+wd" }

// LR implements Optimizer.
func (w *WeightDecay) LR() float64 { return w.Inner.LR() }

// SetLR implements Optimizer.
func (w *WeightDecay) SetLR(lr float64) { w.Inner.SetLR(lr) }

// Step implements Optimizer.
func (w *WeightDecay) Step(params, grads []*tensor.Tensor) {
	shrink := 1 - w.Inner.LR()*w.Decay
	if shrink < 0 {
		shrink = 0
	}
	for _, p := range params {
		p.Scale(shrink)
	}
	w.Inner.Step(params, grads)
}

// ClipGradNorm scales all gradients in place so their global Euclidean
// norm does not exceed maxNorm, returning the pre-clip norm. A maxNorm
// <= 0 is a no-op.
func ClipGradNorm(grads []*tensor.Tensor, maxNorm float64) float64 {
	total := 0.0
	for _, g := range grads {
		for _, v := range g.Data {
			total += v * v
		}
	}
	norm := math.Sqrt(total)
	if maxNorm <= 0 || norm <= maxNorm || norm == 0 {
		return norm
	}
	scale := maxNorm / norm
	for _, g := range grads {
		g.Scale(scale)
	}
	return norm
}
