package opt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vcdl/internal/tensor"
)

func single(v float64) []*tensor.Tensor {
	return []*tensor.Tensor{tensor.FromSlice([]float64{v}, 1)}
}

func TestSGDStep(t *testing.T) {
	p := single(1.0)
	g := single(0.5)
	NewSGD(0.1).Step(p, g)
	if math.Abs(p[0].Data[0]-0.95) > 1e-15 {
		t.Fatalf("p = %v, want 0.95", p[0].Data[0])
	}
}

func TestSGDMisalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned Step did not panic")
		}
	}()
	NewSGD(0.1).Step(single(1), nil)
}

func TestSGDSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size-mismatched Step did not panic")
		}
	}()
	NewSGD(0.1).Step(single(1), []*tensor.Tensor{tensor.New(2)})
}

func TestMomentumAcceleratesOnConstantGradient(t *testing.T) {
	// With a constant gradient, momentum's effective step grows toward
	// lr/(1-mu): successive deltas must increase.
	p := single(0)
	g := single(1)
	m := NewMomentum(0.1, 0.9)
	prev := p[0].Data[0]
	var deltas []float64
	for i := 0; i < 5; i++ {
		m.Step(p, g)
		deltas = append(deltas, prev-p[0].Data[0])
		prev = p[0].Data[0]
	}
	for i := 1; i < len(deltas); i++ {
		if deltas[i] <= deltas[i-1] {
			t.Fatalf("momentum deltas not increasing: %v", deltas)
		}
	}
}

func TestAdamFirstStepIsLR(t *testing.T) {
	// With bias correction, Adam's first step magnitude ≈ lr regardless of
	// gradient scale.
	for _, scale := range []float64{1e-4, 1.0, 1e4} {
		p := single(0)
		g := single(scale)
		NewAdam(0.001).Step(p, g)
		if math.Abs(math.Abs(p[0].Data[0])-0.001) > 1e-6 {
			t.Fatalf("first Adam step for grad %v = %v, want ≈0.001", scale, p[0].Data[0])
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(x) = (x-3)^2 ; gradient 2(x-3).
	p := single(-5)
	a := NewAdam(0.1)
	g := single(0)
	for i := 0; i < 2000; i++ {
		g[0].Data[0] = 2 * (p[0].Data[0] - 3)
		a.Step(p, g)
	}
	if math.Abs(p[0].Data[0]-3) > 1e-3 {
		t.Fatalf("Adam converged to %v, want 3", p[0].Data[0])
	}
}

func TestMomentumConvergesOnQuadratic(t *testing.T) {
	p := single(-5)
	m := NewMomentum(0.05, 0.9)
	g := single(0)
	for i := 0; i < 2000; i++ {
		g[0].Data[0] = 2 * (p[0].Data[0] - 3)
		m.Step(p, g)
	}
	if math.Abs(p[0].Data[0]-3) > 1e-3 {
		t.Fatalf("momentum converged to %v, want 3", p[0].Data[0])
	}
}

func TestOptimizerLRAccessors(t *testing.T) {
	for _, o := range []Optimizer{NewSGD(0.1), NewMomentum(0.1, 0.9), NewAdam(0.1)} {
		if o.LR() != 0.1 {
			t.Fatalf("%s LR = %v", o.Name(), o.LR())
		}
		o.SetLR(0.2)
		if o.LR() != 0.2 {
			t.Fatalf("%s SetLR failed", o.Name())
		}
	}
}

func TestAdamStatePerSlot(t *testing.T) {
	// Two parameters with different gradients must evolve independently.
	p := []*tensor.Tensor{tensor.FromSlice([]float64{0, 0}, 2)}
	g := []*tensor.Tensor{tensor.FromSlice([]float64{1, -1}, 2)}
	a := NewAdam(0.01)
	for i := 0; i < 10; i++ {
		a.Step(p, g)
	}
	if p[0].Data[0] >= 0 || p[0].Data[1] <= 0 {
		t.Fatalf("Adam slots not independent: %v", p[0].Data)
	}
	if math.Abs(p[0].Data[0]+p[0].Data[1]) > 1e-12 {
		t.Fatalf("symmetric gradients should give symmetric params: %v", p[0].Data)
	}
}

func TestConstantSchedule(t *testing.T) {
	s := Constant{0.95}
	for _, e := range []int{1, 10, 1000} {
		if s.At(e) != 0.95 {
			t.Fatalf("Constant.At(%d) = %v", e, s.At(e))
		}
	}
}

func TestStepDecay(t *testing.T) {
	s := StepDecay{Base: 1.0, Factor: 0.5, Every: 10}
	if s.At(1) != 1.0 || s.At(10) != 1.0 {
		t.Fatal("no decay expected in first window")
	}
	if s.At(11) != 0.5 {
		t.Fatalf("At(11) = %v, want 0.5", s.At(11))
	}
	if s.At(21) != 0.25 {
		t.Fatalf("At(21) = %v, want 0.25", s.At(21))
	}
}

func TestStepDecayZeroEvery(t *testing.T) {
	s := StepDecay{Base: 2.0, Factor: 0.5, Every: 0}
	if s.At(100) != 2.0 {
		t.Fatal("Every=0 must mean no decay")
	}
}

func TestExpDecay(t *testing.T) {
	s := ExpDecay{Base: 1.0, Gamma: 0.9}
	if s.At(1) != 1.0 {
		t.Fatalf("At(1) = %v", s.At(1))
	}
	if math.Abs(s.At(3)-0.81) > 1e-12 {
		t.Fatalf("At(3) = %v, want 0.81", s.At(3))
	}
}

// TestEpochFractionMatchesPaper checks the paper's Var schedule: α rises
// from 0.5 (e=1) to ≈0.98 (e=40).
func TestEpochFractionMatchesPaper(t *testing.T) {
	s := EpochFraction{}
	if s.At(1) != 0.5 {
		t.Fatalf("At(1) = %v, want 0.5", s.At(1))
	}
	if math.Abs(s.At(40)-40.0/41.0) > 1e-15 {
		t.Fatalf("At(40) = %v, want %v", s.At(40), 40.0/41.0)
	}
	if s.At(40) < 0.97 || s.At(40) > 0.99 {
		t.Fatalf("At(40) = %v, want ≈0.98", s.At(40))
	}
	if s.At(0) != 0.5 {
		t.Fatalf("At(0) should clamp to epoch 1, got %v", s.At(0))
	}
}

// Property: EpochFraction is monotonically increasing and bounded by 1.
func TestEpochFractionMonotoneProperty(t *testing.T) {
	s := EpochFraction{}
	f := func(e uint8) bool {
		x := int(e) + 1
		return s.At(x) < s.At(x+1) && s.At(x+1) < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: one SGD step on a positive-definite quadratic with a small
// enough rate never increases distance to the optimum.
func TestSGDContractionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x0 := rng.Float64()*20 - 10
		p := single(x0)
		g := single(2 * (x0 - 3))
		NewSGD(0.1).Step(p, g)
		return math.Abs(p[0].Data[0]-3) <= math.Abs(x0-3)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
