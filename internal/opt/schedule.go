package opt

import "math"

// Schedule maps an epoch number (1-based) to a multiplier or value. It is
// used both for learning rates and for the VC-ASGD α hyperparameter (the
// paper's "Var" experiment sets αe = e/(e+1), explicitly analogous to
// learning-rate scheduling).
type Schedule interface {
	// At returns the scheduled value for epoch e (1-based).
	At(e int) float64
	// Name identifies the schedule in reports.
	Name() string
}

// Constant is a schedule that always returns V.
type Constant struct{ V float64 }

// At implements Schedule.
func (c Constant) At(int) float64 { return c.V }

// Name implements Schedule.
func (c Constant) Name() string { return "const" }

// StepDecay multiplies Base by Factor every Every epochs.
type StepDecay struct {
	Base, Factor float64
	Every        int
}

// At implements Schedule.
func (s StepDecay) At(e int) float64 {
	if s.Every <= 0 {
		return s.Base
	}
	k := (e - 1) / s.Every
	return s.Base * math.Pow(s.Factor, float64(k))
}

// Name implements Schedule.
func (s StepDecay) Name() string { return "step" }

// ExpDecay returns Base * Gamma^(e-1).
type ExpDecay struct {
	Base, Gamma float64
}

// At implements Schedule.
func (s ExpDecay) At(e int) float64 { return s.Base * math.Pow(s.Gamma, float64(e-1)) }

// Name implements Schedule.
func (s ExpDecay) Name() string { return "exp" }

// EpochFraction is the paper's Var α schedule: αe = e/(e+1), rising from
// 0.5 at epoch 1 toward 1 as e grows (≈0.98 at e=40).
type EpochFraction struct{}

// At implements Schedule.
func (EpochFraction) At(e int) float64 {
	if e < 1 {
		e = 1
	}
	return float64(e) / float64(e+1)
}

// Name implements Schedule.
func (EpochFraction) Name() string { return "var" }
