package opt

import (
	"math"
	"testing"

	"vcdl/internal/tensor"
)

func TestWeightDecayShrinksWithoutGradient(t *testing.T) {
	p := single(10)
	g := single(0)
	wd := NewWeightDecay(NewSGD(0.1), 0.5)
	wd.Step(p, g)
	// shrink = 1 − 0.1·0.5 = 0.95 → 9.5; zero gradient adds nothing.
	if math.Abs(p[0].Data[0]-9.5) > 1e-12 {
		t.Fatalf("p = %v, want 9.5", p[0].Data[0])
	}
}

func TestWeightDecayComposesWithUpdate(t *testing.T) {
	p := single(1)
	g := single(1)
	wd := NewWeightDecay(NewSGD(0.1), 1.0)
	wd.Step(p, g)
	// 1·0.9 − 0.1·1 = 0.8.
	if math.Abs(p[0].Data[0]-0.8) > 1e-12 {
		t.Fatalf("p = %v, want 0.8", p[0].Data[0])
	}
}

func TestWeightDecayAccessors(t *testing.T) {
	wd := NewWeightDecay(NewAdam(0.01), 0.1)
	if wd.Name() != "adam+wd" {
		t.Fatalf("Name = %q", wd.Name())
	}
	wd.SetLR(0.02)
	if wd.LR() != 0.02 {
		t.Fatal("SetLR not forwarded")
	}
}

func TestWeightDecayNeverFlipsSign(t *testing.T) {
	// Even absurd decay cannot scale parameters negative.
	p := single(5)
	g := single(0)
	wd := NewWeightDecay(NewSGD(1), 100)
	wd.Step(p, g)
	if p[0].Data[0] < 0 {
		t.Fatalf("decay flipped sign: %v", p[0].Data[0])
	}
}

func TestClipGradNorm(t *testing.T) {
	g := []*tensor.Tensor{tensor.FromSlice([]float64{3, 0}, 2), tensor.FromSlice([]float64{0, 4}, 2)}
	norm := ClipGradNorm(g, 1)
	if norm != 5 {
		t.Fatalf("pre-clip norm = %v, want 5", norm)
	}
	total := 0.0
	for _, t := range g {
		for _, v := range t.Data {
			total += v * v
		}
	}
	if math.Abs(math.Sqrt(total)-1) > 1e-12 {
		t.Fatalf("post-clip norm = %v, want 1", math.Sqrt(total))
	}
}

func TestClipGradNormNoOpCases(t *testing.T) {
	g := []*tensor.Tensor{tensor.FromSlice([]float64{0.3, 0.4}, 2)}
	if norm := ClipGradNorm(g, 10); norm != 0.5 {
		t.Fatalf("norm = %v", norm)
	}
	if g[0].Data[0] != 0.3 {
		t.Fatal("under-norm gradients must be untouched")
	}
	ClipGradNorm(g, 0) // maxNorm 0 disables clipping
	if g[0].Data[0] != 0.3 {
		t.Fatal("maxNorm=0 must be a no-op")
	}
	zero := []*tensor.Tensor{tensor.New(3)}
	if norm := ClipGradNorm(zero, 1); norm != 0 {
		t.Fatalf("zero-grad norm = %v", norm)
	}
}
