package blob

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Cache is a client-side digest-keyed blob cache over any Store
// backend (in-memory for goroutine clients, on-disk for OS-process
// clients that must stay warm across restarts). Because keys are
// content addresses, a cache entry can never be stale — only present
// or absent — so there is no invalidation protocol at all; that is
// the point of content addressing.
type Cache struct {
	store Store

	hits     atomic.Int64
	misses   atomic.Int64
	hitBytes atomic.Int64
}

// NewMemCache creates a fresh in-memory cache.
func NewMemCache() *Cache { return &Cache{store: NewMemStore()} }

// NewDiskCache opens (or creates) a disk-backed cache at dir — warm
// across process restarts, which is what makes a rejoining volunteer
// skip re-downloading its shard.
func NewDiskCache(dir string) (*Cache, error) {
	st, err := NewDiskStore(dir)
	if err != nil {
		return nil, err
	}
	return &Cache{store: st}, nil
}

// Get returns the cached blob (counting a hit) or nil (counting a
// miss).
func (c *Cache) Get(digest string) []byte {
	data, err := c.store.Get(digest)
	if err != nil {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	c.hitBytes.Add(int64(len(data)))
	return data
}

// Put stores a verified blob.
func (c *Cache) Put(data []byte) { c.store.Put(data) }

// Has reports presence without touching the hit/miss counters.
func (c *Cache) Has(digest string) bool { return c.store.Has(digest) }

// Stats returns cumulative hit/miss counters.
func (c *Cache) Stats() (hits, misses int64, hitBytes int64) {
	return c.hits.Load(), c.misses.Load(), c.hitBytes.Load()
}

// FetchStats is a Fetcher's cumulative transfer accounting.
type FetchStats struct {
	// Fetched counts transfers that went to the network (cache misses).
	Fetched int64
	// BytesFetched counts payload bytes received over the network.
	BytesFetched int64
	// Resumes counts Range-resume requests after severed connections.
	Resumes int64
	// CacheHits / CacheMisses mirror the cache counters.
	CacheHits, CacheMisses int64
	// CacheHitBytes counts bytes served locally instead of transferred.
	CacheHitBytes int64
	// Corrupt counts completed transfers that failed digest
	// verification and were restarted from scratch.
	Corrupt int64
}

// Fetcher is the client half of the data plane: it resolves digests
// through a local Cache and fetches misses from the server's
// /blob/{digest} endpoint with resumable, verified transfers. Safe
// for concurrent use by a client's task slots.
type Fetcher struct {
	// BaseURL is the project server base (http://host:port).
	BaseURL string
	// HTTPClient is the transport (nil = a default with a 60s timeout).
	HTTPClient *http.Client
	// Cache is the digest-keyed local cache (required).
	Cache *Cache
	// MaxAttempts bounds transfer attempts per blob, counting the
	// initial request and every resume (0 = DefaultMaxAttempts).
	MaxAttempts int
	// RetryWait is the pause before a resume attempt (0 = 20ms).
	RetryWait time.Duration

	fetched      atomic.Int64
	bytesFetched atomic.Int64
	resumes      atomic.Int64
	corrupt      atomic.Int64

	mu       sync.Mutex
	reported FetchStats // last snapshot handed out by ReportDelta
}

// DefaultMaxAttempts bounds per-blob transfer attempts. Under
// injected kills every attempt still makes forward progress (the
// server moves killAfter bytes per request), so this needs to cover
// size/killAfter requests for the worst test blobs.
const DefaultMaxAttempts = 64

// NewFetcher creates a fetcher against a server base URL with the
// given cache (nil = fresh in-memory cache).
func NewFetcher(baseURL string, cache *Cache) *Fetcher {
	if cache == nil {
		cache = NewMemCache()
	}
	return &Fetcher{
		BaseURL:    baseURL,
		HTTPClient: &http.Client{Timeout: 60 * time.Second},
		Cache:      cache,
		RetryWait:  20 * time.Millisecond,
	}
}

// Stats returns the fetcher's cumulative accounting.
func (f *Fetcher) Stats() FetchStats {
	hits, misses, hitBytes := f.Cache.Stats()
	return FetchStats{
		Fetched:       f.fetched.Load(),
		BytesFetched:  f.bytesFetched.Load(),
		Resumes:       f.resumes.Load(),
		CacheHits:     hits,
		CacheMisses:   misses,
		CacheHitBytes: hitBytes,
		Corrupt:       f.corrupt.Load(),
	}
}

// ReportDelta returns the change in stats since the previous call —
// the increments a client piggybacks on its next scheduler request so
// the server's aggregate cache/resume metrics stay current.
func (f *Fetcher) ReportDelta() FetchStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.Stats()
	d := FetchStats{
		Fetched:       cur.Fetched - f.reported.Fetched,
		BytesFetched:  cur.BytesFetched - f.reported.BytesFetched,
		Resumes:       cur.Resumes - f.reported.Resumes,
		CacheHits:     cur.CacheHits - f.reported.CacheHits,
		CacheMisses:   cur.CacheMisses - f.reported.CacheMisses,
		CacheHitBytes: cur.CacheHitBytes - f.reported.CacheHitBytes,
		Corrupt:       cur.Corrupt - f.reported.Corrupt,
	}
	f.reported = cur
	return d
}

// Fetch returns the blob for digest: from the local cache when warm,
// otherwise transferred from the server with Range-based resume after
// connection failures and SHA-256 verification of the reassembled
// bytes. A verification failure discards the buffer and restarts the
// transfer from byte zero.
func (f *Fetcher) Fetch(ctx context.Context, digest string) ([]byte, error) {
	if !ValidDigest(digest) {
		return nil, fmt.Errorf("blob: malformed digest %q", digest)
	}
	if data := f.Cache.Get(digest); data != nil {
		return data, nil
	}
	f.fetched.Add(1)

	maxAttempts := f.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxAttempts
	}
	httpc := f.HTTPClient
	if httpc == nil {
		httpc = &http.Client{Timeout: 60 * time.Second}
	}
	wait := f.RetryWait
	if wait <= 0 {
		wait = 20 * time.Millisecond
	}

	var buf []byte
	var total int64 = -1 // unknown until the first response
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(wait):
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.BaseURL+"/blob/"+digest, nil)
		if err != nil {
			return nil, err
		}
		if len(buf) > 0 {
			req.Header.Set("Range", fmt.Sprintf("bytes=%d-", len(buf)))
			f.resumes.Add(1)
		}
		resp, err := httpc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("blob: fetch %s: %w", digest[:12], err)
			continue
		}
		switch resp.StatusCode {
		case http.StatusOK:
			// Full-content reply (or a server that ignored our Range):
			// restart assembly from byte zero either way.
			buf = buf[:0]
		case http.StatusPartialContent:
		case http.StatusServiceUnavailable:
			resp.Body.Close()
			lastErr = fmt.Errorf("blob: fetch %s: throttled", digest[:12])
			continue
		case http.StatusRequestedRangeNotSatisfiable:
			// Our offset outran the blob (e.g. a corrupt over-long
			// buffer); restart from scratch.
			resp.Body.Close()
			buf = buf[:0]
			lastErr = fmt.Errorf("blob: fetch %s: range not satisfiable", digest[:12])
			continue
		default:
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusNotFound || code == http.StatusBadRequest {
				return nil, fmt.Errorf("blob: fetch %s: status %d", digest[:12], code)
			}
			lastErr = fmt.Errorf("blob: fetch %s: status %d", digest[:12], code)
			continue
		}
		if cr := resp.Header.Get("Content-Range"); cr != "" {
			if i := lastIndexByte(cr, '/'); i >= 0 {
				if v, perr := strconv.ParseInt(cr[i+1:], 10, 64); perr == nil {
					total = v
				}
			}
		} else if resp.ContentLength >= 0 && len(buf) == 0 {
			total = resp.ContentLength
		}
		chunk, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		buf = append(buf, chunk...)
		f.bytesFetched.Add(int64(len(chunk)))
		if err != nil {
			// Severed mid-stream; keep what arrived and resume.
			lastErr = fmt.Errorf("blob: fetch %s: %w", digest[:12], err)
			continue
		}
		if total >= 0 && int64(len(buf)) < total {
			// Clean EOF short of the promised length (killed transfer
			// behind a buffering proxy): resume from where we are.
			lastErr = fmt.Errorf("blob: fetch %s: short body %d/%d", digest[:12], len(buf), total)
			continue
		}
		// Transfer complete: verify end-to-end before trusting it.
		if Digest(buf) != digest {
			f.corrupt.Add(1)
			buf = buf[:0]
			lastErr = fmt.Errorf("%w: %s", ErrCorrupt, digest[:12])
			continue
		}
		f.Cache.Put(buf)
		return buf, nil
	}
	return nil, fmt.Errorf("blob: fetch gave up after %d attempts: %w", maxAttempts, lastErr)
}

func lastIndexByte(s string, b byte) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == b {
			return i
		}
	}
	return -1
}
