package blob

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func testPayload(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*7 + i/251)
	}
	return data
}

func TestDigestAndValidate(t *testing.T) {
	d := Digest([]byte("hello"))
	if len(d) != 64 || !ValidDigest(d) {
		t.Fatalf("Digest returned %q, want 64-char hex", d)
	}
	if Digest([]byte("hello")) != d {
		t.Fatal("Digest not deterministic")
	}
	for _, bad := range []string{"", "abc", d[:63], d + "0", "../../etc/passwd",
		"ABCDEF" + d[6:], "zz" + d[2:]} {
		if ValidDigest(bad) {
			t.Errorf("ValidDigest(%q) = true, want false", bad)
		}
	}
}

func TestStoreRoundtrip(t *testing.T) {
	disk, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for name, st := range map[string]Store{"mem": NewMemStore(), "disk": disk} {
		t.Run(name, func(t *testing.T) {
			data := testPayload(4096)
			d, err := st.Put(data)
			if err != nil {
				t.Fatal(err)
			}
			if d != Digest(data) {
				t.Fatalf("Put digest %s != computed %s", d, Digest(data))
			}
			// Immutable: re-Put is a no-op with the same address.
			if d2, _ := st.Put(data); d2 != d {
				t.Fatalf("re-Put digest %s != %s", d2, d)
			}
			got, err := st.Get(d)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("Get returned different bytes")
			}
			if !st.Has(d) {
				t.Fatal("Has = false for stored blob")
			}
			if sz, ok := st.Size(d); !ok || sz != int64(len(data)) {
				t.Fatalf("Size = %d,%v want %d,true", sz, ok, len(data))
			}
			missing := Digest([]byte("missing"))
			if _, err := st.Get(missing); err == nil {
				t.Fatal("Get of missing digest succeeded")
			}
			if st.Has(missing) {
				t.Fatal("Has = true for missing digest")
			}
			ds := st.Digests()
			if len(ds) != 1 || ds[0] != d {
				t.Fatalf("Digests = %v, want [%s]", ds, d)
			}
		})
	}
}

func TestDiskStoreDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	data := testPayload(1024)
	d, err := st.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the stored file behind the store's back.
	path := filepath.Join(dir, d[:2], d)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[100] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(d); err == nil {
		t.Fatal("Get returned corrupted bytes without error")
	}
}

func TestMemStoreConcurrent(t *testing.T) {
	st := NewMemStore()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := testPayload(512 + i)
			d, err := st.Put(data)
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 50; j++ {
				got, err := st.Get(d)
				if err != nil || !bytes.Equal(got, data) {
					t.Errorf("concurrent Get mismatch: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if len(st.Digests()) != 16 {
		t.Fatalf("Digests = %d, want 16", len(st.Digests()))
	}
}

func newTestServer(t *testing.T, svc *Service) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("GET /blob/{digest}", svc)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestFetchRoundtrip(t *testing.T) {
	svc := NewService(NewMemStore(), 4)
	data := testPayload(10_000)
	d, _ := svc.Store().Put(data)
	ts := newTestServer(t, svc)

	f := NewFetcher(ts.URL, nil)
	got, err := f.Fetch(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fetched bytes differ")
	}
	st := f.Stats()
	if st.Fetched != 1 || st.Resumes != 0 || st.CacheMisses != 1 {
		t.Fatalf("stats after cold fetch: %+v", st)
	}
	// Second fetch is a warm-cache hit: no network traffic.
	before := f.Stats().BytesFetched
	got2, err := f.Fetch(context.Background(), d)
	if err != nil || !bytes.Equal(got2, data) {
		t.Fatalf("warm fetch: %v", err)
	}
	st = f.Stats()
	if st.CacheHits != 1 || st.BytesFetched != before {
		t.Fatalf("warm fetch hit the network: %+v", st)
	}
	if _, err := f.Fetch(context.Background(), Digest([]byte("nope"))); err == nil {
		t.Fatal("fetch of missing blob succeeded")
	}
}

// TestFetchKillResume is the core data-plane contract: the server
// severs every transfer after killAfter bytes, and the client must
// reassemble the exact blob through Range resumes — never a full
// re-download.
func TestFetchKillResume(t *testing.T) {
	svc := NewService(NewMemStore(), 4)
	data := testPayload(50_000)
	d, _ := svc.Store().Put(data)
	svc.SetKillAfter(8_000) // each attempt moves at most 8000 bytes
	ts := newTestServer(t, svc)

	f := NewFetcher(ts.URL, nil)
	got, err := f.Fetch(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reassembled bytes are not byte-identical to the original")
	}
	st := f.Stats()
	// 50_000 / 8_000 → at least 6 resumed attempts after the first.
	if st.Resumes < 6 {
		t.Fatalf("Resumes = %d, want >= 6", st.Resumes)
	}
	if svc.Resumes() < 6 {
		t.Fatalf("server-side Resumes = %d, want >= 6", svc.Resumes())
	}
	// Resume (not re-download): total network bytes ≈ blob size, far
	// below resumes × size which a naive full-restart client would pay.
	if st.BytesFetched >= int64(2*len(data)) {
		t.Fatalf("BytesFetched = %d — looks like full re-downloads, not resumes", st.BytesFetched)
	}
	// Disarm and fetch a second blob cleanly.
	svc.SetKillAfter(0)
	data2 := testPayload(3_000)
	d2, _ := svc.Store().Put(data2)
	if got2, err := f.Fetch(context.Background(), d2); err != nil || !bytes.Equal(got2, data2) {
		t.Fatalf("post-disarm fetch: %v", err)
	}
}

func TestFetchGivesUp(t *testing.T) {
	svc := NewService(NewMemStore(), 4)
	data := testPayload(50_000)
	d, _ := svc.Store().Put(data)
	svc.SetKillAfter(100)
	ts := newTestServer(t, svc)

	f := NewFetcher(ts.URL, nil)
	f.MaxAttempts = 3
	f.RetryWait = time.Millisecond
	if _, err := f.Fetch(context.Background(), d); err == nil {
		t.Fatal("fetch succeeded despite attempt budget far below kills needed")
	}
}

func TestServiceRangeRequests(t *testing.T) {
	svc := NewService(NewMemStore(), 4)
	data := testPayload(1000)
	d, _ := svc.Store().Put(data)
	ts := newTestServer(t, svc)

	get := func(rng string) (*http.Response, []byte) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/blob/"+d, nil)
		if rng != "" {
			req.Header.Set("Range", rng)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	resp, body := get("")
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, data) {
		t.Fatalf("full GET: status %d, %d bytes", resp.StatusCode, len(body))
	}
	if resp.Header.Get("X-Blob-Digest") != d {
		t.Fatal("missing X-Blob-Digest")
	}

	resp, body = get("bytes=400-")
	if resp.StatusCode != http.StatusPartialContent || !bytes.Equal(body, data[400:]) {
		t.Fatalf("open range: status %d, %d bytes", resp.StatusCode, len(body))
	}
	if cr := resp.Header.Get("Content-Range"); cr != "bytes 400-999/1000" {
		t.Fatalf("Content-Range = %q", cr)
	}

	resp, body = get("bytes=100-199")
	if resp.StatusCode != http.StatusPartialContent || !bytes.Equal(body, data[100:200]) {
		t.Fatalf("bounded range: status %d, %d bytes", resp.StatusCode, len(body))
	}

	resp, _ = get("bytes=5000-")
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("out-of-range: status %d, want 416", resp.StatusCode)
	}

	// Malformed digest and missing blob.
	if r, err := http.Get(ts.URL + "/blob/nothex"); err == nil {
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound && r.StatusCode != http.StatusBadRequest {
			t.Fatalf("malformed digest: status %d", r.StatusCode)
		}
	}
	if r, err := http.Get(ts.URL + "/blob/" + Digest([]byte("absent"))); err == nil {
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("missing blob: status %d", r.StatusCode)
		}
	}
}

func TestServiceBackpressure(t *testing.T) {
	svc := NewService(NewMemStore(), 1)
	svc.acquireWait = 50 * time.Millisecond
	data := testPayload(100)
	d, _ := svc.Store().Put(data)

	// Occupy the single transfer slot.
	svc.sem <- struct{}{}
	defer func() { <-svc.sem }()

	ts := newTestServer(t, svc)
	resp, err := http.Get(ts.URL + "/blob/" + d)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 under exhausted slots", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

func TestDiskCacheWarmAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	data := testPayload(2048)
	d := Digest(data)
	c1.Put(data)

	// A "restarted" client reopens the same directory and hits warm.
	c2, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Get(d); !bytes.Equal(got, data) {
		t.Fatal("reopened cache missed previously stored blob")
	}
	hits, misses, hitBytes := c2.Stats()
	if hits != 1 || misses != 0 || hitBytes != int64(len(data)) {
		t.Fatalf("stats = %d/%d/%d", hits, misses, hitBytes)
	}
}

func TestReportDelta(t *testing.T) {
	svc := NewService(NewMemStore(), 4)
	data := testPayload(500)
	d, _ := svc.Store().Put(data)
	ts := newTestServer(t, svc)

	f := NewFetcher(ts.URL, nil)
	if _, err := f.Fetch(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	d1 := f.ReportDelta()
	if d1.Fetched != 1 || d1.CacheMisses != 1 {
		t.Fatalf("first delta: %+v", d1)
	}
	if _, err := f.Fetch(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	d2 := f.ReportDelta()
	if d2.Fetched != 0 || d2.CacheHits != 1 || d2.CacheMisses != 0 {
		t.Fatalf("second delta: %+v", d2)
	}
	d3 := f.ReportDelta()
	if d3 != (FetchStats{}) {
		t.Fatalf("idle delta non-zero: %+v", d3)
	}
}

func TestParseRange(t *testing.T) {
	cases := []struct {
		h          string
		size       int64
		start, end int64
		ok         bool
	}{
		{"", 100, 0, 99, true},
		{"bytes=0-", 100, 0, 99, true},
		{"bytes=50-", 100, 50, 99, true},
		{"bytes=10-19", 100, 10, 19, true},
		{"bytes=10-500", 100, 10, 99, true},
		{"bytes=100-", 100, 0, 0, false},
		{"bytes=-50", 100, 0, 0, false},
		{"bytes=5-3", 100, 0, 0, false},
		{"bytes=0-10,20-30", 100, 0, 0, false},
		{"items=0-", 100, 0, 0, false},
		{"garbage", 100, 0, 0, false},
	}
	for _, c := range cases {
		start, end, ok := parseRange(c.h, c.size)
		if ok != c.ok || (ok && (start != c.start || end != c.end)) {
			t.Errorf("parseRange(%q,%d) = %d,%d,%v want %d,%d,%v",
				c.h, c.size, start, end, ok, c.start, c.end, c.ok)
		}
	}
}

func TestFetchConcurrent(t *testing.T) {
	svc := NewService(NewMemStore(), 8)
	ts := newTestServer(t, svc)
	f := NewFetcher(ts.URL, nil)

	var digests []string
	var payloads [][]byte
	for i := 0; i < 8; i++ {
		p := testPayload(1000 + i*137)
		d, _ := svc.Store().Put(p)
		digests = append(digests, d)
		payloads = append(payloads, p)
	}
	var wg sync.WaitGroup
	for i := range digests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := f.Fetch(context.Background(), digests[i])
			if err != nil || !bytes.Equal(got, payloads[i]) {
				t.Errorf("concurrent fetch %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestServiceCorruptBlobIs404(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	data := testPayload(256)
	d, _ := st.Put(data)
	path := filepath.Join(dir, d[:2], d)
	if err := os.WriteFile(path, append(data, 'x'), 0o644); err != nil {
		t.Fatal(err)
	}
	svc := NewService(st, 2)
	ts := newTestServer(t, svc)
	resp, err := http.Get(fmt.Sprintf("%s/blob/%s", ts.URL, d))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("corrupt blob served with status %d", resp.StatusCode)
	}
}
