// Package blob is the VCDL data plane: a content-addressed blob
// subsystem for moving training shards, model specs and parameter
// snapshots between the project server and volunteer clients
// (DESIGN.md §11). Blobs are immutable byte strings keyed by the
// SHA-256 of their content, which buys three properties the name-keyed
// /download path cannot offer:
//
//   - end-to-end integrity: both sides recompute the digest, so a
//     corrupted or truncated transfer is detected structurally, not by
//     trusting the transport;
//   - resumable transfer: an interrupted download restarts with an HTTP
//     Range request from the byte where it died — the digest check at
//     the end proves the spliced reassembly is exact;
//   - transparent caching: a client that already holds a digest never
//     transfers it again, regardless of which file name, epoch or
//     server instance referenced it.
//
// The package is deliberately layered: Store (content-addressed
// storage, in-memory or on-disk), Service (the HTTP data-plane handler
// mounted at /blob/{digest} with Range support, bounded concurrency
// and fault injection), and Fetcher (the client side: digest-keyed
// cache, resume-on-kill, verification). The design follows kubevirt's
// containerized-data-importer: streaming, checksummed, restartable
// data movement.
package blob

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Digest returns the content address of data: the lowercase hex
// SHA-256 of its bytes.
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// ErrNotFound is returned for digests the store does not hold.
var ErrNotFound = errors.New("blob: not found")

// ErrCorrupt is returned when stored or transferred bytes fail digest
// verification.
var ErrCorrupt = errors.New("blob: digest mismatch")

// ValidDigest reports whether s is syntactically a SHA-256 hex digest.
// Handlers reject anything else before touching storage, so hostile
// path values cannot probe the filesystem.
func ValidDigest(s string) bool {
	if len(s) != 64 {
		return false
	}
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9':
		case c >= 'a' && c <= 'f':
		default:
			return false
		}
	}
	return true
}

// Store is content-addressed blob storage. Implementations must be
// safe for concurrent use. Blobs are immutable: Put of existing
// content is a no-op returning the same digest.
type Store interface {
	// Put stores data and returns its digest.
	Put(data []byte) (string, error)
	// Get returns the blob's bytes, verified against its digest.
	Get(digest string) ([]byte, error)
	// Has reports whether the digest is present.
	Has(digest string) bool
	// Size returns the blob's length in bytes (ok=false when absent).
	Size(digest string) (int64, bool)
	// Digests lists held digests in sorted order.
	Digests() []string
}

// MemStore is an in-memory Store — the live server's default backend
// (blobs there are regenerated from the job on restart; durability
// comes from the checkpoint path, not the data plane).
type MemStore struct {
	mu    sync.RWMutex
	blobs map[string][]byte
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{blobs: make(map[string][]byte)}
}

// Put implements Store.
func (m *MemStore) Put(data []byte) (string, error) {
	d := Digest(data)
	m.mu.Lock()
	if _, ok := m.blobs[d]; !ok {
		m.blobs[d] = append([]byte(nil), data...)
	}
	m.mu.Unlock()
	return d, nil
}

// Get implements Store.
func (m *MemStore) Get(digest string) ([]byte, error) {
	m.mu.RLock()
	data, ok := m.blobs[digest]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	return append([]byte(nil), data...), nil
}

// Has implements Store.
func (m *MemStore) Has(digest string) bool {
	m.mu.RLock()
	_, ok := m.blobs[digest]
	m.mu.RUnlock()
	return ok
}

// Size implements Store.
func (m *MemStore) Size(digest string) (int64, bool) {
	m.mu.RLock()
	data, ok := m.blobs[digest]
	m.mu.RUnlock()
	return int64(len(data)), ok
}

// Digests implements Store.
func (m *MemStore) Digests() []string {
	m.mu.RLock()
	out := make([]string, 0, len(m.blobs))
	for d := range m.blobs {
		out = append(out, d)
	}
	m.mu.RUnlock()
	sort.Strings(out)
	return out
}

// DiskStore is an on-disk Store: each blob lives in one file named by
// its digest under a two-character fan-out directory (aa/aabbcc...),
// written atomically (temp file + rename) and digest-verified on every
// read, so a torn write or bit rot surfaces as ErrCorrupt instead of
// silently feeding a client bad training data.
type DiskStore struct {
	dir string
	mu  sync.Mutex
}

// NewDiskStore creates (or reopens) a disk store rooted at dir.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blob: create store dir: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

func (s *DiskStore) path(digest string) string {
	return filepath.Join(s.dir, digest[:2], digest)
}

// Put implements Store.
func (s *DiskStore) Put(data []byte) (string, error) {
	d := Digest(data)
	path := s.path(d)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := os.Stat(path); err == nil {
		return d, nil // immutable: content already present
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", fmt.Errorf("blob: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", fmt.Errorf("blob: write: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("blob: commit: %w", err)
	}
	return d, nil
}

// Get implements Store, verifying the content against its address.
func (s *DiskStore) Get(digest string) ([]byte, error) {
	if !ValidDigest(digest) {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, digest)
	}
	data, err := os.ReadFile(s.path(digest))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, digest)
		}
		return nil, fmt.Errorf("blob: read: %w", err)
	}
	if Digest(data) != digest {
		return nil, fmt.Errorf("%w: %s", ErrCorrupt, digest)
	}
	return data, nil
}

// Has implements Store.
func (s *DiskStore) Has(digest string) bool {
	if !ValidDigest(digest) {
		return false
	}
	_, err := os.Stat(s.path(digest))
	return err == nil
}

// Size implements Store.
func (s *DiskStore) Size(digest string) (int64, bool) {
	if !ValidDigest(digest) {
		return 0, false
	}
	fi, err := os.Stat(s.path(digest))
	if err != nil {
		return 0, false
	}
	return fi.Size(), true
}

// Digests implements Store.
func (s *DiskStore) Digests() []string {
	var out []string
	filepath.Walk(s.dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return nil
		}
		name := filepath.Base(path)
		if ValidDigest(name) && !strings.HasSuffix(name, ".tmp") {
			out = append(out, name)
		}
		return nil
	})
	sort.Strings(out)
	return out
}
