package blob

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"vcdl/internal/obs"
)

// Metric family names the service registers (DESIGN.md §11). They are
// exported so CI assertions and the scenario result extraction can
// reference them without typo drift.
const (
	// MetricBlobBytes counts payload bytes served by the data plane.
	MetricBlobBytes = "vcdl_blob_bytes_total"
	// MetricBlobSeconds is the per-request transfer latency histogram.
	MetricBlobSeconds = "vcdl_blob_transfer_seconds"
	// MetricBlobResumes counts Range requests with a non-zero offset —
	// each one is a client resuming an interrupted transfer.
	MetricBlobResumes = "vcdl_blob_resume_total"
	// MetricBlobRequests counts requests by outcome label
	// (ok, killed, throttled, notfound, bad).
	MetricBlobRequests = "vcdl_blob_requests_total"
	// MetricBlobCacheHits / MetricBlobCacheMisses count client-side
	// digest-cache outcomes, reported back on scheduler requests so
	// process-isolated clients are observable too.
	MetricBlobCacheHits   = "vcdl_blob_cache_hits_total"
	MetricBlobCacheMisses = "vcdl_blob_cache_misses_total"
)

// DefaultMaxConcurrent bounds simultaneous blob transfers when the
// Service is created with no explicit limit: enough for a busy fleet,
// small enough that a flash crowd queues instead of exhausting file
// descriptors and memory bandwidth.
const DefaultMaxConcurrent = 32

// DefaultAcquireWait is how long a transfer waits for a free slot
// before the service sheds it with 503 + Retry-After (backpressure
// rather than unbounded queueing).
const DefaultAcquireWait = 5 * time.Second

// Service is the server half of the data plane: an HTTP handler for
// GET /blob/{digest} over a Store. It supports open-ended and bounded
// Range requests (the resume protocol), bounds concurrent transfers
// with a semaphore (waiters past AcquireWait are shed with 503), and
// can sever transfers mid-stream after a configured byte count — the
// fault-injection hook the kill/resume tests and the scenario engine's
// `blob-kill` event use.
type Service struct {
	store Store
	// sem bounds concurrent transfers; nil = unbounded.
	sem chan struct{}
	// acquireWait is the backpressure budget before a 503.
	acquireWait time.Duration
	// killAfter, when > 0, aborts every transfer after that many
	// payload bytes (fault injection; resumed transfers make progress
	// because each attempt moves killAfter bytes forward).
	killAfter atomic.Int64

	// served counts payload bytes and resumes even without a registry,
	// so the fleet result can always report data-plane traffic.
	servedBytes atomic.Int64
	resumes     atomic.Int64
	cacheHits   atomic.Int64
	cacheBytes  atomic.Int64

	// onBytes, when set, feeds served payload bytes into the project
	// server's traffic accounting.
	onBytes func(n int64)

	// metrics instruments (nil until EnableMetrics).
	obsBytes   *obs.Counter
	obsSeconds *obs.Histogram
	obsResumes *obs.Counter
	obsReqs    *obs.CounterVec
	obsHits    *obs.Counter
	obsMisses  *obs.Counter
}

// NewService creates a data-plane service over st. maxConcurrent <= 0
// takes DefaultMaxConcurrent.
func NewService(st Store, maxConcurrent int) *Service {
	if maxConcurrent <= 0 {
		maxConcurrent = DefaultMaxConcurrent
	}
	return &Service{
		store:       st,
		sem:         make(chan struct{}, maxConcurrent),
		acquireWait: DefaultAcquireWait,
	}
}

// Store returns the backing content-addressed store.
func (s *Service) Store() Store { return s.store }

// OnBytes installs a callback receiving every served payload byte
// count (the project server's traffic accounting).
func (s *Service) OnBytes(f func(n int64)) { s.onBytes = f }

// SetKillAfter arms (n > 0) or disarms (n <= 0) transfer kills: every
// subsequent transfer is severed after n payload bytes.
func (s *Service) SetKillAfter(n int64) {
	if n < 0 {
		n = 0
	}
	s.killAfter.Store(n)
}

// KillAfter returns the current kill threshold (0 = off).
func (s *Service) KillAfter() int64 { return s.killAfter.Load() }

// ServedBytes returns total payload bytes served.
func (s *Service) ServedBytes() int64 { return s.servedBytes.Load() }

// Resumes returns how many Range-resume requests were served.
func (s *Service) Resumes() int64 { return s.resumes.Load() }

// CacheHits returns client-reported digest-cache hits accumulated via
// NoteCacheStats.
func (s *Service) CacheHits() int64 { return s.cacheHits.Load() }

// NoteCacheStats folds one client's reported cache-hit/miss deltas
// into the service's aggregate view (clients piggyback these on
// scheduler requests, so OS-process clients are counted too).
func (s *Service) NoteCacheStats(hits, misses int, hitBytes int64) {
	if hits < 0 || misses < 0 || hitBytes < 0 {
		return // hostile or buggy client; never let counters regress
	}
	s.cacheHits.Add(int64(hits))
	s.cacheBytes.Add(hitBytes)
	if s.obsHits != nil && hits > 0 {
		s.obsHits.Add(int64(hits))
	}
	if s.obsMisses != nil && misses > 0 {
		s.obsMisses.Add(int64(misses))
	}
}

// EnableMetrics registers the vcdl_blob_* families on r and starts
// recording into them. Call before serving traffic.
func (s *Service) EnableMetrics(r *obs.Registry) {
	s.obsBytes = r.Counter(MetricBlobBytes, "payload bytes served by the blob data plane")
	s.obsSeconds = r.Histogram(MetricBlobSeconds, "blob transfer latency, wall seconds", nil)
	s.obsResumes = r.Counter(MetricBlobResumes, "blob transfers resumed via Range offset")
	s.obsReqs = r.CounterVec(MetricBlobRequests, "blob requests by outcome", "outcome")
	s.obsHits = r.Counter(MetricBlobCacheHits, "client digest-cache hits (reported on scheduler requests)")
	s.obsMisses = r.Counter(MetricBlobCacheMisses, "client digest-cache misses (reported on scheduler requests)")
}

func (s *Service) outcome(label string) {
	if s.obsReqs != nil {
		s.obsReqs.With(label).Inc()
	}
}

// parseRange parses a "bytes=N-" or "bytes=N-M" header against size.
// An empty header means the whole blob. Unsatisfiable or malformed
// ranges return ok=false.
func parseRange(h string, size int64) (start, end int64, ok bool) {
	if h == "" {
		return 0, size - 1, true
	}
	spec, found := strings.CutPrefix(h, "bytes=")
	if !found || strings.Contains(spec, ",") {
		return 0, 0, false
	}
	lo, hi, found := strings.Cut(spec, "-")
	if !found {
		return 0, 0, false
	}
	start, err := strconv.ParseInt(lo, 10, 64)
	if err != nil || start < 0 || start >= size {
		return 0, 0, false
	}
	end = size - 1
	if hi != "" {
		end, err = strconv.ParseInt(hi, 10, 64)
		if err != nil || end < start {
			return 0, 0, false
		}
		if end >= size {
			end = size - 1
		}
	}
	return start, end, true
}

// ServeHTTP handles GET /blob/{digest}: the full blob, or the
// requested byte range with 206 + Content-Range. Every response
// carries X-Blob-Digest so the client can sanity-check it is
// reassembling the right content before paying for the hash.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	digest := r.PathValue("digest")
	if !ValidDigest(digest) {
		s.outcome("bad")
		http.Error(w, "malformed digest", http.StatusBadRequest)
		return
	}

	// Backpressure: a transfer slot or a timed shed.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-time.After(s.acquireWait):
		s.outcome("throttled")
		w.Header().Set("Retry-After", "1")
		http.Error(w, "transfer slots exhausted", http.StatusServiceUnavailable)
		return
	case <-r.Context().Done():
		s.outcome("bad")
		return
	}

	data, err := s.store.Get(digest)
	if err != nil {
		s.outcome("notfound")
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	size := int64(len(data))
	start, end, ok := parseRange(r.Header.Get("Range"), size)
	if !ok {
		s.outcome("bad")
		w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", size))
		http.Error(w, "unsatisfiable range", http.StatusRequestedRangeNotSatisfiable)
		return
	}

	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Accept-Ranges", "bytes")
	h.Set("X-Blob-Digest", digest)
	h.Set("Content-Length", strconv.FormatInt(end-start+1, 10))
	if start > 0 || end < size-1 {
		h.Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", start, end, size))
		w.WriteHeader(http.StatusPartialContent)
	}
	if start > 0 {
		s.resumes.Add(1)
		if s.obsResumes != nil {
			s.obsResumes.Inc()
		}
	}

	payload := data[start : end+1]
	kill := s.killAfter.Load()
	killed := kill > 0 && int64(len(payload)) > kill
	if killed {
		payload = payload[:kill]
	}
	n, _ := w.Write(payload)
	s.servedBytes.Add(int64(n))
	if s.onBytes != nil && n > 0 {
		s.onBytes(int64(n))
	}
	if s.obsBytes != nil {
		s.obsBytes.Add(int64(n))
	}
	if s.obsSeconds != nil {
		s.obsSeconds.Observe(time.Since(t0).Seconds())
	}
	if killed {
		// Sever the connection mid-stream: the client has fewer bytes
		// than Content-Length promised and must resume with a Range
		// request. http.ErrAbortHandler aborts without a graceful close.
		s.outcome("killed")
		if f, okf := w.(http.Flusher); okf {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	s.outcome("ok")
}
