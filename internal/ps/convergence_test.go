package ps

import (
	"math"
	"testing"
	"testing/quick"

	"vcdl/internal/opt"
	"vcdl/internal/store"
)

// TestGeometricContraction validates the paper's convergence argument
// around Equation 2: if every client returns the same copy W*, then after
// an epoch of nt assimilations the server error contracts by exactly
// α^nt:
//
//	Ws,e − W* = α^nt · (Ws,e−1 − W*)
func TestGeometricContraction(t *testing.T) {
	const (
		alpha = 0.95
		nt    = 50
		wStar = 3.0
	)
	s := NewServer(0, store.NewStrong(), opt.Constant{V: alpha})
	s.Publish([]float64{10})
	prevErr := 10 - wStar
	for epoch := 1; epoch <= 5; epoch++ {
		for j := 0; j < nt; j++ {
			if err := s.Assimilate([]float64{wStar}, epoch); err != nil {
				t.Fatal(err)
			}
		}
		cur, _ := s.Current()
		gotErr := cur[0] - wStar
		wantErr := prevErr * math.Pow(alpha, nt)
		if math.Abs(gotErr-wantErr) > 1e-9*math.Max(1, math.Abs(wantErr)) {
			t.Fatalf("epoch %d: error %v, Equation 2 predicts %v", epoch, gotErr, wantErr)
		}
		prevErr = gotErr
	}
}

// TestVarScheduleStillContracts: with the Var schedule α rises toward 1,
// so per-epoch contraction weakens but never reverses — the server error
// is monotonically decreasing whenever clients agree.
func TestVarScheduleStillContracts(t *testing.T) {
	s := NewServer(0, store.NewStrong(), opt.EpochFraction{})
	s.Publish([]float64{10})
	const wStar = -2.0
	prev := math.Abs(10 - wStar)
	for epoch := 1; epoch <= 10; epoch++ {
		for j := 0; j < 20; j++ {
			s.Assimilate([]float64{wStar}, epoch)
		}
		cur, _ := s.Current()
		got := math.Abs(cur[0] - wStar)
		if got < 1e-12 {
			return // converged to floating-point noise
		}
		if got >= prev {
			t.Fatalf("epoch %d: error %v did not shrink from %v", epoch, got, prev)
		}
		prev = got
	}
}

// Property: for any α in (0,1) and any epoch length, the contraction
// factor after nt same-target assimilations is α^nt within floating-point
// tolerance.
func TestContractionFactorProperty(t *testing.T) {
	f := func(aRaw uint8, ntRaw uint8) bool {
		alpha := 0.01 + 0.98*float64(aRaw)/255
		nt := int(ntRaw)%30 + 1
		s := NewServer(0, store.NewStrong(), opt.Constant{V: alpha})
		s.Publish([]float64{1})
		for j := 0; j < nt; j++ {
			s.Assimilate([]float64{0}, 1)
		}
		cur, err := s.Current()
		if err != nil {
			return false
		}
		want := math.Pow(alpha, float64(nt))
		return math.Abs(cur[0]-want) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the epoch tracker closes exactly every `subtasks` records, for
// any record stream.
func TestEpochTrackerClosureProperty(t *testing.T) {
	f := func(nRaw uint8, values []float64) bool {
		n := int(nRaw)%10 + 1
		tr := NewEpochTracker(n)
		for i, v := range values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0.5
			}
			_, done := tr.Record(v)
			if done != ((i+1)%n == 0) {
				return false
			}
		}
		return len(tr.Completed()) == len(values)/n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
