package ps_test

import (
	"fmt"

	"vcdl/internal/opt"
	"vcdl/internal/ps"
	"vcdl/internal/store"
)

// ExampleServer_Assimilate shows the VC-ASGD update (Equation 1 of the
// paper): the server copy moves a (1−α) fraction toward each arriving
// client copy, in arrival order, never waiting for stragglers.
func ExampleServer_Assimilate() {
	srv := ps.NewServer(0, store.NewStrong(), opt.Constant{V: 0.9})
	srv.Publish([]float64{0})

	for _, clientCopy := range []float64{10, 10, 10} {
		srv.Assimilate([]float64{clientCopy}, 1)
		ws, _ := srv.Current()
		fmt.Printf("Ws = %.2f\n", ws[0])
	}
	// Output:
	// Ws = 1.00
	// Ws = 1.90
	// Ws = 2.71
}

// ExampleGroup shows multiple parameter servers sharing one store — the
// paper's horizontal PS scaling (§III-D). Updates round-robin across
// servers but land on the same central copy.
func ExampleGroup() {
	g := ps.NewGroup(3, store.NewStrong(), opt.Constant{V: 0.5})
	g.Publish([]float64{0})
	for i := 0; i < 3; i++ {
		g.Pick().Assimilate([]float64{8}, 1)
	}
	ws, _ := g.Current()
	fmt.Printf("Ws = %.0f after 3 assimilations via 3 servers\n", ws[0])
	// Output:
	// Ws = 7 after 3 assimilations via 3 servers
}

// ExampleEpochTracker shows the per-epoch aggregation the paper's
// parameter server performs: the epoch closes when all subtasks have
// reported, yielding the mean and the error-bar range of Figure 4.
func ExampleEpochTracker() {
	tr := ps.NewEpochTracker(3)
	tr.Record(0.50)
	tr.Record(0.70)
	sum, done := tr.Record(0.60)
	fmt.Printf("done=%v mean=%.2f range=[%.2f,%.2f]\n", done, sum.Mean, sum.Lo, sum.Hi)
	// Output:
	// done=true mean=0.60 range=[0.50,0.70]
}
