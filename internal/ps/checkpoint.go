package ps

import (
	"fmt"

	"vcdl/internal/wire"
)

// Durable checkpoints (DESIGN.md §11). The live parameter copy at
// DefaultKey is continuously overwritten by assimilations, and under an
// eventual store a failed-over reader may see it stale or mid-merge.
// The checkpoint key instead holds the last *epoch-closed* snapshot,
// written once per epoch: a coherent (epoch, params) pair a resized or
// restarted PS group can restore instead of retraining from epoch 1.

// CheckpointKey is the store key holding the latest epoch checkpoint.
const CheckpointKey = "model/checkpoint"

// SaveCheckpoint snapshots params as the epoch-e checkpoint in the
// shared store. Monotonic: a concurrent or replayed save for an older
// epoch never overwrites a newer checkpoint.
func (g *Group) SaveCheckpoint(epoch int, params []float64) error {
	blob, err := wire.EncodeCheckpoint(epoch, params)
	if err != nil {
		return fmt.Errorf("ps: encode checkpoint: %w", err)
	}
	st := g.first().Store
	err = st.Update(CheckpointKey, func(old []byte) []byte {
		if oldEpoch, _, derr := wire.DecodeCheckpoint(old); derr == nil && oldEpoch >= epoch {
			return old
		}
		return blob
	})
	if err != nil {
		return fmt.Errorf("ps: save checkpoint: %w", err)
	}
	return nil
}

// LatestCheckpoint reads the newest checkpoint from the shared store.
// Returns epoch 0 and no error when none has been written yet.
func (g *Group) LatestCheckpoint() (epoch int, params []float64, err error) {
	blob, _, gerr := g.first().Store.Get(CheckpointKey)
	if gerr != nil || len(blob) == 0 {
		return 0, nil, nil // no checkpoint yet
	}
	epoch, params, err = wire.DecodeCheckpoint(blob)
	if err != nil {
		return 0, nil, fmt.Errorf("ps: decode checkpoint: %w", err)
	}
	return epoch, params, nil
}

// RestoreCheckpoint republishes the latest checkpoint's parameters as
// the live server copy, returning the epoch it had closed (0 when no
// checkpoint exists — the caller keeps its current parameters). This is
// the failover path: after Resize drops dead servers, the survivors
// roll the possibly-torn live copy back to the last coherent snapshot.
func (g *Group) RestoreCheckpoint() (int, error) {
	epoch, params, err := g.LatestCheckpoint()
	if err != nil {
		return 0, err
	}
	if epoch == 0 || params == nil {
		return 0, nil
	}
	if err := g.Publish(params); err != nil {
		return 0, fmt.Errorf("ps: restore checkpoint: %w", err)
	}
	return epoch, nil
}
