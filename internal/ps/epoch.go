package ps

import (
	"sync"

	"vcdl/internal/metrics"
)

// EpochTracker aggregates per-subtask validation accuracies within an
// epoch. The paper: "After assimilating a parameter update from a training
// subtask, the parameter server computes the validation accuracy. At the
// end of an epoch, the parameter server calculates the average validation
// accuracy over all the subtasks" (§III-A); the per-epoch range of those
// accuracies is Figure 4's error bar.
type EpochTracker struct {
	mu        sync.Mutex
	subtasks  int
	epoch     int
	accs      []float64
	completed []EpochSummary
}

// EpochSummary is the aggregate of one finished epoch.
type EpochSummary struct {
	Epoch   int
	Mean    float64
	Lo, Hi  float64
	Std     float64
	Samples int
}

// NewEpochTracker tracks epochs of the given subtask count.
func NewEpochTracker(subtasks int) *EpochTracker {
	return &EpochTracker{subtasks: subtasks, epoch: 1}
}

// NewEpochTrackerAt tracks epochs starting at start (minimum 1) — the
// resume path: a job restored from an epoch-e checkpoint continues at
// e+1 instead of recounting from scratch. StopCriterion compares
// against absolute epoch numbers, so a resumed job still stops at the
// original budget.
func NewEpochTrackerAt(subtasks, start int) *EpochTracker {
	if start < 1 {
		start = 1
	}
	return &EpochTracker{subtasks: subtasks, epoch: start}
}

// Epoch returns the current (1-based) epoch number.
func (t *EpochTracker) Epoch() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// Record adds one subtask's validation accuracy. When the epoch's subtask
// quota is reached the epoch closes and the summary is returned with
// done=true; the tracker then advances to the next epoch.
func (t *EpochTracker) Record(acc float64) (EpochSummary, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.accs = append(t.accs, acc)
	if len(t.accs) < t.subtasks {
		return EpochSummary{}, false
	}
	lo, hi := metrics.MinMax(t.accs)
	sum := EpochSummary{
		Epoch:   t.epoch,
		Mean:    metrics.Mean(t.accs),
		Lo:      lo,
		Hi:      hi,
		Std:     metrics.Std(t.accs),
		Samples: len(t.accs),
	}
	t.completed = append(t.completed, sum)
	t.accs = t.accs[:0]
	t.epoch++
	return sum, true
}

// Completed returns summaries of all closed epochs.
func (t *EpochTracker) Completed() []EpochSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]EpochSummary(nil), t.completed...)
}

// StopCriterion reports whether training should stop: either the target
// accuracy was met by the last closed epoch or the epoch budget is
// exhausted.
type StopCriterion struct {
	TargetAccuracy float64
	MaxEpochs      int
}

// ShouldStop evaluates the criterion against the latest epoch summary.
func (c StopCriterion) ShouldStop(latest EpochSummary) bool {
	if c.TargetAccuracy > 0 && latest.Mean >= c.TargetAccuracy {
		return true
	}
	return c.MaxEpochs > 0 && latest.Epoch >= c.MaxEpochs
}
