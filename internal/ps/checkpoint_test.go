package ps

import (
	"testing"

	"vcdl/internal/opt"
	"vcdl/internal/store"
)

func TestGroupCheckpointRoundtrip(t *testing.T) {
	for _, st := range []store.Store{store.NewStrong(), store.NewEventual(1, 0, 1)} {
		t.Run(st.Name(), func(t *testing.T) {
			g := NewGroup(2, st, opt.Constant{V: 0.95})
			params := []float64{1.5, -2.25, 3.125}
			if err := g.Publish(params); err != nil {
				t.Fatal(err)
			}

			// No checkpoint yet: Latest and Restore are benign no-ops.
			if e, p, err := g.LatestCheckpoint(); err != nil || e != 0 || p != nil {
				t.Fatalf("empty LatestCheckpoint = %d,%v,%v", e, p, err)
			}
			if e, err := g.RestoreCheckpoint(); err != nil || e != 0 {
				t.Fatalf("empty RestoreCheckpoint = %d,%v", e, err)
			}

			if err := g.SaveCheckpoint(3, params); err != nil {
				t.Fatal(err)
			}
			e, p, err := g.LatestCheckpoint()
			if err != nil || e != 3 || len(p) != 3 {
				t.Fatalf("LatestCheckpoint = %d,%v,%v", e, p, err)
			}

			// Clobber the live copy (the torn-failover state), restore,
			// and the live copy must be the snapshot again.
			if err := g.Publish([]float64{9, 9, 9}); err != nil {
				t.Fatal(err)
			}
			re, err := g.RestoreCheckpoint()
			if err != nil || re != 3 {
				t.Fatalf("RestoreCheckpoint = %d,%v", re, err)
			}
			cur, err := g.Current()
			if err != nil {
				t.Fatal(err)
			}
			for i := range params {
				if cur[i] != params[i] {
					t.Fatalf("restored[%d] = %v, want %v", i, cur[i], params[i])
				}
			}
		})
	}
}

func TestSaveCheckpointMonotonic(t *testing.T) {
	g := NewGroup(1, store.NewStrong(), opt.Constant{V: 0.95})
	if err := g.SaveCheckpoint(5, []float64{5}); err != nil {
		t.Fatal(err)
	}
	// A stale epoch-2 save (replayed upload, lagging PS) must not
	// overwrite the epoch-5 snapshot.
	if err := g.SaveCheckpoint(2, []float64{2}); err != nil {
		t.Fatal(err)
	}
	e, p, err := g.LatestCheckpoint()
	if err != nil || e != 5 || p[0] != 5 {
		t.Fatalf("after stale save: epoch %d params %v err %v", e, p, err)
	}
	// Newer epochs do advance it.
	if err := g.SaveCheckpoint(6, []float64{6}); err != nil {
		t.Fatal(err)
	}
	if e, _, _ := g.LatestCheckpoint(); e != 6 {
		t.Fatalf("epoch = %d, want 6", e)
	}
}

func TestCheckpointSurvivesResize(t *testing.T) {
	st := store.NewStrong()
	g := NewGroup(3, st, opt.Constant{V: 0.95})
	if err := g.Publish([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := g.SaveCheckpoint(4, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	g.Resize(1) // two PS processes die
	e, err := g.RestoreCheckpoint()
	if err != nil || e != 4 {
		t.Fatalf("restore after shrink = %d,%v", e, err)
	}
	g.Resize(5) // standbys join; checkpoint still visible to all
	if e, _, _ := g.LatestCheckpoint(); e != 4 {
		t.Fatalf("after grow: epoch %d, want 4", e)
	}
}

func TestEpochTrackerAt(t *testing.T) {
	tr := NewEpochTrackerAt(2, 7)
	if tr.Epoch() != 7 {
		t.Fatalf("start epoch = %d, want 7", tr.Epoch())
	}
	tr.Record(0.5)
	sum, done := tr.Record(0.7)
	if !done || sum.Epoch != 7 {
		t.Fatalf("first closed epoch = %+v done=%v", sum, done)
	}
	if tr.Epoch() != 8 {
		t.Fatalf("next epoch = %d, want 8", tr.Epoch())
	}
	// StopCriterion on absolute epochs: a job resumed at 7 with a
	// 8-epoch budget stops after one more epoch, not eight.
	c := StopCriterion{MaxEpochs: 8}
	if c.ShouldStop(sum) {
		t.Fatal("stopped at epoch 7 with budget 8")
	}
	tr.Record(0.8)
	sum, _ = tr.Record(0.9)
	if !c.ShouldStop(sum) {
		t.Fatal("did not stop at epoch 8 budget 8")
	}
	if NewEpochTrackerAt(2, 0).Epoch() != 1 {
		t.Fatal("start epoch below 1 not clamped")
	}
}
