package ps

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"vcdl/internal/opt"
	"vcdl/internal/store"
	"vcdl/internal/wire"
)

func newTestServer(alpha float64) *Server {
	return NewServer(0, store.NewStrong(), opt.Constant{V: alpha})
}

func TestPublishAndCurrent(t *testing.T) {
	s := newTestServer(0.95)
	if err := s.Publish([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Current()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Current = %v", got)
	}
}

func TestAssimilateEquationOne(t *testing.T) {
	s := newTestServer(0.75)
	s.Publish([]float64{4, 8})
	if err := s.Assimilate([]float64{0, 4}, 1); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Current()
	// 0.75*4 + 0.25*0 = 3 ; 0.75*8 + 0.25*4 = 7
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("Ws = %v, want [3 7]", got)
	}
	if s.Assimilations() != 1 {
		t.Fatalf("Assimilations = %d", s.Assimilations())
	}
}

// TestRecursionMatchesEquationTwo checks the closed form of Equation 2:
// applying Equation 1 over nt returning subtasks gives
// Ws,e = α^nt·Ws,e−1 + (1−α)·Σ_j α^(nt−j)·Wc,j.
func TestRecursionMatchesEquationTwo(t *testing.T) {
	const alpha = 0.9
	const nt = 5
	s := newTestServer(alpha)
	w0 := 10.0
	s.Publish([]float64{w0})
	clients := []float64{1, 2, 3, 4, 5}
	for _, wc := range clients {
		if err := s.Assimilate([]float64{wc}, 1); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := s.Current()
	want := math.Pow(alpha, nt) * w0
	for j := 1; j <= nt; j++ {
		want += (1 - alpha) * math.Pow(alpha, float64(nt-j)) * clients[j-1]
	}
	if math.Abs(got[0]-want) > 1e-12 {
		t.Fatalf("Ws = %v, Equation 2 predicts %v", got[0], want)
	}
}

func TestAssimilateFirstWriteAdoptsClient(t *testing.T) {
	s := newTestServer(0.95)
	// No Publish: the first client copy becomes the server copy.
	if err := s.Assimilate([]float64{7, 7}, 1); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Current()
	if got[0] != 7 || got[1] != 7 {
		t.Fatalf("Ws = %v, want [7 7]", got)
	}
}

func TestAssimilateAlphaOutOfRange(t *testing.T) {
	s := NewServer(0, store.NewStrong(), opt.Constant{V: 1.5})
	s.Publish([]float64{1})
	if err := s.Assimilate([]float64{2}, 1); err == nil {
		t.Fatal("alpha > 1 must error")
	}
}

func TestAlphaScheduleUsesEpoch(t *testing.T) {
	s := NewServer(0, store.NewStrong(), opt.EpochFraction{})
	s.Publish([]float64{0})
	// Epoch 1: α = 0.5 → Ws = 0.5*0 + 0.5*10 = 5.
	s.Assimilate([]float64{10}, 1)
	got, _ := s.Current()
	if got[0] != 5 {
		t.Fatalf("epoch 1: Ws = %v, want 5", got[0])
	}
	// Epoch 9: α = 0.9 → Ws = 0.9*5 + 0.1*10 = 5.5.
	s.Assimilate([]float64{10}, 9)
	got, _ = s.Current()
	if math.Abs(got[0]-5.5) > 1e-12 {
		t.Fatalf("epoch 9: Ws = %v, want 5.5", got[0])
	}
}

func TestGroupRoundRobin(t *testing.T) {
	g := NewGroup(3, store.NewStrong(), opt.Constant{V: 0.95})
	if g.Size() != 3 {
		t.Fatalf("Size = %d", g.Size())
	}
	ids := []int{g.Pick().ID, g.Pick().ID, g.Pick().ID, g.Pick().ID}
	want := []int{0, 1, 2, 0}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("Pick order %v, want %v", ids, want)
		}
	}
}

func TestGroupSharesOneCopy(t *testing.T) {
	g := NewGroup(3, store.NewStrong(), opt.Constant{V: 0.5})
	g.Publish([]float64{0})
	// Three different servers each assimilate 8: Ws = 0→4→6→7.
	for i := 0; i < 3; i++ {
		if err := g.Pick().Assimilate([]float64{8}, 1); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := g.Current()
	if got[0] != 7 {
		t.Fatalf("Ws = %v, want 7 (servers must share one copy)", got[0])
	}
	if g.TotalAssimilations() != 3 {
		t.Fatalf("TotalAssimilations = %d", g.TotalAssimilations())
	}
}

func TestGroupConcurrentAssimilationStrongStore(t *testing.T) {
	// With a strong store, concurrent assimilations through multiple
	// servers must all land (serializable RMW).
	st := store.NewStrong()
	g := NewGroup(5, st, opt.Constant{V: 0.9})
	g.Publish([]float64{1})
	var wg sync.WaitGroup
	const updates = 100
	for i := 0; i < updates; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Pick().Assimilate([]float64{1}, 1); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// Every update with Wc=Ws=1 keeps Ws=1; what matters is update count.
	if st.Stats().Updates != updates {
		t.Fatalf("store saw %d updates, want %d", st.Stats().Updates, updates)
	}
	got, _ := g.Current()
	if math.Abs(got[0]-1) > 1e-12 {
		t.Fatalf("Ws = %v, want 1", got[0])
	}
}

func TestEventualStoreMayLoseAssimilations(t *testing.T) {
	// The eventual store tolerates lost updates; the server copy must
	// remain decodable and the loss visible in stats, matching §III-D.
	st := store.NewEventual(1, 0, 3)
	g := NewGroup(3, st, opt.Constant{V: 0.5})
	g.Publish([]float64{0})
	var wg sync.WaitGroup
	for i := 0; i < 60; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Pick().Assimilate([]float64{8}, 1)
		}()
	}
	wg.Wait()
	got, err := g.Current()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] < 0 || got[0] > 8 {
		t.Fatalf("Ws = %v outside [0,8]", got[0])
	}
}

func TestEpochTrackerAggregation(t *testing.T) {
	tr := NewEpochTracker(3)
	if _, done := tr.Record(0.5); done {
		t.Fatal("epoch closed early")
	}
	if _, done := tr.Record(0.7); done {
		t.Fatal("epoch closed early")
	}
	sum, done := tr.Record(0.6)
	if !done {
		t.Fatal("epoch did not close")
	}
	if math.Abs(sum.Mean-0.6) > 1e-12 || sum.Lo != 0.5 || sum.Hi != 0.7 || sum.Samples != 3 {
		t.Fatalf("summary = %+v", sum)
	}
	if tr.Epoch() != 2 {
		t.Fatalf("Epoch = %d, want 2", tr.Epoch())
	}
	if len(tr.Completed()) != 1 {
		t.Fatal("completed epoch not recorded")
	}
}

func TestStopCriterion(t *testing.T) {
	c := StopCriterion{TargetAccuracy: 0.73, MaxEpochs: 40}
	if c.ShouldStop(EpochSummary{Epoch: 5, Mean: 0.5}) {
		t.Fatal("should not stop yet")
	}
	if !c.ShouldStop(EpochSummary{Epoch: 5, Mean: 0.74}) {
		t.Fatal("should stop on accuracy")
	}
	if !c.ShouldStop(EpochSummary{Epoch: 40, Mean: 0.1}) {
		t.Fatal("should stop on epoch budget")
	}
	unbounded := StopCriterion{}
	if unbounded.ShouldStop(EpochSummary{Epoch: 1000, Mean: 1}) {
		t.Fatal("zero criterion must never stop")
	}
}

// Property: assimilation is a convex combination, so Ws stays inside the
// [min, max] envelope of the initial copy and all client copies.
func TestAssimilateConvexProperty(t *testing.T) {
	f := func(w0 float64, clients []float64, alphaRaw uint8) bool {
		if math.IsNaN(w0) || math.IsInf(w0, 0) {
			return true
		}
		alpha := float64(alphaRaw) / 255
		lo, hi := w0, w0
		s := NewServer(0, store.NewStrong(), opt.Constant{V: alpha})
		s.Publish([]float64{w0})
		for _, wc := range clients {
			if math.IsNaN(wc) || math.IsInf(wc, 0) {
				continue
			}
			s.Assimilate([]float64{wc}, 1)
			if wc < lo {
				lo = wc
			}
			if wc > hi {
				hi = wc
			}
		}
		got, err := s.Current()
		if err != nil {
			return false
		}
		const eps = 1e-9
		return got[0] >= lo-eps && got[0] <= hi+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestRawCodecInterop(t *testing.T) {
	// ps relies on wire.EncodeRaw/DecodeRaw round-tripping exactly.
	params := []float64{1.5, -2.25, 0, math.Pi}
	back, err := wire.DecodeRaw(wire.EncodeRaw(params))
	if err != nil {
		t.Fatal(err)
	}
	for i := range params {
		if params[i] != back[i] {
			t.Fatal("raw codec mismatch")
		}
	}
}
