// Package ps implements the paper's parameter server and its core
// contribution, the VC-ASGD asynchronous parameter update scheme
// (§III-C):
//
//	Ws ← α·Ws + (1−α)·Wc            (Equation 1)
//
// where Ws is the central server parameter copy, Wc the parameter copy
// uploaded by a client after executing a training subtask, and α the
// VC-ASGD hyperparameter. Updates are assimilated immediately in whatever
// order they arrive — the server never waits for all subtasks, which is
// what makes the scheme fault tolerant under client churn. Multiple
// parameter servers share one copy of Ws through a store.Store (§III-D).
package ps

import (
	"fmt"
	"sync"
	"sync/atomic"

	"vcdl/internal/opt"
	"vcdl/internal/store"
	"vcdl/internal/wire"
)

// DefaultKey is the store key holding the shared server parameter copy
// (the paper stores all parameters of a model as a single value).
const DefaultKey = "model/params"

// Server is one parameter-server process. Any number of Servers may share
// a single Store; the store's consistency model decides what concurrent
// assimilations do (lossy for eventual stores, serialized for strong).
type Server struct {
	ID    int
	Key   string
	Store store.Store
	// Alpha is the VC-ASGD hyperparameter schedule over epochs: the
	// paper evaluates constant values (0.7, 0.95, 0.999) and the "Var"
	// schedule αe = e/(e+1).
	Alpha opt.Schedule

	assimilations atomic.Int64
}

// Assimilations returns how many updates this server instance applied.
func (s *Server) Assimilations() int { return int(s.assimilations.Load()) }

// NewServer creates a parameter server bound to a shared store.
func NewServer(id int, st store.Store, alpha opt.Schedule) *Server {
	return &Server{ID: id, Key: DefaultKey, Store: st, Alpha: alpha}
}

// Publish seeds the shared parameter copy (the work generator calls this
// once with the freshly initialized model).
func (s *Server) Publish(params []float64) error {
	return s.Store.Set(s.Key, wire.EncodeRaw(params))
}

// Current returns the server parameter copy as seen through the store
// (possibly stale for eventual-consistency backends).
func (s *Server) Current() ([]float64, error) {
	blob, _, err := s.Store.Get(s.Key)
	if err != nil {
		return nil, fmt.Errorf("ps: read server params: %w", err)
	}
	return wire.DecodeRaw(blob)
}

// Assimilate applies Equation 1 for a client parameter copy delivered
// during epoch e. It is a single read-modify-write on the shared store:
// the update is applied immediately, regardless of subtask order.
func (s *Server) Assimilate(clientParams []float64, epoch int) error {
	alpha := s.Alpha.At(epoch)
	if alpha < 0 || alpha > 1 {
		return fmt.Errorf("ps: alpha %v out of [0,1] at epoch %d", alpha, epoch)
	}
	err := s.Store.Update(s.Key, func(old []byte) []byte {
		ws, derr := wire.DecodeRaw(old)
		if derr != nil || len(ws) != len(clientParams) {
			// First write or schema change: adopt the client copy.
			return wire.EncodeRaw(clientParams)
		}
		for i := range ws {
			ws[i] = alpha*ws[i] + (1-alpha)*clientParams[i]
		}
		return wire.EncodeRaw(ws)
	})
	if err != nil {
		return fmt.Errorf("ps: assimilate: %w", err)
	}
	s.assimilations.Add(1)
	return nil
}

// Group is a set of parameter servers sharing one store, with BOINC's
// even load distribution: "BOINC evenly distributes the load to multiple
// parameter servers. Only one parameter server processes the update from
// a training subtask" (§III-D).
type Group struct {
	servers []*Server
	next    int
	mu      sync.Mutex
}

// NewGroup creates n parameter servers over the shared store.
func NewGroup(n int, st store.Store, alpha opt.Schedule) *Group {
	if n < 1 {
		n = 1
	}
	g := &Group{}
	for i := 0; i < n; i++ {
		g.servers = append(g.servers, NewServer(i, st, alpha))
	}
	return g
}

// Size returns the number of parameter servers.
func (g *Group) Size() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.servers)
}

// Resize grows or shrinks the pool to n servers (minimum 1), the
// failover/recovery hook of the real-mode scenario driver: shrinking
// models PS processes dying (their queued updates drain through the
// survivors, which share the same store), growing models standbys
// joining. It returns the new size.
func (g *Group) Resize(n int) int {
	if n < 1 {
		n = 1
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for len(g.servers) < n {
		g.servers = append(g.servers, NewServer(len(g.servers), g.servers[0].Store, g.servers[0].Alpha))
	}
	g.servers = g.servers[:n]
	return len(g.servers)
}

// Pick returns the next server round-robin (the even load split).
func (g *Group) Pick() *Server {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.servers[g.next%len(g.servers)]
	g.next++
	return s
}

// Server returns server i.
func (g *Group) Server(i int) *Server {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.servers[i]
}

// first returns server 0 under the lock (Resize may be concurrently
// swapping the slice; server 0 always survives a resize).
func (g *Group) first() *Server {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.servers[0]
}

// Publish seeds the shared copy via the first server.
func (g *Group) Publish(params []float64) error { return g.first().Publish(params) }

// Current reads the shared copy via the first server.
func (g *Group) Current() ([]float64, error) { return g.first().Current() }

// TotalAssimilations sums per-server counters. A Resize can drop
// servers (and their counts) mid-run; the survivors' counters persist.
func (g *Group) TotalAssimilations() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, s := range g.servers {
		n += s.Assimilations()
	}
	return n
}
