package tensor

import (
	"fmt"
	"math"
)

// Add returns t + u elementwise as a new tensor.
func Add(t, u *Tensor) *Tensor {
	checkSameShape("Add", t, u)
	out := New(t.shape...)
	for i := range t.Data {
		out.Data[i] = t.Data[i] + u.Data[i]
	}
	return out
}

// Sub returns t - u elementwise as a new tensor.
func Sub(t, u *Tensor) *Tensor {
	checkSameShape("Sub", t, u)
	out := New(t.shape...)
	for i := range t.Data {
		out.Data[i] = t.Data[i] - u.Data[i]
	}
	return out
}

// Mul returns the elementwise (Hadamard) product as a new tensor.
func Mul(t, u *Tensor) *Tensor {
	checkSameShape("Mul", t, u)
	out := New(t.shape...)
	for i := range t.Data {
		out.Data[i] = t.Data[i] * u.Data[i]
	}
	return out
}

// AddInPlace sets t += u.
func (t *Tensor) AddInPlace(u *Tensor) {
	checkSameShape("AddInPlace", t, u)
	for i := range t.Data {
		t.Data[i] += u.Data[i]
	}
}

// SubInPlace sets t -= u.
func (t *Tensor) SubInPlace(u *Tensor) {
	checkSameShape("SubInPlace", t, u)
	for i := range t.Data {
		t.Data[i] -= u.Data[i]
	}
}

// Scale multiplies every element by a in place.
func (t *Tensor) Scale(a float64) {
	for i := range t.Data {
		t.Data[i] *= a
	}
}

// Axpy sets t += a*u (BLAS axpy).
func (t *Tensor) Axpy(a float64, u *Tensor) {
	checkSameShape("Axpy", t, u)
	for i := range t.Data {
		t.Data[i] += a * u.Data[i]
	}
}

// Lerp sets t = alpha*t + (1-alpha)*u. This is the VC-ASGD server update
// (Equation 1 of the paper) applied to a raw vector.
func (t *Tensor) Lerp(alpha float64, u *Tensor) {
	checkSameShape("Lerp", t, u)
	for i := range t.Data {
		t.Data[i] = alpha*t.Data[i] + (1-alpha)*u.Data[i]
	}
}

// Apply replaces each element x with f(x).
func (t *Tensor) Apply(f func(float64) float64) {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
}

// Map returns a new tensor whose elements are f(x) for each element x of t.
func Map(t *Tensor, f func(float64) float64) *Tensor {
	out := New(t.shape...)
	for i, v := range t.Data {
		out.Data[i] = f(v)
	}
	return out
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element. It panics on an empty tensor.
func (t *Tensor) Min() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the maximum element. It panics on an
// empty tensor.
func (t *Tensor) ArgMax() int {
	if len(t.Data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, bi := t.Data[0], 0
	for i, v := range t.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Dot returns the inner product of t and u viewed as flat vectors.
func Dot(t, u *Tensor) float64 {
	checkSameShape("Dot", t, u)
	s := 0.0
	for i := range t.Data {
		s += t.Data[i] * u.Data[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of the tensor viewed as a flat vector.
func (t *Tensor) Norm2() float64 {
	return math.Sqrt(Dot(t, t))
}

// SumRows reduces a [rows, cols] matrix along rows, returning a [cols]
// vector. Used for bias gradients.
func SumRows(t *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: SumRows wants rank 2, got %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := New(cols)
	for r := 0; r < rows; r++ {
		row := t.Data[r*cols : (r+1)*cols]
		for c, v := range row {
			out.Data[c] += v
		}
	}
	return out
}

// SumRowsInto is SumRows through caller-owned dst (shape [cols]): dst
// is zeroed, then rows accumulate in ascending order — bit-identical to
// SumRows. Returns dst.
func SumRowsInto(dst, t *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: SumRows wants rank 2, got %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	if dst.Size() != cols {
		panic(fmt.Sprintf("tensor: SumRowsInto dst size %d, want %d", dst.Size(), cols))
	}
	zeroFloats(dst.Data)
	for r := 0; r < rows; r++ {
		row := t.Data[r*cols : (r+1)*cols]
		for c, v := range row {
			dst.Data[c] += v
		}
	}
	return dst
}

// AddInto computes dst = t + u elementwise into caller-owned dst,
// overwriting every element. dst may alias t or u. Returns dst.
func AddInto(dst, t, u *Tensor) *Tensor {
	checkSameShape("Add", t, u)
	if dst.Size() != t.Size() {
		panic(fmt.Sprintf("tensor: AddInto dst size %d, want %d", dst.Size(), t.Size()))
	}
	for i := range t.Data {
		dst.Data[i] = t.Data[i] + u.Data[i]
	}
	return dst
}

// EnsureShape returns a tensor with exactly the given shape, reusing
// t's backing storage when it has the capacity (t itself when the shape
// already matches) and allocating otherwise. Reused contents are
// unspecified — callers must overwrite or Zero before accumulating.
// This is the scratch-arena primitive the nn layers use to stop
// allocating activations per batch.
func EnsureShape(t *Tensor, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if t == nil || cap(t.Data) < n {
		return New(shape...)
	}
	if len(t.shape) == len(shape) {
		match := true
		for i, d := range shape {
			if t.shape[i] != d {
				match = false
				break
			}
		}
		if match && len(t.Data) == n {
			return t
		}
	}
	return FromSlice(t.Data[:n], shape...)
}

// AddRowVector adds vector v (shape [cols]) to every row of the
// [rows, cols] matrix t in place. Used for bias addition.
func (t *Tensor) AddRowVector(v *Tensor) {
	if t.Rank() != 2 || v.Rank() != 1 || t.shape[1] != v.shape[0] {
		panic(fmt.Sprintf("tensor: AddRowVector shapes %v and %v incompatible", t.shape, v.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	for r := 0; r < rows; r++ {
		row := t.Data[r*cols : (r+1)*cols]
		for c := range row {
			row[c] += v.Data[c]
		}
	}
}

// Transpose returns the transpose of a rank-2 tensor as a new tensor.
func Transpose(t *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose wants rank 2, got %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := New(cols, rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out.Data[c*rows+r] = t.Data[r*cols+c]
		}
	}
	return out
}

func checkSameShape(op string, t, u *Tensor) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.shape, u.shape))
	}
}
