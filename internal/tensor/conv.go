package tensor

import "fmt"

// ConvDims describes a 2-D convolution geometry on NCHW tensors.
type ConvDims struct {
	Batch, InC, InH, InW int
	OutC, KH, KW         int
	Stride, Pad          int
	OutH, OutW           int
}

// NewConvDims validates and completes a convolution geometry.
func NewConvDims(batch, inC, inH, inW, outC, kh, kw, stride, pad int) (ConvDims, error) {
	d := ConvDims{Batch: batch, InC: inC, InH: inH, InW: inW, OutC: outC, KH: kh, KW: kw, Stride: stride, Pad: pad}
	if stride < 1 {
		return d, fmt.Errorf("tensor: conv stride %d < 1", stride)
	}
	if pad < 0 {
		return d, fmt.Errorf("tensor: conv pad %d < 0", pad)
	}
	oh := (inH+2*pad-kh)/stride + 1
	ow := (inW+2*pad-kw)/stride + 1
	if oh < 1 || ow < 1 {
		return d, fmt.Errorf("tensor: conv output %dx%d not positive for input %dx%d kernel %dx%d stride %d pad %d",
			oh, ow, inH, inW, kh, kw, stride, pad)
	}
	d.OutH, d.OutW = oh, ow
	return d, nil
}

// Im2Col unrolls input x of shape [N, C, H, W] into a matrix of shape
// [N*OutH*OutW, C*KH*KW] so convolution becomes a single MatMul with the
// reshaped kernel.
func Im2Col(x *Tensor, d ConvDims) *Tensor {
	return Im2ColInto(New(d.Batch*d.OutH*d.OutW, d.InC*d.KH*d.KW), x, d)
}

// Im2ColInto unrolls x into caller-owned cols (shape
// [N*OutH*OutW, C*KH*KW]). Every element of cols is overwritten —
// padding positions are written as explicit zeros — so cols needs no
// pre-clearing and reuse across calls is safe. Returns cols.
func Im2ColInto(cols, x *Tensor, d ConvDims) *Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Im2Col wants NCHW rank-4 input, got %v", x.shape))
	}
	if rows, width := d.Batch*d.OutH*d.OutW, d.InC*d.KH*d.KW; cols.Rank() != 2 || cols.shape[0] != rows || cols.shape[1] != width {
		panic(fmt.Sprintf("tensor: Im2ColInto dst shape %v, want [%d %d]", cols.shape, rows, width))
	}
	chw := d.InC * d.InH * d.InW
	hw := d.InH * d.InW
	colW := d.InC * d.KH * d.KW
	for n := 0; n < d.Batch; n++ {
		img := x.Data[n*chw : (n+1)*chw]
		for oy := 0; oy < d.OutH; oy++ {
			for ox := 0; ox < d.OutW; ox++ {
				row := cols.Data[((n*d.OutH+oy)*d.OutW+ox)*colW:]
				ci := 0
				for c := 0; c < d.InC; c++ {
					ch := img[c*hw : (c+1)*hw]
					for ky := 0; ky < d.KH; ky++ {
						iy := oy*d.Stride + ky - d.Pad
						for kx := 0; kx < d.KW; kx++ {
							ix := ox*d.Stride + kx - d.Pad
							if iy >= 0 && iy < d.InH && ix >= 0 && ix < d.InW {
								row[ci] = ch[iy*d.InW+ix]
							} else {
								row[ci] = 0
							}
							ci++
						}
					}
				}
			}
		}
	}
	return cols
}

// Col2Im scatters the column matrix (shape [N*OutH*OutW, C*KH*KW]) back into
// an NCHW image tensor, accumulating overlapping contributions. It is the
// adjoint of Im2Col and is used for the convolution input gradient.
func Col2Im(cols *Tensor, d ConvDims) *Tensor {
	return Col2ImInto(New(d.Batch, d.InC, d.InH, d.InW), cols, d)
}

// Col2ImInto scatters cols into caller-owned x (NCHW), zeroing x first
// because overlapping kernel windows accumulate. Returns x.
func Col2ImInto(x, cols *Tensor, d ConvDims) *Tensor {
	if x.Rank() != 4 || x.shape[0] != d.Batch || x.shape[1] != d.InC || x.shape[2] != d.InH || x.shape[3] != d.InW {
		panic(fmt.Sprintf("tensor: Col2ImInto dst shape %v, want [%d %d %d %d]", x.shape, d.Batch, d.InC, d.InH, d.InW))
	}
	zeroFloats(x.Data)
	chw := d.InC * d.InH * d.InW
	hw := d.InH * d.InW
	colW := d.InC * d.KH * d.KW
	for n := 0; n < d.Batch; n++ {
		img := x.Data[n*chw : (n+1)*chw]
		for oy := 0; oy < d.OutH; oy++ {
			for ox := 0; ox < d.OutW; ox++ {
				row := cols.Data[((n*d.OutH+oy)*d.OutW+ox)*colW:]
				ci := 0
				for c := 0; c < d.InC; c++ {
					ch := img[c*hw : (c+1)*hw]
					for ky := 0; ky < d.KH; ky++ {
						iy := oy*d.Stride + ky - d.Pad
						for kx := 0; kx < d.KW; kx++ {
							ix := ox*d.Stride + kx - d.Pad
							if iy >= 0 && iy < d.InH && ix >= 0 && ix < d.InW {
								ch[iy*d.InW+ix] += row[ci]
							}
							ci++
						}
					}
				}
			}
		}
	}
	return x
}
