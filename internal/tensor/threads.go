package tensor

import (
	"runtime"
	"sync/atomic"
)

// Kernel fan-out control. Large kernels (MatMul) historically split work
// across runtime.GOMAXPROCS(0) goroutines unconditionally, which nests
// badly when the caller is itself a worker pool: an 8-worker compute
// pool on an 8-core host schedules ~64 kernel goroutines. Parallelism
// must live in exactly one place, so the pool reserves serial kernels
// for the whole process while it is alive and keeps the fan-out for
// single-threaded callers.

var (
	// maxThreads is the configured fan-out cap; 0 means "default",
	// i.e. runtime.GOMAXPROCS(0) sampled at call time.
	maxThreads atomic.Int32
	// serialHolds counts live ReserveSerial reservations. While any
	// are held, MaxThreads reports 1 regardless of the cap.
	serialHolds atomic.Int32
	// fanoutSpawns counts kernel invocations that actually spawned
	// goroutines. Test hook for the nested-parallelism regression.
	fanoutSpawns atomic.Uint64
)

// SetMaxThreads caps kernel fan-out at n goroutines (values < 1 clamp
// to 1) and returns the previous effective cap. The default, restored
// by no call at all, is runtime.GOMAXPROCS(0).
func SetMaxThreads(n int) int {
	if n < 1 {
		n = 1
	}
	old := maxThreads.Swap(int32(n))
	if old == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return int(old)
}

// MaxThreads reports the fan-out width kernels will use right now:
// 1 while any serial reservation is held, otherwise the SetMaxThreads
// cap (default runtime.GOMAXPROCS(0)).
func MaxThreads() int {
	if serialHolds.Load() > 0 {
		return 1
	}
	if n := maxThreads.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// ReserveSerial forces MaxThreads to 1 process-wide until the returned
// release func runs. Reservations are refcounted so concurrent pools
// compose; release is idempotent.
func ReserveSerial() (release func()) {
	serialHolds.Add(1)
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			serialHolds.Add(-1)
		}
	}
}

// KernelFanouts reports how many kernel calls have fanned out across
// goroutines since process start. Monotonic; used by tests to assert a
// region of code never triggered nested parallelism.
func KernelFanouts() uint64 { return fanoutSpawns.Load() }
