// Package tensor provides dense multi-dimensional arrays of float64 and the
// numeric kernels (matmul, convolution via im2col, reductions, elementwise
// arithmetic) used by the neural-network layers in internal/nn.
//
// The package is deliberately small and allocation-conscious: tensors are a
// shape plus a flat backing slice in row-major order, and the hot kernels
// (MatMul, im2col) are blocked and can fan out across goroutines.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major array. The zero value is an empty tensor.
type Tensor struct {
	shape  []int
	stride []int
	Data   []float64
}

// New creates a zero-filled tensor with the given shape. It panics if any
// dimension is negative.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	t := &Tensor{
		shape: append([]int(nil), shape...),
		Data:  make([]float64, n),
	}
	t.computeStrides()
	return t
}

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly (not copied). It panics if len(data) does not match the shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	t := &Tensor{shape: append([]int(nil), shape...), Data: data}
	t.computeStrides()
	return t
}

func (t *Tensor) computeStrides() {
	t.stride = make([]int, len(t.shape))
	s := 1
	for i := len(t.shape) - 1; i >= 0; i-- {
		t.stride[i] = s
		s *= t.shape[i]
	}
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float64 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given indices.
func (t *Tensor) Set(v float64, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: got %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", x, t.shape[i], i))
		}
		off += x * t.stride[i]
	}
	return off
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of the same data with a new shape. One dimension
// may be -1, in which case it is inferred. It panics if the element count
// does not match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	n := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: multiple -1 dimensions in Reshape")
			}
			infer = i
			continue
		}
		n *= d
	}
	if infer >= 0 {
		if n == 0 || len(t.Data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		shape[infer] = len(t.Data) / n
		n *= shape[infer]
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.Data), shape, n))
	}
	v := &Tensor{shape: shape, Data: t.Data}
	v.computeStrides()
	return v
}

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// String renders a compact description, useful in test failures.
func (t *Tensor) String() string {
	if t.Size() <= 8 {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.Data)
	}
	return fmt.Sprintf("Tensor%v[%d elems]", t.shape, t.Size())
}

// AllFinite reports whether every element is finite (no NaN or Inf).
func (t *Tensor) AllFinite() bool {
	for _, v := range t.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
