package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// Naive reference kernels: the untiled loops the tiled implementations
// must match bit-for-bit. They carry the exact zero-skip of the
// production kernels — skipping av == 0 is observable in floating point
// (0 × Inf = NaN, and −0.0 + 0.0 = +0.0 would flip a −0.0 partial sum)
// so the reference must skip identically.

func naiveMatMul(a, b *Tensor) *Tensor {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := a.Data[i*k+p]
			if av == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += av * b.Data[p*n+j]
			}
		}
	}
	return out
}

func naiveMatMulTransA(a, b *Tensor) *Tensor {
	k, m := a.shape[0], a.shape[1]
	n := b.shape[1]
	out := New(m, n)
	for p := 0; p < k; p++ {
		for i := 0; i < m; i++ {
			av := a.Data[p*m+i]
			if av == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += av * b.Data[p*n+j]
			}
		}
	}
	return out
}

func naiveMatMulTransB(a, b *Tensor) *Tensor {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.Data[i*k+p] * b.Data[j*k+p]
			}
			out.Data[i*n+j] = s
		}
	}
	return out
}

// propShapes exercises the tile boundaries: 1×1, prime dims, and the
// tile edges ±1 in both blocked dimensions (tileI=64, tileJ=256).
var propShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 1},
	{7, 13, 31},
	{3, 257, 5},
	{63, 17, 255},
	{64, 16, 256},
	{65, 19, 257},
	{129, 5, 511},
	{2, 3, 259},
	{97, 101, 103},
}

func randTensor(rng *rand.Rand, r, c int) *Tensor {
	t := New(r, c)
	for i := range t.Data {
		switch rng.Intn(8) {
		case 0:
			t.Data[i] = 0 // exercise the zero-skip path
		case 1:
			t.Data[i] = math.Copysign(0, -1) // −0.0 compares == 0, so both kernels skip it
		default:
			t.Data[i] = rng.NormFloat64()
		}
	}
	return t
}

func bitsEqual(t *testing.T, name string, got, want *Tensor) {
	t.Helper()
	if len(got.Data) != len(want.Data) {
		t.Fatalf("%s: length %d, want %d", name, len(got.Data), len(want.Data))
	}
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: element %d = %x (%g), want %x (%g)",
				name, i, math.Float64bits(got.Data[i]), got.Data[i],
				math.Float64bits(want.Data[i]), want.Data[i])
		}
	}
}

func TestMatMulBitIdenticalToNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, s := range propShapes {
		a := randTensor(rng, s.m, s.k)
		b := randTensor(rng, s.k, s.n)
		bitsEqual(t, "MatMul", MatMul(a, b), naiveMatMul(a, b))

		// Into variant through dirty scratch must match too.
		dst := New(s.m, s.n)
		for i := range dst.Data {
			dst.Data[i] = math.NaN()
		}
		bitsEqual(t, "MatMulInto", MatMulInto(dst, a, b), naiveMatMul(a, b))
	}
}

func TestMatMulTransABitIdenticalToNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, s := range propShapes {
		a := randTensor(rng, s.k, s.m)
		b := randTensor(rng, s.k, s.n)
		bitsEqual(t, "MatMulTransA", MatMulTransA(a, b), naiveMatMulTransA(a, b))

		dst := New(s.m, s.n)
		for i := range dst.Data {
			dst.Data[i] = math.Inf(1)
		}
		bitsEqual(t, "MatMulTransAInto", MatMulTransAInto(dst, a, b), naiveMatMulTransA(a, b))
	}
}

func TestMatMulTransBBitIdenticalToNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, s := range propShapes {
		a := randTensor(rng, s.m, s.k)
		b := randTensor(rng, s.n, s.k)
		bitsEqual(t, "MatMulTransB", MatMulTransB(a, b), naiveMatMulTransB(a, b))

		dst := New(s.m, s.n)
		for i := range dst.Data {
			dst.Data[i] = -1
		}
		bitsEqual(t, "MatMulTransBInto", MatMulTransBInto(dst, a, b), naiveMatMulTransB(a, b))
	}
}

// TestMatMulParallelBitIdentical pins that the goroutine fan-out path
// (which splits i, a tiled dimension) produces the same bits as the
// serial path for shapes above the parallel threshold.
func TestMatMulParallelBitIdentical(t *testing.T) {
	prev := SetMaxThreads(4)
	defer SetMaxThreads(prev)
	rng := rand.New(rand.NewSource(12))
	a := randTensor(rng, 129, 65)
	b := randTensor(rng, 65, 67)
	got := MatMul(a, b)

	release := ReserveSerial()
	want := MatMul(a, b)
	release()
	bitsEqual(t, "MatMul(parallel)", got, want)
	bitsEqual(t, "MatMul(naive)", got, naiveMatMul(a, b))
}

func naiveIm2Col(x *Tensor, d ConvDims) *Tensor {
	cols := New(d.Batch*d.OutH*d.OutW, d.InC*d.KH*d.KW)
	chw := d.InC * d.InH * d.InW
	hw := d.InH * d.InW
	colW := d.InC * d.KH * d.KW
	for n := 0; n < d.Batch; n++ {
		for oy := 0; oy < d.OutH; oy++ {
			for ox := 0; ox < d.OutW; ox++ {
				ci := 0
				for c := 0; c < d.InC; c++ {
					for ky := 0; ky < d.KH; ky++ {
						iy := oy*d.Stride + ky - d.Pad
						for kx := 0; kx < d.KW; kx++ {
							ix := ox*d.Stride + kx - d.Pad
							if iy >= 0 && iy < d.InH && ix >= 0 && ix < d.InW {
								cols.Data[((n*d.OutH+oy)*d.OutW+ox)*colW+ci] = x.Data[n*chw+c*hw+iy*d.InW+ix]
							}
							ci++
						}
					}
				}
			}
		}
	}
	return cols
}

func TestIm2ColIntoBitIdenticalToNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	geoms := []struct{ b, c, h, w, oc, kh, kw, stride, pad int }{
		{1, 1, 1, 1, 1, 1, 1, 1, 0},
		{2, 3, 7, 5, 4, 3, 3, 1, 1},
		{1, 2, 13, 11, 3, 5, 3, 2, 2},
		{3, 1, 9, 9, 2, 2, 2, 3, 0},
	}
	for _, g := range geoms {
		d, err := NewConvDims(g.b, g.c, g.h, g.w, g.oc, g.kh, g.kw, g.stride, g.pad)
		if err != nil {
			t.Fatalf("NewConvDims: %v", err)
		}
		x := randTensor(rng, 1, g.b*g.c*g.h*g.w)
		x = x.Reshape(g.b, g.c, g.h, g.w)
		want := naiveIm2Col(x, d)
		bitsEqual(t, "Im2Col", Im2Col(x, d), want)

		// Reused dirty scratch: every element must be overwritten,
		// including padding zeros.
		dst := New(d.Batch*d.OutH*d.OutW, d.InC*d.KH*d.KW)
		for i := range dst.Data {
			dst.Data[i] = math.NaN()
		}
		bitsEqual(t, "Im2ColInto", Im2ColInto(dst, x, d), want)

		// Col2ImInto through dirty scratch matches Col2Im.
		cols := want
		img := New(d.Batch, d.InC, d.InH, d.InW)
		for i := range img.Data {
			img.Data[i] = math.NaN()
		}
		bitsEqual(t, "Col2ImInto", Col2ImInto(img, cols, d), Col2Im(cols, d))
	}
}

// TestReserveSerialSuppressesFanout is the nested-parallelism
// regression test: while a serial reservation is held (as pool workers
// hold one), a kernel large enough to fan out must not spawn goroutines.
func TestReserveSerialSuppressesFanout(t *testing.T) {
	prev := SetMaxThreads(4) // the host may be single-core; force a cap that would fan out
	defer SetMaxThreads(prev)

	a := New(128, 64)
	b := New(64, 128)
	for i := range a.Data {
		a.Data[i] = 1
	}
	for i := range b.Data {
		b.Data[i] = 1
	}

	MatMul(a, b) // warm: fan-out expected here
	if MaxThreads() != 4 {
		t.Fatalf("MaxThreads = %d, want 4", MaxThreads())
	}

	release := ReserveSerial()
	if MaxThreads() != 1 {
		t.Fatalf("MaxThreads under reservation = %d, want 1", MaxThreads())
	}
	before := KernelFanouts()
	MatMul(a, b)
	if got := KernelFanouts(); got != before {
		t.Fatalf("kernel fanned out %d times under serial reservation", got-before)
	}
	release()
	release() // idempotent

	if MaxThreads() != 4 {
		t.Fatalf("MaxThreads after release = %d, want 4", MaxThreads())
	}
	before = KernelFanouts()
	MatMul(a, b)
	if KernelFanouts() == before {
		t.Fatalf("kernel did not fan out after reservation released")
	}
}
