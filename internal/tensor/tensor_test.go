package tensor

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("Size = %d, want 24", x.Size())
	}
	if x.Rank() != 3 {
		t.Fatalf("Rank = %d, want 3", x.Rank())
	}
	for i, v := range x.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 1)
	if got := x.At(2, 1); got != 7.5 {
		t.Fatalf("At(2,1) = %v, want 7.5", got)
	}
	if got := x.Data[2*4+1]; got != 7.5 {
		t.Fatalf("flat layout wrong: Data[9] = %v", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At(2,0) did not panic")
		}
	}()
	x.At(2, 0)
}

func TestFromSliceSharesData(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	x.Set(9, 0, 0)
	if d[0] != 9 {
		t.Fatal("FromSlice should alias the provided slice")
	}
}

func TestFromSliceWrongLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Set(99, 0, 0)
	if x.At(0, 0) != 1 {
		t.Fatal("Clone must not alias the original")
	}
}

func TestReshapeInference(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, -1)
	if y.Dim(0) != 3 || y.Dim(1) != 4 {
		t.Fatalf("Reshape(3,-1) shape = %v, want [3 4]", y.Shape())
	}
	y.Set(5, 0, 0)
	if x.At(0, 0) != 5 {
		t.Fatal("Reshape must be a view over the same data")
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	x := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape to incompatible size did not panic")
		}
	}()
	x.Reshape(4, 2)
}

func TestAddSubMul(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{10, 20, 30}, 3)
	if got := Add(a, b).Data; got[0] != 11 || got[2] != 33 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a).Data; got[0] != 9 || got[2] != 27 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b).Data; got[1] != 40 {
		t.Fatalf("Mul = %v", got)
	}
}

func TestLerpMatchesEquationOne(t *testing.T) {
	// Ws ← αWs + (1−α)Wc with α = 0.75.
	ws := FromSlice([]float64{4, 8}, 2)
	wc := FromSlice([]float64{0, 4}, 2)
	ws.Lerp(0.75, wc)
	if ws.Data[0] != 3 || ws.Data[1] != 7 {
		t.Fatalf("Lerp = %v, want [3 7]", ws.Data)
	}
}

func TestAxpy(t *testing.T) {
	x := FromSlice([]float64{1, 1}, 2)
	y := FromSlice([]float64{2, 3}, 2)
	x.Axpy(0.5, y)
	if x.Data[0] != 2 || x.Data[1] != 2.5 {
		t.Fatalf("Axpy = %v", x.Data)
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{3, -1, 4, 1}, 4)
	if x.Sum() != 7 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != 1.75 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if x.Max() != 4 || x.Min() != -1 {
		t.Fatalf("Max/Min = %v/%v", x.Max(), x.Min())
	}
	if x.ArgMax() != 2 {
		t.Fatalf("ArgMax = %d", x.ArgMax())
	}
}

func TestSumRowsAndAddRowVector(t *testing.T) {
	m := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	s := SumRows(m)
	want := []float64{5, 7, 9}
	for i := range want {
		if s.Data[i] != want[i] {
			t.Fatalf("SumRows = %v, want %v", s.Data, want)
		}
	}
	v := FromSlice([]float64{10, 20, 30}, 3)
	m.AddRowVector(v)
	if m.At(0, 0) != 11 || m.At(1, 2) != 36 {
		t.Fatalf("AddRowVector result = %v", m.Data)
	}
}

func TestTranspose(t *testing.T) {
	m := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	mt := Transpose(m)
	if mt.Dim(0) != 3 || mt.Dim(1) != 2 {
		t.Fatalf("Transpose shape = %v", mt.Shape())
	}
	if mt.At(2, 1) != 6 || mt.At(0, 1) != 4 {
		t.Fatal("Transpose values wrong")
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	c := MatMul(a, b)
	want := []float64{19, 22, 43, 50}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with mismatched shapes did not panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

// TestMatMulParallelMatchesSerial checks the goroutine fan-out path against
// the single-threaded kernel on a product large enough to trigger it.
func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(130, 70)
	b := New(70, 90)
	a.RandNormal(0, 1, rng)
	b.RandNormal(0, 1, rng)
	got := MatMul(a, b)
	want := New(130, 90)
	matMulRange(want.Data, a.Data, b.Data, 0, 130, 70, 90)
	for i := range want.Data {
		if !almostEqual(got.Data[i], want.Data[i], 1e-9) {
			t.Fatalf("parallel MatMul differs at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulTransAMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(7, 5)
	b := New(7, 6)
	a.RandNormal(0, 1, rng)
	b.RandNormal(0, 1, rng)
	got := MatMulTransA(a, b)
	want := MatMul(Transpose(a), b)
	for i := range want.Data {
		if !almostEqual(got.Data[i], want.Data[i], 1e-9) {
			t.Fatalf("MatMulTransA differs at %d", i)
		}
	}
}

func TestMatMulTransBMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := New(4, 5)
	b := New(6, 5)
	a.RandNormal(0, 1, rng)
	b.RandNormal(0, 1, rng)
	got := MatMulTransB(a, b)
	want := MatMul(a, Transpose(b))
	for i := range want.Data {
		if !almostEqual(got.Data[i], want.Data[i], 1e-9) {
			t.Fatalf("MatMulTransB differs at %d", i)
		}
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no pad: im2col is just a reshape.
	d, err := NewConvDims(1, 2, 3, 3, 4, 1, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := New(1, 2, 3, 3)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	cols := Im2Col(x, d)
	if cols.Dim(0) != 9 || cols.Dim(1) != 2 {
		t.Fatalf("cols shape = %v", cols.Shape())
	}
	// Row (y,x) should contain pixel (y,x) of each channel.
	if cols.At(0, 0) != 0 || cols.At(0, 1) != 9 {
		t.Fatalf("cols row 0 = %v %v", cols.At(0, 0), cols.At(0, 1))
	}
}

func TestIm2ColPadding(t *testing.T) {
	d, err := NewConvDims(1, 1, 2, 2, 1, 3, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	cols := Im2Col(x, d)
	if cols.Dim(0) != 4 || cols.Dim(1) != 9 {
		t.Fatalf("cols shape = %v", cols.Shape())
	}
	// Output position (0,0): 3x3 window centered at (0,0), so the corners
	// touching the image are (0,0)=1,(0,1)=2,(1,0)=3,(1,1)=4 at kernel
	// offsets (1,1),(1,2),(2,1),(2,2).
	row := cols.Data[:9]
	want := []float64{0, 0, 0, 0, 1, 2, 0, 3, 4}
	for i := range want {
		if row[i] != want[i] {
			t.Fatalf("padded row = %v, want %v", row, want)
		}
	}
}

func TestNewConvDimsErrors(t *testing.T) {
	if _, err := NewConvDims(1, 1, 2, 2, 1, 5, 5, 1, 0); err == nil {
		t.Fatal("kernel larger than input without pad should error")
	}
	if _, err := NewConvDims(1, 1, 4, 4, 1, 3, 3, 0, 0); err == nil {
		t.Fatal("stride 0 should error")
	}
	if _, err := NewConvDims(1, 1, 4, 4, 1, 3, 3, 1, -1); err == nil {
		t.Fatal("negative pad should error")
	}
}

// TestCol2ImAdjoint verifies <Im2Col(x), y> == <x, Col2Im(y)>, the defining
// property of an adjoint pair, on random data.
func TestCol2ImAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d, err := NewConvDims(2, 3, 5, 5, 4, 3, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := New(2, 3, 5, 5)
	x.RandNormal(0, 1, rng)
	cols := Im2Col(x, d)
	y := New(cols.Shape()...)
	y.RandNormal(0, 1, rng)
	lhs := Dot(cols, y)
	rhs := Dot(x, Col2Im(y, d))
	if !almostEqual(lhs, rhs, 1e-9*math.Max(1, math.Abs(lhs))) {
		t.Fatalf("adjoint property violated: %v vs %v", lhs, rhs)
	}
}

func TestHeNormalStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := New(20000)
	x.HeNormal(50, rng)
	mean := x.Mean()
	if math.Abs(mean) > 0.01 {
		t.Fatalf("He-normal mean = %v, want ~0", mean)
	}
	variance := 0.0
	for _, v := range x.Data {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(x.Size())
	if math.Abs(variance-2.0/50) > 0.005 {
		t.Fatalf("He-normal variance = %v, want ~%v", variance, 2.0/50)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := New(3, 4, 5)
	x.RandNormal(0, 3, rng)
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var y Tensor
	if _, err := y.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if !x.SameShape(&y) {
		t.Fatalf("shape mismatch after round trip: %v vs %v", x.Shape(), y.Shape())
	}
	for i := range x.Data {
		if x.Data[i] != y.Data[i] {
			t.Fatalf("data mismatch at %d", i)
		}
	}
}

func TestReadFromBadMagic(t *testing.T) {
	var y Tensor
	if _, err := y.ReadFrom(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestReadFromTruncated(t *testing.T) {
	x := New(10, 10)
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	var y Tensor
	if _, err := y.ReadFrom(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestAllFinite(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3}, 3)
	if !x.AllFinite() {
		t.Fatal("finite tensor reported non-finite")
	}
	x.Data[1] = math.NaN()
	if x.AllFinite() {
		t.Fatal("NaN not detected")
	}
	x.Data[1] = math.Inf(1)
	if x.AllFinite() {
		t.Fatal("Inf not detected")
	}
}

// Property: Lerp with alpha=1 leaves the server copy unchanged, alpha=0
// replaces it entirely — the two endpoints of VC-ASGD behaviour.
func TestLerpEndpointsProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		s1 := FromSlice([]float64{a}, 1)
		s1.Lerp(1, FromSlice([]float64{b}, 1))
		s0 := FromSlice([]float64{a}, 1)
		s0.Lerp(0, FromSlice([]float64{b}, 1))
		return s1.Data[0] == a && s0.Data[0] == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over addition, (A)(B+C) == AB + AC.
func TestMatMulDistributiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a, b, c := New(m, k), New(k, n), New(k, n)
		a.RandNormal(0, 1, rng)
		b.RandNormal(0, 1, rng)
		c.RandNormal(0, 1, rng)
		lhs := MatMul(a, Add(b, c))
		rhs := Add(MatMul(a, b), MatMul(a, c))
		for i := range lhs.Data {
			if !almostEqual(lhs.Data[i], rhs.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: serialization round-trips arbitrary shapes.
func TestSerializationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shape := make([]int, 1+rng.Intn(3))
		for i := range shape {
			shape[i] = 1 + rng.Intn(5)
		}
		x := New(shape...)
		x.RandNormal(0, 10, rng)
		var buf bytes.Buffer
		if _, err := x.WriteTo(&buf); err != nil {
			return false
		}
		var y Tensor
		if _, err := y.ReadFrom(&buf); err != nil {
			return false
		}
		if !x.SameShape(&y) {
			return false
		}
		for i := range x.Data {
			if x.Data[i] != y.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDotAndNorm(t *testing.T) {
	x := FromSlice([]float64{3, 4}, 2)
	if Dot(x, x) != 25 {
		t.Fatalf("Dot = %v", Dot(x, x))
	}
	if x.Norm2() != 5 {
		t.Fatalf("Norm2 = %v", x.Norm2())
	}
}

func TestApplyAndMap(t *testing.T) {
	x := FromSlice([]float64{-1, 2}, 2)
	y := Map(x, math.Abs)
	if y.Data[0] != 1 || x.Data[0] != -1 {
		t.Fatal("Map should not mutate input")
	}
	x.Apply(func(v float64) float64 { return v * 2 })
	if x.Data[0] != -2 || x.Data[1] != 4 {
		t.Fatalf("Apply = %v", x.Data)
	}
}
