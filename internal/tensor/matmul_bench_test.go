package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchPair(rng *rand.Rand, m, k, n int) (*Tensor, *Tensor) {
	a := New(m, k)
	b := New(k, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	return a, b
}

// BenchmarkMatMulInto measures the tiled serial kernel through
// caller-owned scratch: the shape the executor hot path uses. The
// pinned-zero alloc guard in CI watches this benchmark.
func BenchmarkMatMulInto(bm *testing.B) {
	for _, size := range []int{64, 128, 256} {
		bm.Run(fmt.Sprintf("%dx%dx%d", size, size, size), func(bm *testing.B) {
			release := ReserveSerial()
			defer release()
			rng := rand.New(rand.NewSource(1))
			a, b := benchPair(rng, size, size, size)
			dst := New(size, size)
			bm.ReportAllocs()
			bm.ResetTimer()
			for i := 0; i < bm.N; i++ {
				MatMulInto(dst, a, b)
			}
			flops := 2 * float64(size) * float64(size) * float64(size)
			bm.ReportMetric(flops*float64(bm.N)/bm.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}

func BenchmarkMatMulTransAInto(bm *testing.B) {
	const size = 128
	release := ReserveSerial()
	defer release()
	rng := rand.New(rand.NewSource(2))
	a, b := benchPair(rng, size, size, size)
	dst := New(size, size)
	bm.ReportAllocs()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		MatMulTransAInto(dst, a, b)
	}
	flops := 2 * float64(size) * float64(size) * float64(size)
	bm.ReportMetric(flops*float64(bm.N)/bm.Elapsed().Seconds()/1e9, "GFLOPS")
}

func BenchmarkMatMulTransBInto(bm *testing.B) {
	const size = 128
	release := ReserveSerial()
	defer release()
	rng := rand.New(rand.NewSource(3))
	a, b := benchPair(rng, size, size, size)
	dst := New(size, size)
	bm.ReportAllocs()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		MatMulTransBInto(dst, a, b)
	}
	flops := 2 * float64(size) * float64(size) * float64(size)
	bm.ReportMetric(flops*float64(bm.N)/bm.Elapsed().Seconds()/1e9, "GFLOPS")
}

// BenchmarkIm2ColInto measures the unroll step of the convolution
// lowering on the paper CNN's first-layer geometry. Alloc-pinned to 0.
func BenchmarkIm2ColInto(bm *testing.B) {
	d, err := NewConvDims(8, 1, 14, 14, 8, 3, 3, 1, 1)
	if err != nil {
		bm.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	x := New(d.Batch, d.InC, d.InH, d.InW)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	cols := New(d.Batch*d.OutH*d.OutW, d.InC*d.KH*d.KW)
	bm.ReportAllocs()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		Im2ColInto(cols, x, d)
	}
}
