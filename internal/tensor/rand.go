package tensor

import (
	"math"
	"math/rand"
)

// HeNormal fills t with draws from N(0, sqrt(2/fanIn)), the initializer the
// paper uses for its ResNetV2 parameters ("He-normal initializer").
func (t *Tensor) HeNormal(fanIn int, rng *rand.Rand) {
	if fanIn < 1 {
		fanIn = 1
	}
	std := math.Sqrt(2.0 / float64(fanIn))
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
}

// XavierUniform fills t with draws from U(-a, a) where
// a = sqrt(6/(fanIn+fanOut)).
func (t *Tensor) XavierUniform(fanIn, fanOut int, rng *rand.Rand) {
	if fanIn < 1 {
		fanIn = 1
	}
	if fanOut < 1 {
		fanOut = 1
	}
	a := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * a
	}
}

// RandNormal fills t with draws from N(mean, std).
func (t *Tensor) RandNormal(mean, std float64, rng *rand.Rand) {
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()*std + mean
	}
}

// RandUniform fills t with draws from U(lo, hi).
func (t *Tensor) RandUniform(lo, hi float64, rng *rand.Rand) {
	for i := range t.Data {
		t.Data[i] = lo + rng.Float64()*(hi-lo)
	}
}
