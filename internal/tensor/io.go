package tensor

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary layout of a serialized tensor:
//
//	magic   uint32  0x54454e53 ("TENS")
//	rank    uint32
//	shape   rank × uint32
//	data    size × float64 (little endian IEEE-754)
const tensorMagic = 0x54454e53

// WriteTo serializes t to w in the package's binary format.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	var n int64
	hdr := make([]byte, 8+4*len(t.shape))
	binary.LittleEndian.PutUint32(hdr[0:], tensorMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(t.shape)))
	for i, d := range t.shape {
		binary.LittleEndian.PutUint32(hdr[8+4*i:], uint32(d))
	}
	k, err := w.Write(hdr)
	n += int64(k)
	if err != nil {
		return n, err
	}
	buf := make([]byte, 8*4096)
	for off := 0; off < len(t.Data); {
		m := len(t.Data) - off
		if m > 4096 {
			m = 4096
		}
		for i := 0; i < m; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(t.Data[off+i]))
		}
		k, err = w.Write(buf[:8*m])
		n += int64(k)
		if err != nil {
			return n, err
		}
		off += m
	}
	return n, nil
}

// ReadFrom deserializes a tensor written by WriteTo, replacing t's shape and
// data.
func (t *Tensor) ReadFrom(r io.Reader) (int64, error) {
	var n int64
	var fixed [8]byte
	k, err := io.ReadFull(r, fixed[:])
	n += int64(k)
	if err != nil {
		return n, fmt.Errorf("tensor: reading header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(fixed[0:]); m != tensorMagic {
		return n, fmt.Errorf("tensor: bad magic %#x", m)
	}
	rank := int(binary.LittleEndian.Uint32(fixed[4:]))
	if rank < 0 || rank > 32 {
		return n, fmt.Errorf("tensor: unreasonable rank %d", rank)
	}
	shapeBuf := make([]byte, 4*rank)
	k, err = io.ReadFull(r, shapeBuf)
	n += int64(k)
	if err != nil {
		return n, fmt.Errorf("tensor: reading shape: %w", err)
	}
	shape := make([]int, rank)
	size := 1
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(shapeBuf[4*i:]))
		size *= shape[i]
	}
	data := make([]float64, size)
	buf := make([]byte, 8*4096)
	for off := 0; off < size; {
		m := size - off
		if m > 4096 {
			m = 4096
		}
		k, err = io.ReadFull(r, buf[:8*m])
		n += int64(k)
		if err != nil {
			return n, fmt.Errorf("tensor: reading data: %w", err)
		}
		for i := 0; i < m; i++ {
			data[off+i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		off += m
	}
	t.shape = shape
	t.Data = data
	t.computeStrides()
	return n, nil
}
