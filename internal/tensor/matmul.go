package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// matmulParallelThreshold is the minimum number of result elements before
// MatMul fans out across goroutines. Below this, goroutine overhead
// dominates.
const matmulParallelThreshold = 64 * 64

// MatMul returns a @ b for rank-2 tensors a [m,k] and b [k,n].
// The kernel is an ikj loop (streaming through b rows) which is cache
// friendly for row-major data, and splits rows of a across goroutines for
// large products.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul wants rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	matMulInto(out.Data, a.Data, b.Data, m, k, n)
	return out
}

func matMulInto(dst, a, b []float64, m, k, n int) {
	workers := runtime.GOMAXPROCS(0)
	if m*n < matmulParallelThreshold || workers <= 1 || m < 2 {
		matMulRange(dst, a, b, 0, m, k, n)
		return
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRange(dst, a, b, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulRange computes rows [lo,hi) of dst = a @ b.
func matMulRange(dst, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		di := dst[i*n : (i+1)*n]
		ai := a[i*k : (i+1)*k]
		for p, av := range ai {
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
}

// MatMulTransA returns aᵀ @ b for a [k,m] and b [k,n], without materialising
// the transpose. Used by Dense backward for the weight gradient.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA wants rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA outer dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	// outᵀ[m,n] = sum_p a[p,m] * b[p,n]
	for p := 0; p < k; p++ {
		ap := a.Data[p*m : (p+1)*m]
		bp := b.Data[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			di := out.Data[i*n : (i+1)*n]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTransB returns a @ bᵀ for a [m,k] and b [n,k], without materialising
// the transpose. Used by Dense backward for the input gradient.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB wants rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		ai := a.Data[i*k : (i+1)*k]
		di := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.Data[j*k : (j+1)*k]
			s := 0.0
			for p := range ai {
				s += ai[p] * bj[p]
			}
			di[j] = s
		}
	}
	return out
}
