package tensor

import (
	"fmt"
	"sync"
)

// matmulParallelThreshold is the minimum number of result elements before
// MatMul fans out across goroutines. Below this, goroutine overhead
// dominates.
const matmulParallelThreshold = 64 * 64

// Cache tile sizes. Tiling covers the i (output row) and j (output
// column) dimensions ONLY — never k. Every output element accumulates
// its k products in strictly ascending-p order, exactly like the naive
// triple loop, so tiled results are bit-identical to the reference
// kernel (float addition is not associative; reordering k would change
// low-order bits). A tileI×tileJ destination block plus the matching
// b-panel stripe stays resident while k streams through it.
const (
	matmulTileI = 64
	matmulTileJ = 256
)

// MatMul returns a @ b for rank-2 tensors a [m,k] and b [k,n].
// The kernel is a cache-tiled ikj loop (streaming through b rows),
// and splits row blocks of a across goroutines for large products.
func MatMul(a, b *Tensor) *Tensor {
	m, n := matmulShape(a, b)
	out := New(m, n)
	matMulInto(out.Data, a.Data, b.Data, m, a.shape[1], n)
	return out
}

// MatMulInto computes dst = a @ b using caller-owned storage. dst must
// be rank-2 with shape [m,n]; its prior contents are discarded. Results
// are bit-identical to MatMul. Returns dst.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	m, n := matmulShape(a, b)
	checkDstShape("MatMulInto", dst, m, n)
	zeroFloats(dst.Data)
	matMulInto(dst.Data, a.Data, b.Data, m, a.shape[1], n)
	return dst
}

func matmulShape(a, b *Tensor) (m, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul wants rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	if a.shape[1] != b.shape[0] {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	return a.shape[0], b.shape[1]
}

func checkDstShape(op string, dst *Tensor, m, n int) {
	if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s dst shape %v, want [%d %d]", op, dst.shape, m, n))
	}
}

func zeroFloats(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

func matMulInto(dst, a, b []float64, m, k, n int) {
	workers := MaxThreads()
	if m*n < matmulParallelThreshold || workers <= 1 || m < 2 {
		matMulRange(dst, a, b, 0, m, k, n)
		return
	}
	if workers > m {
		workers = m
	}
	fanoutSpawns.Add(1)
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRange(dst, a, b, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulRange computes rows [lo,hi) of dst += a @ b, tiled over i and j.
// dst rows [lo,hi) must be zero (or hold a partial sum being extended).
// Accumulation into each dst element runs over p in ascending order with
// the same zero-skip as the naive kernel, so output bits match it.
func matMulRange(dst, a, b []float64, lo, hi, k, n int) {
	for ib := lo; ib < hi; ib += matmulTileI {
		ie := ib + matmulTileI
		if ie > hi {
			ie = hi
		}
		for jb := 0; jb < n; jb += matmulTileJ {
			je := jb + matmulTileJ
			if je > n {
				je = n
			}
			for i := ib; i < ie; i++ {
				di := dst[i*n+jb : i*n+je]
				ai := a[i*k : (i+1)*k]
				for p, av := range ai {
					if av == 0 {
						continue
					}
					bp := b[p*n+jb : p*n+je]
					for j, bv := range bp {
						di[j] += av * bv
					}
				}
			}
		}
	}
}

// MatMulTransA returns aᵀ @ b for a [k,m] and b [k,n], without materialising
// the transpose. Used by Dense backward for the weight gradient.
func MatMulTransA(a, b *Tensor) *Tensor {
	m, n := matmulTransAShape(a, b)
	out := New(m, n)
	matMulTransARange(out.Data, a.Data, b.Data, a.shape[0], m, n)
	return out
}

// MatMulTransAInto computes dst = aᵀ @ b into caller-owned storage,
// discarding dst's prior contents. Bit-identical to MatMulTransA.
func MatMulTransAInto(dst, a, b *Tensor) *Tensor {
	m, n := matmulTransAShape(a, b)
	checkDstShape("MatMulTransAInto", dst, m, n)
	zeroFloats(dst.Data)
	matMulTransARange(dst.Data, a.Data, b.Data, a.shape[0], m, n)
	return dst
}

func matmulTransAShape(a, b *Tensor) (m, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA wants rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	if a.shape[0] != b.shape[0] {
		panic(fmt.Sprintf("tensor: MatMulTransA outer dimension mismatch %v x %v", a.shape, b.shape))
	}
	return a.shape[1], b.shape[1]
}

// matMulTransARange computes dst += aᵀ @ b tiled over i and j, with p
// streaming in ascending order inside each tile: per-element
// accumulation order matches the naive p-outer kernel exactly.
func matMulTransARange(dst, a, b []float64, k, m, n int) {
	for ib := 0; ib < m; ib += matmulTileI {
		ie := ib + matmulTileI
		if ie > m {
			ie = m
		}
		for jb := 0; jb < n; jb += matmulTileJ {
			je := jb + matmulTileJ
			if je > n {
				je = n
			}
			for p := 0; p < k; p++ {
				ap := a[p*m+ib : p*m+ie]
				bp := b[p*n+jb : p*n+je]
				for ii, av := range ap {
					if av == 0 {
						continue
					}
					di := dst[(ib+ii)*n+jb : (ib+ii)*n+je]
					for j, bv := range bp {
						di[j] += av * bv
					}
				}
			}
		}
	}
}

// MatMulTransB returns a @ bᵀ for a [m,k] and b [n,k], without materialising
// the transpose. Used by Dense backward for the input gradient.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, n := matmulTransBShape(a, b)
	out := New(m, n)
	matMulTransBRange(out.Data, a.Data, b.Data, m, a.shape[1], n)
	return out
}

// MatMulTransBInto computes dst = a @ bᵀ into caller-owned storage,
// overwriting every element of dst. Bit-identical to MatMulTransB.
func MatMulTransBInto(dst, a, b *Tensor) *Tensor {
	m, n := matmulTransBShape(a, b)
	checkDstShape("MatMulTransBInto", dst, m, n)
	matMulTransBRange(dst.Data, a.Data, b.Data, m, a.shape[1], n)
	return dst
}

func matmulTransBShape(a, b *Tensor) (m, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB wants rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	if a.shape[1] != b.shape[1] {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	return a.shape[0], b.shape[0]
}

// matMulTransBRange assigns dst = a @ bᵀ tiled over i and j. Each
// element is an independent dot product accumulated in ascending-p
// order into a scalar, so tiling cannot change its bits.
func matMulTransBRange(dst, a, b []float64, m, k, n int) {
	for ib := 0; ib < m; ib += matmulTileI {
		ie := ib + matmulTileI
		if ie > m {
			ie = m
		}
		for jb := 0; jb < n; jb += matmulTileJ {
			je := jb + matmulTileJ
			if je > n {
				je = n
			}
			for i := ib; i < ie; i++ {
				ai := a[i*k : (i+1)*k]
				di := dst[i*n : (i+1)*n]
				for j := jb; j < je; j++ {
					bj := b[j*k : (j+1)*k]
					s := 0.0
					for p := range ai {
						s += ai[p] * bj[p]
					}
					di[j] = s
				}
			}
		}
	}
}
