package vcsim

import (
	"bytes"
	"strings"
	"testing"

	"vcdl/internal/boinc"
	"vcdl/internal/obs"
)

// TestSimTraceLifecycle runs a small simulation with a tracer attached
// and checks every workunit's span carries the full lifecycle in
// non-decreasing virtual time.
func TestSimTraceLifecycle(t *testing.T) {
	job, corpus := quickSetup(t)
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	reg := obs.NewRegistry()
	cfg := DefaultConfig(job, corpus, 1, 3, 2)
	cfg.Metrics = reg
	cfg.Trace = tr
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != res.Issued {
		t.Fatalf("traced %d workunits, result issued %d", tr.Len(), res.Issued)
	}
	want := []string{
		obs.KindCreated, obs.KindAssigned, obs.KindComputeStart,
		obs.KindComputeEnd, obs.KindUploaded, obs.KindValidated,
		obs.KindDone, obs.KindAssimilated,
	}
	for _, sp := range tr.Spans() {
		for _, kind := range want {
			if sp.Count(kind) == 0 {
				t.Fatalf("span %d (%s) missing %s: %+v", sp.WU, sp.Name, kind, sp.Events)
			}
		}
		prev := 0.0
		for _, ev := range sp.Events {
			if ev.T < prev {
				t.Fatalf("span %d time went backwards: %+v", sp.WU, sp.Events)
			}
			prev = ev.T
		}
	}
	// The JSONL stream carries one line per event.
	lines := strings.Count(buf.String(), "\n")
	total := 0
	for _, sp := range tr.Spans() {
		total += len(sp.Events)
	}
	if lines != total || tr.Err() != nil {
		t.Fatalf("JSONL lines = %d, events = %d, err = %v", lines, total, tr.Err())
	}

	// The registry bridge saw the run too: scheduler and simulator
	// families both populated, with consistent counts.
	if got := reg.CounterValue(boinc.MetricAssignments); got != int64(res.Issued) {
		t.Fatalf("assignments metric = %d, result issued %d", got, res.Issued)
	}
	if got := reg.CounterValue(MetricEpochs); got != int64(len(res.Curve.Points)) {
		t.Fatalf("epochs metric = %d, curve has %d", got, len(res.Curve.Points))
	}
	// Sim histograms are in virtual seconds: the top assignment wait
	// cannot exceed the whole run.
	if h := reg.FindHistogram(boinc.MetricAssignWait); h == nil || h.Count() == 0 {
		t.Fatal("assign wait histogram empty")
	} else if q := h.Quantile(0.99); q > res.Hours*3600 {
		t.Fatalf("p99 assign wait %gs exceeds the %gh run", q, res.Hours)
	}
}

// TestInstrumentationDeterminism pins the non-perturbation contract at
// the simulator level: a run with metrics+trace attached is
// byte-identical to a bare run.
func TestInstrumentationDeterminism(t *testing.T) {
	job, corpus := quickSetup(t)
	bare := DefaultConfig(job, corpus, 2, 3, 2)
	a, err := Run(bare)
	if err != nil {
		t.Fatal(err)
	}
	instr := DefaultConfig(job, corpus, 2, 3, 2)
	instr.Metrics = obs.NewRegistry()
	instr.Trace = obs.NewTracer(nil)
	b, err := Run(instr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hours != b.Hours || a.Issued != b.Issued || a.Reissued != b.Reissued {
		t.Fatalf("instrumentation perturbed the run: %+v vs %+v", a, b)
	}
	for i := range a.Curve.Points {
		if a.Curve.Points[i] != b.Curve.Points[i] {
			t.Fatalf("curve differs at %d", i)
		}
	}
}
