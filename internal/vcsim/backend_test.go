package vcsim

import (
	"fmt"
	"reflect"
	"testing"

	"vcdl/internal/boinc"
	"vcdl/internal/core"
	"vcdl/internal/data"
	"vcdl/internal/nn"
)

// backendQuickConfig builds the small fast workload (the scenario
// engine's "quick" fleet) for backend-equivalence runs.
func backendQuickConfig(t testing.TB, seed int64, epochs int) Config {
	t.Helper()
	dc := data.DefaultSynthConfig()
	dc.NTrain, dc.NVal, dc.NTest = 500, 200, 200
	dc.NoiseStd = 0.4
	dc.Seed = seed
	corpus, err := data.GenerateSynth(dc)
	if err != nil {
		t.Fatal(err)
	}
	job := core.DefaultJobConfig(nn.SmallCNNBuilder(dc.C, dc.H, dc.W, dc.Classes))
	job.Subtasks = 10
	job.MaxEpochs = epochs
	job.BatchSize = 25
	job.LocalPasses = 2
	job.LearningRate = 0.01
	job.ValSubset = 100
	job.Seed = seed
	return DefaultConfig(job, corpus, 2, 4, 2)
}

// stripCompute zeroes the one Result field that legitimately differs
// between equivalent backends (DESIGN.md §8).
func stripCompute(r *Result) Result {
	c := *r
	c.Compute = core.BackendStats{}
	return c
}

// TestBackendEquivalence is the tentpole contract: the cached and
// parallel backends (the latter at 1, 2 and 8 workers, exercised under
// -race by CI) produce byte-identical Results to the real backend across
// seeds, scheduling policies, preemption, and replication.
func TestBackendEquivalence(t *testing.T) {
	cases := []struct {
		name        string
		seed        int64
		policy      string
		preempt     float64
		replication int
	}{
		{"seed1-paper-replicated", 1, "", 0, 2},
		{"seed5-random-preempt", 5, "random", 0.25, 1},
		{"seed9-fifo-preempt-replicated", 9, "fifo", 0.1, 3},
	}
	backends := []struct {
		spec    string
		workers int
	}{
		{"cached", 0},
		{"parallel", 1},
		{"parallel", 2},
		{"parallel", 8},
		{"parallel+cached", 8},
	}
	if testing.Short() {
		cases = cases[:1]
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			build := func(backend string, workers int) Config {
				cfg := backendQuickConfig(t, tc.seed, 3)
				cfg.PreemptProb = tc.preempt
				cfg.Replication = tc.replication
				cfg.TimeoutSeconds = 600
				cfg.Backend = backend
				cfg.ComputeWorkers = workers
				if tc.policy != "" {
					p, err := boinc.NewPolicy(tc.policy)
					if err != nil {
						t.Fatal(err)
					}
					cfg.Policy = p
				}
				return cfg
			}
			ref, err := Run(build("real", 0))
			if err != nil {
				t.Fatal(err)
			}
			want := stripCompute(ref)
			for _, b := range backends {
				label := fmt.Sprintf("%s/workers=%d", b.spec, b.workers)
				got, err := Run(build(b.spec, b.workers))
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if !reflect.DeepEqual(stripCompute(got), want) {
					t.Errorf("%s: Result diverged from the real backend", label)
				}
				if got.Compute.Backend != core.BackendSpecName(b.spec) {
					t.Errorf("%s: telemetry backend %q", label, got.Compute.Backend)
				}
				if got.Compute.Launched == 0 {
					t.Errorf("%s: no launches recorded", label)
				}
			}
		})
	}
}

// TestCachedBackendDeduplicatesReplicas checks the telemetry story: with
// replication on, the cached backend computes each (epoch, shard) once
// while the real backend recomputes every copy.
func TestCachedBackendDeduplicatesReplicas(t *testing.T) {
	cfg := backendQuickConfig(t, 2, 2)
	cfg.Replication = 2
	cfg.TasksPerClient = 4
	cfg.Backend = "cached"
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Compute
	if c.CacheHits == 0 {
		t.Fatalf("replicated run recorded no cache hits: %+v", c)
	}
	if c.Computed != c.CacheMisses {
		t.Errorf("computed %d != misses %d", c.Computed, c.CacheMisses)
	}
	if c.Computed >= c.Launched {
		t.Errorf("cache saved nothing: computed %d of %d launches", c.Computed, c.Launched)
	}
	wantDistinct := 2 * cfg.Job.Subtasks // epochs × shards
	if c.CacheMisses != wantDistinct {
		t.Errorf("distinct computations %d, want %d", c.CacheMisses, wantDistinct)
	}
}

// TestSurrogateBackendKeepsTiming checks the surrogate changes accuracy
// curves but not the simulation's timing, traffic or scheduling — the
// capacity-run contract.
func TestSurrogateBackendKeepsTiming(t *testing.T) {
	cfg := backendQuickConfig(t, 3, 2)
	cfg.Backend = "real"
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg = backendQuickConfig(t, 3, 2)
	cfg.Backend = "surrogate"
	sur, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sur.Hours != ref.Hours || sur.Issued != ref.Issued ||
		sur.BytesDownloaded != ref.BytesDownloaded || sur.BytesUploaded != ref.BytesUploaded {
		t.Errorf("surrogate perturbed timing/traffic: hours %v/%v issued %d/%d",
			sur.Hours, ref.Hours, sur.Issued, ref.Issued)
	}
	if reflect.DeepEqual(sur.Curve, ref.Curve) {
		t.Error("surrogate reproduced the real curve exactly — subsampling is not engaged")
	}
}

// TestBackendUnknownSpec checks bad specs fail at Start, not mid-run.
func TestBackendUnknownSpec(t *testing.T) {
	cfg := backendQuickConfig(t, 1, 2)
	cfg.Backend = "bogus"
	if _, err := Start(cfg); err == nil {
		t.Fatal("Start accepted an unknown compute backend")
	}
}
