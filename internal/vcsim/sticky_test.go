package vcsim

import "testing"

// TestDisableStickyIncreasesDownloads checks the A2 ablation mechanics:
// without sticky files, shards and the model are re-fetched every epoch,
// inflating downloaded bytes while leaving training results identical.
func TestDisableStickyIncreasesDownloads(t *testing.T) {
	job, corpus := quickSetup(t)
	job.MaxEpochs = 3
	on := DefaultConfig(job, corpus, 1, 3, 2)
	rOn, err := Run(on)
	if err != nil {
		t.Fatal(err)
	}
	off := on
	off.DisableSticky = true
	rOff, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	if rOff.BytesDownloaded <= rOn.BytesDownloaded {
		t.Fatalf("sticky-off downloads %d <= sticky-on %d", rOff.BytesDownloaded, rOn.BytesDownloaded)
	}
	// Caching is a transport optimization: the learning curves must match
	// epoch counts regardless (values can differ because assignment order
	// shifts with affinity).
	if len(rOff.Curve.Points) != len(rOn.Curve.Points) {
		t.Fatal("epoch counts differ across sticky setting")
	}
}
