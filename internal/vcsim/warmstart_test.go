package vcsim

import "testing"

// TestWarmstartBoostsEarlyAccuracy checks the §II-B technique end to end:
// two serial warmstart epochs must raise distributed epoch-1 accuracy and
// shift the virtual clock by the serial training time.
func TestWarmstartBoostsEarlyAccuracy(t *testing.T) {
	job, corpus := quickSetup(t)
	job.MaxEpochs = 2
	cold := DefaultConfig(job, corpus, 2, 3, 2)
	rCold, err := Run(cold)
	if err != nil {
		t.Fatal(err)
	}
	warmJob := job
	warmJob.WarmstartEpochs = 2
	warm := DefaultConfig(warmJob, corpus, 2, 3, 2)
	rWarm, err := Run(warm)
	if err != nil {
		t.Fatal(err)
	}
	if rWarm.Curve.Points[0].Value <= rCold.Curve.Points[0].Value {
		t.Fatalf("warmstart did not help epoch 1: %v vs %v",
			rWarm.Curve.Points[0].Value, rCold.Curve.Points[0].Value)
	}
	wantOffset := 2 * SerialSecondsPerEpoch(warm) / 3600
	gap := rWarm.Curve.Points[0].Hours - rCold.Curve.Points[0].Hours
	if gap < wantOffset*0.9 || gap > wantOffset*1.2 {
		t.Fatalf("warmstart clock offset %vh, want ≈%vh", gap, wantOffset)
	}
}

func TestWarmstartDeterministic(t *testing.T) {
	job, corpus := quickSetup(t)
	job.MaxEpochs = 1
	job.WarmstartEpochs = 1
	cfg := DefaultConfig(job, corpus, 1, 2, 2)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Curve.Points[0].Value != b.Curve.Points[0].Value {
		t.Fatal("warmstarted runs must be deterministic")
	}
}
