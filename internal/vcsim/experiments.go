package vcsim

import (
	"fmt"

	"vcdl/internal/baseline"
	"vcdl/internal/core"
	"vcdl/internal/data"
	"vcdl/internal/metrics"
	"vcdl/internal/nn"
	"vcdl/internal/opt"
	"vcdl/internal/store"
)

// PaperSetup bundles the corpus and job configuration shared by all of the
// paper's experiments (§IV-A): a 10-class image problem whose training set
// splits into 50 subtasks, a ResNetV2-family model, Adam with lr=0.001 on
// clients, and He-normal initialization.
type PaperSetup struct {
	Corpus *data.Corpus
	Job    core.JobConfig
}

// NewPaperSetup generates the experiment workload. epochs scales run
// length (the paper trains 40 epochs; benchmarks may use fewer).
func NewPaperSetup(seed int64, epochs int) (*PaperSetup, error) {
	dc := data.DefaultSynthConfig()
	dc.Seed = seed
	// Difficulty calibrated so the serial baseline plateaus near the
	// paper's 0.82–0.85 band and 40 distributed epochs land around 0.73
	// (see EXPERIMENTS.md, calibration).
	dc.NoiseStd = 2.0
	dc.LabelNoise = 0.12
	corpus, err := data.GenerateSynth(dc)
	if err != nil {
		return nil, err
	}
	job := core.DefaultJobConfig(nn.MiniResNetV2Builder(dc.C, dc.H, dc.W, 8, 1, dc.Classes))
	job.Subtasks = 50
	job.MaxEpochs = epochs
	job.BatchSize = 25
	job.LocalPasses = 1
	job.LearningRate = 0.01
	job.ValSubset = 120
	job.Seed = seed
	return &PaperSetup{Corpus: corpus, Job: job}, nil
}

// Config builds the simulation config for a PnCnTn experiment with the
// given α schedule.
func (s *PaperSetup) Config(pn, cn, tn int, alpha opt.Schedule) Config {
	job := s.Job
	job.Alpha = alpha
	cfg := DefaultConfig(job, s.Corpus, pn, cn, tn)
	return cfg
}

// Fig2 reproduces Figure 2: validation accuracy vs training time for
// P1C3T2, P1C3T8, P3C3T8 and P5C5T2 with α = 0.95.
func Fig2(s *PaperSetup) ([]*Result, error) {
	alpha := opt.Constant{V: 0.95}
	configs := []struct{ pn, cn, tn int }{
		{1, 3, 2}, {1, 3, 8}, {3, 3, 8}, {5, 5, 2},
	}
	var out []*Result
	for _, c := range configs {
		res, err := Run(s.Config(c.pn, c.cn, c.tn, alpha))
		if err != nil {
			return nil, fmt.Errorf("vcsim: fig2 P%dC%dT%d: %w", c.pn, c.cn, c.tn, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// Fig3Row is one curve of Figure 3: training time (hours) for a PnCn pair
// across simultaneous-subtask counts.
type Fig3Row struct {
	Label string
	Tn    []int
	Hours []float64
}

// Fig3 reproduces Figure 3: total training time for P1C3, P3C3 and P5C5 at
// T ∈ {2, 4, 8}, α = 0.95.
func Fig3(s *PaperSetup) ([]Fig3Row, error) {
	alpha := opt.Constant{V: 0.95}
	groups := []struct {
		label  string
		pn, cn int
	}{
		{"P1C3", 1, 3}, {"P3C3", 3, 3}, {"P5C5", 5, 5},
	}
	tns := []int{2, 4, 8}
	var rows []Fig3Row
	for _, g := range groups {
		row := Fig3Row{Label: g.label, Tn: tns}
		for _, tn := range tns {
			res, err := Run(s.Config(g.pn, g.cn, tn, alpha))
			if err != nil {
				return nil, fmt.Errorf("vcsim: fig3 %sT%d: %w", g.label, tn, err)
			}
			row.Hours = append(row.Hours, res.Hours)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AlphaVariant names one Figure 4 curve.
type AlphaVariant struct {
	Label    string
	Schedule opt.Schedule
}

// Fig4Variants returns the paper's four α settings: 0.7, 0.95, 0.999 and
// the Var schedule αe = e/(e+1).
func Fig4Variants() []AlphaVariant {
	return []AlphaVariant{
		{"0.70", opt.Constant{V: 0.70}},
		{"0.95", opt.Constant{V: 0.95}},
		{"0.999", opt.Constant{V: 0.999}},
		{"Var", opt.EpochFraction{}},
	}
}

// Fig4 reproduces Figure 4: the effect of the VC-ASGD hyperparameter on
// P3C3T4, including the per-epoch accuracy range (error bars). Figure 5 is
// a zoom of the same data (see ZoomWindow).
func Fig4(s *PaperSetup) ([]*Result, error) {
	var out []*Result
	for _, v := range Fig4Variants() {
		res, err := Run(s.Config(3, 3, 4, v.Schedule))
		if err != nil {
			return nil, fmt.Errorf("vcsim: fig4 alpha=%s: %w", v.Label, err)
		}
		res.Name = "alpha=" + v.Label
		res.Curve.Name = res.Name
		out = append(out, res)
	}
	return out, nil
}

// ZoomWindow slices a curve to the [loH, hiH] hour window — Figure 5's
// zoomed views of Figure 4.
func ZoomWindow(series metrics.Series, loH, hiH float64) metrics.Series {
	out := metrics.Series{Name: fmt.Sprintf("%s[%g-%gh]", series.Name, loH, hiH)}
	for _, p := range series.Points {
		if p.Hours >= loH && p.Hours <= hiH {
			out.Add(p)
		}
	}
	return out
}

// Fig6Result pairs the distributed run with the single-instance baseline.
type Fig6Result struct {
	DistVal, DistTest     metrics.Series
	SerialVal, SerialTest metrics.Series
}

// Fig6 reproduces Figure 6: distributed P5C5T2 with the Var α schedule
// (validation and test accuracy) against serial single-instance training
// on the server configuration. Serial epochs are mapped to virtual time via
// SerialSecondsPerEpoch.
func Fig6(s *PaperSetup, serialEpochs int) (*Fig6Result, error) {
	cfg := s.Config(5, 5, 2, opt.EpochFraction{})
	cfg.RecordTest = true
	dist, err := Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("vcsim: fig6 distributed: %w", err)
	}
	serial, err := baseline.TrainSerial(s.Job, s.Corpus, serialEpochs)
	if err != nil {
		return nil, fmt.Errorf("vcsim: fig6 serial: %w", err)
	}
	secPerEpoch := SerialSecondsPerEpoch(cfg)
	out := &Fig6Result{
		DistVal:    dist.Curve,
		DistTest:   dist.TestCurve,
		SerialVal:  metrics.Series{Name: "single-instance-val"},
		SerialTest: metrics.Series{Name: "single-instance-test"},
	}
	for i := range serial.ValAcc {
		h := float64(i+1) * secPerEpoch / 3600
		out.SerialVal.Add(metrics.Point{Epoch: i + 1, Hours: h, Value: serial.ValAcc[i]})
		out.SerialTest.Add(metrics.Point{Epoch: i + 1, Hours: h, Value: serial.TestAcc[i]})
	}
	return out, nil
}

// StoreComparison reproduces §IV-D: per-update transaction latency of the
// eventual store (Redis stand-in) vs the strong store (MySQL stand-in) at
// the paper's 21.2 MB blob size, plus the derived training-time overheads.
type StoreComparison struct {
	EventualUpdateSec float64
	StrongUpdateSec   float64
	Ratio             float64
	// CIFAR10OverheadMin is the extra minutes over ~2,000 updates.
	CIFAR10OverheadMin float64
	// ImageNetOverheadH is the extra hours over ~1,600,000 updates.
	ImageNetOverheadH float64
}

// CompareStores computes the §IV-D table from the calibrated profiles.
func CompareStores() StoreComparison {
	const blob = 21_200_000
	ev := 2 * store.EventualProfile.Cost(blob).Seconds()
	st := 2 * store.StrongProfile.Cost(blob).Seconds()
	diff := st - ev
	return StoreComparison{
		EventualUpdateSec:  ev,
		StrongUpdateSec:    st,
		Ratio:              st / ev,
		CIFAR10OverheadMin: diff * 2000 / 60,
		ImageNetOverheadH:  diff * 1_600_000 / 3600,
	}
}

// AblationRules returns the update rules compared by the A1 ablation:
// VC-ASGD vs Downpour-style vs EASGD-style under identical fleets.
func AblationRules(subtasks int) []baseline.UpdateRule {
	return []baseline.UpdateRule{
		baseline.VCASGD{Alpha: opt.Constant{V: 0.95}},
		baseline.Downpour{Scale: 1.0 / float64(subtasks)},
		baseline.EASGD{Beta: 0.9 / float64(subtasks)},
	}
}
