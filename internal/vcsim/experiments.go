package vcsim

import (
	"fmt"

	"vcdl/internal/baseline"
	"vcdl/internal/core"
	"vcdl/internal/data"
	"vcdl/internal/metrics"
	"vcdl/internal/nn"
	"vcdl/internal/opt"
	"vcdl/internal/store"
)

// PaperSetup bundles the corpus and job configuration shared by all of the
// paper's experiments (§IV-A): a 10-class image problem whose training set
// splits into 50 subtasks, a ResNetV2-family model, Adam with lr=0.001 on
// clients, and He-normal initialization.
type PaperSetup struct {
	Corpus *data.Corpus
	Job    core.JobConfig
}

// NewPaperSetup generates the experiment workload. epochs scales run
// length (the paper trains 40 epochs; benchmarks may use fewer).
func NewPaperSetup(seed int64, epochs int) (*PaperSetup, error) {
	dc := data.DefaultSynthConfig()
	dc.Seed = seed
	// Difficulty calibrated so the serial baseline plateaus near the
	// paper's 0.82–0.85 band and 40 distributed epochs land around 0.73
	// (see EXPERIMENTS.md, calibration).
	dc.NoiseStd = 2.0
	dc.LabelNoise = 0.12
	corpus, err := data.GenerateSynth(dc)
	if err != nil {
		return nil, err
	}
	job := core.DefaultJobConfig(nn.MiniResNetV2Builder(dc.C, dc.H, dc.W, 8, 1, dc.Classes))
	job.Subtasks = 50
	job.MaxEpochs = epochs
	job.BatchSize = 25
	job.LocalPasses = 1
	job.LearningRate = 0.01
	job.ValSubset = 120
	job.Seed = seed
	return &PaperSetup{Corpus: corpus, Job: job}, nil
}

// Config builds the simulation config for a PnCnTn experiment with the
// given α schedule.
func (s *PaperSetup) Config(pn, cn, tn int, alpha opt.Schedule) Config {
	job := s.Job
	job.Alpha = alpha
	cfg := DefaultConfig(job, s.Corpus, pn, cn, tn)
	return cfg
}

// AlphaVariant names one Figure 4 curve.
type AlphaVariant struct {
	Label    string
	Schedule opt.Schedule
}

// Fig4Variants returns the paper's four α settings: 0.7, 0.95, 0.999 and
// the Var schedule αe = e/(e+1).
func Fig4Variants() []AlphaVariant {
	return []AlphaVariant{
		{"0.70", opt.Constant{V: 0.70}},
		{"0.95", opt.Constant{V: 0.95}},
		{"0.999", opt.Constant{V: 0.999}},
		{"Var", opt.EpochFraction{}},
	}
}

// ZoomWindow slices a curve to the [loH, hiH] hour window — Figure 5's
// zoomed views of Figure 4.
func ZoomWindow(series metrics.Series, loH, hiH float64) metrics.Series {
	out := metrics.Series{Name: fmt.Sprintf("%s[%g-%gh]", series.Name, loH, hiH)}
	for _, p := range series.Points {
		if p.Hours >= loH && p.Hours <= hiH {
			out.Add(p)
		}
	}
	return out
}

// SerialBaseline trains the Figure 6 single-instance baseline serially
// for the given epoch count and maps each epoch onto virtual hours via
// SerialSecondsPerEpoch (cfg supplies the calibrated subtask cost). The
// distributed half of Figure 6 runs through internal/exp.
func SerialBaseline(s *PaperSetup, cfg Config, epochs int) (val, test metrics.Series, err error) {
	serial, err := baseline.TrainSerial(s.Job, s.Corpus, epochs)
	if err != nil {
		return val, test, fmt.Errorf("vcsim: serial baseline: %w", err)
	}
	secPerEpoch := SerialSecondsPerEpoch(cfg)
	val = metrics.Series{Name: "single-instance-val"}
	test = metrics.Series{Name: "single-instance-test"}
	for i := range serial.ValAcc {
		h := float64(i+1) * secPerEpoch / 3600
		val.Add(metrics.Point{Epoch: i + 1, Hours: h, Value: serial.ValAcc[i]})
		test.Add(metrics.Point{Epoch: i + 1, Hours: h, Value: serial.TestAcc[i]})
	}
	return val, test, nil
}

// StoreComparison reproduces §IV-D: per-update transaction latency of the
// eventual store (Redis stand-in) vs the strong store (MySQL stand-in) at
// the paper's 21.2 MB blob size, plus the derived training-time overheads.
type StoreComparison struct {
	EventualUpdateSec float64
	StrongUpdateSec   float64
	Ratio             float64
	// CIFAR10OverheadMin is the extra minutes over ~2,000 updates.
	CIFAR10OverheadMin float64
	// ImageNetOverheadH is the extra hours over ~1,600,000 updates.
	ImageNetOverheadH float64
}

// CompareStores computes the §IV-D table from the calibrated profiles.
func CompareStores() StoreComparison {
	const blob = 21_200_000
	ev := 2 * store.EventualProfile.Cost(blob).Seconds()
	st := 2 * store.StrongProfile.Cost(blob).Seconds()
	diff := st - ev
	return StoreComparison{
		EventualUpdateSec:  ev,
		StrongUpdateSec:    st,
		Ratio:              st / ev,
		CIFAR10OverheadMin: diff * 2000 / 60,
		ImageNetOverheadH:  diff * 1_600_000 / 3600,
	}
}

// AblationRules returns the update rules compared by the A1 ablation:
// VC-ASGD vs Downpour-style vs EASGD-style under identical fleets.
func AblationRules(subtasks int) []baseline.UpdateRule {
	return []baseline.UpdateRule{
		baseline.VCASGD{Alpha: opt.Constant{V: 0.95}},
		baseline.Downpour{Scale: 1.0 / float64(subtasks)},
		baseline.EASGD{Beta: 0.9 / float64(subtasks)},
	}
}
