package vcsim

import (
	"math/rand"

	"vcdl/internal/nn"
)

// newInitializedNet builds and seeds the job's model.
func newInitializedNet(cfg Config) *nn.Network {
	net := nn.NewNetwork(cfg.Job.Builder)
	net.Init(rand.New(rand.NewSource(cfg.Job.Seed)))
	return net
}

// SerialSecondsPerEpoch is the virtual duration of one full-dataset epoch
// on the single server instance for the Figure 6 baseline: the instance
// processes the same total work as all subtasks of an epoch, serially, but
// with the full machine behind each training step (no slot contention and
// roughly 2× the per-task thread budget).
func SerialSecondsPerEpoch(cfg Config) float64 {
	perSubtask := cfg.BaseSubtaskSeconds * (refClockGHz / 2.3) // server clock, Table I
	return float64(cfg.Job.Subtasks) * perSubtask / 2
}
