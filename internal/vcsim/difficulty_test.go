package vcsim

import (
	"testing"

	"vcdl/internal/baseline"
	"vcdl/internal/core"
	"vcdl/internal/data"
	"vcdl/internal/nn"
)

// TestDifficultyProbe sweeps generator difficulty against the serial
// baseline to locate the paper's accuracy band. Manual tool; skipped in
// -short mode.
func TestDifficultyProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("difficulty probe skipped in -short mode")
	}
	for _, tc := range []struct {
		sigma, q float64
	}{
		{2.0, 0.12},
	} {
		dc := data.DefaultSynthConfig()
		dc.NoiseStd = tc.sigma
		dc.LabelNoise = tc.q
		corpus, err := data.GenerateSynth(dc)
		if err != nil {
			t.Fatal(err)
		}
		job := core.DefaultJobConfig(nn.MiniResNetV2Builder(3, 8, 8, 8, 1, 10))
		job.BatchSize = 25
		job.LearningRate = 0.01
		res, err := baseline.TrainSerial(job, corpus, 6)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("sigma=%.1f q=%.2f serial val: %.3v", tc.sigma, tc.q, res.ValAcc)
	}
}
