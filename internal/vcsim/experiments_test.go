package vcsim

import (
	"math"
	"testing"

	"vcdl/internal/metrics"
)

func TestCompareStoresMatchesPaper(t *testing.T) {
	c := CompareStores()
	if math.Abs(c.EventualUpdateSec-0.87) > 0.07 {
		t.Fatalf("eventual update %.3fs, want ≈0.87s", c.EventualUpdateSec)
	}
	if math.Abs(c.StrongUpdateSec-1.29) > 0.09 {
		t.Fatalf("strong update %.3fs, want ≈1.29s", c.StrongUpdateSec)
	}
	if c.Ratio < 1.4 || c.Ratio > 1.6 {
		t.Fatalf("ratio %.2f, want ≈1.5", c.Ratio)
	}
	// Paper: ~14 minutes over 2,000 CIFAR-10 updates.
	if c.CIFAR10OverheadMin < 10 || c.CIFAR10OverheadMin > 20 {
		t.Fatalf("CIFAR10 overhead %.1f min, want ≈14", c.CIFAR10OverheadMin)
	}
	// Paper: ~187 hours over 1.6M ImageNet updates.
	if c.ImageNetOverheadH < 150 || c.ImageNetOverheadH > 230 {
		t.Fatalf("ImageNet overhead %.0f h, want ≈187", c.ImageNetOverheadH)
	}
}

func TestFig4VariantsMatchPaper(t *testing.T) {
	vs := Fig4Variants()
	if len(vs) != 4 {
		t.Fatalf("%d variants, want 4", len(vs))
	}
	if vs[0].Schedule.At(1) != 0.70 || vs[1].Schedule.At(1) != 0.95 || vs[2].Schedule.At(1) != 0.999 {
		t.Fatal("constant alphas wrong")
	}
	// Var: αe = e/(e+1).
	if vs[3].Schedule.At(1) != 0.5 || math.Abs(vs[3].Schedule.At(40)-40.0/41.0) > 1e-15 {
		t.Fatal("Var schedule wrong")
	}
}

func TestZoomWindow(t *testing.T) {
	s := metrics.Series{Name: "x"}
	for i := 1; i <= 10; i++ {
		s.Add(metrics.Point{Epoch: i, Hours: float64(i), Value: float64(i) / 10})
	}
	z := ZoomWindow(s, 3, 6)
	if len(z.Points) != 4 {
		t.Fatalf("zoom kept %d points, want 4", len(z.Points))
	}
	if z.Points[0].Hours != 3 || z.Points[3].Hours != 6 {
		t.Fatalf("zoom bounds wrong: %+v", z.Points)
	}
	if ZoomWindow(s, 20, 30).Points != nil {
		t.Fatal("out-of-range zoom must be empty")
	}
}

func TestAblationRules(t *testing.T) {
	rules := AblationRules(50)
	if len(rules) != 3 {
		t.Fatalf("%d rules", len(rules))
	}
	names := map[string]bool{}
	for _, r := range rules {
		names[r.Name()] = true
	}
	if len(names) != 3 {
		t.Fatal("rule names must be distinct")
	}
	// Exactly one rule (EASGD) is synchronous.
	sync := 0
	for _, r := range rules {
		if r.Synchronous() {
			sync++
		}
	}
	if sync != 1 {
		t.Fatalf("%d synchronous rules, want 1", sync)
	}
}

func TestNewPaperSetupShape(t *testing.T) {
	s, err := NewPaperSetup(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Job.Subtasks != 50 {
		t.Fatalf("Subtasks = %d, want the paper's 50", s.Job.Subtasks)
	}
	if s.Job.MaxEpochs != 5 {
		t.Fatalf("MaxEpochs = %d", s.Job.MaxEpochs)
	}
	if s.Corpus.Train.N()%50 != 0 {
		t.Fatal("training set must split evenly into 50 shards")
	}
	cfg := s.Config(3, 3, 4, s.Job.Alpha)
	if cfg.PServers != 3 || len(cfg.ClientInstances) != 3 || cfg.TasksPerClient != 4 {
		t.Fatalf("config shape wrong: %+v", cfg)
	}
}
