package vcsim

import (
	"testing"

	"vcdl/internal/cloud"
)

// startQuick builds a started Sim on the quick workload.
func startQuick(t *testing.T, pn, cn, tn, epochs int) *Sim {
	t.Helper()
	job, corpus := quickSetup(t)
	job.MaxEpochs = epochs
	cfg := DefaultConfig(job, corpus, pn, cn, tn)
	s, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStartRunMatchesRun(t *testing.T) {
	job, corpus := quickSetup(t)
	job.MaxEpochs = 3
	cfg := DefaultConfig(job, corpus, 2, 3, 2)
	direct, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	staged, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if direct.Hours != staged.Hours || direct.Curve.FinalValue() != staged.Curve.FinalValue() {
		t.Fatalf("Start+Run diverges from Run: %v/%v vs %v/%v",
			direct.Hours, direct.Curve.FinalValue(), staged.Hours, staged.Curve.FinalValue())
	}
}

func TestJoinSpeedsUpLeaveCausesTimeouts(t *testing.T) {
	// Baseline: 2 clients throughout.
	base, err := startQuick(t, 1, 2, 2, 3).Run()
	if err != nil {
		t.Fatal(err)
	}

	// Flash crowd: 4 extra clients join shortly after start.
	crowd := startQuick(t, 1, 2, 2, 3)
	crowd.Engine().Schedule(200, func() {
		for i := 0; i < 4; i++ {
			crowd.AddClient(cloud.ClientB, cloud.USEast)
		}
	})
	fast, err := crowd.Run()
	if err != nil {
		t.Fatal(err)
	}
	if fast.Hours >= base.Hours {
		t.Fatalf("flash crowd did not speed up training: %v vs %v h", fast.Hours, base.Hours)
	}

	// Churn: one of the two clients leaves mid-run; its in-flight work
	// must be reissued via timeout, and training must still finish.
	churn := startQuick(t, 1, 2, 2, 3)
	churn.Engine().Schedule(400, func() {
		if gone := churn.RemoveClients(1); len(gone) != 1 {
			t.Errorf("RemoveClients departed %v", gone)
		}
	})
	rough, err := churn.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rough.Timeouts == 0 || rough.Reissued == 0 {
		t.Fatalf("leave produced no timeouts/reissues: %+v", rough)
	}
	if len(rough.Curve.Points) != 3 {
		t.Fatalf("training did not survive churn: %d epochs", len(rough.Curve.Points))
	}
	if rough.Hours <= base.Hours {
		t.Fatalf("losing a client did not slow training: %v vs %v h", rough.Hours, base.Hours)
	}
	// The departed client bills only for its active window, so the run
	// must cost less than the full fleet held for the whole duration.
	full := cloud.FleetCost([]cloud.InstanceType{cloud.ServerInstance, cloud.ClientA, cloud.ClientB}, false) * rough.Hours
	if rough.CostStandardUSD >= full {
		t.Fatalf("churned fleet billed full duration: %v >= %v", rough.CostStandardUSD, full)
	}
}

func TestStragglerSlowdownStretchesRun(t *testing.T) {
	base, err := startQuick(t, 1, 3, 2, 2).Run()
	if err != nil {
		t.Fatal(err)
	}
	s := startQuick(t, 1, 3, 2, 2)
	s.Engine().Schedule(0, func() {
		if _, ok := s.SlowClientAt(0, 6); !ok {
			t.Error("SlowClientAt(0) failed")
		}
	})
	slow, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if slow.Hours <= base.Hours {
		t.Fatalf("straggler did not stretch the run: %v vs %v h", slow.Hours, base.Hours)
	}
}

func TestRegionOutageSlowsTransfers(t *testing.T) {
	mk := func() *Sim {
		s := startQuick(t, 1, 3, 2, 2)
		return s
	}
	base, err := mk().Run()
	if err != nil {
		t.Fatal(err)
	}
	s := mk()
	// All quick-fleet clients are server-local (USEast); a 30 s RTT
	// "outage" on that region hits every transfer.
	s.Engine().Schedule(0, func() { s.SetRegionRTT(cloud.USEast, 30) })
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Hours <= base.Hours {
		t.Fatalf("outage did not slow the run: %v vs %v h", out.Hours, base.Hours)
	}
	// Recovery restores the baseline latency for the rest of the run.
	s2 := mk()
	s2.Engine().Schedule(0, func() { s2.SetRegionRTT(cloud.USEast, 30) })
	s2.Engine().Schedule(600, func() { s2.ClearRegionRTT(cloud.USEast) })
	rec, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Hours >= out.Hours {
		t.Fatalf("recovery did not help: %v vs %v h", rec.Hours, out.Hours)
	}
}

func TestMidRunPreemptStorm(t *testing.T) {
	s := startQuick(t, 1, 3, 2, 3)
	s.Engine().Schedule(0, func() { s.SetTimeout(400) })
	s.Engine().Schedule(300, func() { s.SetPreemptProb(0.5) })
	s.Engine().Schedule(3000, func() { s.SetPreemptProb(0) })
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeouts == 0 {
		t.Fatal("storm produced no timeouts")
	}
	if len(res.Curve.Points) != 3 {
		t.Fatalf("training did not survive the storm: %d epochs", len(res.Curve.Points))
	}
	m := s.PreemptModel(0.5)
	if m.P != 0.5 || m.TimeoutSeconds != 400 {
		t.Fatalf("PreemptModel not wired to live config: %+v", m)
	}
}

func TestPSFailoverAndSchedulerHotConfig(t *testing.T) {
	s := startQuick(t, 3, 3, 4, 2)
	s.Engine().Schedule(100, func() {
		s.SetPServers(1) // two PS processes fail
		s.SetReliabilityFloor(0.9)
	})
	s.Engine().Schedule(2000, func() { s.SetPServers(3) })
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve.Points) != 2 {
		t.Fatalf("failover broke training: %d epochs", len(res.Curve.Points))
	}
	if res.MaxPSUsed < 3 {
		t.Fatalf("MaxPSUsed = %d", res.MaxPSUsed)
	}
	if got := s.r.sched.Config().ReliabilityFloor; got != 0.9 {
		t.Fatalf("reliability floor = %v", got)
	}
}
