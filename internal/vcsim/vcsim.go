// Package vcsim runs paper-scale VCDL experiments inside the
// discrete-event simulator: fleets of heterogeneous preemptible clients,
// multiple parameter servers sharing a store, WAN transfer times and
// BOINC timeout/reissue fault tolerance — with the gradient mathematics
// executing for real so the accuracy curves are genuine, while durations
// come from a calibrated cost model ("virtual time, real math",
// DESIGN.md §4). Every figure of the paper's evaluation is regenerated
// through this package.
package vcsim

import (
	"fmt"
	"math"

	"vcdl/internal/baseline"
	"vcdl/internal/boinc"
	"vcdl/internal/cloud"
	"vcdl/internal/core"
	"vcdl/internal/data"
	"vcdl/internal/metrics"
	"vcdl/internal/obs"
	"vcdl/internal/ps"
	"vcdl/internal/sim"
	"vcdl/internal/store"
	"vcdl/internal/wire"
)

// Config describes one simulated experiment. The paper's notation: Pn
// parameter servers, Cn clients (len(ClientInstances)), Tn simultaneous
// subtasks per client (TasksPerClient).
type Config struct {
	Job    core.JobConfig
	Corpus *data.Corpus

	// Name labels the run's Result and curves; empty derives the
	// PnCnTn topology string.
	Name string

	PServers        int
	ClientInstances []cloud.InstanceType
	TasksPerClient  int
	// Regions optionally spreads the fleet round-robin across geographic
	// regions (§III-E); every transfer then pays the region's round-trip
	// latency. Empty keeps the fleet server-local.
	Regions []cloud.Region

	// Store backs the shared server parameter copy; nil = eventual store
	// (the paper's Redis choice).
	Store store.Store
	// Policy overrides the scheduler's assignment policy; nil keeps the
	// default paper policy (boinc.NewPolicy("paper")), which is
	// byte-identical to the historical hard-coded behaviour. Seeded
	// policies (boinc.NewPolicy("random")) draw their randomness from
	// the run seed, so per-run determinism is preserved.
	Policy boinc.Policy
	// Rule overrides the server update rule for ablations; nil = VC-ASGD
	// with Job.Alpha via the parameter-server group (the paper path).
	Rule baseline.UpdateRule
	// Network is the WAN model; zero value = cloud.DefaultWAN().
	Network cloud.Network

	// BaseSubtaskSeconds is te at the reference clock with no slot
	// contention (paper: ≤ 2.4 min → 144 s).
	BaseSubtaskSeconds float64
	// AssimSeconds is the parameter-server service time per result
	// (validation + store update at paper scale).
	AssimSeconds float64
	// ThreadsPerTask and ContentionExp shape the client contention model:
	// running k simultaneous subtasks on v vCPUs slows each by
	// max(1, (k·ThreadsPerTask/v))^ContentionExp.
	ThreadsPerTask float64
	ContentionExp  float64
	// PSContention models the shared 8-vCPU server instance hosting all
	// parameter servers (plus Redis, Apache and MySQL, §IV-A): each
	// additional PS process slows every PS by this fraction, so server
	// throughput saturates — the paper observes it "decreases after P5".
	PSContention float64
	// TimeoutSeconds is the BOINC result deadline (to in §IV-E).
	TimeoutSeconds float64
	// PreemptProb is the per-subtask-execution probability that the
	// preemptible instance is reclaimed before uploading (p in §IV-E).
	PreemptProb float64
	// RecordTest also evaluates test accuracy at each epoch (Figure 6).
	RecordTest bool
	// DisableSticky turns off client-side file caching (the A2 ablation:
	// without BOINC's sticky-file feature every subtask re-downloads its
	// inputs).
	DisableSticky bool
	// AutoScalePS enables the paper's §III-D idea of dynamically varying
	// the number of parameter servers with load: when the assimilation
	// queue exceeds the current PS count another PS process is started
	// (up to MaxPServers); idle capacity is retired back to PServers.
	AutoScalePS bool
	// MaxPServers caps autoscaling (default 8, one per server vCPU).
	MaxPServers int

	// Observer, when non-nil, receives run events (assimilations, epoch
	// closes, preemptions, timeout sweeps, completion) as they happen in
	// virtual time. Use Observers to attach more than one. Observers are
	// passive: they never change the Result.
	Observer Observer

	// Metrics, when non-nil, receives the run's metric families
	// (DESIGN.md §10): the scheduler's vcdl_sched_* lifecycle metrics and
	// the simulator's vcdl_sim_* event metrics, with histograms recorded
	// in virtual seconds. Like observers, an attached registry never
	// perturbs the run — the same seed produces the same Result and the
	// same golden trace with or without one.
	Metrics *obs.Registry
	// Trace, when non-nil, records per-workunit lifecycle spans: the
	// scheduler-side kinds (created/assigned/validated/…) plus the
	// simulator-only client-side kinds (compute_start, compute_end,
	// uploaded, assimilated), all stamped in virtual seconds.
	Trace *obs.Tracer

	// Backend selects the compute backend that executes subtask math
	// (DESIGN.md §8): "" or "real" runs the full kernel inline in the
	// event loop (the historical path); "cached" memoizes per
	// (epoch, shard) so replicated/reissued copies compute once;
	// "parallel" overlaps the math with event processing on a worker
	// pool; "surrogate" substitutes a subsampled kernel for capacity
	// runs. Modifiers compose: "parallel+cached". real, cached and
	// parallel produce byte-identical Results (only the Compute
	// telemetry differs); see core.BackendNames.
	Backend string
	// ComputeWorkers sizes the parallel backend's worker pool
	// (0 = GOMAXPROCS). The pool size never changes results.
	ComputeWorkers int
	// Replication issues this many concurrent copies of every subtask
	// (BOINC's computational redundancy, §II-C); 0 or 1 keeps the single
	// copy the paper's experiments use. Only the canonical (first)
	// result assimilates, so curves are unchanged — redundancy buys
	// straggler tolerance at the price of duplicate math, which is
	// exactly what the cached backend refunds.
	Replication int

	// Byzantine turns the first ByzantineClients clients adversarial
	// with the named boinc.Byzantine* behavior (wrong-result, spoof,
	// deadline-game), driving the quorum/validation machinery from
	// inside the engine — the sim-mode mirror of the real-mode
	// ClientControl.Byzantine injection. Zero values keep every client
	// honest and the engine byte-identical to the historical path.
	Byzantine        string
	ByzantineClients int

	Seed int64
}

// DefaultConfig returns the paper-calibrated simulation parameters for a
// job/corpus with Cn round-robin Table-I clients.
func DefaultConfig(job core.JobConfig, corpus *data.Corpus, pn, cn, tn int) Config {
	return Config{
		Job:                job,
		Corpus:             corpus,
		PServers:           pn,
		ClientInstances:    cloud.DefaultFleet(cn),
		TasksPerClient:     tn,
		Network:            cloud.DefaultWAN(),
		BaseSubtaskSeconds: 144,
		AssimSeconds:       19.2,
		ThreadsPerTask:     4,
		ContentionExp:      0.72,
		PSContention:       0.5,
		TimeoutSeconds:     1800,
		Seed:               job.Seed,
	}
}

// DisplayName returns the run label results carry: Name when set,
// otherwise the derived PnCnTn topology string.
func (c *Config) DisplayName() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("P%dC%dT%d", c.PServers, len(c.ClientInstances), c.TasksPerClient)
}

// refClockGHz anchors the per-task speed model (ClientB's 2.5 GHz row).
const refClockGHz = 2.5

// Result is the outcome of one simulated run.
type Result struct {
	Name string
	// Curve is validation accuracy vs virtual hours, one point per epoch
	// with the per-epoch subtask accuracy range (the paper's error bars).
	Curve metrics.Series
	// TestCurve is test accuracy per epoch (when RecordTest).
	TestCurve metrics.Series
	// Hours is total virtual training time.
	Hours float64
	// Epochs holds per-epoch aggregates.
	Epochs []ps.EpochSummary

	// Fault-tolerance and traffic accounting. InvalidResults counts
	// results rejected by validation; QuorumRetries counts copies
	// re-enqueued to replace failed, expired or invalid results (both
	// modes — the adversarial-client telemetry).
	Issued, Reissued, Timeouts    int
	InvalidResults, QuorumRetries int
	BytesDownloaded               int64
	BytesUploaded                 int64
	StoreStats                    store.Stats
	// AssignMix counts issued assignments per scheduling policy (runs
	// with hot policy swaps split across the policies that decided).
	AssignMix map[string]int

	// Cost of the fleet (server + clients) for the run duration.
	CostStandardUSD    float64
	CostPreemptibleUSD float64

	// Autoscaler telemetry (when AutoScalePS is on).
	PSScaleUps, PSScaleDowns int
	MaxPSUsed                int

	// Data-plane and checkpoint telemetry. Real-mode only: the simulator
	// has no byte-level data plane, so sim results leave these zero and
	// scenario assertions on them are real-only (DESIGN.md §11).
	BlobBytes     int64
	BlobResumes   int
	BlobCacheHits int
	CkptEpoch     int
	CkptRestores  int

	// Compute is the compute-backend telemetry (cache hits, worker-pool
	// overlap). It is the one Result field that legitimately differs
	// between equivalent backends, so cross-backend equivalence checks
	// zero it before comparing (DESIGN.md §8).
	Compute core.BackendStats
}

// simClient is one simulated client instance.
type simClient struct {
	id    string
	inst  cloud.PlacedInstance
	slots int
	busy  int
	cache map[string]bool
	// slow multiplies subtask execution time (1 = nominal). Scenario
	// injection uses it to turn a client into a straggler mid-run.
	slow float64
	// departed marks a client that left the volunteer pool: it stops
	// requesting work and its in-flight results are lost (the scheduler
	// recovers them at the deadline, like any vanished BOINC host).
	departed bool
	// byzantine names the client's adversarial behavior ("" = honest;
	// see boinc.ByzantineBehaviors). Checked only on non-empty values, so
	// honest runs take exactly the historical code path.
	byzantine string
	// joinedAt/departedAt bound the client's billable lifetime in virtual
	// seconds (departedAt < 0 = still active at run end).
	joinedAt   float64
	departedAt float64
}

// newSimClient builds one client; i numbers it within the run.
func newSimClient(i int, inst cloud.PlacedInstance, slots int, joinedAt float64) *simClient {
	return &simClient{
		id:         fmt.Sprintf("client-%02d-%s", i, inst.Name),
		inst:       inst,
		slots:      slots,
		cache:      make(map[string]bool),
		slow:       1,
		joinedAt:   joinedAt,
		departedAt: -1,
	}
}

// contention returns the per-task slowdown with k busy slots.
func (c *Config) contention(k int, inst cloud.InstanceType) float64 {
	load := float64(k) * c.ThreadsPerTask / float64(inst.VCPU)
	if load <= 1 {
		return 1
	}
	return math.Pow(load, c.ContentionExp)
}

// Run executes the simulated experiment to completion.
func Run(cfg Config) (*Result, error) {
	s, err := Start(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// run carries the mutable state of one simulation.
type run struct {
	cfg   Config
	eng   *sim.Engine
	sched *boinc.Scheduler
	group *ps.Group
	st    store.Store
	assim *sim.Server

	backend core.Backend
	eval    *core.Evaluator
	testEv  *core.Evaluator
	shards  []*data.Dataset
	clients []*simClient
	preempt *cloud.PreemptionProcess

	// rule-based (ablation) server state; nil when using the ps.Group.
	rule         baseline.UpdateRule
	ruleServer   []float64
	syncBuffer   [][]float64
	epochParams  map[int][]float64
	paramBytes   int
	shardBytes   []int
	modelBytes   int
	tracker      *ps.EpochTracker
	stop         ps.StopCriterion
	res          *Result
	obs          Observer
	finished     bool
	sweepPending bool

	// rttOverride replaces a region's static round-trip latency for the
	// rest of the run (scenario outage injection).
	rttOverride map[cloud.Region]float64
	// nextClient numbers clients joined after start so churned fleets
	// keep unique, stable IDs.
	nextClient int

	// launchTasks/launchSlots collect the subtasks one tryAssign wave
	// schedules, flushed as a single core.LaunchBatch call (reused
	// scratch, see flushLaunches).
	launchTasks []core.Subtask
	launchSlots []*futSlot
}

func newRun(cfg Config, st store.Store, backend core.Backend) *run {
	name := cfg.DisplayName()
	schedCfg := boinc.DefaultSchedulerConfig()
	schedCfg.DefaultTimeout = cfg.TimeoutSeconds
	schedCfg.DefaultMaxErrors = 1 << 20 // experiments never abandon a subtask
	schedCfg.StickyAffinity = !cfg.DisableSticky
	schedCfg.Seed = cfg.Seed
	sched := boinc.NewScheduler(schedCfg)
	if cfg.Policy != nil {
		sched.SetPolicy(cfg.Policy)
	}
	// Instrumentation attaches before the first workunit exists so
	// created events are never missed. Sinks only derive values from
	// scheduler state and the virtual clock the run already passes in,
	// so attaching them cannot change the event order or RNG stream.
	if cfg.Metrics != nil {
		sched.AddSink(boinc.MetricsSink(cfg.Metrics))
	}
	if cfg.Trace != nil {
		sched.AddSink(boinc.TraceSink(cfg.Trace))
	}
	observer := cfg.Observer
	if cfg.Metrics != nil {
		bridge := newMetricsObserver(cfg.Metrics)
		if observer != nil {
			observer = Observers{bridge, observer}
		} else {
			observer = bridge
		}
	}
	r := &run{
		cfg:         cfg,
		eng:         sim.NewEngine(cfg.Seed),
		sched:       sched,
		st:          st,
		backend:     backend,
		shards:      cfg.Job.SplitShards(cfg.Corpus),
		epochParams: make(map[int][]float64),
		tracker:     ps.NewEpochTracker(cfg.Job.Subtasks),
		stop:        ps.StopCriterion{TargetAccuracy: cfg.Job.TargetAccuracy, MaxEpochs: cfg.Job.MaxEpochs},
		rule:        cfg.Rule,
		preempt:     cloud.NewPreemptionProcess(cfg.Seed + 7),
		res:         &Result{Name: name},
		obs:         observer,
		rttOverride: make(map[cloud.Region]float64),
	}
	r.res.Curve.Name = name
	r.res.TestCurve.Name = name + "-test"
	return r
}

func (r *run) start() error {
	cfg := r.cfg
	r.group = ps.NewGroup(cfg.PServers, r.st, cfg.Job.Alpha)
	r.assim = sim.NewServer(r.eng, cfg.PServers)
	r.eval = core.NewEvaluator(cfg.Job.Builder, cfg.Corpus.Val, cfg.Job.ValSubset, cfg.Job.BatchSize*4)
	if cfg.RecordTest {
		r.testEv = core.NewEvaluator(cfg.Job.Builder, cfg.Corpus.Test, cfg.Job.ValSubset, cfg.Job.BatchSize*4)
	}

	// Initialize the model (with optional serial warmstarting, §II-B) and
	// size the transfer payloads.
	net := newInitializedNet(cfg)
	warmSeconds := 0.0
	if cfg.Job.WarmstartEpochs > 0 {
		core.Warmstart(net, cfg.Job, cfg.Corpus.Train)
		warmSeconds = float64(cfg.Job.WarmstartEpochs) * SerialSecondsPerEpoch(cfg)
	}
	params := net.Parameters()
	r.paramBytes = wire.RawSize(len(params))
	r.modelBytes = 4096 // model .json spec; small, like the paper's 269 KB
	r.shardBytes = make([]int, len(r.shards))
	for i, s := range r.shards {
		// Approximate the compressed shard size without running gzip for
		// every shard: raw float64 payload × a typical compression factor.
		r.shardBytes[i] = int(float64(wire.RawSize(s.X.Size())) * 0.8)
	}
	if r.rule == nil {
		if err := r.group.Publish(params); err != nil {
			return err
		}
	} else {
		r.ruleServer = append([]float64(nil), params...)
	}

	for i, inst := range cloud.Place(cfg.ClientInstances, cfg.Regions) {
		r.clients = append(r.clients, newSimClient(i, inst, cfg.TasksPerClient, 0))
	}
	for i := 0; i < cfg.ByzantineClients && i < len(r.clients); i++ {
		r.clients[i].byzantine = cfg.Byzantine
	}
	r.nextClient = len(r.clients)
	if warmSeconds > 0 {
		// The serial warmstart occupies the fleet's clock before any
		// subtask is generated.
		r.eng.Schedule(warmSeconds, func() {
			if err := r.generateEpoch(1); err != nil {
				panic("vcsim: generate epoch 1: " + err.Error())
			}
			r.wakeClients()
		})
		return nil
	}
	if err := r.generateEpoch(1); err != nil {
		return err
	}
	r.wakeClients()
	return nil
}

// currentServer returns the live server parameter vector.
func (r *run) currentServer() ([]float64, error) {
	if r.rule != nil {
		return append([]float64(nil), r.ruleServer...), nil
	}
	return r.group.Current()
}

// generateEpoch snapshots the server copy and queues the epoch's subtasks.
func (r *run) generateEpoch(epoch int) error {
	snapshot, err := r.currentServer()
	if err != nil {
		return err
	}
	r.epochParams[epoch] = snapshot
	delete(r.epochParams, epoch-1)
	// Closed epochs can never launch again (their workunits are all
	// done), so the backend may drop memoized state below this epoch.
	r.backend.Retire(epoch)
	if r.rule != nil && r.rule.Synchronous() {
		r.syncBuffer = r.syncBuffer[:0]
	}
	pf := fmt.Sprintf("params_e%03d", epoch)
	for i := range r.shards {
		r.sched.AddWorkunit(boinc.Workunit{
			Name:       fmt.Sprintf("train_e%03d_s%03d", epoch, i),
			InputFiles: []string{"model.json", pf, fmt.Sprintf("shard_%03d", i)},
			// Payload encodes epoch and shard compactly.
			Payload:     []byte(fmt.Sprintf("%d/%d", epoch, i)),
			Timeout:     r.cfg.TimeoutSeconds,
			Replication: r.cfg.Replication,
		})
	}
	return nil
}

// wakeClients lets every client with free slots request work.
func (r *run) wakeClients() {
	for _, c := range r.clients {
		r.tryAssign(c)
	}
}

// tryAssign pulls one batch of work for an idle client. Like a BOINC
// client's work fetch, a client requests up to Tn workunits at once and
// only asks again when the whole batch has finished — this wave
// granularity, combined with heterogeneous client speeds, produces the
// straggler effects behind the paper's Figure 3.
func (r *run) tryAssign(c *simClient) {
	if r.finished || c.departed || c.busy > 0 {
		return
	}
	asns := r.sched.RequestWork(c.id, r.eng.Now(), c.slots)
	if len(asns) == 0 {
		return
	}
	for _, asn := range asns {
		r.startSubtask(c, asn, len(asns))
	}
	r.flushLaunches()
}

// futSlot defers a subtask's future: startSubtask fills the slot's
// completion callback immediately, and flushLaunches binds the real
// future before any event can run. Safe because the engine is
// single-threaded and never executes a scheduled callback until the
// current one (the one calling tryAssign) returns.
type futSlot struct{ fut core.Future }

func (s *futSlot) Wait() ([]float64, core.ExecStats) { return s.fut.Wait() }

// flushLaunches hands the wave's collected subtasks to the backend as
// one epoch-batched launch. Launch order matches the per-assignment
// order startSubtask queued them in, so backend stats and results are
// identical to the historical launch-inside-the-loop path.
func (r *run) flushLaunches() {
	if len(r.launchTasks) == 0 {
		return
	}
	futs := core.LaunchBatch(r.backend, r.launchTasks)
	for i, s := range r.launchSlots {
		s.fut = futs[i]
	}
	r.launchTasks = r.launchTasks[:0]
	r.launchSlots = r.launchSlots[:0]
}

// xfer returns the transfer time for n bytes to or from a client,
// honouring any scenario-injected regional RTT override.
func (r *run) xfer(n int, c *simClient) float64 {
	rtt, ok := r.rttOverride[c.inst.Region]
	if !ok {
		rtt = c.inst.Region.RTT()
	}
	return r.cfg.Network.TransferTimeRTT(n, rtt, c.inst.InstanceType, r.eng.Rand())
}

// parsePayload decodes "epoch/shard".
func parsePayload(p []byte) (epoch, shard int, err error) {
	_, err = fmt.Sscanf(string(p), "%d/%d", &epoch, &shard)
	return epoch, shard, err
}

// spoofSeconds is the token "fabrication" time a spoofing client spends
// per assignment before uploading garbage: near-instant compared to
// genuine execution, which is the whole attack.
const spoofSeconds = 1.0

// startSpoofed models a spoofing client's assignment: no downloads, no
// math — after a token fabrication delay it uploads bytes the validator
// rejects, so the workunit is reissued and the client's reliability
// decays (boinc.ByzantineSpoof).
func (r *run) startSpoofed(c *simClient, asn boinc.Assignment) {
	c.busy++
	r.eng.Schedule(spoofSeconds, func() {
		if c.departed {
			return
		}
		c.busy--
		r.tryAssign(c)
		up := r.xfer(r.paramBytes, c)
		r.eng.Schedule(up, func() {
			if c.departed {
				return
			}
			r.res.BytesUploaded += int64(r.paramBytes)
			r.sched.CompleteResult(asn.ResultID, false, r.eng.Now())
		})
	})
	r.scheduleSweep()
}

// startSubtask models download, execution (with contention), preemption
// and upload for one assignment. wave is the number of subtasks running
// simultaneously in this batch, which sets the contention factor.
// Byzantine clients divert from the honest path at the last possible
// moment (spoofers skip it entirely), so every branch is gated on a
// non-empty behavior and honest runs stay byte-identical.
func (r *run) startSubtask(c *simClient, asn boinc.Assignment, wave int) {
	if c.byzantine == boinc.ByzantineSpoof {
		r.startSpoofed(c, asn)
		return
	}
	epoch, shard, err := parsePayload(asn.Payload)
	if err != nil {
		panic("vcsim: bad payload " + string(asn.Payload))
	}
	c.busy++
	// Download whatever is not sticky-cached.
	if r.cfg.DisableSticky {
		c.cache = make(map[string]bool)
	}
	newBytes := 0
	for _, f := range asn.InputFiles {
		if c.cache[f] {
			continue
		}
		c.cache[f] = true
		switch {
		case f == "model.json":
			newBytes += r.modelBytes
		case len(f) > 6 && f[:6] == "shard_":
			newBytes += r.shardBytes[shard]
		default: // params file
			newBytes += r.paramBytes
		}
	}
	r.res.BytesDownloaded += int64(newBytes)
	dl := 0.0
	if newBytes > 0 {
		dl = r.xfer(newBytes, c)
	}
	execT := r.cfg.BaseSubtaskSeconds * (refClockGHz / c.inst.ClockGHz) * r.cfg.contention(wave, c.inst.InstanceType)
	if c.slow > 0 {
		execT *= c.slow
	}

	// Preemption: the instance is reclaimed during this execution; the
	// result never uploads and the slot is only recovered (replacement
	// instance) at the scheduler deadline.
	if r.cfg.PreemptProb > 0 && r.eng.Rand().Float64() < r.cfg.PreemptProb {
		if r.obs != nil {
			r.obs.OnPreempt(PreemptEvent{Client: c.id, Epoch: epoch, Shard: shard, Hours: r.eng.NowHours()})
		}
		wait := asn.Deadline - r.eng.Now()
		r.eng.Schedule(wait+1, func() {
			if c.departed {
				return
			}
			c.busy--
			c.cache = make(map[string]bool) // replacement starts cold
			r.sweep()
			// The replacement instance asks for work itself: the sweep only
			// wakes clients when it expired something, and by now the lost
			// result may already have been expired by an earlier sweep —
			// without this request a fully-preempted fleet deadlocks with
			// reissued work pending and every client idle.
			r.tryAssign(c)
		})
		return
	}

	// Execution begins once the download finishes; the span event is
	// stamped with that already-determined virtual time, not a clock read.
	r.trace(asn.WUID, obs.KindComputeStart, c.id, r.eng.Now()+dl)
	// The subtask's output is a pure function of (epoch snapshot, shard,
	// seed) — none of the engine's RNG is consumed — so the computation
	// is queued now, when execution is scheduled (and handed to the
	// backend in one LaunchBatch when the wave's assignments are all
	// queued), then awaited in the completion callback: the parallel
	// backend overlaps the math with event processing, the cached
	// backend resolves replicated/reissued copies to one execution, and
	// the default real backend defers the work to the callback exactly
	// as the historical inline path did.
	fut := &futSlot{}
	r.launchTasks = append(r.launchTasks, core.Subtask{
		Epoch:  epoch,
		Shard:  shard,
		Seed:   r.cfg.Seed ^ int64(epoch)<<20 ^ int64(shard),
		Params: r.epochParams[epoch],
		Data:   r.shards[shard],
	})
	r.launchSlots = append(r.launchSlots, fut)
	r.eng.Schedule(dl+execT, func() {
		if c.departed {
			// The client left mid-execution; its result is lost and the
			// scheduler reissues the workunit at the deadline.
			return
		}
		updated, _ := fut.Wait()
		c.busy--
		r.trace(asn.WUID, obs.KindComputeEnd, c.id, r.eng.Now())
		r.tryAssign(c)
		if c.byzantine == boinc.ByzantineDeadlineGame {
			// Hoard the finished result: it is never uploaded, so the
			// scheduler expires it at the deadline and reissues.
			return
		}
		up := r.xfer(r.paramBytes, c)
		r.eng.Schedule(up, func() {
			if c.departed {
				// The client vanished mid-upload: the result never
				// arrives (and is not billed as delivered traffic).
				return
			}
			r.res.BytesUploaded += int64(r.paramBytes)
			r.trace(asn.WUID, obs.KindUploaded, c.id, r.eng.Now())
			// Wrong-result clients upload corrupted output: the
			// validator rejects it, and canonical can never be true.
			valid := c.byzantine != boinc.ByzantineWrongResult
			if _, canonical, err := r.sched.CompleteResult(asn.ResultID, valid, r.eng.Now()); err == nil && canonical {
				r.autoscale()
				r.assim.Submit(r.assimService(), func() {
					r.trace(asn.WUID, obs.KindAssimilated, c.id, r.eng.Now())
					r.assimilate(epoch, updated)
				})
			}
		})
	})
	r.scheduleSweep()
}

// trace records one client-side lifecycle span event at virtual time t
// (a no-op without a tracer). Only the simulator can contribute these
// kinds — it watches the whole lifecycle from one event loop.
func (r *run) trace(wu int64, kind, client string, t float64) {
	if r.cfg.Trace == nil {
		return
	}
	r.cfg.Trace.Record(obs.SpanEvent{WU: wu, Kind: kind, T: t, Client: client})
}

// assimService is the PS service time per result: validation plus the
// calibrated store update cost for the parameter blob, inflated by the
// contention of the parameter-server processes currently sharing one
// server instance.
func (r *run) assimService() float64 {
	storeCost := 2 * store.EventualProfile.Cost(r.paramBytes).Seconds()
	if _, ok := r.st.(*store.Strong); ok {
		storeCost = 2 * store.StrongProfile.Cost(r.paramBytes).Seconds()
	}
	contention := 1 + r.cfg.PSContention*float64(r.assim.Slots()-1)
	return r.cfg.AssimSeconds*contention + storeCost
}

// autoscale implements §III-D's dynamic parameter-server pool: grow when
// the assimilation backlog exceeds the pool, shrink when the pool idles.
func (r *run) autoscale() {
	if !r.cfg.AutoScalePS {
		return
	}
	max := r.cfg.MaxPServers
	if max <= 0 {
		max = 8
	}
	slots := r.assim.Slots()
	switch {
	case r.assim.QueueLen() > slots && slots < max:
		r.assim.SetSlots(slots + 1)
		r.res.PSScaleUps++
		if slots+1 > r.res.MaxPSUsed {
			r.res.MaxPSUsed = slots + 1
		}
	case r.assim.QueueLen() == 0 && r.assim.Busy() < slots && slots > r.cfg.PServers:
		r.assim.SetSlots(slots - 1)
		r.res.PSScaleDowns++
	}
}

// assimilate applies the server update and epoch bookkeeping.
func (r *run) assimilate(epoch int, updated []float64) {
	if r.finished {
		return
	}
	var acc float64
	switch {
	case r.rule == nil:
		srv := r.group.Pick()
		if err := srv.Assimilate(updated, epoch); err != nil {
			panic("vcsim: assimilate: " + err.Error())
		}
		cur, err := srv.Current()
		if err != nil {
			panic("vcsim: current: " + err.Error())
		}
		acc = r.eval.Accuracy(cur)
	case r.rule.Synchronous():
		r.syncBuffer = append(r.syncBuffer, updated)
		acc = r.eval.Accuracy(r.ruleServer) // server unchanged until the barrier
		if len(r.syncBuffer) == r.cfg.Job.Subtasks {
			r.rule.MergeAll(r.ruleServer, r.syncBuffer, r.epochParams[epoch], epoch)
			acc = r.eval.Accuracy(r.ruleServer)
		}
	default:
		r.rule.Merge(r.ruleServer, updated, r.epochParams[epoch], epoch)
		acc = r.eval.Accuracy(r.ruleServer)
	}

	if r.obs != nil {
		r.obs.OnAssimilate(AssimEvent{Epoch: epoch, Hours: r.eng.NowHours(), Accuracy: acc, Queue: r.assim.QueueLen()})
	}
	summary, closed := r.tracker.Record(acc)
	if !closed {
		return
	}
	if r.rule != nil && r.rule.Synchronous() {
		// For synchronous rules the epoch accuracy is the post-merge value.
		summary.Mean, summary.Lo, summary.Hi, summary.Std = acc, acc, acc, 0
	}
	r.res.Epochs = append(r.res.Epochs, summary)
	point := metrics.Point{
		Epoch: summary.Epoch,
		Hours: r.eng.NowHours(),
		Value: summary.Mean,
		Lo:    summary.Lo,
		Hi:    summary.Hi,
	}
	r.res.Curve.Add(point)
	if r.obs != nil {
		r.obs.OnEpoch(EpochEvent{Hours: point.Hours, Summary: summary})
	}
	if r.testEv != nil {
		cur, err := r.currentServer()
		if err == nil {
			r.res.TestCurve.Add(metrics.Point{
				Epoch: summary.Epoch,
				Hours: r.eng.NowHours(),
				Value: r.testEv.Accuracy(cur),
			})
		}
	}
	if r.stop.ShouldStop(summary) {
		r.finished = true
		return
	}
	if err := r.generateEpoch(summary.Epoch + 1); err != nil {
		panic("vcsim: generate epoch: " + err.Error())
	}
	r.wakeClients()
}

// scheduleSweep arms a timeout sweep at the next outstanding deadline.
func (r *run) scheduleSweep() {
	if r.sweepPending || r.finished {
		return
	}
	d, ok := r.sched.NextDeadline()
	if !ok {
		return
	}
	r.sweepPending = true
	r.eng.ScheduleAt(d+0.5, func() {
		r.sweepPending = false
		r.sweep()
	})
}

// sweep expires overdue results and redistributes reissued work.
func (r *run) sweep() {
	if r.finished {
		return
	}
	if expired := r.sched.ExpireTimeouts(r.eng.Now()); len(expired) > 0 {
		if r.obs != nil {
			r.obs.OnTimeout(TimeoutEvent{Hours: r.eng.NowHours(), Expired: len(expired)})
		}
		r.wakeClients()
	}
	r.scheduleSweep()
}

// finish assembles the Result.
func (r *run) finish() (*Result, error) {
	// Drain stray compute workers (futures whose completion never fired,
	// e.g. departed clients) before reading the telemetry.
	r.backend.Close()
	r.res.Compute = r.backend.Stats()
	r.res.Hours = r.eng.NowHours()
	r.res.Issued = r.sched.Issued
	r.res.Reissued = r.sched.Reissued
	r.res.Timeouts = r.sched.Timeouts
	r.res.InvalidResults = r.sched.Invalid
	r.res.QuorumRetries = r.sched.QuorumRetries
	r.res.AssignMix = r.sched.AssignmentMix()
	r.res.StoreStats = r.st.Stats()
	if r.res.MaxPSUsed < r.cfg.PServers {
		r.res.MaxPSUsed = r.cfg.PServers
	}
	// Fleet cost: the server bills for the whole run; each client bills
	// for the hours it was actually in the pool (churned fleets pay only
	// their active window; static fleets reduce to rate × total hours).
	r.res.CostStandardUSD = cloud.ServerInstance.HourlyUSD * r.res.Hours
	r.res.CostPreemptibleUSD = cloud.ServerInstance.PreemptibleUSD * r.res.Hours
	for _, c := range r.clients {
		until := c.departedAt
		if until < 0 {
			until = r.eng.Now()
		}
		activeH := (until - c.joinedAt) / 3600
		if activeH < 0 {
			activeH = 0
		}
		r.res.CostStandardUSD += c.inst.HourlyUSD * activeH
		r.res.CostPreemptibleUSD += c.inst.PreemptibleUSD * activeH
	}
	if r.obs != nil {
		r.obs.OnFinish(r.res)
	}
	return r.res, nil
}
