package vcsim

import (
	"testing"

	"vcdl/internal/cloud"
)

// TestRegionalFleetPaysLatency: spreading the fleet across regions adds
// per-transfer round trips, so the geographically spread run takes longer
// at identical compute.
func TestRegionalFleetPaysLatency(t *testing.T) {
	job, corpus := quickSetup(t)
	job.MaxEpochs = 2
	local := DefaultConfig(job, corpus, 2, 3, 2)
	rLocal, err := Run(local)
	if err != nil {
		t.Fatal(err)
	}
	spread := local
	spread.Regions = []cloud.Region{cloud.USEast, cloud.Europe, cloud.APac}
	rSpread, err := Run(spread)
	if err != nil {
		t.Fatal(err)
	}
	if rSpread.Hours <= rLocal.Hours {
		t.Fatalf("regional spread (%vh) should cost time vs local (%vh)", rSpread.Hours, rLocal.Hours)
	}
	if len(rSpread.Curve.Points) != 2 {
		t.Fatal("regional run did not complete all epochs")
	}
}
