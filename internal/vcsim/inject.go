package vcsim

import (
	"fmt"

	"vcdl/internal/boinc"
	"vcdl/internal/cloud"
	"vcdl/internal/core"
	"vcdl/internal/ops"
	"vcdl/internal/sim"
	"vcdl/internal/store"
)

// Sim is a started simulation whose fleet and configuration can be
// mutated while virtual time advances. It is the injection surface the
// scenario engine (internal/scenario) drives: every hook below mirrors a
// real operational event of a volunteer-computing deployment — hosts
// joining and leaving, preemption storms, regional latency incidents,
// parameter-server failover and live scheduler reconfiguration
// (DESIGN.md §5). All hooks must be called from inside the engine's
// event loop (i.e. from callbacks scheduled on Engine()) or before Run.
type Sim struct {
	r *run
}

// Start validates the config, applies defaults and builds the simulation
// without running it. Callers schedule injection events on Engine() and
// then drive the run with Run.
func Start(cfg Config) (*Sim, error) {
	if err := cfg.Job.Validate(); err != nil {
		return nil, err
	}
	if cfg.PServers < 1 {
		cfg.PServers = 1
	}
	if cfg.TasksPerClient < 1 {
		cfg.TasksPerClient = 1
	}
	if len(cfg.ClientInstances) == 0 {
		cfg.ClientInstances = cloud.DefaultFleet(3)
	}
	if cfg.BaseSubtaskSeconds <= 0 {
		cfg.BaseSubtaskSeconds = 144
	}
	if cfg.AssimSeconds <= 0 {
		cfg.AssimSeconds = 19.2
	}
	if cfg.ThreadsPerTask <= 0 {
		cfg.ThreadsPerTask = 4
	}
	if cfg.ContentionExp <= 0 {
		cfg.ContentionExp = 0.72
	}
	if cfg.TimeoutSeconds <= 0 {
		cfg.TimeoutSeconds = 1800
	}
	if cfg.ByzantineClients > 0 && !boinc.ValidByzantine(cfg.Byzantine) {
		return nil, fmt.Errorf("vcsim: unknown byzantine behavior %q (want one of %v)", cfg.Byzantine, boinc.ByzantineBehaviors)
	}
	st := cfg.Store
	if st == nil {
		st = store.NewEventual(1, 0, cfg.Seed)
	}
	// One backend per run: backends are stateful (memoization, worker
	// pools) and sharing one across runs would couple otherwise
	// independent simulations.
	backend, err := core.NewBackend(cfg.Backend, cfg.Job, cfg.ComputeWorkers)
	if err != nil {
		return nil, err
	}
	r := newRun(cfg, st, backend)
	if err := r.start(); err != nil {
		backend.Close()
		return nil, err
	}
	return &Sim{r: r}, nil
}

// Engine exposes the virtual clock so callers can schedule injections.
func (s *Sim) Engine() *sim.Engine { return s.r.eng }

// Run drives the simulation until training finishes (or the event queue
// drains, e.g. when the whole fleet departed and nobody rejoins) and
// assembles the Result.
func (s *Sim) Run() (*Result, error) {
	s.r.eng.RunWhile(func() bool { return !s.r.finished })
	return s.r.finish()
}

// Config returns the run's live configuration (hot changes included).
func (s *Sim) Config() Config { return s.r.cfg }

// ActiveClients lists the IDs of clients currently in the pool.
func (s *Sim) ActiveClients() []string {
	var ids []string
	for _, c := range s.r.clients {
		if !c.departed {
			ids = append(ids, c.id)
		}
	}
	return ids
}

// AddClient joins a new client of the given instance type in the given
// region (volunteer churn, flash crowds). It returns the new client's ID
// and immediately lets the client request work.
func (s *Sim) AddClient(inst cloud.InstanceType, region cloud.Region) string {
	if region == "" {
		region = cloud.USEast
	}
	c := newSimClient(s.r.nextClient, cloud.PlacedInstance{InstanceType: inst, Region: region},
		s.r.cfg.TasksPerClient, s.r.eng.Now())
	s.r.nextClient++
	s.r.clients = append(s.r.clients, c)
	s.r.tryAssign(c)
	return c.id
}

// RemoveClients departs the n most recently joined active clients
// (LIFO, so a flash crowd recedes in join order). In-flight work on the
// departed clients is lost and reissued by the scheduler at its
// deadline. It returns the departed IDs.
func (s *Sim) RemoveClients(n int) []string {
	var gone []string
	for i := len(s.r.clients) - 1; i >= 0 && len(gone) < n; i-- {
		c := s.r.clients[i]
		if c.departed {
			continue
		}
		c.departed = true
		c.departedAt = s.r.eng.Now()
		s.r.sched.DropClient(c.id)
		gone = append(gone, c.id)
	}
	return gone
}

// RemoveClient departs one client by ID; ok reports whether it existed
// and was still active.
func (s *Sim) RemoveClient(id string) bool {
	for _, c := range s.r.clients {
		if c.id == id && !c.departed {
			c.departed = true
			c.departedAt = s.r.eng.Now()
			s.r.sched.DropClient(c.id)
			return true
		}
	}
	return false
}

// SlowClient multiplies a client's subtask execution time by factor
// (straggler injection; factor 1 restores nominal speed). The client is
// addressed by ID, or by index into the active-client list when id is
// numeric-like via SlowClientAt.
func (s *Sim) SlowClient(id string, factor float64) bool {
	if factor <= 0 {
		factor = 1
	}
	for _, c := range s.r.clients {
		if c.id == id && !c.departed {
			c.slow = factor
			return true
		}
	}
	return false
}

// SlowClientAt slows the i-th active client (0-based); ok reports
// whether the index was valid.
func (s *Sim) SlowClientAt(i int, factor float64) (string, bool) {
	ids := s.ActiveClients()
	if i < 0 || i >= len(ids) {
		return "", false
	}
	return ids[i], s.SlowClient(ids[i], factor)
}

// SetPreemptProb hot-changes the per-subtask preemption probability
// (preemption storms start with p > 0 and end with p = 0).
func (s *Sim) SetPreemptProb(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	s.r.cfg.PreemptProb = p
}

// PreemptModel returns the paper's §IV-E binomial model instantiated
// with the run's calibrated execution time, the given storm probability
// and the current scheduler timeout — the scenario engine uses it to
// report the predicted training-time increase of a storm.
func (s *Sim) PreemptModel(p float64) cloud.PreemptModel {
	return cloud.PreemptModel{
		P:               p,
		TaskExecSeconds: s.r.cfg.BaseSubtaskSeconds,
		TimeoutSeconds:  s.r.cfg.TimeoutSeconds,
	}
}

// SetRegionRTT overrides the round-trip latency of a region for the rest
// of the run (region outage: rtt in seconds; recovery: ClearRegionRTT).
func (s *Sim) SetRegionRTT(region cloud.Region, rtt float64) {
	if rtt < 0 {
		rtt = 0
	}
	s.r.rttOverride[region] = rtt
}

// ClearRegionRTT restores a region's static latency.
func (s *Sim) ClearRegionRTT(region cloud.Region) {
	delete(s.r.rttOverride, region)
}

// PServers returns the current parameter-server capacity.
func (s *Sim) PServers() int { return s.r.assim.Slots() }

// SetPServers resizes the parameter-server pool (failover: shrink when a
// PS process dies, grow when a standby takes over). Work queued on a
// failed PS drains through the survivors.
func (s *Sim) SetPServers(n int) {
	if n < 1 {
		n = 1
	}
	s.r.assim.SetSlots(n)
	if n > s.r.res.MaxPSUsed {
		s.r.res.MaxPSUsed = n
	}
}

// SetTimeout hot-changes the BOINC result deadline: workunits generated
// from now on and future (re)issues of unfinished workunits use the new
// deadline; already-issued results keep the deadline they were sent with.
func (s *Sim) SetTimeout(seconds float64) {
	if seconds <= 0 {
		return
	}
	s.r.cfg.TimeoutSeconds = seconds
	s.r.sched.SetDefaultTimeout(seconds)
	s.r.sched.RetimePending(seconds)
}

// SetReliabilityFloor hot-changes the scheduler's reliability gate for
// retried workunits.
func (s *Sim) SetReliabilityFloor(floor float64) {
	s.r.sched.SetReliabilityFloor(floor)
}

// SetPolicy hot-swaps the scheduler's assignment policy mid-run (nil
// restores the default paper policy). In-flight results are unaffected;
// only future work fetches decide differently.
func (s *Sim) SetPolicy(p boinc.Policy) {
	s.r.sched.SetPolicy(p)
}

// PolicyName reports the name of the scheduler's active policy.
func (s *Sim) PolicyName() string {
	return s.r.sched.Policy().Name()
}

// FleetShape reports the run's subtasks-per-epoch and tasks-per-client,
// the quantities the scenario engine's preemption narrative needs.
func (s *Sim) FleetShape() (subtasks, tasksPerClient int) {
	return s.r.cfg.Job.Subtasks, s.r.cfg.TasksPerClient
}

// Cordon quarantines (on=true) or releases (on=false) an active client:
// its work requests return nothing while in-flight results complete or
// expire normally. Releasing a cordoned client immediately lets it ask
// for work again. ok reports whether the client exists and is active.
func (s *Sim) Cordon(id string, on bool) bool {
	for _, c := range s.r.clients {
		if c.id == id && !c.departed {
			s.r.sched.SetCordoned(id, on)
			if !on {
				// An idle sim client only requests work when poked;
				// without this the released client would sleep forever.
				s.r.tryAssign(c)
			}
			return true
		}
	}
	return false
}

// SetByzantine switches an active client's adversarial behavior mid-run
// (behavior "" or "off" restores honesty). ok reports whether the client
// exists, is active, and the behavior is recognized.
func (s *Sim) SetByzantine(id, behavior string) bool {
	if behavior == "off" {
		behavior = ""
	}
	if behavior != "" && !boinc.ValidByzantine(behavior) {
		return false
	}
	for _, c := range s.r.clients {
		if c.id == id && !c.departed {
			c.byzantine = behavior
			return true
		}
	}
	return false
}

// ClientStatus assembles the per-client view the ops control plane
// serves: fleet-side shaping joined with the scheduler's live state.
func (s *Sim) ClientStatus() []ops.ClientStatus {
	byID := map[string]boinc.ClientSummary{}
	for _, sum := range s.r.sched.ClientSummaries() {
		byID[sum.ID] = sum
	}
	out := make([]ops.ClientStatus, 0, len(s.r.clients))
	for _, c := range s.r.clients {
		sum, seen := byID[c.id]
		cs := ops.ClientStatus{
			ID:          c.id,
			Instance:    c.inst.Name,
			Region:      string(c.inst.Region),
			Active:      !c.departed,
			Byzantine:   c.byzantine,
			SlowFactor:  c.slow,
			Slots:       c.slots,
			Reliability: 1,
		}
		if seen {
			cs.Cordoned = sum.Cordoned
			cs.Reliability = sum.Reliability
			cs.InFlight = sum.InFlight
			cs.CachedFiles = sum.CachedFiles
		}
		out = append(out, cs)
	}
	return out
}

// KnownClient reports whether a client id ever existed in this run,
// departed or not. The scenario engine uses it to fail fast on events
// that target ids no fleet ever contained.
func (s *Sim) KnownClient(id string) bool {
	for _, c := range s.r.clients {
		if c.id == id {
			return true
		}
	}
	return false
}
