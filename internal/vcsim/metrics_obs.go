package vcsim

import "vcdl/internal/obs"

// Simulator metric family names (the Observer-event bridge; the
// scheduler's vcdl_sched_* families come from boinc.MetricsSink).
const (
	// MetricAssimilations counts assimilated canonical results.
	MetricAssimilations = "vcdl_sim_assimilations_total"
	// MetricEpochs counts closed training epochs.
	MetricEpochs = "vcdl_sim_epochs_total"
	// MetricPreempts counts preempted subtask executions.
	MetricPreempts = "vcdl_sim_preempts_total"
	// MetricExpired counts results expired by timeout sweeps.
	MetricExpired = "vcdl_sim_expired_results_total"
	// MetricAssimQueue gauges the assimilation backlog on the parameter
	// servers after the latest assimilation.
	MetricAssimQueue = "vcdl_sim_assim_queue"
	// MetricAccuracy gauges the latest post-assimilation validation
	// accuracy.
	MetricAccuracy = "vcdl_sim_accuracy"
	// MetricVirtualHours gauges the run's virtual clock at the latest
	// observed event.
	MetricVirtualHours = "vcdl_sim_virtual_hours"
)

// metricsObserver bridges the simulator's Observer event stream into an
// obs.Registry so sim and real runs produce comparable metric
// snapshots. It is a passive observer like any other: it derives every
// value from the event payload and never touches the engine.
type metricsObserver struct {
	assims, epochs, preempts, expired *obs.Counter
	queue, accuracy, hours            *obs.Gauge
}

func newMetricsObserver(r *obs.Registry) *metricsObserver {
	return &metricsObserver{
		assims:   r.Counter(MetricAssimilations, "canonical results assimilated into the server copy"),
		epochs:   r.Counter(MetricEpochs, "training epochs closed"),
		preempts: r.Counter(MetricPreempts, "subtask executions lost to instance preemption"),
		expired:  r.Counter(MetricExpired, "results expired by deadline sweeps"),
		queue:    r.Gauge(MetricAssimQueue, "assimilation backlog after the latest assimilation"),
		accuracy: r.Gauge(MetricAccuracy, "latest post-assimilation validation accuracy"),
		hours:    r.Gauge(MetricVirtualHours, "virtual clock at the latest observed event, hours"),
	}
}

// OnAssimilate implements Observer.
func (m *metricsObserver) OnAssimilate(e AssimEvent) {
	m.assims.Inc()
	m.queue.Set(float64(e.Queue))
	m.accuracy.Set(e.Accuracy)
	m.hours.Set(e.Hours)
}

// OnEpoch implements Observer.
func (m *metricsObserver) OnEpoch(e EpochEvent) {
	m.epochs.Inc()
	m.hours.Set(e.Hours)
}

// OnPreempt implements Observer.
func (m *metricsObserver) OnPreempt(e PreemptEvent) {
	m.preempts.Inc()
	m.hours.Set(e.Hours)
}

// OnTimeout implements Observer.
func (m *metricsObserver) OnTimeout(e TimeoutEvent) {
	m.expired.Add(int64(e.Expired))
	m.hours.Set(e.Hours)
}

// OnFinish implements Observer.
func (m *metricsObserver) OnFinish(res *Result) {
	m.hours.Set(res.Hours)
}
