package vcsim

import (
	"testing"

	"vcdl/internal/opt"
)

// TestCalibrationProbe prints paper-scale dynamics. It is skipped in
// -short mode and exists to validate the shape calibration documented in
// EXPERIMENTS.md.
func TestCalibrationProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe skipped in -short mode")
	}
	s, err := NewPaperSetup(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(s.Config(5, 5, 2, opt.Constant{V: 0.95}))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Curve.Points {
		t.Logf("epoch %2d  %5.2fh  acc=%.3f [%.3f,%.3f]", p.Epoch, p.Hours, p.Value, p.Lo, p.Hi)
	}
	t.Logf("total %.2fh issued=%d", res.Hours, res.Issued)

	serialVal, _, err := SerialBaseline(s, s.Config(5, 5, 2, opt.Constant{V: 0.95}), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range serialVal.Points {
		t.Logf("serial epoch %2d  %5.2fh  val=%.3f", p.Epoch, p.Hours, p.Value)
	}
}
