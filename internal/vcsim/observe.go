package vcsim

import "vcdl/internal/ps"

// Observer receives the stream of notable events of one simulated run as
// they happen in virtual time. It turns progress reporting, CSV emission
// and scenario tracing into sinks attached to the run instead of post-hoc
// Result spelunking (DESIGN.md §6).
//
// Callbacks fire synchronously inside the single-threaded event loop, so
// implementations must not block and must not call back into the
// simulation. Within one run events arrive in virtual-time order from a
// single goroutine, but an observer shared by several specs of an
// exp.Sweep is called concurrently from all worker goroutines and must
// be safe for that. An observer never influences the run: with or
// without one, the same seed produces the same Result — that
// determinism contract is what makes parallel sweeps (internal/exp)
// safe to observe.
type Observer interface {
	// OnAssimilate fires after each canonical result is folded into the
	// server parameter copy.
	OnAssimilate(AssimEvent)
	// OnEpoch fires when all subtasks of an epoch have been assimilated
	// and the epoch summary is closed.
	OnEpoch(EpochEvent)
	// OnPreempt fires when a subtask execution is chosen for preemption
	// (the instance is reclaimed; the result will never upload).
	OnPreempt(PreemptEvent)
	// OnTimeout fires when a deadline sweep expires overdue results and
	// queues them for reissue.
	OnTimeout(TimeoutEvent)
	// OnFinish fires once, after the run completed and the Result is
	// fully assembled.
	OnFinish(*Result)
}

// AssimEvent describes one assimilation.
type AssimEvent struct {
	// Epoch is the training epoch the assimilated result belongs to.
	Epoch int
	// Hours is the virtual time of the assimilation.
	Hours float64
	// Accuracy is the post-assimilation validation accuracy.
	Accuracy float64
	// Queue is the assimilation backlog left on the parameter servers.
	Queue int
}

// EpochEvent describes one completed epoch.
type EpochEvent struct {
	// Hours is the virtual time the epoch closed.
	Hours float64
	// Summary aggregates the epoch's per-subtask accuracies.
	Summary ps.EpochSummary
}

// PreemptEvent describes one preempted subtask execution.
type PreemptEvent struct {
	// Client is the reclaimed instance.
	Client string
	// Epoch and Shard identify the lost subtask.
	Epoch, Shard int
	// Hours is the virtual time the execution started; the loss surfaces
	// at the subtask deadline, when the scheduler reissues the work.
	Hours float64
}

// TimeoutEvent describes one deadline sweep that expired work.
type TimeoutEvent struct {
	// Hours is the virtual time of the sweep.
	Hours float64
	// Expired is the number of overdue results marked for reissue.
	Expired int
}

// Observers fans events out to several observers in order.
type Observers []Observer

// OnAssimilate implements Observer.
func (os Observers) OnAssimilate(e AssimEvent) {
	for _, o := range os {
		o.OnAssimilate(e)
	}
}

// OnEpoch implements Observer.
func (os Observers) OnEpoch(e EpochEvent) {
	for _, o := range os {
		o.OnEpoch(e)
	}
}

// OnPreempt implements Observer.
func (os Observers) OnPreempt(e PreemptEvent) {
	for _, o := range os {
		o.OnPreempt(e)
	}
}

// OnTimeout implements Observer.
func (os Observers) OnTimeout(e TimeoutEvent) {
	for _, o := range os {
		o.OnTimeout(e)
	}
}

// OnFinish implements Observer.
func (os Observers) OnFinish(r *Result) {
	for _, o := range os {
		o.OnFinish(r)
	}
}

// ObserverFuncs adapts plain functions to the Observer interface; nil
// fields ignore their event.
type ObserverFuncs struct {
	Assimilate func(AssimEvent)
	Epoch      func(EpochEvent)
	Preempt    func(PreemptEvent)
	Timeout    func(TimeoutEvent)
	Finish     func(*Result)
}

// OnAssimilate implements Observer.
func (o ObserverFuncs) OnAssimilate(e AssimEvent) {
	if o.Assimilate != nil {
		o.Assimilate(e)
	}
}

// OnEpoch implements Observer.
func (o ObserverFuncs) OnEpoch(e EpochEvent) {
	if o.Epoch != nil {
		o.Epoch(e)
	}
}

// OnPreempt implements Observer.
func (o ObserverFuncs) OnPreempt(e PreemptEvent) {
	if o.Preempt != nil {
		o.Preempt(e)
	}
}

// OnTimeout implements Observer.
func (o ObserverFuncs) OnTimeout(e TimeoutEvent) {
	if o.Timeout != nil {
		o.Timeout(e)
	}
}

// OnFinish implements Observer.
func (o ObserverFuncs) OnFinish(r *Result) {
	if o.Finish != nil {
		o.Finish(r)
	}
}
