package vcsim

import (
	"testing"

	"vcdl/internal/opt"
)

// TestFig3ShapeProbe checks the Figure 3 orderings at reduced epochs
// (training time scales linearly in epochs, so shapes are preserved).
// Skipped in -short mode.
func TestFig3ShapeProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("fig3 probe skipped in -short mode")
	}
	s, err := NewPaperSetup(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	alpha := opt.Constant{V: 0.95}
	hours := map[string]float64{}
	for _, g := range []struct {
		label  string
		pn, cn int
	}{{"P1C3", 1, 3}, {"P3C3", 3, 3}, {"P5C5", 5, 5}} {
		for _, tn := range []int{2, 4, 8} {
			res, err := Run(s.Config(g.pn, g.cn, tn, alpha))
			if err != nil {
				t.Fatal(err)
			}
			key := g.label
			switch tn {
			case 2:
				key += "T2"
			case 4:
				key += "T4"
			case 8:
				key += "T8"
			}
			hours[key] = res.Hours
			t.Logf("%sT%d: %.3fh (40-epoch equivalent %.1fh)", g.label, tn, res.Hours, res.Hours*40/4)
		}
	}
	if !(hours["P1C3T4"] < hours["P1C3T2"]) {
		t.Errorf("want P1C3T4 < P1C3T2: %v vs %v", hours["P1C3T4"], hours["P1C3T2"])
	}
	if !(hours["P1C3T8"] > hours["P1C3T4"]) {
		t.Errorf("want P1C3T8 > P1C3T4: %v vs %v", hours["P1C3T8"], hours["P1C3T4"])
	}
	if !(hours["P3C3T8"] < hours["P1C3T8"]) {
		t.Errorf("want P3C3T8 < P1C3T8: %v vs %v", hours["P3C3T8"], hours["P1C3T8"])
	}
	// P5C5: the paper reports a mild rise T2→T4→T8; our model reproduces
	// the T4→T8 rise exactly and keeps T4 within 10% of T2 (documented
	// divergence, EXPERIMENTS.md).
	if !(hours["P5C5T8"] > hours["P5C5T4"]) {
		t.Errorf("want P5C5T8 > P5C5T4: %v vs %v", hours["P5C5T8"], hours["P5C5T4"])
	}
	if d := (hours["P5C5T2"] - hours["P5C5T4"]) / hours["P5C5T2"]; d > 0.10 {
		t.Errorf("P5C5T4 deviates from T2 by %.0f%%, want <= 10%%", d*100)
	}
	// P5C5T2 must beat every C3 configuration (the paper's overall
	// fastest family).
	for _, k := range []string{"P1C3T2", "P1C3T4", "P1C3T8", "P3C3T2", "P3C3T4", "P3C3T8"} {
		if hours["P5C5T2"] >= hours[k] {
			t.Errorf("P5C5T2 (%.2fh) not faster than %s (%.2fh)", hours["P5C5T2"], k, hours[k])
		}
	}
}
