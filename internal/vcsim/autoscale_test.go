package vcsim

import "testing"

// TestAutoScalePSRelievesBottleneck exercises the §III-D extension: a
// single configured PS under a T8 flood autoscales up and finishes faster
// than the fixed-size pool.
func TestAutoScalePSRelievesBottleneck(t *testing.T) {
	job, corpus := quickSetup(t)
	job.MaxEpochs = 2
	fixed := DefaultConfig(job, corpus, 1, 3, 8)
	fixed.AssimSeconds = 60
	rFixed, err := Run(fixed)
	if err != nil {
		t.Fatal(err)
	}
	auto := fixed
	auto.AutoScalePS = true
	auto.MaxPServers = 6
	rAuto, err := Run(auto)
	if err != nil {
		t.Fatal(err)
	}
	if rAuto.Hours >= rFixed.Hours {
		t.Fatalf("autoscaled run (%vh) not faster than fixed P1 (%vh)", rAuto.Hours, rFixed.Hours)
	}
	if rAuto.PSScaleUps == 0 {
		t.Fatal("autoscaler never scaled up under load")
	}
	if rAuto.MaxPSUsed <= 1 || rAuto.MaxPSUsed > 6 {
		t.Fatalf("MaxPSUsed = %d", rAuto.MaxPSUsed)
	}
	// Accuracy bookkeeping must be unaffected.
	if len(rAuto.Curve.Points) != 2 {
		t.Fatalf("curve points = %d", len(rAuto.Curve.Points))
	}
}

// TestAutoScaleRespectsCap keeps the pool within MaxPServers.
func TestAutoScaleRespectsCap(t *testing.T) {
	job, corpus := quickSetup(t)
	job.MaxEpochs = 2
	cfg := DefaultConfig(job, corpus, 1, 3, 8)
	cfg.AssimSeconds = 120
	cfg.AutoScalePS = true
	cfg.MaxPServers = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxPSUsed > 2 {
		t.Fatalf("MaxPSUsed = %d exceeds cap 2", res.MaxPSUsed)
	}
}

// TestAutoScaleOffByDefault ensures the default path never scales.
func TestAutoScaleOffByDefault(t *testing.T) {
	job, corpus := quickSetup(t)
	job.MaxEpochs = 2
	cfg := DefaultConfig(job, corpus, 2, 3, 4)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PSScaleUps != 0 || res.PSScaleDowns != 0 {
		t.Fatal("autoscaler acted while disabled")
	}
	if res.MaxPSUsed != 2 {
		t.Fatalf("MaxPSUsed = %d, want configured 2", res.MaxPSUsed)
	}
}
