package vcsim

import (
	"math"
	"testing"

	"vcdl/internal/baseline"
	"vcdl/internal/cloud"
	"vcdl/internal/core"
	"vcdl/internal/data"
	"vcdl/internal/nn"
	"vcdl/internal/opt"
	"vcdl/internal/store"
)

// quickSetup builds a small, fast experiment: 10 subtasks, 4 epochs.
func quickSetup(t *testing.T) (core.JobConfig, *data.Corpus) {
	t.Helper()
	dc := data.DefaultSynthConfig()
	dc.NTrain, dc.NVal, dc.NTest = 500, 200, 200
	dc.NoiseStd = 0.4
	corpus, err := data.GenerateSynth(dc)
	if err != nil {
		t.Fatal(err)
	}
	job := core.DefaultJobConfig(nn.SmallCNNBuilder(3, 8, 8, 10))
	job.Subtasks = 10
	job.MaxEpochs = 4
	job.BatchSize = 25
	job.LocalPasses = 2
	job.LearningRate = 0.01
	job.ValSubset = 100
	return job, corpus
}

func TestRunBasic(t *testing.T) {
	job, corpus := quickSetup(t)
	cfg := DefaultConfig(job, corpus, 1, 3, 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve.Points) != job.MaxEpochs {
		t.Fatalf("curve points = %d, want %d", len(res.Curve.Points), job.MaxEpochs)
	}
	if res.Hours <= 0 {
		t.Fatalf("Hours = %v", res.Hours)
	}
	if res.Issued != job.Subtasks*job.MaxEpochs {
		t.Fatalf("Issued = %d, want %d", res.Issued, job.Subtasks*job.MaxEpochs)
	}
	if res.Timeouts != 0 {
		t.Fatalf("unexpected timeouts: %d", res.Timeouts)
	}
	// Time must advance monotonically across epoch points.
	prev := 0.0
	for _, p := range res.Curve.Points {
		if p.Hours <= prev {
			t.Fatalf("non-monotone epoch times: %v", res.Curve.Points)
		}
		prev = p.Hours
	}
	if res.BytesDownloaded == 0 || res.BytesUploaded == 0 {
		t.Fatal("no traffic recorded")
	}
	if res.CostStandardUSD <= res.CostPreemptibleUSD {
		t.Fatal("standard cost must exceed preemptible cost")
	}
}

func TestRunDeterministic(t *testing.T) {
	job, corpus := quickSetup(t)
	cfg := DefaultConfig(job, corpus, 2, 3, 2)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hours != b.Hours {
		t.Fatalf("hours differ: %v vs %v", a.Hours, b.Hours)
	}
	for i := range a.Curve.Points {
		if a.Curve.Points[i].Value != b.Curve.Points[i].Value ||
			a.Curve.Points[i].Hours != b.Curve.Points[i].Hours {
			t.Fatalf("curve differs at %d", i)
		}
	}
}

func TestRunLearns(t *testing.T) {
	job, corpus := quickSetup(t)
	job.MaxEpochs = 6
	cfg := DefaultConfig(job, corpus, 2, 3, 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Curve.FinalValue() < 0.3 {
		t.Fatalf("simulated run failed to learn: final %v", res.Curve.FinalValue())
	}
	first := res.Curve.Points[0].Value
	if res.Curve.FinalValue() <= first {
		t.Fatalf("no improvement: %v -> %v", first, res.Curve.FinalValue())
	}
}

func TestPreemptionCausesTimeoutsAndReissues(t *testing.T) {
	job, corpus := quickSetup(t)
	job.MaxEpochs = 3
	cfg := DefaultConfig(job, corpus, 2, 3, 2)
	cfg.PreemptProb = 0.3
	cfg.TimeoutSeconds = 400
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeouts == 0 || res.Reissued == 0 {
		t.Fatalf("preemption produced no timeouts/reissues: %+v", res)
	}
	if len(res.Curve.Points) != 3 {
		t.Fatalf("training did not survive preemption: %d epochs", len(res.Curve.Points))
	}
	// Every epoch still assimilates exactly Subtasks results.
	for _, e := range res.Epochs {
		if e.Samples != job.Subtasks {
			t.Fatalf("epoch %d assimilated %d results", e.Epoch, e.Samples)
		}
	}
}

func TestPreemptionSlowsTraining(t *testing.T) {
	job, corpus := quickSetup(t)
	job.MaxEpochs = 3
	base := DefaultConfig(job, corpus, 2, 3, 2)
	base.TimeoutSeconds = 400
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	preempted := base
	preempted.PreemptProb = 0.25
	rough, err := Run(preempted)
	if err != nil {
		t.Fatal(err)
	}
	if rough.Hours <= clean.Hours {
		t.Fatalf("preemption did not increase training time: %v vs %v", rough.Hours, clean.Hours)
	}
}

func TestMorePServersReduceTimeWhenServerBound(t *testing.T) {
	job, corpus := quickSetup(t)
	job.MaxEpochs = 2
	// T8 on 3 clients floods a single PS (the Figure 3 imbalance); a
	// heavier assimilation cost makes the bottleneck visible at this
	// small subtask count.
	p1 := DefaultConfig(job, corpus, 1, 3, 8)
	p1.AssimSeconds = 60
	r1, err := Run(p1)
	if err != nil {
		t.Fatal(err)
	}
	p3 := DefaultConfig(job, corpus, 3, 3, 8)
	p3.AssimSeconds = 60
	r3, err := Run(p3)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Hours >= r1.Hours {
		t.Fatalf("P3 (%vh) not faster than P1 (%vh) at T8", r3.Hours, r1.Hours)
	}
}

func TestStickyFilesReduceTraffic(t *testing.T) {
	job, corpus := quickSetup(t)
	job.MaxEpochs = 3
	cfg := DefaultConfig(job, corpus, 1, 3, 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Without caching, every subtask would download model+params+shard.
	perSubtaskAvg := res.BytesDownloaded / int64(res.Issued)
	noCacheEstimate := int64(res.BytesDownloaded) // placeholder to compute below
	_ = noCacheEstimate
	// Each subtask uploads one params blob; downloads must be well below
	// uploads+params·subtasks if shards are cached across epochs.
	paramsTotal := int64(res.Issued) * int64(wireRawSizeForTest(job))
	if res.BytesDownloaded >= paramsTotal+res.BytesUploaded {
		t.Fatalf("sticky cache ineffective: dl=%d", res.BytesDownloaded)
	}
	_ = perSubtaskAvg
}

// wireRawSizeForTest mirrors the params sizing in vcsim.
func wireRawSizeForTest(job core.JobConfig) int {
	net := nn.NewNetwork(job.Builder)
	return 8 * net.ParamCount()
}

func TestSynchronousEASGDRule(t *testing.T) {
	job, corpus := quickSetup(t)
	job.MaxEpochs = 3
	cfg := DefaultConfig(job, corpus, 2, 3, 2)
	cfg.Rule = baseline.EASGD{Beta: 0.02}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve.Points) != 3 {
		t.Fatalf("EASGD run produced %d epochs", len(res.Curve.Points))
	}
	// Synchronous merges collapse the per-epoch spread to a point.
	for _, p := range res.Curve.Points {
		if p.Lo != p.Value || p.Hi != p.Value {
			t.Fatalf("synchronous rule should have zero spread: %+v", p)
		}
	}
}

func TestDownpourRuleRuns(t *testing.T) {
	job, corpus := quickSetup(t)
	job.MaxEpochs = 2
	cfg := DefaultConfig(job, corpus, 1, 3, 2)
	cfg.Rule = baseline.Downpour{Scale: 1.0 / float64(job.Subtasks)}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve.Points) != 2 {
		t.Fatalf("Downpour run produced %d epochs", len(res.Curve.Points))
	}
}

func TestStrongStoreBackend(t *testing.T) {
	job, corpus := quickSetup(t)
	job.MaxEpochs = 2
	cfg := DefaultConfig(job, corpus, 2, 3, 2)
	cfg.Store = store.NewStrong()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StoreStats.Updates == 0 {
		t.Fatal("strong store saw no updates")
	}
	if res.StoreStats.LostUpdates != 0 {
		t.Fatal("strong store must not lose updates")
	}
}

func TestRecordTestCurve(t *testing.T) {
	job, corpus := quickSetup(t)
	job.MaxEpochs = 2
	cfg := DefaultConfig(job, corpus, 1, 2, 2)
	cfg.RecordTest = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TestCurve.Points) != 2 {
		t.Fatalf("test curve has %d points", len(res.TestCurve.Points))
	}
	for _, p := range res.TestCurve.Points {
		if p.Value < 0 || p.Value > 1 {
			t.Fatalf("test accuracy %v out of range", p.Value)
		}
	}
}

func TestTargetAccuracyStopsEarly(t *testing.T) {
	job, corpus := quickSetup(t)
	job.MaxEpochs = 8
	job.TargetAccuracy = 0.15
	cfg := DefaultConfig(job, corpus, 1, 3, 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve.Points) >= 8 {
		t.Fatal("run ignored the accuracy target")
	}
}

func TestContentionModel(t *testing.T) {
	cfg := Config{ThreadsPerTask: 4, ContentionExp: 0.72}
	inst := cloud.ClientA // 8 vCPU
	if got := cfg.contention(1, inst); got != 1 {
		t.Fatalf("contention(1) = %v", got)
	}
	if got := cfg.contention(2, inst); got != 1 {
		t.Fatalf("contention(2) = %v, want 1 (8 threads on 8 vCPUs)", got)
	}
	c4 := cfg.contention(4, inst)
	c8 := cfg.contention(8, inst)
	if !(c4 > 1 && c8 > c4) {
		t.Fatalf("contention not increasing: c4=%v c8=%v", c4, c8)
	}
	if math.Abs(c4-math.Pow(2, 0.72)) > 1e-12 {
		t.Fatalf("c4 = %v", c4)
	}
	// A 16-vCPU instance tolerates more simultaneous subtasks.
	if cfg.contention(4, cloud.ClientD) >= c4 {
		t.Fatal("16-vCPU instance should contend less at T4")
	}
}

func TestVarAlphaSchedule(t *testing.T) {
	job, corpus := quickSetup(t)
	job.MaxEpochs = 3
	job.Alpha = opt.EpochFraction{}
	cfg := DefaultConfig(job, corpus, 2, 3, 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve.Points) != 3 {
		t.Fatalf("Var run produced %d epochs", len(res.Curve.Points))
	}
}

func TestInvalidJobRejected(t *testing.T) {
	job, corpus := quickSetup(t)
	job.Subtasks = 0
	cfg := DefaultConfig(job, corpus, 1, 1, 1)
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid job must be rejected")
	}
}

func TestSerialSecondsPerEpoch(t *testing.T) {
	job, corpus := quickSetup(t)
	cfg := DefaultConfig(job, corpus, 1, 1, 1)
	got := SerialSecondsPerEpoch(cfg)
	// 10 subtasks × 144s × (2.5/2.3) / 2 ≈ 782s.
	want := 10 * 144 * (2.5 / 2.3) / 2
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("SerialSecondsPerEpoch = %v, want %v", got, want)
	}
}
