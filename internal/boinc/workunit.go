// Package boinc implements the volunteer-computing middleware substrate the
// paper builds on (§II-C, §III): workunit/result lifecycle tracking, a
// scheduler with timeout-based reissue, client-reliability tracking,
// sticky-file affinity and pluggable assignment policies (Policy, see
// DESIGN.md §7), a work-generator/validator/assimilator pipeline, and a
// real HTTP server/client pair. The lifecycle and scheduling mechanics
// are pure (no I/O, explicit clock) so the same code drives both the
// networked deployment and the discrete-event simulator.
//
// Two features exist for the real-mode scenario driver (DESIGN.md §9):
// per-client shaping controls (ClientControl) that the server piggybacks
// on scheduler replies — execution pacing, straggler slowdown,
// preemption, RTT injection, graceful detach — so fault injection
// reaches goroutine and OS-process clients alike through the HTTP
// protocol; and the scheduler's per-policy assignment mix
// (AssignmentMix), the fidelity report's view of which policy issued
// what share of the work across hot swaps.
package boinc

import "fmt"

// WorkunitStatus is the lifecycle state of a workunit.
type WorkunitStatus int

// Workunit lifecycle states.
const (
	// WUPending means the workunit is waiting to be assigned.
	WUPending WorkunitStatus = iota
	// WUInProgress means at least one result is outstanding.
	WUInProgress
	// WUDone means a valid canonical result has been assimilated.
	WUDone
	// WUFailed means the error budget is exhausted.
	WUFailed
)

// String renders the status for logs.
func (s WorkunitStatus) String() string {
	switch s {
	case WUPending:
		return "pending"
	case WUInProgress:
		return "in-progress"
	case WUDone:
		return "done"
	case WUFailed:
		return "failed"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Workunit is one unit of distributable work — for VCDL, one training
// subtask (a data shard plus the current server parameter copy).
type Workunit struct {
	ID   int64
	Name string
	// App names the application that must execute this workunit. A BOINC
	// server hosts many applications (§II-C); clients register an App
	// implementation per name. Empty means the client's default app.
	App string
	// InputFiles names the files the client must download (model
	// architecture, parameter copy, data shard). Sticky files among them
	// are cached client-side.
	InputFiles []string
	// BlobFiles maps input file names to content digests for files also
	// published on the blob data plane (/blob/{digest}). Blob-enabled
	// clients fetch those by digest — resumable, verified, digest-cached
	// — instead of by name from /download; others ignore the map.
	BlobFiles map[string]string
	// Payload is opaque application data shipped with the assignment.
	Payload []byte
	// Timeout is the per-result completion deadline in seconds; results
	// not returned in time are reissued to another client (§III-B).
	Timeout float64
	// MaxErrors is the error/timeout budget before the workunit is
	// declared failed. Zero means the scheduler default.
	MaxErrors int
	// Replication is the number of concurrent copies to issue
	// (computational redundancy, §II-C). Zero means 1.
	Replication int
	// Quorum is the number of valid results required before the workunit
	// is considered done (BOINC's redundancy-based verification, §II-C).
	// Zero means 1; Replication is raised to at least Quorum.
	Quorum int

	status WorkunitStatus
	errors int
	// active counts outstanding results.
	active int
	// valid counts accepted results toward the quorum.
	valid int
	// queuedAt is when the workunit last became assignable (creation or
	// reissue), in the scheduler's time base; assignment latency is
	// measured from here.
	queuedAt float64
}

// ValidResults returns how many results have been accepted so far.
func (w *Workunit) ValidResults() int { return w.valid }

// Status returns the workunit's lifecycle state.
func (w *Workunit) Status() WorkunitStatus { return w.status }

// Errors returns how many results for this workunit timed out or failed.
func (w *Workunit) Errors() int { return w.errors }

// ResultStatus is the lifecycle state of one issued result.
type ResultStatus int

// Result lifecycle states.
const (
	// ResInProgress means the result is on a client.
	ResInProgress ResultStatus = iota
	// ResSuccess means the result returned and validated.
	ResSuccess
	// ResTimedOut means the deadline passed without an upload.
	ResTimedOut
	// ResError means the client reported failure or validation rejected
	// the output.
	ResError
	// ResAbandoned means the workunit completed via another replica first.
	ResAbandoned
)

// String renders the status for logs.
func (s ResultStatus) String() string {
	switch s {
	case ResInProgress:
		return "in-progress"
	case ResSuccess:
		return "success"
	case ResTimedOut:
		return "timed-out"
	case ResError:
		return "error"
	case ResAbandoned:
		return "abandoned"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Result is one issued instance of a workunit on one client.
type Result struct {
	ID       int64
	WUID     int64
	ClientID string
	SentAt   float64
	Deadline float64
	Status   ResultStatus
}
