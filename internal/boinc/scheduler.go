package boinc

import (
	"fmt"
	"sort"
)

// SchedulerConfig tunes the scheduling mechanics. The assignment
// preference itself is a Policy (see policy.go); the fields here are
// invariants the scheduler enforces around whatever the policy picks.
type SchedulerConfig struct {
	// DefaultTimeout applies to workunits that don't set one (seconds).
	DefaultTimeout float64
	// DefaultMaxErrors is the per-workunit error budget.
	DefaultMaxErrors int
	// ReliabilityFloor gates retried workunits: a workunit that has
	// already timed out or failed once is only given to clients whose
	// reliability score is at least this value, unless no such client is
	// asking ("the scheduler can track how reliably clients return results
	// and assign subtasks to more reliable clients", §III-B).
	ReliabilityFloor float64
	// StickyAffinity biases assignment toward clients that already cache a
	// workunit's input files (the BOINC sticky-file feature, §III-B).
	StickyAffinity bool
	// Seed is exposed to policies through PolicyView.Seed so seeded
	// stochastic policies replay deterministically with the run.
	Seed int64
	// Shards stripes the live server's scheduler state across this many
	// independently locked shards (see ShardedScheduler); 0 or 1 keeps
	// the single-shard behaviour, and a bare Scheduler (the simulator's
	// engine) ignores the field entirely.
	Shards int
}

// DefaultSchedulerConfig mirrors the experiments: 5-minute timeout,
// 8-error budget, reliability gating and sticky files on.
func DefaultSchedulerConfig() SchedulerConfig {
	return SchedulerConfig{
		DefaultTimeout:   300,
		DefaultMaxErrors: 8,
		ReliabilityFloor: 0.5,
		StickyAffinity:   true,
	}
}

// clientState is the scheduler's view of one client.
type clientState struct {
	id          string
	reliability float64
	cached      map[string]bool
	inFlight    int
	// gone marks a client that left the project (volunteer churn). Gone
	// clients no longer count as reliable-and-available, so retried
	// workunits are not reserved for hosts that will never ask again.
	gone bool
	// cordoned stops new assignments to the client without touching its
	// in-flight work (the ops plane's reversible quarantine: the host
	// stays attached and keeps uploading, it just gets nothing new).
	cordoned bool
}

// Assignment is work handed to a client.
type Assignment struct {
	ResultID   int64
	WUID       int64
	Name       string
	App        string
	InputFiles []string
	// Blobs maps input file names to blob digests (see
	// Workunit.BlobFiles); empty when the data plane is off.
	Blobs    map[string]string `json:"Blobs,omitempty"`
	Payload  []byte
	Deadline float64
}

// Scheduler tracks workunits and results and implements the BOINC
// scheduling mechanics; the assignment preference is delegated to a
// pluggable Policy. It is not goroutine-safe; the HTTP server serializes
// access and the simulator is single-threaded by construction.
type Scheduler struct {
	cfg    SchedulerConfig
	policy Policy

	// idOffset/idStep stride the workunit and result ID spaces so a
	// striped deployment (ShardedScheduler) can give each shard a
	// disjoint residue class: shard i of n allocates IDs ≡ i (mod n),
	// which is what lets uploads route back to the owning shard from the
	// result ID alone. A standalone scheduler uses offset 0, step 1 and
	// produces the historical 1,2,3,… sequence unchanged.
	idOffset, idStep int64

	nextWU, nextRes int64
	wus             map[int64]*Workunit
	results         map[int64]*Result
	pending         []int64 // FIFO of workunit IDs awaiting (re)issue
	clients         map[string]*clientState
	// assignedTo tracks which clients ever received a copy of a
	// replicated workunit (BOINC's one-result-per-user rule, so replicas
	// verify each other across machines).
	assignedTo map[int64]map[string]bool

	// Per-policy index over the pending queue, maintained incrementally
	// so the per-request hot path allocates nothing transient:
	// queued counts pending copies per workunit (O(1) queuedCopies, and
	// completions skip the queue rebuild when no replicas are queued);
	// eligible stamps workunits with the request counter that admitted
	// them, doubling as the per-round dedup set and the validity check
	// for policy picks; candBuf is the reused candidate scratch.
	queued   map[int64]int
	eligible map[int64]int64
	candBuf  []Candidate
	requests int64
	// issuedBuf and eventBuf are per-request scratch for the issued-ID
	// list and the deferred event batch; both are consumed before
	// RequestWork returns, so reuse is safe and the hot path stops
	// growing fresh slices every call.
	issuedBuf []int64
	eventBuf  []SchedEvent

	// sink receives lifecycle events (nil = no observation). Every event
	// is derived from state already at hand plus the caller-supplied
	// clock, so attaching a sink cannot perturb a simulation.
	sink SchedSink
	// lastNow is the most recent time a clocked entry point saw; it
	// stamps events from entry points without a time parameter
	// (AddWorkunit) and the queue times of reissues.
	lastNow float64
	// inflight counts outstanding results incrementally so queue-depth
	// reporting is O(1) instead of a scan over every result ever issued.
	inflight int
	// expireLB is a lower bound on the earliest outstanding result
	// deadline (valid when expireLBOK). ExpireTimeouts skips its scan
	// entirely while now < expireLB — a scan then could not find anything
	// — which turns the per-request sweep from O(results) into O(1) on
	// the hot path. The bound is maintained conservatively: issuing a
	// result lowers it, completions leave it alone (a stale-low bound
	// only causes one extra scan, never a missed expiry), and each real
	// scan recomputes it exactly.
	expireLB   float64
	expireLBOK bool

	// Counters for reports and tests. Invalid counts results rejected by
	// validation (or reported failed by the client); QuorumRetries counts
	// copies re-enqueued because an earlier result failed, timed out, or
	// a replica had to be replaced to still reach quorum — together the
	// scheduler-side cost of adversarial and flaky hosts.
	Issued, Reissued, Timeouts, Failures, Completions int
	Invalid, QuorumRetries                            int
	// assignMix counts assignments grouped by the policy that made them,
	// so runs with mid-flight policy swaps can report which policy issued
	// what share of the work (the fidelity report's assignment mix).
	assignMix map[string]int
}

// NewScheduler creates a scheduler with the given mechanics config and
// the default paper policy.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 300
	}
	if cfg.DefaultMaxErrors <= 0 {
		cfg.DefaultMaxErrors = 8
	}
	return &Scheduler{
		cfg:        cfg,
		idStep:     1,
		policy:     paperPolicy(),
		wus:        make(map[int64]*Workunit),
		results:    make(map[int64]*Result),
		clients:    make(map[string]*clientState),
		assignedTo: make(map[int64]map[string]bool),
		queued:     make(map[int64]int),
		eligible:   make(map[int64]int64),
		assignMix:  make(map[string]int),
	}
}

// setStripe switches the scheduler onto the (offset, step) ID residue
// class: subsequent workunit and result IDs are offset+step, offset+2·step,
// …, all ≡ offset (mod step). Must be called before any IDs are issued;
// ShardedScheduler uses it at construction.
func (s *Scheduler) setStripe(offset, step int64) {
	if step < 1 {
		step = 1
	}
	s.idOffset, s.idStep = offset, step
	s.nextWU, s.nextRes = offset, offset
}

// SetSink installs the lifecycle event sink (nil disables observation).
func (s *Scheduler) SetSink(sink SchedSink) { s.sink = sink }

// Sink returns the installed lifecycle event sink, for composition.
func (s *Scheduler) Sink() SchedSink { return s.sink }

// AddSink composes an additional sink with whatever is installed.
func (s *Scheduler) AddSink(sink SchedSink) { s.sink = appendSink(s.sink, sink) }

// observe emits one lifecycle event, stamping the queue depths.
func (s *Scheduler) observe(e SchedEvent) {
	if s.sink == nil {
		return
	}
	e.Pending = len(s.pending)
	e.InFlight = s.inflight
	s.sink.OnSchedEvent(e)
}

// AssignmentMix returns a copy of the per-policy assignment counts.
func (s *Scheduler) AssignmentMix() map[string]int {
	mix := make(map[string]int, len(s.assignMix))
	for k, v := range s.assignMix {
		mix[k] = v
	}
	return mix
}

// SetPolicy hot-swaps the assignment policy; nil restores the default
// paper policy. Outstanding results are unaffected — only future
// RequestWork calls decide differently.
func (s *Scheduler) SetPolicy(p Policy) {
	if p == nil {
		p = paperPolicy()
	}
	s.policy = p
}

// Policy returns the active assignment policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// SetDefaultTimeout hot-changes the deadline applied to workunits added
// from now on (already-issued results keep the deadline they were sent
// with, like a real BOINC project reconfiguration).
func (s *Scheduler) SetDefaultTimeout(seconds float64) {
	if seconds > 0 {
		s.cfg.DefaultTimeout = seconds
	}
}

// RetimePending applies a new timeout to every workunit that has not yet
// reached a terminal state, so future (re)issues of outstanding work use
// the new deadline. Already-issued results keep the deadline they were
// sent with.
func (s *Scheduler) RetimePending(seconds float64) {
	if seconds <= 0 {
		return
	}
	for _, wu := range s.wus {
		if wu.status != WUDone && wu.status != WUFailed {
			wu.Timeout = seconds
		}
	}
}

// SetReliabilityFloor hot-changes the reliability gate for retried
// workunits. Values outside [0,1] are clamped.
func (s *Scheduler) SetReliabilityFloor(floor float64) {
	if floor < 0 {
		floor = 0
	}
	if floor > 1 {
		floor = 1
	}
	s.cfg.ReliabilityFloor = floor
}

// Config returns the scheduler's current policy (hot changes included).
func (s *Scheduler) Config() SchedulerConfig { return s.cfg }

// AddWorkunit registers a new workunit and queues it for assignment. It
// returns the assigned ID.
func (s *Scheduler) AddWorkunit(wu Workunit) int64 {
	s.nextWU += s.idStep
	wu.ID = s.nextWU
	if wu.Timeout <= 0 {
		wu.Timeout = s.cfg.DefaultTimeout
	}
	if wu.MaxErrors <= 0 {
		wu.MaxErrors = s.cfg.DefaultMaxErrors
	}
	if wu.Quorum <= 0 {
		wu.Quorum = 1
	}
	if wu.Replication < wu.Quorum {
		wu.Replication = wu.Quorum
	}
	wu.status = WUPending
	w := wu
	// Stamped with the last clocked entry point's time: AddWorkunit has
	// no clock parameter of its own, and the work generator runs inside
	// the same scheduling turn in both engines.
	w.queuedAt = s.lastNow
	s.wus[wu.ID] = &w
	for i := 0; i < wu.Replication; i++ {
		s.enqueue(wu.ID)
	}
	s.observe(SchedEvent{Kind: EvCreated, T: s.lastNow, WUID: wu.ID, WUName: wu.Name})
	return wu.ID
}

// enqueue appends one pending copy of a workunit, keeping the copy
// count index in step.
func (s *Scheduler) enqueue(id int64) {
	s.pending = append(s.pending, id)
	s.queued[id]++
}

// Workunit returns the tracked workunit by ID, or nil.
func (s *Scheduler) Workunit(id int64) *Workunit { return s.wus[id] }

// Result returns the tracked result by ID, or nil.
func (s *Scheduler) Result(id int64) *Result { return s.results[id] }

// client returns (creating if needed) the state of a client. Only
// operations a client itself initiates (requesting work, caching files)
// may create state; read-only queries go through peek.
func (s *Scheduler) client(id string) *clientState {
	c, ok := s.clients[id]
	if !ok {
		c = &clientState{id: id, reliability: 1, cached: make(map[string]bool)}
		s.clients[id] = c
	}
	return c
}

// peek returns the state of a known client, or nil. Unlike client it
// never registers anything: a lookup must not grow the client table.
func (s *Scheduler) peek(id string) *clientState { return s.clients[id] }

// Reliability returns the reliability score of a client (1.0 for unknown
// clients). It is a pure query: asking about a client the scheduler has
// never seen does not register it.
func (s *Scheduler) Reliability(clientID string) float64 {
	if c := s.peek(clientID); c != nil {
		return c.reliability
	}
	return 1
}

// NoteCached records that a client holds a sticky file locally.
func (s *Scheduler) NoteCached(clientID, file string) {
	s.client(clientID).cached[file] = true
}

// cacheScore counts how many of the workunit's input files the client has.
func cacheScore(c *clientState, wu *Workunit) int {
	n := 0
	for _, f := range wu.InputFiles {
		if c.cached[f] {
			n++
		}
	}
	return n
}

// buildView snapshots the workunits the client may legally receive
// right now: one candidate per pending workunit, minus terminal states,
// minus replicas the client already holds a copy of, minus retries
// reserved for reliable clients. The view reuses the scheduler's
// candidate scratch buffer and is only valid until the next request.
func (s *Scheduler) buildView(c *clientState, now float64) PolicyView {
	cands := s.candBuf[:0]
	// hasReliableClient is O(clients); resolve it at most once per
	// request instead of once per gated candidate.
	reliableKnown, reliableAny := false, false
	for pos, id := range s.pending {
		wu := s.wus[id]
		if wu == nil || wu.status == WUDone || wu.status == WUFailed {
			continue
		}
		if s.eligible[id] == s.requests {
			continue // one copy of a workunit per request round
		}
		if wu.Replication > 1 && s.assignedTo[id][c.id] {
			continue // replicas must verify each other across clients
		}
		if wu.errors > 0 && c.reliability < s.cfg.ReliabilityFloor {
			if !reliableKnown {
				reliableKnown, reliableAny = true, s.hasReliableClient()
			}
			if reliableAny {
				continue // reserve retries for reliable clients when any exist
			}
		}
		s.eligible[id] = s.requests
		cands = append(cands, Candidate{
			WUID:       id,
			Pos:        pos,
			CacheScore: cacheScore(c, wu),
			Errors:     wu.errors,
			Timeout:    wu.Timeout,
		})
	}
	s.candBuf = cands
	return PolicyView{
		Now:              now,
		Seed:             s.cfg.Seed,
		Request:          s.requests,
		Sticky:           s.cfg.StickyAffinity,
		ReliabilityFloor: s.cfg.ReliabilityFloor,
		Candidates:       cands,
	}
}

// RequestWork assigns up to max workunits to the client at virtual time
// now. The active Policy orders the eligible candidates (the default
// paper policy: workunits whose files the client caches first, then
// FIFO; retried workunits gated on client reliability); RequestWork
// itself is mechanics — it builds the candidate view, lets the policy
// choose, and enforces the invariants no policy may break: only
// eligible workunits are issued, each at most once per round and at
// most max per request.
func (s *Scheduler) RequestWork(clientID string, now float64, max int) []Assignment {
	c := s.client(clientID)
	// A client asking for work is present by definition: a volunteer that
	// left (DropClient) and rejoined counts as reliable-and-available
	// again for retry gating.
	c.gone = false
	if c.cordoned || max <= 0 {
		return nil
	}
	s.lastNow = now
	s.requests++
	view := s.buildView(c, now)
	if len(view.Candidates) == 0 {
		return nil
	}
	picks := s.policy.Select(view, ClientInfo{ID: c.id, Reliability: c.reliability, InFlight: c.inFlight}, max)

	want := len(picks)
	if max < want {
		want = max
	}
	out := make([]Assignment, 0, want) // escapes to the caller; sized once
	issued := s.issuedBuf[:0]
	events := s.eventBuf[:0] // emitted after the queue is settled
	for _, id := range picks {
		if len(out) >= max {
			break // policy over-selected; hard-cap the batch
		}
		if s.eligible[id] != s.requests {
			continue // not an eligible candidate, or a duplicate pick
		}
		s.eligible[id] = 0 // consumed this round
		wu := s.wus[id]
		// Cache hits must be read before the sticky loop below marks the
		// assigned files as cached.
		hits := cacheScore(c, wu)
		s.nextRes += s.idStep
		res := &Result{
			ID:       s.nextRes,
			WUID:     wu.ID,
			ClientID: clientID,
			SentAt:   now,
			Deadline: now + wu.Timeout,
			Status:   ResInProgress,
		}
		s.results[res.ID] = res
		if !s.expireLBOK || res.Deadline < s.expireLB {
			s.expireLB, s.expireLBOK = res.Deadline, true
		}
		wu.active++
		wu.status = WUInProgress
		c.inFlight++
		s.inflight++
		s.Issued++
		// The one-result-per-user index only matters for replicated
		// workunits (buildView consults it under the same guard), so
		// singleton workunits — the common case — never pay the map.
		if wu.Replication > 1 {
			if s.assignedTo[wu.ID] == nil {
				s.assignedTo[wu.ID] = make(map[string]bool)
			}
			s.assignedTo[wu.ID][clientID] = true
		}
		out = append(out, Assignment{
			ResultID: res.ID,
			WUID:     wu.ID,
			Name:     wu.Name,
			App:      wu.App,
			// Shared with the workunit, not copied: assignments are
			// read-only download descriptors and workunit input lists
			// never mutate after AddWorkunit.
			InputFiles: wu.InputFiles,
			Blobs:      wu.BlobFiles,
			Payload:    wu.Payload,
			Deadline:   res.Deadline,
		})
		issued = append(issued, id)
		if s.sink != nil {
			events = append(events, SchedEvent{
				Kind: EvAssigned, T: now, WUID: wu.ID, ResultID: res.ID,
				Client: clientID, Wait: now - wu.queuedAt,
				CacheHits: hits, CacheFiles: len(wu.InputFiles),
			})
		}
		// Sticky files: the client will cache the inputs it downloads.
		if s.cfg.StickyAffinity {
			for _, f := range wu.InputFiles {
				c.cached[f] = true
			}
		}
	}
	s.dequeueFirst(issued)
	s.issuedBuf = issued[:0]
	if len(out) > 0 {
		s.assignMix[s.policy.Name()] += len(out)
	}
	for _, e := range events {
		s.observe(e)
	}
	s.eventBuf = events[:0]
	return out
}

// dequeueFirst removes the first queued copy of each given workunit
// from the pending FIFO (the copy a candidate's Pos pointed at).
func (s *Scheduler) dequeueFirst(ids []int64) {
	if len(ids) == 0 {
		return
	}
	remaining := ids
	kept := s.pending[:0]
	for _, id := range s.pending {
		removed := false
		if len(remaining) > 0 {
			for i, want := range remaining {
				if want == id {
					remaining = append(remaining[:i], remaining[i+1:]...)
					s.queued[id]--
					removed = true
					break
				}
			}
		}
		if !removed {
			kept = append(kept, id)
		}
	}
	s.pending = kept
}

// queuedCopies counts pending-queue entries for a workunit.
func (s *Scheduler) queuedCopies(id int64) int { return s.queued[id] }

// DropClient marks a client as gone from the project. Its in-flight
// results still expire normally; it just stops counting as an available
// reliable host for retry gating.
func (s *Scheduler) DropClient(clientID string) {
	s.client(clientID).gone = true
}

// SetCordoned quarantines (or releases) a client: a cordoned client's
// RequestWork calls return nothing, while its in-flight results complete
// or expire normally. Cordoning a client the scheduler has not seen yet
// registers it, so the quarantine holds from its first contact.
func (s *Scheduler) SetCordoned(clientID string, on bool) {
	s.client(clientID).cordoned = on
}

// Cordoned reports whether a client is quarantined. Pure query.
func (s *Scheduler) Cordoned(clientID string) bool {
	c := s.peek(clientID)
	return c != nil && c.cordoned
}

// ClientSummary is the scheduler's externally visible view of one
// client, for the ops plane's listing and readiness endpoints.
type ClientSummary struct {
	ID          string  `json:"id"`
	Reliability float64 `json:"reliability"`
	InFlight    int     `json:"in_flight"`
	CachedFiles int     `json:"cached_files"`
	Gone        bool    `json:"gone,omitempty"`
	Cordoned    bool    `json:"cordoned,omitempty"`
}

// ClientSummaries returns every client the scheduler has seen, sorted by
// ID. Pure query: it copies state and registers nothing.
func (s *Scheduler) ClientSummaries() []ClientSummary {
	out := make([]ClientSummary, 0, len(s.clients))
	for _, c := range s.clients {
		out = append(out, ClientSummary{
			ID:          c.id,
			Reliability: c.reliability,
			InFlight:    c.inFlight,
			CachedFiles: len(c.cached),
			Gone:        c.gone,
			Cordoned:    c.cordoned,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// hasReliableClient reports whether any known, still-present client
// meets the floor.
func (s *Scheduler) hasReliableClient() bool {
	for _, c := range s.clients {
		if !c.gone && c.reliability >= s.cfg.ReliabilityFloor {
			return true
		}
	}
	return false
}

// CompleteResult records a returned result. valid=false counts as an error
// (validator rejection or client-reported failure). It returns the
// workunit and whether this completion made the workunit Done (i.e. the
// caller should assimilate this canonical result).
func (s *Scheduler) CompleteResult(resultID int64, valid bool, now float64) (*Workunit, bool, error) {
	res := s.results[resultID]
	if res == nil {
		return nil, false, fmt.Errorf("boinc: unknown result %d", resultID)
	}
	if res.Status != ResInProgress {
		return nil, false, fmt.Errorf("boinc: result %d already %v", resultID, res.Status)
	}
	wu := s.wus[res.WUID]
	c := s.client(res.ClientID)
	s.lastNow = now
	c.inFlight--
	wu.active--
	s.inflight--
	turnaround := now - res.SentAt
	if valid {
		res.Status = ResSuccess
		c.reliability = 0.9*c.reliability + 0.1
		if wu.status == WUDone {
			// A replica already completed this workunit.
			res.Status = ResAbandoned
			s.observe(SchedEvent{Kind: EvValid, T: now, WUID: wu.ID, ResultID: res.ID, Client: res.ClientID, Wait: turnaround})
			return wu, false, nil
		}
		wu.valid++
		if wu.valid < wu.Quorum {
			// Quorum not yet reached; make sure enough copies remain in
			// flight or queued to get there.
			if wu.valid+wu.active+s.queuedCopies(wu.ID) < wu.Quorum {
				wu.queuedAt = now
				s.enqueue(wu.ID)
				s.QuorumRetries++
			}
			s.observe(SchedEvent{Kind: EvValid, T: now, WUID: wu.ID, ResultID: res.ID, Client: res.ClientID, Wait: turnaround})
			return wu, false, nil
		}
		wu.status = WUDone
		s.Completions++
		// Drop any still-queued replicas of this workunit. The copy-count
		// index makes the common case (nothing queued) free instead of a
		// full queue rebuild per completion.
		if s.queuedCopies(wu.ID) > 0 {
			kept := s.pending[:0]
			for _, id := range s.pending {
				if id != wu.ID {
					kept = append(kept, id)
				}
			}
			s.pending = kept
			delete(s.queued, wu.ID)
		}
		s.observe(SchedEvent{Kind: EvValid, T: now, WUID: wu.ID, ResultID: res.ID, Client: res.ClientID, Wait: turnaround})
		s.observe(SchedEvent{Kind: EvWUDone, T: now, WUID: wu.ID, Client: res.ClientID})
		return wu, true, nil
	}
	res.Status = ResError
	c.reliability = 0.9 * c.reliability
	s.Invalid++
	s.observe(SchedEvent{Kind: EvInvalid, T: now, WUID: wu.ID, ResultID: res.ID, Client: res.ClientID, Wait: turnaround})
	s.noteFailure(wu)
	return wu, false, nil
}

// noteFailure charges the workunit's error budget and reissues or fails it.
func (s *Scheduler) noteFailure(wu *Workunit) {
	if wu.status == WUDone {
		return
	}
	wu.errors++
	if wu.errors > wu.MaxErrors {
		wu.status = WUFailed
		s.Failures++
		s.observe(SchedEvent{Kind: EvWUFailed, T: s.lastNow, WUID: wu.ID})
		return
	}
	wu.status = WUPending
	wu.queuedAt = s.lastNow
	s.enqueue(wu.ID)
	s.Reissued++
	s.QuorumRetries++
	s.observe(SchedEvent{Kind: EvReissued, T: s.lastNow, WUID: wu.ID})
}

// ExpireTimeouts marks overdue results as timed out and requeues their
// workunits for another client (§III-B fault tolerance). It returns the
// IDs of expired results.
func (s *Scheduler) ExpireTimeouts(now float64) []int64 {
	// Fast path: nothing in flight, or the earliest possible deadline is
	// still ahead — a scan could not expire anything, so skip it. This is
	// observationally identical to scanning and finding nothing, and it
	// keeps the sweep the HTTP server runs before every work request O(1)
	// instead of O(all results ever issued).
	if s.inflight == 0 || (s.expireLBOK && now <= s.expireLB) {
		s.lastNow = now
		return nil
	}
	// Collect first and process in ID order so reissue order (and thus
	// simulation behaviour) is deterministic despite map iteration. The
	// same pass recomputes the exact earliest surviving deadline, which
	// re-arms the fast path above.
	var expired []int64
	nextLB, nextOK := 0.0, false
	for id, res := range s.results {
		if res.Status != ResInProgress {
			continue
		}
		if now > res.Deadline {
			expired = append(expired, id)
		} else if !nextOK || res.Deadline < nextLB {
			nextLB, nextOK = res.Deadline, true
		}
	}
	s.expireLB, s.expireLBOK = nextLB, nextOK
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	s.lastNow = now
	for _, id := range expired {
		res := s.results[id]
		res.Status = ResTimedOut
		wu := s.wus[res.WUID]
		c := s.client(res.ClientID)
		c.inFlight--
		c.reliability = 0.9 * c.reliability
		wu.active--
		s.inflight--
		s.Timeouts++
		s.observe(SchedEvent{Kind: EvTimeout, T: now, WUID: wu.ID, ResultID: res.ID, Client: res.ClientID, Wait: now - res.SentAt})
		s.noteFailure(wu)
	}
	return expired
}

// NextDeadline returns the earliest outstanding result deadline, or ok =
// false when nothing is in flight. The simulator uses it to schedule
// timeout sweeps exactly when they can matter.
func (s *Scheduler) NextDeadline() (float64, bool) {
	best, ok := 0.0, false
	for _, res := range s.results {
		if res.Status == ResInProgress && (!ok || res.Deadline < best) {
			best, ok = res.Deadline, true
		}
	}
	return best, ok
}

// Done reports whether every workunit reached a terminal state.
func (s *Scheduler) Done() bool {
	for _, wu := range s.wus {
		if wu.status != WUDone && wu.status != WUFailed {
			return false
		}
	}
	return true
}

// PendingCount returns the number of queued (unassigned) workunit copies.
func (s *Scheduler) PendingCount() int { return len(s.pending) }

// InFlight returns the number of outstanding results. It is maintained
// incrementally (every transition out of ResInProgress passes through
// CompleteResult or ExpireTimeouts), so the query is O(1) no matter how
// many results the run has issued.
func (s *Scheduler) InFlight() int { return s.inflight }

// SchedStats is a snapshot of one scheduler's lifecycle counters and
// queue depths. ShardedScheduler sums these across shards, so reporting
// code reads one aggregate instead of poking at per-shard fields.
type SchedStats struct {
	Issued, Reissued, Timeouts, Failures, Completions int
	Invalid, QuorumRetries                            int
	Pending, InFlight, Clients                        int
	Done                                              bool
}

// Stats snapshots the scheduler's counters. Pure query.
func (s *Scheduler) Stats() SchedStats {
	return SchedStats{
		Issued:        s.Issued,
		Reissued:      s.Reissued,
		Timeouts:      s.Timeouts,
		Failures:      s.Failures,
		Completions:   s.Completions,
		Invalid:       s.Invalid,
		QuorumRetries: s.QuorumRetries,
		Pending:       len(s.pending),
		InFlight:      s.inflight,
		Clients:       len(s.clients),
		Done:          s.Done(),
	}
}
