package boinc

import (
	"fmt"
	"sort"
)

// SchedulerConfig tunes the scheduling policy.
type SchedulerConfig struct {
	// DefaultTimeout applies to workunits that don't set one (seconds).
	DefaultTimeout float64
	// DefaultMaxErrors is the per-workunit error budget.
	DefaultMaxErrors int
	// ReliabilityFloor gates retried workunits: a workunit that has
	// already timed out or failed once is only given to clients whose
	// reliability score is at least this value, unless no such client is
	// asking ("the scheduler can track how reliably clients return results
	// and assign subtasks to more reliable clients", §III-B).
	ReliabilityFloor float64
	// StickyAffinity biases assignment toward clients that already cache a
	// workunit's input files (the BOINC sticky-file feature, §III-B).
	StickyAffinity bool
}

// DefaultSchedulerConfig mirrors the experiments: 5-minute timeout,
// 8-error budget, reliability gating and sticky files on.
func DefaultSchedulerConfig() SchedulerConfig {
	return SchedulerConfig{
		DefaultTimeout:   300,
		DefaultMaxErrors: 8,
		ReliabilityFloor: 0.5,
		StickyAffinity:   true,
	}
}

// clientState is the scheduler's view of one client.
type clientState struct {
	id          string
	reliability float64
	cached      map[string]bool
	inFlight    int
	// gone marks a client that left the project (volunteer churn). Gone
	// clients no longer count as reliable-and-available, so retried
	// workunits are not reserved for hosts that will never ask again.
	gone bool
}

// Assignment is work handed to a client.
type Assignment struct {
	ResultID   int64
	WUID       int64
	Name       string
	App        string
	InputFiles []string
	Payload    []byte
	Deadline   float64
}

// Scheduler tracks workunits and results and implements the BOINC
// scheduling policy. It is not goroutine-safe; the HTTP server serializes
// access and the simulator is single-threaded by construction.
type Scheduler struct {
	cfg SchedulerConfig

	nextWU, nextRes int64
	wus             map[int64]*Workunit
	results         map[int64]*Result
	pending         []int64 // FIFO of workunit IDs awaiting (re)issue
	clients         map[string]*clientState
	// assignedTo tracks which clients ever received a copy of a
	// replicated workunit (BOINC's one-result-per-user rule, so replicas
	// verify each other across machines).
	assignedTo map[int64]map[string]bool

	// Counters for reports and tests.
	Issued, Reissued, Timeouts, Failures, Completions int
}

// NewScheduler creates a scheduler with the given policy.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 300
	}
	if cfg.DefaultMaxErrors <= 0 {
		cfg.DefaultMaxErrors = 8
	}
	return &Scheduler{
		cfg:        cfg,
		wus:        make(map[int64]*Workunit),
		results:    make(map[int64]*Result),
		clients:    make(map[string]*clientState),
		assignedTo: make(map[int64]map[string]bool),
	}
}

// SetDefaultTimeout hot-changes the deadline applied to workunits added
// from now on (already-issued results keep the deadline they were sent
// with, like a real BOINC project reconfiguration).
func (s *Scheduler) SetDefaultTimeout(seconds float64) {
	if seconds > 0 {
		s.cfg.DefaultTimeout = seconds
	}
}

// RetimePending applies a new timeout to every workunit that has not yet
// reached a terminal state, so future (re)issues of outstanding work use
// the new deadline. Already-issued results keep the deadline they were
// sent with.
func (s *Scheduler) RetimePending(seconds float64) {
	if seconds <= 0 {
		return
	}
	for _, wu := range s.wus {
		if wu.status != WUDone && wu.status != WUFailed {
			wu.Timeout = seconds
		}
	}
}

// SetReliabilityFloor hot-changes the reliability gate for retried
// workunits. Values outside [0,1] are clamped.
func (s *Scheduler) SetReliabilityFloor(floor float64) {
	if floor < 0 {
		floor = 0
	}
	if floor > 1 {
		floor = 1
	}
	s.cfg.ReliabilityFloor = floor
}

// Config returns the scheduler's current policy (hot changes included).
func (s *Scheduler) Config() SchedulerConfig { return s.cfg }

// AddWorkunit registers a new workunit and queues it for assignment. It
// returns the assigned ID.
func (s *Scheduler) AddWorkunit(wu Workunit) int64 {
	s.nextWU++
	wu.ID = s.nextWU
	if wu.Timeout <= 0 {
		wu.Timeout = s.cfg.DefaultTimeout
	}
	if wu.MaxErrors <= 0 {
		wu.MaxErrors = s.cfg.DefaultMaxErrors
	}
	if wu.Quorum <= 0 {
		wu.Quorum = 1
	}
	if wu.Replication < wu.Quorum {
		wu.Replication = wu.Quorum
	}
	wu.status = WUPending
	w := wu
	s.wus[wu.ID] = &w
	for i := 0; i < wu.Replication; i++ {
		s.pending = append(s.pending, wu.ID)
	}
	return wu.ID
}

// Workunit returns the tracked workunit by ID, or nil.
func (s *Scheduler) Workunit(id int64) *Workunit { return s.wus[id] }

// Result returns the tracked result by ID, or nil.
func (s *Scheduler) Result(id int64) *Result { return s.results[id] }

// client returns (creating if needed) the state of a client.
func (s *Scheduler) client(id string) *clientState {
	c, ok := s.clients[id]
	if !ok {
		c = &clientState{id: id, reliability: 1, cached: make(map[string]bool)}
		s.clients[id] = c
	}
	return c
}

// Reliability returns the reliability score of a client (1.0 for unknown
// clients).
func (s *Scheduler) Reliability(clientID string) float64 {
	return s.client(clientID).reliability
}

// NoteCached records that a client holds a sticky file locally.
func (s *Scheduler) NoteCached(clientID, file string) {
	s.client(clientID).cached[file] = true
}

// cacheScore counts how many of the workunit's input files the client has.
func cacheScore(c *clientState, wu *Workunit) int {
	n := 0
	for _, f := range wu.InputFiles {
		if c.cached[f] {
			n++
		}
	}
	return n
}

// RequestWork assigns up to max workunits to the client at virtual time
// now. Assignment preference: workunits whose files the client caches
// (most cached files first), then FIFO. Retried workunits are gated on
// client reliability.
func (s *Scheduler) RequestWork(clientID string, now float64, max int) []Assignment {
	c := s.client(clientID)
	if max <= 0 {
		return nil
	}
	// Collect assignable pending entries with their queue positions.
	type cand struct {
		pos   int
		wu    *Workunit
		score int
	}
	var cands []cand
	seen := map[int64]bool{}
	for pos, id := range s.pending {
		wu := s.wus[id]
		if wu == nil || wu.status == WUDone || wu.status == WUFailed {
			continue
		}
		if seen[id] {
			continue // one copy of a workunit per request round
		}
		if wu.Replication > 1 && s.assignedTo[id][clientID] {
			continue // replicas must verify each other across clients
		}
		if wu.errors > 0 && c.reliability < s.cfg.ReliabilityFloor && s.hasReliableClient() {
			continue // reserve retries for reliable clients when any exist
		}
		seen[id] = true
		sc := 0
		if s.cfg.StickyAffinity {
			sc = cacheScore(c, wu)
		}
		cands = append(cands, cand{pos: pos, wu: wu, score: sc})
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].pos < cands[j].pos
	})
	if len(cands) > max {
		cands = cands[:max]
	}
	var out []Assignment
	taken := map[int]bool{}
	for _, cd := range cands {
		taken[cd.pos] = true
		s.nextRes++
		res := &Result{
			ID:       s.nextRes,
			WUID:     cd.wu.ID,
			ClientID: clientID,
			SentAt:   now,
			Deadline: now + cd.wu.Timeout,
			Status:   ResInProgress,
		}
		s.results[res.ID] = res
		cd.wu.active++
		cd.wu.status = WUInProgress
		c.inFlight++
		s.Issued++
		if s.assignedTo[cd.wu.ID] == nil {
			s.assignedTo[cd.wu.ID] = make(map[string]bool)
		}
		s.assignedTo[cd.wu.ID][clientID] = true
		out = append(out, Assignment{
			ResultID:   res.ID,
			WUID:       cd.wu.ID,
			Name:       cd.wu.Name,
			App:        cd.wu.App,
			InputFiles: append([]string(nil), cd.wu.InputFiles...),
			Payload:    cd.wu.Payload,
			Deadline:   res.Deadline,
		})
		// Sticky files: the client will cache the inputs it downloads.
		if s.cfg.StickyAffinity {
			for _, f := range cd.wu.InputFiles {
				c.cached[f] = true
			}
		}
	}
	// Remove taken entries from the pending queue.
	if len(taken) > 0 {
		kept := s.pending[:0]
		for pos, id := range s.pending {
			if !taken[pos] {
				kept = append(kept, id)
			}
		}
		s.pending = kept
	}
	return out
}

// queuedCopies counts pending-queue entries for a workunit.
func (s *Scheduler) queuedCopies(id int64) int {
	n := 0
	for _, q := range s.pending {
		if q == id {
			n++
		}
	}
	return n
}

// DropClient marks a client as gone from the project. Its in-flight
// results still expire normally; it just stops counting as an available
// reliable host for retry gating.
func (s *Scheduler) DropClient(clientID string) {
	s.client(clientID).gone = true
}

// hasReliableClient reports whether any known, still-present client
// meets the floor.
func (s *Scheduler) hasReliableClient() bool {
	for _, c := range s.clients {
		if !c.gone && c.reliability >= s.cfg.ReliabilityFloor {
			return true
		}
	}
	return false
}

// CompleteResult records a returned result. valid=false counts as an error
// (validator rejection or client-reported failure). It returns the
// workunit and whether this completion made the workunit Done (i.e. the
// caller should assimilate this canonical result).
func (s *Scheduler) CompleteResult(resultID int64, valid bool, now float64) (*Workunit, bool, error) {
	res := s.results[resultID]
	if res == nil {
		return nil, false, fmt.Errorf("boinc: unknown result %d", resultID)
	}
	if res.Status != ResInProgress {
		return nil, false, fmt.Errorf("boinc: result %d already %v", resultID, res.Status)
	}
	wu := s.wus[res.WUID]
	c := s.client(res.ClientID)
	c.inFlight--
	wu.active--
	if valid {
		res.Status = ResSuccess
		c.reliability = 0.9*c.reliability + 0.1
		if wu.status == WUDone {
			// A replica already completed this workunit.
			res.Status = ResAbandoned
			return wu, false, nil
		}
		wu.valid++
		if wu.valid < wu.Quorum {
			// Quorum not yet reached; make sure enough copies remain in
			// flight or queued to get there.
			queued := s.queuedCopies(wu.ID)
			if wu.valid+wu.active+queued < wu.Quorum {
				s.pending = append(s.pending, wu.ID)
			}
			return wu, false, nil
		}
		wu.status = WUDone
		s.Completions++
		// Drop any still-queued replicas of this workunit.
		kept := s.pending[:0]
		for _, id := range s.pending {
			if id != wu.ID {
				kept = append(kept, id)
			}
		}
		s.pending = kept
		return wu, true, nil
	}
	res.Status = ResError
	c.reliability = 0.9 * c.reliability
	s.noteFailure(wu)
	return wu, false, nil
}

// noteFailure charges the workunit's error budget and reissues or fails it.
func (s *Scheduler) noteFailure(wu *Workunit) {
	if wu.status == WUDone {
		return
	}
	wu.errors++
	if wu.errors > wu.MaxErrors {
		wu.status = WUFailed
		s.Failures++
		return
	}
	wu.status = WUPending
	s.pending = append(s.pending, wu.ID)
	s.Reissued++
}

// ExpireTimeouts marks overdue results as timed out and requeues their
// workunits for another client (§III-B fault tolerance). It returns the
// IDs of expired results.
func (s *Scheduler) ExpireTimeouts(now float64) []int64 {
	// Collect first and process in ID order so reissue order (and thus
	// simulation behaviour) is deterministic despite map iteration.
	var expired []int64
	for id, res := range s.results {
		if res.Status == ResInProgress && now > res.Deadline {
			expired = append(expired, id)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	for _, id := range expired {
		res := s.results[id]
		res.Status = ResTimedOut
		wu := s.wus[res.WUID]
		c := s.client(res.ClientID)
		c.inFlight--
		c.reliability = 0.9 * c.reliability
		wu.active--
		s.Timeouts++
		s.noteFailure(wu)
	}
	return expired
}

// NextDeadline returns the earliest outstanding result deadline, or ok =
// false when nothing is in flight. The simulator uses it to schedule
// timeout sweeps exactly when they can matter.
func (s *Scheduler) NextDeadline() (float64, bool) {
	best, ok := 0.0, false
	for _, res := range s.results {
		if res.Status == ResInProgress && (!ok || res.Deadline < best) {
			best, ok = res.Deadline, true
		}
	}
	return best, ok
}

// Done reports whether every workunit reached a terminal state.
func (s *Scheduler) Done() bool {
	for _, wu := range s.wus {
		if wu.status != WUDone && wu.status != WUFailed {
			return false
		}
	}
	return true
}

// PendingCount returns the number of queued (unassigned) workunit copies.
func (s *Scheduler) PendingCount() int { return len(s.pending) }

// InFlight returns the number of outstanding results.
func (s *Scheduler) InFlight() int {
	n := 0
	for _, res := range s.results {
		if res.Status == ResInProgress {
			n++
		}
	}
	return n
}
