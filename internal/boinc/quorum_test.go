package boinc

import "testing"

func TestQuorumRequiresTwoValidResults(t *testing.T) {
	s := newTestScheduler()
	s.AddWorkunit(Workunit{Name: "q", Quorum: 2})
	a1 := s.RequestWork("c1", 0, 1)
	a2 := s.RequestWork("c2", 0, 1)
	if len(a1) != 1 || len(a2) != 1 {
		t.Fatalf("quorum workunit did not replicate: %v %v", a1, a2)
	}
	wu, canonical, err := s.CompleteResult(a1[0].ResultID, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if canonical {
		t.Fatal("first result alone must not complete a quorum-2 workunit")
	}
	if wu.Status() != WUInProgress && wu.Status() != WUPending {
		t.Fatalf("status = %v", wu.Status())
	}
	if wu.ValidResults() != 1 {
		t.Fatalf("ValidResults = %d", wu.ValidResults())
	}
	_, canonical, err = s.CompleteResult(a2[0].ResultID, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !canonical {
		t.Fatal("second valid result must complete the quorum")
	}
	if !s.Done() {
		t.Fatal("scheduler should be done")
	}
}

func TestQuorumReplicasGoToDistinctClients(t *testing.T) {
	s := newTestScheduler()
	s.AddWorkunit(Workunit{Name: "q", Quorum: 2})
	a1 := s.RequestWork("c1", 0, 5)
	if len(a1) != 1 {
		t.Fatalf("c1 received %d copies, want exactly 1", len(a1))
	}
	// The same client must not receive the second replica.
	if more := s.RequestWork("c1", 1, 5); len(more) != 0 {
		t.Fatalf("c1 received a second replica: %v", more)
	}
	if a2 := s.RequestWork("c2", 1, 5); len(a2) != 1 {
		t.Fatal("c2 should receive the second replica")
	}
}

func TestQuorumReplenishesAfterFailure(t *testing.T) {
	cfg := DefaultSchedulerConfig()
	cfg.ReliabilityFloor = 0
	s := NewScheduler(cfg)
	s.AddWorkunit(Workunit{Name: "q", Quorum: 2})
	a1 := s.RequestWork("c1", 0, 1)
	a2 := s.RequestWork("c2", 0, 1)
	// c1 succeeds, c2 fails: one more copy must become available so the
	// quorum can still be met.
	s.CompleteResult(a1[0].ResultID, true, 1)
	s.CompleteResult(a2[0].ResultID, false, 1)
	a3 := s.RequestWork("c3", 2, 1)
	if len(a3) != 1 {
		t.Fatal("failed replica was not replaced")
	}
	_, canonical, err := s.CompleteResult(a3[0].ResultID, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !canonical {
		t.Fatal("replacement result should complete the quorum")
	}
}

func TestQuorumRaisesReplication(t *testing.T) {
	s := newTestScheduler()
	id := s.AddWorkunit(Workunit{Name: "q", Quorum: 3})
	if s.Workunit(id).Replication != 3 {
		t.Fatalf("Replication = %d, want raised to 3", s.Workunit(id).Replication)
	}
	if s.PendingCount() != 3 {
		t.Fatalf("PendingCount = %d, want 3 queued copies", s.PendingCount())
	}
}

func TestQuorumExtraValidAfterDoneIsAbandoned(t *testing.T) {
	s := newTestScheduler()
	s.AddWorkunit(Workunit{Name: "q", Quorum: 2, Replication: 3})
	a1 := s.RequestWork("c1", 0, 1)
	a2 := s.RequestWork("c2", 0, 1)
	a3 := s.RequestWork("c3", 0, 1)
	s.CompleteResult(a1[0].ResultID, true, 1)
	s.CompleteResult(a2[0].ResultID, true, 2)
	_, canonical, err := s.CompleteResult(a3[0].ResultID, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	if canonical {
		t.Fatal("third result must not be canonical")
	}
	if s.Result(a3[0].ResultID).Status != ResAbandoned {
		t.Fatalf("status = %v", s.Result(a3[0].ResultID).Status)
	}
}
