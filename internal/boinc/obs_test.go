package boinc

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"vcdl/internal/obs"
)

// TestSchedSinkLifecycle drives one workunit through assignment,
// timeout, reissue and completion and checks the emitted event stream
// plus the derived metrics.
func TestSchedSinkLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(nil)
	var events []SchedEvent
	s := NewScheduler(SchedulerConfig{DefaultTimeout: 100, DefaultMaxErrors: 8})
	s.SetSink(MultiSink{
		sinkFunc(func(e SchedEvent) { events = append(events, e) }),
		MetricsSink(reg),
		TraceSink(tr),
	})

	id := s.AddWorkunit(Workunit{Name: "wu-0", InputFiles: []string{"a", "b"}})
	asn := s.RequestWork("c1", 10, 1)
	if len(asn) != 1 {
		t.Fatalf("assignments = %d, want 1", len(asn))
	}
	// c1 never returns; the deadline sweep expires it at t=200.
	if exp := s.ExpireTimeouts(200); len(exp) != 1 {
		t.Fatalf("expired = %d, want 1", len(exp))
	}
	// Reissue goes to c2 at t=250 and completes at t=300.
	asn = s.RequestWork("c2", 250, 1)
	if len(asn) != 1 {
		t.Fatalf("reissue assignments = %d, want 1", len(asn))
	}
	if _, done, err := s.CompleteResult(asn[0].ResultID, true, 300); err != nil || !done {
		t.Fatalf("complete: done=%v err=%v", done, err)
	}

	wantKinds := []SchedEventKind{EvCreated, EvAssigned, EvTimeout, EvReissued, EvAssigned, EvValid, EvWUDone}
	if len(events) != len(wantKinds) {
		t.Fatalf("events = %d, want %d: %+v", len(events), len(wantKinds), events)
	}
	for i, k := range wantKinds {
		if events[i].Kind != k {
			t.Fatalf("event[%d].Kind = %v, want %v", i, events[i].Kind, k)
		}
	}
	// First assignment waited 10 (created at lastNow=0, assigned at 10);
	// the reissue waited 50 (requeued at 200, assigned at 250).
	if w := events[1].Wait; w != 10 {
		t.Fatalf("first assign wait = %g, want 10", w)
	}
	if w := events[4].Wait; w != 50 {
		t.Fatalf("reissue assign wait = %g, want 50", w)
	}
	// Timeout turnaround: sent at 10, expired at 200.
	if w := events[2].Wait; w != 190 {
		t.Fatalf("timeout turnaround = %g, want 190", w)
	}
	if events[2].InFlight != 0 || events[1].InFlight != 1 {
		t.Fatalf("inflight depths wrong: %+v", events)
	}
	// Cache hits: no files cached on first assignment; sticky caching
	// makes the c2 assignment a miss too (different client).
	if events[1].CacheHits != 0 || events[1].CacheFiles != 2 {
		t.Fatalf("cache stats = %d/%d, want 0/2", events[1].CacheHits, events[1].CacheFiles)
	}

	if got := reg.CounterValue(MetricAssignments); got != 2 {
		t.Fatalf("assignments metric = %d, want 2", got)
	}
	if got := reg.CounterValue(MetricTimeouts); got != 1 {
		t.Fatalf("timeouts metric = %d, want 1", got)
	}
	if got := reg.CounterValue(MetricReissues); got != 1 {
		t.Fatalf("reissues metric = %d, want 1", got)
	}
	if h := reg.FindHistogram(MetricAssignWait); h == nil || h.Count() != 2 || h.Sum() != 60 {
		t.Fatalf("assign wait histogram = %+v", h)
	}
	if got := reg.GaugeValue(MetricInFlight); got != 0 {
		t.Fatalf("inflight gauge = %g, want 0", got)
	}

	sp, ok := tr.Span(id)
	if !ok || sp.Name != "wu-0" {
		t.Fatalf("trace span missing: %+v %v", sp, ok)
	}
	for _, kind := range []string{obs.KindCreated, obs.KindAssigned, obs.KindTimeout, obs.KindReissued, obs.KindValidated, obs.KindDone} {
		if sp.Count(kind) == 0 {
			t.Fatalf("span missing %s event: %+v", kind, sp.Events)
		}
	}
	if at, _ := sp.At(obs.KindDone); at != 300 {
		t.Fatalf("done at %g, want 300", at)
	}
}

type sinkFunc func(SchedEvent)

func (f sinkFunc) OnSchedEvent(e SchedEvent) { f(e) }

// TestSchedSinkCacheHits checks that cache hits are counted against the
// client's sticky cache as it stood before the assignment.
func TestSchedSinkCacheHits(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewScheduler(DefaultSchedulerConfig())
	s.SetSink(MetricsSink(reg))
	s.AddWorkunit(Workunit{Name: "w1", InputFiles: []string{"model", "shard1"}})
	s.AddWorkunit(Workunit{Name: "w2", InputFiles: []string{"model", "shard2"}})
	if n := len(s.RequestWork("c1", 1, 1)); n != 1 {
		t.Fatalf("first request = %d", n)
	}
	// c1 now caches model+shard1; the second workunit shares "model".
	if n := len(s.RequestWork("c1", 2, 1)); n != 1 {
		t.Fatalf("second request = %d", n)
	}
	if hits := reg.CounterValue(MetricCacheHitFiles); hits != 1 {
		t.Fatalf("cache hit files = %d, want 1", hits)
	}
	if misses := reg.CounterValue(MetricCacheMissFiles); misses != 3 {
		t.Fatalf("cache miss files = %d, want 3", misses)
	}
}

// TestInFlightCounter pins the incremental counter against the
// ground-truth scan it replaced.
func TestInFlightCounter(t *testing.T) {
	s := NewScheduler(SchedulerConfig{DefaultTimeout: 100})
	for i := 0; i < 4; i++ {
		s.AddWorkunit(Workunit{Name: "wu"})
	}
	s.RequestWork("c1", 0, 3)
	scan := func() int {
		n := 0
		for _, res := range s.results {
			if res.Status == ResInProgress {
				n++
			}
		}
		return n
	}
	if s.InFlight() != scan() || s.InFlight() != 3 {
		t.Fatalf("inflight = %d, scan = %d, want 3", s.InFlight(), scan())
	}
	s.ExpireTimeouts(500)
	if s.InFlight() != scan() || s.InFlight() != 0 {
		t.Fatalf("after expiry inflight = %d, scan = %d, want 0", s.InFlight(), scan())
	}
	s.RequestWork("c2", 500, 2)
	res := s.RequestWork("c3", 500, 2)
	if len(res) == 0 {
		t.Fatal("no work for c3")
	}
	s.CompleteResult(res[0].ResultID, false, 600)
	if s.InFlight() != scan() {
		t.Fatalf("after invalid completion inflight = %d, scan = %d", s.InFlight(), scan())
	}
}

// TestServerMetricsEndpoints exercises the live observability surface:
// /metrics, /debug/vars and /debug/pprof on an instrumented server.
func TestServerMetricsEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	srv := NewServer(DefaultSchedulerConfig(), nil, nil)
	srv.EnableMetrics(reg)
	if srv.Metrics() != reg {
		t.Fatal("Metrics() must return the attached registry")
	}
	srv.AddWorkunit(Workunit{Name: "wu-0", Payload: []byte("p")})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cl := NewClient("c1", ts.URL, 1, AppFunc(func(Assignment, map[string][]byte) ([]byte, error) {
		return []byte("out"), nil
	}))
	asn, err := cl.RequestWork(4)
	if err != nil || len(asn) != 1 {
		t.Fatalf("request work: %v, %d assignments", err, len(asn))
	}
	if err := cl.Upload(asn[0].ResultID, []byte("out"), nil); err != nil {
		t.Fatalf("upload: %v", err)
	}

	get := func(path string) string {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}

	prom := get("/metrics")
	for _, want := range []string{
		"vcdl_sched_assignments_total 1",
		"vcdl_sched_workunits_done_total 1",
		`vcdl_rpc_seconds_bucket{handler="scheduler",le="+Inf"} 1`,
		"vcdl_bytes_up_total 3",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, prom)
		}
	}
	vars := get("/debug/vars")
	if !strings.Contains(vars, `"vcdl_sched_assignments_total"`) {
		t.Fatalf("/debug/vars missing families:\n%s", vars)
	}
	if pprofIdx := get("/debug/pprof/"); !strings.Contains(pprofIdx, "goroutine") {
		t.Fatal("/debug/pprof/ index not mounted")
	}
}
