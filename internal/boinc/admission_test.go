package boinc

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vcdl/internal/obs"
)

// TestAdmissionShedsWith429 pins the wire contract of the backpressure
// gate: once MaxConcurrent requests are in the handlers and MaxQueue
// more are waiting, the next scheduler request is shed with 429 and a
// Retry-After advisory — and the shed shows up in both ShedCount and
// the vcdl_sched_shed_total metric.
func TestAdmissionShedsWith429(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	// A validating upload blocks in the handler while holding the one
	// admission slot, making the overload window deterministic.
	validate := func(wu *Workunit, output []byte) bool {
		started <- struct{}{}
		<-release
		return true
	}
	srv := NewServer(DefaultSchedulerConfig(), validate, nil)
	srv.EnableAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 0, RetryAfter: 250 * time.Millisecond})
	reg := obs.NewRegistry()
	srv.EnableMetrics(reg)
	srv.AddWorkunit(Workunit{Name: "wu-0"})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cl := NewClient("holder", ts.URL, 1, nil)
	asns, err := cl.RequestWork(1)
	if err != nil || len(asns) != 1 {
		t.Fatalf("seed assignment: %v (%d)", err, len(asns))
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := cl.Upload(asns[0].ResultID, []byte("ok"), nil); err != nil {
			t.Errorf("blocked upload: %v", err)
		}
	}()
	<-started // the slot is now held inside the upload handler

	// With the only slot busy and no queue, a work request must shed.
	other := NewClient("shed-me", ts.URL, 1, nil)
	_, err = other.RequestWork(1)
	ra, ok := err.(*RetryAfterError)
	if !ok {
		t.Fatalf("overloaded RequestWork error = %v, want *RetryAfterError", err)
	}
	if ra.After != 250*time.Millisecond {
		t.Fatalf("Retry-After = %v, want 250ms", ra.After)
	}
	close(release)
	wg.Wait()
	if got := srv.ShedCount(); got != 1 {
		t.Fatalf("ShedCount = %d, want 1", got)
	}
	if got := reg.CounterValue(MetricShed); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricShed, got)
	}
	// The gate never touches download/status: a file fetch goes through
	// even while shedding.
	srv.PutFile("f", []byte("data"))
	if _, err := other.Download("f"); err != nil {
		t.Fatalf("download during overload: %v", err)
	}
}

// TestAdmissionQueueAdmits checks the bounded-queue half: a request
// beyond MaxConcurrent but within MaxQueue waits for a slot instead of
// shedding, and completes once the slot frees.
func TestAdmissionQueueAdmits(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	validate := func(wu *Workunit, output []byte) bool {
		started <- struct{}{}
		<-release
		return true
	}
	srv := NewServer(DefaultSchedulerConfig(), validate, nil)
	srv.EnableAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 4})
	srv.AddWorkunit(Workunit{Name: "wu-0"})
	srv.AddWorkunit(Workunit{Name: "wu-1"})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cl := NewClient("holder", ts.URL, 1, nil)
	asns, err := cl.RequestWork(1)
	if err != nil || len(asns) != 1 {
		t.Fatalf("seed assignment: %v (%d)", err, len(asns))
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl.Upload(asns[0].ResultID, []byte("ok"), nil)
	}()
	<-started

	// This request queues behind the blocked upload; free the slot
	// shortly after and it must succeed — no 429.
	time.AfterFunc(50*time.Millisecond, func() { close(release) })
	other := NewClient("queued", ts.URL, 1, nil)
	got, err := other.RequestWork(1)
	if err != nil {
		t.Fatalf("queued RequestWork: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("queued RequestWork returned %d assignments, want 1", len(got))
	}
	wg.Wait()
	if n := srv.ShedCount(); n != 0 {
		t.Fatalf("ShedCount = %d, want 0 (queue admitted)", n)
	}
}

// TestClientLoopHonorsRetryAfter pins the client half of backpressure:
// a Loop facing a shedding server spaces its polls by the advertised
// Retry-After instead of hammering at the poll interval.
func TestClientLoopHonorsRetryAfter(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/scheduler" {
			hits.Add(1)
			w.Header().Set("Retry-After", "0.2")
			http.Error(w, "overloaded", http.StatusTooManyRequests)
			return
		}
		http.NotFound(w, r)
	}))
	defer ts.Close()

	cl := NewClient("backoff", ts.URL, 1, nil)
	cl.Poll = time.Millisecond // without backoff this would poll ~500x
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	err := cl.Loop(ctx)
	if err != context.DeadlineExceeded {
		t.Fatalf("Loop = %v, want context.DeadlineExceeded", err)
	}
	// 500ms of 200ms+jitter backoffs: a handful of polls at most. Leave
	// wide slack for scheduler hiccups; the failure mode being guarded
	// (ignoring Retry-After) produces hundreds.
	if n := hits.Load(); n < 2 || n > 10 {
		t.Fatalf("shedding server polled %d times in 500ms with Retry-After 200ms, want 2..10", n)
	}
}

// TestUploadRetriesAfterShed checks that a shed upload (finished work
// is too valuable to drop) retries after the advisory and lands once
// the server admits again.
func TestUploadRetriesAfterShed(t *testing.T) {
	srv := NewServer(DefaultSchedulerConfig(), nil, nil)
	srv.AddWorkunit(Workunit{Name: "wu-0"})
	var shed atomic.Bool
	inner := httptest.NewServer(srv)
	defer inner.Close()
	// Front the real server with a proxy that sheds the first upload
	// attempt, so the retry path is exercised deterministically.
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/upload" && shed.CompareAndSwap(false, true) {
			w.Header().Set("Retry-After", "0.01")
			http.Error(w, "overloaded", http.StatusTooManyRequests)
			return
		}
		req, err := http.NewRequest(r.Method, inner.URL+r.URL.RequestURI(), r.Body)
		if err != nil {
			t.Errorf("proxy: %v", err)
			return
		}
		req.Header = r.Header
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Errorf("proxy: %v", err)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n])
			}
			if err != nil {
				break
			}
		}
	}))
	defer proxy.Close()

	cl := NewClient("uploader", proxy.URL, 1, nil)
	asns, err := cl.RequestWork(1)
	if err != nil || len(asns) != 1 {
		t.Fatalf("RequestWork: %v (%d)", err, len(asns))
	}
	if err := cl.Upload(asns[0].ResultID, []byte("ok"), nil); err != nil {
		t.Fatalf("Upload after shed: %v", err)
	}
	if !shed.Load() {
		t.Fatal("proxy never shed the upload — test exercised nothing")
	}
	done := false
	srv.Scheduler(func(s *Scheduler) { done = done || s.Done() })
	if !done {
		t.Fatal("workunit not completed after retried upload")
	}
}

// TestRetryAfterParse covers the header parsing corner cases the shed
// path relies on.
func TestRetryAfterParse(t *testing.T) {
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"1", time.Second},
		{"0.25", 250 * time.Millisecond},
		{"", 0},
		{"soon", 0},
		{"-3", 0},
	}
	for _, tc := range cases {
		resp := &http.Response{Header: http.Header{}}
		if tc.header != "" {
			resp.Header.Set("Retry-After", tc.header)
		}
		if got := parseRetryAfter(resp); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

// TestAdmissionConfigOff confirms the zero value disables the gate
// entirely: no slot accounting, no shed, requests flow.
func TestAdmissionConfigOff(t *testing.T) {
	srv := NewServer(DefaultSchedulerConfig(), nil, nil)
	srv.EnableAdmission(AdmissionConfig{}) // MaxConcurrent 0 = off
	for i := 0; i < 4; i++ {
		srv.AddWorkunit(Workunit{Name: fmt.Sprintf("wu-%d", i)})
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := NewClient("free", ts.URL, 4, nil)
	asns, err := cl.RequestWork(4)
	if err != nil || len(asns) != 4 {
		t.Fatalf("RequestWork with admission off: %v (%d)", err, len(asns))
	}
	if n := srv.ShedCount(); n != 0 {
		t.Fatalf("ShedCount = %d with admission off", n)
	}
}
