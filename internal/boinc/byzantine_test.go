package boinc

import (
	"bytes"
	"strings"
	"testing"
)

// TestByzantineOutputTransforms pins the client-side halves of the
// adversarial behaviors: wrong-result mangles genuine output so the
// encoding cannot survive, spoof fabricates bytes without running the
// app (distinct per result, so two spoofers cannot accidentally agree
// into a quorum).
func TestByzantineOutputTransforms(t *testing.T) {
	genuine := []byte("a perfectly good parameter delta encoding")
	corrupted := corruptOutput(genuine)
	if bytes.Equal(corrupted, genuine) {
		t.Fatal("corruptOutput returned the genuine bytes")
	}
	if len(corrupted) >= len(genuine) {
		t.Fatalf("corruptOutput must truncate: %d -> %d bytes", len(genuine), len(corrupted))
	}
	if out := corruptOutput([]byte{1}); len(out) == 0 {
		t.Fatal("corruptOutput of a tiny payload must still upload something")
	}
	s1 := spoofOutput(Assignment{ResultID: 1})
	s2 := spoofOutput(Assignment{ResultID: 2})
	if bytes.Equal(s1, s2) {
		t.Fatal("spoofed outputs for different results must differ")
	}
	if !strings.Contains(string(s1), "spoof") {
		t.Fatalf("spoofed output should be self-describing, got %q", s1)
	}
}

// TestByzantineSchedulerReaction is the table over the three behaviors:
// each one's server-visible consequence must trip invalid-result (or
// timeout) detection, downgrade the offender's reliability, and reissue
// the workunit so an honest client can still complete it.
func TestByzantineSchedulerReaction(t *testing.T) {
	cases := []struct {
		behavior string
		// deliver plays the server-side consequence of the behavior for
		// one in-flight result: wrong-result and spoof arrive and fail
		// validation; deadline-game never arrives and expires.
		deliver      func(t *testing.T, s *Scheduler, resultID int64)
		wantInvalid  int
		wantTimeouts int
	}{
		{
			behavior: ByzantineWrongResult,
			deliver: func(t *testing.T, s *Scheduler, id int64) {
				if _, done, err := s.CompleteResult(id, false, 10); err != nil || done {
					t.Fatalf("CompleteResult(invalid) = done %v, err %v", done, err)
				}
			},
			wantInvalid: 1,
		},
		{
			behavior: ByzantineSpoof,
			deliver: func(t *testing.T, s *Scheduler, id int64) {
				if _, done, err := s.CompleteResult(id, false, 10); err != nil || done {
					t.Fatalf("CompleteResult(invalid) = done %v, err %v", done, err)
				}
			},
			wantInvalid: 1,
		},
		{
			behavior: ByzantineDeadlineGame,
			deliver: func(t *testing.T, s *Scheduler, id int64) {
				expired := s.ExpireTimeouts(500) // past the 100 s deadline
				if len(expired) != 1 || expired[0] != id {
					t.Fatalf("ExpireTimeouts = %v, want [%d]", expired, id)
				}
			},
			wantTimeouts: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.behavior, func(t *testing.T) {
			cfg := DefaultSchedulerConfig()
			cfg.DefaultTimeout = 100
			cfg.ReliabilityFloor = 0 // reissues may go to anyone here
			s := NewScheduler(cfg)
			s.AddWorkunit(Workunit{Name: "wu"})

			asns := s.RequestWork("byz", 0, 1)
			if len(asns) != 1 {
				t.Fatalf("byzantine client got %d assignments, want 1", len(asns))
			}
			before := s.Reliability("byz")
			tc.deliver(t, s, asns[0].ResultID)

			// Detection: the damage lands in the right counter.
			if s.Invalid != tc.wantInvalid {
				t.Errorf("Invalid = %d, want %d", s.Invalid, tc.wantInvalid)
			}
			if s.Timeouts != tc.wantTimeouts {
				t.Errorf("Timeouts = %d, want %d", s.Timeouts, tc.wantTimeouts)
			}
			// Reliability downgrade: the offender pays either way.
			if after := s.Reliability("byz"); after >= before {
				t.Errorf("reliability %v -> %v, want a downgrade", before, after)
			}
			// Reissue: the workunit goes back in the queue (counted as both
			// a reissue and a quorum replenishment)...
			if s.Reissued != 1 || s.QuorumRetries != 1 {
				t.Errorf("Reissued = %d, QuorumRetries = %d, want 1 and 1", s.Reissued, s.QuorumRetries)
			}
			// ...and an honest client completes it.
			honest := s.RequestWork("honest", 600, 1)
			if len(honest) != 1 {
				t.Fatal("reissued workunit never reached the honest client")
			}
			if _, done, err := s.CompleteResult(honest[0].ResultID, true, 610); err != nil || !done {
				t.Fatalf("honest completion = done %v, err %v", done, err)
			}
			if !s.Done() {
				t.Fatal("scheduler not done after honest completion")
			}
		})
	}
}

// TestByzantineQuorumOutvotesOffender pins the paper's defense in one
// frame: with 2x replication, one wrong-result client cannot complete a
// workunit — the honest copies reach the quorum while each rejection
// replenishes the pool.
func TestByzantineQuorumOutvotesOffender(t *testing.T) {
	cfg := DefaultSchedulerConfig()
	cfg.DefaultTimeout = 100
	cfg.ReliabilityFloor = 0
	s := NewScheduler(cfg)
	s.AddWorkunit(Workunit{Name: "wu", Quorum: 2})

	byz := s.RequestWork("byz", 0, 1)
	h1 := s.RequestWork("h1", 0, 1)
	if len(byz) != 1 || len(h1) != 1 {
		t.Fatalf("replicas not spread: byz %d, h1 %d", len(byz), len(h1))
	}
	s.CompleteResult(byz[0].ResultID, false, 5) // validator rejects
	s.CompleteResult(h1[0].ResultID, true, 6)
	// The rejection replenished the pool: a second honest client closes
	// the quorum.
	h2 := s.RequestWork("h2", 7, 1)
	if len(h2) != 1 {
		t.Fatal("replenished copy never issued")
	}
	_, done, err := s.CompleteResult(h2[0].ResultID, true, 8)
	if err != nil || !done {
		t.Fatalf("quorum not met: done %v, err %v", done, err)
	}
	if s.Invalid != 1 {
		t.Fatalf("Invalid = %d, want 1", s.Invalid)
	}
	if rb, rh := s.Reliability("byz"), s.Reliability("h1"); rb >= rh {
		t.Fatalf("byzantine reliability %v should be below honest %v", rb, rh)
	}
}
