package boinc

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// invariantSink watches the lifecycle event stream for violations of
// the scheduler's cross-shard invariants. Events for one workunit are
// serialized (a workunit lives entirely on one shard, whose lock is
// held while emitting), so per-WU ordering is well-defined; the sink's
// own mutex only guards its maps across workunits.
type invariantSink struct {
	mu sync.Mutex
	// liveCopies / liveByClient track outstanding results per workunit
	// and per (workunit, client).
	liveCopies   map[int64]int
	liveByClient map[int64]map[string]int
	replication  map[int64]int
	done, failed map[int64]bool
	violations   []string
}

func newInvariantSink() *invariantSink {
	return &invariantSink{
		liveCopies:   make(map[int64]int),
		liveByClient: make(map[int64]map[string]int),
		replication:  make(map[int64]int),
		done:         make(map[int64]bool),
		failed:       make(map[int64]bool),
	}
}

func (s *invariantSink) violatef(format string, args ...any) {
	if len(s.violations) < 20 {
		s.violations = append(s.violations, fmt.Sprintf(format, args...))
	}
}

func (s *invariantSink) OnSchedEvent(e SchedEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch e.Kind {
	case EvAssigned:
		s.liveCopies[e.WUID]++
		if cap := s.replication[e.WUID]; cap > 0 && s.liveCopies[e.WUID] > cap {
			s.violatef("wu %d: %d live copies exceed replication %d", e.WUID, s.liveCopies[e.WUID], cap)
		}
		by := s.liveByClient[e.WUID]
		if by == nil {
			by = make(map[string]int)
			s.liveByClient[e.WUID] = by
		}
		by[e.Client]++
		if s.replication[e.WUID] > 1 && by[e.Client] > 1 {
			s.violatef("wu %d: client %s holds %d concurrent copies (one-result-per-user)", e.WUID, e.Client, by[e.Client])
		}
		if s.done[e.WUID] {
			s.violatef("wu %d: assigned after quorum (done)", e.WUID)
		}
	case EvValid, EvInvalid, EvTimeout:
		s.liveCopies[e.WUID]--
		if s.liveCopies[e.WUID] < 0 {
			s.violatef("wu %d: completion without a matching assignment", e.WUID)
		}
		if by := s.liveByClient[e.WUID]; by != nil && e.Client != "" {
			by[e.Client]--
		}
	case EvReissued:
		if s.done[e.WUID] {
			s.violatef("wu %d: reissued after quorum (done) — quorum regressed", e.WUID)
		}
		if s.failed[e.WUID] {
			s.violatef("wu %d: reissued after terminal failure — error budget regressed", e.WUID)
		}
	case EvWUDone:
		if s.done[e.WUID] {
			s.violatef("wu %d: EvWUDone fired twice", e.WUID)
		}
		if s.failed[e.WUID] {
			s.violatef("wu %d: done after terminal failure", e.WUID)
		}
		s.done[e.WUID] = true
	case EvWUFailed:
		if s.failed[e.WUID] {
			s.violatef("wu %d: EvWUFailed fired twice", e.WUID)
		}
		if s.done[e.WUID] {
			s.violatef("wu %d: failed after quorum (done)", e.WUID)
		}
		s.failed[e.WUID] = true
	}
}

// stressOptions parameterizes one conformance run.
type stressOptions struct {
	policy      Policy
	shards      int
	workers     int
	wus         int
	replication int
	// reconfigure, when non-nil, runs concurrently with the load (the
	// hot-reconfig torn-read regression: setters must land atomically
	// per shard).
	reconfigure func(ss *ShardedScheduler, stop <-chan struct{})
}

// runSchedulerStress drives a ShardedScheduler from opts.workers
// concurrent goroutines — request, complete (valid, invalid or dropped)
// — until every workunit is terminal, checking the invariant stream the
// whole way. Time is a shared atomic tick so deadline sweeps fire
// across goroutines; dropped results are recovered by expiry.
func runSchedulerStress(t *testing.T, opts stressOptions) {
	t.Helper()
	cfg := DefaultSchedulerConfig()
	cfg.DefaultTimeout = 0.2 // ticks advance 1ms/op: drops expire fast
	cfg.DefaultMaxErrors = 1 << 20
	ss := NewShardedScheduler(cfg, opts.shards)
	if opts.policy != nil {
		ss.Each(func(s *Scheduler) { s.SetPolicy(opts.policy) })
	}
	sink := newInvariantSink()
	ss.AddSink(sink)
	repl := opts.replication
	if repl < 1 {
		repl = 1
	}
	for i := 0; i < opts.wus; i++ {
		id := ss.AddWorkunit(Workunit{
			Name:        fmt.Sprintf("stress-%d", i),
			InputFiles:  []string{fmt.Sprintf("shard-%d", i%16)},
			Replication: repl,
			Quorum:      repl,
		})
		sink.mu.Lock()
		sink.replication[id] = repl
		sink.mu.Unlock()
	}

	var tick atomic.Int64
	now := func() float64 { return float64(tick.Add(1)) / 1000 }
	stop := make(chan struct{})
	if opts.reconfigure != nil {
		go opts.reconfigure(ss, stop)
	}
	var wg sync.WaitGroup
	for w := 0; w < opts.workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			client := fmt.Sprintf("worker-%02d", id)
			idle := 0
			for idle < 50 {
				asns := ss.RequestWork(client, now(), 1+rng.Intn(3), []string{fmt.Sprintf("shard-%d", rng.Intn(16))})
				if len(asns) == 0 {
					if ss.Done() {
						return
					}
					idle++
					// Nothing assignable right now (all in flight
					// elsewhere): advance time so expiry can recover
					// dropped results.
					tick.Add(50)
					continue
				}
				idle = 0
				for _, asn := range asns {
					switch r := rng.Float64(); {
					case r < 0.05:
						// Drop the result: the deadline sweep must
						// recover it.
					case r < 0.20:
						ss.ForResult(asn.ResultID, func(s *Scheduler) {
							s.CompleteResult(asn.ResultID, false, now())
						})
					default:
						ss.ForResult(asn.ResultID, func(s *Scheduler) {
							s.CompleteResult(asn.ResultID, true, now())
						})
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)

	// Drain stragglers: expire anything dropped in the last rounds and
	// confirm the run reached a terminal fixed point.
	for i := 0; i < 1000 && !ss.Done(); i++ {
		tick.Add(1000)
		ss.ExpireTimeouts(now())
		for w := 0; w < 4; w++ {
			client := fmt.Sprintf("drain-%d", w)
			for _, asn := range ss.RequestWork(client, now(), 8, nil) {
				ss.ForResult(asn.ResultID, func(s *Scheduler) {
					s.CompleteResult(asn.ResultID, true, now())
				})
			}
		}
	}
	if !ss.Done() {
		st := ss.Stats()
		t.Fatalf("scheduler never drained: %+v", st)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	for _, v := range sink.violations {
		t.Errorf("invariant violated: %s", v)
	}
	for id, n := range sink.liveCopies {
		if n != 0 {
			t.Errorf("wu %d: %d live copies at end of run", id, n)
		}
	}
	st := ss.Stats()
	if st.InFlight != 0 || st.Pending != 0 {
		t.Errorf("terminal stats show open work: %+v", st)
	}
}

// TestSchedulerConformanceUnderLoad drives every registered policy
// through concurrent RequestWork/Complete/Expire traffic from 64
// goroutines against an 8-shard scheduler, asserting the invariants
// that sharding must not break: no concurrent double-assignment of a
// replicated workunit to one client, live copies capped at the
// replication factor, terminal states never regress, and the run
// drains to a quiescent fixed point. Run with -race in CI.
func TestSchedulerConformanceUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("stress suite skipped in -short")
	}
	for _, name := range PolicyNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := NewPolicy(name)
			if err != nil {
				t.Fatalf("NewPolicy(%s): %v", name, err)
			}
			runSchedulerStress(t, stressOptions{
				policy:      p,
				shards:      8,
				workers:     64,
				wus:         400,
				replication: 2,
			})
		})
	}
}

// TestSchedulerHotReconfigUnderLoad is the torn-read regression: while
// 64 goroutines hammer the scheduler, another goroutine continually
// hot-swaps the policy and retunes the timeout and reliability floor
// through the Each fan-out. Every setter must land atomically per shard
// — the -race detector catches any unlocked access, and the invariant
// sink catches any scheduling corruption.
func TestSchedulerHotReconfigUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("stress suite skipped in -short")
	}
	names := PolicyNames()
	runSchedulerStress(t, stressOptions{
		shards:  8,
		workers: 64,
		wus:     400,
		reconfigure: func(ss *ShardedScheduler, stop <-chan struct{}) {
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p, err := NewPolicy(names[i%len(names)])
				if err != nil {
					panic(err)
				}
				ss.Each(func(s *Scheduler) { s.SetPolicy(p) })
				ss.Each(func(s *Scheduler) { s.SetDefaultTimeout(0.2 + float64(i%5)*0.05) })
				ss.Each(func(s *Scheduler) { s.SetReliabilityFloor(float64(i%10) / 10) })
			}
		},
	})
}
