package boinc

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"vcdl/internal/obs"
)

// AdmissionConfig bounds how much concurrent scheduler and upload
// traffic the server will hold before shedding load (DESIGN.md §14).
// Requests beyond MaxConcurrent wait in a bounded queue; requests beyond
// MaxConcurrent+MaxQueue are shed immediately with 429 and a
// Retry-After advisory, which boinc.Client's retry loop honours. The
// zero value (MaxConcurrent 0) means unlimited — admission control off.
type AdmissionConfig struct {
	// MaxConcurrent is the number of gated requests handled
	// simultaneously (0 disables admission control).
	MaxConcurrent int
	// MaxQueue bounds how many further requests may wait for a slot
	// before the server starts shedding (0 = shed as soon as every slot
	// is busy).
	MaxQueue int
	// RetryAfter is the backoff advertised on shed responses
	// (0 = 1 second).
	RetryAfter time.Duration
}

// admission is the counting-semaphore gate in front of the scheduler
// and upload handlers.
type admission struct {
	slots      chan struct{}
	maxQueue   int64
	retryAfter time.Duration
	// waiting counts requests between "all slots busy" and "slot
	// acquired"; it is the queue-depth gauge's source and the shed
	// threshold.
	waiting atomic.Int64
	shed    atomic.Int64

	// obsShed/obsDepth are nil until the server is instrumented.
	obsShed  *obs.Counter
	obsDepth *obs.Gauge
}

func newAdmission(cfg AdmissionConfig) *admission {
	if cfg.MaxConcurrent <= 0 {
		return nil
	}
	retry := cfg.RetryAfter
	if retry <= 0 {
		retry = time.Second
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	return &admission{
		slots:      make(chan struct{}, cfg.MaxConcurrent),
		maxQueue:   int64(cfg.MaxQueue),
		retryAfter: retry,
	}
}

// instrument resolves the shed/queue-depth instruments against r.
func (a *admission) instrument(r *obs.Registry) {
	a.obsShed = r.Counter(MetricShed, "scheduler/upload requests shed by admission control (429)")
	a.obsDepth = r.Gauge(MetricAdmissionQueue, "requests waiting for an admission slot")
}

// acquire claims an admission slot, waiting in the bounded queue when
// all slots are busy. It returns false — without blocking — when the
// queue is already full (the request must be shed); a true return must
// be paired with release.
func (a *admission) acquire() bool {
	select {
	case a.slots <- struct{}{}:
		return true
	default:
	}
	// Contended: join the wait queue unless it is already at capacity.
	if a.waiting.Add(1) > a.maxQueue {
		a.waiting.Add(-1)
		a.shed.Add(1)
		if a.obsShed != nil {
			a.obsShed.Inc()
		}
		return false
	}
	if a.obsDepth != nil {
		a.obsDepth.Set(float64(a.waiting.Load()))
	}
	a.slots <- struct{}{}
	w := a.waiting.Add(-1)
	if a.obsDepth != nil {
		a.obsDepth.Set(float64(w))
	}
	return true
}

// release frees an acquired slot.
func (a *admission) release() { <-a.slots }

// Shed returns how many requests admission control has rejected.
func (a *admission) Shed() int64 { return a.shed.Load() }

// reject writes the shed response: 429 with the Retry-After advisory in
// seconds. Fractional values are written as decimals — our client parses
// them; standard HTTP clients round up.
func (a *admission) reject(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.FormatFloat(a.retryAfter.Seconds(), 'g', -1, 64))
	http.Error(w, "server overloaded, retry later", http.StatusTooManyRequests)
}

// gate wraps a handler with the admission check.
func (a *admission) gate(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !a.acquire() {
			a.reject(w)
			return
		}
		defer a.release()
		h(w, r)
	}
}
