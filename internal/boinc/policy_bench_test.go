package boinc

import (
	"fmt"
	"testing"
)

// BenchmarkRequestWork pins the assignment hot path at fleet scale: a
// 100k-workunit backlog with a 50-client pool, one sub-benchmark per
// registered policy. Each iteration is one client work fetch; failed
// completions recycle the issued workunits so the backlog stays at
// steady state. The per-policy index work (copy-count map, stamped
// eligibility set, reused candidate buffer, stack-resident top-k
// selection, scheduler-scratch issued/event slices, shared input-file
// lists) is what keeps this O(backlog) with a small constant and
// near-zero transient allocations — run with -benchmem; the CI guard
// (cmd/benchguard) pins allocs/op against BENCH_kernels.json.
func BenchmarkRequestWork(b *testing.B) {
	const (
		backlog = 100_000
		clients = 50
		slots   = 8
	)
	// Client IDs are preformatted so the timed loop measures the
	// scheduler, not fmt.
	ids := make([]string, clients)
	for c := range ids {
		ids[c] = fmt.Sprintf("client-%02d", c)
	}
	for _, name := range PolicyNames() {
		b.Run(name, func(b *testing.B) {
			p, err := NewPolicy(name)
			if err != nil {
				b.Fatal(err)
			}
			cfg := DefaultSchedulerConfig()
			cfg.DefaultMaxErrors = 1 << 30
			cfg.ReliabilityFloor = 0 // keep every candidate eligible at steady state
			cfg.Seed = 11
			s := NewScheduler(cfg)
			s.SetPolicy(p)
			for i := 0; i < backlog; i++ {
				s.AddWorkunit(Workunit{
					Name:       fmt.Sprintf("wu%06d", i),
					InputFiles: []string{fmt.Sprintf("shard_%03d", i%200), "model.json"},
					Timeout:    float64(300 + i%600),
				})
			}
			// Warm some sticky caches so CacheScore differentiates.
			for c := 0; c < clients; c++ {
				s.NoteCached(ids[c], fmt.Sprintf("shard_%03d", (c*7)%200))
			}
			now := 0.0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now += 0.5
				asns := s.RequestWork(ids[i%clients], now, slots)
				b.StopTimer()
				for _, a := range asns {
					// Invalid completion requeues the workunit, keeping
					// the backlog size constant across iterations.
					if _, _, err := s.CompleteResult(a.ResultID, false, now); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
			}
		})
	}
}
