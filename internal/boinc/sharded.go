package boinc

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// ShardedScheduler partitions scheduler state across N independently
// locked shards so work requests, result uploads and validations that
// touch different shards never contend on one mutex (the heavy-traffic
// path, DESIGN.md §14). Each shard is a complete *Scheduler:
//
//   - Workunits route to a shard by a stable hash stripe of (app, name),
//     so a workunit and every replica of it live entirely on one shard.
//     That placement is what keeps the cross-shard invariants local:
//     quorum counting, the error budget and the one-result-per-user rule
//     are all per-workunit state, enforced by the owning shard under its
//     own lock exactly as the single scheduler enforced them.
//   - Result IDs are striped residue classes (shard i of n issues IDs
//     ≡ i mod n, via Scheduler.setStripe), so an upload routes back to
//     its owning shard from the result ID alone — no global index.
//   - RequestWork gathers a coalesced reply: it walks the shards starting
//     at the client's home stripe, locking one shard at a time, and
//     batches per-shard picks into one assignment list. Per-client
//     reliability and sticky-cache state are therefore tracked per shard
//     (a shard only learns about clients it has served).
//   - A small striped client index (clientIndex), fed by the lifecycle
//     event stream, maintains the cross-shard per-client aggregates
//     (in-flight totals, distinct clients) that per-shard accounting
//     alone cannot answer without taking every shard lock.
//
// With one shard the behaviour — IDs, assignment order, every observable
// — is identical to a bare Scheduler behind a single mutex.
type ShardedScheduler struct {
	shards []*schedShard
	idx    *clientIndex
	agg    *depthAgg
}

// schedShard is one lock-striped scheduler partition.
type schedShard struct {
	mu sync.Mutex
	s  *Scheduler
}

// NewShardedScheduler builds an n-shard scheduler (n <= 1 means one
// shard) where every shard runs the given mechanics config and the
// default paper policy.
func NewShardedScheduler(cfg SchedulerConfig, n int) *ShardedScheduler {
	if n < 1 {
		n = 1
	}
	ss := &ShardedScheduler{
		shards: make([]*schedShard, n),
		idx:    newClientIndex(),
		agg:    newDepthAgg(n),
	}
	for i := range ss.shards {
		sc := NewScheduler(cfg)
		sc.setStripe(int64(i), int64(n))
		sc.SetSink(&aggSink{shard: i, agg: ss.agg, next: ss.idx})
		ss.shards[i] = &schedShard{s: sc}
	}
	return ss
}

// NumShards returns the shard count.
func (ss *ShardedScheduler) NumShards() int { return len(ss.shards) }

// stripeHash is the stable workunit placement hash.
func stripeHash(app, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(app))
	h.Write([]byte{0})
	h.Write([]byte(name))
	return h.Sum64()
}

// shardForWU returns the shard owning a workunit by its (app, name)
// stripe.
func (ss *ShardedScheduler) shardForWU(app, name string) *schedShard {
	return ss.shards[stripeHash(app, name)%uint64(len(ss.shards))]
}

// shardForResult returns the shard that issued a result ID (IDs are
// striped residue classes, so this is id mod n).
func (ss *ShardedScheduler) shardForResult(id int64) *schedShard {
	n := int64(len(ss.shards))
	return ss.shards[((id%n)+n)%n]
}

// homeShard is where a client's work-request walk starts; spreading
// start points by client ID keeps a synchronized fleet from convoying on
// shard 0.
func (ss *ShardedScheduler) homeShard(clientID string) int {
	h := fnv.New64a()
	h.Write([]byte(clientID))
	return int(h.Sum64() % uint64(len(ss.shards)))
}

// AddWorkunit registers a workunit on its owning shard and returns the
// striped ID.
func (ss *ShardedScheduler) AddWorkunit(wu Workunit) int64 {
	sh := ss.shardForWU(wu.App, wu.Name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.s.AddWorkunit(wu)
}

// RequestWork assembles up to max assignments for a client, gathering
// from the shards round-robin starting at the client's home stripe. Each
// visited shard is locked independently and, under the same acquisition,
// swept for expired deadlines and updated with the client's declared
// sticky cache — the per-shard equivalent of what the single-mutex
// server did per request.
func (ss *ShardedScheduler) RequestWork(clientID string, now float64, max int, cached []string) []Assignment {
	if max <= 0 {
		return nil
	}
	n := len(ss.shards)
	start := ss.homeShard(clientID)
	var out []Assignment
	for k := 0; k < n; k++ {
		sh := ss.shards[(start+k)%n]
		sh.mu.Lock()
		sh.s.ExpireTimeouts(now)
		for _, f := range cached {
			sh.s.NoteCached(clientID, f)
		}
		asns := sh.s.RequestWork(clientID, now, max-len(out))
		sh.mu.Unlock()
		out = append(out, asns...)
		if len(out) >= max {
			break
		}
	}
	return out
}

// ForResult runs f on the shard that owns the given result ID, under
// that shard's lock. The upload path uses it to look up, validate and
// complete a result in one acquisition.
func (ss *ShardedScheduler) ForResult(resultID int64, f func(*Scheduler)) {
	sh := ss.shardForResult(resultID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f(sh.s)
}

// Each runs f on every shard in order, each under its own lock. It is
// the mutation fan-out for hot reconfiguration (policy swap, timeout,
// reliability floor, cordon, drop): every setter lands atomically per
// shard — a concurrent RequestWork sees either the old or the new value,
// never a torn intermediate. Callers that *read* state through Each see
// only the last shard's value; use the aggregate queries instead.
func (ss *ShardedScheduler) Each(f func(*Scheduler)) {
	for _, sh := range ss.shards {
		sh.mu.Lock()
		f(sh.s)
		sh.mu.Unlock()
	}
}

// ExpireTimeouts sweeps every shard for overdue results.
func (ss *ShardedScheduler) ExpireTimeouts(now float64) {
	for _, sh := range ss.shards {
		sh.mu.Lock()
		sh.s.ExpireTimeouts(now)
		sh.mu.Unlock()
	}
}

// AddSink attaches a lifecycle sink to every shard. Events from
// different shards are delivered concurrently (each under its shard's
// lock), so sinks must be safe for concurrent use; the event's Pending
// and InFlight depths are rewritten to fleet-wide totals before
// delivery, so depth gauges aggregate correctly across shards.
func (ss *ShardedScheduler) AddSink(sink SchedSink) {
	for i, sh := range ss.shards {
		sh.mu.Lock()
		sh.s.AddSink(&aggSink{shard: i, agg: ss.agg, next: sink})
		sh.mu.Unlock()
	}
}

// Stats sums the per-shard counter snapshots. The aggregate Clients
// count comes from the striped index (distinct clients that ever held
// an assignment): summing per-shard registrations would double-count
// clients served by several shards.
func (ss *ShardedScheduler) Stats() SchedStats {
	var total SchedStats
	total.Done = true
	for _, sh := range ss.shards {
		sh.mu.Lock()
		st := sh.s.Stats()
		sh.mu.Unlock()
		total.Issued += st.Issued
		total.Reissued += st.Reissued
		total.Timeouts += st.Timeouts
		total.Failures += st.Failures
		total.Completions += st.Completions
		total.Invalid += st.Invalid
		total.QuorumRetries += st.QuorumRetries
		total.Pending += st.Pending
		total.InFlight += st.InFlight
		total.Done = total.Done && st.Done
	}
	total.Clients = ss.idx.Clients()
	return total
}

// Done reports whether every workunit on every shard reached a terminal
// state.
func (ss *ShardedScheduler) Done() bool {
	for _, sh := range ss.shards {
		sh.mu.Lock()
		done := sh.s.Done()
		sh.mu.Unlock()
		if !done {
			return false
		}
	}
	return true
}

// PendingCount sums the queued (unassigned) copies across shards.
func (ss *ShardedScheduler) PendingCount() int {
	n := 0
	for _, sh := range ss.shards {
		sh.mu.Lock()
		n += sh.s.PendingCount()
		sh.mu.Unlock()
	}
	return n
}

// InFlight sums the outstanding results across shards.
func (ss *ShardedScheduler) InFlight() int {
	n := 0
	for _, sh := range ss.shards {
		sh.mu.Lock()
		n += sh.s.InFlight()
		sh.mu.Unlock()
	}
	return n
}

// AssignmentMix sums the per-policy assignment counts across shards.
func (ss *ShardedScheduler) AssignmentMix() map[string]int {
	mix := make(map[string]int)
	for _, sh := range ss.shards {
		sh.mu.Lock()
		for k, v := range sh.s.AssignmentMix() {
			mix[k] += v
		}
		sh.mu.Unlock()
	}
	return mix
}

// ClientSummaries merges the per-shard client views into one fleet-wide
// listing, sorted by ID: in-flight counts and cached-file counts sum, a
// client is gone only when every shard that knows it agrees, cordoned if
// any shard says so (cordons fan out through Each, so shards normally
// agree), and reliability is the minimum across shards — the
// conservative summary for an operator deciding whether to trust a host.
func (ss *ShardedScheduler) ClientSummaries() []ClientSummary {
	merged := make(map[string]*ClientSummary)
	var order []string
	for _, sh := range ss.shards {
		sh.mu.Lock()
		sums := sh.s.ClientSummaries()
		sh.mu.Unlock()
		for _, s := range sums {
			m, ok := merged[s.ID]
			if !ok {
				c := s
				merged[s.ID] = &c
				order = append(order, s.ID)
				continue
			}
			m.InFlight += s.InFlight
			m.CachedFiles += s.CachedFiles
			m.Gone = m.Gone && s.Gone
			m.Cordoned = m.Cordoned || s.Cordoned
			if s.Reliability < m.Reliability {
				m.Reliability = s.Reliability
			}
		}
	}
	out := make([]ClientSummary, 0, len(order))
	for _, id := range order {
		out = append(out, *merged[id])
	}
	sortSummaries(out)
	return out
}

// InFlightOf returns the client's outstanding results across all shards,
// from the striped index — O(1), no shard locks.
func (ss *ShardedScheduler) InFlightOf(clientID string) int {
	return ss.idx.InFlightOf(clientID)
}

// Clients returns the number of distinct clients that ever held an
// assignment, from the striped index — O(stripes), no shard locks.
func (ss *ShardedScheduler) Clients() int { return ss.idx.Clients() }

// sortSummaries orders a summary slice by ID (the listing convention).
func sortSummaries(s []ClientSummary) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].ID < s[j-1].ID; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// depthAgg tracks each shard's last-reported queue depths so events can
// carry fleet-wide totals. Slots are atomics: shard i only writes slot
// i (under its own lock), while any shard may sum all slots.
type depthAgg struct {
	pending  []atomic.Int64
	inflight []atomic.Int64
}

func newDepthAgg(n int) *depthAgg {
	return &depthAgg{pending: make([]atomic.Int64, n), inflight: make([]atomic.Int64, n)}
}

// aggSink is the innermost per-shard sink: it records the shard's queue
// depths and rewrites the event's Pending/InFlight to cross-shard totals
// before forwarding, so metric gauges (and any other attached sink) see
// the fleet-wide depth instead of one shard's slice of it.
type aggSink struct {
	shard int
	agg   *depthAgg
	next  SchedSink
}

// OnSchedEvent implements SchedSink.
func (a *aggSink) OnSchedEvent(e SchedEvent) {
	a.agg.pending[a.shard].Store(int64(e.Pending))
	a.agg.inflight[a.shard].Store(int64(e.InFlight))
	var p, f int64
	for i := range a.agg.pending {
		p += a.agg.pending[i].Load()
		f += a.agg.inflight[i].Load()
	}
	e.Pending, e.InFlight = int(p), int(f)
	a.next.OnSchedEvent(e)
}

// clientStripes sizes the striped client index; a power of two so the
// stripe pick is a mask.
const clientStripes = 64

// clientIndex is the small striped concurrent index of cross-shard
// per-client aggregates. It is fed from the lifecycle event stream
// (assignment opens an in-flight result; valid/invalid/timeout closes
// one), so it never reaches into shard state: each update takes only its
// stripe's lock, and lock order is always shard → stripe, never the
// reverse.
type clientIndex struct {
	stripes [clientStripes]clientStripe
}

type clientStripe struct {
	mu       sync.Mutex
	inflight map[string]int
}

func newClientIndex() *clientIndex {
	ci := &clientIndex{}
	for i := range ci.stripes {
		ci.stripes[i].inflight = make(map[string]int)
	}
	return ci
}

func (ci *clientIndex) stripe(clientID string) *clientStripe {
	h := fnv.New32a()
	h.Write([]byte(clientID))
	return &ci.stripes[h.Sum32()&(clientStripes-1)]
}

// OnSchedEvent implements SchedSink: it mirrors the scheduler's
// in-flight accounting (every result leaves ResInProgress through
// exactly one valid/invalid/timeout event).
func (ci *clientIndex) OnSchedEvent(e SchedEvent) {
	var delta int
	switch e.Kind {
	case EvAssigned:
		delta = 1
	case EvValid, EvInvalid, EvTimeout:
		delta = -1
	default:
		return
	}
	if e.Client == "" {
		return
	}
	st := ci.stripe(e.Client)
	st.mu.Lock()
	st.inflight[e.Client] += delta
	st.mu.Unlock()
}

// InFlightOf returns one client's outstanding results across shards.
func (ci *clientIndex) InFlightOf(clientID string) int {
	st := ci.stripe(clientID)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.inflight[clientID]
}

// Clients counts distinct clients that ever held an assignment.
func (ci *clientIndex) Clients() int {
	n := 0
	for i := range ci.stripes {
		st := &ci.stripes[i]
		st.mu.Lock()
		n += len(st.inflight)
		st.mu.Unlock()
	}
	return n
}
