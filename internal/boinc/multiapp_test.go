package boinc

import (
	"net/http/httptest"
	"sync"
	"testing"
)

// TestMultipleApplications runs two server applications through one
// client, each with its own executable (§II-C: a BOINC server hosts many
// applications).
func TestMultipleApplications(t *testing.T) {
	var mu sync.Mutex
	got := map[string][]byte{}
	srv := NewServer(DefaultSchedulerConfig(), nil, func(wu *Workunit, output []byte) {
		mu.Lock()
		got[wu.Name] = output
		mu.Unlock()
	})
	srv.AddWorkunit(Workunit{Name: "train", App: "trainer", Payload: []byte("x")})
	srv.AddWorkunit(Workunit{Name: "score", App: "scorer", Payload: []byte("x")})
	srv.AddWorkunit(Workunit{Name: "plain"}) // default app
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cl := NewClient("c1", ts.URL, 3, AppFunc(func(Assignment, map[string][]byte) ([]byte, error) {
		return []byte("default"), nil
	}))
	cl.RegisterApp("trainer", AppFunc(func(Assignment, map[string][]byte) ([]byte, error) {
		return []byte("trained"), nil
	}))
	cl.RegisterApp("scorer", AppFunc(func(Assignment, map[string][]byte) ([]byte, error) {
		return []byte("scored"), nil
	}))
	if _, err := cl.Step(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if string(got["train"]) != "trained" || string(got["score"]) != "scored" || string(got["plain"]) != "default" {
		t.Fatalf("app routing wrong: %q", got)
	}
}

// TestUnknownAppFallsBackToDefault keeps old clients compatible with new
// server applications.
func TestUnknownAppFallsBackToDefault(t *testing.T) {
	srv := NewServer(DefaultSchedulerConfig(), nil, nil)
	srv.AddWorkunit(Workunit{Name: "new", App: "future-app"})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := NewClient("c1", ts.URL, 1, echoApp())
	if _, err := cl.Step(); err != nil {
		t.Fatal(err)
	}
	if cl.Completed != 1 {
		t.Fatalf("Completed = %d", cl.Completed)
	}
}

// TestNilDefaultAppReportsFailure: a client with no default app must fail
// unmatched assignments gracefully (upload a failure, not crash).
func TestNilDefaultAppReportsFailure(t *testing.T) {
	srv := NewServer(DefaultSchedulerConfig(), nil, nil)
	srv.AddWorkunit(Workunit{Name: "t", App: "only-this"})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := NewClient("c1", ts.URL, 1, nil)
	cl.RegisterApp("something-else", echoApp())
	if _, err := cl.Step(); err != nil {
		t.Fatal(err)
	}
	if cl.Failed != 1 {
		t.Fatalf("Failed = %d, want graceful failure", cl.Failed)
	}
	srv.Scheduler(func(s *Scheduler) {
		if s.Reissued != 1 {
			t.Fatalf("Reissued = %d", s.Reissued)
		}
	})
}
