package boinc

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"
)

func echoAppCtl() App {
	return AppFunc(func(asn Assignment, inputs map[string][]byte) ([]byte, error) {
		return []byte("ok"), nil
	})
}

// TestControlDeliveredOnSchedulerReply pins the control channel: shaping
// installed on the server reaches the client on its next work request.
func TestControlDeliveredOnSchedulerReply(t *testing.T) {
	srv := NewServer(DefaultSchedulerConfig(), nil, nil)
	srv.AddWorkunit(Workunit{Name: "t"})
	srv.SetClientControl("c1", ClientControl{SlowFactor: 3, PreemptProb: 0.5, RTTSeconds: 0.001})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cl := NewClient("c1", ts.URL, 1, echoAppCtl())
	if _, err := cl.RequestWork(1); err != nil {
		t.Fatal(err)
	}
	got := cl.Control()
	if got.SlowFactor != 3 || got.PreemptProb != 0.5 || got.RTTSeconds != 0.001 {
		t.Fatalf("control = %+v", got)
	}
	// Clearing on the server clears nothing client-side until the next
	// reply carries... nothing: a zero control is simply not sent, so
	// the client keeps its last shaping (the harness always pushes
	// explicit values instead).
	srv.SetClientControl("c1", ClientControl{})
	if ctl := srv.ClientControlFor("c1"); ctl != (ClientControl{}) {
		t.Fatalf("server control not cleared: %+v", ctl)
	}
}

// TestControlPacingStretchesExecution pins MinTaskSeconds: a paced
// subtask takes at least the minimum wall time, times the slow factor.
func TestControlPacingStretchesExecution(t *testing.T) {
	srv := NewServer(DefaultSchedulerConfig(), nil, nil)
	srv.AddWorkunit(Workunit{Name: "t"})
	srv.SetClientControl("c1", ClientControl{MinTaskSeconds: 0.1, SlowFactor: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cl := NewClient("c1", ts.URL, 1, echoAppCtl())
	start := time.Now()
	if _, err := cl.Step(); err != nil { // request applies the control
		t.Fatal(err)
	}
	if n, err := cl.Step(); err != nil || n != 0 {
		t.Fatalf("second step: n=%d err=%v", n, err)
	}
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Fatalf("paced execution took %v, want >= 200ms", elapsed)
	}
	if cl.Completed != 1 {
		t.Fatalf("Completed = %d", cl.Completed)
	}
}

// TestControlPreemptDropsWithoutUpload pins preemption: with p=1 the
// client never uploads, clears its sticky cache, and the scheduler only
// recovers the work at the deadline.
func TestControlPreemptDropsWithoutUpload(t *testing.T) {
	cfg := DefaultSchedulerConfig()
	cfg.DefaultTimeout = 0.2 // seconds
	srv := NewServer(cfg, nil, nil)
	srv.PutFile("in", []byte("data"))
	srv.AddWorkunit(Workunit{Name: "t", InputFiles: []string{"in"}})
	srv.SetClientControl("c1", ClientControl{PreemptProb: 1, PreemptHoldSeconds: 0.01})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cl := NewClient("c1", ts.URL, 1, echoAppCtl())
	if _, err := cl.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Step(); err != nil {
		t.Fatal(err)
	}
	if cl.Completed != 0 || cl.Failed != 0 || cl.Preempted == 0 {
		t.Fatalf("counters: completed=%d failed=%d preempted=%d", cl.Completed, cl.Failed, cl.Preempted)
	}
	srv.Scheduler(func(s *Scheduler) {
		if s.Completions != 0 {
			t.Fatalf("Completions = %d, want 0", s.Completions)
		}
	})
	time.Sleep(250 * time.Millisecond)
	srv.Scheduler(func(s *Scheduler) {
		s.ExpireTimeouts(time.Since(srv.start).Seconds())
		if s.Timeouts == 0 {
			t.Fatal("preempted result never timed out")
		}
	})
}

// TestControlDetachExitsLoop pins graceful departure: Loop finishes
// in-flight work and returns ErrDetached.
func TestControlDetachExitsLoop(t *testing.T) {
	srv := NewServer(DefaultSchedulerConfig(), nil, nil)
	for i := 0; i < 4; i++ {
		srv.AddWorkunit(Workunit{Name: fmt.Sprintf("t%d", i)})
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cl := NewClient("c1", ts.URL, 2, echoAppCtl())
	cl.Poll = 5 * time.Millisecond
	done := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { done <- cl.Loop(ctx) }()
	time.Sleep(50 * time.Millisecond)
	srv.SetClientControl("c1", ClientControl{Detach: true})
	select {
	case err := <-done:
		if !errors.Is(err, ErrDetached) {
			t.Fatalf("Loop returned %v, want ErrDetached", err)
		}
	case <-ctx.Done():
		t.Fatal("client never detached")
	}
}

// TestAssignmentMixTracksPolicySwaps pins the per-policy assignment
// counters behind the fidelity report's mix column.
func TestAssignmentMixTracksPolicySwaps(t *testing.T) {
	s := NewScheduler(DefaultSchedulerConfig())
	for i := 0; i < 4; i++ {
		s.AddWorkunit(Workunit{Name: fmt.Sprintf("t%d", i)})
	}
	if got := s.RequestWork("c1", 0, 2); len(got) != 2 {
		t.Fatalf("issued %d, want 2", len(got))
	}
	p, err := NewPolicy("fifo")
	if err != nil {
		t.Fatal(err)
	}
	s.SetPolicy(p)
	if got := s.RequestWork("c2", 0, 2); len(got) != 2 {
		t.Fatalf("issued %d, want 2", len(got))
	}
	mix := s.AssignmentMix()
	if mix["paper"] != 2 || mix["fifo"] != 2 {
		t.Fatalf("mix = %v", mix)
	}
	mix["paper"] = 99
	if s.AssignmentMix()["paper"] != 2 {
		t.Fatal("AssignmentMix returned a live map, want a copy")
	}
}
