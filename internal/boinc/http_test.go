package boinc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// echoApp returns the concatenation of its inputs plus the payload.
func echoApp() App {
	return AppFunc(func(asn Assignment, inputs map[string][]byte) ([]byte, error) {
		var out bytes.Buffer
		for _, f := range asn.InputFiles {
			out.Write(inputs[f])
		}
		out.Write(asn.Payload)
		return out.Bytes(), nil
	})
}

func TestHTTPEndToEnd(t *testing.T) {
	var mu sync.Mutex
	assimilated := map[string][]byte{}
	srv := NewServer(DefaultSchedulerConfig(), nil, func(wu *Workunit, output []byte) {
		mu.Lock()
		assimilated[wu.Name] = output
		mu.Unlock()
	})
	srv.PutFile("shard1", []byte("DATA1:"))
	srv.PutFile("params", []byte("W:"))
	srv.AddWorkunit(Workunit{Name: "task1", InputFiles: []string{"shard1", "params"}, Payload: []byte("p1")})
	srv.AddWorkunit(Workunit{Name: "task2", InputFiles: []string{"params"}, Payload: []byte("p2")})

	ts := httptest.NewServer(srv)
	defer ts.Close()

	cl := NewClient("c1", ts.URL, 2, echoApp())
	n, err := cl.Step()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("processed %d assignments, want 2", n)
	}
	if !srv.Done() {
		t.Fatal("server not done after all uploads")
	}
	mu.Lock()
	defer mu.Unlock()
	if string(assimilated["task1"]) != "DATA1:W:p1" {
		t.Fatalf("task1 output = %q", assimilated["task1"])
	}
	if string(assimilated["task2"]) != "W:p2" {
		t.Fatalf("task2 output = %q", assimilated["task2"])
	}
	if cl.Completed != 2 || cl.Failed != 0 {
		t.Fatalf("client counters: completed=%d failed=%d", cl.Completed, cl.Failed)
	}
}

func TestHTTPStickyCacheAvoidsRedownload(t *testing.T) {
	srv := NewServer(DefaultSchedulerConfig(), nil, nil)
	srv.PutFile("model", []byte("M"))
	srv.PutFile("s1", []byte("1"))
	srv.PutFile("s2", []byte("2"))
	srv.AddWorkunit(Workunit{Name: "a", InputFiles: []string{"model", "s1"}})
	srv.AddWorkunit(Workunit{Name: "b", InputFiles: []string{"model", "s2"}})

	ts := httptest.NewServer(srv)
	defer ts.Close()

	cl := NewClient("c1", ts.URL, 1, echoApp())
	if _, err := cl.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Step(); err != nil {
		t.Fatal(err)
	}
	// model downloaded once, s1 and s2 once each = 3 downloads, 1 cache hit.
	if cl.Downloads != 3 {
		t.Fatalf("Downloads = %d, want 3", cl.Downloads)
	}
	if cl.CacheHits != 1 {
		t.Fatalf("CacheHits = %d, want 1", cl.CacheHits)
	}
}

func TestHTTPAppFailureReissues(t *testing.T) {
	srv := NewServer(DefaultSchedulerConfig(), nil, nil)
	srv.AddWorkunit(Workunit{Name: "t"})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	failing := AppFunc(func(Assignment, map[string][]byte) ([]byte, error) {
		return nil, errors.New("boom")
	})
	cl := NewClient("c1", ts.URL, 1, failing)
	if _, err := cl.Step(); err != nil {
		t.Fatal(err)
	}
	if cl.Failed != 1 {
		t.Fatalf("Failed = %d", cl.Failed)
	}
	srv.Scheduler(func(s *Scheduler) {
		if s.Reissued != 1 {
			t.Fatalf("Reissued = %d, want 1", s.Reissued)
		}
	})
	// A healthy client then finishes the workunit.
	cl2 := NewClient("c2", ts.URL, 1, echoApp())
	if _, err := cl2.Step(); err != nil {
		t.Fatal(err)
	}
	if !srv.Done() {
		t.Fatal("workunit not completed after reissue")
	}
}

func TestHTTPValidatorRejects(t *testing.T) {
	reject := func(wu *Workunit, output []byte) bool { return false }
	srv := NewServer(DefaultSchedulerConfig(), reject, nil)
	srv.AddWorkunit(Workunit{Name: "t", MaxErrors: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := NewClient("c1", ts.URL, 1, echoApp())
	cl.Step()
	cl.Step()
	srv.Scheduler(func(s *Scheduler) {
		if s.Failures != 1 {
			t.Fatalf("Failures = %d, want 1 after validator rejections", s.Failures)
		}
	})
}

func TestHTTPDownloadMissingFile(t *testing.T) {
	srv := NewServer(DefaultSchedulerConfig(), nil, nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/download?f=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestHTTPSchedulerBadRequest(t *testing.T) {
	srv := NewServer(DefaultSchedulerConfig(), nil, nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/scheduler", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/scheduler", "application/json", bytes.NewReader([]byte(`{"max_tasks":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing client_id: status = %d", resp.StatusCode)
	}
}

func TestHTTPUploadUnknownResult(t *testing.T) {
	srv := NewServer(DefaultSchedulerConfig(), nil, nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/upload?result=42", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestHTTPLateUploadGone(t *testing.T) {
	cfg := DefaultSchedulerConfig()
	cfg.DefaultTimeout = 0.001 // expire almost immediately
	srv := NewServer(cfg, nil, nil)
	srv.AddWorkunit(Workunit{Name: "t"})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cl := NewClient("c1", ts.URL, 1, echoApp())
	asns, err := cl.RequestWork(1)
	if err != nil || len(asns) != 1 {
		t.Fatalf("asns=%v err=%v", asns, err)
	}
	time.Sleep(5 * time.Millisecond)
	srv.Done() // trigger a timeout sweep
	url := fmt.Sprintf("%s/upload?result=%d", ts.URL, asns[0].ResultID)
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader([]byte("late")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("late upload status = %d, want 410", resp.StatusCode)
	}
}

func TestHTTPStatusEndpoint(t *testing.T) {
	srv := NewServer(DefaultSchedulerConfig(), nil, nil)
	srv.AddWorkunit(Workunit{Name: "t"})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusReply
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Pending != 1 || st.Done {
		t.Fatalf("status = %+v", st)
	}
}

func TestHTTPClientLoopDrainsAllWork(t *testing.T) {
	srv := NewServer(DefaultSchedulerConfig(), nil, nil)
	for i := 0; i < 20; i++ {
		srv.AddWorkunit(Workunit{Name: fmt.Sprintf("t%d", i)})
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		cl := NewClient(fmt.Sprintf("c%d", i), ts.URL, 2, echoApp())
		cl.Poll = time.Millisecond
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl.Loop(ctx)
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for !srv.Done() {
		if time.Now().After(deadline) {
			t.Fatal("work not drained within deadline")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	wg.Wait()
}

func TestClientInvalidate(t *testing.T) {
	srv := NewServer(DefaultSchedulerConfig(), nil, nil)
	srv.PutFile("f", []byte("v1"))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := NewClient("c1", ts.URL, 1, echoApp())
	d1, err := cl.Download("f")
	if err != nil {
		t.Fatal(err)
	}
	srv.PutFile("f", []byte("v2"))
	d2, _ := cl.Download("f") // cached
	if string(d2) != string(d1) {
		t.Fatal("expected cached value before Invalidate")
	}
	cl.Invalidate("f")
	d3, _ := cl.Download("f")
	if string(d3) != "v2" {
		t.Fatalf("after Invalidate got %q", d3)
	}
}
