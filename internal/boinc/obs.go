package boinc

import "vcdl/internal/obs"

// SchedEventKind discriminates scheduler lifecycle observations.
type SchedEventKind int

// Scheduler lifecycle events, in rough workunit order.
const (
	// EvCreated fires when AddWorkunit registers a workunit.
	EvCreated SchedEventKind = iota
	// EvAssigned fires per assignment RequestWork hands out.
	EvAssigned
	// EvValid fires when a returned result passes validation.
	EvValid
	// EvInvalid fires when a returned result fails validation or the
	// client reported failure.
	EvInvalid
	// EvTimeout fires per result a deadline sweep expires.
	EvTimeout
	// EvReissued fires when a failed or expired workunit re-enters the
	// pending queue.
	EvReissued
	// EvWUDone fires when a workunit reaches quorum (terminal success).
	EvWUDone
	// EvWUFailed fires when a workunit exhausts its error budget
	// (terminal failure).
	EvWUFailed
)

// SchedEvent is one scheduler lifecycle observation. Every field is
// derived from state the scheduler already holds and the time the
// caller passed in — emitting events reads no clock and no randomness,
// so an attached sink can never perturb a simulation.
type SchedEvent struct {
	Kind SchedEventKind
	// T is the scheduler's time base: virtual seconds under the
	// simulator, wall seconds since server start under the live server.
	T float64
	// WUID identifies the workunit; ResultID the issued copy (0 when no
	// result is involved, e.g. EvCreated).
	WUID, ResultID int64
	// Client is the client involved, when one is.
	Client string
	// WUName is the workunit's name, carried on EvCreated.
	WUName string
	// Wait is the event's latency in the scheduler's time base:
	// queue wait (enqueue → assignment) for EvAssigned, result
	// turnaround (sent → outcome) for EvValid/EvInvalid/EvTimeout.
	Wait float64
	// CacheHits of CacheFiles input files were already in the client's
	// sticky cache at assignment time (EvAssigned only).
	CacheHits, CacheFiles int
	// Pending and InFlight are the queue depths after the event.
	Pending, InFlight int
}

// SchedSink receives scheduler lifecycle events. Implementations are
// called synchronously from the scheduler's (single-threaded or
// lock-serialized) context and must not call back into it.
type SchedSink interface {
	OnSchedEvent(SchedEvent)
}

// MultiSink fans events out to several sinks in order.
type MultiSink []SchedSink

// OnSchedEvent implements SchedSink.
func (m MultiSink) OnSchedEvent(e SchedEvent) {
	for _, s := range m {
		s.OnSchedEvent(e)
	}
}

// appendSink composes an existing sink (possibly nil) with a new one.
func appendSink(cur, next SchedSink) SchedSink {
	if cur == nil {
		return next
	}
	if m, ok := cur.(MultiSink); ok {
		return append(append(MultiSink(nil), m...), next)
	}
	return MultiSink{cur, next}
}

// Scheduler metric family names, exported so post-run reporting
// (internal/scenario) can query the registry without string drift.
const (
	// MetricAssignWait is the queue-wait histogram (seconds, native
	// time base): workunit enqueue or reissue → assignment.
	MetricAssignWait = "vcdl_sched_assign_wait_seconds"
	// MetricTurnaround is the result-turnaround histogram (seconds,
	// native time base): assignment → validated/invalid/timeout.
	MetricTurnaround = "vcdl_sched_turnaround_seconds"
	// MetricCacheHitFiles / MetricCacheMissFiles count input files that
	// were (not) already sticky-cached on the assignee.
	MetricCacheHitFiles  = "vcdl_sched_cache_hit_files_total"
	MetricCacheMissFiles = "vcdl_sched_cache_miss_files_total"
	// MetricAssignments counts assignments handed out.
	MetricAssignments = "vcdl_sched_assignments_total"
	// MetricReissues counts workunit reissues (failures + timeouts that
	// re-entered the queue).
	MetricReissues = "vcdl_sched_reissues_total"
	// MetricTimeouts counts expired results.
	MetricTimeouts = "vcdl_sched_timeouts_total"
	// MetricPending / MetricInFlight gauge the scheduler queue depths.
	MetricPending  = "vcdl_sched_pending_workunits"
	MetricInFlight = "vcdl_sched_inflight_results"
	// MetricRPCSeconds is the live server's per-handler RPC latency
	// histogram (wall seconds; real mode only).
	MetricRPCSeconds = "vcdl_rpc_seconds"
	// MetricShed counts scheduler/upload requests rejected (429) by the
	// server's admission gate under overload (real mode only).
	MetricShed = "vcdl_sched_shed_total"
	// MetricAdmissionQueue gauges how many requests are waiting for an
	// admission slot (real mode only).
	MetricAdmissionQueue = "vcdl_sched_admission_queue"
)

// metricsSink bridges scheduler events into an obs.Registry.
type metricsSink struct {
	created, assigned, valid, invalid *obs.Counter
	timeouts, reissues, done, failed  *obs.Counter
	cacheHitFiles, cacheMissFiles     *obs.Counter
	assignWait, turnaround            *obs.Histogram
	pending, inflight                 *obs.Gauge
}

// MetricsSink returns a SchedSink that maintains the vcdl_sched_*
// metric families in r. Histograms record in the scheduler's native
// time base (virtual seconds in sim, wall seconds in real).
func MetricsSink(r *obs.Registry) SchedSink {
	return &metricsSink{
		created:        r.Counter("vcdl_sched_workunits_created_total", "workunits registered with the scheduler"),
		assigned:       r.Counter(MetricAssignments, "assignments handed to clients"),
		valid:          r.Counter("vcdl_sched_results_valid_total", "returned results that passed validation"),
		invalid:        r.Counter("vcdl_sched_results_invalid_total", "returned results that failed validation or errored"),
		timeouts:       r.Counter(MetricTimeouts, "results expired by deadline sweeps"),
		reissues:       r.Counter(MetricReissues, "workunit reissues after failure or timeout"),
		done:           r.Counter("vcdl_sched_workunits_done_total", "workunits completed (quorum reached)"),
		failed:         r.Counter("vcdl_sched_workunits_failed_total", "workunits failed (error budget exhausted)"),
		cacheHitFiles:  r.Counter(MetricCacheHitFiles, "assigned input files already sticky-cached on the client"),
		cacheMissFiles: r.Counter(MetricCacheMissFiles, "assigned input files the client had to download"),
		assignWait:     r.Histogram(MetricAssignWait, "queue wait from (re)enqueue to assignment, seconds (native time base)", nil),
		turnaround:     r.Histogram(MetricTurnaround, "result turnaround from assignment to outcome, seconds (native time base)", nil),
		pending:        r.Gauge(MetricPending, "queued (unassigned) workunit copies"),
		inflight:       r.Gauge(MetricInFlight, "outstanding results on clients"),
	}
}

// OnSchedEvent implements SchedSink.
func (m *metricsSink) OnSchedEvent(e SchedEvent) {
	switch e.Kind {
	case EvCreated:
		m.created.Inc()
	case EvAssigned:
		m.assigned.Inc()
		m.assignWait.Observe(e.Wait)
		m.cacheHitFiles.Add(int64(e.CacheHits))
		m.cacheMissFiles.Add(int64(e.CacheFiles - e.CacheHits))
	case EvValid:
		m.valid.Inc()
		m.turnaround.Observe(e.Wait)
	case EvInvalid:
		m.invalid.Inc()
		m.turnaround.Observe(e.Wait)
	case EvTimeout:
		m.timeouts.Inc()
		m.turnaround.Observe(e.Wait)
	case EvReissued:
		m.reissues.Inc()
	case EvWUDone:
		m.done.Inc()
	case EvWUFailed:
		m.failed.Inc()
	}
	m.pending.Set(float64(e.Pending))
	m.inflight.Set(float64(e.InFlight))
}

// traceSink bridges scheduler events into an obs.Tracer as lifecycle
// span events.
type traceSink struct{ t *obs.Tracer }

// TraceSink returns a SchedSink that records workunit lifecycle spans
// into t. The scheduler contributes the server-side span kinds; the
// simulator adds the client-side ones (compute/upload/assimilate)
// directly, since it watches the whole lifecycle from one event loop.
func TraceSink(t *obs.Tracer) SchedSink { return traceSink{t} }

var schedKindToSpan = map[SchedEventKind]string{
	EvCreated:  obs.KindCreated,
	EvAssigned: obs.KindAssigned,
	EvValid:    obs.KindValidated,
	EvInvalid:  obs.KindInvalid,
	EvTimeout:  obs.KindTimeout,
	EvReissued: obs.KindReissued,
	EvWUDone:   obs.KindDone,
	EvWUFailed: obs.KindFailed,
}

// OnSchedEvent implements SchedSink.
func (ts traceSink) OnSchedEvent(e SchedEvent) {
	ts.t.Record(obs.SpanEvent{
		WU:     e.WUID,
		Kind:   schedKindToSpan[e.Kind],
		T:      e.T,
		Client: e.Client,
		Result: e.ResultID,
		Name:   e.WUName,
	})
}
