package boinc

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"

	"vcdl/internal/blob"
	"vcdl/internal/obs"
)

// AssimilateFunc processes the canonical output of a completed workunit —
// for VCDL this is the parameter server's VC-ASGD update. It runs after
// validation succeeds.
type AssimilateFunc func(wu *Workunit, output []byte)

// ValidateFunc decides whether an uploaded output is acceptable. A nil
// validator accepts everything.
type ValidateFunc func(wu *Workunit, output []byte) bool

// Server is the BOINC-style project server: scheduler endpoint, file
// distribution ("web server"), upload handler, validator and assimilator.
// It is safe for concurrent use.
//
// Scheduler state lives in a ShardedScheduler: with SchedulerConfig.Shards
// > 1, work requests, uploads and validations on different shards run
// concurrently under per-shard locks, while the server's own mutex only
// guards the file table, client controls and traffic counters — the
// heavy-traffic layout of DESIGN.md §14. The default single shard
// behaves exactly like the historical single-mutex server.
type Server struct {
	mu    sync.Mutex
	sched *ShardedScheduler
	files map[string][]byte
	// controls holds per-client shaping delivered on scheduler replies
	// (the real-mode injection surface; see ClientControl).
	controls map[string]ClientControl

	// admit is the optional backpressure gate on /scheduler and /upload
	// (nil = unlimited). Set once by EnableAdmission before traffic.
	admit *admission

	validate   ValidateFunc
	assimilate AssimilateFunc

	// bytesDown/bytesUp count payload traffic served and received, the
	// real-mode counterpart of the simulator's transfer accounting.
	bytesDown, bytesUp int64

	start time.Time
	mux   *http.ServeMux

	// blobs is the content-addressed data plane (nil until EnableBlobs).
	blobs *blob.Service

	// obs, when enabled, holds the metrics registry plus the
	// pre-resolved instruments the request path touches.
	obs      *obs.Registry
	rpcLat   *obs.HistogramVec
	rpcCount *obs.CounterVec
	obsDown  *obs.Counter
	obsUp    *obs.Counter
	obsAssim *obs.Counter
}

// NewServer creates a project server with the given scheduling policy and
// hooks.
func NewServer(cfg SchedulerConfig, validate ValidateFunc, assimilate AssimilateFunc) *Server {
	s := &Server{
		sched:      NewShardedScheduler(cfg, cfg.Shards),
		files:      make(map[string][]byte),
		controls:   make(map[string]ClientControl),
		validate:   validate,
		assimilate: assimilate,
		start:      time.Now(),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /scheduler", s.handleScheduler)
	s.mux.HandleFunc("GET /download", s.handleDownload)
	s.mux.HandleFunc("POST /upload", s.handleUpload)
	s.mux.HandleFunc("GET /status", s.handleStatus)
	return s
}

// ServeHTTP implements http.Handler. With metrics enabled every request
// is timed (wall clock) into vcdl_rpc_seconds{handler=...}.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.obs == nil {
		s.mux.ServeHTTP(w, r)
		return
	}
	handler := routeLabel(r.URL.Path)
	t0 := time.Now()
	s.mux.ServeHTTP(w, r)
	s.rpcLat.With(handler).Observe(time.Since(t0).Seconds())
	s.rpcCount.With(handler).Inc()
}

// routeLabel maps a request path to a bounded handler label so hostile
// or mistyped paths cannot grow metric cardinality.
func routeLabel(path string) string {
	p := strings.TrimPrefix(path, "/")
	if i := strings.IndexByte(p, '/'); i >= 0 {
		p = p[:i]
	}
	switch p {
	case "scheduler", "download", "upload", "status", "metrics", "debug", "blob", "ops", "healthz":
		return p
	default:
		return "other"
	}
}

// Handle mounts an auxiliary handler on the server mux (the ops admin
// API, the /healthz readiness probe). The pattern uses the mux's
// method/path syntax; with metrics enabled the request is timed under
// its routeLabel like every built-in endpoint. Call before serving
// traffic.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

// EnableMetrics attaches a registry to the server: every scheduler
// lifecycle event feeds the vcdl_sched_* families (wall-clock time
// base), HTTP handlers are timed into vcdl_rpc_seconds, traffic and
// assimilation counters are kept, and the mux gains GET /metrics
// (Prometheus text), GET /debug/vars (JSON snapshot) and the
// net/http/pprof endpoints under /debug/pprof/. Call before serving
// traffic; it composes with any sink already installed on the
// scheduler.
func (s *Server) EnableMetrics(r *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.obs != nil {
		return
	}
	s.obs = r
	s.rpcLat = r.HistogramVec(MetricRPCSeconds, "server RPC handling latency, wall seconds", nil, "handler")
	s.rpcCount = r.CounterVec("vcdl_http_requests_total", "HTTP requests served", "handler")
	s.obsDown = r.Counter("vcdl_bytes_down_total", "payload bytes served to clients")
	s.obsUp = r.Counter("vcdl_bytes_up_total", "payload bytes uploaded by clients")
	s.obsAssim = r.Counter("vcdl_assimilations_total", "canonical results assimilated")
	if s.admit != nil {
		s.admit.instrument(r)
	}
	s.sched.AddSink(MetricsSink(r))
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	s.mux.HandleFunc("GET /debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, r.Snapshot())
	})
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// EnableAdmission installs backpressure on the scheduler and upload
// endpoints: at most cfg.MaxConcurrent requests are handled at once,
// at most cfg.MaxQueue more wait for a slot, and anything beyond that is
// shed with 429 and a Retry-After advisory (which boinc.Client honours
// with a jittered backoff). Download, status and ops traffic is not
// gated — shedding must not blind the operator. Call before serving
// traffic; a zero MaxConcurrent or a second call is a no-op.
func (s *Server) EnableAdmission(cfg AdmissionConfig) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.admit != nil {
		return
	}
	a := newAdmission(cfg)
	if a == nil {
		return
	}
	if s.obs != nil {
		a.instrument(s.obs)
	}
	s.admit = a
}

// ShedCount returns how many requests admission control has rejected
// (0 when admission is disabled).
func (s *Server) ShedCount() int64 {
	if s.admit == nil {
		return 0
	}
	return s.admit.Shed()
}

// EnableBlobs mounts the content-addressed data plane at /blob/{digest}
// (DESIGN.md §11): blob-enabled clients fetch assignment inputs by
// digest through svc — resumable, verified, backpressured — while the
// name-keyed /download path keeps serving everyone else. Served payload
// bytes feed the server's traffic accounting. Call before serving
// traffic; a second call is a no-op.
func (s *Server) EnableBlobs(svc *blob.Service) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.blobs != nil || svc == nil {
		return
	}
	s.blobs = svc
	svc.OnBytes(func(n int64) {
		s.mu.Lock()
		s.bytesDown += n
		down := s.obsDown
		s.mu.Unlock()
		if down != nil {
			down.Add(n)
		}
	})
	s.mux.Handle("GET /blob/{digest}", svc)
}

// Blobs returns the data-plane service, or nil when disabled.
func (s *Server) Blobs() *blob.Service {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.blobs
}

// Metrics returns the attached registry, or nil.
func (s *Server) Metrics() *obs.Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.obs
}

// now returns seconds since server start — the scheduler clock.
func (s *Server) now() float64 { return time.Since(s.start).Seconds() }

// PutFile stores (or replaces) a downloadable file.
func (s *Server) PutFile(name string, data []byte) {
	s.mu.Lock()
	s.files[name] = append([]byte(nil), data...)
	s.mu.Unlock()
}

// AddWorkunit queues a workunit on its owning shard (the work-generator
// entry point).
func (s *Server) AddWorkunit(wu Workunit) int64 {
	return s.sched.AddWorkunit(wu)
}

// Scheduler runs f on every scheduler shard, each under its own lock —
// the mutation fan-out for reconfiguration (policy swaps, timeouts,
// cordons) and for attaching sinks. With the default single shard this
// is exactly the historical "run f under the scheduler lock". Reading
// state through f sees one shard at a time; aggregate queries
// (SchedStats, ClientSummaries, AssignmentMix, PolicyName) merge across
// shards instead.
func (s *Server) Scheduler(f func(*Scheduler)) {
	s.sched.Each(f)
}

// Sharded exposes the shard layer itself, for load harnesses and tests
// that need cross-shard queries (per-client in-flight totals, shard
// counts).
func (s *Server) Sharded() *ShardedScheduler { return s.sched }

// SchedStats returns the scheduler counters summed across shards.
func (s *Server) SchedStats() SchedStats { return s.sched.Stats() }

// ClientSummaries returns the fleet-wide client listing, merged across
// shards and sorted by ID.
func (s *Server) ClientSummaries() []ClientSummary { return s.sched.ClientSummaries() }

// ClientCount returns the number of distinct clients across shards.
func (s *Server) ClientCount() int { return len(s.sched.ClientSummaries()) }

// AssignmentMix returns the per-policy assignment counts summed across
// shards.
func (s *Server) AssignmentMix() map[string]int { return s.sched.AssignmentMix() }

// PolicyName reports the active assignment policy (shards always agree:
// swaps fan out through Scheduler).
func (s *Server) PolicyName() string {
	var name string
	s.sched.shards[0].mu.Lock()
	name = s.sched.shards[0].s.Policy().Name()
	s.sched.shards[0].mu.Unlock()
	return name
}

// SetClientControl installs (or, for the zero value, clears) the shaping
// a client receives on its next scheduler reply.
func (s *Server) SetClientControl(id string, ctl ClientControl) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ctl == (ClientControl{}) {
		delete(s.controls, id)
		return
	}
	s.controls[id] = ctl
}

// ClientControlFor returns the shaping currently installed for a client.
func (s *Server) ClientControlFor(id string) ClientControl {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.controls[id]
}

// Traffic returns the payload bytes served to and received from clients.
func (s *Server) Traffic() (down, up int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesDown, s.bytesUp
}

// Done reports whether all workunits reached a terminal state.
func (s *Server) Done() bool {
	s.sched.ExpireTimeouts(s.now())
	return s.sched.Done()
}

// WorkRequest is the scheduler RPC request body.
type WorkRequest struct {
	ClientID string `json:"client_id"`
	MaxTasks int    `json:"max_tasks"`
	// CachedFiles lets a reconnecting client re-declare its sticky cache.
	CachedFiles []string `json:"cached_files,omitempty"`
	// Blob cache deltas since the client's previous request, piggybacked
	// so OS-process clients' data-plane locality is observable
	// server-side (vcdl_blob_cache_* families).
	BlobHits     int   `json:"blob_hits,omitempty"`
	BlobMisses   int   `json:"blob_misses,omitempty"`
	BlobHitBytes int64 `json:"blob_hit_bytes,omitempty"`
}

// WorkReply is the scheduler RPC response body.
type WorkReply struct {
	Assignments []Assignment `json:"assignments"`
	// Control carries the client's current shaping, when any is set.
	Control *ClientControl `json:"control,omitempty"`
}

func (s *Server) handleScheduler(w http.ResponseWriter, r *http.Request) {
	if a := s.admit; a != nil {
		if !a.acquire() {
			a.reject(w)
			return
		}
		defer a.release()
	}
	var req WorkRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.ClientID == "" {
		http.Error(w, "missing client_id", http.StatusBadRequest)
		return
	}
	if svc := s.Blobs(); svc != nil && (req.BlobHits != 0 || req.BlobMisses != 0) {
		svc.NoteCacheStats(req.BlobHits, req.BlobMisses, req.BlobHitBytes)
	}
	// The gather walks shards under their own locks — deadline sweep,
	// sticky-cache declaration and assignment all happen per visited
	// shard, and picks coalesce into one batched reply.
	asn := s.sched.RequestWork(req.ClientID, s.now(), req.MaxTasks, req.CachedFiles)
	reply := WorkReply{Assignments: asn}
	s.mu.Lock()
	if ctl, ok := s.controls[req.ClientID]; ok {
		c := ctl
		reply.Control = &c
	}
	s.mu.Unlock()
	writeJSON(w, reply)
}

func (s *Server) handleDownload(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("f")
	s.mu.Lock()
	data, ok := s.files[name]
	if ok {
		s.bytesDown += int64(len(data))
		if s.obsDown != nil {
			s.obsDown.Add(int64(len(data)))
		}
	}
	s.mu.Unlock()
	if !ok {
		http.Error(w, "no such file: "+name, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	if a := s.admit; a != nil {
		if !a.acquire() {
			a.reject(w)
			return
		}
		defer a.release()
	}
	var resultID int64
	if _, err := fmt.Sscan(r.URL.Query().Get("result"), &resultID); err != nil {
		http.Error(w, "bad result id", http.StatusBadRequest)
		return
	}
	failed := r.URL.Query().Get("failed") == "1"
	output, err := io.ReadAll(io.LimitReader(r.Body, 1<<30))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}

	s.mu.Lock()
	s.bytesUp += int64(len(output))
	if s.obsUp != nil {
		s.obsUp.Add(int64(len(output)))
	}
	s.mu.Unlock()
	// The result ID names its owning shard (striped residue classes), so
	// lookup, validation and completion happen under that one shard's
	// lock while uploads for other shards proceed in parallel.
	var (
		wu        *Workunit
		known     bool
		canonical bool
		cerr      error
	)
	s.sched.ForResult(resultID, func(sc *Scheduler) {
		res := sc.Result(resultID)
		if res == nil {
			return
		}
		known = true
		wu = sc.Workunit(res.WUID)
		valid := !failed
		if valid && s.validate != nil {
			valid = s.validate(wu, output)
		}
		_, canonical, cerr = sc.CompleteResult(resultID, valid, s.now())
	})
	if !known {
		http.Error(w, "unknown result", http.StatusNotFound)
		return
	}
	if err := cerr; err != nil {
		// Late upload for an already-expired result: acknowledged but
		// ignored, exactly like BOINC discarding post-deadline results.
		w.WriteHeader(http.StatusGone)
		return
	}
	if canonical {
		if s.obsAssim != nil {
			s.obsAssim.Inc()
		}
		if s.assimilate != nil {
			s.assimilate(wu, output)
		}
	}
	w.WriteHeader(http.StatusOK)
}

// StatusReply summarizes server progress for monitoring.
type StatusReply struct {
	Issued        int  `json:"issued"`
	Reissued      int  `json:"reissued"`
	Timeouts      int  `json:"timeouts"`
	Failures      int  `json:"failures"`
	Completions   int  `json:"completions"`
	Invalid       int  `json:"invalid"`
	QuorumRetries int  `json:"quorum_retries"`
	Pending       int  `json:"pending"`
	InFlight      int  `json:"in_flight"`
	Done          bool `json:"done"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.sched.ExpireTimeouts(s.now())
	st := s.sched.Stats()
	reply := StatusReply{
		Issued:        st.Issued,
		Reissued:      st.Reissued,
		Timeouts:      st.Timeouts,
		Failures:      st.Failures,
		Completions:   st.Completions,
		Invalid:       st.Invalid,
		QuorumRetries: st.QuorumRetries,
		Pending:       st.Pending,
		InFlight:      st.InFlight,
		Done:          st.Done,
	}
	writeJSON(w, reply)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
