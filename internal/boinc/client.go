package boinc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"vcdl/internal/blob"
	"vcdl/internal/obs"
)

// App is the application a client runs for each assignment — VCDL's
// TensorFlow stand-in. Inputs are the downloaded file contents keyed by
// file name; the returned output is uploaded as the result.
type App interface {
	Run(asn Assignment, inputs map[string][]byte) (output []byte, err error)
}

// AppFunc adapts a function to the App interface.
type AppFunc func(asn Assignment, inputs map[string][]byte) ([]byte, error)

// Run implements App.
func (f AppFunc) Run(asn Assignment, inputs map[string][]byte) ([]byte, error) {
	return f(asn, inputs)
}

// Client is the BOINC-style client daemon: it polls the scheduler for
// work, downloads input files (with a sticky-file cache), runs the
// application and uploads results. Slots bounds how many assignments run
// concurrently — the paper's Tn, "maximum number of subtasks that can run
// simultaneously on a client".
type Client struct {
	ID        string
	ServerURL string
	Slots     int
	App       App
	// Poll is the idle wait between scheduler requests.
	Poll time.Duration
	// Log receives structured client-daemon events (nil = silent). The
	// daemon deliberately rides out transient failures — a flaky server
	// must not kill a volunteer — so without a logger those retries are
	// invisible; with one they become warnings.
	Log *obs.Logger

	httpc *http.Client

	// fetcher is the data-plane client (nil until EnableBlobs): inputs
	// whose assignment carries a digest are fetched through it —
	// resumable, verified, digest-cached — instead of via /download.
	fetcher *blob.Fetcher

	mu    sync.Mutex
	cache map[string][]byte
	apps  map[string]App
	// ctl is the server-pushed shaping (see ClientControl); rng drives
	// the preemption coin, seeded from the client ID so a fleet of
	// clients doesn't flip identical coins.
	ctl  ClientControl
	rng  *rand.Rand
	busy int

	// Counters for tests and reports.
	Completed, Failed, Downloads, CacheHits, Preempted int
}

// ErrDetached is returned by Loop when the server asked the client to
// detach (ClientControl.Detach): in-flight work finished, loop exited.
var ErrDetached = errors.New("boinc: detached by server")

// RetryAfterError reports a request the server shed under load (HTTP
// 429) together with its Retry-After advisory. Loop honours it by
// backing off for the advised delay (plus jitter) instead of the usual
// poll interval.
type RetryAfterError struct {
	// After is the server's advised backoff.
	After time.Duration
}

// Error implements error.
func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("boinc: server overloaded, retry after %s", e.After)
}

// parseRetryAfter reads a Retry-After header as seconds (the server
// writes decimals; integers per RFC work too). Zero when absent or
// unparseable.
func parseRetryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.ParseFloat(v, 64)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs * float64(time.Second))
}

// NewClient creates a client daemon.
func NewClient(id, serverURL string, slots int, app App) *Client {
	if slots < 1 {
		slots = 1
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	return &Client{
		ID:        id,
		ServerURL: serverURL,
		Slots:     slots,
		App:       app,
		Poll:      50 * time.Millisecond,
		httpc:     &http.Client{Timeout: 60 * time.Second},
		cache:     make(map[string][]byte),
		rng:       rand.New(rand.NewSource(int64(h.Sum64()))),
	}
}

// EnableBlobs switches the client onto the content-addressed data
// plane: assignment inputs published as blobs are fetched by digest
// through cache (nil = a fresh in-memory cache; pass a disk-backed
// cache to stay warm across process restarts). Call before Loop.
func (c *Client) EnableBlobs(cache *blob.Cache) {
	f := blob.NewFetcher(c.ServerURL, cache)
	f.HTTPClient = c.httpc
	c.mu.Lock()
	c.fetcher = f
	c.mu.Unlock()
}

// BlobStats returns the data-plane transfer accounting (zero when
// blobs are disabled).
func (c *Client) BlobStats() blob.FetchStats {
	c.mu.Lock()
	f := c.fetcher
	c.mu.Unlock()
	if f == nil {
		return blob.FetchStats{}
	}
	return f.Stats()
}

// Control returns the shaping most recently pushed by the server.
func (c *Client) Control() ClientControl {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ctl
}

// coin flips the preemption coin with probability p.
func (c *Client) coin(p float64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64() < p
}

// sleepCtx pauses for d (no-op for d <= 0), returning early on cancel.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// rttSleep injects the control's round-trip latency before an HTTP call.
func (c *Client) rttSleep(ctx context.Context) {
	if rtt := c.Control().RTTSeconds; rtt > 0 {
		sleepCtx(ctx, time.Duration(rtt*float64(time.Second)))
	}
}

// RegisterApp installs an application under a name so the client can
// execute workunits from multiple server applications (a BOINC server
// hosts many applications per project, §II-C). Assignments whose App
// matches name run on app; unmatched assignments use the default App.
func (c *Client) RegisterApp(name string, app App) {
	c.mu.Lock()
	if c.apps == nil {
		c.apps = make(map[string]App)
	}
	c.apps[name] = app
	c.mu.Unlock()
}

// appFor resolves the application for an assignment.
func (c *Client) appFor(asn Assignment) App {
	c.mu.Lock()
	defer c.mu.Unlock()
	if asn.App != "" && c.apps != nil {
		if app, ok := c.apps[asn.App]; ok {
			return app
		}
	}
	return c.App
}

// cachedNames returns the sticky files held locally.
func (c *Client) cachedNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.cache))
	for n := range c.cache {
		names = append(names, n)
	}
	return names
}

// RequestWork asks the scheduler for up to n assignments and applies
// any shaping control the reply carries.
func (c *Client) RequestWork(n int) ([]Assignment, error) {
	return c.requestWork(context.Background(), n)
}

func (c *Client) requestWork(ctx context.Context, n int) ([]Assignment, error) {
	wreq := WorkRequest{ClientID: c.ID, MaxTasks: n, CachedFiles: c.cachedNames()}
	c.mu.Lock()
	f := c.fetcher
	c.mu.Unlock()
	if f != nil {
		d := f.ReportDelta()
		wreq.BlobHits = int(d.CacheHits)
		wreq.BlobMisses = int(d.CacheMisses)
		wreq.BlobHitBytes = d.CacheHitBytes
	}
	body, err := json.Marshal(wreq)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.ServerURL+"/scheduler", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("boinc: scheduler request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		after := parseRetryAfter(resp)
		if after <= 0 {
			after = time.Second
		}
		return nil, &RetryAfterError{After: after}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("boinc: scheduler status %s", resp.Status)
	}
	var reply WorkReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, fmt.Errorf("boinc: decode reply: %w", err)
	}
	if reply.Control != nil {
		c.mu.Lock()
		c.ctl = *reply.Control
		c.mu.Unlock()
	}
	return reply.Assignments, nil
}

// retryAttempts bounds transient-failure retries for downloads and
// uploads. Volunteer clients must ride out brief server overloads; real
// BOINC clients retry transfers persistently.
const retryAttempts = 5

// retryWait is the base pause between transfer retries; retryPause adds
// up to the same again in jitter so a fleet of polling clients can't
// phase-lock its retries against a periodically failing server.
const retryWait = 20 * time.Millisecond

// uploadRounds bounds how many rounds of upload attempts runOne makes
// for a finished result before giving up on it.
const uploadRounds = 4

// retryPause waits between transfer retries (with jitter), returning
// early on cancel.
func (c *Client) retryPause(ctx context.Context) {
	c.mu.Lock()
	jitter := time.Duration(c.rng.Int63n(int64(retryWait)))
	c.mu.Unlock()
	sleepCtx(ctx, retryWait+jitter)
}

// Download fetches a file, consulting the sticky cache first. Transport
// errors and 5xx responses are retried; 4xx responses (missing file) fail
// immediately.
func (c *Client) Download(name string) ([]byte, error) {
	return c.download(context.Background(), name)
}

func (c *Client) download(ctx context.Context, name string) ([]byte, error) {
	c.mu.Lock()
	if data, ok := c.cache[name]; ok {
		c.CacheHits++
		c.mu.Unlock()
		return data, nil
	}
	c.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			c.retryPause(ctx)
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
		}
		req, rerr := http.NewRequestWithContext(ctx, http.MethodGet, c.ServerURL+"/download?f="+name, nil)
		if rerr != nil {
			return nil, rerr
		}
		resp, err := c.httpc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("boinc: download %s: %w", name, err)
			continue
		}
		if resp.StatusCode >= 500 {
			resp.Body.Close()
			lastErr = fmt.Errorf("boinc: download %s: %s", name, resp.Status)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("boinc: download %s: %s", name, resp.Status)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = fmt.Errorf("boinc: download %s: %w", name, err)
			continue
		}
		c.mu.Lock()
		c.cache[name] = data
		c.Downloads++
		c.mu.Unlock()
		return data, nil
	}
	return nil, lastErr
}

// fetchInput resolves one assignment input: through the blob data
// plane when the assignment references it by digest and blobs are
// enabled (the Downloads counter still counts network transfers; a
// digest-cache hit counts as a CacheHit like a sticky-file hit),
// otherwise through the name-keyed /download path.
func (c *Client) fetchInput(ctx context.Context, asn Assignment, name string) ([]byte, error) {
	c.mu.Lock()
	f := c.fetcher
	c.mu.Unlock()
	digest, ok := asn.Blobs[name]
	if f == nil || !ok {
		return c.download(ctx, name)
	}
	warm := f.Cache.Has(digest)
	data, err := f.Fetch(ctx, digest)
	if err != nil {
		return nil, fmt.Errorf("boinc: blob input %s: %w", name, err)
	}
	c.mu.Lock()
	if warm {
		c.CacheHits++
	} else {
		c.Downloads++
	}
	c.mu.Unlock()
	return data, nil
}

// Invalidate drops a file from the sticky cache (used when the server
// republishes a file name with new content, e.g. fresh parameters).
func (c *Client) Invalidate(name string) {
	c.mu.Lock()
	delete(c.cache, name)
	c.mu.Unlock()
}

// Upload posts the result output (or a failure notice when err != nil),
// retrying transient transport and 5xx failures so a briefly overloaded
// server does not strand a finished result until its timeout.
func (c *Client) Upload(resultID int64, output []byte, appErr error) error {
	return c.upload(context.Background(), resultID, output, appErr)
}

func (c *Client) upload(ctx context.Context, resultID int64, output []byte, appErr error) error {
	url := fmt.Sprintf("%s/upload?result=%d", c.ServerURL, resultID)
	if appErr != nil {
		url += "&failed=1"
		output = nil
	}
	var lastErr error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			c.retryPause(ctx)
			if ctx.Err() != nil {
				return ctx.Err()
			}
		}
		req, rerr := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(output))
		if rerr != nil {
			return rerr
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := c.httpc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("boinc: upload result %d: %w", resultID, err)
			continue
		}
		status := resp.StatusCode
		after := parseRetryAfter(resp)
		resp.Body.Close()
		switch {
		case status == http.StatusOK || status == http.StatusGone:
			return nil
		case status == http.StatusTooManyRequests:
			// Shed by admission control: honour the advisory before the
			// next attempt instead of the short default pause.
			lastErr = fmt.Errorf("boinc: upload result %d: %w", resultID, &RetryAfterError{After: after})
			sleepCtx(ctx, after)
			continue
		case status >= 500:
			lastErr = fmt.Errorf("boinc: upload result %d: %d", resultID, status)
			continue
		default:
			return fmt.Errorf("boinc: upload result %d: %d", resultID, status)
		}
	}
	return lastErr
}

// spoofOutput fabricates a result for a spoofing client: bytes that look
// like an upload but cannot decode to a valid parameter vector, so the
// server-side validator rejects them.
func spoofOutput(asn Assignment) []byte {
	return []byte(fmt.Sprintf("spoofed-result-%d", asn.ResultID))
}

// corruptOutput mangles a genuine output so validation fails (the
// wrong-result behavior): truncation breaks the parameter encoding.
func corruptOutput(output []byte) []byte {
	if len(output) < 2 {
		return []byte{0xff}
	}
	return output[:len(output)/2]
}

// runOne downloads inputs, runs the app and uploads the outcome,
// honouring the server-pushed shaping: a preemption coin that drops the
// assignment without uploading (the instance was reclaimed; the slot is
// held until a replacement arrives and starts with a cold cache), and
// execution pacing that stretches the subtask to the control's minimum
// wall time times the straggler factor. A Byzantine control turns the
// client adversarial: spoofers upload fabricated bytes without running
// the app, wrong-result clients corrupt genuine output before upload,
// and deadline gamers finish the work but never return it.
func (c *Client) runOne(ctx context.Context, asn Assignment) {
	ctl := c.Control()
	if ctl.PreemptProb > 0 && c.coin(ctl.PreemptProb) {
		c.Log.Debug("instance preempted, dropping assignment", "client", c.ID, "result", asn.ResultID)
		c.mu.Lock()
		c.Preempted++
		c.cache = make(map[string][]byte)
		c.mu.Unlock()
		sleepCtx(ctx, time.Duration(ctl.PreemptHoldSeconds*float64(time.Second)))
		return
	}
	if ctl.Byzantine == ByzantineSpoof {
		// Claim credit without doing the work: no downloads, no app run,
		// just fabricated bytes uploaded immediately.
		c.Log.Debug("byzantine spoof: uploading fabricated result", "client", c.ID, "result", asn.ResultID)
		c.rttSleep(ctx)
		if ctx.Err() != nil {
			return
		}
		if err := c.upload(ctx, asn.ResultID, spoofOutput(asn), nil); err != nil {
			c.mu.Lock()
			c.Failed++
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		c.Completed++
		c.mu.Unlock()
		return
	}
	start := time.Now()
	c.rttSleep(ctx)
	inputs := make(map[string][]byte, len(asn.InputFiles))
	var appErr error
	for _, f := range asn.InputFiles {
		data, err := c.fetchInput(ctx, asn, f)
		if err != nil {
			appErr = err
			if ctx.Err() == nil {
				c.Log.Warn("input download failed, reporting result as failed",
					"client", c.ID, "result", asn.ResultID, "file", f, "err", err)
			}
			break
		}
		inputs[f] = data
	}
	var output []byte
	if appErr == nil {
		app := c.appFor(asn)
		if app == nil {
			appErr = fmt.Errorf("boinc: no application registered for %q", asn.App)
		} else {
			output, appErr = app.Run(asn, inputs)
		}
	}
	if appErr == nil && ctl.Byzantine == ByzantineWrongResult {
		// Genuine work, corrupted on the way out: the server-side
		// validator rejects the mangled encoding.
		output = corruptOutput(output)
	}
	if min := ctl.MinTaskSeconds * ctl.slow(); min > 0 {
		if pad := time.Duration(min*float64(time.Second)) - time.Since(start); pad > 0 {
			sleepCtx(ctx, pad)
		}
	}
	if ctx.Err() != nil {
		return // killed mid-task: the result is simply never uploaded
	}
	if ctl.Byzantine == ByzantineDeadlineGame {
		// Hoard the assignment: the result is never uploaded, so the
		// scheduler must expire it at its deadline and reissue.
		c.Log.Debug("byzantine deadline-game: withholding finished result", "client", c.ID, "result", asn.ResultID)
		return
	}
	c.rttSleep(ctx)
	// A finished result is too expensive to strand on a transfer hiccup:
	// like a real BOINC client's persistent transfer queue, keep retrying
	// the upload (in rounds of the usual attempts) until it lands, the
	// server rejects it outright, or the client dies.
	err := c.upload(ctx, asn.ResultID, output, appErr)
	for round := 1; err != nil && ctx.Err() == nil && round < uploadRounds; round++ {
		c.Log.Warn("upload failed, retrying", "client", c.ID, "result", asn.ResultID, "round", round, "err", err)
		c.retryPause(ctx)
		err = c.upload(ctx, asn.ResultID, output, appErr)
	}
	if err != nil {
		if ctx.Err() == nil {
			c.Log.Warn("upload abandoned, result stranded until server deadline",
				"client", c.ID, "result", asn.ResultID, "err", err)
		}
		appErr = err
	}
	c.mu.Lock()
	if appErr != nil {
		c.Failed++
	} else {
		c.Completed++
	}
	c.mu.Unlock()
}

// Step performs one scheduler round: request up to Slots assignments, run
// them concurrently, upload all results. It returns the number of
// assignments processed.
func (c *Client) Step() (int, error) {
	asns, err := c.RequestWork(c.Slots)
	if err != nil {
		return 0, err
	}
	var wg sync.WaitGroup
	for _, asn := range asns {
		wg.Add(1)
		go func(a Assignment) {
			defer wg.Done()
			c.runOne(context.Background(), a)
		}(asn)
	}
	wg.Wait()
	return len(asns), nil
}

// freeSlots returns how many more assignments the client may start.
func (c *Client) freeSlots() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Slots - c.busy
}

// Loop polls until ctx is cancelled or the server detaches the client.
// Each of the client's Slots runs independently — a long (or paced, or
// preempted) subtask on one slot never blocks work requests for the
// others, exactly like the paper's Tn simultaneous subtasks. Transient
// scheduler errors are retried after the poll interval; volunteer
// clients must tolerate a flaky server. Cancelling ctx is an abrupt
// death: in-flight results are abandoned, never uploaded. Loop still
// joins its slot goroutines before returning (they unwind promptly on
// a dead ctx), so the client's counters are quiescent afterwards.
func (c *Client) Loop(ctx context.Context) error {
	wake := make(chan struct{}, 1)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if c.Control().Detach {
			c.Log.Info("detached by server, finishing in-flight work", "client", c.ID)
			wg.Wait() // graceful: finish in-flight work first
			return ErrDetached
		}
		got := 0
		var backoff time.Duration
		if free := c.freeSlots(); free > 0 {
			c.rttSleep(ctx)
			asns, err := c.requestWork(ctx, free)
			if err != nil && ctx.Err() == nil {
				var ra *RetryAfterError
				if errors.As(err, &ra) {
					// Shed under load: back off for the server's advisory
					// plus jitter, so a whole fleet doesn't return in
					// lock-step the moment the window expires.
					c.mu.Lock()
					backoff = ra.After + time.Duration(c.rng.Int63n(int64(retryWait)))
					c.mu.Unlock()
					c.Log.Debug("scheduler shedding load, backing off",
						"client", c.ID, "after", ra.After)
				} else {
					c.Log.Warn("work request failed, retrying after poll", "client", c.ID, "err", err)
				}
			}
			if err == nil {
				got = len(asns)
				c.mu.Lock()
				c.busy += got
				c.mu.Unlock()
				for _, asn := range asns {
					wg.Add(1)
					go func(a Assignment) {
						defer wg.Done()
						c.runOne(ctx, a)
						c.mu.Lock()
						c.busy--
						c.mu.Unlock()
						select {
						case wake <- struct{}{}:
						default:
						}
					}(asn)
				}
			}
		}
		if got == 0 {
			wait := c.Poll
			if backoff > wait {
				wait = backoff
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-wake:
			case <-time.After(wait):
			}
		}
	}
}
