package boinc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// App is the application a client runs for each assignment — VCDL's
// TensorFlow stand-in. Inputs are the downloaded file contents keyed by
// file name; the returned output is uploaded as the result.
type App interface {
	Run(asn Assignment, inputs map[string][]byte) (output []byte, err error)
}

// AppFunc adapts a function to the App interface.
type AppFunc func(asn Assignment, inputs map[string][]byte) ([]byte, error)

// Run implements App.
func (f AppFunc) Run(asn Assignment, inputs map[string][]byte) ([]byte, error) {
	return f(asn, inputs)
}

// Client is the BOINC-style client daemon: it polls the scheduler for
// work, downloads input files (with a sticky-file cache), runs the
// application and uploads results. Slots bounds how many assignments run
// concurrently — the paper's Tn, "maximum number of subtasks that can run
// simultaneously on a client".
type Client struct {
	ID        string
	ServerURL string
	Slots     int
	App       App
	// Poll is the idle wait between scheduler requests.
	Poll time.Duration

	httpc *http.Client

	mu    sync.Mutex
	cache map[string][]byte
	apps  map[string]App

	// Counters for tests and reports.
	Completed, Failed, Downloads, CacheHits int
}

// NewClient creates a client daemon.
func NewClient(id, serverURL string, slots int, app App) *Client {
	if slots < 1 {
		slots = 1
	}
	return &Client{
		ID:        id,
		ServerURL: serverURL,
		Slots:     slots,
		App:       app,
		Poll:      50 * time.Millisecond,
		httpc:     &http.Client{Timeout: 60 * time.Second},
		cache:     make(map[string][]byte),
	}
}

// RegisterApp installs an application under a name so the client can
// execute workunits from multiple server applications (a BOINC server
// hosts many applications per project, §II-C). Assignments whose App
// matches name run on app; unmatched assignments use the default App.
func (c *Client) RegisterApp(name string, app App) {
	c.mu.Lock()
	if c.apps == nil {
		c.apps = make(map[string]App)
	}
	c.apps[name] = app
	c.mu.Unlock()
}

// appFor resolves the application for an assignment.
func (c *Client) appFor(asn Assignment) App {
	c.mu.Lock()
	defer c.mu.Unlock()
	if asn.App != "" && c.apps != nil {
		if app, ok := c.apps[asn.App]; ok {
			return app
		}
	}
	return c.App
}

// cachedNames returns the sticky files held locally.
func (c *Client) cachedNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.cache))
	for n := range c.cache {
		names = append(names, n)
	}
	return names
}

// RequestWork asks the scheduler for up to n assignments.
func (c *Client) RequestWork(n int) ([]Assignment, error) {
	body, err := json.Marshal(WorkRequest{ClientID: c.ID, MaxTasks: n, CachedFiles: c.cachedNames()})
	if err != nil {
		return nil, err
	}
	resp, err := c.httpc.Post(c.ServerURL+"/scheduler", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("boinc: scheduler request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("boinc: scheduler status %s", resp.Status)
	}
	var reply WorkReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, fmt.Errorf("boinc: decode reply: %w", err)
	}
	return reply.Assignments, nil
}

// retryAttempts bounds transient-failure retries for downloads and
// uploads. Volunteer clients must ride out brief server overloads; real
// BOINC clients retry transfers persistently.
const retryAttempts = 5

// retryWait is the pause between transfer retries.
const retryWait = 20 * time.Millisecond

// Download fetches a file, consulting the sticky cache first. Transport
// errors and 5xx responses are retried; 4xx responses (missing file) fail
// immediately.
func (c *Client) Download(name string) ([]byte, error) {
	c.mu.Lock()
	if data, ok := c.cache[name]; ok {
		c.CacheHits++
		c.mu.Unlock()
		return data, nil
	}
	c.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(retryWait)
		}
		resp, err := c.httpc.Get(c.ServerURL + "/download?f=" + name)
		if err != nil {
			lastErr = fmt.Errorf("boinc: download %s: %w", name, err)
			continue
		}
		if resp.StatusCode >= 500 {
			resp.Body.Close()
			lastErr = fmt.Errorf("boinc: download %s: %s", name, resp.Status)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("boinc: download %s: %s", name, resp.Status)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = fmt.Errorf("boinc: download %s: %w", name, err)
			continue
		}
		c.mu.Lock()
		c.cache[name] = data
		c.Downloads++
		c.mu.Unlock()
		return data, nil
	}
	return nil, lastErr
}

// Invalidate drops a file from the sticky cache (used when the server
// republishes a file name with new content, e.g. fresh parameters).
func (c *Client) Invalidate(name string) {
	c.mu.Lock()
	delete(c.cache, name)
	c.mu.Unlock()
}

// Upload posts the result output (or a failure notice when err != nil),
// retrying transient transport and 5xx failures so a briefly overloaded
// server does not strand a finished result until its timeout.
func (c *Client) Upload(resultID int64, output []byte, appErr error) error {
	url := fmt.Sprintf("%s/upload?result=%d", c.ServerURL, resultID)
	if appErr != nil {
		url += "&failed=1"
		output = nil
	}
	var lastErr error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(retryWait)
		}
		resp, err := c.httpc.Post(url, "application/octet-stream", bytes.NewReader(output))
		if err != nil {
			lastErr = fmt.Errorf("boinc: upload result %d: %w", resultID, err)
			continue
		}
		status := resp.StatusCode
		resp.Body.Close()
		switch {
		case status == http.StatusOK || status == http.StatusGone:
			return nil
		case status >= 500:
			lastErr = fmt.Errorf("boinc: upload result %d: %d", resultID, status)
			continue
		default:
			return fmt.Errorf("boinc: upload result %d: %d", resultID, status)
		}
	}
	return lastErr
}

// runOne downloads inputs, runs the app and uploads the outcome.
func (c *Client) runOne(asn Assignment) {
	inputs := make(map[string][]byte, len(asn.InputFiles))
	var appErr error
	for _, f := range asn.InputFiles {
		data, err := c.Download(f)
		if err != nil {
			appErr = err
			break
		}
		inputs[f] = data
	}
	var output []byte
	if appErr == nil {
		app := c.appFor(asn)
		if app == nil {
			appErr = fmt.Errorf("boinc: no application registered for %q", asn.App)
		} else {
			output, appErr = app.Run(asn, inputs)
		}
	}
	if err := c.Upload(asn.ResultID, output, appErr); err != nil {
		appErr = err
	}
	c.mu.Lock()
	if appErr != nil {
		c.Failed++
	} else {
		c.Completed++
	}
	c.mu.Unlock()
}

// Step performs one scheduler round: request up to Slots assignments, run
// them concurrently, upload all results. It returns the number of
// assignments processed.
func (c *Client) Step() (int, error) {
	asns, err := c.RequestWork(c.Slots)
	if err != nil {
		return 0, err
	}
	var wg sync.WaitGroup
	for _, asn := range asns {
		wg.Add(1)
		go func(a Assignment) {
			defer wg.Done()
			c.runOne(a)
		}(asn)
	}
	wg.Wait()
	return len(asns), nil
}

// Loop polls until ctx is cancelled. Transient scheduler errors are
// retried after the poll interval; volunteer clients must tolerate a
// flaky server.
func (c *Client) Loop(ctx context.Context) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		n, err := c.Step()
		if err != nil || n == 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(c.Poll):
			}
		}
	}
}
