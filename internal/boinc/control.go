package boinc

// ClientControl is per-client shaping the server piggybacks on scheduler
// replies. It is the real-mode injection surface mirroring the
// simulator's hooks (vcsim.Sim): the scenario harness sets controls on
// the server, and every client — in-process goroutine or separate OS
// process — picks them up on its next work request, so fault injection
// flows through the existing HTTP protocol instead of a side channel.
// The zero value means "no shaping".
type ClientControl struct {
	// MinTaskSeconds paces every assignment to at least this wall-clock
	// execution time (0 = no pacing). Real-mode scenario runs use it to
	// map the simulator's calibrated per-instance execution model onto
	// wall time, so events land at the same training phase in both
	// engines (DESIGN.md §9).
	MinTaskSeconds float64 `json:"min_task_seconds,omitempty"`
	// SlowFactor multiplies MinTaskSeconds (straggler injection;
	// 0 or 1 = nominal speed).
	SlowFactor float64 `json:"slow_factor,omitempty"`
	// PreemptProb is the per-assignment probability that the client's
	// instance is reclaimed mid-execution: the result is never uploaded
	// and the slot stays lost for PreemptHoldSeconds (the replacement
	// instance arrives around the scheduler deadline, like the
	// simulator's preemption model).
	PreemptProb float64 `json:"preempt_prob,omitempty"`
	// PreemptHoldSeconds holds a preempted slot before it requests work
	// again; the replacement starts with a cold sticky cache.
	PreemptHoldSeconds float64 `json:"preempt_hold_seconds,omitempty"`
	// RTTSeconds injects round-trip latency before every HTTP operation
	// (region outage shaping).
	RTTSeconds float64 `json:"rtt_seconds,omitempty"`
	// Detach asks the client to finish its in-flight assignments and
	// exit its polling loop (graceful departure; Loop returns
	// ErrDetached).
	Detach bool `json:"detach,omitempty"`
	// Byzantine turns the client adversarial (one of the Byzantine*
	// behavior names; "" = honest). Real-mode scenario runs and the ops
	// control plane use it to drive the quorum/validation machinery from
	// the client side of the wire, mirroring the simulator's in-engine
	// hooks.
	Byzantine string `json:"byzantine,omitempty"`
}

// Byzantine client behaviors. They model the volunteer-computing threat
// classes BOINC's redundancy machinery exists for: results that fail
// validation, fabricated results from clients that never ran the app,
// and hosts that hoard assignments past their deadlines.
const (
	// ByzantineWrongResult runs the app but corrupts the output before
	// uploading, so the server-side validator rejects it (invalid result,
	// reissue, reliability downgrade).
	ByzantineWrongResult = "wrong-result"
	// ByzantineSpoof never runs the app: it uploads fabricated output
	// immediately, claiming credit for work it did not do.
	ByzantineSpoof = "spoof"
	// ByzantineDeadlineGame accepts work and never returns it, forcing
	// the scheduler to expire the result at its deadline and reissue.
	ByzantineDeadlineGame = "deadline-game"
)

// ByzantineBehaviors lists the recognized adversarial behaviors.
var ByzantineBehaviors = []string{ByzantineWrongResult, ByzantineSpoof, ByzantineDeadlineGame}

// ValidByzantine reports whether s names a known Byzantine behavior.
func ValidByzantine(s string) bool {
	for _, b := range ByzantineBehaviors {
		if s == b {
			return true
		}
	}
	return false
}

// slow returns the effective slowdown factor (unset means nominal).
func (ctl ClientControl) slow() float64 {
	if ctl.SlowFactor <= 0 {
		return 1
	}
	return ctl.SlowFactor
}
