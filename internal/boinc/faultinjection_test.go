package boinc

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// flakyProxy forwards to the real server but fails every third request
// with a 503, simulating an overloaded or briefly unreachable project
// server — routine weather for volunteer clients.
type flakyProxy struct {
	inner http.Handler
	n     atomic.Int64
}

func (f *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.n.Add(1)%3 == 0 {
		http.Error(w, "temporarily overloaded", http.StatusServiceUnavailable)
		return
	}
	f.inner.ServeHTTP(w, r)
}

// TestClientSurvivesFlakyServer drives a full workload through a proxy
// that drops a third of all HTTP requests. The client daemons must retry
// until every workunit completes.
func TestClientSurvivesFlakyServer(t *testing.T) {
	srv := NewServer(DefaultSchedulerConfig(), nil, nil)
	for i := 0; i < 12; i++ {
		srv.AddWorkunit(Workunit{Name: fmt.Sprintf("t%d", i)})
	}
	ts := httptest.NewServer(&flakyProxy{inner: srv})
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		cl := NewClient(fmt.Sprintf("c%d", i), ts.URL, 2, echoApp())
		cl.Poll = time.Millisecond
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl.Loop(ctx)
		}()
	}
	for !srv.Done() {
		select {
		case <-ctx.Done():
			t.Fatal("workload did not drain through the flaky proxy")
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}
	cancel()
	wg.Wait()
	srv.Scheduler(func(s *Scheduler) {
		if s.Completions != 12 {
			t.Fatalf("Completions = %d, want 12", s.Completions)
		}
	})
}

// TestClientDownloadFailureCountsAsSubtaskFailure verifies that a client
// that cannot fetch an input uploads a failure notice so the scheduler can
// reissue promptly rather than waiting for the timeout.
func TestClientDownloadFailureCountsAsSubtaskFailure(t *testing.T) {
	srv := NewServer(DefaultSchedulerConfig(), nil, nil)
	srv.AddWorkunit(Workunit{Name: "t", InputFiles: []string{"never-published"}})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := NewClient("c1", ts.URL, 1, echoApp())
	if _, err := cl.Step(); err != nil {
		t.Fatal(err)
	}
	if cl.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", cl.Failed)
	}
	srv.Scheduler(func(s *Scheduler) {
		if s.Reissued != 1 {
			t.Fatalf("Reissued = %d, want 1 (prompt reissue on failure upload)", s.Reissued)
		}
	})
}
