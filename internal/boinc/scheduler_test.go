package boinc

import (
	"testing"
	"testing/quick"
)

func newTestScheduler() *Scheduler {
	cfg := DefaultSchedulerConfig()
	cfg.DefaultTimeout = 100
	return NewScheduler(cfg)
}

func TestAddAndAssign(t *testing.T) {
	s := newTestScheduler()
	id := s.AddWorkunit(Workunit{Name: "t1", InputFiles: []string{"shard1"}})
	asn := s.RequestWork("c1", 0, 4)
	if len(asn) != 1 {
		t.Fatalf("got %d assignments, want 1", len(asn))
	}
	if asn[0].WUID != id || asn[0].Name != "t1" {
		t.Fatalf("assignment = %+v", asn[0])
	}
	if asn[0].Deadline != 100 {
		t.Fatalf("deadline = %v, want 100", asn[0].Deadline)
	}
	if s.Workunit(id).Status() != WUInProgress {
		t.Fatalf("status = %v", s.Workunit(id).Status())
	}
	// No double assignment of the same workunit.
	if more := s.RequestWork("c2", 0, 4); len(more) != 0 {
		t.Fatalf("workunit assigned twice: %v", more)
	}
}

func TestMaxTasksHonored(t *testing.T) {
	s := newTestScheduler()
	for i := 0; i < 10; i++ {
		s.AddWorkunit(Workunit{Name: "wu"})
	}
	if got := len(s.RequestWork("c1", 0, 3)); got != 3 {
		t.Fatalf("got %d, want 3", got)
	}
	if got := len(s.RequestWork("c1", 0, 0)); got != 0 {
		t.Fatalf("max=0 returned %d", got)
	}
}

func TestCompleteSuccess(t *testing.T) {
	s := newTestScheduler()
	s.AddWorkunit(Workunit{Name: "t"})
	asn := s.RequestWork("c1", 0, 1)
	wu, canonical, err := s.CompleteResult(asn[0].ResultID, true, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !canonical {
		t.Fatal("first valid result must be canonical")
	}
	if wu.Status() != WUDone {
		t.Fatalf("status = %v", wu.Status())
	}
	if !s.Done() {
		t.Fatal("scheduler should be done")
	}
}

func TestCompleteInvalidReissues(t *testing.T) {
	s := newTestScheduler()
	s.AddWorkunit(Workunit{Name: "t"})
	asn := s.RequestWork("c1", 0, 1)
	wu, canonical, err := s.CompleteResult(asn[0].ResultID, false, 10)
	if err != nil || canonical {
		t.Fatalf("canonical=%v err=%v", canonical, err)
	}
	if wu.Status() != WUPending || wu.Errors() != 1 {
		t.Fatalf("wu = %v errors=%d", wu.Status(), wu.Errors())
	}
	if s.PendingCount() != 1 {
		t.Fatal("workunit not requeued")
	}
	if s.Reissued != 1 {
		t.Fatalf("Reissued = %d", s.Reissued)
	}
}

func TestCompleteUnknownResult(t *testing.T) {
	s := newTestScheduler()
	if _, _, err := s.CompleteResult(99, true, 0); err == nil {
		t.Fatal("unknown result must error")
	}
}

func TestDoubleCompleteRejected(t *testing.T) {
	s := newTestScheduler()
	s.AddWorkunit(Workunit{Name: "t"})
	asn := s.RequestWork("c1", 0, 1)
	if _, _, err := s.CompleteResult(asn[0].ResultID, true, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.CompleteResult(asn[0].ResultID, true, 2); err == nil {
		t.Fatal("second completion must error")
	}
}

func TestTimeoutReissue(t *testing.T) {
	s := newTestScheduler()
	s.AddWorkunit(Workunit{Name: "t", Timeout: 50})
	asn := s.RequestWork("flaky", 0, 1)
	if exp := s.ExpireTimeouts(49); len(exp) != 0 {
		t.Fatalf("premature expiry: %v", exp)
	}
	exp := s.ExpireTimeouts(51)
	if len(exp) != 1 || exp[0] != asn[0].ResultID {
		t.Fatalf("expired = %v", exp)
	}
	if s.Timeouts != 1 {
		t.Fatalf("Timeouts = %d", s.Timeouts)
	}
	// The workunit must be assignable again — to a different client.
	asn2 := s.RequestWork("steady", 51, 1)
	if len(asn2) != 1 || asn2[0].WUID != asn[0].WUID {
		t.Fatalf("reissue failed: %v", asn2)
	}
	// Late upload from the flaky client is rejected.
	if _, _, err := s.CompleteResult(asn[0].ResultID, true, 60); err == nil {
		t.Fatal("late completion of timed-out result must error")
	}
}

func TestErrorBudgetExhaustion(t *testing.T) {
	cfg := DefaultSchedulerConfig()
	cfg.DefaultMaxErrors = 2
	cfg.ReliabilityFloor = 0 // don't gate retries in this test
	s := NewScheduler(cfg)
	s.AddWorkunit(Workunit{Name: "poison"})
	for i := 0; i < 3; i++ {
		asn := s.RequestWork("c1", float64(i), 1)
		if len(asn) != 1 {
			t.Fatalf("round %d: no assignment", i)
		}
		s.CompleteResult(asn[0].ResultID, false, float64(i))
	}
	wu := s.Workunit(1)
	if wu.Status() != WUFailed {
		t.Fatalf("status = %v, want failed", wu.Status())
	}
	if s.Failures != 1 {
		t.Fatalf("Failures = %d", s.Failures)
	}
	if !s.Done() {
		t.Fatal("failed workunit is terminal; scheduler should be done")
	}
}

func TestReliabilityTracking(t *testing.T) {
	s := newTestScheduler()
	for i := 0; i < 6; i++ {
		s.AddWorkunit(Workunit{Name: "wu"})
	}
	// c1 succeeds, c2 fails repeatedly.
	for i := 0; i < 3; i++ {
		a1 := s.RequestWork("good", float64(i), 1)
		s.CompleteResult(a1[0].ResultID, true, float64(i))
		a2 := s.RequestWork("bad", float64(i), 1)
		s.CompleteResult(a2[0].ResultID, false, float64(i))
	}
	if s.Reliability("good") <= s.Reliability("bad") {
		t.Fatalf("reliability good=%v bad=%v", s.Reliability("good"), s.Reliability("bad"))
	}
}

func TestRetriesGatedOnReliability(t *testing.T) {
	cfg := DefaultSchedulerConfig()
	cfg.ReliabilityFloor = 0.9
	s := NewScheduler(cfg)
	s.AddWorkunit(Workunit{Name: "wu", Timeout: 10})
	// Build up a reliable client.
	s.AddWorkunit(Workunit{Name: "warmup"})
	// "bad" fails the first workunit many times to sink its score.
	for i := 0; i < 6; i++ {
		asn := s.RequestWork("bad", 0, 1)
		if len(asn) == 0 {
			break
		}
		s.CompleteResult(asn[0].ResultID, false, 0)
	}
	if s.Reliability("bad") >= 0.9 {
		t.Fatalf("bad reliability still %v", s.Reliability("bad"))
	}
	// "good" completes one workunit to stay at ~1.0 and be known.
	asnG := s.RequestWork("good", 0, 1)
	if len(asnG) == 1 {
		s.CompleteResult(asnG[0].ResultID, true, 1)
	}
	// A retried workunit must now be withheld from "bad"...
	if asn := s.RequestWork("bad", 2, 5); len(asn) != 0 {
		t.Fatalf("retried workunit assigned to unreliable client: %v", asn)
	}
	// ...but given to "good".
	if asn := s.RequestWork("good", 2, 5); len(asn) == 0 {
		t.Fatal("reliable client did not receive the retry")
	}
}

func TestRetimePending(t *testing.T) {
	s := newTestScheduler()
	s.AddWorkunit(Workunit{Name: "a", Timeout: 1200})
	s.AddWorkunit(Workunit{Name: "b", Timeout: 1200})
	// "a" is issued and completes before the retime; "b" stays queued.
	asn := s.RequestWork("c1", 0, 1)
	if len(asn) != 1 || asn[0].Deadline != 1200 {
		t.Fatalf("assignment = %+v", asn)
	}
	s.CompleteResult(asn[0].ResultID, true, 10)
	s.RetimePending(300)
	// The queued workunit's next issue uses the new deadline.
	asn = s.RequestWork("c1", 100, 1)
	if len(asn) != 1 || asn[0].Deadline != 400 {
		t.Fatalf("retimed assignment deadline = %+v, want 400", asn)
	}
	// The completed workunit is untouched.
	if wu := s.Workunit(1); wu.Timeout != 1200 {
		t.Fatalf("done workunit retimed: %v", wu.Timeout)
	}
}

// TestReliabilityQueryDoesNotCreateClients pins the satellite fix: a
// read-only lookup must not register a client as a side effect (phantom
// clients would count toward the hasReliableClient retry gate).
func TestReliabilityQueryDoesNotCreateClients(t *testing.T) {
	s := newTestScheduler()
	if got := s.Reliability("ghost"); got != 1 {
		t.Fatalf("unknown client reliability = %v, want 1", got)
	}
	if len(s.clients) != 0 {
		t.Fatalf("Reliability registered %d client(s)", len(s.clients))
	}
	// The phantom must not hold the retry gate open either: with only a
	// queried-but-never-seen client, the floor gate has no reliable host
	// and opens for whoever asks.
	cfg := DefaultSchedulerConfig()
	cfg.ReliabilityFloor = 0.9
	s = NewScheduler(cfg)
	s.AddWorkunit(Workunit{Name: "wu", Timeout: 10})
	s.Reliability("phantom") // must NOT register a reliable client
	for i := 0; i < 2; i++ {
		if asn := s.RequestWork("bad", 0, 1); len(asn) == 1 {
			s.CompleteResult(asn[0].ResultID, false, 0)
		}
	}
	if asn := s.RequestWork("bad", 1, 1); len(asn) == 0 {
		t.Fatal("phantom client from a reliability query gated the retry")
	}
}

func TestSetReliabilityFloorClamps(t *testing.T) {
	s := newTestScheduler()
	for in, want := range map[float64]float64{-0.5: 0, 0.3: 0.3, 1.7: 1} {
		s.SetReliabilityFloor(in)
		if got := s.Config().ReliabilityFloor; got != want {
			t.Errorf("SetReliabilityFloor(%v): floor = %v, want %v", in, got, want)
		}
	}
}

func TestRetimePendingSkipsTerminalWorkunits(t *testing.T) {
	cfg := DefaultSchedulerConfig()
	cfg.DefaultTimeout = 1200
	cfg.DefaultMaxErrors = 1
	cfg.ReliabilityFloor = 0
	s := NewScheduler(cfg)
	done := s.AddWorkunit(Workunit{Name: "done"})
	a := s.RequestWork("c1", 0, 1)
	s.CompleteResult(a[0].ResultID, true, 1) // "done" reaches WUDone
	failed := s.AddWorkunit(Workunit{Name: "failed"})
	for i := 0; i < 2; i++ { // exhaust "failed"'s budget of 1
		asn := s.RequestWork("c1", float64(i), 1)
		if len(asn) != 1 || asn[0].WUID != failed {
			t.Fatalf("setup: round %d assignment = %+v", i, asn)
		}
		s.CompleteResult(asn[0].ResultID, false, float64(i))
	}
	if st := s.Workunit(failed).Status(); st != WUFailed {
		t.Fatalf("setup: failed workunit is %v", st)
	}
	inflight := s.AddWorkunit(Workunit{Name: "inflight"})
	queued := s.AddWorkunit(Workunit{Name: "queued"})
	b := s.RequestWork("c1", 2, 1) // "inflight" goes out, "queued" stays
	if len(b) != 1 || b[0].WUID != inflight {
		t.Fatalf("setup: in-flight assignment = %+v", b)
	}

	s.RetimePending(300)
	if got := s.Workunit(done).Timeout; got != 1200 {
		t.Errorf("WUDone timeout retimed: %v", got)
	}
	if got := s.Workunit(failed).Timeout; got != 1200 {
		t.Errorf("WUFailed timeout retimed: %v", got)
	}
	if got := s.Workunit(queued).Timeout; got != 300 {
		t.Errorf("queued timeout = %v, want 300", got)
	}
	if got := s.Workunit(inflight).Timeout; got != 300 {
		t.Errorf("in-flight timeout = %v, want 300 (future reissues use it)", got)
	}
	// The already-issued result keeps the deadline it was sent with.
	if got := s.Result(b[0].ResultID).Deadline; got != 2+1200 {
		t.Errorf("issued deadline moved to %v", got)
	}
	// A non-positive retime is ignored.
	s.RetimePending(0)
	if got := s.Workunit(queued).Timeout; got != 300 {
		t.Errorf("RetimePending(0) changed timeout to %v", got)
	}
}

func TestSetDefaultTimeoutOnlyAffectsLaterWorkunits(t *testing.T) {
	s := newTestScheduler() // default timeout 100
	before := s.AddWorkunit(Workunit{Name: "before"})
	s.SetDefaultTimeout(900)
	after := s.AddWorkunit(Workunit{Name: "after"})
	if got := s.Workunit(before).Timeout; got != 100 {
		t.Errorf("pre-existing workunit timeout = %v, want 100", got)
	}
	if got := s.Workunit(after).Timeout; got != 900 {
		t.Errorf("new workunit timeout = %v, want 900", got)
	}
	// Non-positive values are ignored.
	s.SetDefaultTimeout(-5)
	if got := s.Config().DefaultTimeout; got != 900 {
		t.Errorf("SetDefaultTimeout(-5) changed default to %v", got)
	}
}

func TestDroppedClientDoesNotGateRetries(t *testing.T) {
	cfg := DefaultSchedulerConfig()
	cfg.ReliabilityFloor = 0.9
	s := NewScheduler(cfg)
	s.AddWorkunit(Workunit{Name: "wu", Timeout: 10})
	// "bad" sinks its own reliability failing the workunit.
	for i := 0; i < 6; i++ {
		asn := s.RequestWork("bad", 0, 1)
		if len(asn) == 0 {
			break
		}
		s.CompleteResult(asn[0].ResultID, false, 0)
	}
	// "good" is known and reliable, so the retry is reserved for it...
	s.RequestWork("good", 0, 0)
	if asn := s.RequestWork("bad", 2, 5); len(asn) != 0 {
		t.Fatalf("retried workunit assigned past the gate: %v", asn)
	}
	// ...but once "good" leaves the project, withholding the retry would
	// starve it forever: the gate must open for the remaining client.
	s.DropClient("good")
	if asn := s.RequestWork("bad", 3, 5); len(asn) == 0 {
		t.Fatal("retry starved: every reliable client is gone but the gate stayed closed")
	}
}

func TestStickyFileAffinity(t *testing.T) {
	s := newTestScheduler()
	// c1 has shardA cached (from a previous epoch).
	s.NoteCached("c1", "shardA")
	s.AddWorkunit(Workunit{Name: "b", InputFiles: []string{"shardB"}})
	s.AddWorkunit(Workunit{Name: "a", InputFiles: []string{"shardA"}})
	// Despite FIFO order (b first), c1 should receive the shardA workunit
	// first because it caches that file.
	asn := s.RequestWork("c1", 0, 1)
	if len(asn) != 1 || asn[0].Name != "a" {
		t.Fatalf("sticky affinity ignored: %+v", asn)
	}
}

func TestReplicationFirstWins(t *testing.T) {
	s := newTestScheduler()
	s.AddWorkunit(Workunit{Name: "r", Replication: 2})
	a1 := s.RequestWork("c1", 0, 1)
	a2 := s.RequestWork("c2", 0, 1)
	if len(a1) != 1 || len(a2) != 1 || a1[0].WUID != a2[0].WUID {
		t.Fatalf("replication did not issue two copies: %v %v", a1, a2)
	}
	_, canonical1, _ := s.CompleteResult(a1[0].ResultID, true, 5)
	if !canonical1 {
		t.Fatal("first replica should be canonical")
	}
	_, canonical2, _ := s.CompleteResult(a2[0].ResultID, true, 6)
	if canonical2 {
		t.Fatal("second replica must not be canonical")
	}
	if s.Result(a2[0].ResultID).Status != ResAbandoned {
		t.Fatalf("second replica status = %v", s.Result(a2[0].ResultID).Status)
	}
}

func TestReplicaQueueDroppedAfterCompletion(t *testing.T) {
	s := newTestScheduler()
	s.AddWorkunit(Workunit{Name: "r", Replication: 3})
	a1 := s.RequestWork("c1", 0, 1)
	s.CompleteResult(a1[0].ResultID, true, 1)
	// The two still-queued replicas must be gone.
	if got := s.RequestWork("c2", 2, 5); len(got) != 0 {
		t.Fatalf("completed workunit still assignable: %v", got)
	}
	if s.PendingCount() != 0 {
		t.Fatalf("PendingCount = %d", s.PendingCount())
	}
}

func TestNextDeadline(t *testing.T) {
	s := newTestScheduler()
	if _, ok := s.NextDeadline(); ok {
		t.Fatal("empty scheduler has no deadline")
	}
	s.AddWorkunit(Workunit{Name: "a", Timeout: 30})
	s.AddWorkunit(Workunit{Name: "b", Timeout: 20})
	s.RequestWork("c1", 0, 2)
	d, ok := s.NextDeadline()
	if !ok || d != 20 {
		t.Fatalf("NextDeadline = %v,%v want 20,true", d, ok)
	}
}

func TestInFlightCount(t *testing.T) {
	s := newTestScheduler()
	for i := 0; i < 3; i++ {
		s.AddWorkunit(Workunit{Name: "wu"})
	}
	asn := s.RequestWork("c1", 0, 2)
	if s.InFlight() != 2 {
		t.Fatalf("InFlight = %d, want 2", s.InFlight())
	}
	s.CompleteResult(asn[0].ResultID, true, 1)
	if s.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1", s.InFlight())
	}
}

func TestStatusStrings(t *testing.T) {
	if WUPending.String() != "pending" || WUDone.String() != "done" {
		t.Fatal("workunit status strings wrong")
	}
	if ResTimedOut.String() != "timed-out" || ResAbandoned.String() != "abandoned" {
		t.Fatal("result status strings wrong")
	}
	if WorkunitStatus(99).String() == "" || ResultStatus(99).String() == "" {
		t.Fatal("unknown status must still render")
	}
}

// Property: under arbitrary sequences of assignment, completion and
// timeout, every workunit eventually reaches a terminal state once enough
// valid completions are fed, and the Done() invariant agrees with
// per-workunit status.
func TestLifecycleInvariantProperty(t *testing.T) {
	f := func(seedOps []uint8) bool {
		cfg := DefaultSchedulerConfig()
		cfg.DefaultTimeout = 10
		cfg.DefaultMaxErrors = 3
		cfg.ReliabilityFloor = 0
		s := NewScheduler(cfg)
		for i := 0; i < 5; i++ {
			s.AddWorkunit(Workunit{Name: "wu"})
		}
		now := 0.0
		var open []int64
		for _, op := range seedOps {
			now += float64(op%7) / 2
			switch op % 3 {
			case 0:
				for _, a := range s.RequestWork("c", now, 2) {
					open = append(open, a.ResultID)
				}
			case 1:
				if len(open) > 0 {
					id := open[0]
					open = open[1:]
					if s.Result(id).Status == ResInProgress {
						s.CompleteResult(id, op%2 == 0, now)
					}
				}
			case 2:
				s.ExpireTimeouts(now)
			}
		}
		// Drain: give everything valid completions until done or failed.
		for round := 0; round < 100 && !s.Done(); round++ {
			now += 1
			for _, a := range s.RequestWork("c", now, 5) {
				s.CompleteResult(a.ResultID, true, now)
			}
			s.ExpireTimeouts(now)
		}
		return s.Done()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
