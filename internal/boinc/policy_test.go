package boinc

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// newPolicyScheduler builds a scheduler running the named registered
// policy with a fixed seed.
func newPolicyScheduler(t *testing.T, name string, floor float64) *Scheduler {
	t.Helper()
	p, err := NewPolicy(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSchedulerConfig()
	cfg.DefaultTimeout = 100
	cfg.ReliabilityFloor = floor
	cfg.Seed = 42
	s := NewScheduler(cfg)
	s.SetPolicy(p)
	return s
}

// TestPolicyConformance runs every registered policy through the
// invariants no policy may break: determinism under a fixed seed,
// respecting max, never handing one client two copies of a replicated
// workunit, honouring the reliability floor on retries, and not letting
// gone clients hold the retry gate open.
func TestPolicyConformance(t *testing.T) {
	for _, name := range PolicyNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Run("determinism", func(t *testing.T) { conformDeterminism(t, name) })
			t.Run("max", func(t *testing.T) { conformMax(t, name) })
			t.Run("replication", func(t *testing.T) { conformReplication(t, name) })
			t.Run("reliability-floor", func(t *testing.T) { conformFloor(t, name) })
			t.Run("gone-clients", func(t *testing.T) { conformGone(t, name) })
		})
	}
}

// conformSequence drives one fixed workload and returns the assignment
// log.
func conformSequence(t *testing.T, name string) []string {
	s := newPolicyScheduler(t, name, 0)
	for i := 0; i < 20; i++ {
		s.AddWorkunit(Workunit{
			Name:       fmt.Sprintf("wu%02d", i),
			InputFiles: []string{fmt.Sprintf("shard%d", i%5)},
			Timeout:    float64(50 + 10*(i%4)),
		})
	}
	s.NoteCached("c1", "shard2")
	var log []string
	now := 0.0
	for round := 0; round < 12; round++ {
		now += 5
		for _, id := range []string{"c1", "c2", "c3"} {
			for _, a := range s.RequestWork(id, now, 2) {
				log = append(log, fmt.Sprintf("%s<-%d", id, a.WUID))
				valid := (a.WUID+int64(round))%3 != 0
				s.CompleteResult(a.ResultID, valid, now+1)
			}
		}
	}
	return log
}

func conformDeterminism(t *testing.T, name string) {
	a := conformSequence(t, name)
	b := conformSequence(t, name)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different assignments:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("policy assigned nothing")
	}
}

func conformMax(t *testing.T, name string) {
	s := newPolicyScheduler(t, name, 0)
	for i := 0; i < 30; i++ {
		s.AddWorkunit(Workunit{Name: "wu"})
	}
	for _, max := range []int{0, 1, 3, 7, 100} {
		got := len(s.RequestWork("c1", 0, max))
		if got > max {
			t.Fatalf("max=%d but %d assigned", max, got)
		}
		if max > 0 && got == 0 && s.PendingCount() > 0 {
			t.Fatalf("max=%d, pending work, nothing assigned", max)
		}
	}
}

func conformReplication(t *testing.T, name string) {
	s := newPolicyScheduler(t, name, 0)
	for i := 0; i < 8; i++ {
		s.AddWorkunit(Workunit{Name: fmt.Sprintf("r%d", i), Replication: 3})
	}
	got := map[string]map[int64]int{}
	for round := 0; round < 10; round++ {
		for _, id := range []string{"c1", "c2", "c3", "c4"} {
			for _, a := range s.RequestWork(id, float64(round), 4) {
				if got[id] == nil {
					got[id] = map[int64]int{}
				}
				got[id][a.WUID]++
				if got[id][a.WUID] > 1 {
					t.Fatalf("round %d: client %s got workunit %d twice", round, id, a.WUID)
				}
			}
		}
	}
}

func conformFloor(t *testing.T, name string) {
	s := newPolicyScheduler(t, name, 0.9)
	s.AddWorkunit(Workunit{Name: "wu-a", Timeout: 10})
	s.AddWorkunit(Workunit{Name: "wu-b", Timeout: 10})
	// "bad" fails both workunits, sinking its score below the floor and
	// turning every pending workunit into a retry.
	for _, a := range s.RequestWork("bad", 0, 2) {
		s.CompleteResult(a.ResultID, false, 0)
	}
	if s.Reliability("bad") >= 0.9 {
		t.Fatalf("bad reliability still %v", s.Reliability("bad"))
	}
	// "good" is known and reliable (registered by asking, even for 0).
	s.RequestWork("good", 1, 0)
	// Whatever the policy prefers, every candidate is a retry, so the
	// unreliable client must get nothing...
	if asn := s.RequestWork("bad", 2, 5); len(asn) != 0 {
		t.Fatalf("policy %s: retried workunits reached an unreliable client: %v", name, asn)
	}
	// ...while the reliable client receives them.
	if asn := s.RequestWork("good", 3, 5); len(asn) == 0 {
		t.Fatalf("policy %s: reliable client did not receive the retries", name)
	}
}

func conformGone(t *testing.T, name string) {
	s := newPolicyScheduler(t, name, 0.9)
	s.AddWorkunit(Workunit{Name: "wu", Timeout: 10})
	for i := 0; i < 6; i++ {
		asn := s.RequestWork("bad", 0, 1)
		if len(asn) == 0 {
			break
		}
		s.CompleteResult(asn[0].ResultID, false, 0)
	}
	// "good" is known and reliable, so the retry is reserved for it.
	s.RequestWork("good", 0, 0)
	if asn := s.RequestWork("bad", 2, 5); len(asn) != 0 {
		t.Fatalf("retried workunit assigned past the gate: %v", asn)
	}
	// Once "good" is gone it must stop holding the gate: the remaining
	// client gets the retry instead of starving it forever.
	s.DropClient("good")
	if asn := s.RequestWork("bad", 3, 5); len(asn) == 0 {
		t.Fatalf("policy %s: retry starved behind a gone client", name)
	}
}

// referencePaperSelection reimplements the pre-policy-API RequestWork
// selection (full stable sort over every eligible candidate) directly
// against the scheduler's state. The paper policy must match it
// workunit-for-workunit: this is the byte-identical contract.
func referencePaperSelection(s *Scheduler, clientID string, max int) []int64 {
	c := s.peek(clientID)
	if c == nil {
		c = &clientState{id: clientID, reliability: 1, cached: map[string]bool{}}
	}
	type cand struct {
		pos   int
		id    int64
		score int
	}
	var cands []cand
	seen := map[int64]bool{}
	for pos, id := range s.pending {
		wu := s.wus[id]
		if wu == nil || wu.status == WUDone || wu.status == WUFailed {
			continue
		}
		if seen[id] {
			continue
		}
		if wu.Replication > 1 && s.assignedTo[id][clientID] {
			continue
		}
		if wu.errors > 0 && c.reliability < s.cfg.ReliabilityFloor && s.hasReliableClient() {
			continue
		}
		seen[id] = true
		sc := 0
		if s.cfg.StickyAffinity {
			sc = cacheScore(c, wu)
		}
		cands = append(cands, cand{pos: pos, id: id, score: sc})
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].pos < cands[j].pos
	})
	if len(cands) > max {
		cands = cands[:max]
	}
	var out []int64
	for _, cd := range cands {
		out = append(out, cd.id)
	}
	return out
}

// TestPaperPolicyMatchesReference drives randomized workloads and checks
// every RequestWork against the original algorithm's selection.
func TestPaperPolicyMatchesReference(t *testing.T) {
	f := func(ops []uint8) bool {
		cfg := DefaultSchedulerConfig()
		cfg.DefaultTimeout = 10
		cfg.DefaultMaxErrors = 1 << 20
		s := NewScheduler(cfg)
		for i := 0; i < 12; i++ {
			s.AddWorkunit(Workunit{
				Name:        fmt.Sprintf("wu%d", i),
				InputFiles:  []string{fmt.Sprintf("f%d", i%4), fmt.Sprintf("g%d", i%3)},
				Replication: 1 + i%2,
			})
		}
		clients := []string{"a", "b", "c"}
		now := 0.0
		var open []int64
		for _, op := range ops {
			now += float64(op%5) / 2
			client := clients[int(op)%len(clients)]
			switch op % 4 {
			case 0, 1:
				max := 1 + int(op)%3
				want := referencePaperSelection(s, client, max)
				asns := s.RequestWork(client, now, max)
				var got []int64
				for _, a := range asns {
					got = append(got, a.WUID)
					open = append(open, a.ResultID)
				}
				if !reflect.DeepEqual(got, want) {
					t.Logf("client %s max %d: got %v want %v", client, max, got, want)
					return false
				}
			case 2:
				if len(open) > 0 {
					id := open[0]
					open = open[1:]
					if s.Result(id).Status == ResInProgress {
						s.CompleteResult(id, op%3 != 0, now)
					}
				}
			case 3:
				s.ExpireTimeouts(now)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// rogue policy for TestSchedulerEnforcesInvariants: returns duplicate,
// unknown and over-max picks.
type rogue struct{}

func (rogue) Name() string { return "rogue" }
func (rogue) Select(view PolicyView, _ ClientInfo, max int) []int64 {
	var out []int64
	for i := 0; i < 3; i++ {
		for _, c := range view.Candidates {
			out = append(out, c.WUID) // every candidate three times
		}
	}
	return append(out, 99999, -1) // plus ids that were never workunits
}

// TestSchedulerEnforcesInvariants pins the mechanics/policy split: a
// misbehaving policy cannot over-assign, double-assign or issue
// non-candidates — it degrades to a smaller assignment, never an
// invalid one.
func TestSchedulerEnforcesInvariants(t *testing.T) {
	cfg := DefaultSchedulerConfig()
	s := NewScheduler(cfg)
	s.SetPolicy(rogue{})
	for i := 0; i < 5; i++ {
		s.AddWorkunit(Workunit{Name: fmt.Sprintf("wu%d", i)})
	}
	asns := s.RequestWork("c1", 0, 3)
	if len(asns) != 3 {
		t.Fatalf("rogue policy issued %d assignments, want 3", len(asns))
	}
	seen := map[int64]bool{}
	for _, a := range asns {
		if seen[a.WUID] {
			t.Fatalf("workunit %d issued twice in one round", a.WUID)
		}
		seen[a.WUID] = true
		if s.Workunit(a.WUID) == nil {
			t.Fatalf("assignment for unknown workunit %d", a.WUID)
		}
	}
	if s.PendingCount() != 2 {
		t.Fatalf("PendingCount = %d, want 2", s.PendingCount())
	}
}

func TestPolicyRegistry(t *testing.T) {
	names := PolicyNames()
	want := []string{"deadline-aware", "fifo", "locality-first", "paper", "random", "reliability-weighted"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("PolicyNames() = %v, want %v", names, want)
	}
	if _, err := NewPolicy("nope"); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("unknown policy error = %v", err)
	}
	if _, err := NewPolicy("paper", "extra"); err == nil {
		t.Fatal("paper with arguments must error")
	}
	if _, err := NewPolicy("random", "not-a-seed"); err == nil {
		t.Fatal("random with junk seed must error")
	}
	if p, err := NewPolicy("random", "7"); err != nil || p.Name() != "random" {
		t.Fatalf("random 7: %v %v", p, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	RegisterPolicy("paper", func(...string) (Policy, error) { return nil, nil })
}

// TestPolicyBehaviours spot-checks that each built-in actually expresses
// its preference (the conformance suite only checks invariants).
func TestPolicyBehaviours(t *testing.T) {
	t.Run("fifo-ignores-cache", func(t *testing.T) {
		s := newPolicyScheduler(t, "fifo", 0)
		s.NoteCached("c1", "shardA")
		s.AddWorkunit(Workunit{Name: "b", InputFiles: []string{"shardB"}})
		s.AddWorkunit(Workunit{Name: "a", InputFiles: []string{"shardA"}})
		asn := s.RequestWork("c1", 0, 1)
		if len(asn) != 1 || asn[0].Name != "b" {
			t.Fatalf("fifo did not pick the oldest workunit: %+v", asn)
		}
	})
	t.Run("locality-beats-fifo", func(t *testing.T) {
		s := newPolicyScheduler(t, "locality-first", 0)
		s.NoteCached("c1", "shardA")
		s.AddWorkunit(Workunit{Name: "b", InputFiles: []string{"shardB"}})
		s.AddWorkunit(Workunit{Name: "a", InputFiles: []string{"shardA"}})
		asn := s.RequestWork("c1", 0, 1)
		if len(asn) != 1 || asn[0].Name != "a" {
			t.Fatalf("locality-first ignored the cached shard: %+v", asn)
		}
	})
	t.Run("deadline-aware-edf", func(t *testing.T) {
		s := newPolicyScheduler(t, "deadline-aware", 0)
		s.AddWorkunit(Workunit{Name: "lax", Timeout: 900})
		s.AddWorkunit(Workunit{Name: "tight", Timeout: 60})
		asn := s.RequestWork("c1", 0, 1)
		if len(asn) != 1 || asn[0].Name != "tight" {
			t.Fatalf("deadline-aware did not pick the tightest deadline: %+v", asn)
		}
	})
	t.Run("reliability-weighted-retry-placement", func(t *testing.T) {
		// The floor is the pivot: clients below it push retries back,
		// clients above it pull them forward. A 0.95 floor puts one
		// failure (reliability 0.9) below and a fresh client above.
		s := newPolicyScheduler(t, "reliability-weighted", 0.95)
		// One retried workunit (errors > 0), one fresh one behind it.
		s.AddWorkunit(Workunit{Name: "retry", Timeout: 10})
		asn := s.RequestWork("flaky", 0, 1)
		s.CompleteResult(asn[0].ResultID, false, 0) // errors=1, reliability sinks
		s.AddWorkunit(Workunit{Name: "fresh"})
		// The unreliable client is steered to the fresh workunit first
		// (it still sees the retry: it is the only known client, so the
		// mechanics gate stays open).
		asn = s.RequestWork("flaky", 1, 1)
		if len(asn) != 1 || asn[0].Name != "fresh" {
			t.Fatalf("unreliable client was not steered to fresh work: %+v", asn)
		}
		// A reliable client prefers the retried workunit.
		s2 := newPolicyScheduler(t, "reliability-weighted", 0.95)
		s2.AddWorkunit(Workunit{Name: "retry", Timeout: 10})
		asn = s2.RequestWork("flaky", 0, 1)
		s2.CompleteResult(asn[0].ResultID, false, 0)
		s2.AddWorkunit(Workunit{Name: "fresh"})
		asn = s2.RequestWork("steady", 1, 1)
		if len(asn) != 1 || asn[0].Name != "retry" {
			t.Fatalf("reliable client was not steered to the retry: %+v", asn)
		}
	})
	t.Run("random-seed-changes-order", func(t *testing.T) {
		order := func(seed int64) []int64 {
			cfg := DefaultSchedulerConfig()
			cfg.Seed = seed
			s := NewScheduler(cfg)
			p, err := NewPolicy("random")
			if err != nil {
				t.Fatal(err)
			}
			s.SetPolicy(p)
			for i := 0; i < 16; i++ {
				s.AddWorkunit(Workunit{Name: fmt.Sprintf("wu%d", i)})
			}
			var ids []int64
			for _, a := range s.RequestWork("c1", 0, 8) {
				ids = append(ids, a.WUID)
			}
			return ids
		}
		a, b := order(1), order(2)
		if reflect.DeepEqual(a, b) {
			t.Fatalf("different run seeds produced the identical random order %v", a)
		}
		if !reflect.DeepEqual(order(1), order(1)) {
			t.Fatal("same seed must reproduce the order")
		}
	})
	t.Run("scored-combinator-weights", func(t *testing.T) {
		// Heavily weighted EDF term must override the cache term.
		p := &Scored{Label: "combo", Terms: []Term{
			{Name: "cache", Weight: 1, Score: func(_ PolicyView, _ ClientInfo, c Candidate) float64 {
				return float64(c.CacheScore)
			}},
			{Name: "edf", Weight: 100, Score: func(_ PolicyView, _ ClientInfo, c Candidate) float64 {
				return -c.Timeout / 1000
			}},
		}}
		cfg := DefaultSchedulerConfig()
		s := NewScheduler(cfg)
		s.SetPolicy(p)
		s.NoteCached("c1", "shardA")
		s.AddWorkunit(Workunit{Name: "cached-lax", InputFiles: []string{"shardA"}, Timeout: 900})
		s.AddWorkunit(Workunit{Name: "cold-tight", InputFiles: []string{"shardB"}, Timeout: 60})
		asn := s.RequestWork("c1", 0, 1)
		if len(asn) != 1 || asn[0].Name != "cold-tight" {
			t.Fatalf("weighted terms not combined: %+v", asn)
		}
		if p.Name() != "combo" {
			t.Fatalf("Name() = %q", p.Name())
		}
	})
}
