package boinc_test

import (
	"fmt"

	"vcdl/internal/boinc"
)

// ExampleScheduler walks the full workunit lifecycle: generation,
// assignment, a timeout on an unreliable client, reissue, and completion
// by a second client — the paper's §III-B fault-tolerance story.
func ExampleScheduler() {
	cfg := boinc.DefaultSchedulerConfig()
	cfg.DefaultTimeout = 300 // seconds, the paper's 5-minute to
	s := boinc.NewScheduler(cfg)
	id := s.AddWorkunit(boinc.Workunit{Name: "train_e001_s007"})

	// A client picks the subtask up but never returns it.
	s.RequestWork("flaky", 0, 1)
	fmt.Println("after assignment:", s.Workunit(id).Status())

	// The deadline passes; the scheduler reissues.
	expired := s.ExpireTimeouts(301)
	fmt.Println("expired results:", len(expired))

	// A steadier client finishes the reissued copy.
	asn := s.RequestWork("steady", 301, 1)
	_, canonical, _ := s.CompleteResult(asn[0].ResultID, true, 400)
	fmt.Println("canonical:", canonical, "status:", s.Workunit(id).Status())
	// Output:
	// after assignment: in-progress
	// expired results: 1
	// canonical: true status: done
}
