package boinc

import (
	"fmt"
	"testing"
)

// TestShardedIDStriping checks the routing contract the sharded upload
// path relies on: shard i of n only ever issues workunit and result IDs
// ≡ i (mod n), so a result ID alone identifies its owning shard.
func TestShardedIDStriping(t *testing.T) {
	const n = 4
	ss := NewShardedScheduler(DefaultSchedulerConfig(), n)
	wuShard := make(map[int64]int)
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("wu-%d", i)
		id := ss.AddWorkunit(Workunit{Name: name})
		want := int(stripeHash("", name) % n)
		if got := int(id % n); got != want {
			t.Fatalf("wu %q: id %d ≡ %d (mod %d), owning shard is %d", name, id, got, n, want)
		}
		wuShard[id] = want
	}
	seen := make(map[int64]bool)
	for c := 0; c < 8; c++ {
		for _, asn := range ss.RequestWork(fmt.Sprintf("c%d", c), 1, 8, nil) {
			if seen[asn.ResultID] {
				t.Fatalf("result %d issued twice", asn.ResultID)
			}
			seen[asn.ResultID] = true
			if int(asn.ResultID%n) != wuShard[asn.WUID] {
				t.Fatalf("result %d for wu %d crossed shards: result shard %d, wu shard %d",
					asn.ResultID, asn.WUID, asn.ResultID%n, wuShard[asn.WUID])
			}
			// The ID must route back to a shard that knows the result.
			known := false
			ss.ForResult(asn.ResultID, func(s *Scheduler) { known = s.Result(asn.ResultID) != nil })
			if !known {
				t.Fatalf("result %d not found on its residue-class shard", asn.ResultID)
			}
		}
	}
	if len(seen) != 64 {
		t.Fatalf("drained %d assignments, want 64", len(seen))
	}
}

// TestShardedSingleShardEquivalence pins the compatibility contract: at
// one shard the sharded wrapper issues exactly the historical ID
// sequence and assignment order of a bare Scheduler.
func TestShardedSingleShardEquivalence(t *testing.T) {
	cfg := DefaultSchedulerConfig()
	bare := NewScheduler(cfg)
	ss := NewShardedScheduler(cfg, 1)
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("wu-%d", i)
		a := bare.AddWorkunit(Workunit{Name: name})
		b := ss.AddWorkunit(Workunit{Name: name})
		if a != b {
			t.Fatalf("wu %d: bare id %d, sharded id %d", i, a, b)
		}
	}
	for round := 0; round < 4; round++ {
		id := fmt.Sprintf("c%d", round)
		bare.ExpireTimeouts(1)
		want := bare.RequestWork(id, 1, 3)
		got := ss.RequestWork(id, 1, 3, nil)
		if len(want) != len(got) {
			t.Fatalf("round %d: bare %d assignments, sharded %d", round, len(want), len(got))
		}
		for i := range want {
			if want[i].ResultID != got[i].ResultID || want[i].WUID != got[i].WUID {
				t.Fatalf("round %d asn %d: bare (res %d, wu %d), sharded (res %d, wu %d)",
					round, i, want[i].ResultID, want[i].WUID, got[i].ResultID, got[i].WUID)
			}
		}
	}
}

// TestShardedAggregates exercises the merged cross-shard views: summed
// stats, merged client summaries and the striped in-flight index.
func TestShardedAggregates(t *testing.T) {
	ss := NewShardedScheduler(DefaultSchedulerConfig(), 4)
	for i := 0; i < 32; i++ {
		ss.AddWorkunit(Workunit{Name: fmt.Sprintf("wu-%d", i)})
	}
	asns := ss.RequestWork("alice", 1, 5, nil)
	if len(asns) != 5 {
		t.Fatalf("alice got %d assignments, want 5", len(asns))
	}
	if got := ss.InFlightOf("alice"); got != 5 {
		t.Fatalf("InFlightOf(alice) = %d, want 5", got)
	}
	bsns := ss.RequestWork("bob", 1, 3, nil)
	if len(bsns) != 3 {
		t.Fatalf("bob got %d assignments, want 3", len(bsns))
	}
	st := ss.Stats()
	if st.Issued != 8 || st.InFlight != 8 || st.Clients != 2 {
		t.Fatalf("stats = issued %d inflight %d clients %d, want 8/8/2", st.Issued, st.InFlight, st.Clients)
	}
	if st.Pending != 32-8 {
		t.Fatalf("stats pending = %d, want %d", st.Pending, 32-8)
	}
	// Complete alice's work: the index must drain back to zero.
	for _, asn := range asns {
		ss.ForResult(asn.ResultID, func(s *Scheduler) {
			if _, _, err := s.CompleteResult(asn.ResultID, true, 2); err != nil {
				t.Fatalf("complete %d: %v", asn.ResultID, err)
			}
		})
	}
	if got := ss.InFlightOf("alice"); got != 0 {
		t.Fatalf("InFlightOf(alice) after completion = %d, want 0", got)
	}
	sums := ss.ClientSummaries()
	if len(sums) != 2 || sums[0].ID != "alice" || sums[1].ID != "bob" {
		t.Fatalf("summaries = %+v, want [alice bob]", sums)
	}
	if sums[1].InFlight != 3 {
		t.Fatalf("bob summary in-flight = %d, want 3", sums[1].InFlight)
	}
	if st := ss.Stats(); st.Completions != 5 || st.InFlight != 3 {
		t.Fatalf("stats after completions = %+v", st)
	}
}

// TestShardedDepthRewrite checks that sinks attached via AddSink see
// fleet-wide Pending/InFlight totals, not one shard's slice.
func TestShardedDepthRewrite(t *testing.T) {
	ss := NewShardedScheduler(DefaultSchedulerConfig(), 4)
	var last SchedEvent
	ss.AddSink(sinkFunc(func(e SchedEvent) { last = e }))
	for i := 0; i < 16; i++ {
		ss.AddWorkunit(Workunit{Name: fmt.Sprintf("wu-%d", i)})
	}
	// 16 pending copies spread over 4 shards: the final EvCreated event
	// must report the cross-shard total, not its own shard's count.
	if last.Kind != EvCreated || last.Pending != 16 {
		t.Fatalf("last created event pending = %d (kind %d), want 16", last.Pending, last.Kind)
	}
	ss.RequestWork("alice", 1, 6, nil)
	if last.Kind != EvAssigned || last.InFlight != 6 {
		t.Fatalf("last assigned event inflight = %d (kind %d), want 6", last.InFlight, last.Kind)
	}
	if last.Pending != 10 {
		t.Fatalf("last assigned event pending = %d, want 10", last.Pending)
	}
}
