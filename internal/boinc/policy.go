package boinc

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// This file is the pluggable scheduling-policy API. The scheduler's
// assignment decision — which pending workunits a requesting client
// receives, in what order — is a Policy; everything else (eligibility,
// the one-result-per-user replication rule, error budgets, deadlines,
// queue bookkeeping) stays mechanics inside Scheduler.RequestWork, so a
// policy can never violate a lifecycle invariant, only express a
// preference among already-eligible candidates.
//
// Determinism rules: Select must be a pure function of its arguments.
// Policies must not read wall-clock time, global RNG state or any other
// ambient input; stochastic policies derive their randomness from
// PolicyView.Seed and PolicyView.Request (the run seed and the
// monotonic request counter), which is what keeps simulations
// reproducible and the sweep-determinism contract (DESIGN.md §6) intact.
// The view and its Candidates slice are only valid for the duration of
// the Select call; policies must not retain them.

// Candidate is one assignable workunit in a PolicyView. All eligibility
// filtering has already happened: every candidate may legally be issued
// to the requesting client.
type Candidate struct {
	// WUID identifies the workunit; Select returns these.
	WUID int64
	// Pos is the position of the workunit's first queued copy in the
	// pending FIFO: lower means queued earlier. Positions are unique
	// within a view, so (score, Pos) is always a total order.
	Pos int
	// CacheScore counts how many of the workunit's input files the
	// requesting client already caches (sticky files, §III-B).
	CacheScore int
	// Errors is how many results for this workunit have timed out or
	// failed so far; > 0 marks a retry.
	Errors int
	// Timeout is the result deadline in seconds from assignment; the
	// issued result's absolute deadline is view.Now + Timeout.
	Timeout float64
}

// ClientInfo is the read-only scheduler state of the requesting client.
type ClientInfo struct {
	ID string
	// Reliability is the client's exponentially-averaged success score
	// in [0,1] ("assign subtasks to more reliable clients", §III-B).
	Reliability float64
	// InFlight counts the client's outstanding results.
	InFlight int
}

// PolicyView is the read-only snapshot a policy decides over.
type PolicyView struct {
	// Now is the virtual time of the request in seconds.
	Now float64
	// Seed is the run seed (SchedulerConfig.Seed); seeded policies mix
	// it with Request for per-call determinism.
	Seed int64
	// Request is the monotonic RequestWork call counter.
	Request int64
	// Sticky reports whether sticky-file affinity is enabled; the paper
	// policy ignores CacheScore when it is off.
	Sticky bool
	// ReliabilityFloor is the scheduler's current retry gate.
	ReliabilityFloor float64
	// Candidates lists the assignable workunits, in pending-queue order.
	Candidates []Candidate
}

// Policy chooses which eligible workunits a requesting client receives.
// Select returns up to max workunit IDs drawn from view.Candidates, in
// preference order. The scheduler ignores IDs that are not candidates,
// drops duplicates and truncates to max, so a policy bug degrades to a
// smaller assignment, never an invalid one.
type Policy interface {
	// Name identifies the policy in registries, traces and CSVs.
	Name() string
	Select(view PolicyView, client ClientInfo, max int) []int64
}

// PolicyFactory builds a policy instance from string arguments (the
// form scenario files and CLI flags use, e.g. "random 42").
type PolicyFactory func(args ...string) (Policy, error)

// policyRegistry maps policy names to factories. Built-ins register in
// init; callers add custom policies with RegisterPolicy.
var policyRegistry = map[string]PolicyFactory{}

// RegisterPolicy adds a named policy factory. Registering a duplicate
// name panics: policy names appear in scenario files and experiment
// CSVs, so silent replacement would corrupt comparisons.
func RegisterPolicy(name string, factory PolicyFactory) {
	if name == "" || factory == nil {
		panic("boinc: RegisterPolicy with empty name or nil factory")
	}
	if _, dup := policyRegistry[name]; dup {
		panic("boinc: duplicate policy " + name)
	}
	policyRegistry[name] = factory
}

// NewPolicy instantiates a registered policy by name.
func NewPolicy(name string, args ...string) (Policy, error) {
	factory, ok := policyRegistry[name]
	if !ok {
		return nil, fmt.Errorf("boinc: unknown policy %q (have %s)", name, strings.Join(PolicyNames(), ", "))
	}
	p, err := factory(args...)
	if err != nil {
		return nil, fmt.Errorf("boinc: policy %s: %w", name, err)
	}
	return p, nil
}

// PolicyNames lists the registered policies in sorted order.
func PolicyNames() []string {
	names := make([]string, 0, len(policyRegistry))
	for name := range policyRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Term is one weighted scoring dimension of a Scored policy.
type Term struct {
	// Name labels the term in diagnostics.
	Name string
	// Weight scales the term's contribution to a candidate's score.
	Weight float64
	// Score rates one candidate; higher is more preferred.
	Score func(view PolicyView, client ClientInfo, c Candidate) float64
}

// Scored is the composable policy combinator: a candidate's total score
// is the weighted sum of its terms, ties break FIFO (lower Pos first).
// Most built-in policies are Scored instances with one term, so new
// policies are weighted scoring terms rather than forks of the
// scheduler's assignment loop.
type Scored struct {
	// Label is the policy name; empty renders as "scored".
	Label string
	Terms []Term
}

// Name implements Policy.
func (p *Scored) Name() string {
	if p.Label == "" {
		return "scored"
	}
	return p.Label
}

// Select implements Policy: top-max candidates by weighted score, FIFO
// tie-break.
func (p *Scored) Select(view PolicyView, client ClientInfo, max int) []int64 {
	return selectTopK(view.Candidates, max, func(c Candidate) float64 {
		total := 0.0
		for _, t := range p.Terms {
			total += t.Weight * t.Score(view, client, c)
		}
		return total
	})
}

// topKStack is the rank-buffer size kept on the stack: requests for up
// to this many slots (every real client; BOINC hands out single-digit
// batches) rank candidates with zero heap traffic beyond the returned
// ID slice.
const topKStack = 16

// selectTopK picks the k highest-scoring candidates (ties broken by
// queue position) without sorting the whole slice: one pass maintains a
// small best-k array, so a 100k-workunit backlog costs O(n·k) with k the
// handful of slots a client asks for — not O(n log n) — and allocates
// only the result slice (the rank buffer lives on the stack for k ≤
// topKStack).
func selectTopK(cands []Candidate, k int, score func(Candidate) float64) []int64 {
	if k <= 0 || len(cands) == 0 {
		return nil
	}
	if k > len(cands) {
		k = len(cands)
	}
	type ranked struct {
		score float64
		pos   int
		wuid  int64
	}
	var stack [topKStack]ranked
	var best []ranked
	if k <= topKStack {
		best = stack[:0]
	} else {
		best = make([]ranked, 0, k)
	}
	better := func(a, b ranked) bool {
		if a.score != b.score {
			return a.score > b.score
		}
		return a.pos < b.pos
	}
	for _, c := range cands {
		r := ranked{score: score(c), pos: c.Pos, wuid: c.WUID}
		if len(best) == k && !better(r, best[k-1]) {
			continue
		}
		// Insert in rank order, dropping the current worst when full.
		i := len(best)
		if i < k {
			best = append(best, r)
		} else {
			i = k - 1
		}
		for ; i > 0 && better(r, best[i-1]); i-- {
			best[i] = best[i-1]
		}
		best[i] = r
	}
	out := make([]int64, len(best))
	for i, r := range best {
		out[i] = r.wuid
	}
	return out
}

// paperPolicy returns the default policy, byte-identical to the
// scheduler's original hard-coded behaviour: prefer workunits whose
// input files the client caches (most cached files first) when sticky
// affinity is on, then FIFO.
func paperPolicy() *Scored {
	return &Scored{Label: "paper", Terms: []Term{{
		Name:   "sticky-cache",
		Weight: 1,
		Score: func(view PolicyView, _ ClientInfo, c Candidate) float64 {
			if !view.Sticky {
				return 0
			}
			return float64(c.CacheScore)
		},
	}}}
}

// randomPolicy assigns a uniformly random eligible subset. It is
// deterministic: the shuffle RNG is seeded from the run seed (mixed
// with an optional explicit seed) and the request counter, so the same
// run replays identically while successive requests still differ.
type randomPolicy struct {
	seed int64
}

func (p *randomPolicy) Name() string { return "random" }

func (p *randomPolicy) Select(view PolicyView, _ ClientInfo, max int) []int64 {
	n := len(view.Candidates)
	if max <= 0 || n == 0 {
		return nil
	}
	if max > n {
		max = n
	}
	rng := rand.New(rand.NewSource(splitmix64(uint64(view.Seed) ^ uint64(p.seed)*0x9e3779b97f4a7c15 ^ uint64(view.Request))))
	// Partial Fisher-Yates: only the first max draws are needed.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	out := make([]int64, max)
	for i := 0; i < max; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = view.Candidates[idx[i]].WUID
	}
	return out
}

// splitmix64 is the standard 64-bit mixer; it decorrelates the
// (seed, request) stream fed to the per-call shuffle RNG.
func splitmix64(x uint64) int64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int64((x ^ (x >> 31)) & (1<<63 - 1))
}

func init() {
	noArgs := func(name string, build func() Policy) {
		RegisterPolicy(name, func(args ...string) (Policy, error) {
			if len(args) != 0 {
				return nil, fmt.Errorf("takes no arguments, got %v", args)
			}
			return build(), nil
		})
	}
	noArgs("paper", func() Policy { return paperPolicy() })
	noArgs("fifo", func() Policy {
		// No terms: every score is 0 and the FIFO tie-break decides.
		return &Scored{Label: "fifo"}
	})
	noArgs("locality-first", func() Policy {
		// Sticky-cache greedy even when the config disables the paper
		// policy's affinity preference: locality is the whole policy.
		return &Scored{Label: "locality-first", Terms: []Term{{
			Name:   "cache",
			Weight: 1,
			Score: func(_ PolicyView, _ ClientInfo, c Candidate) float64 {
				return float64(c.CacheScore)
			},
		}}}
	})
	noArgs("reliability-weighted", func() Policy {
		// Steer retried (risky) workunits toward clients above the
		// reliability floor and away from those below it; fresh work
		// stays FIFO.
		return &Scored{Label: "reliability-weighted", Terms: []Term{{
			Name:   "retry-reliability",
			Weight: 1,
			Score: func(view PolicyView, client ClientInfo, c Candidate) float64 {
				return float64(c.Errors) * (client.Reliability - view.ReliabilityFloor)
			},
		}}}
	})
	noArgs("deadline-aware", func() Policy {
		// EDF over workunit timeouts: tightest deadline first.
		return &Scored{Label: "deadline-aware", Terms: []Term{{
			Name:   "edf",
			Weight: 1,
			Score: func(_ PolicyView, _ ClientInfo, c Candidate) float64 {
				return -c.Timeout
			},
		}}}
	})
	RegisterPolicy("random", func(args ...string) (Policy, error) {
		switch len(args) {
		case 0:
			return &randomPolicy{}, nil
		case 1:
			seed, err := strconv.ParseInt(args[0], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad seed %q", args[0])
			}
			return &randomPolicy{seed: seed}, nil
		default:
			return nil, fmt.Errorf("want at most one seed argument, got %v", args)
		}
	})
}
