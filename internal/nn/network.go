package nn

import (
	"fmt"
	"math/rand"

	"vcdl/internal/tensor"
)

// Stateful is implemented by layers that carry non-trainable state that must
// travel with the parameter blob (e.g. batch-norm running statistics). This
// mirrors the paper's .h5 parameter file, which holds total parameters
// (4,972,746), not just the trainable subset (4,941,578).
type Stateful interface {
	State() []*tensor.Tensor
}

// State implements Stateful for BatchNorm.
func (bn *BatchNorm) State() []*tensor.Tensor {
	return []*tensor.Tensor{bn.RunningMean, bn.RunningVar}
}

// Network is a sequential stack of layers with a softmax cross-entropy
// head. A Network is not safe for concurrent use; distributed clients clone
// it (Clone) and train independently, exactly as the paper's clients train
// private model copies.
type Network struct {
	Layers []Layer
	Loss   SoftmaxCrossEntropy

	builder func() []Layer

	// Cached Params/Grads/state tensor lists. Layer tensor identity is
	// fixed at construction (layers mutate tensor *contents*, never swap
	// the tensors), so the lists are computed once and the optimizer's
	// per-step calls stop allocating.
	paramCache, gradCache, stateCache []*tensor.Tensor
}

// NewNetwork constructs a network from a builder so that the network can be
// cheaply re-instantiated (Clone) with identical architecture.
func NewNetwork(builder func() []Layer) *Network {
	return &Network{Layers: builder(), builder: builder}
}

// Init initializes all layer parameters from rng.
func (n *Network) Init(rng *rand.Rand) {
	for _, l := range n.Layers {
		l.Init(rng)
	}
}

// Clone returns an architecturally identical network carrying a deep copy
// of n's parameters and state.
func (n *Network) Clone() *Network {
	if n.builder == nil {
		panic("nn: Clone requires a network constructed with NewNetwork")
	}
	c := NewNetwork(n.builder)
	c.SetParameters(n.Parameters())
	return c
}

// Forward runs the full stack and returns the logits. Adjacent
// Dense→ReLU pairs take the fused bias+activation path, which is
// bit-identical to running the two layers separately (same operations
// in the same order, one traversal) — see Dense.forwardFused.
func (n *Network) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	out := x
	for i := 0; i < len(n.Layers); i++ {
		if d, ok := n.Layers[i].(*Dense); ok && i+1 < len(n.Layers) {
			if r, ok := n.Layers[i+1].(*ReLU); ok {
				out = d.forwardFused(out, r)
				i++
				continue
			}
		}
		out = n.Layers[i].Forward(out, training)
	}
	return out
}

// TrainBatch runs forward + backward on one mini-batch, accumulating
// parameter gradients, and returns the mean loss and the number of correct
// predictions. Callers are responsible for ZeroGrads and the optimizer
// step.
func (n *Network) TrainBatch(x *tensor.Tensor, labels []int) (loss float64, correct int) {
	logits := n.Forward(x, true)
	loss, grad, correct := n.Loss.LossAndGrad(logits, labels)
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return loss, correct
}

// EvalBatch returns the mean loss and correct count on a batch in
// inference mode (no gradients, running statistics used).
func (n *Network) EvalBatch(x *tensor.Tensor, labels []int) (loss float64, correct int) {
	logits := n.Forward(x, false)
	loss, _, correct = n.Loss.LossAndGrad(logits, labels)
	return loss, correct
}

// ZeroGrads clears all accumulated gradients.
func (n *Network) ZeroGrads() {
	for _, g := range n.GradTensors() {
		g.Zero()
	}
}

// ParamTensors returns all trainable parameter tensors in a stable
// order. The returned slice is cached and shared — callers must not
// modify it.
func (n *Network) ParamTensors() []*tensor.Tensor {
	if n.paramCache == nil {
		for _, l := range n.Layers {
			n.paramCache = append(n.paramCache, l.Params()...)
		}
	}
	return n.paramCache
}

// GradTensors returns gradient tensors aligned 1:1 with ParamTensors.
// The returned slice is cached and shared — callers must not modify it.
func (n *Network) GradTensors() []*tensor.Tensor {
	if n.gradCache == nil {
		for _, l := range n.Layers {
			n.gradCache = append(n.gradCache, l.Grads()...)
		}
	}
	return n.gradCache
}

// stateTensors returns non-trainable state tensors in a stable order.
func (n *Network) stateTensors() []*tensor.Tensor {
	if n.stateCache == nil {
		for _, l := range n.Layers {
			n.stateCache = appendState(n.stateCache, l)
		}
	}
	return n.stateCache
}

func appendState(ss []*tensor.Tensor, l Layer) []*tensor.Tensor {
	if s, ok := l.(Stateful); ok {
		ss = append(ss, s.State()...)
	}
	if r, ok := l.(*Residual); ok {
		for _, inner := range r.Body {
			ss = appendState(ss, inner)
		}
		for _, inner := range r.Proj {
			ss = appendState(ss, inner)
		}
	}
	return ss
}

// blobTensors is the full set of tensors included in the flat parameter
// blob: trainable parameters followed by non-trainable state. Built
// fresh so it never aliases the cached lists' backing arrays.
func (n *Network) blobTensors() []*tensor.Tensor {
	ps, ss := n.ParamTensors(), n.stateTensors()
	out := make([]*tensor.Tensor, 0, len(ps)+len(ss))
	return append(append(out, ps...), ss...)
}

// ParamCount returns the length of the flat parameter blob.
func (n *Network) ParamCount() int {
	c := 0
	for _, t := range n.blobTensors() {
		c += t.Size()
	}
	return c
}

// TrainableCount returns the number of trainable parameters only.
func (n *Network) TrainableCount() int {
	c := 0
	for _, t := range n.ParamTensors() {
		c += t.Size()
	}
	return c
}

// Parameters exports all parameters and state as one flat vector — the
// single value the paper stores in Redis per model.
func (n *Network) Parameters() []float64 {
	out := make([]float64, 0, n.ParamCount())
	for _, t := range n.blobTensors() {
		out = append(out, t.Data...)
	}
	return out
}

// SetParameters imports a flat vector produced by Parameters. It panics if
// the length does not match the architecture.
func (n *Network) SetParameters(flat []float64) {
	if len(flat) != n.ParamCount() {
		panic(fmt.Sprintf("nn: SetParameters got %d values, want %d", len(flat), n.ParamCount()))
	}
	off := 0
	for _, t := range n.blobTensors() {
		copy(t.Data, flat[off:off+t.Size()])
		off += t.Size()
	}
}

// Gradients exports the accumulated gradients (trainable slots only; state
// slots are zero-padded so the layout matches Parameters).
func (n *Network) Gradients() []float64 {
	out := make([]float64, n.ParamCount())
	off := 0
	for _, g := range n.GradTensors() {
		copy(out[off:], g.Data)
		off += g.Size()
	}
	return out
}

// Evaluate computes mean loss and accuracy on a full dataset, processing
// batchSize samples at a time. x has shape [N, ...], labels length N.
func (n *Network) Evaluate(x *tensor.Tensor, labels []int, batchSize int) (loss, acc float64) {
	total := x.Dim(0)
	if total == 0 {
		return 0, 0
	}
	if batchSize <= 0 {
		batchSize = total
	}
	sampleSize := x.Size() / total
	correct := 0
	lossSum := 0.0
	for start := 0; start < total; start += batchSize {
		end := start + batchSize
		if end > total {
			end = total
		}
		shape := append([]int{end - start}, x.Shape()[1:]...)
		batch := tensor.FromSlice(x.Data[start*sampleSize:end*sampleSize], shape...)
		l, c := n.EvalBatch(batch, labels[start:end])
		lossSum += l * float64(end-start)
		correct += c
	}
	return lossSum / float64(total), float64(correct) / float64(total)
}
