package nn

import (
	"math"
	"math/rand"
	"testing"

	"vcdl/internal/tensor"
)

// numericalLossGrad computes the loss of net on (x, labels) — a pure
// function of the current parameters — used for central finite differences.
func lossOf(net *Network, x *tensor.Tensor, labels []int) float64 {
	logits := net.Forward(x, true)
	loss, _, _ := net.Loss.LossAndGrad(logits, labels)
	return loss
}

// checkGradients compares analytic parameter gradients against central
// finite differences for a batch. It checks a subsample of parameter slots
// to keep the test fast on conv nets.
func checkGradients(t *testing.T, net *Network, x *tensor.Tensor, labels []int, eps, tol float64) {
	t.Helper()
	net.ZeroGrads()
	net.TrainBatch(x, labels)
	params := net.ParamTensors()
	grads := net.GradTensors()
	rng := rand.New(rand.NewSource(99))
	for pi, p := range params {
		n := p.Size()
		checks := n
		if checks > 12 {
			checks = 12
		}
		for k := 0; k < checks; k++ {
			j := rng.Intn(n)
			orig := p.Data[j]
			p.Data[j] = orig + eps
			lp := lossOf(net, x, labels)
			p.Data[j] = orig - eps
			lm := lossOf(net, x, labels)
			p.Data[j] = orig
			want := (lp - lm) / (2 * eps)
			got := grads[pi].Data[j]
			scale := math.Max(1, math.Max(math.Abs(want), math.Abs(got)))
			if math.Abs(want-got)/scale > tol {
				t.Fatalf("param %d slot %d: analytic %g vs numeric %g", pi, j, got, want)
			}
		}
	}
}

func randomBatch(rng *rand.Rand, shape []int, classes int) (*tensor.Tensor, []int) {
	x := tensor.New(shape...)
	x.RandNormal(0, 1, rng)
	labels := make([]int, shape[0])
	for i := range labels {
		labels[i] = rng.Intn(classes)
	}
	return x, labels
}

func TestGradCheckDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewNetwork(MLPBuilder(6, []int{5}, 3))
	net.Init(rng)
	x, labels := randomBatch(rng, []int{4, 6}, 3)
	checkGradients(t, net, x, labels, 1e-5, 1e-5)
}

func TestGradCheckDeepMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewNetwork(MLPBuilder(4, []int{8, 8, 8}, 4))
	net.Init(rng)
	x, labels := randomBatch(rng, []int{5, 4}, 4)
	checkGradients(t, net, x, labels, 1e-5, 1e-4)
}

func TestGradCheckConv(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewNetwork(func() []Layer {
		return []Layer{
			NewConv2D(2, 3, 3, 1, 1),
			NewReLU(),
			NewFlatten(),
			NewDense(3*4*4, 3),
		}
	})
	net.Init(rng)
	x, labels := randomBatch(rng, []int{3, 2, 4, 4}, 3)
	checkGradients(t, net, x, labels, 1e-5, 1e-4)
}

func TestGradCheckConvStride2(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := NewNetwork(func() []Layer {
		return []Layer{
			NewConv2D(1, 2, 3, 2, 1),
			NewFlatten(),
			NewDense(2*3*3, 2),
		}
	})
	net.Init(rng)
	x, labels := randomBatch(rng, []int{2, 1, 6, 6}, 2)
	checkGradients(t, net, x, labels, 1e-5, 1e-4)
}

func TestGradCheckMaxPool(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewNetwork(func() []Layer {
		return []Layer{
			NewConv2D(1, 2, 3, 1, 1),
			NewMaxPool2D(2),
			NewFlatten(),
			NewDense(2*2*2, 3),
		}
	})
	net.Init(rng)
	x, labels := randomBatch(rng, []int{3, 1, 4, 4}, 3)
	checkGradients(t, net, x, labels, 1e-5, 1e-4)
}

func TestGradCheckBatchNormDense(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewNetwork(func() []Layer {
		return []Layer{
			NewDense(5, 6),
			NewBatchNorm(6),
			NewReLU(),
			NewDense(6, 3),
		}
	})
	net.Init(rng)
	x, labels := randomBatch(rng, []int{6, 5}, 3)
	checkGradients(t, net, x, labels, 1e-5, 1e-3)
}

func TestGradCheckBatchNormConv(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewNetwork(func() []Layer {
		return []Layer{
			NewConv2D(2, 3, 3, 1, 1),
			NewBatchNorm(3),
			NewReLU(),
			NewFlatten(),
			NewDense(3*4*4, 2),
		}
	})
	net.Init(rng)
	x, labels := randomBatch(rng, []int{4, 2, 4, 4}, 2)
	checkGradients(t, net, x, labels, 1e-5, 1e-3)
}

func TestGradCheckResidualBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewNetwork(func() []Layer {
		return []Layer{
			NewConv2D(1, 4, 3, 1, 1),
			preActBlock(4),
			NewGlobalAvgPool2D(),
			NewDense(4, 3),
		}
	})
	net.Init(rng)
	x, labels := randomBatch(rng, []int{3, 1, 4, 4}, 3)
	checkGradients(t, net, x, labels, 1e-5, 1e-3)
}

func TestGradCheckResidualProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := NewNetwork(func() []Layer {
		return []Layer{
			NewResidualProj(
				[]Layer{NewConv2D(2, 4, 1, 1, 0)},
				NewConv2D(2, 4, 3, 1, 1),
				NewReLU(),
				NewConv2D(4, 4, 3, 1, 1),
			),
			NewGlobalAvgPool2D(),
			NewDense(4, 2),
		}
	})
	net.Init(rng)
	x, labels := randomBatch(rng, []int{2, 2, 4, 4}, 2)
	checkGradients(t, net, x, labels, 1e-5, 1e-3)
}

func TestGradCheckGlobalAvgPool(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net := NewNetwork(func() []Layer {
		return []Layer{
			NewConv2D(1, 3, 3, 1, 1),
			NewGlobalAvgPool2D(),
			NewDense(3, 2),
		}
	})
	net.Init(rng)
	x, labels := randomBatch(rng, []int{3, 1, 5, 5}, 2)
	checkGradients(t, net, x, labels, 1e-5, 1e-4)
}
