package nn

import (
	"math"
	"math/rand"
	"testing"

	"vcdl/internal/tensor"
)

func TestGradCheckTanh(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	net := NewNetwork(func() []Layer {
		return []Layer{NewDense(4, 5), NewTanh(), NewDense(5, 3)}
	})
	net.Init(rng)
	x, labels := randomBatch(rng, []int{4, 4}, 3)
	checkGradients(t, net, x, labels, 1e-5, 1e-4)
}

func TestGradCheckSigmoid(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	net := NewNetwork(func() []Layer {
		return []Layer{NewDense(4, 5), NewSigmoid(), NewDense(5, 3)}
	})
	net.Init(rng)
	x, labels := randomBatch(rng, []int{4, 4}, 3)
	checkGradients(t, net, x, labels, 1e-5, 1e-4)
}

func TestGradCheckAvgPool(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	net := NewNetwork(func() []Layer {
		return []Layer{
			NewConv2D(1, 2, 3, 1, 1),
			NewAvgPool2D(2),
			NewFlatten(),
			NewDense(2*2*2, 3),
		}
	})
	net.Init(rng)
	x, labels := randomBatch(rng, []int{3, 1, 4, 4}, 3)
	checkGradients(t, net, x, labels, 1e-5, 1e-4)
}

func TestTanhRange(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	x := tensor.New(100)
	x.RandNormal(0, 10, rng)
	out := NewTanh().Forward(x, true)
	for _, v := range out.Data {
		if v < -1 || v > 1 {
			t.Fatalf("tanh out of range: %v", v)
		}
	}
}

func TestSigmoidRange(t *testing.T) {
	x := tensor.FromSlice([]float64{-1000, 0, 1000}, 3)
	out := NewSigmoid().Forward(x, true)
	if out.Data[0] > 1e-6 || math.Abs(out.Data[1]-0.5) > 1e-12 || out.Data[2] < 1-1e-6 {
		t.Fatalf("sigmoid values: %v", out.Data)
	}
}

func TestDropoutInferenceIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	d := NewDropout(0.5)
	d.Init(rng)
	x := tensor.New(1000)
	x.Fill(1)
	out := d.Forward(x, false)
	for _, v := range out.Data {
		if v != 1 {
			t.Fatal("inference dropout must be identity")
		}
	}
}

func TestDropoutTrainingDropsAndRescales(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	d := NewDropout(0.5)
	d.Init(rng)
	x := tensor.New(10000)
	x.Fill(1)
	out := d.Forward(x, true)
	dropped := 0
	for _, v := range out.Data {
		switch v {
		case 0:
			dropped++
		case 2: // 1/(1-0.5)
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	rate := float64(dropped) / float64(x.Size())
	if math.Abs(rate-0.5) > 0.03 {
		t.Fatalf("drop rate %v, want ≈0.5", rate)
	}
	// Expectation is preserved: mean of survivors ≈ 1.
	if m := out.Mean(); math.Abs(m-1) > 0.05 {
		t.Fatalf("dropout mean %v, want ≈1", m)
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	d := NewDropout(0.3)
	d.Init(rng)
	x := tensor.New(500)
	x.Fill(1)
	out := d.Forward(x, true)
	grad := tensor.New(500)
	grad.Fill(1)
	back := d.Backward(grad)
	for i := range out.Data {
		if (out.Data[i] == 0) != (back.Data[i] == 0) {
			t.Fatal("backward mask disagrees with forward mask")
		}
	}
}

func TestDropoutProbabilityClamped(t *testing.T) {
	if NewDropout(-1).P != 0 {
		t.Fatal("negative p should clamp to 0")
	}
	if NewDropout(1.5).P >= 1 {
		t.Fatal("p must stay below 1")
	}
}

func TestAvgPoolValues(t *testing.T) {
	x := tensor.FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	out := NewAvgPool2D(2).Forward(x, true)
	want := []float64{3.5, 5.5, 11.5, 13.5}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("avg pool = %v, want %v", out.Data, want)
		}
	}
}

func TestDropoutInNetworkStillLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	net := NewNetwork(func() []Layer {
		return []Layer{NewDense(8, 16), NewReLU(), NewDropout(0.2), NewDense(16, 3)}
	})
	net.Init(rng)
	x, labels := randomBatch(rng, []int{24, 8}, 3)
	first := lossOf(net, x, labels)
	for i := 0; i < 60; i++ {
		net.ZeroGrads()
		net.TrainBatch(x, labels)
		params, grads := net.ParamTensors(), net.GradTensors()
		for j := range params {
			params[j].Axpy(-0.05, grads[j])
		}
	}
	// Evaluate without dropout.
	logits := net.Forward(x, false)
	last, _, _ := net.Loss.LossAndGrad(logits, labels)
	if last >= first {
		t.Fatalf("dropout network did not learn: %v -> %v", first, last)
	}
}
