package nn

import (
	"fmt"
	"math/rand"

	"vcdl/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW inputs implemented with im2col so
// the inner loop is a matrix multiply.
type Conv2D struct {
	InC, OutC, K, Stride, Pad int

	W, B   *tensor.Tensor // W: [OutC, InC*K*K], B: [OutC]
	dW, dB *tensor.Tensor

	dims tensor.ConvDims
	cols *tensor.Tensor

	// Reused scratch for the lowering pipeline: the matmul product and
	// NCHW output on forward; the rearranged grad, weight-grad product,
	// bias-grad sums, column grad and input grad on backward. Every
	// buffer is fully overwritten (or zeroed by its Into kernel) per
	// call, so reuse cannot change results.
	prod, out                     *tensor.Tensor
	g, dWprod, dBsum, dCols, dImg *tensor.Tensor
}

// NewConv2D creates a square-kernel convolution layer.
func NewConv2D(inC, outC, k, stride, pad int) *Conv2D {
	return &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		W:  tensor.New(outC, inC*k*k),
		B:  tensor.New(outC),
		dW: tensor.New(outC, inC*k*k),
		dB: tensor.New(outC),
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return "conv2d" }

// Init implements Layer using He-normal initialization with fan-in
// InC*K*K.
func (c *Conv2D) Init(rng *rand.Rand) {
	c.W.HeNormal(c.InC*c.K*c.K, rng)
	c.B.Zero()
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D expects [N,%d,H,W], got %v", c.InC, x.Shape()))
	}
	d, err := tensor.NewConvDims(x.Dim(0), c.InC, x.Dim(2), x.Dim(3), c.OutC, c.K, c.K, c.Stride, c.Pad)
	if err != nil {
		panic("nn: " + err.Error())
	}
	c.dims = d
	c.cols = tensor.EnsureShape(c.cols, d.Batch*d.OutH*d.OutW, d.InC*d.KH*d.KW)
	tensor.Im2ColInto(c.cols, x, d)
	// [N*OH*OW, InC*K*K] @ [InC*K*K, OutC] -> [N*OH*OW, OutC]
	c.prod = tensor.EnsureShape(c.prod, d.Batch*d.OutH*d.OutW, d.OutC)
	prod := tensor.MatMulTransBInto(c.prod, c.cols, c.W)
	prod.AddRowVector(c.B)
	// Rearrange [N*OH*OW, OutC] to [N, OutC, OH, OW].
	c.out = tensor.EnsureShape(c.out, d.Batch, d.OutC, d.OutH, d.OutW)
	out := c.out
	ohw := d.OutH * d.OutW
	for n := 0; n < d.Batch; n++ {
		for p := 0; p < ohw; p++ {
			row := prod.Data[(n*ohw+p)*d.OutC:]
			for oc := 0; oc < d.OutC; oc++ {
				out.Data[(n*d.OutC+oc)*ohw+p] = row[oc]
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	d := c.dims
	ohw := d.OutH * d.OutW
	// Rearrange grad [N, OutC, OH, OW] to [N*OH*OW, OutC].
	c.g = tensor.EnsureShape(c.g, d.Batch*ohw, d.OutC)
	g := c.g
	for n := 0; n < d.Batch; n++ {
		for oc := 0; oc < d.OutC; oc++ {
			src := grad.Data[(n*d.OutC+oc)*ohw:]
			for p := 0; p < ohw; p++ {
				g.Data[(n*ohw+p)*d.OutC+oc] = src[p]
			}
		}
	}
	// dW[OutC, InC*K*K] += gᵀ @ cols ; dB += column sums of g. Both run
	// through zeroed scratch then AddInPlace to keep the historical
	// accumulation order (float addition is order-sensitive).
	c.dWprod = tensor.EnsureShape(c.dWprod, c.OutC, c.InC*c.K*c.K)
	c.dW.AddInPlace(tensor.MatMulTransAInto(c.dWprod, g, c.cols))
	c.dBsum = tensor.EnsureShape(c.dBsum, c.OutC)
	c.dB.AddInPlace(tensor.SumRowsInto(c.dBsum, g))
	// dCols = g @ W ; dX = col2im(dCols).
	c.dCols = tensor.EnsureShape(c.dCols, d.Batch*ohw, d.InC*d.KH*d.KW)
	tensor.MatMulInto(c.dCols, g, c.W)
	c.dImg = tensor.EnsureShape(c.dImg, d.Batch, d.InC, d.InH, d.InW)
	return tensor.Col2ImInto(c.dImg, c.dCols, d)
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.dW, c.dB} }
