package nn

import (
	"fmt"
	"math"

	"vcdl/internal/tensor"
)

// SoftmaxCrossEntropy fuses the softmax activation with the categorical
// cross-entropy loss, the standard classification head. Labels are class
// indices.
type SoftmaxCrossEntropy struct {
	// grad is the reused gradient output, fully assigned per call and
	// valid until the next LossAndGrad call.
	grad *tensor.Tensor
}

// LossAndGrad computes the mean cross-entropy loss over the batch, the
// gradient with respect to the logits, and the number of correct argmax
// predictions. logits has shape [N, classes]. The returned gradient is
// a reused buffer, valid until the next call.
func (sce *SoftmaxCrossEntropy) LossAndGrad(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor, correct int) {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy expects [N, classes], got %v", logits.Shape()))
	}
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), n))
	}
	sce.grad = tensor.EnsureShape(sce.grad, n, c)
	grad = sce.grad
	invN := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		row := logits.Data[i*c : (i+1)*c]
		label := labels[i]
		if label < 0 || label >= c {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", label, c))
		}
		// Numerically stable log-sum-exp.
		maxV := row[0]
		argmax := 0
		for j, v := range row {
			if v > maxV {
				maxV, argmax = v, j
			}
		}
		if argmax == label {
			correct++
		}
		sumExp := 0.0
		for _, v := range row {
			sumExp += math.Exp(v - maxV)
		}
		logSumExp := maxV + math.Log(sumExp)
		loss += (logSumExp - row[label]) * invN
		gi := grad.Data[i*c : (i+1)*c]
		for j, v := range row {
			p := math.Exp(v - logSumExp)
			gi[j] = p * invN
		}
		gi[label] -= invN
	}
	return loss, grad, correct
}

// Probabilities returns the softmax of each row of logits as a new tensor.
func (SoftmaxCrossEntropy) Probabilities(logits *tensor.Tensor) *tensor.Tensor {
	n, c := logits.Dim(0), logits.Dim(1)
	out := tensor.New(n, c)
	for i := 0; i < n; i++ {
		row := logits.Data[i*c : (i+1)*c]
		maxV := row[0]
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		sumExp := 0.0
		oi := out.Data[i*c : (i+1)*c]
		for j, v := range row {
			oi[j] = math.Exp(v - maxV)
			sumExp += oi[j]
		}
		for j := range oi {
			oi[j] /= sumExp
		}
	}
	return out
}
