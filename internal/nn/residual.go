package nn

import (
	"math/rand"

	"vcdl/internal/tensor"
)

// Residual wraps a stack of layers with an identity skip connection:
// y = x + F(x). The wrapped stack must preserve shape (the pre-activation
// ResNetV2 pattern the paper's model uses). For dimension-changing blocks,
// provide a Projection layer stack applied to the skip path.
type Residual struct {
	Body []Layer
	// Proj, if non-nil, is applied to the skip path (1x1 conv etc.).
	Proj []Layer

	// sum/gsum are the reused forward/backward join outputs, fully
	// assigned per call. They are owned by this block, so they never
	// alias the body/skip operands (which belong to inner layers).
	sum, gsum *tensor.Tensor
}

// NewResidual creates an identity-skip residual block.
func NewResidual(body ...Layer) *Residual { return &Residual{Body: body} }

// NewResidualProj creates a residual block whose skip path runs through
// proj (used when the body changes channel count or spatial size).
func NewResidualProj(proj []Layer, body ...Layer) *Residual {
	return &Residual{Body: body, Proj: proj}
}

// Name implements Layer.
func (r *Residual) Name() string { return "residual" }

// Init implements Layer.
func (r *Residual) Init(rng *rand.Rand) {
	for _, l := range r.Body {
		l.Init(rng)
	}
	for _, l := range r.Proj {
		l.Init(rng)
	}
}

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	out := x
	for _, l := range r.Body {
		out = l.Forward(out, training)
	}
	skip := x
	for _, l := range r.Proj {
		skip = l.Forward(skip, training)
	}
	r.sum = tensor.EnsureShape(r.sum, out.Shape()...)
	return tensor.AddInto(r.sum, out, skip)
}

// Backward implements Layer.
func (r *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	bodyGrad := grad
	for i := len(r.Body) - 1; i >= 0; i-- {
		bodyGrad = r.Body[i].Backward(bodyGrad)
	}
	skipGrad := grad
	for i := len(r.Proj) - 1; i >= 0; i-- {
		skipGrad = r.Proj[i].Backward(skipGrad)
	}
	r.gsum = tensor.EnsureShape(r.gsum, bodyGrad.Shape()...)
	return tensor.AddInto(r.gsum, bodyGrad, skipGrad)
}

// Params implements Layer.
func (r *Residual) Params() []*tensor.Tensor {
	var ps []*tensor.Tensor
	for _, l := range r.Body {
		ps = append(ps, l.Params()...)
	}
	for _, l := range r.Proj {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Grads implements Layer.
func (r *Residual) Grads() []*tensor.Tensor {
	var gs []*tensor.Tensor
	for _, l := range r.Body {
		gs = append(gs, l.Grads()...)
	}
	for _, l := range r.Proj {
		gs = append(gs, l.Grads()...)
	}
	return gs
}
