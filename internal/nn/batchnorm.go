package nn

import (
	"fmt"
	"math"
	"math/rand"

	"vcdl/internal/tensor"
)

// BatchNorm normalizes activations per feature. For rank-2 inputs [N, F] it
// normalizes each column; for NCHW inputs it normalizes each channel over
// N×H×W. Gamma and Beta are trainable; running statistics are used at
// inference time. The running statistics are intentionally part of
// Params/Grads-exported state only via gamma/beta — the moments travel with
// the struct, mirroring TensorFlow's non-trainable variables (the paper's
// model has 4,972,746 total but 4,941,578 trainable parameters for the same
// reason).
type BatchNorm struct {
	F        int
	Eps      float64
	Momentum float64

	Gamma, Beta   *tensor.Tensor
	dGamma, dBeta *tensor.Tensor

	RunningMean, RunningVar *tensor.Tensor

	// cached for backward
	xhat    *tensor.Tensor
	invStd  []float64
	shape   []int
	grouped bool // true when input was NCHW

	// out/gout are the reused forward/backward outputs, fully
	// overwritten per call.
	out, gout *tensor.Tensor
}

// NewBatchNorm creates a batch-norm layer over f features (columns for
// dense activations, channels for convolutional activations).
func NewBatchNorm(f int) *BatchNorm {
	bn := &BatchNorm{
		F: f, Eps: 1e-5, Momentum: 0.9,
		Gamma: tensor.New(f), Beta: tensor.New(f),
		dGamma: tensor.New(f), dBeta: tensor.New(f),
		RunningMean: tensor.New(f), RunningVar: tensor.New(f),
	}
	return bn
}

// Name implements Layer.
func (bn *BatchNorm) Name() string { return "batchnorm" }

// Init implements Layer: gamma=1, beta=0, running stats reset.
func (bn *BatchNorm) Init(*rand.Rand) {
	bn.Gamma.Fill(1)
	bn.Beta.Zero()
	bn.RunningMean.Zero()
	bn.RunningVar.Fill(1)
}

// view returns x viewed as [groups, F, inner] index helpers: for rank-2
// inputs groups=N, inner=1 with features contiguous; for NCHW, features are
// channels and inner=H*W.
func (bn *BatchNorm) checkShape(x *tensor.Tensor) (groups, inner int) {
	switch x.Rank() {
	case 2:
		if x.Dim(1) != bn.F {
			panic(fmt.Sprintf("nn: BatchNorm(%d) got %v", bn.F, x.Shape()))
		}
		bn.grouped = false
		return x.Dim(0), 1
	case 4:
		if x.Dim(1) != bn.F {
			panic(fmt.Sprintf("nn: BatchNorm(%d) got %v", bn.F, x.Shape()))
		}
		bn.grouped = true
		return x.Dim(0), x.Dim(2) * x.Dim(3)
	default:
		panic(fmt.Sprintf("nn: BatchNorm expects rank 2 or 4, got %v", x.Shape()))
	}
}

// featureIndex returns the flat offset of (group g, feature f, inner i).
func (bn *BatchNorm) featureIndex(g, f, i, inner int) int {
	return (g*bn.F+f)*inner + i
}

// Forward implements Layer. The loops run over contiguous per-(sample,
// feature) slices — this layer dominates training time for small conv
// nets, so the inner loops avoid any index arithmetic per element.
func (bn *BatchNorm) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	groups, inner := bn.checkShape(x)
	bn.shape = append(bn.shape[:0], x.Shape()...)
	bn.out = tensor.EnsureShape(bn.out, x.Shape()...)
	out := bn.out
	count := float64(groups * inner)
	if bn.invStd == nil || len(bn.invStd) != bn.F {
		bn.invStd = make([]float64, bn.F)
	}
	bn.xhat = tensor.EnsureShape(bn.xhat, x.Shape()...)
	for f := 0; f < bn.F; f++ {
		var mean, variance float64
		if training {
			for g := 0; g < groups; g++ {
				row := x.Data[(g*bn.F+f)*inner : (g*bn.F+f+1)*inner]
				for _, v := range row {
					mean += v
				}
			}
			mean /= count
			for g := 0; g < groups; g++ {
				row := x.Data[(g*bn.F+f)*inner : (g*bn.F+f+1)*inner]
				for _, v := range row {
					d := v - mean
					variance += d * d
				}
			}
			variance /= count
			bn.RunningMean.Data[f] = bn.Momentum*bn.RunningMean.Data[f] + (1-bn.Momentum)*mean
			bn.RunningVar.Data[f] = bn.Momentum*bn.RunningVar.Data[f] + (1-bn.Momentum)*variance
		} else {
			mean = bn.RunningMean.Data[f]
			variance = bn.RunningVar.Data[f]
		}
		inv := 1.0 / math.Sqrt(variance+bn.Eps)
		bn.invStd[f] = inv
		gamma, beta := bn.Gamma.Data[f], bn.Beta.Data[f]
		for g := 0; g < groups; g++ {
			base := (g*bn.F + f) * inner
			xr := x.Data[base : base+inner]
			xh := bn.xhat.Data[base : base+inner]
			or := out.Data[base : base+inner]
			for i, v := range xr {
				h := (v - mean) * inv
				xh[i] = h
				or[i] = gamma*h + beta
			}
		}
	}
	return out
}

// Backward implements Layer (training-mode gradient).
func (bn *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	groups := bn.shape[0]
	inner := 1
	if bn.grouped {
		inner = bn.shape[2] * bn.shape[3]
	}
	count := float64(groups * inner)
	bn.gout = tensor.EnsureShape(bn.gout, bn.shape...)
	out := bn.gout
	for f := 0; f < bn.F; f++ {
		var sumG, sumGX float64
		for g := 0; g < groups; g++ {
			base := (g*bn.F + f) * inner
			gr := grad.Data[base : base+inner]
			xh := bn.xhat.Data[base : base+inner]
			for i, gv := range gr {
				sumG += gv
				sumGX += gv * xh[i]
			}
		}
		bn.dGamma.Data[f] += sumGX
		bn.dBeta.Data[f] += sumG
		scale := bn.Gamma.Data[f] * bn.invStd[f] / count
		for g := 0; g < groups; g++ {
			base := (g*bn.F + f) * inner
			gr := grad.Data[base : base+inner]
			xh := bn.xhat.Data[base : base+inner]
			or := out.Data[base : base+inner]
			for i, gv := range gr {
				or[i] = scale * (count*gv - sumG - xh[i]*sumGX)
			}
		}
	}
	return out
}

// Params implements Layer.
func (bn *BatchNorm) Params() []*tensor.Tensor { return []*tensor.Tensor{bn.Gamma, bn.Beta} }

// Grads implements Layer.
func (bn *BatchNorm) Grads() []*tensor.Tensor { return []*tensor.Tensor{bn.dGamma, bn.dBeta} }
