package nn

import (
	"math"
	"math/rand"

	"vcdl/internal/tensor"
)

// Additional activations and regularization layers. The paper's CIFAR-10
// model deliberately omits dropout and regularization (§IV-A: "to keep our
// model simple"), but a usable library provides them; they are exercised
// by tests and available to downstream models.

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	out *tensor.Tensor
}

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Name implements Layer.
func (t *Tanh) Name() string { return "tanh" }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	t.out = tensor.Map(x, math.Tanh)
	return t.out
}

// Backward implements Layer: d tanh = 1 − tanh².
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	for i, y := range t.out.Data {
		out.Data[i] *= 1 - y*y
	}
	return out
}

// Params implements Layer.
func (t *Tanh) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (t *Tanh) Grads() []*tensor.Tensor { return nil }

// Init implements Layer.
func (t *Tanh) Init(*rand.Rand) {}

// Sigmoid is the logistic activation.
type Sigmoid struct {
	out *tensor.Tensor
}

// NewSigmoid returns a Sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Name implements Layer.
func (s *Sigmoid) Name() string { return "sigmoid" }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	s.out = tensor.Map(x, func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	return s.out
}

// Backward implements Layer: dσ = σ(1−σ).
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	for i, y := range s.out.Data {
		out.Data[i] *= y * (1 - y)
	}
	return out
}

// Params implements Layer.
func (s *Sigmoid) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (s *Sigmoid) Grads() []*tensor.Tensor { return nil }

// Init implements Layer.
func (s *Sigmoid) Init(*rand.Rand) {}

// Dropout zeroes activations with probability P during training and
// rescales survivors by 1/(1−P) (inverted dropout); inference is the
// identity.
type Dropout struct {
	P    float64
	rng  *rand.Rand
	mask []bool
}

// NewDropout creates a dropout layer with drop probability p.
func NewDropout(p float64) *Dropout {
	if p < 0 {
		p = 0
	}
	if p >= 1 {
		p = 0.99
	}
	return &Dropout{P: p, rng: rand.New(rand.NewSource(1))}
}

// Name implements Layer.
func (d *Dropout) Name() string { return "dropout" }

// Init implements Layer: reseeds the mask source so cloned networks drop
// independently yet reproducibly.
func (d *Dropout) Init(rng *rand.Rand) {
	d.rng = rand.New(rand.NewSource(rng.Int63()))
}

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	if !training || d.P == 0 {
		d.mask = d.mask[:0]
		return x
	}
	out := x.Clone()
	if cap(d.mask) < x.Size() {
		d.mask = make([]bool, x.Size())
	}
	d.mask = d.mask[:x.Size()]
	scale := 1 / (1 - d.P)
	for i := range out.Data {
		if d.rng.Float64() < d.P {
			d.mask[i] = false
			out.Data[i] = 0
		} else {
			d.mask[i] = true
			out.Data[i] *= scale
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if len(d.mask) == 0 {
		return grad
	}
	out := grad.Clone()
	scale := 1 / (1 - d.P)
	for i := range out.Data {
		if d.mask[i] {
			out.Data[i] *= scale
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// Params implements Layer.
func (d *Dropout) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (d *Dropout) Grads() []*tensor.Tensor { return nil }

// AvgPool2D downsamples NCHW activations with non-overlapping K×K mean
// windows. H and W must be divisible by K.
type AvgPool2D struct {
	K       int
	inShape []int

	// out/gout are the reused forward/backward outputs: out is fully
	// assigned per call, gout is zeroed before window accumulation.
	out, gout *tensor.Tensor
}

// NewAvgPool2D creates an average-pooling layer with window and stride k.
func NewAvgPool2D(k int) *AvgPool2D { return &AvgPool2D{K: k} }

// Name implements Layer.
func (p *AvgPool2D) Name() string { return "avgpool2d" }

// Forward implements Layer.
func (p *AvgPool2D) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if h%p.K != 0 || w%p.K != 0 {
		panic("nn: AvgPool2D input not divisible by window")
	}
	oh, ow := h/p.K, w/p.K
	p.inShape = append(p.inShape[:0], n, c, h, w)
	p.out = tensor.EnsureShape(p.out, n, c, oh, ow)
	out := p.out
	inv := 1.0 / float64(p.K*p.K)
	for i := 0; i < n*c; i++ {
		plane := x.Data[i*h*w:]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				s := 0.0
				for ky := 0; ky < p.K; ky++ {
					for kx := 0; kx < p.K; kx++ {
						s += plane[(oy*p.K+ky)*w+ox*p.K+kx]
					}
				}
				out.Data[(i*oh+oy)*ow+ox] = s * inv
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	oh, ow := h/p.K, w/p.K
	p.gout = tensor.EnsureShape(p.gout, n, c, h, w)
	out := p.gout
	out.Zero()
	inv := 1.0 / float64(p.K*p.K)
	for i := 0; i < n*c; i++ {
		plane := out.Data[i*h*w:]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := grad.Data[(i*oh+oy)*ow+ox] * inv
				for ky := 0; ky < p.K; ky++ {
					for kx := 0; kx < p.K; kx++ {
						plane[(oy*p.K+ky)*w+ox*p.K+kx] += g
					}
				}
			}
		}
	}
	return out
}

// Params implements Layer.
func (p *AvgPool2D) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *AvgPool2D) Grads() []*tensor.Tensor { return nil }

// Init implements Layer.
func (p *AvgPool2D) Init(*rand.Rand) {}
