// Package nn implements the neural-network substrate of VCDL: layers with
// explicit forward/backward passes, a sequential Network container with
// residual blocks, a softmax cross-entropy head, and flat parameter
// import/export so the parameter server and stores can treat a model as one
// opaque vector (the paper stores all parameters of a model as a single
// value).
package nn

import (
	"math/rand"

	"vcdl/internal/tensor"
)

// Layer is a differentiable network stage. Forward consumes the previous
// activation; Backward consumes dLoss/dOutput and returns dLoss/dInput,
// accumulating parameter gradients internally. Layers cache whatever they
// need between the two calls and are not safe for concurrent use; each
// training client owns a private clone of the network.
type Layer interface {
	// Name identifies the layer kind for debugging and serialization.
	Name() string
	// Forward computes the layer output. training toggles behaviour that
	// differs between training and inference (e.g. batch-norm statistics).
	Forward(x *tensor.Tensor, training bool) *tensor.Tensor
	// Backward propagates the gradient and accumulates parameter grads.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameter tensors (may be empty).
	Params() []*tensor.Tensor
	// Grads returns gradient tensors aligned 1:1 with Params.
	Grads() []*tensor.Tensor
	// Init (re)initializes parameters using rng.
	Init(rng *rand.Rand)
}

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool

	// out and gout are the reused forward/backward outputs, fully
	// overwritten per call.
	out, gout *tensor.Tensor
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// ensureMask sizes the activation mask for n elements and returns it.
func (r *ReLU) ensureMask(n int) []bool {
	if cap(r.mask) < n {
		r.mask = make([]bool, n)
	}
	r.mask = r.mask[:n]
	return r.mask
}

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	r.out = tensor.EnsureShape(r.out, x.Shape()...)
	r.ensureMask(x.Size())
	for i, v := range x.Data {
		if v > 0 {
			r.mask[i] = true
			r.out.Data[i] = v
		} else {
			r.mask[i] = false
			r.out.Data[i] = 0
		}
	}
	return r.out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	r.gout = tensor.EnsureShape(r.gout, grad.Shape()...)
	for i, g := range grad.Data {
		if r.mask[i] {
			r.gout.Data[i] = g
		} else {
			r.gout.Data[i] = 0
		}
	}
	return r.gout
}

// Params implements Layer.
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// Init implements Layer.
func (r *ReLU) Init(*rand.Rand) {}

// Flatten reshapes [N, ...] activations to [N, features].
type Flatten struct {
	inShape []int
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape()...)
	return x.Reshape(x.Dim(0), -1)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (f *Flatten) Grads() []*tensor.Tensor { return nil }

// Init implements Layer.
func (f *Flatten) Init(*rand.Rand) {}
